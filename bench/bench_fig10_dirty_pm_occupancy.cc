/**
 * @file
 * Figure 10: fraction of cache-hierarchy lines (4MB LLC + four 64KB
 * L1s) occupied by dirty persistent-memory blocks. The paper's
 * observation — dirty PM blocks occupy only a small fraction (4% on
 * average) because persistent-memory applications clean aggressively —
 * is what makes OMV preservation in the LLC cheap.
 *
 * Workloads (full-size and scaled-cache sections) run as independent
 * ParallelSweep points; scaled points carry "@256KB" labels.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/parallel.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 10",
           "dirty-PM fraction of cache hierarchy capacity");

    // Longer windows than the perf figures: occupancy needs to reach
    // its eviction/clean equilibrium.
    const RunControl rc = benchOccupancyRunControl();

    ParallelSweep<RunMetrics> sweep(10, opts);
    for (const auto &name : allBenchmarkNames())
        sweep.add(name, [name, rc] {
            return runOnce(
                SystemConfig::make(PmTech::Reram,
                                   proposalScheme(runtimeRberFor(
                                       PmTech::Reram)),
                                   name),
                rc);
        });

    Table t({"workload", "dirty PM fraction", "OMV lines (LLC)"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &out : sweep.run()) {
        t.row().cell(out.label).pct(out.value.dirtyPmFraction, 2).pct(
            out.value.omvFraction, 2);
        sum += out.value.dirtyPmFraction;
        ++count;
    }
    t.print(std::cout);
    if (count)
        std::cout << "\naverage dirty-PM occupancy: "
                  << 100.0 * sum / count
                  << "%  (paper: ~4% average; barnes lowest at ~0.5%)\n"
                  << "Both in the 'small fraction' regime that makes OMV"
                     " caching cheap.\n";

    // Occupancy climbs toward its eviction/clean equilibrium over
    // horizons the paper's 500ms warmup reaches but a bench-scale
    // window cannot; shrinking the hierarchy shows the equilibrium
    // fractions at bench scale.
    std::cout << "\nScaled-cache sensitivity (LLC shrunk to 256KB):\n";
    ParallelSweep<RunMetrics> scaled(1010, opts);
    for (const std::string name : {"hashmap", "tpcc", "ycsb", "echo"})
        scaled.add(name + "@256KB", [name, rc] {
            auto cfg = SystemConfig::make(
                PmTech::Reram,
                proposalScheme(runtimeRberFor(PmTech::Reram)), name);
            cfg.cache.llcBytes = 256 * 1024;
            return runOnce(cfg, rc);
        });
    Table t2({"workload", "dirty PM fraction", "OMV lines (LLC)"});
    for (const auto &out : scaled.run())
        t2.row().cell(out.label).pct(out.value.dirtyPmFraction, 2).pct(
            out.value.omvFraction, 2);
    t2.print(std::cout);
    return 0;
}
