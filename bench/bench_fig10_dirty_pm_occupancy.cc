/**
 * @file
 * Figure 10: fraction of cache-hierarchy lines (4MB LLC + four 64KB
 * L1s) occupied by dirty persistent-memory blocks. The paper's
 * observation — dirty PM blocks occupy only a small fraction (4% on
 * average) because persistent-memory applications clean aggressively —
 * is what makes OMV preservation in the LLC cheap.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 10",
           "dirty-PM fraction of cache hierarchy capacity");

    // Longer windows than the perf figures: occupancy needs to reach
    // its eviction/clean equilibrium.
    RunControl rc;
    rc.warmup = nsToTicks(150000);
    rc.measure = nsToTicks(150000);
    rc.samplePeriod = nsToTicks(5000);

    Table t({"workload", "dirty PM fraction", "OMV lines (LLC)"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &name : allBenchmarkNames()) {
        const auto m = runOnce(
            SystemConfig::make(PmTech::Reram,
                               proposalScheme(runtimeRberFor(
                                   PmTech::Reram)),
                               name),
            rc);
        t.row().cell(name).pct(m.dirtyPmFraction, 2).pct(m.omvFraction,
                                                         2);
        sum += m.dirtyPmFraction;
        ++count;
    }
    t.print(std::cout);
    std::cout << "\naverage dirty-PM occupancy: "
              << 100.0 * sum / count
              << "%  (paper: ~4% average; barnes lowest at ~0.5%)\n"
              << "Both in the 'small fraction' regime that makes OMV"
                 " caching cheap.\n";

    // Occupancy climbs toward its eviction/clean equilibrium over
    // horizons the paper's 500ms warmup reaches but a bench-scale
    // window cannot; shrinking the hierarchy shows the equilibrium
    // fractions at bench scale.
    std::cout << "\nScaled-cache sensitivity (LLC shrunk to 256KB):\n";
    Table t2({"workload", "dirty PM fraction", "OMV lines (LLC)"});
    for (const std::string name : {"hashmap", "tpcc", "ycsb", "echo"}) {
        auto cfg = SystemConfig::make(
            PmTech::Reram,
            proposalScheme(runtimeRberFor(PmTech::Reram)), name);
        cfg.cache.llcBytes = 256 * 1024;
        const auto m = runOnce(cfg, rc);
        t2.row().cell(name).pct(m.dirtyPmFraction, 2).pct(
            m.omvFraction, 2);
    }
    t2.print(std::cout);
    return 0;
}
