/**
 * @file
 * Section V-E / Fig 13: hardware cost estimates for the proposal's
 * engines (in-chip 22-EC BCH encoder, processor-side RS and BCH
 * decoders) and the rates at which each engages at runtime.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/hw_model.hh"
#include "common/table.hh"
#include "reliability/sdc_model.hh"

using namespace nvck;

int
main()
{
    banner("Section V-E / Fig 13", "hardware cost and engagement model");

    const HwEstimates hw;
    Table t({"engine", "area (mm^2)", "latency (ns)", "where"});
    t.row()
        .cell("22-EC BCH encoder, 256B (XOR tree)")
        .cell(hw.bchEncoderAreaMm2, 3)
        .cell(hw.bchEncoderLatencyNs, 3)
        .cell("inside each NVRAM chip (2 metal layers)");
    t.row()
        .cell("RS(72,64) multi-byte decoder")
        .cell(hw.rsDecoderAreaMm2, 3)
        .cell(hw.rsDecoderLatencyNs, 3)
        .cell("memory controller");
    t.row()
        .cell("22-EC BCH (VLEW) decoder")
        .cell(hw.bchDecoderAreaMm2, 3)
        .cell(hw.bchDecoderLatencyNs, 3)
        .cell("memory controller");
    t.print(std::cout);

    const EngagementRates rates;
    SdcInputs in;
    in.rber = 2e-4;
    std::cout << "\nEngagement at 2e-4 RBER:\n"
              << "  multi-error RS correction : 1/" << 1.0 / rates.rsMultiErrorPerRead
              << " of reads (paper: 1/200)\n"
              << "  VLEW BCH correction       : "
              << rates.bchCorrectionPerRead << " of reads (paper: 1.8/10000)\n"
              << "  model fallback fraction   : "
              << vlewFallbackFraction(in, 2) << "\n"
              << "\nWhy not correct VLEWs inside the chips? Flash"
                 " precedent (Section IV-A):\n  embedded correction"
                 " costs 3x performance or 16x density, ~66% energy —\n"
                 "  encoding is a linear XOR tree, correction solves"
                 " large equation systems.\n";
    return 0;
}
