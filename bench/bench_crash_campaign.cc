/**
 * @file
 * Randomized crash-point campaign on the bit-accurate rank models:
 * tears writes at every enumerated power-cut site (mid-XOR burst,
 * EUR coalesce window, row-close drain, multi-block persist), with
 * and without a concurrent chip kill, runs the post-crash recovery
 * pass, and checks that every block reads back as the old value, the
 * new value, or a reported UE — never silent garbage.
 *
 * Knobs (strict parse, common/env.hh):
 *   NVCK_CRASH_TRIALS  healthy-rank trials (default 10000)
 *   NVCK_CRASH_BLOCKS  rank capacity in 64B blocks (multiple of 32)
 *
 * Exit status is non-zero when the oracle was violated, so CI can run
 * this binary directly; `--seed N` replays a CI failure verbatim.
 * With NVCK_CAMPAIGN_JSON=<path>, the shared campaign report is also
 * written there as JSON.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "common/env.hh"
#include "sim/crash.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Crash campaign",
           "power-failure atomicity of the XOR/EUR write path");

    CrashCampaignConfig cfg;
    if (const auto trials = envPositive("NVCK_CRASH_TRIALS")) {
        cfg.trials = *trials;
        // Keep the degraded-mode share proportional to the main sweep.
        cfg.degradedTrials = std::max<std::uint64_t>(1, *trials / 10);
    }
    if (const auto blocks = envPositive("NVCK_CRASH_BLOCKS", 1u << 20)) {
        if (*blocks % 32 != 0) {
            std::fprintf(stderr,
                         "nvck: $NVCK_CRASH_BLOCKS: expected a multiple"
                         " of the VLEW span (32), got %llu\n",
                         static_cast<unsigned long long>(*blocks));
            return 2;
        }
        cfg.rankBlocks = static_cast<unsigned>(*blocks);
    }

    const CrashCampaignTotals totals =
        crashCampaign(std::cout, opts, cfg);

    const CrashTally sum = totals.total();
    CampaignReport report;
    report.name = "crash-campaign";
    report.seed = opts.seedSet ? opts.seed : cfg.seed;
    report.trials = sum.trials;
    report.violations = totals.violations();
    report.counters = {{"torn_old", sum.tornOld},
                       {"torn_new", sum.tornNew},
                       {"torn_ue", sum.tornUe},
                       {"chip_kills", sum.chipKills},
                       {"collateral_ue", sum.collateralUe}};
    if (const char *path = std::getenv("NVCK_CAMPAIGN_JSON")) {
        std::ofstream json(path);
        campaignJson(json, report);
    }
    return campaignVerdict(std::cout, report);
}
