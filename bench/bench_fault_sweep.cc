/**
 * @file
 * Fault sweep on the bit-accurate rank: how the runtime read paths
 * (clean / RS-accepted / VLEW fallback / failure) redistribute as the
 * RBER climbs from healthy runtime rates through the boot target and
 * beyond — the end-to-end demonstration that the decoupled design
 * degrades gracefully and never corrupts silently.
 *
 * Each RBER point is an independent work item submitted through the
 * parallel experiment engine (NVCK_JOBS controls the worker count;
 * NVCK_JOBS=1 runs serially). Every point seeds its own rank and Rng,
 * so the table is byte-identical for any worker count.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/pm_rank.hh"
#include "common/table.hh"
#include "sim/parallel.hh"

using namespace nvck;

namespace {

struct SweepPoint
{
    double rber = 0.0;
    std::uint64_t reads = 0, clean = 0, accepted = 0, vlew = 0,
                  failed = 0, sdc = 0;
};

SweepPoint
sweepOne(double rber)
{
    SweepPoint pt;
    pt.rber = rber;

    PmRank rank(1024);
    Rng rng(static_cast<std::uint64_t>(rber * 1e9));
    rank.initialize(rng);

    std::uint8_t out[blockBytes];
    for (int round = 0; round < 4; ++round) {
        rank.injectErrors(rng, rber);
        for (unsigned b = 0; b < rank.blocks(); ++b) {
            const auto res = rank.readBlock(b, out);
            ++pt.reads;
            switch (res.path) {
              case ReadPath::Clean: ++pt.clean; break;
              case ReadPath::RsAccepted: ++pt.accepted; break;
              case ReadPath::VlewFallback:
              case ReadPath::ChipRecovered: ++pt.vlew; break;
              case ReadPath::Failed: ++pt.failed; break;
            }
            if (!res.dataCorrect && res.path != ReadPath::Failed)
                ++pt.sdc;
        }
        rank.bootScrub();
    }
    return pt;
}

} // namespace

int
main()
{
    banner("Fault sweep",
           "read-path distribution vs RBER on the bit-accurate rank");

    const std::vector<double> rbers = {1e-5, 7e-5, 2e-4, 5e-4, 1e-3, 2e-3};

    const auto points = parallelMap<SweepPoint>(
        rbers.size(), [&](std::size_t i) { return sweepOne(rbers[i]); });

    Table t({"RBER", "clean", "RS accepted", "VLEW fallback",
             "uncorrectable", "SDC"});
    for (const auto &pt : points) {
        const double n = static_cast<double>(pt.reads);
        t.row()
            .cell(pt.rber, 2)
            .pct(pt.clean / n, 2)
            .pct(pt.accepted / n, 2)
            .pct(pt.vlew / n, 4)
            .pct(pt.failed / n, 4)
            .cell(pt.sdc);
    }
    t.print(std::cout);

    std::cout << "\nReading: the RS tier absorbs everything through the"
                 " runtime rates; past the\nboot target the VLEW"
                 " fallback carries the load. SDC stays at zero"
                 " throughout —\nthe acceptance threshold converts"
                 " would-be miscorrections into VLEW fetches.\n";
    return 0;
}
