/**
 * @file
 * Fault sweep on the bit-accurate rank: how the runtime read paths
 * (clean / RS-accepted / VLEW fallback / failure) redistribute as the
 * RBER climbs from healthy runtime rates through the boot target and
 * beyond — the end-to-end demonstration that the decoupled design
 * degrades gracefully and never corrupts silently.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/pm_rank.hh"
#include "common/table.hh"

using namespace nvck;

int
main()
{
    banner("Fault sweep",
           "read-path distribution vs RBER on the bit-accurate rank");

    const double rbers[] = {1e-5, 7e-5, 2e-4, 5e-4, 1e-3, 2e-3};

    Table t({"RBER", "clean", "RS accepted", "VLEW fallback",
             "uncorrectable", "SDC"});
    for (double rber : rbers) {
        PmRank rank(1024);
        Rng rng(static_cast<std::uint64_t>(rber * 1e9));
        rank.initialize(rng);

        std::uint64_t reads = 0, clean = 0, accepted = 0, vlew = 0,
                      failed = 0, sdc = 0;
        std::uint8_t out[blockBytes];
        for (int round = 0; round < 4; ++round) {
            rank.injectErrors(rng, rber);
            for (unsigned b = 0; b < rank.blocks(); ++b) {
                const auto res = rank.readBlock(b, out);
                ++reads;
                switch (res.path) {
                  case ReadPath::Clean: ++clean; break;
                  case ReadPath::RsAccepted: ++accepted; break;
                  case ReadPath::VlewFallback:
                  case ReadPath::ChipRecovered: ++vlew; break;
                  case ReadPath::Failed: ++failed; break;
                }
                if (!res.dataCorrect &&
                    res.path != ReadPath::Failed)
                    ++sdc;
            }
            rank.bootScrub();
        }
        const double n = static_cast<double>(reads);
        t.row()
            .cell(rber, 2)
            .pct(clean / n, 2)
            .pct(accepted / n, 2)
            .pct(vlew / n, 4)
            .pct(failed / n, 4)
            .cell(sdc);
    }
    t.print(std::cout);

    std::cout << "\nReading: the RS tier absorbs everything through the"
                 " runtime rates; past the\nboot target the VLEW"
                 " fallback carries the load. SDC stays at zero"
                 " throughout —\nthe acceptance threshold converts"
                 " would-be miscorrections into VLEW fetches.\n";
    return 0;
}
