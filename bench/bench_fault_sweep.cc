/**
 * @file
 * Fault sweep on the bit-accurate rank: how the runtime read paths
 * (clean / RS-accepted / VLEW fallback / failure) redistribute as the
 * RBER climbs from healthy runtime rates through the boot target and
 * beyond — the end-to-end demonstration that the decoupled design
 * degrades gracefully and never corrupts silently.
 *
 * Each RBER point is an independent ParallelSweep work item
 * (NVCK_JOBS controls the worker count; NVCK_JOBS=1 runs serially).
 * Every point seeds its own rank from its Rng substream, so the table
 * is byte-identical for any worker count.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Fault sweep",
           "read-path distribution vs RBER on the bit-accurate rank");
    faultSweep(std::cout, opts);
    return 0;
}
