/**
 * @file
 * Throughput benchmark for the batched whole-rank scrub engine
 * (chipkill/scrub.hh) against the word-at-a-time reference path, plus
 * a corrupt-word decode micro comparing the fast residue-based solve
 * (solveFromResidue, even-step BM + bounded Chien) with the full
 * reference pipeline. Every timed configuration is also cross-checked
 * for identical outcomes and media before the numbers are reported;
 * any divergence fails the run.
 *
 * MB/s counts scanned media: every scrub word covers its data span
 * plus its code bits ((256 + 33)B for the paper's VLEW geometry).
 *
 * Usage: bench_scrub_throughput [--points N] [--seed S] [--quick]
 *                               [--json PATH]
 *   --points N  rank sizes to sweep (default all, CI smoke uses 2).
 *   --seed S    base RNG seed (default 2018).
 *   --quick     shorter timing windows (CI smoke).
 *   --json P    output path (default BENCH_scrub_throughput.json).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "chipkill/pm_rank.hh"
#include "chipkill/scrub.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "ecc/bch.hh"

namespace {

using namespace nvck;

/** Defeats dead-code elimination across timed calls. */
volatile std::uint64_t g_sink = 0;

struct OpResult
{
    double mbps = 0.0;
    double seconds = 0.0;
    std::uint64_t iters = 0;
};

/** One timing record: scenario x path. */
struct Record
{
    std::string scenario;
    std::string path;
    OpResult res;
};

/** Run @p op until @p min_seconds accumulate, convert to MB/s. */
template <typename F>
OpResult
measure(double min_seconds, double bytes_per_op, F &&op)
{
    using clock = std::chrono::steady_clock;
    op(); // warmup: faults tables in, primes caches
    OpResult out;
    const auto start = clock::now();
    do {
        op();
        ++out.iters;
        out.seconds =
            std::chrono::duration<double>(clock::now() - start).count();
    } while (out.seconds < min_seconds);
    out.mbps = bytes_per_op * static_cast<double>(out.iters) /
               out.seconds / 1e6;
    return out;
}

/** Media bytes one whole-rank sweep scans (data spans + code bits). */
double
scannedBytes(const PmRank &rank)
{
    const double words = static_cast<double>(rank.chips()) *
                         rank.vlewsPerChip();
    return words * (rank.params().vlewDataBytes +
                    rank.params().vlewCodeBytes);
}

/** Engine sweep vs reference sweep must agree exactly (exit 1). */
void
checkIdentical(PmRank &rank, const RankSnapshot &dirty,
               const std::string &scenario)
{
    rank.restore(dirty);
    const auto batched = ScrubEngine().sweep(rank);
    const auto media = rank.snapshot();
    rank.restore(dirty);
    const auto reference = ScrubEngine().sweepReference(rank);
    const auto ref_media = rank.snapshot();
    const bool same_media = media.chipStore == ref_media.chipStore &&
                            media.codeStore == ref_media.codeStore;
    if (batched != reference || !same_media) {
        std::cerr << "FATAL: engine/reference divergence in "
                  << scenario << "\n";
        std::exit(1);
    }
    rank.restore(dirty);
}

void
benchSweeps(std::vector<Record> &records, unsigned blocks,
            std::uint64_t seed, double min_seconds)
{
    PmRank rank(blocks);
    Rng rng(seed);
    rank.initialize(rng);
    const double bytes = scannedBytes(rank);
    const std::string size_tag = std::to_string(blocks);

    // Clean sweep: the dominant scrub regime — every word passes the
    // residue check, no decode work at all.
    checkIdentical(rank, rank.snapshot(), "clean_sweep_" + size_tag);
    records.push_back({"clean_sweep_" + size_tag, "engine",
                       measure(min_seconds, bytes, [&] {
                           g_sink = g_sink +
                                    ScrubEngine().sweep(rank).size();
                       })});
    records.push_back(
        {"clean_sweep_" + size_tag, "per_word",
         measure(min_seconds, bytes, [&] {
             g_sink =
                 g_sink + ScrubEngine().sweepReference(rank).size();
         })});

    // Dirty sweep at a realistic boot RBER: a few words need the
    // corrupt-word decode. Both paths pay the identical restore, so
    // the comparison stays apples-to-apples.
    rank.injectErrors(rng, 1e-5);
    const auto dirty = rank.snapshot();
    checkIdentical(rank, dirty, "dirty_sweep_" + size_tag);
    records.push_back({"dirty_sweep_" + size_tag, "engine",
                       measure(min_seconds, bytes, [&] {
                           rank.restore(dirty);
                           g_sink = g_sink +
                                    ScrubEngine().sweep(rank).size();
                       })});
    records.push_back(
        {"dirty_sweep_" + size_tag, "per_word",
         measure(min_seconds, bytes, [&] {
             rank.restore(dirty);
             g_sink =
                 g_sink + ScrubEngine().sweepReference(rank).size();
         })});
}

/** Corrupt-word decode micro: fast vs full residue solve. */
void
benchCorruptDecode(std::vector<Record> &records, std::uint64_t seed,
                   double min_seconds)
{
    const ProposalParams params;
    const BchCodec codec(params.vlewDataBytes * 8, params.vlewT);
    const double bytes = params.vlewDataBytes + params.vlewCodeBytes;
    Rng rng(seed ^ 0xDECD);

    // A pool of fully-absorbed residues of lightly corrupted words
    // (1..4 errors — what a dirty word actually looks like at boot
    // RBERs), so the timed region holds only the solve.
    std::vector<BchResidue> pool(32);
    BitVec data(codec.k());
    unsigned widx = 0;
    for (auto &res : pool) {
        data.randomize(rng);
        BitVec noisy = codec.encode(data);
        noisy.injectExactErrors(rng, 1 + widx++ % 4);
        codec.residueStart(res);
        codec.residueAbsorbBits(res, noisy.raw().data(), noisy.size());
        // The two paths must agree before being timed.
        const auto fast =
            codec.solveFromResidue(res, ScrubDecodePath::Fast);
        const auto full =
            codec.solveFromResidue(res, ScrubDecodePath::Full);
        if (fast.status != full.status ||
            fast.positions != full.positions) {
            std::cerr << "FATAL: fast/full decode divergence\n";
            std::exit(1);
        }
    }

    for (const ScrubDecodePath path :
         {ScrubDecodePath::Full, ScrubDecodePath::Fast}) {
        std::size_t next = 0;
        records.push_back(
            {"corrupt_decode", scrubDecodePathName(path),
             measure(min_seconds, bytes, [&] {
                 const auto &res = pool[next++ % pool.size()];
                 g_sink = g_sink +
                          codec.solveFromResidue(res, path).corrections;
             })});
    }
}

const Record *
find(const std::vector<Record> &records, const std::string &scenario,
     const std::string &path)
{
    for (const auto &r : records)
        if (r.scenario == scenario && r.path == path)
            return &r;
    return nullptr;
}

void
writeJson(const std::vector<Record> &records,
          const std::vector<std::string> &scenarios,
          const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    os << "{\n  \"benchmark\": \"scrub_throughput\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        os << "    {\"scenario\": \"" << r.scenario << "\", \"path\": \""
           << r.path << "\", \"mbps\": " << r.res.mbps
           << ", \"iters\": " << r.res.iters
           << ", \"seconds\": " << r.res.seconds << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"speedup\": {\n";
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        const bool micro = scenarios[s] == "corrupt_decode";
        const Record *slow =
            find(records, scenarios[s], micro ? "full" : "per_word");
        const Record *quick =
            find(records, scenarios[s], micro ? "fast" : "engine");
        const double speedup =
            (slow && quick && slow->res.mbps > 0)
                ? quick->res.mbps / slow->res.mbps
                : 0.0;
        os << "    \"" << scenarios[s] << "\": " << speedup
           << (s + 1 < scenarios.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    double min_seconds = 0.25;
    unsigned points = 3;
    std::uint64_t seed = 2018;
    std::string json_path = "BENCH_scrub_throughput.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            min_seconds = 0.04;
        } else if (arg == "--points" && i + 1 < argc) {
            points = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::stoull(argv[++i]);
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--points N] [--seed S] [--quick]"
                      << " [--json PATH]\n";
            return 2;
        }
    }

    const unsigned sizes[] = {1024, 4096, 16384};
    const unsigned npoints =
        std::min<unsigned>(points, sizeof(sizes) / sizeof(sizes[0]));

    std::vector<Record> records;
    std::vector<std::string> scenarios;
    for (unsigned p = 0; p < npoints; ++p) {
        benchSweeps(records, sizes[p], seed, min_seconds);
        scenarios.push_back("clean_sweep_" +
                            std::to_string(sizes[p]));
        scenarios.push_back("dirty_sweep_" +
                            std::to_string(sizes[p]));
    }
    benchCorruptDecode(records, seed, min_seconds);
    scenarios.push_back("corrupt_decode");

    Table table({"scenario", "baseline MB/s", "engine MB/s", "speedup"});
    double clean_speedup = 0.0;
    for (const auto &scenario : scenarios) {
        const bool micro = scenario == "corrupt_decode";
        const Record *slow =
            find(records, scenario, micro ? "full" : "per_word");
        const Record *quick =
            find(records, scenario, micro ? "fast" : "engine");
        const double speedup = quick->res.mbps / slow->res.mbps;
        if (scenario.rfind("clean_sweep_", 0) == 0 &&
            speedup > clean_speedup)
            clean_speedup = speedup;
        table.row()
            .cell(scenario)
            .cell(slow->res.mbps)
            .cell(quick->res.mbps)
            .cell(speedup);
    }
    table.print(std::cout);
    std::cout << "best clean whole-rank scrub speedup: "
              << Table::formatNumber(clean_speedup, 3) << "x\n";

    writeJson(records, scenarios, json_path);
    return 0;
}
