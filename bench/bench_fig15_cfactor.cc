/**
 * @file
 * Figure 15: the C factor — the ratio of coalesced VLEW code-bit
 * writes (EUR drains at row close) to off-chip PM write requests. C
 * sets the iso-endurance write-latency inflation 1 + 33/8 * C used in
 * the evaluation.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/schemes.hh"
#include "common/table.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 15",
           "C factor: VLEW code-bit writes per PM write request");

    const auto rc = benchRunControl();
    Table t({"workload", "C", "tWR scale (1 + 33/8 C)"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &name : allBenchmarkNames()) {
        const auto m = runOnce(
            SystemConfig::make(PmTech::Reram,
                               proposalScheme(runtimeRberFor(
                                   PmTech::Reram)),
                               name),
            rc);
        SchemeTiming s = proposalScheme(7e-5);
        applyCFactor(s, m.cFactor);
        t.row().cell(name).cell(m.cFactor, 3).cell(s.pmWriteScale, 3);
        sum += m.cFactor;
        ++count;
    }
    t.print(std::cout);
    std::cout << "\naverage C: " << sum / count
              << "\nC reflects spatial locality: sequential undo-log"
                 " appends and arena-allocated\nwrites coalesce in the"
                 " EUR; scattered updates (hashmap-style) do not.\n";
    return 0;
}
