/**
 * @file
 * Figure 15: the C factor — the ratio of coalesced VLEW code-bit
 * writes (EUR drains at row close) to off-chip PM write requests. C
 * sets the iso-endurance write-latency inflation 1 + 33/8 * C used in
 * the evaluation.
 *
 * Workloads run as independent ParallelSweep points; see sweeps.hh
 * for the determinism contract and tests/sim/test_bench_golden.cc for
 * the byte-identical regression lock.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 15",
           "C factor: VLEW code-bit writes per PM write request");
    fig15Cfactor(std::cout, opts);
    return 0;
}
