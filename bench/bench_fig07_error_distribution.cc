/**
 * @file
 * Figure 7: distribution of the number of byte errors in 64B memory
 * requests at 2e-4 RBER — analytically (binomial over the 72-byte RS
 * word) and validated by Monte-Carlo injection against the real
 * RS(72,64) codec. The paper's threshold choice rests on >99.98% of
 * accesses having <= 2 errors.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "reliability/binomial.hh"
#include "reliability/injector.hh"
#include "reliability/error_model.hh"

using namespace nvck;

int
main()
{
    banner("Figure 7",
           "distribution of byte errors per 64B request @ 2e-4 RBER");

    const double rber = rber::runtimePcm3Hourly;
    const unsigned word_bytes = 72;
    const double p_byte = symbolErrorProb(rber, 8);

    const RsCodec rs(64, 8);
    RsCampaign campaign;
    campaign.rber = rber;
    campaign.trials = 200000;
    campaign.seed = 2018;
    const auto report = injectRs(rs, campaign);

    Table t({"byte errors", "analytical P", "Monte-Carlo P",
             "cumulative (analytical)"});
    double cumulative = 0.0;
    for (unsigned k = 0; k <= 6; ++k) {
        const double analytical = binomialPmf(word_bytes, k, p_byte);
        cumulative += analytical;
        const double measured =
            static_cast<double>(report.errorCount.bucket(k)) /
            static_cast<double>(report.trials);
        t.row()
            .cell(std::uint64_t{k})
            .cell(analytical, 3)
            .cell(measured, 3)
            .pct(cumulative, 4);
    }
    t.print(std::cout);

    std::cout << "\nP(<= 2 errors) analytical: "
              << 100.0 * (binomialPmf(word_bytes, 0, p_byte) +
                          binomialPmf(word_bytes, 1, p_byte) +
                          binomialPmf(word_bytes, 2, p_byte))
              << "%  (paper: > 99.98%, motivating the threshold of 2)\n"
              << "P(>= 5 errors) analytical: "
              << binomialTail(word_bytes, 5, p_byte)
              << "  (paper: 1.5e-7 of accesses can defeat t = 4)\n"
              << "\nMonte-Carlo sanity (200k trials on the real codec): "
              << report.corrected + report.clean << " OK, "
              << report.detected << " deferred to VLEW, "
              << report.miscorrected << " SDC\n";
    return 0;
}
