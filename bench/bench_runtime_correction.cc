/**
 * @file
 * Figures 8/9 and Section V-C: the runtime correction procedure on the
 * bit-accurate rank — opportunistic per-block RS with the 2-correction
 * acceptance threshold, VLEW fallback for denser patterns, and RS
 * erasure recovery when a chip dies at runtime. Measures the fallback
 * rate against the analytical ~0.018-0.02%.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/pm_rank.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"

using namespace nvck;

int
main()
{
    banner("Figures 8/9 + Section V-C",
           "runtime correction paths on the bit-accurate rank");

    Rng rng(42);
    PmRank rank(2048);
    rank.initialize(rng);

    // Runtime error accumulation at the 2e-4 stress point, then a read
    // sweep. (Blocks are re-read without scrubbing writebacks, so each
    // pass sees fresh accumulation.)
    const double rber = rber::runtimePcm3Hourly;
    std::uint64_t reads = 0, clean = 0, accepted = 0, fallback = 0,
                  recovered = 0, failed = 0, wrong = 0;
    std::uint8_t out[blockBytes];
    for (int round = 0; round < 12; ++round) {
        rank.injectErrors(rng, rber);
        for (unsigned b = 0; b < rank.blocks(); ++b) {
            const auto res = rank.readBlock(b, out);
            ++reads;
            switch (res.path) {
              case ReadPath::Clean: ++clean; break;
              case ReadPath::RsAccepted: ++accepted; break;
              case ReadPath::VlewFallback: ++fallback; break;
              case ReadPath::ChipRecovered: ++recovered; break;
              case ReadPath::Failed: ++failed; break;
            }
            if (!res.dataCorrect && res.path != ReadPath::Failed)
                ++wrong;
        }
        // Scrub between rounds so per-round RBER matches the model's
        // "errors since last correction" assumption.
        rank.bootScrub();
    }

    Table t({"outcome", "reads", "fraction"});
    t.row().cell("clean (zero syndrome)").cell(clean).pct(
        static_cast<double>(clean) / reads, 3);
    t.row().cell("RS accepted (<= 2 corrections)").cell(accepted).pct(
        static_cast<double>(accepted) / reads, 3);
    t.row().cell("VLEW fallback").cell(fallback).pct(
        static_cast<double>(fallback) / reads, 4);
    t.row().cell("chip recovered via erasures").cell(recovered).pct(
        static_cast<double>(recovered) / reads, 4);
    t.row().cell("uncorrectable").cell(failed).pct(
        static_cast<double>(failed) / reads, 4);
    t.print(std::cout);

    SdcInputs in;
    in.rber = rber;
    std::cout << "\nwrong data returned (SDC): " << wrong << " of "
              << reads << " reads\n"
              << "analytical VLEW fallback rate @ 2e-4: "
              << 100.0 * vlewFallbackFraction(in, 2)
              << "%  (paper: ~0.018% of reads on average)\n";

    // Runtime chip failure: VLEWs flag the dead chip, RS erasures
    // recover every block.
    rank.bootScrub();
    rank.failChip(5, rng);
    std::uint64_t chip_reads = 0, chip_ok = 0;
    for (unsigned b = 0; b < rank.blocks(); b += 3) {
        const auto res = rank.readBlock(b, out);
        ++chip_reads;
        if (res.path == ReadPath::ChipRecovered && res.dataCorrect)
            ++chip_ok;
    }
    std::cout << "\nruntime chip failure: " << chip_ok << "/"
              << chip_reads
              << " sampled blocks recovered via RS erasure correction\n";
    return chip_ok == chip_reads ? 0 : 1;
}
