/**
 * @file
 * Figures 8/9 and Section V-C: the runtime correction procedure on the
 * bit-accurate rank — opportunistic per-block RS with the 2-correction
 * acceptance threshold, VLEW fallback for denser patterns, and RS
 * erasure recovery when a chip dies at runtime. Measures the fallback
 * rate against the analytical ~0.018-0.02%.
 *
 * The accumulation sweep is sharded into independent 256-block ranks,
 * each seeded from its own (baseSeed, shard) Rng substream and run as
 * one work item on the parallel experiment engine; per-shard counters
 * merge in submission order, so totals are byte-identical for any
 * NVCK_JOBS value.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/pm_rank.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"
#include "sim/parallel.hh"

using namespace nvck;

namespace {

struct ShardCounters
{
    std::uint64_t reads = 0, clean = 0, accepted = 0, fallback = 0,
                  recovered = 0, failed = 0, wrong = 0;
};

/** 12 inject/read/scrub rounds on one independent 256-block rank. */
ShardCounters
runShard(const Rng &base, std::size_t shard, double rber)
{
    ShardCounters c;
    Rng rng = base.substream(shard);
    PmRank rank(256);
    rank.initialize(rng);

    std::uint8_t out[blockBytes];
    for (int round = 0; round < 12; ++round) {
        rank.injectErrors(rng, rber);
        for (unsigned b = 0; b < rank.blocks(); ++b) {
            const auto res = rank.readBlock(b, out);
            ++c.reads;
            switch (res.path) {
              case ReadPath::Clean: ++c.clean; break;
              case ReadPath::RsAccepted: ++c.accepted; break;
              case ReadPath::VlewFallback: ++c.fallback; break;
              case ReadPath::ChipRecovered: ++c.recovered; break;
              case ReadPath::Failed: ++c.failed; break;
            }
            if (!res.dataCorrect && res.path != ReadPath::Failed)
                ++c.wrong;
        }
        // Scrub between rounds so per-round RBER matches the model's
        // "errors since last correction" assumption.
        rank.bootScrub();
    }
    return c;
}

} // namespace

int
main()
{
    banner("Figures 8/9 + Section V-C",
           "runtime correction paths on the bit-accurate rank");

    // Runtime error accumulation at the 2e-4 stress point across eight
    // independent 256-block shards (2048 blocks total, as before).
    const double rber = rber::runtimePcm3Hourly;
    const Rng base(42);
    constexpr std::size_t kShards = 8;

    const auto shards = parallelMap<ShardCounters>(
        kShards,
        [&](std::size_t s) { return runShard(base, s, rber); });

    ShardCounters sum;
    for (const auto &s : shards) {
        sum.reads += s.reads;
        sum.clean += s.clean;
        sum.accepted += s.accepted;
        sum.fallback += s.fallback;
        sum.recovered += s.recovered;
        sum.failed += s.failed;
        sum.wrong += s.wrong;
    }

    Table t({"outcome", "reads", "fraction"});
    t.row().cell("clean (zero syndrome)").cell(sum.clean).pct(
        static_cast<double>(sum.clean) / sum.reads, 3);
    t.row().cell("RS accepted (<= 2 corrections)").cell(sum.accepted).pct(
        static_cast<double>(sum.accepted) / sum.reads, 3);
    t.row().cell("VLEW fallback").cell(sum.fallback).pct(
        static_cast<double>(sum.fallback) / sum.reads, 4);
    t.row().cell("chip recovered via erasures").cell(sum.recovered).pct(
        static_cast<double>(sum.recovered) / sum.reads, 4);
    t.row().cell("uncorrectable").cell(sum.failed).pct(
        static_cast<double>(sum.failed) / sum.reads, 4);
    t.print(std::cout);

    SdcInputs in;
    in.rber = rber;
    std::cout << "\nwrong data returned (SDC): " << sum.wrong << " of "
              << sum.reads << " reads\n"
              << "analytical VLEW fallback rate @ 2e-4: "
              << 100.0 * vlewFallbackFraction(in, 2)
              << "%  (paper: ~0.018% of reads on average)\n";

    // Runtime chip failure: VLEWs flag the dead chip, RS erasures
    // recover every block. (Single rank; inherently serial.)
    Rng chip_rng = base.substream(kShards);
    PmRank rank(1024);
    rank.initialize(chip_rng);
    rank.failChip(5, chip_rng);
    std::uint8_t out[blockBytes];
    std::uint64_t chip_reads = 0, chip_ok = 0;
    for (unsigned b = 0; b < rank.blocks(); b += 3) {
        const auto res = rank.readBlock(b, out);
        ++chip_reads;
        if (res.path == ReadPath::ChipRecovered && res.dataCorrect)
            ++chip_ok;
    }
    std::cout << "\nruntime chip failure: " << chip_ok << "/"
              << chip_reads
              << " sampled blocks recovered via RS erasure correction\n";
    return chip_ok == chip_reads ? 0 : 1;
}
