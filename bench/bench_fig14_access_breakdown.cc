/**
 * @file
 * Figure 14: workload characterization — breakdown of off-chip memory
 * accesses into persistent-memory reads/writes and DRAM reads/writes.
 * All benchmarks significantly exercise persistent memory.
 *
 * Workloads run as independent ParallelSweep points (NVCK_JOBS
 * controls the worker count; `--points`/`--filter` re-run a subset
 * with unchanged streams). The table is byte-identical for any worker
 * count and regression-locked by tests/sim/test_bench_golden.cc.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 14", "off-chip memory access breakdown");
    fig14AccessBreakdown(std::cout, opts);
    return 0;
}
