/**
 * @file
 * Figure 14: workload characterization — breakdown of off-chip memory
 * accesses into persistent-memory reads/writes and DRAM reads/writes.
 * All benchmarks significantly exercise persistent memory.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 14", "off-chip memory access breakdown");

    const auto rc = benchRunControl();
    Table t({"workload", "PM reads", "PM writes", "DRAM reads",
             "DRAM writes", "PM share"});
    for (const auto &name : allBenchmarkNames()) {
        const auto m = runOnce(
            SystemConfig::make(PmTech::Reram, bitErrorOnlyScheme(),
                               name),
            rc);
        const double total = static_cast<double>(
            m.pmReads + m.pmWrites + m.dramReads + m.dramWrites);
        if (total == 0)
            continue;
        t.row()
            .cell(name)
            .pct(m.pmReads / total)
            .pct(m.pmWrites / total)
            .pct(m.dramReads / total)
            .pct(m.dramWrites / total)
            .pct((m.pmReads + m.pmWrites) / total);
    }
    t.print(std::cout);
    std::cout << "\nPaper observation: every benchmark significantly"
                 " exercises persistent memory;\nKV stores and trees"
                 " are PM-dominated, tpcc/vacation mix in sizable DRAM"
                 " index traffic.\n";
    return 0;
}
