#include "sweeps.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "chipkill/pm_rank.hh"
#include "chipkill/schemes.hh"
#include "chipkill/wear.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"
#include "reliability/storage_model.hh"
#include "workload/profiles.hh"

namespace nvck {

BenchScale
goldenScale()
{
    // Small enough that the full golden suite (seven sweeps x two
    // worker counts) stays in unit-test territory even under TSan,
    // large enough that every read path / scrub branch still fires.
    BenchScale s;
    s.time = 0.25;
    s.scrubBlocks = 128;
    s.faultBlocks = 256;
    s.faultRounds = 2;
    s.wearWrites = 800;
    return s;
}

void
fig04StorageVsCodeword(std::ostream &os, const SweepOptions &opts)
{
    StorageTargets in;
    in.rber = rber::bootTarget;
    in.ueTarget = rber::ueTargetPerBlock;

    const std::vector<unsigned> sizes = {8,  16,  32,  64,
                                         128, 256, 512, 1024};
    ParallelSweep<StorageSolution> sweep(4, opts);
    for (unsigned bytes : sizes)
        sweep.add(std::to_string(bytes) + "B",
                  [in, bytes] { return vlewScheme(in, bytes); });

    Table t({"data per word", "t (bits corrected)", "code overhead",
             "total incl. parity chip"});
    for (const auto &out : sweep.run()) {
        t.row()
            .cell(out.label)
            .cell(std::uint64_t{out.value.t})
            .pct(out.value.codeOverhead)
            .pct(out.value.totalOverhead);
    }
    t.print(os);

    const auto paper_point = vlewScheme(in, 256);
    os << "\nPaper design point: 256B words, 22-EC, 33B code"
          " -> 27% total.\n"
       << "Model at 256B: t = " << paper_point.t << ", total = "
       << 100.0 * paper_point.totalOverhead << "%\n"
       << "(the model solves t for a per-block UE target of "
       << in.ueTarget << " and may pick t one or two above the\n"
       << " paper's 22 depending on how the target is "
          "apportioned across chips; the cost shape is identical)\n";
}

void
fig14AccessBreakdown(std::ostream &os, const SweepOptions &opts,
                     const BenchScale &scale)
{
    const auto rc = benchRunControl(scale.time);
    ParallelSweep<RunMetrics> sweep(14, opts);
    for (const auto &name : allBenchmarkNames())
        sweep.add(name, [name, rc] {
            return runOnce(SystemConfig::make(PmTech::Reram,
                                              bitErrorOnlyScheme(), name),
                           rc);
        });

    Table t({"workload", "PM reads", "PM writes", "DRAM reads",
             "DRAM writes", "PM share"});
    for (const auto &out : sweep.run()) {
        const auto &m = out.value;
        const double total = static_cast<double>(
            m.pmReads + m.pmWrites + m.dramReads + m.dramWrites);
        if (total == 0)
            continue;
        t.row()
            .cell(out.label)
            .pct(m.pmReads / total)
            .pct(m.pmWrites / total)
            .pct(m.dramReads / total)
            .pct(m.dramWrites / total)
            .pct((m.pmReads + m.pmWrites) / total);
    }
    t.print(os);
    os << "\nPaper observation: every benchmark significantly"
          " exercises persistent memory;\nKV stores and trees"
          " are PM-dominated, tpcc/vacation mix in sizable DRAM"
          " index traffic.\n";
}

void
fig15Cfactor(std::ostream &os, const SweepOptions &opts,
             const BenchScale &scale)
{
    const auto rc = benchRunControl(scale.time);
    ParallelSweep<RunMetrics> sweep(15, opts);
    for (const auto &name : allBenchmarkNames())
        sweep.add(name, [name, rc] {
            return runOnce(
                SystemConfig::make(PmTech::Reram,
                                   proposalScheme(runtimeRberFor(
                                       PmTech::Reram)),
                                   name),
                rc);
        });

    Table t({"workload", "C", "tWR scale (1 + 33/8 C)"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &out : sweep.run()) {
        SchemeTiming s = proposalScheme(7e-5);
        applyCFactor(s, out.value.cFactor);
        t.row().cell(out.label).cell(out.value.cFactor, 3).cell(
            s.pmWriteScale, 3);
        sum += out.value.cFactor;
        ++count;
    }
    t.print(os);
    if (count)
        os << "\naverage C: " << sum / count;
    os << "\nC reflects spatial locality: sequential undo-log"
          " appends and arena-allocated\nwrites coalesce in the"
          " EUR; scattered updates (hashmap-style) do not.\n";
}

void
fig18OmvHitRate(std::ostream &os, const SweepOptions &opts,
                const BenchScale &scale)
{
    const auto rc = benchRunControl(scale.time);
    ParallelSweep<RunMetrics> sweep(18, opts);
    for (const auto &name : allBenchmarkNames())
        sweep.add(name, [name, rc] {
            return runOnce(
                SystemConfig::make(PmTech::Reram,
                                   proposalScheme(runtimeRberFor(
                                       PmTech::Reram)),
                                   name),
                rc);
        });

    Table t({"workload", "OMV hit rate", "old-data fetches",
             "PM writes"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &out : sweep.run()) {
        const auto &m = out.value;
        t.row()
            .cell(out.label)
            .pct(m.omvHitRate, 2)
            .cell(m.oldDataFetches)
            .cell(m.pmWrites);
        sum += m.omvHitRate;
        ++count;
    }
    t.print(os);
    if (count)
        os << "\naverage OMV hit rate: " << 100.0 * sum / count
           << "%  (paper: 98.6% average; worst case barnes ~89%"
              " due to non-inclusive caching)\n";

    // The paper's misses come from LLC churn evicting a block's old
    // value between write and clean; saturating a 4MB LLC needs the
    // paper's 500ms warmup, beyond this harness's budget. Scaling the
    // LLC down reproduces the mechanism at bench scale.
    os << "\nScaled-cache sensitivity (LLC shrunk to 64KB to"
          " saturate within the window):\n";
    RunControl rc2 = rc;
    rc2.measure = nsToTicks(300000 * scale.time);
    ParallelSweep<RunMetrics> scaled(1018, opts);
    for (const std::string name : {"barnes", "hashmap", "ycsb", "tpcc"})
        scaled.add(name + "@64KB", [name, rc2] {
            auto cfg = SystemConfig::make(
                PmTech::Reram,
                proposalScheme(runtimeRberFor(PmTech::Reram)), name);
            cfg.cache.llcBytes = 64 * 1024;
            return runOnce(cfg, rc2);
        });
    Table t2({"workload", "OMV hit rate", "old-data fetches"});
    for (const auto &out : scaled.run())
        t2.row().cell(out.label).pct(out.value.omvHitRate, 2).cell(
            out.value.oldDataFetches);
    t2.print(os);
}

namespace {

/** One boot-scrub scenario outcome (Section V-B). */
struct ScrubOutcome
{
    std::uint64_t injected = 0;
    ScrubReport report;
    bool pristine = false;
};

Table &
scrubRow(Table &t, const std::string &label, const ScrubOutcome &s)
{
    return t.row()
        .cell(label)
        .cell(s.injected)
        .cell(s.report.bitsCorrected)
        .cell(std::uint64_t{s.report.chipsRecovered})
        .cell(s.pristine && !s.report.uncorrectable ? "yes" : "NO");
}

} // namespace

void
bootScrubCampaign(std::ostream &os, const SweepOptions &opts,
                  const BenchScale &scale)
{
    const unsigned blocks = scale.scrubBlocks;
    ParallelSweep<ScrubOutcome> sweep(2018, opts);

    sweep.add("1e-3 RBER (1 year unrefreshed ReRAM)",
              [blocks](Rng &rng) {
                  ScrubOutcome s;
                  PmRank rank(blocks);
                  rank.initialize(rng);
                  s.injected = rank.injectErrors(rng, rber::bootTarget);
                  s.report = rank.bootScrub();
                  s.pristine = rank.isPristine();
                  return s;
              });
    sweep.add("dead data chip + 1e-4 residual errors",
              [blocks](Rng &rng) {
                  ScrubOutcome s;
                  PmRank rank(blocks);
                  rank.initialize(rng);
                  rank.failChip(4, rng);
                  s.injected = rank.injectErrors(rng, 1e-4);
                  s.report = rank.bootScrub();
                  s.pristine = rank.isPristine();
                  return s;
              });
    sweep.add("dead parity chip", [blocks](Rng &rng) {
        ScrubOutcome s;
        PmRank rank(blocks);
        rank.initialize(rng);
        rank.failChip(8, rng); // parity chip
        s.report = rank.bootScrub();
        s.pristine = rank.isPristine();
        return s;
    });

    Table t({"scenario", "injected bit errors", "bits corrected",
             "chips rebuilt", "pristine after"});
    for (const auto &out : sweep.run())
        scrubRow(t, out.label, out.value);
    t.print(os);

    os << "\nScrub wall-time estimate (fetch every VLEW over the"
          " memory bus):\n";
    Table s({"capacity per channel", "DDR4-2400 bus", "scrub time"});
    for (double tb : {0.25, 0.5, 1.0}) {
        const double seconds =
            PmRank::scrubSeconds(tb * 1e12, 2400e6 * 8);
        s.row()
            .cell(std::to_string(tb) + " TB")
            .cell("19.2 GB/s")
            .cell(Table::formatNumber(seconds, 3) + " s");
    }
    s.print(os);
    os << "\nPaper: scrubbing a terabyte channel takes less than"
          " 1.5 minutes.\n";
}

namespace {

/** One wear-leveling campaign outcome (Section V-E). */
struct WearOutcome
{
    double imbalance = 0.0;
    std::uint64_t migrations = 0;
    double overhead = 0.0;
};

WearOutcome
hammerFrames(unsigned interval, unsigned hot_writes)
{
    // interval == 0 disables leveling (gap never moves).
    WearLevelledRank rank(31, interval ? interval : 1u << 30, 1);
    std::uint8_t data[blockBytes] = {};
    for (unsigned w = 0; w < hot_writes; ++w) {
        data[0] = static_cast<std::uint8_t>(w);
        rank.writeBlock(5, data);
    }
    WearOutcome out;
    out.imbalance = rank.wearImbalance();
    out.migrations = rank.migrations();
    // Each migration costs two extra writes (copy + zero).
    out.overhead =
        2.0 * out.migrations / static_cast<double>(hot_writes);
    return out;
}

} // namespace

void
wearLevelingCampaign(std::ostream &os, const SweepOptions &opts,
                     const BenchScale &scale)
{
    const unsigned hot_writes = scale.wearWrites;
    ParallelSweep<WearOutcome> sweep(87, opts);
    for (unsigned interval : {0u, 64u, 16u, 4u}) {
        const std::string label =
            interval ? "interval " + std::to_string(interval) : "off";
        sweep.add(label, [interval, hot_writes] {
            return hammerFrames(interval, hot_writes);
        });
    }

    Table t({"gap interval (writes)", "peak/mean wear", "migrations",
             "migration write overhead"});
    for (const auto &out : sweep.run())
        t.row()
            .cell(out.label)
            .cell(out.value.imbalance, 3)
            .cell(out.value.migrations)
            .pct(out.label == "off" ? 0.0 : out.value.overhead);
    t.print(os);
    os << "\nPerfect leveling is 1.0; without leveling the hot"
          " frame takes the full write\nstream (imbalance ~="
          " frame count). The psi knob trades leveling quality"
          " for\nmigration bandwidth, as in start-gap [87].\n";

    // Wear-out detection + disable (the [86] flow): one fixed
    // scenario probing a single rank, inherently sequential.
    os << "\nWear-out detection via write-verify:\n";
    PmRank rank(64);
    Rng rng(9);
    rank.initialize(rng);
    rank.setStuckBit(2, 12 * chipBeatBytes + 3, 4, true);
    rank.setStuckBit(5, 12 * chipBeatBytes + 6, 1, false);
    std::uint8_t probe[blockBytes];
    unsigned detected = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
        for (auto &b : probe)
            b = static_cast<std::uint8_t>(rng.next() & 0xFF);
        detected = std::max(detected, rank.writeVerify(12, probe));
    }
    os << "  block 12 has 2 stuck cells; write-verify detected "
       << detected << " bad bit(s) -> disableBlock(12)\n";
    rank.disableBlock(12);
    std::uint8_t out[blockBytes];
    unsigned ok = 0;
    for (unsigned b = 0; b < 32; ++b) {
        if (rank.isDisabled(b))
            continue;
        if (rank.readBlock(b, out).dataCorrect)
            ++ok;
    }
    os << "  " << ok << "/31 sibling blocks of the VLEW remain"
       << " fully readable after disabling.\n";
}

namespace {

/** Read-path tallies for one RBER point of the fault sweep. */
struct FaultPoint
{
    double rber = 0.0;
    std::uint64_t reads = 0, clean = 0, accepted = 0, vlew = 0,
                  failed = 0, sdc = 0;
};

FaultPoint
faultSweepOne(double rber, Rng &rng, const BenchScale &scale)
{
    FaultPoint pt;
    pt.rber = rber;

    PmRank rank(scale.faultBlocks);
    rank.initialize(rng);

    std::uint8_t out[blockBytes];
    for (int round = 0; round < scale.faultRounds; ++round) {
        rank.injectErrors(rng, rber);
        for (unsigned b = 0; b < rank.blocks(); ++b) {
            const auto res = rank.readBlock(b, out);
            ++pt.reads;
            switch (res.path) {
              case ReadPath::Clean: ++pt.clean; break;
              case ReadPath::RsAccepted: ++pt.accepted; break;
              case ReadPath::VlewFallback:
              case ReadPath::ChipRecovered: ++pt.vlew; break;
              case ReadPath::Failed: ++pt.failed; break;
            }
            if (!res.dataCorrect && res.path != ReadPath::Failed)
                ++pt.sdc;
        }
        rank.bootScrub();
    }
    return pt;
}

} // namespace

void
faultSweep(std::ostream &os, const SweepOptions &opts,
           const BenchScale &scale)
{
    const std::vector<double> rbers = {1e-5, 7e-5, 2e-4,
                                       5e-4, 1e-3, 2e-3};
    ParallelSweep<FaultPoint> sweep(16, opts);
    for (double rber : rbers)
        sweep.add("rber " + Table::formatNumber(rber, 2),
                  [rber, scale](Rng &rng) {
                      return faultSweepOne(rber, rng, scale);
                  });

    Table t({"RBER", "clean", "RS accepted", "VLEW fallback",
             "uncorrectable", "SDC"});
    for (const auto &out : sweep.run()) {
        const auto &pt = out.value;
        const double n = static_cast<double>(pt.reads);
        t.row()
            .cell(pt.rber, 2)
            .pct(pt.clean / n, 2)
            .pct(pt.accepted / n, 2)
            .pct(pt.vlew / n, 4)
            .pct(pt.failed / n, 4)
            .cell(pt.sdc);
    }
    t.print(os);

    os << "\nReading: the RS tier absorbs everything through the"
          " runtime rates; past the\nboot target the VLEW"
          " fallback carries the load. SDC stays at zero"
          " throughout —\nthe acceptance threshold converts"
          " would-be miscorrections into VLEW fetches.\n";
}

} // namespace nvck
