/**
 * @file
 * Section V-B: boot-time error correction. Exercises the bit-accurate
 * rank model end to end — inject the week-to-year RBER, scrub, verify
 * every stored bit — and reproduces the scrub-time estimate (<1.5
 * minutes per terabyte channel).
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/pm_rank.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"

using namespace nvck;

int
main()
{
    banner("Section V-B", "boot-time scrub on the bit-accurate rank");

    Rng rng(2018);
    Table t({"scenario", "injected bit errors", "bits corrected",
             "chips rebuilt", "pristine after"});

    {
        PmRank rank(512);
        rank.initialize(rng);
        const auto injected = rank.injectErrors(rng, rber::bootTarget);
        const auto report = rank.bootScrub();
        t.row()
            .cell("1e-3 RBER (1 year unrefreshed ReRAM)")
            .cell(injected)
            .cell(report.bitsCorrected)
            .cell(std::uint64_t{report.chipsRecovered})
            .cell(rank.isPristine() && !report.uncorrectable ? "yes"
                                                             : "NO");
    }
    {
        PmRank rank(512);
        rank.initialize(rng);
        rank.failChip(4, rng);
        const auto injected = rank.injectErrors(rng, 1e-4);
        const auto report = rank.bootScrub();
        t.row()
            .cell("dead data chip + 1e-4 residual errors")
            .cell(injected)
            .cell(report.bitsCorrected)
            .cell(std::uint64_t{report.chipsRecovered})
            .cell(rank.isPristine() && !report.uncorrectable ? "yes"
                                                             : "NO");
    }
    {
        PmRank rank(512);
        rank.initialize(rng);
        rank.failChip(8, rng); // parity chip
        const auto report = rank.bootScrub();
        t.row()
            .cell("dead parity chip")
            .cell(std::uint64_t{0})
            .cell(report.bitsCorrected)
            .cell(std::uint64_t{report.chipsRecovered})
            .cell(rank.isPristine() && !report.uncorrectable ? "yes"
                                                             : "NO");
    }
    t.print(std::cout);

    std::cout << "\nScrub wall-time estimate (fetch every VLEW over the"
                 " memory bus):\n";
    Table s({"capacity per channel", "DDR4-2400 bus", "scrub time"});
    for (double tb : {0.25, 0.5, 1.0}) {
        const double seconds =
            PmRank::scrubSeconds(tb * 1e12, 2400e6 * 8);
        s.row()
            .cell(std::to_string(tb) + " TB")
            .cell("19.2 GB/s")
            .cell(Table::formatNumber(seconds, 3) + " s");
    }
    s.print(std::cout);
    std::cout << "\nPaper: scrubbing a terabyte channel takes less than"
                 " 1.5 minutes.\n";
    return 0;
}
