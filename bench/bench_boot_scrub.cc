/**
 * @file
 * Section V-B: boot-time error correction. Exercises the bit-accurate
 * rank model end to end — inject the week-to-year RBER, scrub, verify
 * every stored bit — and reproduces the scrub-time estimate (<1.5
 * minutes per terabyte channel).
 *
 * The three scenarios are independent ParallelSweep points, each
 * seeding its own rank from a per-point Rng substream, so the
 * campaign runs on every core and stays byte-identical for any
 * NVCK_JOBS.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Section V-B", "boot-time scrub on the bit-accurate rank");
    bootScrubCampaign(std::cout, opts);
    return 0;
}
