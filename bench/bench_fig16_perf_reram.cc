/**
 * @file
 * Figure 16: proposal performance normalized to the bit-error-only
 * baseline under ReRAM latencies (tRCD 120ns, tWR 300ns). The paper
 * reports a 1.4% average overhead; IPC for WHISPER workloads, FLOPS
 * for SPLASH.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 16",
           "performance normalized to baseline, ReRAM latencies");

    const auto rc = benchRunControl();
    Table t({"workload", "metric", "baseline", "proposal", "normalized",
             "C"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &name : allBenchmarkNames()) {
        const auto base = runBaseline(PmTech::Reram, name, 1, rc);
        const auto prop = runProposal(PmTech::Reram, name, 1, rc);
        const double rel = prop.perf / base.perf;
        t.row()
            .cell(name)
            .cell(findProfile(name).flops ? "MFLOPS" : "IPC")
            .cell(base.perf, 4)
            .cell(prop.perf, 4)
            .cell(rel, 4)
            .cell(prop.cFactor, 3);
        sum += rel;
        ++count;
    }
    t.print(std::cout);
    std::cout << "\naverage normalized performance: " << sum / count
              << "  (paper: 0.986, i.e. 1.4% overhead)\n";
    return 0;
}
