/**
 * @file
 * Figure 16: proposal performance normalized to the bit-error-only
 * baseline under ReRAM latencies (tRCD 120ns, tWR 300ns). The paper
 * reports a 1.4% average overhead; IPC for WHISPER workloads, FLOPS
 * for SPLASH.
 *
 * Workloads run as independent work items on the parallel experiment
 * engine (NVCK_JOBS=1 opts out); results print in submission order so
 * the table matches the serial run byte for byte.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/parallel.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 16",
           "performance normalized to baseline, ReRAM latencies");

    const auto rc = benchRunControl();
    const auto names = allBenchmarkNames();
    const auto results = runAbSweep(PmTech::Reram, names, 1, rc);

    Table t({"workload", "metric", "baseline", "proposal", "normalized",
             "C"});
    double sum = 0.0;
    unsigned count = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &base = results[i].baseline;
        const auto &prop = results[i].proposal;
        const double rel = prop.perf / base.perf;
        t.row()
            .cell(names[i])
            .cell(findProfile(names[i]).flops ? "MFLOPS" : "IPC")
            .cell(base.perf, 4)
            .cell(prop.perf, 4)
            .cell(rel, 4)
            .cell(prop.cFactor, 3);
        sum += rel;
        ++count;
    }
    t.print(std::cout);
    std::cout << "\naverage normalized performance: " << sum / count
              << "  (paper: 0.986, i.e. 1.4% overhead)\n";
    return 0;
}
