/**
 * @file
 * Figure 16: proposal performance normalized to the bit-error-only
 * baseline under ReRAM latencies (tRCD 120ns, tWR 300ns). The paper
 * reports a 1.4% average overhead; IPC for WHISPER workloads, FLOPS
 * for SPLASH.
 *
 * Workloads run as independent ParallelSweep points (NVCK_JOBS=1 opts
 * out); results print in submission order so the table matches the
 * serial run byte for byte. The baseline/proposal pair inside one
 * point stays sequential (pass 2 needs pass 1's C factor).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/parallel.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 16",
           "performance normalized to baseline, ReRAM latencies");

    const auto rc = benchRunControl();
    ParallelSweep<AbResult> sweep(16, opts);
    for (const auto &name : allBenchmarkNames())
        sweep.add(name, [name, rc] {
            AbResult ab;
            ab.baseline = runBaseline(PmTech::Reram, name, 1, rc);
            ab.proposal = runProposal(PmTech::Reram, name, 1, rc);
            return ab;
        });

    Table t({"workload", "metric", "baseline", "proposal", "normalized",
             "C"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &out : sweep.run()) {
        const auto &base = out.value.baseline;
        const auto &prop = out.value.proposal;
        const double rel = prop.perf / base.perf;
        t.row()
            .cell(out.label)
            .cell(findProfile(out.label).flops ? "MFLOPS" : "IPC")
            .cell(base.perf, 4)
            .cell(prop.perf, 4)
            .cell(rel, 4)
            .cell(prop.cFactor, 3);
        sum += rel;
        ++count;
    }
    t.print(std::cout);
    if (count)
        std::cout << "\naverage normalized performance: " << sum / count
                  << "  (paper: 0.986, i.e. 1.4% overhead)\n";
    return 0;
}
