/**
 * @file
 * Figure 3: bit-error-correcting BCH in commercial Flash: 512B-data
 * codewords at 12..41-bit correction, the storage-system existence
 * proof that very long ECC words buy strong correction cheaply.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "ecc/code_params.hh"
#include "reliability/storage_model.hh"

using namespace nvck;

int
main()
{
    banner("Figure 3", "BCH ECC words used by commercial Flash (512B data)");

    const auto rows = flashEccCatalogue({1, 4, 8, 12, 24, 41}, 1e-15);
    Table t({"correction (bits)", "code bits", "storage overhead",
             "max RBER @ 1e-15 UE"});
    for (const auto &row : rows) {
        t.row()
            .cell(std::uint64_t{row.t})
            .cell(std::uint64_t{bchCheckBitsPaper(row.t, 512 * 8)})
            .pct(row.overhead)
            .cell(row.maxRber, 2);
    }
    t.print(std::cout);

    std::cout << "\nStorage-style chipkill (Section IV): 41-EC per chip"
                 " + 1 parity chip per 8 =\n  "
              << 100.0 * (rows.back().overhead +
                          (1.0 + rows.back().overhead) / 8.0)
              << "% total (paper: 13% + 1/8*(1+13%) = 27%)\n";
    return 0;
}
