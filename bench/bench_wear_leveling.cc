/**
 * @file
 * Wear-leveling study (Section V-E): a pathologically hot block hammers
 * one frame; start-gap migration spreads the writes across all frames
 * at a small migration-write cost. Sweeps the gap-movement interval
 * (psi) to show the level/overhead trade-off, and shows the write-
 * verify wear-out detector catching a worn cell.
 *
 * Each gap interval is one long-trial ParallelSweep point (a full
 * hot-write hammer campaign), so the sweep saturates every core.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Section V-E", "start-gap wear leveling on the protected rank");
    wearLevelingCampaign(std::cout, opts);
    return 0;
}
