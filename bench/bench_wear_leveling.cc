/**
 * @file
 * Wear-leveling study (Section V-E): a pathologically hot block hammers
 * one frame; start-gap migration spreads the writes across all frames
 * at a small migration-write cost. Sweeps the gap-movement interval
 * (psi) to show the level/overhead trade-off, and shows the write-
 * verify wear-out detector catching a worn cell.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "chipkill/wear.hh"
#include "common/table.hh"

using namespace nvck;

int
main()
{
    banner("Section V-E", "start-gap wear leveling on the protected rank");

    const unsigned hot_writes = 4000;
    Table t({"gap interval (writes)", "peak/mean wear", "migrations",
             "migration write overhead"});
    for (unsigned interval : {0u, 64u, 16u, 4u}) {
        if (interval == 0) {
            // No leveling: all wear lands on one frame.
            WearLevelledRank rank(31, 1u << 30, 1);
            std::uint8_t data[blockBytes] = {};
            for (unsigned w = 0; w < hot_writes; ++w) {
                data[0] = static_cast<std::uint8_t>(w);
                rank.writeBlock(5, data);
            }
            t.row()
                .cell("off")
                .cell(rank.wearImbalance(), 3)
                .cell(std::uint64_t{rank.migrations()})
                .pct(0.0);
            continue;
        }
        WearLevelledRank rank(31, interval, 1);
        std::uint8_t data[blockBytes] = {};
        for (unsigned w = 0; w < hot_writes; ++w) {
            data[0] = static_cast<std::uint8_t>(w);
            rank.writeBlock(5, data);
        }
        // Each migration costs two extra writes (copy + zero).
        const double overhead =
            2.0 * rank.migrations() / static_cast<double>(hot_writes);
        t.row()
            .cell(std::uint64_t{interval})
            .cell(rank.wearImbalance(), 3)
            .cell(std::uint64_t{rank.migrations()})
            .pct(overhead);
    }
    t.print(std::cout);
    std::cout << "\nPerfect leveling is 1.0; without leveling the hot"
                 " frame takes the full write\nstream (imbalance ~="
                 " frame count). The psi knob trades leveling quality"
                 " for\nmigration bandwidth, as in start-gap [87].\n";

    // Wear-out detection + disable (the [86] flow).
    std::cout << "\nWear-out detection via write-verify:\n";
    PmRank rank(64);
    Rng rng(9);
    rank.initialize(rng);
    rank.setStuckBit(2, 12 * chipBeatBytes + 3, 4, true);
    rank.setStuckBit(5, 12 * chipBeatBytes + 6, 1, false);
    std::uint8_t probe[blockBytes];
    unsigned detected = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
        for (auto &b : probe)
            b = static_cast<std::uint8_t>(rng.next() & 0xFF);
        detected = std::max(detected, rank.writeVerify(12, probe));
    }
    std::cout << "  block 12 has 2 stuck cells; write-verify detected "
              << detected << " bad bit(s) -> disableBlock(12)\n";
    rank.disableBlock(12);
    std::uint8_t out[blockBytes];
    unsigned ok = 0;
    for (unsigned b = 0; b < 32; ++b) {
        if (rank.isDisabled(b))
            continue;
        if (rank.readBlock(b, out).dataCorrect)
            ++ok;
    }
    std::cout << "  " << ok << "/31 sibling blocks of the VLEW remain"
              << " fully readable after disabling.\n";
    return 0;
}
