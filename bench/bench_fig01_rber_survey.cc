/**
 * @file
 * Figure 1: raw bit error rates of memory and storage technologies as
 * a function of time since last write/refresh. Prints the modelled
 * RBER curves with the paper's anchor points marked.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"

using namespace nvck;

int
main()
{
    banner("Figure 1", "RBERs of memory and storage vs retention time");

    const double times[] = {1.0,
                            60.0,
                            secondsPerHour,
                            secondsPerDay,
                            secondsPerWeek,
                            30 * secondsPerDay,
                            secondsPerYear};
    const char *labels[] = {"1 s",    "1 min",  "1 hour", "1 day",
                            "1 week", "30 days", "1 year"};

    std::vector<std::string> headers = {"technology"};
    for (const char *l : labels)
        headers.emplace_back(l);
    Table t(headers);
    for (MemTech tech : allMemTechs()) {
        t.row().cell(memTechName(tech));
        for (double seconds : times)
            t.cell(rberAfter(tech, seconds), 2);
    }
    t.print(std::cout);

    std::cout << "\nPaper anchor points (Section II-B):\n"
              << "  persistent-memory RBER target 1e-3 = ReRAM @ 1 year"
                 " = 3-bit PCM @ 1 week\n"
              << "  ReRAM @ 1 year           : "
              << rberAfter(MemTech::Reram, secondsPerYear) << "\n"
              << "  3-bit PCM @ 1 week       : "
              << rberAfter(MemTech::Pcm3, secondsPerWeek) << "\n"
              << "  3-bit PCM @ 1 hour (runtime, hourly refresh): "
              << rberAfter(MemTech::Pcm3, secondsPerHour) << "\n"
              << "  runtime ReRAM            : "
              << rberAfter(MemTech::Reram, 1.0) << "\n"
              << "\nObservation (paper): NVRAM RBER resembles Flash far"
                 " more than DRAM.\n";
    return 0;
}
