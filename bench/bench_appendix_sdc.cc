/**
 * @file
 * Appendix: miscorrection (silent data corruption) probability of the
 * per-block RS(72,64) as a function of the correction bound t. The
 * paper's Term A (enough errors to reach another codeword's ball) and
 * Term B (density of codeword balls) multiply to the SDC rate:
 * 3.2e-11 at t = 4 versus 3.3e-22 at t = 2 — the entire justification
 * for the acceptance threshold.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"

using namespace nvck;

int
main()
{
    banner("Appendix", "RS(72,64) miscorrection probability model");

    for (double rber : {rber::runtimePcm3Hourly, rber::runtimeReram}) {
        SdcInputs in;
        in.rber = rber;
        std::cout << "\nRBER = " << rber << ":\n";
        Table t({"t (corrections)", "n_th", "Term A", "Term B",
                 "SDC rate", "vs 1e-17 target"});
        for (unsigned t_val : {1u, 2u, 3u, 4u}) {
            const unsigned n_th = in.checkSymbols + 1 - t_val;
            const double a = sdcTermA(in, t_val);
            const double b = sdcTermB(in, t_val);
            const double sdc = a * b;
            t.row()
                .cell(std::uint64_t{t_val})
                .cell(std::uint64_t{n_th})
                .cell(a, 2)
                .cell(b, 2)
                .cell(sdc, 2)
                .cell(sdc / rber::sdcTargetPerBlock, 2);
        }
        t.print(std::cout);
    }

    SdcInputs paper;
    paper.rber = 2e-4;
    std::cout << "\nPaper checkpoints @ 2e-4: Term A(t=4) = 1.3e-7,"
                 " Term B(t=4) = 2.4e-4 -> SDC 3.2e-11\n"
              << "                          Term A(t=2) = 3.6e-11,"
                 " Term B(t=2) = 9.1e-12 -> SDC 3.3e-22\n"
              << "Model:                    SDC(t=4) = " << sdcRate(paper, 4)
              << ", SDC(t=2) = " << sdcRate(paper, 2) << "\n"
              << "t = 4 misses the 1e-17 target by ~3,000,000x;"
                 " t = 2 beats it by orders of magnitude.\n";
    return 0;
}
