/**
 * @file
 * Fault-lifecycle campaign for the online RAS engine: every trial
 * boots a complete System over a mirrored bit-accurate rank, runs a
 * persistent workload while a multi-phase fault stream (transient
 * flips -> intermittent victim-chip flips -> progressive stuck-at
 * cells -> full chip kill) lands on the media, and checks that the
 * patrol scrubber + health ledger detect the kill and migrate the
 * rank to degraded mode live — no silent data corruption, no lost
 * durable write, failover engaged within a bounded number of demand
 * accesses, and transient-only trials never failing over.
 *
 * Knobs (strict parse, common/env.hh):
 *   NVCK_RAS_TRIALS     trials across all (tech x fault plan) cells
 *                       (default 6000)
 *   NVCK_RAS_PATROL     patrol cycle period in ns
 *   NVCK_RAS_THRESHOLD  chip-kill bucket threshold
 *   NVCK_RAS_DECAY      ledger decay interval in ns
 *   NVCK_CAMPAIGN_JSON  also write the shared report there as JSON
 *
 * Exit status is non-zero when any invariant was violated; `--seed N`
 * replays a CI failure verbatim and `--jobs N` never changes the
 * bytes.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "common/env.hh"
#include "sim/ras.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("RAS lifecycle campaign",
           "patrol scrub, health ledger, and live degraded failover");

    RasCampaignConfig cfg;
    if (const auto trials = envPositive("NVCK_RAS_TRIALS"))
        cfg.trials = *trials;
    cfg.trial.ras = RasConfig::fromEnv();

    const RasTotals totals = rasCampaign(std::cout, opts, cfg);

    const RasTally sum = totals.total();
    CampaignReport report;
    report.name = "ras-lifecycle-campaign";
    report.seed = opts.seedSet ? opts.seed : cfg.seed;
    report.trials = sum.trials;
    report.violations = totals.violations();
    report.counters = {{"patrol_bursts", sum.patrolBursts},
                       {"patrol_yields", sum.patrolYields},
                       {"scrub_bits", sum.scrubBits},
                       {"row_alarms", sum.rowAlarms},
                       {"targeted_scrubs", sum.targetedScrubs},
                       {"kills", sum.kills},
                       {"failovers", sum.failovers},
                       {"migrated_blocks", sum.migrated},
                       {"degraded_reads", sum.degradedReads},
                       {"degraded_writes", sum.degradedWrites},
                       {"drained_at_failover", sum.drainedAtFailover},
                       {"detect_accesses_max", sum.detectAccessesMax},
                       {"sdc", sum.sdc},
                       {"lost_durable", sum.lostDurable},
                       {"reported_ue", sum.ue},
                       {"false_kills", sum.falseKills},
                       {"missed_failovers", sum.missedFailovers},
                       {"engage_overruns", sum.engageOverruns}};
    if (const char *path = std::getenv("NVCK_CAMPAIGN_JSON")) {
        std::ofstream json(path);
        campaignJson(json, report);
    }
    return campaignVerdict(std::cout, report);
}
