/**
 * @file
 * Throughput benchmark for the discrete-event timing kernel
 * (common/event.hh): the pooled two-tier calendar queue against the
 * legacy heap kernel (`NVCK_EVENT_QUEUE=heap`), run side by side in
 * one process via the SystemConfig::kernel override.
 *
 * Three scenarios:
 *   - churn_ring:  self-rescheduling event sources whose delays all
 *     land inside the calendar window — the tCAS/tBurst/step-quantum
 *     regime that dominates every timing sweep.
 *   - churn_mixed: same churn with ~1.6% of delays beyond the window,
 *     exercising the overflow tier and its promotions.
 *   - fig16_reram: one fig16-shaped proposal run (ReRAM latencies,
 *     WHISPER workload) end to end, reporting both events/sec and
 *     simulated-ticks/sec.
 *
 * Every scenario is identity-cross-checked before it is timed: the
 * churn scripts must drain in the same order under both kernels (an
 * order hash over (tick, source) pairs) and the fig16 runs must agree
 * on every RunMetrics field; any divergence fails the run. "mbps" in
 * the JSON is Mevents/s so scripts/check_bench.py gates it unchanged.
 *
 * Usage: bench_timing_throughput [--points N] [--seed S] [--quick]
 *                                [--json PATH]
 *   --points N  scenarios to run (default all 3, CI smoke uses 2).
 *   --seed S    base RNG seed (default 2018).
 *   --quick     shorter timing windows (CI smoke).
 *   --json P    output path (default BENCH_timing_throughput.json).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "chipkill/schemes.hh"
#include "common/event.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"

namespace {

using namespace nvck;

/** Defeats dead-code elimination across timed calls. */
volatile std::uint64_t g_sink = 0;

struct OpResult
{
    double mevents = 0.0; //!< million executed events per second
    double mticks = 0.0;  //!< million simulated ticks per second
    double seconds = 0.0;
    std::uint64_t iters = 0;
    std::uint64_t events = 0;     //!< executed per op
    std::uint64_t promotions = 0; //!< overflow promotions per op
    std::uint64_t peakPending = 0;
    std::uint64_t poolHighWater = 0;
};

/** One timing record: scenario x kernel. */
struct Record
{
    std::string scenario;
    std::string path;
    OpResult res;
};

/**
 * Self-rescheduling event sources: each handler draws the next delay
 * and requeues itself until @p horizon. Delays stay inside the
 * calendar window except every ~@p longEvery-th draw, which jumps past
 * ringSpan into the overflow tier (0 disables long jumps). The handler
 * captures {state pointer, source id} — 16 bytes, well inside
 * InlineAction's budget and std::function's SSO, so neither kernel
 * allocates per event and the comparison is pure queue mechanics.
 */
struct ChurnScript
{
    EventQueue &eq;
    Rng rng;
    Tick horizon;
    unsigned longEvery;
    bool trace;
    std::uint64_t orderHash = 0xcbf29ce484222325ull; //!< FNV-1a basis

    ChurnScript(EventQueue &queue, std::uint64_t seed, Tick limit,
                unsigned long_every, bool want_trace)
        : eq(queue), rng(seed), horizon(limit), longEvery(long_every),
          trace(want_trace)
    {}

    void
    fire(unsigned id)
    {
        if (trace) {
            orderHash ^= eq.now() * 0x9e3779b97f4a7c15ull + id;
            orderHash *= 0x100000001b3ull;
        }
        Tick delta = 1 + rng.below(64);
        if (longEvery && rng.below(longEvery) == 0)
            delta = EventQueue::ringSpan + rng.below(1024);
        const Tick next = eq.now() + delta;
        if (next <= horizon)
            eq.schedule(next, [this, id] { fire(id); });
    }
};

/** One full churn drain; returns the queue's counters + order hash. */
OpResult
runChurn(EventKernel kernel, std::uint64_t seed, Tick horizon,
         unsigned long_every, bool trace, std::uint64_t *hash_out)
{
    constexpr unsigned sources = 1024;
    EventQueue eq(kernel);
    ChurnScript script(eq, seed, horizon, long_every, trace);
    for (unsigned id = 0; id < sources; ++id)
        eq.schedule(1 + id % 64, [&script, id] { script.fire(id); });
    eq.run();
    OpResult out;
    out.events = eq.stats().executed.value();
    out.promotions = eq.stats().overflowPromotions.value();
    out.peakPending = eq.stats().peakPending;
    out.poolHighWater = eq.stats().poolHighWater;
    if (hash_out)
        *hash_out = script.orderHash;
    g_sink = g_sink + eq.now();
    return out;
}

/** Repeat @p op until @p min_seconds accumulate; fill in the rates. */
template <typename F>
OpResult
measure(double min_seconds, double ticks_per_op, F &&op)
{
    using clock = std::chrono::steady_clock;
    OpResult out = op(); // warmup: faults tables in, primes caches
    std::uint64_t iters = 0;
    double seconds = 0.0;
    const auto start = clock::now();
    do {
        out = op();
        ++iters;
        seconds =
            std::chrono::duration<double>(clock::now() - start).count();
    } while (seconds < min_seconds);
    out.iters = iters;
    out.seconds = seconds;
    // The scripts are deterministic, so per-op counters are identical
    // across iterations; scale only the rates.
    const double per_op = out.seconds / static_cast<double>(out.iters);
    out.mevents = static_cast<double>(out.events) / per_op / 1e6;
    out.mticks = ticks_per_op / per_op / 1e6;
    return out;
}

void
benchChurn(std::vector<Record> &records, const std::string &scenario,
           std::uint64_t seed, Tick horizon, unsigned long_every,
           double min_seconds)
{
    // Identity gate: both kernels must drain the same script in the
    // same order before either is timed.
    std::uint64_t calendar_hash = 0, heap_hash = 0;
    const OpResult a = runChurn(EventKernel::Calendar, seed, horizon,
                                long_every, true, &calendar_hash);
    const OpResult b = runChurn(EventKernel::Heap, seed, horizon,
                                long_every, true, &heap_hash);
    if (calendar_hash != heap_hash || a.events != b.events) {
        std::cerr << "FATAL: calendar/heap drain divergence in "
                  << scenario << "\n";
        std::exit(1);
    }

    for (const EventKernel kernel :
         {EventKernel::Heap, EventKernel::Calendar}) {
        records.push_back({scenario, eventKernelName(kernel),
                           measure(min_seconds, 0.0, [&] {
                               return runChurn(kernel, seed, horizon,
                                               long_every, false,
                                               nullptr);
                           })});
    }
}

/** Exact-equality check over every RunMetrics field (exit 1). */
void
checkSameMetrics(const RunMetrics &a, const RunMetrics &b)
{
    const bool same =
        a.ipc == b.ipc && a.mflops == b.mflops && a.perf == b.perf &&
        a.cFactor == b.cFactor && a.omvHitRate == b.omvHitRate &&
        a.dirtyPmFraction == b.dirtyPmFraction &&
        a.omvFraction == b.omvFraction && a.pmReads == b.pmReads &&
        a.pmWrites == b.pmWrites && a.dramReads == b.dramReads &&
        a.dramWrites == b.dramWrites &&
        a.overheadReads == b.overheadReads &&
        a.overheadWrites == b.overheadWrites &&
        a.vlewFetches == b.vlewFetches &&
        a.oldDataFetches == b.oldDataFetches &&
        a.avgReadLatencyNs == b.avgReadLatencyNs &&
        a.avgWriteLatencyNs == b.avgWriteLatencyNs &&
        a.rowHitRate == b.rowHitRate;
    if (!same) {
        std::cerr << "FATAL: calendar/heap RunMetrics divergence in "
                  << "fig16_reram\n";
        std::exit(1);
    }
}

/** One fig16-shaped proposal run under the given kernel. */
OpResult
runFig16(EventKernel kernel, const std::string &workload,
         std::uint64_t seed, const RunControl &rc, RunMetrics *metrics)
{
    SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, proposalScheme(runtimeRberFor(PmTech::Reram)),
        workload, seed);
    cfg.kernel = kernel;
    const EventKernelTotals before = eventKernelTotals();
    const RunMetrics m = runOnce(cfg, rc);
    const EventKernelTotals after = eventKernelTotals();
    OpResult out;
    out.events = after.executed - before.executed;
    out.promotions = after.overflowPromotions - before.overflowPromotions;
    out.peakPending = after.maxPeakPending;
    out.poolHighWater = after.maxPoolHighWater;
    if (metrics)
        *metrics = m;
    g_sink = g_sink + m.pmReads;
    return out;
}

void
benchFig16(std::vector<Record> &records, std::uint64_t seed,
           double min_seconds, double scale)
{
    const RunControl rc = benchRunControl(scale);
    const double ticks_per_op =
        static_cast<double>(rc.warmup + rc.measure);
    const std::string workload = "ycsb"; // WHISPER, fig16's left half

    RunMetrics calendar_m, heap_m;
    runFig16(EventKernel::Calendar, workload, seed, rc, &calendar_m);
    runFig16(EventKernel::Heap, workload, seed, rc, &heap_m);
    checkSameMetrics(calendar_m, heap_m);

    for (const EventKernel kernel :
         {EventKernel::Heap, EventKernel::Calendar}) {
        records.push_back({"fig16_reram", eventKernelName(kernel),
                           measure(min_seconds, ticks_per_op, [&] {
                               return runFig16(kernel, workload, seed,
                                               rc, nullptr);
                           })});
    }
}

const Record *
find(const std::vector<Record> &records, const std::string &scenario,
     const std::string &path)
{
    for (const auto &r : records)
        if (r.scenario == scenario && r.path == path)
            return &r;
    return nullptr;
}

void
writeJson(const std::vector<Record> &records,
          const std::vector<std::string> &scenarios,
          const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    os << "{\n  \"benchmark\": \"timing_throughput\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        os << "    {\"scenario\": \"" << r.scenario << "\", \"path\": \""
           << r.path << "\", \"mbps\": " << r.res.mevents
           << ", \"mticks_per_s\": " << r.res.mticks
           << ", \"events\": " << r.res.events
           << ", \"overflow_promotions\": " << r.res.promotions
           << ", \"peak_pending\": " << r.res.peakPending
           << ", \"pool_high_water\": " << r.res.poolHighWater
           << ", \"iters\": " << r.res.iters
           << ", \"seconds\": " << r.res.seconds << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"speedup\": {\n";
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        const Record *heap = find(records, scenarios[s], "heap");
        const Record *cal = find(records, scenarios[s], "calendar");
        const double speedup = (heap && cal && heap->res.mevents > 0)
                                   ? cal->res.mevents / heap->res.mevents
                                   : 0.0;
        os << "    \"" << scenarios[s] << "\": " << speedup
           << (s + 1 < scenarios.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    double min_seconds = 0.25;
    unsigned points = 3;
    std::uint64_t seed = 2018;
    bool quick = false;
    std::string json_path = "BENCH_timing_throughput.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
            min_seconds = 0.04;
        } else if (arg == "--points" && i + 1 < argc) {
            points = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::stoull(argv[++i]);
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--points N] [--seed S] [--quick]"
                      << " [--json PATH]\n";
            return 2;
        }
    }

    banner("Event kernel",
           "timing-kernel throughput, calendar vs heap");

    std::vector<Record> records;
    std::vector<std::string> scenarios;
    if (points >= 1) {
        benchChurn(records, "churn_ring", seed,
                   quick ? 20000 : 100000, 0, min_seconds);
        scenarios.push_back("churn_ring");
    }
    if (points >= 2) {
        // The horizon must span several ring windows or the long jumps
        // would sail past it and never reach the overflow tier.
        benchChurn(records, "churn_mixed", seed ^ 0x16,
                   (quick ? 2 : 6) * EventQueue::ringSpan, 64,
                   min_seconds);
        scenarios.push_back("churn_mixed");
    }
    if (points >= 3) {
        benchFig16(records, seed, min_seconds, quick ? 0.05 : 0.25);
        scenarios.push_back("fig16_reram");
    }

    Table table({"scenario", "heap Mev/s", "calendar Mev/s", "speedup",
                 "events/op"});
    double churn_speedup = 0.0;
    for (const auto &scenario : scenarios) {
        const Record *heap = find(records, scenario, "heap");
        const Record *cal = find(records, scenario, "calendar");
        const double speedup = cal->res.mevents / heap->res.mevents;
        if (scenario.rfind("churn_", 0) == 0 && speedup > churn_speedup)
            churn_speedup = speedup;
        table.row()
            .cell(scenario)
            .cell(heap->res.mevents)
            .cell(cal->res.mevents)
            .cell(speedup)
            .cell(static_cast<double>(cal->res.events), 0);
    }
    table.print(std::cout);
    std::cout << "best event-kernel speedup (churn): "
              << Table::formatNumber(churn_speedup, 3) << "x\n";
    if (const Record *cal = find(records, "fig16_reram", "calendar")) {
        const Record *heap = find(records, "fig16_reram", "heap");
        std::cout << "fig16 end-to-end: "
                  << Table::formatNumber(heap->res.mticks, 3) << " -> "
                  << Table::formatNumber(cal->res.mticks, 3)
                  << " Mticks/s simulated\n";
    }

    writeJson(records, scenarios, json_path);
    return 0;
}
