/**
 * @file
 * Ablation study of the proposal's design choices (DESIGN.md index):
 *
 *  1. OMV caching in the LLC (Section V-D): turning it off forces an
 *     off-chip old-data fetch before every PM write.
 *  2. EUR coalescing (Section V-D): turning it off charges a code-bit
 *     write per data write (C = 1) in the iso-endurance inflation.
 *  3. The naive VLEW deployment (Section IV / Fig 5) with both
 *     optimizations absent and every errored read fetching the VLEW.
 *  4. Degraded-mode VLEW reconfiguration after chip retirement
 *     (Section V-E): correction fetch cost drops from ~36 to ~7 blocks.
 *
 * Each workload is one ParallelSweep point running its five system
 * configurations; the five runs inside one point stay sequential
 * because the ablations reuse the full proposal's measured C factor.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/degraded.hh"
#include "common/table.hh"
#include "sim/parallel.hh"

using namespace nvck;

namespace {

/** Normalized-performance columns for one workload. */
struct AblationRow
{
    double full = 0.0;
    double noOmv = 0.0;
    double noEur = 0.0;
    double naive = 0.0;
};

RunMetrics
runScheme(PmTech tech, const std::string &workload,
          const SchemeTiming &scheme, const RunControl &rc)
{
    return runOnce(SystemConfig::make(tech, scheme, workload), rc);
}

AblationRow
ablateOne(PmTech tech, const std::string &w, const RunControl &rc)
{
    const double rber = runtimeRberFor(tech);
    const auto base = runBaseline(tech, w, 1, rc);

    // Full proposal via the standard two-pass protocol.
    const auto full = runProposal(tech, w, 1, rc);

    // No OMV: every PM write fetches old data off-chip first.
    SchemeTiming no_omv = proposalScheme(rber);
    no_omv.omvEnabled = false;
    no_omv.fetchOldOnOmvMiss = false;
    no_omv.fetchOldAlways = true;
    applyCFactor(no_omv, full.cFactor);
    const auto no_omv_m = runScheme(tech, w, no_omv, rc);

    // No EUR: every data write also writes its 33B of code bits.
    SchemeTiming no_eur = proposalScheme(rber);
    no_eur.eurEnabled = false;
    applyCFactor(no_eur, 1.0);
    const auto no_eur_m = runScheme(tech, w, no_eur, rc);

    // Naive VLEW: no runtime RS reuse, no OMV, no EUR.
    SchemeTiming naive = naiveVlewScheme(rber);
    applyCFactor(naive, 1.0);
    const auto naive_m = runScheme(tech, w, naive, rc);

    AblationRow row;
    row.full = full.perf / base.perf;
    row.noOmv = no_omv_m.perf / base.perf;
    row.noEur = no_eur_m.perf / base.perf;
    row.naive = naive_m.perf / base.perf;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Ablation", "what each optimization of the proposal buys");

    const auto rc = benchRunControl();
    const PmTech tech = PmTech::Pcm;

    ParallelSweep<AblationRow> sweep(42, opts);
    for (const std::string w : {"echo", "btree", "hashmap"})
        sweep.add(w, [tech, w, rc] { return ablateOne(tech, w, rc); });

    Table t({"workload", "baseline", "full proposal", "no OMV caching",
             "no EUR (C=1)", "naive VLEW"});
    for (const auto &out : sweep.run())
        t.row()
            .cell(out.label)
            .cell(1.0, 4)
            .cell(out.value.full, 4)
            .cell(out.value.noOmv, 4)
            .cell(out.value.noEur, 4)
            .cell(out.value.naive, 4);
    t.print(std::cout);

    std::cout << "\nDegraded-mode reconfiguration (Section V-E):\n";
    DegradedRank degraded(256);
    const ProposalParams p;
    Table d({"mode", "VLEW span", "blocks fetched per correction"});
    d.row()
        .cell("healthy (per-chip VLEW)")
        .cell(std::to_string(p.blocksPerVlew()) + " blocks/chip")
        .cell(std::uint64_t{p.vlewFetchOverheadBlocks() + 1});
    d.row()
        .cell("degraded (striped VLEW)")
        .cell(std::to_string(degraded.blocksPerVlew()) +
              " blocks/rank")
        .cell(std::uint64_t{degraded.correctionFetchBlocks() + 1});
    d.print(std::cout);
    std::cout << "\nReconfiguration keeps VLEW length and strength —"
                 " no extra storage — while\ncutting the correction"
                 " fetch by ~5x for ranks that lost a chip.\n";
    return 0;
}
