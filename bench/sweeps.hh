/**
 * @file
 * The migrated figure sweeps, factored out of the bench mains so they
 * can run in two ways: as the standalone `bench_*` binaries (which
 * just print the banner, parse SweepOptions, and call one of these),
 * and in-process from the golden-output regression tests, which run
 * each sweep at reduced cost into a string stream and diff it against
 * the checked-in files under tests/golden/ for NVCK_JOBS=1 and
 * NVCK_JOBS=8.
 *
 * Every function declares its work as ParallelSweep points and only
 * formats tables afterwards; none of them may contain a serial
 * per-workload/per-point trial loop. Everything written to @p os must
 * be byte-identical for any worker count — wall-clock timing and
 * sweep-selection notes go to stderr via the driver, never to @p os.
 */

#ifndef NVCK_BENCH_SWEEPS_HH
#define NVCK_BENCH_SWEEPS_HH

#include <ostream>

#include "sim/parallel.hh"

namespace nvck {

/**
 * Cost knobs so the golden tests and smoke jobs can run the exact
 * same sweep shapes at a fraction of the full-figure budget. The
 * defaults reproduce the published bench output.
 */
struct BenchScale
{
    double time = 1.0;           //!< multiplies every RunControl window
    unsigned scrubBlocks = 512;  //!< boot-scrub rank capacity (blocks)
    unsigned faultBlocks = 1024; //!< fault-sweep rank capacity (blocks)
    int faultRounds = 4;         //!< inject/scrub rounds per RBER point
    unsigned wearWrites = 4000;  //!< hot writes per wear-leveling point
};

/** The scale the golden regression tests (and their files) use. */
BenchScale goldenScale();

/** Figure 4: storage cost vs VLEW codeword length (analytic model). */
void fig04StorageVsCodeword(std::ostream &os, const SweepOptions &opts);

/** Figure 14: off-chip access breakdown per workload. */
void fig14AccessBreakdown(std::ostream &os, const SweepOptions &opts,
                          const BenchScale &scale = BenchScale{});

/** Figure 15: C factor (coalesced code-bit writes per PM write). */
void fig15Cfactor(std::ostream &os, const SweepOptions &opts,
                  const BenchScale &scale = BenchScale{});

/** Figure 18: OMV served-from-LLC rate, plus scaled-cache section. */
void fig18OmvHitRate(std::ostream &os, const SweepOptions &opts,
                     const BenchScale &scale = BenchScale{});

/** Section V-B: boot-scrub scenarios on the bit-accurate rank. */
void bootScrubCampaign(std::ostream &os, const SweepOptions &opts,
                       const BenchScale &scale = BenchScale{});

/** Section V-E: start-gap wear-leveling interval sweep. */
void wearLevelingCampaign(std::ostream &os, const SweepOptions &opts,
                          const BenchScale &scale = BenchScale{});

/** Fault sweep: read-path distribution vs RBER on the rank. */
void faultSweep(std::ostream &os, const SweepOptions &opts,
                const BenchScale &scale = BenchScale{});

} // namespace nvck

#endif // NVCK_BENCH_SWEEPS_HH
