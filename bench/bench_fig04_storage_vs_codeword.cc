/**
 * @file
 * Figure 4: total storage cost (VLEW code bits + parity chip) versus
 * codeword length at the 1e-3 boot-time RBER. Longer words cost less;
 * 256B of data per word reaches the paper's 27% sweet spot.
 *
 * Each codeword length is one analytic ParallelSweep point (the
 * vlewScheme strength solver); the underlying vlewSweep() library
 * entry point fans out the same way for other callers.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 4", "storage cost vs VLEW codeword length @ RBER 1e-3");
    fig04StorageVsCodeword(std::cout, opts);
    return 0;
}
