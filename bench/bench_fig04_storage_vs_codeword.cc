/**
 * @file
 * Figure 4: total storage cost (VLEW code bits + parity chip) versus
 * codeword length at the 1e-3 boot-time RBER. Longer words cost less;
 * 256B of data per word reaches the paper's 27% sweet spot.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "reliability/error_model.hh"
#include "reliability/storage_model.hh"

using namespace nvck;

int
main()
{
    banner("Figure 4", "storage cost vs VLEW codeword length @ RBER 1e-3");

    StorageTargets in;
    in.rber = rber::bootTarget;
    in.ueTarget = rber::ueTargetPerBlock;

    const std::vector<unsigned> sizes = {8,  16,  32,  64,
                                         128, 256, 512, 1024};
    const auto rows = vlewSweep(in, sizes);

    Table t({"data per word", "t (bits corrected)", "code overhead",
             "total incl. parity chip"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        t.row()
            .cell(std::to_string(sizes[i]) + "B")
            .cell(std::uint64_t{rows[i].t})
            .pct(rows[i].codeOverhead)
            .pct(rows[i].totalOverhead);
    }
    t.print(std::cout);

    const auto paper_point = vlewScheme(in, 256);
    std::cout << "\nPaper design point: 256B words, 22-EC, 33B code"
                 " -> 27% total.\n"
              << "Model at 256B: t = " << paper_point.t << ", total = "
              << 100.0 * paper_point.totalOverhead << "%\n"
              << "(the model solves t for a per-block UE target of "
              << in.ueTarget << " and may pick t one or two above the\n"
              << " paper's 22 depending on how the target is "
                 "apportioned across chips; the cost shape is identical)\n";
    return 0;
}
