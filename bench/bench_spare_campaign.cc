/**
 * @file
 * Hot-sparing campaign for the RAS engine: every trial boots a
 * complete System over a mirrored bit-accurate rank, kills a chip
 * under a live persistent workload, and drives one of four service
 * plans — no spare (degraded baseline), spare rebuild to full code
 * strength, spare lost mid-rebuild (degraded fallback), and full
 * repair with migrate-back to a replacement device — checking against
 * the persist oracle that no route loses a durable write, corrupts
 * data silently, or strands the rank short of its plan's end state.
 *
 * Knobs (strict parse, common/env.hh):
 *   NVCK_SPARE_TRIALS           trials across all (tech x plan) cells
 *                               (default 6000)
 *   NVCK_SPARE_REBUILD_BLOCKS   rebuild/migrate-back blocks per step
 *   NVCK_SPARE_REBUILD_INTERVAL step pacing in ns
 *   NVCK_RAS_PATROL             patrol cycle period in ns
 *   NVCK_RAS_THRESHOLD          chip-kill bucket threshold
 *   NVCK_RAS_PATROL_ORDER       wear | addr patrol ordering
 *   NVCK_CAMPAIGN_JSON          also write the shared report as JSON
 *
 * Exit status is non-zero when any invariant was violated; `--seed N`
 * replays a CI failure verbatim and `--jobs N` never changes the
 * bytes.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "common/env.hh"
#include "sim/spare.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Hot-sparing campaign",
           "spare rebuild, degraded fallback, and repair/migrate-back");

    SpareCampaignConfig cfg;
    if (const auto trials = envPositive("NVCK_SPARE_TRIALS"))
        cfg.trials = *trials;
    cfg.trial.ras = RasConfig::fromEnv();

    const SpareTotals totals = spareCampaign(std::cout, opts, cfg);

    const RasTally sum = totals.total();
    CampaignReport report;
    report.name = "hot-sparing-campaign";
    report.seed = opts.seedSet ? opts.seed : cfg.seed;
    report.trials = sum.trials;
    report.violations = totals.violations();
    report.counters = {{"kills", sum.kills},
                       {"rebuilds", sum.rebuilds},
                       {"rebuilt_blocks", sum.rebuiltBlocks},
                       {"spared", sum.spared},
                       {"spare_abandons", sum.spareAbandons},
                       {"repairs", sum.repairs},
                       {"survivor_bits", sum.survivorBits},
                       {"failovers", sum.failovers},
                       {"migrated_blocks", sum.migrated},
                       {"drained_at_failover", sum.drainedAtFailover},
                       {"detect_accesses_max", sum.detectAccessesMax},
                       {"scrub_bits", sum.scrubBits},
                       {"sdc", sum.sdc},
                       {"lost_durable", sum.lostDurable},
                       {"reported_ue", sum.ue},
                       {"missed_spares", sum.missedSpares},
                       {"missed_repairs", sum.missedRepairs},
                       {"missed_failovers", sum.missedFailovers},
                       {"engage_overruns", sum.engageOverruns}};
    if (const char *path = std::getenv("NVCK_CAMPAIGN_JSON")) {
        std::ofstream json(path);
        campaignJson(json, report);
    }
    return campaignVerdict(std::cout, report);
}
