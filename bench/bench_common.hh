/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: a standard
 * banner tying each binary to the paper artifact it regenerates, and
 * the common run-controls used by the simulation-driven figures. Every
 * bench gets its RunControl from here — do not hand-roll the windows
 * in individual harnesses, so that figures stay comparable and the
 * golden-output tests can scale every window through one knob.
 */

#ifndef NVCK_BENCH_COMMON_HH
#define NVCK_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace nvck {

/** Print the standard artifact banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "==============================================================\n"
              << artifact << " — " << description << "\n"
              << "Zhang, Sridharan, Jian. \"Exploring and Optimizing "
                 "Chipkill-correct\n"
              << "for Persistent Memory Based on High-density NVRAMs.\" "
                 "MICRO 2018.\n"
              << "==============================================================\n";
}

/**
 * The canonical bench windows (nanoseconds of simulated time). The
 * perf/traffic figures (14-18, ablation) warm caches for 30us and
 * measure 100us with 2.5us occupancy samples; the occupancy figures
 * (10) need the longer 150us/150us windows to let dirty-line
 * populations reach their eviction/clean equilibrium. @p scale
 * multiplies every window so reduced-cost runs (golden regression
 * tests, smoke jobs) reuse the exact same shape.
 */
inline RunControl
benchRunControl(double scale = 1.0)
{
    RunControl rc;
    rc.warmup = nsToTicks(30000 * scale);
    rc.measure = nsToTicks(100000 * scale);
    rc.samplePeriod = nsToTicks(2500 * scale);
    return rc;
}

/** Equilibrium-seeking windows for the occupancy figures (Fig 10). */
inline RunControl
benchOccupancyRunControl(double scale = 1.0)
{
    RunControl rc;
    rc.warmup = nsToTicks(150000 * scale);
    rc.measure = nsToTicks(150000 * scale);
    rc.samplePeriod = nsToTicks(5000 * scale);
    return rc;
}

/**
 * Outcome summary shared by the oracle-checked crash campaigns
 * (bench_crash_campaign, bench_system_crash): one verdict block and
 * one machine-readable JSON shape for both, so CI and humans read the
 * same contract regardless of which campaign tripped.
 */
struct CampaignReport
{
    std::string name;
    /** Effective sweep seed — the replay handle for a failure. */
    std::uint64_t seed = 0;
    std::uint64_t trials = 0;
    std::uint64_t violations = 0;
    /** Additional named tallies, emitted in order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** Print the campaign verdict; returns the process exit code. */
inline int
campaignVerdict(std::ostream &os, const CampaignReport &report)
{
    if (report.violations == 0) {
        os << "\nOracle held: every block read back as the old value,"
              " the new value, or a reported UE.\n";
        return 0;
    }
    os << "\nORACLE VIOLATED: " << report.violations
       << " block(s) read back as silent garbage or rolled back a"
          " durable write (replay with --seed " << report.seed
       << ").\n";
    return 1;
}

/** Emit the report as a single JSON object. */
inline void
campaignJson(std::ostream &os, const CampaignReport &report)
{
    os << "{\n"
       << "  \"campaign\": \"" << report.name << "\",\n"
       << "  \"seed\": " << report.seed << ",\n"
       << "  \"trials\": " << report.trials << ",\n"
       << "  \"violations\": " << report.violations << ",\n"
       << "  \"counters\": {";
    for (std::size_t i = 0; i < report.counters.size(); ++i) {
        os << (i ? "," : "") << "\n    \"" << report.counters[i].first
           << "\": " << report.counters[i].second;
    }
    os << (report.counters.empty() ? "" : "\n  ") << "}\n}\n";
}

} // namespace nvck

#endif // NVCK_BENCH_COMMON_HH
