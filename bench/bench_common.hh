/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: a standard
 * banner tying each binary to the paper artifact it regenerates, and
 * the common run-controls used by the simulation-driven figures. Every
 * bench gets its RunControl from here — do not hand-roll the windows
 * in individual harnesses, so that figures stay comparable and the
 * golden-output tests can scale every window through one knob.
 */

#ifndef NVCK_BENCH_COMMON_HH
#define NVCK_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "sim/experiment.hh"

namespace nvck {

/** Print the standard artifact banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "==============================================================\n"
              << artifact << " — " << description << "\n"
              << "Zhang, Sridharan, Jian. \"Exploring and Optimizing "
                 "Chipkill-correct\n"
              << "for Persistent Memory Based on High-density NVRAMs.\" "
                 "MICRO 2018.\n"
              << "==============================================================\n";
}

/**
 * The canonical bench windows (nanoseconds of simulated time). The
 * perf/traffic figures (14-18, ablation) warm caches for 30us and
 * measure 100us with 2.5us occupancy samples; the occupancy figures
 * (10) need the longer 150us/150us windows to let dirty-line
 * populations reach their eviction/clean equilibrium. @p scale
 * multiplies every window so reduced-cost runs (golden regression
 * tests, smoke jobs) reuse the exact same shape.
 */
inline RunControl
benchRunControl(double scale = 1.0)
{
    RunControl rc;
    rc.warmup = nsToTicks(30000 * scale);
    rc.measure = nsToTicks(100000 * scale);
    rc.samplePeriod = nsToTicks(2500 * scale);
    return rc;
}

/** Equilibrium-seeking windows for the occupancy figures (Fig 10). */
inline RunControl
benchOccupancyRunControl(double scale = 1.0)
{
    RunControl rc;
    rc.warmup = nsToTicks(150000 * scale);
    rc.measure = nsToTicks(150000 * scale);
    rc.samplePeriod = nsToTicks(5000 * scale);
    return rc;
}

} // namespace nvck

#endif // NVCK_BENCH_COMMON_HH
