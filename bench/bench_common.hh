/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: a standard
 * banner tying each binary to the paper artifact it regenerates, and
 * the common run-control used by the simulation-driven figures.
 */

#ifndef NVCK_BENCH_COMMON_HH
#define NVCK_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "sim/experiment.hh"

namespace nvck {

/** Print the standard artifact banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "==============================================================\n"
              << artifact << " — " << description << "\n"
              << "Zhang, Sridharan, Jian. \"Exploring and Optimizing "
                 "Chipkill-correct\n"
              << "for Persistent Memory Based on High-density NVRAMs.\" "
                 "MICRO 2018.\n"
              << "==============================================================\n";
}

/** Run control used by the simulation figures (fast, deterministic). */
inline RunControl
benchRunControl()
{
    RunControl rc;
    rc.warmup = nsToTicks(30000);
    rc.measure = nsToTicks(100000);
    rc.samplePeriod = nsToTicks(2500);
    return rc;
}

} // namespace nvck

#endif // NVCK_BENCH_COMMON_HH
