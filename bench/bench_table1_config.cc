/**
 * @file
 * Table I: microarchitectural parameters of the evaluated system, as
 * instantiated by this repository's configuration defaults.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "mem/timing.hh"

using namespace nvck;

int
main()
{
    banner("Table I", "microarchitectural parameters");

    const SystemConfig cfg = SystemConfig::make(
        PmTech::Reram, proposalScheme(7e-5), "echo");

    Table t({"component", "parameter"});
    t.row().cell("Core").cell(
        std::to_string(cfg.cores) + " cores, " +
        Table::formatNumber(cfg.core.freqGhz, 2) + " GHz, " +
        std::to_string(cfg.core.issueWidth) +
        "-issue OOO (interval model), 64B cacheline");
    t.row().cell("L1 d-cache").cell(
        std::to_string(cfg.cache.l1Ways) + "-way, " +
        std::to_string(cfg.cache.l1Bytes / 1024) + "KB, 1 cycle");
    t.row().cell("Shared LLC").cell(
        std::to_string(cfg.cache.llcWays) + "-way, " +
        std::to_string(cfg.cache.llcBytes / 1024 / 1024) +
        "MB, 14 cycles, SAM/OMV tag bits");
    t.row().cell("Memory controller")
        .cell(std::to_string(cfg.mem.readQueueCap) + " read buffer, " +
              std::to_string(cfg.mem.writeQueueCap) +
              " write buffer/channel, closed page after 50ns idle,"
              " FR-FCFS");
    t.row().cell("Memory system")
        .cell("one 2400MT/s channel: 1 DRAM rank + 1 persistent-memory"
              " rank, " +
              std::to_string(cfg.mem.pm.banks) + " banks/rank");
    t.row().cell("NVRAM (ReRAM)").cell(
        "tRCD " + Table::formatNumber(ticksToNs(reramTiming().tRCD), 3) +
        "ns, tWR " + Table::formatNumber(ticksToNs(reramTiming().tWR), 3) +
        "ns");
    t.row().cell("NVRAM (PCM)").cell(
        "tRCD " + Table::formatNumber(ticksToNs(pcmTiming().tRCD), 3) +
        "ns, tWR " + Table::formatNumber(ticksToNs(pcmTiming().tWR), 3) +
        "ns");
    t.print(std::cout);
    return 0;
}
