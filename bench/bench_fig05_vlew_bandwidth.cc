/**
 * @file
 * Figure 5 (and Section V-C): memory bandwidth overheads of protecting
 * persistent memory with VLEWs — naive deployment versus the proposal.
 * Reads: the fraction of accesses containing bit errors times the
 * 35-37 extra blocks per correction. Writes: the read-modify-write
 * old-data fetch (200%) and code-bit updates (400%) the proposal's
 * OMV caching and in-chip encoding eliminate.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipkill/schemes.hh"
#include "common/table.hh"
#include "ecc/code_params.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"

using namespace nvck;

int
main()
{
    banner("Figure 5 + Section V-C",
           "read/write bandwidth overheads: naive VLEW vs proposal");

    const ProposalParams p;
    const double rbers[] = {rber::runtimeReram, rber::runtimePcm3Hourly};
    const char *labels[] = {"7e-5 (ReRAM runtime)",
                            "2e-4 (PCM, hourly refresh)"};

    Table t({"runtime RBER", "blocks w/ errors", "naive read BW",
             "proposal fallback rate", "proposal read BW"});
    for (int i = 0; i < 2; ++i) {
        SdcInputs in;
        in.rber = rbers[i];
        const double err_frac = blockErrorFraction(in);
        const double naive_bw =
            err_frac * p.vlewFetchOverheadBlocks();
        const double fallback = vlewFallbackFraction(in, 2);
        const double prop_bw =
            fallback * (p.vlewFetchOverheadBlocks() + 1);
        t.row()
            .cell(labels[i])
            .pct(err_frac)
            .pct(naive_bw)
            .pct(fallback, 3)
            .pct(prop_bw, 2);
    }
    t.print(std::cout);

    std::cout
        << "\nPaper checkpoints: 4% of accesses err at 7e-5 -> 140% read"
           " overhead;\n 10.3% at 2e-4 -> 360%; the proposal's RS"
           " threshold drops the VLEW\n fallback to ~0.018% of reads ->"
           " ~0.6% read bandwidth.\n";

    std::cout << "\nWrite-path overheads per PM write (in extra block"
                 " transfers):\n";
    Table w({"scheme", "old-data fetch", "old-data send",
             "code-bit writes", "total write BW overhead"});
    w.row()
        .cell("naive VLEW (Fig 5 bottom)")
        .cell("1 read (100%)")
        .cell("1 write (100%)")
        .cell(std::to_string(p.codeBlocksPerVlew() - 1) + "-" +
              std::to_string(p.codeBlocksPerVlew()) + " writes")
        .pct(2.0 + p.codeBlocksPerVlew());
    w.row()
        .cell("+ in-chip encoder")
        .cell("1 read (100%)")
        .cell("1 write (100%)")
        .cell("0 (in-chip)")
        .pct(2.0);
    w.row()
        .cell("proposal (OMV in LLC + XOR-sum)")
        .cell("~1.4% of writes (OMV miss)")
        .cell("0 (piggybacked)")
        .cell("0 (EUR)")
        .pct(0.014);
    w.print(std::cout);
    return 0;
}
