/**
 * @file
 * End-to-end power-failure campaign through the full timing path:
 * every trial boots a complete System (cores -> caches -> controller
 * -> EUR) over a mirrored bit-accurate rank, runs a persistent
 * workload, cuts power via System::powerFail() — at a random tick or
 * at an armed CrashHooks site (mid data burst, row-close start, mid
 * EUR drain), optionally killing a chip at the same instant — then
 * runs PmRank::crashRecovery() and checks every block against the
 * persist-order oracle: settled writes read back exactly, pending
 * writes resolve to old/any-acked/new or a reported UE, and nothing
 * is ever silent garbage.
 *
 * Knobs (strict parse, common/env.hh):
 *   NVCK_SYSCRASH_TRIALS  trials across all (tech x site) cells
 *                         (default 6000)
 *   NVCK_SYSCRASH_BLOCKS  mirrored rank capacity in 64B blocks
 *                         (multiple of 32, default 1024)
 *   NVCK_CAMPAIGN_JSON    also write the shared report there as JSON
 *
 * Exit status is non-zero when the oracle was violated; `--seed N`
 * replays a CI failure verbatim and `--jobs N` never changes the
 * bytes.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "common/env.hh"
#include "sim/syscrash.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("System crash campaign",
           "whole-system power-failure atomicity via powerFail()");

    SysCrashCampaignConfig cfg;
    if (const auto trials = envPositive("NVCK_SYSCRASH_TRIALS"))
        cfg.trials = *trials;
    if (const auto blocks =
            envPositive("NVCK_SYSCRASH_BLOCKS", 1u << 20)) {
        if (*blocks % 32 != 0) {
            std::fprintf(stderr,
                         "nvck: $NVCK_SYSCRASH_BLOCKS: expected a"
                         " multiple of the VLEW span (32), got %llu\n",
                         static_cast<unsigned long long>(*blocks));
            return 2;
        }
        cfg.trial.rankBlocks = static_cast<unsigned>(*blocks);
    }

    const SysCrashTotals totals =
        systemCrashCampaign(std::cout, opts, cfg);

    const SysCrashTally sum = totals.total();
    CampaignReport report;
    report.name = "system-crash-campaign";
    report.seed = opts.seedSet ? opts.seed : cfg.seed;
    report.trials = sum.trials;
    report.violations = totals.violations();
    report.counters = {{"cuts_at_site", sum.cutsAtSite},
                       {"bursts", sum.bursts},
                       {"drains", sum.drains},
                       {"flushed_at_cut", sum.flushedAtCut},
                       {"pending_at_cut", sum.pendingAtCut},
                       {"torn_old", sum.tornOld},
                       {"torn_new", sum.tornNew},
                       {"torn_intermediate", sum.tornIntermediate},
                       {"torn_ue", sum.tornUe},
                       {"collateral_ue", sum.collateralUe},
                       {"chip_kills", sum.chipKills},
                       {"stale_acks_absorbed", sum.staleAcksAbsorbed}};
    if (const char *path = std::getenv("NVCK_CAMPAIGN_JSON")) {
        std::ofstream json(path);
        campaignJson(json, report);
    }
    return campaignVerdict(std::cout, report);
}
