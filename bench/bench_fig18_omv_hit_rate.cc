/**
 * @file
 * Figure 18: fraction of PM writes whose old memory value (OMV) is
 * served from the LLC rather than fetched from off-chip memory. The
 * paper reports a 98.6% average; misses arise when the non-inclusive
 * hierarchy no longer holds the block's pre-write value (the paper's
 * barnes discussion).
 *
 * Both the full-LLC table and the scaled-cache sensitivity section
 * run as independent ParallelSweep points; the scaled points carry
 * "@64KB" labels so `--filter` can target either section.
 */

#include <iostream>

#include "bench_common.hh"
#include "sweeps.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 18", "OMV served-from-LLC rate for PM writes");
    fig18OmvHitRate(std::cout, opts);
    return 0;
}
