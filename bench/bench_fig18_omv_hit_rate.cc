/**
 * @file
 * Figure 18: fraction of PM writes whose old memory value (OMV) is
 * served from the LLC rather than fetched from off-chip memory. The
 * paper reports a 98.6% average; misses arise when the non-inclusive
 * hierarchy no longer holds the block's pre-write value (the paper's
 * barnes discussion).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 18", "OMV served-from-LLC rate for PM writes");

    const auto rc = benchRunControl();
    Table t({"workload", "OMV hit rate", "old-data fetches",
             "PM writes"});
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &name : allBenchmarkNames()) {
        const auto m = runOnce(
            SystemConfig::make(PmTech::Reram,
                               proposalScheme(runtimeRberFor(
                                   PmTech::Reram)),
                               name),
            rc);
        t.row()
            .cell(name)
            .pct(m.omvHitRate, 2)
            .cell(m.oldDataFetches)
            .cell(m.pmWrites);
        sum += m.omvHitRate;
        ++count;
    }
    t.print(std::cout);
    std::cout << "\naverage OMV hit rate: " << 100.0 * sum / count
              << "%  (paper: 98.6% average; worst case barnes ~89%"
                 " due to non-inclusive caching)\n";

    // The paper's misses come from LLC churn evicting a block's old
    // value between write and clean; saturating a 4MB LLC needs the
    // paper's 500ms warmup, beyond this harness's budget. Scaling the
    // LLC down reproduces the mechanism at bench scale.
    std::cout << "\nScaled-cache sensitivity (LLC shrunk to 64KB to"
                 " saturate within the window):\n";
    Table t2({"workload", "OMV hit rate", "old-data fetches"});
    for (const std::string name :
         {"barnes", "hashmap", "ycsb", "tpcc"}) {
        auto cfg = SystemConfig::make(
            PmTech::Reram,
            proposalScheme(runtimeRberFor(PmTech::Reram)), name);
        cfg.cache.llcBytes = 64 * 1024;
        RunControl rc2 = rc;
        rc2.measure = nsToTicks(300000);
        const auto m = runOnce(cfg, rc2);
        t2.row().cell(name).pct(m.omvHitRate, 2).cell(
            m.oldDataFetches);
    }
    t2.print(std::cout);
    return 0;
}
