/**
 * @file
 * Google-benchmark microbenchmarks of the software codec substrate:
 * encode/decode throughput of the paper's three code points — the
 * per-block RS(72,64), the 22-EC VLEW BCH, and the baseline 14-EC
 * per-block BCH — under clean and errored inputs.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/rs.hh"

namespace {

using namespace nvck;

void
BM_RsEncode(benchmark::State &state)
{
    const RsCodec rs(64, 8);
    Rng rng(1);
    std::vector<GfElem> data(64);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.below(256));
    for (auto _ : state) {
        auto cw = rs.encode(data);
        benchmark::DoNotOptimize(cw);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RsEncode);

void
BM_RsDecodeClean(benchmark::State &state)
{
    const RsCodec rs(64, 8);
    Rng rng(2);
    std::vector<GfElem> data(64);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.below(256));
    const auto clean = rs.encode(data);
    for (auto _ : state) {
        auto cw = clean;
        auto res = rs.decode(cw);
        benchmark::DoNotOptimize(res);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RsDecodeClean);

void
BM_RsDecodeErrors(benchmark::State &state)
{
    const unsigned errors = static_cast<unsigned>(state.range(0));
    const RsCodec rs(64, 8);
    Rng rng(3);
    std::vector<GfElem> data(64);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.below(256));
    const auto clean = rs.encode(data);
    for (auto _ : state) {
        auto cw = clean;
        for (unsigned e = 0; e < errors; ++e)
            cw[5 + e * 11] ^= static_cast<GfElem>(1 + (e & 0xFE));
        auto res = rs.decode(cw);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_RsDecodeErrors)->Arg(1)->Arg(2)->Arg(4);

void
BM_RsErasureChip(benchmark::State &state)
{
    const RsCodec rs(64, 8);
    Rng rng(4);
    std::vector<GfElem> data(64);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.below(256));
    const auto clean = rs.encode(data);
    std::vector<std::uint32_t> erasures;
    for (std::uint32_t p = 8; p < 16; ++p)
        erasures.push_back(p);
    for (auto _ : state) {
        auto cw = clean;
        for (auto p : erasures)
            cw[p] = static_cast<GfElem>(rng.next() & 0xFF);
        auto res = rs.decode(cw, erasures);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_RsErasureChip);

void
BM_VlewEncode(benchmark::State &state)
{
    const BchCodec vlew(2048, 22);
    Rng rng(5);
    BitVec data(2048);
    data.randomize(rng);
    for (auto _ : state) {
        auto check = vlew.encodeDelta(data);
        benchmark::DoNotOptimize(check);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_VlewEncode);

void
BM_VlewDecode(benchmark::State &state)
{
    const unsigned errors = static_cast<unsigned>(state.range(0));
    const BchCodec vlew(2048, 22);
    Rng rng(6);
    BitVec data(2048);
    data.randomize(rng);
    const BitVec clean = vlew.encode(data);
    for (auto _ : state) {
        state.PauseTiming();
        BitVec noisy = clean;
        noisy.injectExactErrors(rng, errors);
        state.ResumeTiming();
        auto res = vlew.decode(noisy);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_VlewDecode)->Arg(0)->Arg(2)->Arg(11)->Arg(22);

void
BM_BaselineBchDecode(benchmark::State &state)
{
    const BchCodec base(512, 14);
    Rng rng(7);
    BitVec data(512);
    data.randomize(rng);
    const BitVec clean = base.encode(data);
    for (auto _ : state) {
        state.PauseTiming();
        BitVec noisy = clean;
        noisy.injectExactErrors(rng, 7);
        state.ResumeTiming();
        auto res = base.decode(noisy);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_BaselineBchDecode);

} // namespace

BENCHMARK_MAIN();
