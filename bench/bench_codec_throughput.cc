/**
 * @file
 * Throughput microbenchmark of the software codec substrate across
 * both codec kernels (Scalar reference vs the default Sliced
 * table-driven kernels). For each of the paper's three code points —
 * the 22-EC VLEW BCH(2048+264), the baseline per-block 14-EC
 * BCH(512+140), and the per-block RS(72,64) — it measures encode,
 * clean-word decode (syndrome check), and corrupt-word decode (full
 * BM + Chien) in MB/s of protected data, prints a comparison table
 * with per-op speedups, and emits a machine-readable JSON file for
 * trend tracking in CI.
 *
 * Usage: bench_codec_throughput [--quick] [--json PATH]
 *   --quick    shorter timing windows (CI smoke).
 *   --json P   write results to P (default BENCH_codec_throughput.json).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "ecc/bch.hh"
#include "ecc/kernel.hh"
#include "ecc/rs.hh"

namespace {

using namespace nvck;

/** Defeats dead-code elimination across timed calls. */
volatile std::uint64_t g_sink = 0;

struct OpResult
{
    double mbps = 0.0;
    double seconds = 0.0;
    std::uint64_t iters = 0;
};

/** One timing record: code point x kernel x operation. */
struct Record
{
    std::string code;
    std::string kernel;
    std::string op;
    OpResult res;
};

/**
 * Run @p op until @p min_seconds of wall time accumulate (one warmup
 * call first) and convert to MB/s of protected payload.
 */
template <typename F>
OpResult
measure(double min_seconds, double bytes_per_op, F &&op)
{
    using clock = std::chrono::steady_clock;
    op(); // warmup: faults tables in, primes caches
    OpResult out;
    const auto start = clock::now();
    do {
        for (int i = 0; i < 16; ++i)
            op();
        out.iters += 16;
        out.seconds =
            std::chrono::duration<double>(clock::now() - start).count();
    } while (out.seconds < min_seconds);
    out.mbps = bytes_per_op * static_cast<double>(out.iters) /
               out.seconds / 1e6;
    return out;
}

/** Encode / decode-clean / decode-corrupt for one BCH instance. */
void
benchBch(std::vector<Record> &records, const std::string &name,
         unsigned k, unsigned t, CodecKernel kernel, double min_seconds)
{
    const BchCodec codec(k, t, 0, kernel);
    const double data_bytes = k / 8.0;
    Rng rng(0xB37 + k + t);
    BitVec data(k);
    data.randomize(rng);
    const BitVec clean = codec.encode(data);

    // Pre-corrupt a pool of words with t errors each so the timed
    // region holds only copy + decode.
    std::vector<BitVec> pool(16, clean);
    for (auto &w : pool)
        w.injectExactErrors(rng, t);

    const char *kname = codecKernelName(kernel);
    records.push_back(
        {name, kname, "encode",
         measure(min_seconds, data_bytes, [&] {
             g_sink = g_sink + codec.encodeDelta(data).popcount();
         })});
    records.push_back(
        {name, kname, "decode_clean",
         measure(min_seconds, data_bytes, [&] {
             BitVec w = clean;
             g_sink = g_sink + codec.decode(w).corrections;
         })});
    std::size_t next = 0;
    records.push_back(
        {name, kname, "decode_corrupt",
         measure(min_seconds, data_bytes, [&] {
             BitVec w = pool[next++ % pool.size()];
             g_sink = g_sink + codec.decode(w).corrections;
         })});
}

/** Same three operations for the RS code point. */
void
benchRs(std::vector<Record> &records, const std::string &name,
        unsigned k, unsigned r, CodecKernel kernel, double min_seconds)
{
    const RsCodec codec(k, r, 8, kernel);
    const double data_bytes = k;
    Rng rng(0x25 + k + r);
    std::vector<GfElem> data(k);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.below(256));
    const auto clean = codec.encode(data);

    std::vector<std::vector<GfElem>> pool(16, clean);
    for (auto &w : pool)
        for (unsigned e = 0; e < codec.t(); ++e)
            w[rng.below(w.size())] ^=
                static_cast<GfElem>(rng.below(255) + 1);

    const char *kname = codecKernelName(kernel);
    records.push_back({name, kname, "encode",
                       measure(min_seconds, data_bytes, [&] {
                           g_sink = g_sink + codec.encode(data).back();
                       })});
    records.push_back({name, kname, "decode_clean",
                       measure(min_seconds, data_bytes, [&] {
                           auto w = clean;
                           g_sink = g_sink + codec.decode(w).corrections;
                       })});
    std::size_t next = 0;
    records.push_back({name, kname, "decode_corrupt",
                       measure(min_seconds, data_bytes, [&] {
                           auto w = pool[next++ % pool.size()];
                           g_sink = g_sink + codec.decode(w).corrections;
                       })});
}

const Record *
find(const std::vector<Record> &records, const std::string &code,
     const std::string &kernel, const std::string &op)
{
    for (const auto &r : records)
        if (r.code == code && r.kernel == kernel && r.op == op)
            return &r;
    return nullptr;
}

void
writeJson(const std::vector<Record> &records, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    os << "{\n  \"benchmark\": \"codec_throughput\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        os << "    {\"code\": \"" << r.code << "\", \"kernel\": \""
           << r.kernel << "\", \"op\": \"" << r.op
           << "\", \"mbps\": " << r.res.mbps
           << ", \"iters\": " << r.res.iters
           << ", \"seconds\": " << r.res.seconds << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"speedup\": {\n";
    const std::string codes[] = {"bch_vlew_2048_22", "bch_base_512_14",
                                 "rs_72_64"};
    const std::string ops[] = {"encode", "decode_clean",
                               "decode_corrupt"};
    for (std::size_t c = 0; c < 3; ++c) {
        os << "    \"" << codes[c] << "\": {";
        for (std::size_t o = 0; o < 3; ++o) {
            const Record *s = find(records, codes[c], "scalar", ops[o]);
            const Record *f = find(records, codes[c], "sliced", ops[o]);
            const double speedup =
                (s && f && s->res.mbps > 0) ? f->res.mbps / s->res.mbps
                                            : 0.0;
            os << "\"" << ops[o] << "\": " << speedup
               << (o + 1 < 3 ? ", " : "");
        }
        os << "}" << (c + 1 < 3 ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    double min_seconds = 0.25;
    std::string json_path = "BENCH_codec_throughput.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            min_seconds = 0.04;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--json PATH]\n";
            return 2;
        }
    }

    std::vector<Record> records;
    for (const CodecKernel kernel :
         {CodecKernel::Scalar, CodecKernel::Sliced}) {
        benchBch(records, "bch_vlew_2048_22", 2048, 22, kernel,
                 min_seconds);
        benchBch(records, "bch_base_512_14", 512, 14, kernel,
                 min_seconds);
        benchRs(records, "rs_72_64", 64, 8, kernel, min_seconds);
    }

    Table table({"code", "op", "scalar MB/s", "sliced MB/s", "speedup"});
    for (const std::string &code :
         {std::string("bch_vlew_2048_22"), std::string("bch_base_512_14"),
          std::string("rs_72_64")}) {
        for (const std::string &op :
             {std::string("encode"), std::string("decode_clean"),
              std::string("decode_corrupt")}) {
            const Record *s = find(records, code, "scalar", op);
            const Record *f = find(records, code, "sliced", op);
            table.row()
                .cell(code)
                .cell(op)
                .cell(s->res.mbps)
                .cell(f->res.mbps)
                .cell(f->res.mbps / s->res.mbps);
        }
    }
    table.print(std::cout);

    const double enc = find(records, "bch_vlew_2048_22", "sliced",
                            "encode")
                           ->res.mbps /
                       find(records, "bch_vlew_2048_22", "scalar",
                            "encode")
                           ->res.mbps;
    const double dec = find(records, "bch_vlew_2048_22", "sliced",
                            "decode_clean")
                           ->res.mbps /
                       find(records, "bch_vlew_2048_22", "scalar",
                            "decode_clean")
                           ->res.mbps;
    std::cout << "VLEW BCH(2048,t=22) sliced speedup: encode "
              << Table::formatNumber(enc, 3) << "x, clean decode "
              << Table::formatNumber(dec, 3) << "x\n";

    writeJson(records, json_path);
    return 0;
}
