/**
 * @file
 * Figure 17: proposal performance normalized to the bit-error-only
 * baseline under PCM latencies (tRCD 250ns, tWR 600ns). The paper
 * reports a 2.3% average overhead with hashmap worst at ~14% — the
 * longer baseline write latency magnifies the proposal's iso-endurance
 * write inflation.
 *
 * Workloads run as independent ParallelSweep points (NVCK_JOBS=1 opts
 * out); results print in submission order so the table matches the
 * serial run byte for byte. The baseline/proposal pair inside one
 * point stays sequential (pass 2 needs pass 1's C factor).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/parallel.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 17",
           "performance normalized to baseline, PCM latencies");

    const auto rc = benchRunControl();
    ParallelSweep<AbResult> sweep(17, opts);
    for (const auto &name : allBenchmarkNames())
        sweep.add(name, [name, rc] {
            AbResult ab;
            ab.baseline = runBaseline(PmTech::Pcm, name, 1, rc);
            ab.proposal = runProposal(PmTech::Pcm, name, 1, rc);
            return ab;
        });

    Table t({"workload", "metric", "baseline", "proposal", "normalized",
             "C"});
    double sum = 0.0, worst = 1.0;
    std::string worst_name;
    unsigned count = 0;
    for (const auto &out : sweep.run()) {
        const auto &base = out.value.baseline;
        const auto &prop = out.value.proposal;
        const double rel = prop.perf / base.perf;
        t.row()
            .cell(out.label)
            .cell(findProfile(out.label).flops ? "MFLOPS" : "IPC")
            .cell(base.perf, 4)
            .cell(prop.perf, 4)
            .cell(rel, 4)
            .cell(prop.cFactor, 3);
        sum += rel;
        ++count;
        if (rel < worst) {
            worst = rel;
            worst_name = out.label;
        }
    }
    t.print(std::cout);
    if (count)
        std::cout << "\naverage normalized performance: " << sum / count
                  << "  (paper: 0.977, i.e. 2.3% overhead)\n"
                  << "worst case: " << worst_name << " at " << worst
                  << "  (paper: hashmap at 0.86 — write-only queries"
                     " feel the tWR inflation most)\n";
    return 0;
}
