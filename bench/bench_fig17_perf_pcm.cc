/**
 * @file
 * Figure 17: proposal performance normalized to the bit-error-only
 * baseline under PCM latencies (tRCD 250ns, tWR 600ns). The paper
 * reports a 2.3% average overhead with hashmap worst at ~14% — the
 * longer baseline write latency magnifies the proposal's iso-endurance
 * write inflation.
 *
 * Workloads run as independent work items on the parallel experiment
 * engine (NVCK_JOBS=1 opts out); results print in submission order so
 * the table matches the serial run byte for byte.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "sim/parallel.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main()
{
    banner("Figure 17",
           "performance normalized to baseline, PCM latencies");

    const auto rc = benchRunControl();
    const auto names = allBenchmarkNames();
    const auto results = runAbSweep(PmTech::Pcm, names, 1, rc);

    Table t({"workload", "metric", "baseline", "proposal", "normalized",
             "C"});
    double sum = 0.0, worst = 1.0;
    std::string worst_name;
    unsigned count = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &base = results[i].baseline;
        const auto &prop = results[i].proposal;
        const double rel = prop.perf / base.perf;
        t.row()
            .cell(names[i])
            .cell(findProfile(names[i]).flops ? "MFLOPS" : "IPC")
            .cell(base.perf, 4)
            .cell(prop.perf, 4)
            .cell(rel, 4)
            .cell(prop.cFactor, 3);
        sum += rel;
        ++count;
        if (rel < worst) {
            worst = rel;
            worst_name = names[i];
        }
    }
    t.print(std::cout);
    std::cout << "\naverage normalized performance: " << sum / count
              << "  (paper: 0.977, i.e. 2.3% overhead)\n"
              << "worst case: " << worst_name << " at " << worst
              << "  (paper: hashmap at 0.86 — write-only queries feel"
                 " the tWR inflation most)\n";
    return 0;
}
