/**
 * @file
 * Figure 2: total storage cost when adapting DRAM chipkill-correct
 * schemes (XED-, Samsung-, DUO-style extensions) to dense NVRAM-based
 * persistent memory, swept over RBER. The paper's headline: the
 * cheapest extension costs >= 69% at the 1e-3 boot-time RBER, versus
 * 27% for the proposal.
 *
 * Each RBER is one analytic ParallelSweep point solving all five
 * prior-art storage models.
 */

#include <array>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "ecc/code_params.hh"
#include "reliability/storage_model.hh"
#include "sim/parallel.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    const auto opts = SweepOptions::parse(argc, argv);
    banner("Figure 2",
           "storage cost of DRAM-chipkill extensions vs RBER");

    const double rbers[] = {1e-6, 1e-5, 1e-4, 2e-4, 5e-4, 1e-3};

    ParallelSweep<std::array<StorageSolution, 5>> sweep(2, opts);
    for (double rber : rbers)
        sweep.add("rber " + Table::formatNumber(rber, 2), [rber] {
            StorageTargets in;
            in.rber = rber;
            return std::array<StorageSolution, 5>{
                xedExtension(in), samsungExtension(in),
                duoExtension(in), bitErrorOnlyBch(in),
                bruteForceChipkillBch(in)};
        });

    Table t({"RBER", "XED-like", "Samsung-like", "DUO-like",
             "bit-error-only BCH", "brute-force chipkill"});
    const auto outcomes = sweep.run();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        t.row().cell(rbers[outcomes[i].index], 2);
        for (const auto &sol : outcomes[i].value) {
            if (sol.feasible)
                t.pct(sol.totalOverhead);
            else
                t.cell("infeasible");
        }
    }
    t.print(std::cout);

    StorageTargets boot;
    boot.rber = 1e-3;
    const double cheapest =
        std::min({xedExtension(boot).totalOverhead,
                  samsungExtension(boot).totalOverhead,
                  duoExtension(boot).totalOverhead});
    const ProposalParams prop;
    std::cout << "\nAt the 1e-3 boot-time RBER:\n"
              << "  cheapest DRAM-chipkill extension : "
              << 100.0 * cheapest << "% (paper reports >= 69%)\n"
              << "  the proposal (Fig 6 layout)      : "
              << 100.0 * prop.totalStorageCost() << "%\n"
              << "  bit-error-only 14-EC BCH         : "
              << 100.0 * bitErrorOnlyBch(boot).totalOverhead
              << "% (no chip failure protection)\n";
    return 0;
}
