/**
 * @file
 * Refresh-policy trade study (Section IV discussion): the refresh
 * interval sets the runtime RBER, which sets both the VLEW-fallback
 * bandwidth (too-seldom refresh) and the scrub-traffic bandwidth of
 * the refresh itself (too-frequent refresh — the paper notes that
 * refreshing once per second costs ~1000% of bus bandwidth for even a
 * modest channel). The sweep shows why hourly-scale refresh with the
 * 2-correction threshold is the operating point.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "ecc/code_params.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"
#include "reliability/ue_model.hh"

using namespace nvck;

int
main()
{
    banner("Refresh trade-off (Section IV)",
           "refresh interval vs RBER vs bandwidth");

    // Refresh = fetching and re-writing all VLEWs; bandwidth fraction
    // = capacity * (1 + overhead) * 2 / (interval * bus BW).
    const double capacity = 160e9; // the paper's small-channel example
    const double bus = 2400e6 * 8.0;
    const ProposalParams p;

    const std::pair<const char *, double> intervals[] = {
        {"1 s", 1.0},          {"1 min", 60.0},
        {"10 min", 600.0},     {"1 hour", secondsPerHour},
        {"1 day", secondsPerDay},
    };

    // One analytic model evaluation per interval, fanned out through
    // the UE-model sweep (submission-order results, any NVCK_JOBS).
    std::vector<double> rbers;
    for (const auto &iv : intervals)
        rbers.push_back(rberAfter(MemTech::Pcm3, iv.second));
    const auto points = evaluateProposalSweep(rbers, p);

    Table t({"refresh interval", "PCM-3 RBER", "VLEW fallback",
             "fallback read BW", "refresh BW", "SDC @ t=2"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &[label, seconds] = intervals[i];
        const double fallback = points[i].vlewFallbackFraction;
        const double fallback_bw =
            fallback * (p.vlewFetchOverheadBlocks() + 1);
        const double refresh_bw =
            capacity * (1.0 + p.totalStorageCost()) * 2.0 /
            (seconds * bus);
        t.row()
            .cell(label)
            .cell(points[i].rber, 2)
            .pct(fallback, 3)
            .pct(fallback_bw, 2)
            .pct(refresh_bw, 2)
            .cell(points[i].blockSdcRuntime, 2);
    }
    t.print(std::cout);

    std::cout << "\nPaper checkpoints: refreshing every second costs"
                 " ~1000% of a 160GB channel's\nbandwidth; hourly"
                 " refresh leaves RBER at 2e-4 where the threshold-2"
                 " policy still\nmeets the 1e-17 SDC target at 0.02%"
                 " fallback.\n";

    std::cout << "\nOutage tolerance at the boot tier"
                 " (UE target 1e-15/block):\n";
    const std::vector<MemTech> techs = {MemTech::Reram, MemTech::Pcm3};
    const auto outages = maxOutageSweep(
        {static_cast<int>(techs[0]), static_cast<int>(techs[1])}, 1e-15);
    Table o({"technology", "max unrefreshed outage"});
    for (std::size_t i = 0; i < techs.size(); ++i) {
        const MemTech tech = techs[i];
        const double secs = outages[i];
        std::string label;
        if (secs >= secondsPerYear)
            label = ">= 1 year";
        else if (secs >= secondsPerDay)
            label = Table::formatNumber(secs / secondsPerDay, 3) +
                    " days";
        else
            label = Table::formatNumber(secs / secondsPerHour, 3) +
                    " hours";
        o.row().cell(memTechName(tech)).cell(label);
    }
    o.print(std::cout);
    std::cout << "\nPaper: 'reliable data survival for a week to a"
                 " year without refresh'.\n";
    return 0;
}
