#include "hierarchy.hh"

#include "common/log.hh"

namespace nvck {

CacheHierarchy::CacheHierarchy(const CacheConfig &config, MemSink &sink)
    : cfg(config),
      memSink(sink),
      llc(config.llcBytes, config.llcWays)
{
    NVCK_ASSERT(cfg.cores >= 1, "need at least one core");
    l1s.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c)
        l1s.push_back(
            std::make_unique<SetAssocCache>(cfg.l1Bytes, cfg.l1Ways));
}

CacheLine &
CacheHierarchy::llcVictimExcluding(Addr addr, const CacheLine *keep)
{
    CacheLine &first = llc.victim(addr);
    if (&first != keep)
        return first;
    // Temporarily pin the protected line by bumping its LRU stamp and
    // re-selecting.
    llc.touch(first);
    CacheLine &second = llc.victim(addr);
    NVCK_ASSERT(&second != keep, "victim exclusion failed");
    return second;
}

void
CacheHierarchy::writeDirtyBlockToMemory(Addr addr, bool is_pm)
{
    bool omv_hit = false;
    if (is_pm && cfg.omvEnabled) {
        if (CacheLine *omv = llc.lookupOmv(addr)) {
            omv_hit = true;
            llc.invalidate(*omv);
            statistics.omvHits.inc();
        } else {
            statistics.omvMisses.inc();
        }
    }
    (is_pm ? statistics.pmWritebacks : statistics.dramWritebacks).inc();
    memSink.writeBlock(addr, is_pm, omv_hit);
}

void
CacheHierarchy::evictLlc(CacheLine &line)
{
    if (!line.valid)
        return;
    if (line.omv) {
        // An OMV equals the off-chip value; dropping it is free (the
        // next write to its block just misses the OMV lookup).
        llc.invalidate(line);
        return;
    }
    if (line.dirty)
        writeDirtyBlockToMemory(line.blockAddr, line.isPm);
    llc.invalidate(line);
}

void
CacheHierarchy::dirtyWritebackToLlc(Addr addr, bool is_pm)
{
    CacheLine *line = llc.lookup(addr);
    if (line != nullptr) {
        if (cfg.omvEnabled && line->isPm && line->sam && !line->dirty) {
            // Section V-D rule: the hit line still equals memory, so
            // keep it as the block's OMV and take another way for the
            // incoming dirty data.
            line->omv = true;
            line->sam = false;
            statistics.omvPreserved.inc();
            CacheLine &fresh = llcVictimExcluding(addr, line);
            evictLlc(fresh);
            llc.fill(fresh, addr, is_pm, /*dirty=*/true);
            return;
        }
        line->dirty = true;
        line->sam = false;
        llc.touch(*line);
        return;
    }
    // Non-inclusive hierarchy: the LLC may no longer hold the block.
    CacheLine &fresh = llcVictimExcluding(addr, nullptr);
    evictLlc(fresh);
    llc.fill(fresh, addr, is_pm, /*dirty=*/true);
}

HitLevel
CacheHierarchy::access(unsigned core, Addr addr, bool is_write,
                       bool is_pm)
{
    NVCK_ASSERT(core < cfg.cores, "bad core id");
    SetAssocCache &l1 = *l1s[core];

    if (CacheLine *line = l1.lookup(addr)) {
        if (is_write)
            line->dirty = true;
        statistics.l1Hits.inc();
        return HitLevel::L1;
    }
    statistics.l1Misses.inc();

    CacheLine *llc_line = llc.lookup(addr);
    const HitLevel level =
        llc_line != nullptr ? HitLevel::LLC : HitLevel::Memory;
    if (llc_line != nullptr) {
        statistics.llcHits.inc();
    } else {
        statistics.llcMisses.inc();
        CacheLine &fresh = llcVictimExcluding(addr, nullptr);
        evictLlc(fresh);
        llc.fill(fresh, addr, is_pm, /*dirty=*/false);
        fresh.sam = true; // filled from memory
    }

    // Allocate in L1 (write-allocate), pushing out its victim.
    CacheLine &victim = l1.victim(addr);
    if (victim.valid && victim.dirty)
        dirtyWritebackToLlc(victim.blockAddr, victim.isPm);
    l1.fill(victim, addr, is_pm, /*dirty=*/is_write);
    return level;
}

bool
CacheHierarchy::clean(unsigned core, Addr addr, bool is_pm)
{
    NVCK_ASSERT(core < cfg.cores, "bad core id");
    SetAssocCache &l1 = *l1s[core];

    CacheLine *l1_line = l1.lookup(addr);
    if (l1_line != nullptr && l1_line->dirty) {
        // clwb retains a clean copy in L1 and pushes the data through
        // the LLC to memory.
        l1_line->dirty = false;
        CacheLine *llc_line = llc.lookup(addr);
        bool omv_hit = false;
        if (is_pm && cfg.omvEnabled) {
            if (llc_line != nullptr && llc_line->sam) {
                omv_hit = true; // SAM copy supplies the old value
            } else if (CacheLine *omv = llc.lookupOmv(addr)) {
                omv_hit = true;
                llc.invalidate(*omv);
            }
            (omv_hit ? statistics.omvHits : statistics.omvMisses).inc();
        }
        if (llc_line != nullptr) {
            // The clean updates the LLC copy with the new data; after
            // the memory write it again equals memory.
            llc_line->dirty = false;
            llc_line->sam = true;
            llc.touch(*llc_line);
        }
        (is_pm ? statistics.pmWritebacks : statistics.dramWritebacks)
            .inc();
        memSink.writeBlock(addr / blockBytes * blockBytes, is_pm,
                           omv_hit);
        statistics.cleanOps.inc();
        return true;
    }

    CacheLine *llc_line = llc.lookup(addr);
    if (llc_line != nullptr && llc_line->dirty) {
        writeDirtyBlockToMemory(llc_line->blockAddr, llc_line->isPm);
        llc_line->dirty = false;
        llc_line->sam = true;
        llc.touch(*llc_line);
        statistics.cleanOps.inc();
        return true;
    }

    statistics.cleanNops.inc();
    return false;
}

double
CacheHierarchy::dirtyPmFraction() const
{
    std::size_t dirty_pm = 0;
    std::size_t total = llc.lines();
    const auto count = [&dirty_pm](const CacheLine &line) {
        if (line.valid && line.dirty && line.isPm)
            ++dirty_pm;
    };
    llc.forEach(count);
    for (const auto &l1 : l1s) {
        total += l1->lines();
        l1->forEach(count);
    }
    return total ? static_cast<double>(dirty_pm) / total : 0.0;
}

double
CacheHierarchy::omvFraction() const
{
    std::size_t omv_lines = 0;
    llc.forEach([&omv_lines](const CacheLine &line) {
        if (line.valid && line.omv)
            ++omv_lines;
    });
    return static_cast<double>(omv_lines) /
           static_cast<double>(llc.lines());
}

VolatileDiscard
CacheHierarchy::discardVolatile()
{
    VolatileDiscard report;
    const auto drop = [&](SetAssocCache &cache) {
        cache.forEachMutable([&](CacheLine &line) {
            if (!line.valid)
                return;
            ++report.linesDropped;
            if (line.omv)
                ++report.omvLost;
            else if (line.dirty)
                (line.isPm ? report.dirtyPmLost
                           : report.dirtyDramLost)++;
            cache.invalidate(line);
        });
    };
    drop(llc);
    for (auto &l1 : l1s)
        drop(*l1);
    return report;
}

} // namespace nvck
