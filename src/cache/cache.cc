#include "cache.hh"

#include "common/log.hh"

namespace nvck {

SetAssocCache::SetAssocCache(std::size_t size_bytes, unsigned ways)
    : numSets(size_bytes / blockBytes / ways),
      numWays(ways),
      store(numSets * ways)
{
    NVCK_ASSERT(numSets >= 1, "cache smaller than one set");
    NVCK_ASSERT((numSets & (numSets - 1)) == 0,
                "set count must be a power of two");
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr / blockBytes) & (numSets - 1);
}

CacheLine *
SetAssocCache::setBase(Addr addr)
{
    return &store[setIndex(addr) * numWays];
}

CacheLine *
SetAssocCache::lookup(Addr addr)
{
    const Addr block = addr / blockBytes * blockBytes;
    CacheLine *base = setBase(addr);
    for (unsigned w = 0; w < numWays; ++w) {
        CacheLine &line = base[w];
        if (line.valid && !line.omv && line.blockAddr == block) {
            touch(line);
            return &line;
        }
    }
    return nullptr;
}

CacheLine *
SetAssocCache::lookupOmv(Addr addr)
{
    const Addr block = addr / blockBytes * blockBytes;
    CacheLine *base = setBase(addr);
    for (unsigned w = 0; w < numWays; ++w) {
        CacheLine &line = base[w];
        if (line.valid && line.omv && line.blockAddr == block)
            return &line;
    }
    return nullptr;
}

CacheLine &
SetAssocCache::victim(Addr addr)
{
    CacheLine *base = setBase(addr);
    CacheLine *lru = &base[0];
    for (unsigned w = 0; w < numWays; ++w) {
        CacheLine &line = base[w];
        if (!line.valid)
            return line;
        if (line.lruStamp < lru->lruStamp)
            lru = &line;
    }
    return *lru;
}

void
SetAssocCache::fill(CacheLine &line, Addr addr, bool is_pm, bool dirty)
{
    line.blockAddr = addr / blockBytes * blockBytes;
    line.valid = true;
    line.dirty = dirty;
    line.isPm = is_pm;
    line.sam = false;
    line.omv = false;
    touch(line);
}

void
SetAssocCache::invalidate(CacheLine &line)
{
    line = CacheLine{};
}

} // namespace nvck
