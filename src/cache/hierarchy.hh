/**
 * @file
 * The simulated cache hierarchy: per-core private L1s and a shared LLC
 * implementing the proposal's SAM ("SameAsMem") and OMV ("Old Memory
 * Value") tag bits (Section V-D). The hierarchy is non-inclusive, like
 * the gem5 classic caches the paper used — which is exactly why some
 * OMV lookups miss (the paper's barnes discussion, Fig 18).
 *
 * Writebacks and cache-line cleans destined for persistent memory are
 * reported to a MemSink together with whether the old memory value was
 * served from the LLC; the system glue turns OMV misses into extra
 * old-data reads, as the paper's write path requires.
 */

#ifndef NVCK_CACHE_HIERARCHY_HH
#define NVCK_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace nvck {

/** Receiver of memory-bound write traffic produced by the hierarchy. */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /**
     * A dirty block leaves the hierarchy toward memory.
     * @param addr block address.
     * @param is_pm targets the persistent-memory rank.
     * @param omv_hit for PM blocks: the old memory value was found in
     *        the LLC, so the XOR-sum write needs no old-data fetch.
     */
    virtual void writeBlock(Addr addr, bool is_pm, bool omv_hit) = 0;
};

/** Hierarchy configuration (Table I defaults). */
struct CacheConfig
{
    unsigned cores = 4;
    std::size_t l1Bytes = 64 * 1024;
    unsigned l1Ways = 2;
    std::size_t llcBytes = 4 * 1024 * 1024;
    unsigned llcWays = 32;
    /** Enable the proposal's OMV preservation (off for baselines). */
    bool omvEnabled = true;
};

/** Where an access was satisfied. */
enum class HitLevel { L1, LLC, Memory };

/** What a power cut destroyed inside the (volatile) hierarchy. */
struct VolatileDiscard
{
    std::size_t linesDropped = 0; //!< valid lines invalidated
    /** Dirty PM blocks that never reached the media: the persistent
     *  image keeps their OLD values (the paper's crash consistency
     *  contract — caches are explicitly not in the ADR domain). */
    std::size_t dirtyPmLost = 0;
    std::size_t dirtyDramLost = 0;
    /** OMV lines lost; pending XOR writes can no longer be served the
     *  old value from the LLC after reboot. */
    std::size_t omvLost = 0;
};

/** Hierarchy statistics. */
struct CacheStats
{
    Counter l1Hits, l1Misses;
    Counter llcHits, llcMisses;
    Counter omvHits, omvMisses;   //!< PM writes: old value in LLC?
    Counter omvPreserved;          //!< OMV lines created
    Counter cleanOps, cleanNops;   //!< clwb executed / found nothing dirty
    Counter pmWritebacks, dramWritebacks;
};

/** The hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &config, MemSink &sink);

    /**
     * Perform a load or store by core @p core. The line is installed
     * functionally on a miss; the caller is responsible for modelling
     * the memory read latency when the result is HitLevel::Memory.
     */
    HitLevel access(unsigned core, Addr addr, bool is_write, bool is_pm);

    /**
     * Cache-line writeback instruction (clwb): push the dirty copy of
     * @p addr (if any) to memory, retaining clean copies. Returns true
     * if a memory write was generated.
     */
    bool clean(unsigned core, Addr addr, bool is_pm);

    /** Fraction of all hierarchy lines holding dirty PM blocks (Fig 10). */
    double dirtyPmFraction() const;

    /** Fraction of LLC lines currently holding OMVs. */
    double omvFraction() const;

    /** OMV service rate for PM writes so far (Fig 18). */
    double
    omvHitRate() const
    {
        const auto hits = statistics.omvHits.value();
        const auto total = hits + statistics.omvMisses.value();
        return total ? static_cast<double>(hits) / total : 1.0;
    }

    /**
     * Power failure: every cache is volatile, so all contents — dirty
     * lines, clean lines, and the LLC's OMV copies — vanish without
     * writebacks. Returns a tally of what was lost.
     */
    VolatileDiscard discardVolatile();

    const CacheStats &stats() const { return statistics; }
    void resetStats() { statistics = CacheStats{}; }

  private:
    /** Handle a dirty L1 line landing in the LLC (rules 2 and 3). */
    void dirtyWritebackToLlc(Addr addr, bool is_pm);
    /** Evict @p line from the LLC (silent for clean/OMV lines). */
    void evictLlc(CacheLine &line);
    /** Write a dirty LLC-level block to memory, consuming its OMV. */
    void writeDirtyBlockToMemory(Addr addr, bool is_pm);
    /** Pick an LLC victim in addr's set, never @p keep. */
    CacheLine &llcVictimExcluding(Addr addr, const CacheLine *keep);

    CacheConfig cfg;
    MemSink &memSink;
    std::vector<std::unique_ptr<SetAssocCache>> l1s;
    SetAssocCache llc;
    CacheStats statistics;
};

} // namespace nvck

#endif // NVCK_CACHE_HIERARCHY_HH
