/**
 * @file
 * Metadata-only set-associative cache with LRU replacement. The timing
 * simulation tracks tags and state bits (dirty, PM, and the proposal's
 * SAM/OMV bits) but not data contents; data-path correctness is
 * validated separately by the bit-accurate ECC pipeline.
 */

#ifndef NVCK_CACHE_CACHE_HH
#define NVCK_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace nvck {

/** State of one cache line. */
struct CacheLine
{
    Addr blockAddr = 0;  //!< block-aligned address
    bool valid = false;
    bool dirty = false;
    bool isPm = false;   //!< maps to the persistent-memory rank
    /**
     * SameAsMem: the line's value equals off-chip memory (set on fill
     * and on clean; cleared by a dirty writeback into the line).
     * LLC-only semantics (Section V-D).
     */
    bool sam = false;
    /**
     * Old-Memory-Value: the line holds the pre-write value of a dirty
     * PM block and is invisible to normal lookups. LLC-only.
     */
    bool omv = false;
    std::uint64_t lruStamp = 0;
};

/** A set-associative, write-back, LRU cache directory. */
class SetAssocCache
{
  public:
    SetAssocCache(std::size_t size_bytes, unsigned ways);

    std::size_t sets() const { return numSets; }
    unsigned ways() const { return numWays; }
    std::size_t lines() const { return numSets * numWays; }

    /**
     * Find the non-OMV line holding @p addr; nullptr on miss. Updates
     * LRU on hit.
     */
    CacheLine *lookup(Addr addr);

    /** Find an OMV line holding @p addr (LLC use); does not touch LRU. */
    CacheLine *lookupOmv(Addr addr);

    /**
     * Choose a victim way in @p addr's set: an invalid line if any,
     * else the LRU line (OMV lines compete equally). The returned line
     * is NOT reset; the caller inspects it for writeback first.
     */
    CacheLine &victim(Addr addr);

    /** Install @p addr into @p line (which must belong to its set). */
    void fill(CacheLine &line, Addr addr, bool is_pm, bool dirty);

    /** Invalidate a line. */
    void invalidate(CacheLine &line);

    /**
     * Iterate all lines (occupancy statistics). Statically dispatched:
     * the sweep visits every line of a multi-MB directory, so the
     * callback must inline rather than bounce through a std::function.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &line : store)
            fn(line);
    }

    /** Iterate all lines mutably (bulk invalidation sweeps). */
    template <typename Fn>
    void
    forEachMutable(Fn &&fn)
    {
        for (auto &line : store)
            fn(line);
    }

    /** Bump a line's LRU stamp. */
    void touch(CacheLine &line) { line.lruStamp = ++stampCounter; }

  private:
    std::size_t setIndex(Addr addr) const;
    CacheLine *setBase(Addr addr);

    std::size_t numSets;
    unsigned numWays;
    std::vector<CacheLine> store;
    std::uint64_t stampCounter = 0;
};

} // namespace nvck

#endif // NVCK_CACHE_CACHE_HH
