#include "core.hh"

#include "common/log.hh"

namespace nvck {

Core::Core(unsigned id, EventQueue &event_queue, CoreContext &context,
           Workload &workload, const CoreConfig &config)
    : coreId(id), eq(event_queue), ctx(context), load(workload),
      cfg(config)
{
    stepEv = eq.makeRecurring([this] { step(); });
}

Tick
Core::cyclesToTicks(double c) const
{
    return static_cast<Tick>(c * 1000.0 / cfg.freqGhz);
}

Cycle
Core::cycles() const
{
    return static_cast<Cycle>(
        static_cast<double>(localTick - statsStartTick) * cfg.freqGhz /
        1000.0);
}

void
Core::start()
{
    localTick = eq.now();
    statsStartTick = localTick;
    eq.rearm(stepEv, localTick);
}

void
Core::memComplete(Tick t)
{
    NVCK_ASSERT(pendingLoads > 0, "spurious completion");
    --pendingLoads;
    if (state == State::StallMem) {
        state = State::Running;
        if (t > localTick) {
            stallMemTicks += t - stallStart;
            localTick = t;
        }
        // Completions arrive from events executing at their own tick,
        // so t == eq.now(); the queue asserts it (no silent clamping
        // of a past timestamp to now).
        eq.rearm(stepEv, t);
    }
}

void
Core::fenceResume(Tick t)
{
    NVCK_ASSERT(state == State::StallFence, "unexpected fence resume");
    state = State::Running;
    if (t > localTick) {
        stallFenceTicks += t - stallStart;
        localTick = t;
    }
    eq.rearm(stepEv, t);
}

void
Core::step()
{
    NVCK_ASSERT(state == State::Running, "step while stalled");
    if (localTick < eq.now())
        localTick = eq.now();
    const Tick budget_end = localTick + cfg.quantum;

    while (localTick < budget_end) {
        if (!holdingOp) {
            heldOp = load.next(coreId);
            holdingOp = true;
        }
        const TraceOp &op = heldOp;

        // Non-memory work preceding the op.
        const Tick gap_ticks = cyclesToTicks(
            static_cast<double>(op.gap) / cfg.issueWidth);

        switch (op.kind) {
          case TraceOp::Kind::Idle:
            localTick += gap_ticks + nsToTicks(op.idleNs);
            break;

          case TraceOp::Kind::Load:
          case TraceOp::Kind::Store: {
            // Loads and stores share the outstanding-miss window
            // (ROB/MSHR budget); neither waits for off-chip data unless
            // the window is full. Dependence chains are modelled by the
            // workload's MLP (window size 1 serialises misses).
            if (pendingLoads >= load.mlp()) {
                // Window full: memComplete() resumes the step loop.
                state = State::StallMem;
                stallStart = localTick;
                return;
            }
            localTick += gap_ticks;
            Cycle lat = 0;
            const bool is_store = op.kind == TraceOp::Kind::Store;
            const bool local = ctx.access(coreId, op.addr, is_store,
                                          op.isPm, localTick, &lat,
                                          *this);
            if (local) {
                localTick += cyclesToTicks(static_cast<double>(lat));
            } else {
                ++pendingLoads;
                localTick += cyclesToTicks(1.0);
            }
            ++memoryOps;
            break;
          }

          case TraceOp::Kind::Clean:
            localTick += gap_ticks;
            ctx.clean(coreId, op.addr, op.isPm, localTick);
            localTick += cyclesToTicks(1.0);
            ++memoryOps;
            break;

          case TraceOp::Kind::Fence:
            localTick += gap_ticks;
            if (ctx.persistsPending(coreId)) {
                // Consume the op now; fenceResume() continues when the
                // persists drain.
                retired += op.gap + 1;
                holdingOp = false;
                state = State::StallFence;
                stallStart = localTick;
                ctx.onPersistDrain(coreId, *this);
                return;
            }
            break;
        }

        retired += op.gap + 1;
        holdingOp = false;
    }

    // localTick only grows during a step and started >= eq.now(), so
    // this never schedules into the past (the queue would die if a
    // regression made it try).
    eq.rearm(stepEv, localTick);
}

} // namespace nvck
