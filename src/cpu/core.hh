/**
 * @file
 * Interval-style out-of-order core model: 4-wide issue over the
 * workload's abstract op stream, a bounded window of outstanding memory
 * loads (the workload's memory-level parallelism, standing in for
 * ROB/MSHR limits), posted stores, clwb/fence persist semantics, and
 * off-CPU idle spans for network-bound queries. This is the gem5
 * substitution documented in DESIGN.md: it preserves the sensitivity of
 * IPC/FLOPS to memory latency and bandwidth, which is all the paper's
 * evaluation (Figs 16/17) measures.
 */

#ifndef NVCK_CPU_CORE_HH
#define NVCK_CPU_CORE_HH

#include <cstdint>

#include "common/event.hh"
#include "common/types.hh"
#include "workload/workload.hh"

namespace nvck {

class Core;

/**
 * Services a core's memory operations. Implemented by the system glue,
 * which owns the cache hierarchy, the protection scheme, and the
 * memory controller. Completions are delivered straight to the
 * requesting core (Core::memComplete / Core::fenceResume) rather than
 * through per-access closures: the core issues millions of accesses
 * per simulated millisecond, and a callback object per access was the
 * request path's dominant allocation.
 */
class CoreContext
{
  public:
    virtual ~CoreContext() = default;

    /**
     * Perform a load/store issued at time @p when.
     *
     * @return true when the access completes locally; *latency_cycles
     *         then holds the pipeline cost. false when the access needs
     *         an off-chip response; @p requester.memComplete() fires at
     *         data return (loads only; stores are always posted and
     *         return true).
     */
    virtual bool access(unsigned core, Addr addr, bool is_write,
                        bool is_pm, Tick when, Cycle *latency_cycles,
                        Core &requester) = 0;

    /** clwb semantics: push the dirty block toward memory at @p when. */
    virtual void clean(unsigned core, Addr addr, bool is_pm,
                       Tick when) = 0;

    /** True while @p core has persists in flight (fence must wait). */
    virtual bool persistsPending(unsigned core) const = 0;

    /** Call @p requester.fenceResume() when @p core's persists drain. */
    virtual void onPersistDrain(unsigned core, Core &requester) = 0;
};

/** Core parameters (Table I). */
struct CoreConfig
{
    unsigned issueWidth = 4;
    double freqGhz = 3.0;
    /** Local step budget before yielding to the event queue. */
    Tick quantum = nsToTicks(100);
};

/** The core. */
class Core
{
  public:
    Core(unsigned id, EventQueue &event_queue, CoreContext &context,
         Workload &workload, const CoreConfig &config);

    /** Begin executing (schedules the first step). */
    void start();

    /**
     * An outstanding off-chip access completed at time @p t. Frees the
     * miss-window slot and, if the window was full, resumes stepping.
     */
    void memComplete(Tick t);

    /** The core's persists drained at @p t; resume from the fence. */
    void fenceResume(Tick t);

    /** Retired instructions (gap instructions + one per op). */
    std::uint64_t instructions() const { return retired; }

    /** Memory operations issued. */
    std::uint64_t memOps() const { return memoryOps; }

    /** Core cycles elapsed at local time. */
    Cycle cycles() const;

    /** Total ticks spent stalled on a full load window. */
    Tick memStallTicks() const { return stallMemTicks; }
    /** Total ticks spent waiting at fences. */
    Tick fenceStallTicks() const { return stallFenceTicks; }

    void
    resetStats()
    {
        retired = 0;
        memoryOps = 0;
        statsStartTick = localTick;
        stallMemTicks = 0;
        stallFenceTicks = 0;
    }

  private:
    enum class State { Running, StallMem, StallFence };

    void step();
    Tick cyclesToTicks(double c) const;

    unsigned coreId;
    EventQueue &eq;
    CoreContext &ctx;
    Workload &load;
    CoreConfig cfg;

    /**
     * The step loop's pooled event: every quantum end, miss resume, and
     * fence resume rearms this one node instead of scheduling a fresh
     * closure (at most one can be pending — a stalled core scheduled
     * nothing, and a running core's step event just fired).
     */
    EventQueue::Recurring stepEv;

    State state = State::Running;
    Tick localTick = 0;
    Tick statsStartTick = 0;
    unsigned pendingLoads = 0;
    bool holdingOp = false;
    TraceOp heldOp;
    std::uint64_t retired = 0;
    std::uint64_t memoryOps = 0;
    Tick stallMemTicks = 0;
    Tick stallFenceTicks = 0;
    Tick stallStart = 0;
};

} // namespace nvck

#endif // NVCK_CPU_CORE_HH
