/**
 * @file
 * Trace capture and replay: record any workload's per-core op stream
 * to a compact binary file and play it back later as a Workload. This
 * is the interface a user with *real* application traces (e.g. from a
 * PIN/DynamoRIO tool or a gem5 run) uses to drive the simulator
 * instead of the synthetic generators.
 *
 * Format: 16-byte little-endian records
 *   [u8 kind][u8 core][u16 gap][u32 idle_ns_x16][u64 addr_and_flags]
 * where bit 63 of the last field carries isPm. A 16-byte header holds
 * a magic, version, and core count.
 */

#ifndef NVCK_WORKLOAD_TRACE_FILE_HH
#define NVCK_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace nvck {

/** Streams TraceOps to a file. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    TraceWriter(const std::string &path, unsigned cores);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one op for @p core. */
    void append(unsigned core, const TraceOp &op);

    /** Records written so far. */
    std::uint64_t records() const { return written; }

    /** Capture @p ops_per_core ops from @p source into @p path. */
    static void capture(Workload &source, const std::string &path,
                        unsigned cores, std::uint64_t ops_per_core);

  private:
    std::FILE *file;
    std::uint64_t written = 0;
};

/**
 * Replays a trace file as a Workload. Each core's stream loops back to
 * its beginning when exhausted (streams must be infinite).
 */
class TraceReplayWorkload : public Workload
{
  public:
    /**
     * @param path trace file written by TraceWriter.
     * @param mlp_hint load window for the core model (traces carry no
     *        dependence information).
     */
    explicit TraceReplayWorkload(const std::string &path,
                                 unsigned mlp_hint = 8);

    std::string name() const override { return traceName; }
    TraceOp next(unsigned core) override;
    unsigned mlp() const override { return mlpHint; }

    unsigned cores() const
    {
        return static_cast<unsigned>(perCore.size());
    }

    /** Total ops loaded across all cores. */
    std::uint64_t totalOps() const;

  private:
    std::string traceName;
    unsigned mlpHint;
    std::vector<std::vector<TraceOp>> perCore;
    std::vector<std::size_t> cursor;
};

} // namespace nvck

#endif // NVCK_WORKLOAD_TRACE_FILE_HH
