#include "synthetic.hh"

#include "common/log.hh"

namespace nvck {

namespace {

/** Per-core undo-log region size. */
constexpr std::uint64_t logRegionBytes = 16ull << 20;

/** Hot-set parameters for the Zipf approximation. */
constexpr double zipfHotFraction = 0.01; //!< of the data region
constexpr double zipfHotProb = 0.8;      //!< of accesses hit the hot set

} // namespace

SyntheticWorkload::SyntheticWorkload(const QueryProfile &profile,
                                     const AddressSpace &addr_space,
                                     unsigned cores, std::uint64_t seed)
    : prof(profile), space(addr_space), perCore(cores)
{
    NVCK_ASSERT(cores >= 1, "need at least one core");
    // Reserve the log regions plus one extra MB of bank-stagger slack.
    const std::uint64_t log_total =
        logRegionBytes * cores + (1ull << 20);
    NVCK_ASSERT(space.pmBytes > 2 * log_total,
                "PM region too small for per-core logs");
    dataBytes = space.pmBytes - log_total;
    for (unsigned c = 0; c < cores; ++c) {
        CoreState &cs = perCore[c];
        cs.rng = Rng(seed * 7919 + c * 104729 + 1);
        // Stagger log regions by a few rows so per-core logs start in
        // different banks (they would otherwise all map to bank 0 and
        // serialise every log append on one bank).
        cs.logBase = space.pmBase + dataBytes + c * logRegionBytes +
                     static_cast<Addr>(c) * 5 * 8192;
        cs.logBytes = logRegionBytes;
        cs.logCursor = cs.logBase;
        // Spread streaming cursors so cores do not collide.
        cs.seqCursor =
            space.pmBase + (dataBytes / cores) * c;
        // A handful of hot metadata blocks per core, placed in its
        // slice of the data region.
        for (unsigned h = 0; h < 8; ++h)
            cs.hotBlocks.push_back(space.pmBase +
                                   (dataBytes / cores) * c +
                                   (h + 1) * blockBytes);
    }
}

unsigned
SyntheticWorkload::gap(CoreState &cs) const
{
    // Uniform in [gapMean/2, 3*gapMean/2): mean gapMean, cheap to draw.
    if (prof.gapMean == 0)
        return 0;
    const unsigned half = prof.gapMean / 2;
    return half + static_cast<unsigned>(
                      cs.rng.below(prof.gapMean + 1));
}

Addr
SyntheticWorkload::dramBlock(CoreState &cs)
{
    const std::uint64_t blocks = space.dramBytes / blockBytes;
    return space.dramBase + cs.rng.below(blocks) * blockBytes;
}

Addr
SyntheticWorkload::pmDataBlock(CoreState &cs, AccessPattern pattern)
{
    const std::uint64_t blocks = dataBytes / blockBytes;
    switch (pattern) {
      case AccessPattern::Uniform:
      case AccessPattern::Chase:
        // A pointer chase visits effectively random nodes; the
        // serialisation comes from the dependence (MLP = 1), not the
        // address sequence.
        return space.pmBase + cs.rng.below(blocks) * blockBytes;
      case AccessPattern::Zipf: {
        const std::uint64_t hot_blocks = static_cast<std::uint64_t>(
            static_cast<double>(blocks) * zipfHotFraction) + 1;
        if (cs.rng.uniform() < zipfHotProb)
            return space.pmBase + cs.rng.below(hot_blocks) * blockBytes;
        return space.pmBase + cs.rng.below(blocks) * blockBytes;
      }
      case AccessPattern::Sequential: {
        const Addr out = cs.seqCursor;
        cs.seqCursor += blockBytes;
        if (cs.seqCursor >= space.pmBase + dataBytes)
            cs.seqCursor = space.pmBase;
        return out;
      }
    }
    NVCK_PANIC("unknown access pattern");
}

void
SyntheticWorkload::emitQuery(CoreState &cs)
{
    auto push = [&cs](TraceOp::Kind kind, Addr addr, bool is_pm,
                      unsigned gap_instr, double idle_ns = 0.0) {
        TraceOp op;
        op.kind = kind;
        op.addr = addr;
        op.isPm = is_pm;
        op.gap = gap_instr;
        op.idleNs = idle_ns;
        cs.queue.push_back(op);
    };

    // 1. Network / off-CPU wait for request arrival.
    if (prof.networkDelayNs > 0)
        push(TraceOp::Kind::Idle, 0, false, gap(cs),
             prof.networkDelayNs);

    // 2. Volatile index work.
    for (unsigned i = 0; i < prof.dramReads; ++i)
        push(TraceOp::Kind::Load, dramBlock(cs), false, gap(cs));

    // 3. Persistent reads.
    for (unsigned i = 0; i < prof.pmReads; ++i)
        push(TraceOp::Kind::Load,
             pmDataBlock(cs, prof.pmReadPattern), true, gap(cs));

    // 4. Persistent updates under the ATLAS/undo-log discipline.
    for (unsigned i = 0; i < prof.pmWrites; ++i) {
        Addr data;
        if (cs.hasLastWrite &&
            cs.rng.uniform() < prof.writeRowLocality) {
            data = cs.lastWriteBlock + blockBytes;
        } else {
            data = pmDataBlock(cs, AccessPattern::Uniform);
        }
        cs.lastWriteBlock = data;
        cs.hasLastWrite = true;

        if (prof.atlasLogging) {
            push(TraceOp::Kind::Store, cs.logCursor, true, gap(cs));
            push(TraceOp::Kind::Clean, cs.logCursor, true, 2);
            push(TraceOp::Kind::Fence, 0, true, 1);
            cs.logCursor += blockBytes;
            if (cs.logCursor >= cs.logBase + cs.logBytes)
                cs.logCursor = cs.logBase;
        }
        push(TraceOp::Kind::Store, data, true, gap(cs));
        if (prof.cleanData) {
            // ATLAS cleans data asynchronously: enqueue the block and
            // emit the clean once it has aged cleanLagBlocks writes.
            cs.pendingCleans.push_back(data);
            while (cs.pendingCleans.size() > prof.cleanLagBlocks) {
                const Addr victim = cs.pendingCleans.front();
                cs.pendingCleans.pop_front();
                push(TraceOp::Kind::Clean, victim, true, 2);
                push(TraceOp::Kind::Fence, 0, true, 1);
            }
        }
    }

    // 5. Hot metadata updates (root pointers, allocator state):
    // logged like every PM store, but the data blocks stay cached and
    // are only cleaned occasionally.
    ++cs.queryCount;
    for (unsigned i = 0; i < prof.hotWrites; ++i) {
        const Addr hot =
            cs.hotBlocks[cs.hotCursor++ % cs.hotBlocks.size()];
        if (prof.atlasLogging) {
            push(TraceOp::Kind::Store, cs.logCursor, true, gap(cs));
            push(TraceOp::Kind::Clean, cs.logCursor, true, 2);
            push(TraceOp::Kind::Fence, 0, true, 1);
            cs.logCursor += blockBytes;
            if (cs.logCursor >= cs.logBase + cs.logBytes)
                cs.logCursor = cs.logBase;
        }
        push(TraceOp::Kind::Store, hot, true, gap(cs));
    }
    if (prof.hotWrites > 0 && cs.queryCount % 64 == 0) {
        push(TraceOp::Kind::Clean,
             cs.hotBlocks[cs.queryCount / 64 % cs.hotBlocks.size()],
             true, 2);
        push(TraceOp::Kind::Fence, 0, true, 1);
    }

    // 6. Volatile writes (statistics, LRU lists, ...).
    for (unsigned i = 0; i < prof.dramWrites; ++i)
        push(TraceOp::Kind::Store, dramBlock(cs), false, gap(cs));
}

TraceOp
SyntheticWorkload::next(unsigned core)
{
    NVCK_ASSERT(core < perCore.size(), "bad core id");
    CoreState &cs = perCore[core];
    if (cs.queue.empty())
        emitQuery(cs);
    NVCK_ASSERT(!cs.queue.empty(), "query emitted no ops");
    TraceOp op = cs.queue.front();
    cs.queue.pop_front();
    return op;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const AddressSpace &space,
             unsigned cores, std::uint64_t seed)
{
    return std::make_unique<SyntheticWorkload>(findProfile(name), space,
                                               cores, seed);
}

} // namespace nvck
