#include "profiles.hh"

#include "common/log.hh"

namespace nvck {

namespace {

QueryProfile
make(const std::string &name)
{
    QueryProfile p;
    p.name = name;
    return p;
}

std::vector<QueryProfile>
buildWhisper()
{
    std::vector<QueryProfile> v;

    // echo: key-value log with small items; write-dominated queries
    // behind a network hop.
    {
        QueryProfile p = make("echo");
        p.networkDelayNs = 1500;
        p.gapMean = 2000;
        p.mlp = 4;
        p.dramReads = 2;
        p.pmReads = 1;
        p.pmReadPattern = AccessPattern::Zipf;
        p.pmWrites = 1;
        p.writeRowLocality = 0.6;
        p.hotWrites = 1;
        p.cleanLagBlocks = 1000;
        v.push_back(p);
    }
    // memcached: larger volatile index, get/put mix, network-bound.
    {
        QueryProfile p = make("memcached");
        p.networkDelayNs = 2000;
        p.gapMean = 1500;
        p.dramReads = 6;
        p.dramWrites = 2;
        p.pmReads = 1;
        p.pmReadPattern = AccessPattern::Zipf;
        p.pmWrites = 1;
        p.writeRowLocality = 0.6;
        p.hotWrites = 1;
        p.cleanLagBlocks = 1200;
        v.push_back(p);
    }
    // redis: like memcached with more volatile bookkeeping per query.
    {
        QueryProfile p = make("redis");
        p.networkDelayNs = 2000;
        p.gapMean = 1600;
        p.dramReads = 8;
        p.dramWrites = 2;
        p.pmReads = 1;
        p.pmReadPattern = AccessPattern::Zipf;
        p.pmWrites = 1;
        p.writeRowLocality = 0.6;
        p.hotWrites = 1;
        p.cleanLagBlocks = 1100;
        v.push_back(p);
    }
    // ctree/btree/rbtree: write-only queries over pointer-chased trees
    // living in persistent memory (Section VII: reads from few banks at
    // a time, hence the low sensitivity to write latency).
    {
        QueryProfile p = make("ctree");
        p.gapMean = 10000;
        p.mlp = 1;
        p.pmReads = 12;
        p.pmReadPattern = AccessPattern::Chase;
        p.pmWrites = 2;
        p.writeRowLocality = 0.85;
        p.hotWrites = 1;
        p.cleanLagBlocks = 500;
        v.push_back(p);
    }
    {
        QueryProfile p = make("btree");
        p.gapMean = 11000;
        p.mlp = 1;
        p.pmReads = 10;
        p.pmReadPattern = AccessPattern::Chase;
        p.pmWrites = 2;
        p.writeRowLocality = 0.85;
        p.hotWrites = 1;
        p.cleanLagBlocks = 500;
        v.push_back(p);
    }
    {
        QueryProfile p = make("rbtree");
        p.gapMean = 9500;
        p.mlp = 1;
        p.pmReads = 14;
        p.pmReadPattern = AccessPattern::Chase;
        p.pmWrites = 3;
        p.writeRowLocality = 0.8;
        p.hotWrites = 1;
        p.cleanLagBlocks = 600;
        v.push_back(p);
    }
    // hashmap: write-only queries, uniform hashing (no spatial
    // locality), no network hop; the paper's worst case for the
    // proposal's write-latency inflation.
    {
        QueryProfile p = make("hashmap");
        p.gapMean = 3300;
        p.mlp = 8;
        p.pmReads = 1;
        p.pmReadPattern = AccessPattern::Uniform;
        p.pmWrites = 2;
        p.writeRowLocality = 0.55;
        p.hotWrites = 2;
        p.cleanLagBlocks = 1800;
        v.push_back(p);
    }
    // tpcc: multi-record transactions over a mix of volatile index and
    // persistent tables.
    {
        QueryProfile p = make("tpcc");
        p.gapMean = 2800;
        p.mlp = 6;
        p.dramReads = 10;
        p.dramWrites = 4;
        p.pmReads = 4;
        p.pmReadPattern = AccessPattern::Zipf;
        p.pmWrites = 3;
        p.writeRowLocality = 0.7;
        p.hotWrites = 2;
        p.cleanLagBlocks = 1200;
        v.push_back(p);
    }
    // vacation: STAMP-style reservation system, transactional.
    {
        QueryProfile p = make("vacation");
        p.networkDelayNs = 800;
        p.gapMean = 3000;
        p.mlp = 4;
        p.dramReads = 6;
        p.dramWrites = 2;
        p.pmReads = 6;
        p.pmReadPattern = AccessPattern::Uniform;
        p.pmWrites = 2;
        p.writeRowLocality = 0.6;
        p.hotWrites = 1;
        p.cleanLagBlocks = 900;
        v.push_back(p);
    }
    // ycsb: read-mostly key-value point queries with skew.
    {
        QueryProfile p = make("ycsb");
        p.gapMean = 3000;
        p.dramReads = 2;
        p.pmReads = 4;
        p.pmReadPattern = AccessPattern::Zipf;
        p.pmWrites = 1;
        p.writeRowLocality = 0.7;
        p.hotWrites = 1;
        p.cleanLagBlocks = 1000;
        v.push_back(p);
    }
    return v;
}

std::vector<QueryProfile>
buildSplash()
{
    std::vector<QueryProfile> v;
    auto scientific = [](const std::string &name) {
        QueryProfile p;
        p.name = name;
        p.flops = true;
        p.flopFraction = 0.5;
        p.mlp = 8;
        p.atlasLogging = true; // ATLAS puts the heap in PM
        return p;
    };
    // barnes: octree body walk (pointer chasing, tiny write ratio:
    // 0.5% dirty-PM occupancy in Fig 10).
    {
        QueryProfile p = scientific("barnes");
        p.gapMean = 8000;
        p.mlp = 2;
        p.pmReads = 6;
        p.pmReadPattern = AccessPattern::Chase;
        p.pmWrites = 1;
        p.writeRowLocality = 0.85;
        p.hotWrites = 1;
        p.cleanLagBlocks = 60;
        p.dramReads = 2;
        v.push_back(p);
    }
    // fmm: adaptive fast multipole, tree walk plus dense math.
    {
        QueryProfile p = scientific("fmm");
        p.gapMean = 6000;
        p.mlp = 2;
        p.pmReads = 5;
        p.pmReadPattern = AccessPattern::Chase;
        p.pmWrites = 1;
        p.writeRowLocality = 0.85;
        p.hotWrites = 1;
        p.cleanLagBlocks = 80;
        p.dramReads = 2;
        v.push_back(p);
    }
    // ocean: structured-grid streaming sweeps.
    {
        QueryProfile p = scientific("ocean");
        p.gapMean = 2500;
        p.pmReads = 8;
        p.pmReadPattern = AccessPattern::Sequential;
        p.pmWrites = 2;
        p.writeRowLocality = 0.95;
        p.hotWrites = 1;
        p.cleanLagBlocks = 400;
        v.push_back(p);
    }
    // radix: counting sort passes, streaming reads + scattered writes.
    {
        QueryProfile p = scientific("radix");
        p.gapMean = 3000;
        p.pmReads = 6;
        p.pmReadPattern = AccessPattern::Sequential;
        p.pmWrites = 3;
        p.writeRowLocality = 0.9;
        p.hotWrites = 1;
        p.cleanLagBlocks = 500;
        v.push_back(p);
    }
    // raytrace: read-dominated scene traversal with skewed reuse.
    {
        QueryProfile p = scientific("raytrace");
        p.gapMean = 3000;
        p.pmReads = 8;
        p.pmReadPattern = AccessPattern::Zipf;
        p.pmWrites = 1;
        p.writeRowLocality = 0.8;
        p.hotWrites = 1;
        p.cleanLagBlocks = 150;
        p.dramReads = 2;
        v.push_back(p);
    }
    // water-nsquared: particle pairs, modest memory intensity.
    {
        QueryProfile p = scientific("water");
        p.gapMean = 4000;
        p.pmReads = 5;
        p.pmReadPattern = AccessPattern::Uniform;
        p.pmWrites = 1;
        p.writeRowLocality = 0.85;
        p.hotWrites = 1;
        p.cleanLagBlocks = 100;
        v.push_back(p);
    }
    return v;
}

} // namespace

const std::vector<QueryProfile> &
whisperProfiles()
{
    static const std::vector<QueryProfile> profiles = buildWhisper();
    return profiles;
}

const std::vector<QueryProfile> &
splashProfiles()
{
    static const std::vector<QueryProfile> profiles = buildSplash();
    return profiles;
}

const QueryProfile &
findProfile(const std::string &name)
{
    for (const auto &p : whisperProfiles())
        if (p.name == name)
            return p;
    for (const auto &p : splashProfiles())
        if (p.name == name)
            return p;
    NVCK_FATAL("unknown benchmark: ", name);
}

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &p : whisperProfiles())
        names.push_back(p.name);
    for (const auto &p : splashProfiles())
        names.push_back(p.name);
    return names;
}

} // namespace nvck
