/**
 * @file
 * The synthetic trace generator: turns a QueryProfile into an infinite
 * per-core stream of TraceOps, reproducing each benchmark's memory
 * signature (see profiles.hh). Persistent updates follow the
 * ATLAS-style discipline the paper assumes: undo-log append + clwb +
 * sfence, then the data store + clwb + sfence.
 */

#ifndef NVCK_WORKLOAD_SYNTHETIC_HH
#define NVCK_WORKLOAD_SYNTHETIC_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "workload/profiles.hh"
#include "workload/workload.hh"

namespace nvck {

/** Profile-driven workload generator. */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(const QueryProfile &profile,
                      const AddressSpace &space, unsigned cores,
                      std::uint64_t seed);

    std::string name() const override { return prof.name; }
    TraceOp next(unsigned core) override;
    unsigned mlp() const override { return prof.mlp; }
    bool isFlops() const override { return prof.flops; }
    double flopFraction() const override { return prof.flopFraction; }

  private:
    struct CoreState
    {
        Rng rng{1};
        std::deque<TraceOp> queue;
        Addr logCursor = 0;
        Addr logBase = 0;
        std::uint64_t logBytes = 0;
        Addr seqCursor = 0;
        Addr lastWriteBlock = 0;
        bool hasLastWrite = false;
        /** Dirty data blocks awaiting their lazy clean. */
        std::deque<Addr> pendingCleans;
        /** Hot per-core metadata blocks, rewritten in place. */
        std::vector<Addr> hotBlocks;
        std::uint64_t hotCursor = 0;
        std::uint64_t queryCount = 0;
    };

    void emitQuery(CoreState &cs);
    Addr pmDataBlock(CoreState &cs, AccessPattern pattern);
    Addr dramBlock(CoreState &cs);
    unsigned gap(CoreState &cs) const;

    QueryProfile prof;
    AddressSpace space;
    /** PM data region (log regions carved from the top of PM). */
    std::uint64_t dataBytes;
    std::vector<CoreState> perCore;
};

/** Construct the named benchmark (fatal on unknown name). */
std::unique_ptr<Workload>
makeWorkload(const std::string &name, const AddressSpace &space,
             unsigned cores, std::uint64_t seed);

} // namespace nvck

#endif // NVCK_WORKLOAD_SYNTHETIC_HH
