#include "trace_file.hh"

#include <array>
#include <cstring>

#include "common/log.hh"

namespace nvck {

namespace {

constexpr std::uint32_t traceMagic = 0x4E56434Bu; // "NVCK"
constexpr std::uint32_t traceVersion = 1;

struct FileHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t cores;
    std::uint32_t reserved;
};
static_assert(sizeof(FileHeader) == 16, "header must be 16 bytes");

struct Record
{
    std::uint8_t kind;
    std::uint8_t core;
    std::uint16_t gap;
    std::uint32_t idleNsX16;
    std::uint64_t addrFlags;
};
static_assert(sizeof(Record) == 16, "record must be 16 bytes");

constexpr std::uint64_t pmFlag = 1ull << 63;

Record
encode(unsigned core, const TraceOp &op)
{
    Record rec{};
    rec.kind = static_cast<std::uint8_t>(op.kind);
    rec.core = static_cast<std::uint8_t>(core);
    rec.gap = static_cast<std::uint16_t>(
        op.gap > 0xFFFF ? 0xFFFF : op.gap);
    rec.idleNsX16 = static_cast<std::uint32_t>(op.idleNs * 16.0);
    rec.addrFlags = op.addr & ~pmFlag;
    if (op.isPm)
        rec.addrFlags |= pmFlag;
    return rec;
}

TraceOp
decode(const Record &rec)
{
    TraceOp op;
    op.kind = static_cast<TraceOp::Kind>(rec.kind);
    op.gap = rec.gap;
    op.idleNs = static_cast<double>(rec.idleNsX16) / 16.0;
    op.addr = rec.addrFlags & ~pmFlag;
    op.isPm = (rec.addrFlags & pmFlag) != 0;
    return op;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, unsigned cores)
    : file(std::fopen(path.c_str(), "wb"))
{
    if (file == nullptr)
        NVCK_FATAL("cannot open trace file for writing: ", path);
    FileHeader header{traceMagic, traceVersion, cores, 0};
    if (std::fwrite(&header, sizeof(header), 1, file) != 1)
        NVCK_FATAL("cannot write trace header: ", path);
}

TraceWriter::~TraceWriter()
{
    if (file != nullptr)
        std::fclose(file);
}

void
TraceWriter::append(unsigned core, const TraceOp &op)
{
    NVCK_ASSERT(core < 256, "core id exceeds trace format");
    const Record rec = encode(core, op);
    if (std::fwrite(&rec, sizeof(rec), 1, file) != 1)
        NVCK_FATAL("trace write failed");
    ++written;
}

void
TraceWriter::capture(Workload &source, const std::string &path,
                     unsigned cores, std::uint64_t ops_per_core)
{
    TraceWriter writer(path, cores);
    for (unsigned c = 0; c < cores; ++c)
        for (std::uint64_t i = 0; i < ops_per_core; ++i)
            writer.append(c, source.next(c));
}

TraceReplayWorkload::TraceReplayWorkload(const std::string &path,
                                         unsigned mlp_hint)
    : traceName("trace:" + path), mlpHint(mlp_hint)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        NVCK_FATAL("cannot open trace file: ", path);
    FileHeader header{};
    if (std::fread(&header, sizeof(header), 1, file) != 1 ||
        header.magic != traceMagic) {
        std::fclose(file);
        NVCK_FATAL("not a nvchipkill trace: ", path);
    }
    if (header.version != traceVersion) {
        std::fclose(file);
        NVCK_FATAL("unsupported trace version ", header.version);
    }
    perCore.resize(header.cores);
    cursor.assign(header.cores, 0);

    Record rec{};
    while (std::fread(&rec, sizeof(rec), 1, file) == 1) {
        if (rec.core >= header.cores) {
            std::fclose(file);
            NVCK_FATAL("trace record for core ", rec.core,
                       " exceeds header core count");
        }
        perCore[rec.core].push_back(decode(rec));
    }
    std::fclose(file);
    for (unsigned c = 0; c < header.cores; ++c) {
        if (perCore[c].empty())
            NVCK_FATAL("trace has no ops for core ", c);
    }
}

TraceOp
TraceReplayWorkload::next(unsigned core)
{
    NVCK_ASSERT(core < perCore.size(), "core out of range");
    auto &ops = perCore[core];
    const TraceOp op = ops[cursor[core]];
    cursor[core] = (cursor[core] + 1) % ops.size();
    return op;
}

std::uint64_t
TraceReplayWorkload::totalOps() const
{
    std::uint64_t total = 0;
    for (const auto &ops : perCore)
        total += ops.size();
    return total;
}

} // namespace nvck
