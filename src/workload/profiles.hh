/**
 * @file
 * Per-benchmark query profiles for the synthetic workload generators.
 * Each profile describes one benchmark's memory-access signature —
 * query structure, persistent/volatile mix, access patterns, spatial
 * locality, compute density, off-CPU (network) time — calibrated to the
 * characterization the paper publishes: Fig 14 (off-chip access
 * breakdown), Fig 10 (dirty-PM cache occupancy), Fig 15 (C factor),
 * and the behavioural descriptions in Section VII (write-only queries
 * for hashmap/ctree/btree/rbtree, pointer-chasing trees, network-bound
 * KV stores).
 */

#ifndef NVCK_WORKLOAD_PROFILES_HH
#define NVCK_WORKLOAD_PROFILES_HH

#include <string>
#include <vector>

namespace nvck {

/** Address-generation pattern for persistent-memory reads. */
enum class AccessPattern
{
    Uniform,    //!< uniform random over the data region
    Zipf,       //!< hot-set skewed (two-region approximation)
    Chase,      //!< dependent pointer chase (serialising, MLP = 1)
    Sequential, //!< streaming with a per-core cursor
};

/** Memory-access signature of one benchmark's query/iteration. */
struct QueryProfile
{
    std::string name;
    bool flops = false;       //!< SPLASH-style (FLOPS metric)
    double flopFraction = 0.0;
    unsigned mlp = 8;         //!< load window the core may keep open
    double networkDelayNs = 0; //!< off-CPU time per query
    unsigned gapMean = 25;    //!< non-memory instructions between ops

    unsigned dramReads = 0;
    unsigned dramWrites = 0;
    unsigned pmReads = 0;
    AccessPattern pmReadPattern = AccessPattern::Uniform;
    unsigned pmWrites = 0;
    /**
     * Stores per query to hot per-core metadata blocks (root pointers,
     * allocator state, statistics). Each is undo-logged like any PM
     * store, but the blocks themselves stay cached and are rewritten in
     * place, so their off-chip traffic is almost entirely log appends —
     * the dominant component of real ATLAS/WHISPER PM write traffic.
     */
    unsigned hotWrites = 2;
    /** P(consecutive data writes land in the same row). */
    double writeRowLocality = 0.0;
    /** ATLAS-style undo logging: log store + clwb + fence per write. */
    bool atlasLogging = true;
    /** clwb the written data block (persistent data structures do). */
    bool cleanData = true;
    /**
     * Dirty data blocks are cleaned lazily, this many blocks behind the
     * write front (ATLAS flushes data asynchronously; only the log is
     * forced at transaction boundaries). Controls the dirty-PM cache
     * occupancy of Fig 10.
     */
    unsigned cleanLagBlocks = 256;
};

/** The ten WHISPER-like benchmarks evaluated in the paper. */
const std::vector<QueryProfile> &whisperProfiles();

/** The SPLASH3-like kernels run under the ATLAS wrapper. */
const std::vector<QueryProfile> &splashProfiles();

/** Lookup by name across both families; fatal on unknown name. */
const QueryProfile &findProfile(const std::string &name);

/** All benchmark names, WHISPER first (figure order). */
std::vector<std::string> allBenchmarkNames();

} // namespace nvck

#endif // NVCK_WORKLOAD_PROFILES_HH
