/**
 * @file
 * Workload abstraction: a per-core stream of abstract trace operations
 * (loads, stores, cache-line cleans, fences, idle spans) consumed by
 * the interval core model. Concrete generators (WHISPER-like persistent
 * memory benchmarks, SPLASH3-like scientific kernels under an
 * ATLAS-style persistency wrapper) live in whisper.hh / splash.hh.
 */

#ifndef NVCK_WORKLOAD_WORKLOAD_HH
#define NVCK_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nvck {

/** One abstract operation in a core's instruction stream. */
struct TraceOp
{
    enum class Kind
    {
        Load,  //!< data read (addr, isPm)
        Store, //!< data write (addr, isPm)
        Clean, //!< clwb of a block (addr, isPm)
        Fence, //!< sfence: wait for this core's pending persists
        Idle,  //!< off-CPU time (network/IO wait), idleNs
    };

    Kind kind = Kind::Load;
    Addr addr = 0;
    bool isPm = false;
    /** Non-memory instructions preceding this op. */
    unsigned gap = 0;
    /** For Kind::Idle: nanoseconds off-CPU. */
    double idleNs = 0.0;
};

/** A workload generating one op stream per core. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as it appears in the paper's figures. */
    virtual std::string name() const = 0;

    /** Next operation for @p core. Streams are infinite. */
    virtual TraceOp next(unsigned core) = 0;

    /** Memory-level parallelism the core model may exploit. */
    virtual unsigned mlp() const = 0;

    /** SPLASH-style workloads report FLOPS instead of IPC. */
    virtual bool isFlops() const { return false; }

    /** Fraction of gap instructions that are floating-point. */
    virtual double flopFraction() const { return 0.0; }
};

/** Shared layout of the simulated physical address space. */
struct AddressSpace
{
    /** Persistent-memory region base and size. */
    Addr pmBase = 0;
    std::uint64_t pmBytes = 2ull << 30;
    /** DRAM region base and size. */
    Addr dramBase = 1ull << 40;
    std::uint64_t dramBytes = 2ull << 30;
};

} // namespace nvck

#endif // NVCK_WORKLOAD_WORKLOAD_HH
