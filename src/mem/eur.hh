/**
 * @file
 * The ECC Update Registerfile (EUR) the proposal embeds in each NVRAM
 * chip (Section V-D, Fig 11/12). Writes to an open row record which
 * VLEW's code bits they dirty; all updates to the same VLEW coalesce
 * into one register and drain as a single internal read-modify-write of
 * the code bits when the row closes. The ratio of drained code-bit
 * writes to data writes is the paper's C factor (Fig 15).
 */

#ifndef NVCK_MEM_EUR_HH
#define NVCK_MEM_EUR_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace nvck {

/** EUR state for one NVRAM rank (chips operate in lockstep). */
class EurModel
{
  public:
    /**
     * @param banks Banks in the rank.
     * @param vlews_per_row VLEWs per row per chip (row bytes per chip /
     *        VLEW data bytes; 1KB / 256B = 4 by default).
     */
    EurModel(unsigned banks, unsigned vlews_per_row);

    /** Record a data write hitting (bank, vlew slot within open row). */
    void recordWrite(unsigned bank, unsigned vlew_slot);

    /**
     * The open row of @p bank is closing: drain its registers. Returns
     * the number of coalesced VLEW code-bit writes performed.
     */
    unsigned
    drain(unsigned bank)
    {
        return drainSlots(bank, [](unsigned) {});
    }

    /**
     * drain() with the ordering made explicit: registers retire lowest
     * VLEW slot first, and @p on_slot observes each retirement before
     * the register clears. A power cut between observations models a
     * crash mid-drain (some code-bit updates applied, the rest lost).
     * Statically dispatched: row closes sit on the write hot path, so
     * the observer must not cost a type-erased call per retirement.
     */
    template <typename Fn>
    unsigned
    drainSlots(unsigned bank, Fn &&on_slot)
    {
        NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
        unsigned count = 0;
        std::uint64_t mask = dirtyMask[bank];
        while (mask) {
            const unsigned slot =
                static_cast<unsigned>(std::countr_zero(mask));
            on_slot(slot);
            mask &= mask - 1;
            dirtyMask[bank] &= ~(1ull << slot);
            ++count;
        }
        totalCodeWrites += count;
        return count;
    }

    /** Dirty registers currently pending for @p bank. */
    unsigned pendingRegisters(unsigned bank) const;

    /** Dirty registers currently pending across all banks. */
    unsigned
    pendingTotal() const
    {
        unsigned total = 0;
        for (const std::uint64_t mask : dirtyMask)
            total += static_cast<unsigned>(std::popcount(mask));
        return total;
    }

    /** Raw dirty-slot bitmask for @p bank (bit i = VLEW slot i). */
    std::uint64_t pendingMask(unsigned bank) const;

    /**
     * Power failure: the registerfile is volatile, so every pending
     * code-bit update is lost. Returns how many registers were dropped
     * (the VLEWs whose media code bits are now stale).
     */
    std::uint64_t powerCut();

    /** Total VLEW code-bit writes drained so far. */
    std::uint64_t codeWrites() const { return totalCodeWrites; }

    /** Total data writes recorded. */
    std::uint64_t dataWrites() const { return totalDataWrites; }

    /** C factor: code-bit writes per data write (Fig 15). */
    double
    cFactor() const
    {
        return totalDataWrites == 0
                   ? 0.0
                   : static_cast<double>(totalCodeWrites) /
                         static_cast<double>(totalDataWrites);
    }

    /** Registers provisioned per bank (B * R / 256 in the paper). */
    unsigned registersPerBank() const { return vlewsPerRow; }

    void resetStats();

  private:
    unsigned vlewsPerRow;
    /** Per-bank bitmask of dirty VLEW registers for the open row. */
    std::vector<std::uint64_t> dirtyMask;
    std::uint64_t totalCodeWrites = 0;
    std::uint64_t totalDataWrites = 0;
};

} // namespace nvck

#endif // NVCK_MEM_EUR_HH
