/**
 * @file
 * Memory device timing parameter sets. The DRAM rank uses DDR4-2400
 * timings (the paper's Ramulator default); NVRAM ranks reuse the DRAM
 * protocol with tRCD replaced by the technology's read latency and tWR
 * by its write latency, exactly as the paper models dense NVRAM chips
 * (Section VI, following Lee et al. [42]).
 */

#ifndef NVCK_MEM_TIMING_HH
#define NVCK_MEM_TIMING_HH

#include <string>

#include "common/types.hh"

namespace nvck {

/** Transaction-level timing parameters for one rank. */
struct TimingParams
{
    std::string name;

    /** Activate-to-CAS (row open / device read latency). */
    Tick tRCD = 0;
    /** Precharge time. */
    Tick tRP = 0;
    /** CAS (column) read latency. */
    Tick tCAS = 0;
    /** CAS write latency. */
    Tick tCWD = 0;
    /** Write recovery: bank busy after the last write beat. */
    Tick tWR = 0;
    /** Data burst duration on the bus for one 64B block. */
    Tick tBurst = 0;
    /** Close an open row after this much bank idle time (row policy). */
    Tick rowIdleClose = 0;

    /** Banks per rank. */
    unsigned banks = 16;
    /** Row (page) size in bytes across the rank. */
    unsigned rowBytes = 8192;
};

/** DDR4-2400 DRAM rank (Ramulator defaults, 50ns idle row close). */
TimingParams ddr4_2400();

/**
 * ReRAM rank: 120ns read (tRCD), 300ns write (tWR), DDR4 interface
 * otherwise (Section VI, following [89]).
 */
TimingParams reramTiming();

/**
 * PCM rank: 250ns read (eM-metric of [60]), 600ns write (middle of the
 * 100-1000ns range of [60]).
 */
TimingParams pcmTiming();

} // namespace nvck

#endif // NVCK_MEM_TIMING_HH
