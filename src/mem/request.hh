/**
 * @file
 * Memory transaction types exchanged between the cache hierarchy and
 * the memory controller.
 */

#ifndef NVCK_MEM_REQUEST_HH
#define NVCK_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace nvck {

/** Transaction direction. */
enum class MemOp { Read, Write };

/** One block-sized memory transaction. */
struct MemRequest
{
    Addr addr = 0;
    MemOp op = MemOp::Read;
    /** Targets the persistent-memory (NVRAM) rank. */
    bool isPm = false;
    /**
     * ECC-maintenance traffic (VLEW over-fetch, OMV-miss old-data read)
     * rather than demand traffic; tracked separately in statistics.
     */
    bool isOverhead = false;
    /**
     * Patrol-scrub read issued by the RAS engine (sim/ras.hh): counted
     * as overhead and reported back through CrashHooks::onPmRead so the
     * bit-level mirror can run the scrub check at completion time.
     */
    bool isPatrol = false;
    /** Invoked at transaction completion time. */
    std::function<void(Tick finish)> onComplete;
};

} // namespace nvck

#endif // NVCK_MEM_REQUEST_HH
