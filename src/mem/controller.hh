/**
 * @file
 * Transaction-level memory controller for one hybrid channel with one
 * DRAM rank and one persistent-memory (NVRAM) rank, mirroring the
 * paper's evaluated configuration (Table I): 128-entry read and write
 * queues, FR-FCFS scheduling, and a closed-page-after-50ns-idle row
 * policy. Commands are modelled at transaction granularity (activate +
 * column access fused) which preserves the two quantities the proposal
 * perturbs — bank occupancy and bus bandwidth — while keeping the model
 * fast and deterministic.
 */

#ifndef NVCK_MEM_CONTROLLER_HH
#define NVCK_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/event.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/eur.hh"
#include "mem/request.hh"
#include "mem/timing.hh"

namespace nvck {

/** Controller configuration knobs. */
struct MemControllerConfig
{
    TimingParams dram;
    TimingParams pm;
    unsigned readQueueCap = 128;
    unsigned writeQueueCap = 128;
    /** Start draining writes above this occupancy... */
    unsigned writeDrainHigh = 96;
    /** ...and stop once back below this. */
    unsigned writeDrainLow = 48;
    /** With no reads pending, drain once this many writes queue up. */
    unsigned writeIdleBurst = 16;
    /** Flush writes older than this even without a burst (ADR-style
     *  queues may hold writes, but not forever). */
    Tick writeMaxAge = nsToTicks(10000);

    /**
     * Multiplier on the PM rank's write recovery (the proposal's
     * iso-endurance write-latency inflation, 1 + 33/8 * C).
     */
    double pmWriteScale = 1.0;
    /** Additive PM write latency (20ns encode + internal data read). */
    Tick pmWriteExtra = 0;
    /** Model the in-chip EUR (Section V-D). */
    bool eurEnabled = false;
    /** Extra bank busy time per drained EUR register at row close. */
    Tick eurDrainPerReg = 0;
    /** VLEW data bytes per chip (for the EUR slot mapping). */
    unsigned vlewDataBytes = 256;
    /** Data chips per rank (row bytes split across them). */
    unsigned dataChips = 8;
};

/**
 * Observation points for crash injection. Each hook fires at a spot
 * where a power cut leaves architecturally distinct state behind:
 * after a PM data burst lands but before its code-bit delta drains
 * (onPmWrite), per EUR register retiring at row close in explicit
 * lowest-slot-first order (onEurDrain), and when a row-close begins
 * (onRowClose, before any register retires). Hooks observe only; the
 * injector decides where the cut lands and applies it to the rank
 * model.
 */
struct CrashHooks
{
    /** A PM write's data burst completed; code delta is now EUR-held.
     *  Arguments: block address, bank, VLEW slot within the row.
     *  Fires for demand PM writes only: overhead maintenance writes
     *  (e.g. RAS migration traffic) model bandwidth, not new data. */
    std::function<void(Addr, unsigned, unsigned)> onPmWrite;
    /** One EUR register retired during a drain (bank, slot). */
    std::function<void(unsigned, unsigned)> onEurDrain;
    /** A PM row-close drain is starting (bank). */
    std::function<void(unsigned)> onRowClose;
    /**
     * A PM read issued (block address, patrol flag, overhead flag).
     * The RAS mirror runs the bit-level read path here — demand reads
     * feed the health ledger, patrol reads are checked by the engine's
     * own completion callbacks. Fired after the bank state for the
     * access is fully settled; the callback must not re-enter the
     * controller synchronously (schedule an event instead).
     */
    std::function<void(Addr, bool, bool)> onPmRead;
};

/** What a power cut found in flight (volatile state disposition). */
struct PowerCutReport
{
    /** Queued PM writes inside the ADR persistence domain: flushed to
     *  media by the platform's stored energy, not lost. */
    std::size_t pmWritesFlushed = 0;
    std::size_t dramWritesDropped = 0;
    std::size_t readsDropped = 0;
    /** Pending EUR registers (coalesced code-bit updates) lost. */
    std::uint64_t eurRegistersLost = 0;
};

/** Aggregate controller statistics. */
struct MemControllerStats
{
    Counter dramReads, dramWrites;
    Counter pmReads, pmWrites;
    Counter overheadReads, overheadWrites;
    Counter patrolReads; //!< RAS patrol-scrub reads (also overhead)
    Counter rowHits, rowMisses, rowConflicts;
    Counter coalescedWrites;
    Average readLatency;  //!< enqueue-to-data, ns
    Average writeLatency; //!< enqueue-to-persist, ns
    Average readQueueDepth, writeQueueDepth;
    std::uint64_t busBusyTicks = 0;
};

/**
 * The controller. Ranks: 0 = DRAM, 1 = PM; a request's isPm flag picks
 * the rank. Queues are admission-controlled via canAccept()/enqueue();
 * completion is signalled through each request's callback.
 */
class MemController
{
  public:
    MemController(EventQueue &event_queue,
                  const MemControllerConfig &config);

    /** True if the respective queue has room for another request. */
    bool canAccept(MemOp op) const;

    /**
     * Add a transaction. Returns false (request dropped, argument
     * consumed — retry with a fresh copy) when the queue is full;
     * callers are expected to check canAccept() and apply
     * backpressure. Taken by value so the queued entry is moved, not
     * copied, from the caller's request.
     */
    bool enqueue(MemRequest req);

    /** Pending demand reads (for idle detection). */
    std::size_t readQueueSize() const { return readQueue.size(); }
    std::size_t writeQueueSize() const { return writeQueue.size(); }
    bool idle() const { return readQueue.empty() && writeQueue.empty(); }

    const MemControllerStats &stats() const { return statistics; }
    MemControllerStats &stats() { return statistics; }

    /** EUR C factor measured so far (PM rank). */
    double cFactor() const { return eur.cFactor(); }

    /** Reset statistics (not queue/bank state). */
    void resetStats();

    /** Blocks per row in the PM/DRAM mapping. */
    unsigned blocksPerRow(bool is_pm) const;

    /** Install crash-point observation hooks (see CrashHooks). */
    void setCrashHooks(CrashHooks hooks);

    /**
     * Power failure. Queued PM writes sit inside the ADR persistence
     * domain and are flushed by stored energy; everything else —
     * queued reads, DRAM writes, pending EUR registers, open rows,
     * bus/bank timing state — is volatile and dropped. No completion
     * callbacks fire (the machine is dead). The controller is left
     * idle, ready to be driven again after "reboot".
     */
    PowerCutReport powerCut();

    /** EUR state, for crash injectors sampling pending registers. */
    const EurModel &eurState() const { return eur; }

    /**
     * Synchronously close every open PM row, draining all pending EUR
     * registers through the usual row-close path (CrashHooks fire for
     * each retiring register). The failover half of the RAS engine
     * calls this before migrating a rank to degraded mode so that no
     * coalesced code-bit delta is still in flight when the per-chip
     * VLEW layout is abandoned. Bank ready times absorb the drain and
     * precharge penalties. Returns the number of registers drained.
     * Must not be called from inside a controller callback.
     */
    unsigned drainPmEur();

    /**
     * Block addresses of the PM writes currently queued, in queue
     * order. These are exactly the writes the ADR domain's stored
     * energy would flush at a power cut; crash injectors capture the
     * set at the cut instant to apply their data bursts to the media
     * model (the flushed writes' code-bit deltas still die with the
     * EUR).
     */
    std::vector<Addr> queuedPmWrites() const;

  private:
    struct Queued
    {
        MemRequest req;
        std::uint64_t row;
        unsigned rankBank; //!< flattened rank*banks + bank
        unsigned vlewSlot;
        Tick enqueued;
    };

    struct BankState
    {
        std::int64_t openRow = -1;
        Tick readyAt = 0;
        Tick lastUse = 0;
    };

    const TimingParams &timing(bool is_pm) const;
    void decode(const MemRequest &req, Queued &out) const;
    void requestScheduling(Tick when);
    void scheduleLoop();
    /** Pick the next queue entry per FR-FCFS; -1 if none. */
    int pickFrom(const std::deque<Queued> &queue, Tick &earliest) const;
    void issue(Queued q);
    /** Close @p bank's row, draining the EUR; returns drain penalty. */
    Tick closeRow(unsigned rank_bank, BankState &bank);

    EventQueue &eq;
    MemControllerConfig cfg;
    std::vector<BankState> banks; //!< 2 ranks x banks
    Tick busFreeAt = 0;
    std::deque<Queued> readQueue;
    std::deque<Queued> writeQueue;
    bool draining = false;
    bool flushing = false;
    bool wakeScheduled = false;
    Tick wakeAt = 0;
    EurModel eur;
    CrashHooks crashHooks;
    MemControllerStats statistics;
};

} // namespace nvck

#endif // NVCK_MEM_CONTROLLER_HH
