#include "eur.hh"

#include <bit>

#include "common/log.hh"

namespace nvck {

EurModel::EurModel(unsigned banks, unsigned vlews_per_row)
    : vlewsPerRow(vlews_per_row), dirtyMask(banks, 0)
{
    NVCK_ASSERT(vlews_per_row >= 1 && vlews_per_row <= 64,
                "EUR register count per bank out of range");
}

void
EurModel::recordWrite(unsigned bank, unsigned vlew_slot)
{
    NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
    NVCK_ASSERT(vlew_slot < vlewsPerRow, "bad VLEW slot");
    dirtyMask[bank] |= 1ull << vlew_slot;
    ++totalDataWrites;
}

unsigned
EurModel::drain(unsigned bank)
{
    NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
    const unsigned count =
        static_cast<unsigned>(std::popcount(dirtyMask[bank]));
    dirtyMask[bank] = 0;
    totalCodeWrites += count;
    return count;
}

unsigned
EurModel::pendingRegisters(unsigned bank) const
{
    NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
    return static_cast<unsigned>(std::popcount(dirtyMask[bank]));
}

void
EurModel::resetStats()
{
    totalCodeWrites = 0;
    totalDataWrites = 0;
}

} // namespace nvck
