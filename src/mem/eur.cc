#include "eur.hh"

#include <bit>

#include "common/log.hh"

namespace nvck {

EurModel::EurModel(unsigned banks, unsigned vlews_per_row)
    : vlewsPerRow(vlews_per_row), dirtyMask(banks, 0)
{
    NVCK_ASSERT(vlews_per_row >= 1 && vlews_per_row <= 64,
                "EUR register count per bank out of range");
}

void
EurModel::recordWrite(unsigned bank, unsigned vlew_slot)
{
    NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
    NVCK_ASSERT(vlew_slot < vlewsPerRow, "bad VLEW slot");
    dirtyMask[bank] |= 1ull << vlew_slot;
    ++totalDataWrites;
}

unsigned
EurModel::pendingRegisters(unsigned bank) const
{
    NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
    return static_cast<unsigned>(std::popcount(dirtyMask[bank]));
}

std::uint64_t
EurModel::pendingMask(unsigned bank) const
{
    NVCK_ASSERT(bank < dirtyMask.size(), "bad bank");
    return dirtyMask[bank];
}

std::uint64_t
EurModel::powerCut()
{
    std::uint64_t lost = 0;
    for (auto &mask : dirtyMask) {
        lost += static_cast<std::uint64_t>(std::popcount(mask));
        mask = 0;
    }
    return lost;
}

void
EurModel::resetStats()
{
    totalCodeWrites = 0;
    totalDataWrites = 0;
}

} // namespace nvck
