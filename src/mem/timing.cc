#include "timing.hh"

namespace nvck {

TimingParams
ddr4_2400()
{
    TimingParams p;
    p.name = "DDR4-2400";
    // 1200 MHz clock (2400 MT/s): tCK = 0.833ns. CL = tRCD = tRP = 16CK.
    p.tRCD = nsToTicks(13.32);
    p.tRP = nsToTicks(13.32);
    p.tCAS = nsToTicks(13.32);
    p.tCWD = nsToTicks(10.0);   // CWL = 12CK
    p.tWR = nsToTicks(15.0);
    p.tBurst = nsToTicks(3.33); // 8 beats on a 64-bit bus
    p.rowIdleClose = nsToTicks(50.0);
    p.banks = 16;
    p.rowBytes = 8192;
    return p;
}

TimingParams
reramTiming()
{
    TimingParams p = ddr4_2400();
    p.name = "ReRAM";
    p.tRCD = nsToTicks(120.0);
    p.tWR = nsToTicks(300.0);
    return p;
}

TimingParams
pcmTiming()
{
    TimingParams p = ddr4_2400();
    p.name = "PCM";
    p.tRCD = nsToTicks(250.0);
    p.tWR = nsToTicks(600.0);
    return p;
}

} // namespace nvck
