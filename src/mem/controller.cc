#include "controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace nvck {

MemController::MemController(EventQueue &event_queue,
                             const MemControllerConfig &config)
    : eq(event_queue),
      cfg(config),
      banks(2 * config.dram.banks),
      eur(config.pm.banks,
          config.pm.rowBytes / config.dataChips / config.vlewDataBytes)
{
    NVCK_ASSERT(cfg.dram.banks == cfg.pm.banks,
                "ranks with differing bank counts not supported");
    NVCK_ASSERT(cfg.writeDrainLow < cfg.writeDrainHigh,
                "drain watermarks inverted");
}

const TimingParams &
MemController::timing(bool is_pm) const
{
    return is_pm ? cfg.pm : cfg.dram;
}

unsigned
MemController::blocksPerRow(bool is_pm) const
{
    return timing(is_pm).rowBytes / blockBytes;
}

void
MemController::decode(const MemRequest &req, Queued &out) const
{
    // VLEW-granular bank interleaving: consecutive 32-block (2KB)
    // VLEW-sized chunks rotate across banks. Sequential streams (undo
    // logs above all) then use every bank while each chunk still fills
    // one VLEW contiguously, which is what the EUR coalesces. Within a
    // bank, a row holds rowBytes/dataChips/vlewDataBytes chunks.
    const TimingParams &tp = timing(req.isPm);
    const std::uint64_t block = req.addr / blockBytes;
    const unsigned blocks_per_vlew = cfg.vlewDataBytes / chipBeatBytes;
    const std::uint64_t chunk = block / blocks_per_vlew;
    const unsigned bank = static_cast<unsigned>(chunk % tp.banks);
    const std::uint64_t per_bank_chunk = chunk / tp.banks;
    const unsigned vlews_per_row =
        tp.rowBytes / cfg.dataChips / cfg.vlewDataBytes;
    out.row = per_bank_chunk / vlews_per_row;
    out.vlewSlot = static_cast<unsigned>(per_bank_chunk % vlews_per_row);
    out.rankBank = (req.isPm ? tp.banks : 0) + bank;
}

bool
MemController::canAccept(MemOp op) const
{
    if (op == MemOp::Read)
        return readQueue.size() < cfg.readQueueCap;
    return writeQueue.size() < cfg.writeQueueCap;
}

bool
MemController::enqueue(MemRequest req)
{
    if (!canAccept(req.op))
        return false;
    const MemOp op = req.op;
    Queued q;
    decode(req, q);
    q.req = std::move(req);
    q.enqueued = eq.now();

    if (op == MemOp::Read) {
        readQueue.push_back(std::move(q));
        statistics.readQueueDepth.sample(
            static_cast<double>(readQueue.size()));
    } else {
        // Same-block writes coalesce in the write queue (the newer data
        // simply replaces the queued payload in a real controller).
        const Addr block = q.req.addr / blockBytes;
        bool merged = false;
        for (auto &pending : writeQueue) {
            if (pending.req.addr / blockBytes == block &&
                pending.req.isPm == q.req.isPm) {
                // Preserve both completion callbacks.
                if (pending.req.onComplete && q.req.onComplete) {
                    auto first = std::move(pending.req.onComplete);
                    auto second = std::move(q.req.onComplete);
                    q.req.onComplete = [first = std::move(first),
                                        second = std::move(second)](
                                           Tick t) {
                        first(t);
                        second(t);
                    };
                } else if (pending.req.onComplete) {
                    q.req.onComplete = std::move(pending.req.onComplete);
                }
                pending.req = std::move(q.req);
                merged = true;
                statistics.coalescedWrites.inc();
                break;
            }
        }
        if (!merged)
            writeQueue.push_back(std::move(q));
        statistics.writeQueueDepth.sample(
            static_cast<double>(writeQueue.size()));
    }
    requestScheduling(eq.now());
    return true;
}

void
MemController::requestScheduling(Tick when)
{
    if (wakeScheduled && wakeAt <= when)
        return;
    wakeScheduled = true;
    wakeAt = when;
    eq.schedule(when, [this] { scheduleLoop(); });
}

int
MemController::pickFrom(const std::deque<Queued> &queue,
                        Tick &earliest) const
{
    // FR-FCFS over *ready* requests: among those whose bank can issue
    // now, row hits beat misses and age breaks ties. Requests whose
    // bank is busy never block ready ones; if nothing is ready, report
    // the soonest start so the caller can sleep until then.
    int best_ready = -1;
    bool best_ready_hit = false;
    int soonest = -1;
    Tick soonest_start = 0;
    const Tick now = eq.now();
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Queued &q = queue[i];
        const BankState &bank = banks[q.rankBank];
        const TimingParams &tp = timing(q.req.isPm);
        const Tick start = std::max(now, bank.readyAt);
        if (start <= now) {
            const bool hit =
                bank.openRow == static_cast<std::int64_t>(q.row) &&
                start < bank.lastUse + tp.rowIdleClose;
            if (best_ready < 0 || (hit && !best_ready_hit)) {
                best_ready = static_cast<int>(i);
                best_ready_hit = hit;
            }
        }
        if (soonest < 0 || start < soonest_start) {
            soonest = static_cast<int>(i);
            soonest_start = start;
        }
    }
    if (best_ready >= 0) {
        earliest = now;
        return best_ready;
    }
    earliest = soonest_start;
    return soonest;
}

Tick
MemController::closeRow(unsigned rank_bank, BankState &bank)
{
    bank.openRow = -1;
    if (!cfg.eurEnabled)
        return 0;
    const unsigned pm_rank_base = cfg.dram.banks;
    if (rank_bank < pm_rank_base)
        return 0; // DRAM rank has no EUR
    const unsigned pm_bank = rank_bank - pm_rank_base;
    if (crashHooks.onRowClose)
        crashHooks.onRowClose(pm_bank);
    // Registers retire lowest slot first; the observer sees each one
    // so crash injectors can cut the drain at any prefix.
    unsigned drained;
    if (crashHooks.onEurDrain) {
        drained =
            eur.drainSlots(pm_bank, [this, pm_bank](unsigned slot) {
                crashHooks.onEurDrain(pm_bank, slot);
            });
    } else {
        drained = eur.drain(pm_bank);
    }
    return static_cast<Tick>(drained) * cfg.eurDrainPerReg;
}

void
MemController::issue(Queued q)
{
    BankState &bank = banks[q.rankBank];
    const TimingParams &tp = timing(q.req.isPm);
    const bool is_read = q.req.op == MemOp::Read;

    Tick start = std::max(eq.now(), bank.readyAt);

    // Lazy row-idle close: the row policy precharged this bank in the
    // background after 50ns of inactivity (draining the EUR first).
    if (bank.openRow >= 0 && start >= bank.lastUse + tp.rowIdleClose) {
        const Tick closed_at = bank.lastUse + tp.rowIdleClose;
        const Tick drain = closeRow(q.rankBank, bank);
        const Tick free_at = closed_at + drain + tp.tRP;
        start = std::max(start, free_at);
    }

    Tick access_lat = 0;
    if (bank.openRow == static_cast<std::int64_t>(q.row)) {
        statistics.rowHits.inc();
    } else if (bank.openRow < 0) {
        statistics.rowMisses.inc();
        access_lat = tp.tRCD;
    } else {
        // Conflict: drain EUR, precharge, activate.
        statistics.rowConflicts.inc();
        const Tick drain = closeRow(q.rankBank, bank);
        access_lat = drain + tp.tRP + tp.tRCD;
    }
    bank.openRow = static_cast<std::int64_t>(q.row);

    const Tick cas = is_read ? tp.tCAS : tp.tCWD;
    const Tick device_ready = start + access_lat + cas;
    const Tick xfer_start = std::max(device_ready, busFreeAt);
    const Tick xfer_done = xfer_start + tp.tBurst;
    busFreeAt = xfer_done;
    statistics.busBusyTicks += tp.tBurst;

    Tick finish = xfer_done;
    if (!is_read) {
        Tick twr = tp.tWR;
        if (q.req.isPm) {
            twr = static_cast<Tick>(
                      static_cast<double>(twr) * cfg.pmWriteScale) +
                  cfg.pmWriteExtra;
        }
        finish = xfer_done + twr;
        if (cfg.eurEnabled && q.req.isPm) {
            const unsigned pm_bank = q.rankBank - cfg.dram.banks;
            eur.recordWrite(pm_bank, q.vlewSlot);
            // The data burst is on the media; the code-bit delta now
            // exists only in the (volatile) EUR until the row closes.
            // Overhead writes (RAS migration traffic) dirty the EUR
            // like any other write but carry no new persist intent, so
            // the crash mirror is not told about them.
            if (!q.req.isOverhead && crashHooks.onPmWrite)
                crashHooks.onPmWrite(q.req.addr, pm_bank, q.vlewSlot);
        }
    }

    bank.readyAt = finish;
    bank.lastUse = finish;

    if (is_read && q.req.isPm && crashHooks.onPmRead)
        crashHooks.onPmRead(q.req.addr, q.req.isPatrol,
                            q.req.isOverhead);

    // Statistics.
    if (q.req.isPatrol)
        statistics.patrolReads.inc();
    if (q.req.isOverhead) {
        (is_read ? statistics.overheadReads : statistics.overheadWrites)
            .inc();
    } else if (q.req.isPm) {
        (is_read ? statistics.pmReads : statistics.pmWrites).inc();
    } else {
        (is_read ? statistics.dramReads : statistics.dramWrites).inc();
    }
    if (is_read)
        statistics.readLatency.sample(ticksToNs(finish - q.enqueued));
    else
        statistics.writeLatency.sample(ticksToNs(finish - q.enqueued));

    if (q.req.onComplete) {
        eq.schedule(finish, [cb = std::move(q.req.onComplete),
                             finish] { cb(finish); });
    }
}

void
MemController::scheduleLoop()
{
    wakeScheduled = false;
    for (;;) {
        if (writeQueue.size() >= cfg.writeDrainHigh)
            draining = true;
        else if (writeQueue.size() <= cfg.writeDrainLow)
            draining = false;

        if (readQueue.empty() && writeQueue.empty()) {
            flushing = false;
            return;
        }
        // An age- or idle-triggered flush runs the queue dry so that
        // queued row-neighbours (log appends) drain back-to-back and
        // coalesce in the row buffer and EUR.
        if (writeQueue.empty())
            flushing = false;

        // Decide whether writes may issue this round. Writes are held
        // and drained in bursts (watermark hysteresis, an age bound, or
        // an idle-burst threshold when no reads are waiting) so that
        // row-local writes — undo-log appends above all — coalesce in
        // the row buffer and in the EUR.
        bool want_writes = false;
        if (!writeQueue.empty()) {
            if (draining || flushing) {
                want_writes = true;
            } else {
                const Tick oldest_age =
                    eq.now() - writeQueue.front().enqueued;
                if (oldest_age >= cfg.writeMaxAge ||
                    (readQueue.empty() &&
                     writeQueue.size() >= cfg.writeIdleBurst)) {
                    flushing = true;
                    want_writes = true;
                }
            }
        }

        // Ready reads always go first (read priority); writes fill
        // banks no ready read wants. A read whose bank is busy never
        // blocks traffic to other banks.
        Tick read_earliest = 0;
        const int read_idx =
            readQueue.empty() ? -1 : pickFrom(readQueue, read_earliest);
        if (read_idx >= 0 && read_earliest <= eq.now()) {
            Queued chosen =
                std::move(readQueue[static_cast<std::size_t>(read_idx)]);
            readQueue.erase(readQueue.begin() + read_idx);
            issue(std::move(chosen));
            continue;
        }

        if (want_writes) {
            Tick write_earliest = 0;
            const int write_idx = pickFrom(writeQueue, write_earliest);
            if (write_idx >= 0 && write_earliest <= eq.now()) {
                Queued chosen = std::move(
                    writeQueue[static_cast<std::size_t>(write_idx)]);
                writeQueue.erase(writeQueue.begin() + write_idx);
                issue(std::move(chosen));
                continue;
            }
            if (write_idx >= 0 && read_idx >= 0) {
                requestScheduling(
                    std::min(read_earliest, write_earliest));
                return;
            }
            if (write_idx >= 0) {
                requestScheduling(write_earliest);
                return;
            }
        }

        if (read_idx >= 0) {
            requestScheduling(read_earliest);
            return;
        }
        if (!writeQueue.empty() && !want_writes) {
            // Nothing else to do: wake when the age bound hits.
            requestScheduling(writeQueue.front().enqueued +
                              cfg.writeMaxAge);
        }
        return;
    }
}

void
MemController::resetStats()
{
    statistics = MemControllerStats{};
    eur.resetStats();
}

void
MemController::setCrashHooks(CrashHooks hooks)
{
    crashHooks = std::move(hooks);
}

unsigned
MemController::drainPmEur()
{
    unsigned drained = 0;
    const Tick now = eq.now();
    for (unsigned b = 0; b < cfg.pm.banks; ++b) {
        const unsigned rank_bank = cfg.dram.banks + b;
        BankState &bank = banks[rank_bank];
        if (bank.openRow < 0) {
            NVCK_ASSERT(!cfg.eurEnabled ||
                            eur.pendingRegisters(b) == 0,
                        "EUR dirty with no open row");
            continue;
        }
        const std::uint64_t before = eur.codeWrites();
        const Tick drain = closeRow(rank_bank, bank);
        drained += static_cast<unsigned>(eur.codeWrites() - before);
        bank.readyAt = std::max(bank.readyAt, now) + drain +
                       cfg.pm.tRP;
        bank.lastUse = bank.readyAt;
    }
    return drained;
}

std::vector<Addr>
MemController::queuedPmWrites() const
{
    std::vector<Addr> addrs;
    for (const Queued &q : writeQueue) {
        if (q.req.isPm)
            addrs.push_back(q.req.addr);
    }
    return addrs;
}

PowerCutReport
MemController::powerCut()
{
    PowerCutReport report;
    report.readsDropped = readQueue.size();
    for (const Queued &q : writeQueue) {
        if (q.req.isPm)
            ++report.pmWritesFlushed;
        else
            ++report.dramWritesDropped;
    }
    readQueue.clear();
    writeQueue.clear();
    report.eurRegistersLost = eur.powerCut();

    const Tick now = eq.now();
    for (BankState &bank : banks) {
        bank.openRow = -1;
        bank.readyAt = now;
        bank.lastUse = now;
    }
    busFreeAt = now;
    draining = false;
    flushing = false;
    return report;
}

} // namespace nvck
