/**
 * @file
 * Runtime RAS (reliability/availability/serviceability) engine: the
 * online half of the paper's chipkill story. Section V assumes a chip
 * failure is detected and remedied at runtime — RS(72,64) flags the
 * erasure and the system drops to the degraded bit-error-only mode —
 * but until now the repo only modelled that transition offline
 * (DegradedRank::takeOver on a quiesced rank). This engine closes the
 * loop under live traffic:
 *
 *  - a **health ledger** keeps one integer leaky bucket per chip and
 *    per VLEW-span row, fed by every runtime correction event (RS
 *    within-threshold fixes, VLEW fallbacks, erasure rebuilds, patrol
 *    scrub findings). Buckets leak a fixed amount per decay interval,
 *    so transient faults age out while intermittent and progressive
 *    faults accumulate and cross thresholds. All accounting is
 *    integer arithmetic — no libm — so trials replay bit-identically
 *    on any host;
 *  - a **patrol scrubber** runs as a recurring EventQueue event: each
 *    cycle it yields to pending demand reads, otherwise issues a
 *    bounded burst of patrol reads through the real MemController
 *    (isPatrol overhead traffic) and, when the last read completes,
 *    scrubs the covered VLEW span word-by-word through the
 *    ScrubEngine's fast residue path, feeding findings to the ledger.
 *    A row bucket crossing its (lower) threshold schedules an
 *    immediate targeted scrub of that span — latent errors are
 *    repaired before they can accumulate past the RS budget;
 *  - **online failover**: when a chip bucket crosses the kill
 *    threshold, the engine drains all in-flight EUR state through the
 *    controller (MemController::drainPmEur, the usual row-close path),
 *    then migrates the rank to a DegradedRank span by span as paced
 *    events interleaved with demand traffic, routing reads/writes by
 *    a migration watermark the whole time. A second chip crossing
 *    after (or during) failover reports Unrecoverable — two dead
 *    chips exceed the RS budget — instead of asserting.
 *
 * The engine owns timing and policy only; all bit-level work (scrub
 * decode, block migration, ledger evidence from real reads) happens
 * through caller-supplied callbacks, so unit tests can drive the state
 * machine with stubs and the fault-lifecycle campaign (RasMirror)
 * plugs in the bit-accurate PmRank/DegradedRank pair.
 *
 * One modelling note on EUR-pending spans: a VLEW whose code-bit delta
 * still sits in the EUR must not be decoded against the stale media
 * code (the decoder would "correct" a durable write away). The chip
 * holds the EUR (Fig 11), so any chip-internal VLEW operation folds
 * the pending delta in first; the mirror models this by retiring a
 * span's pending code deltas before any scrub or VLEW-fallback read
 * that touches it.
 */

#ifndef NVCK_SIM_RAS_HH
#define NVCK_SIM_RAS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"
#include "chipkill/scrub.hh"
#include "common/event.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "sim/parallel.hh"
#include "sim/syscrash.hh"
#include "sim/system.hh"

namespace nvck {

/** RAS policy knobs (env overrides via fromEnv()). */
struct RasConfig
{
    /** Patrol cycle period (NVCK_RAS_PATROL, ns). */
    Tick patrolInterval = nsToTicks(400);
    /** Patrol reads modelled per burst (one VLEW span per burst). */
    unsigned patrolReads = 4;
    /** Chip bucket level that triggers failover (NVCK_RAS_THRESHOLD). */
    std::uint64_t killThreshold = 48;
    /** Row bucket level that triggers a targeted scrub. */
    std::uint64_t rowThreshold = 12;
    /** Leak cadence for every bucket (NVCK_RAS_DECAY, ns). */
    Tick decayInterval = nsToTicks(2000);
    /** Level leaked per elapsed decay interval. */
    std::uint64_t decayStep = 4;
    /** Ledger weight of one chip-erasure event (VLEW uncorrectable). */
    std::uint64_t erasureWeight = 16;
    /** Blocks migrated per failover step (one VLEW span). */
    unsigned migrateBlocksPerStep = 32;
    /** Pacing between migration steps. */
    Tick migrateStepInterval = nsToTicks(60);
    /** A spare chip is provisioned and armed (NVCK_SPARE_ARMED). */
    bool spareEnabled = false;
    /** Blocks rebuilt onto the spare per step
     *  (NVCK_SPARE_REBUILD_BLOCKS; rounded up to whole spans). */
    unsigned rebuildBlocksPerStep = 32;
    /** Pacing between rebuild / migrate-back steps
     *  (NVCK_SPARE_REBUILD_INTERVAL, ns). */
    Tick rebuildStepInterval = nsToTicks(60);
    /** Spare-bucket level that abandons the rebuild and falls back to
     *  the degraded layout (the spare itself is failing). */
    std::uint64_t spareKillThreshold = 48;
    /** Patrol visits spans hottest-first by demand-write wear
     *  (NVCK_RAS_PATROL_ORDER=wear|addr). */
    bool wearAwarePatrol = true;

    /**
     * Apply NVCK_RAS_PATROL / NVCK_RAS_THRESHOLD / NVCK_RAS_DECAY /
     * NVCK_SPARE_ARMED / NVCK_SPARE_REBUILD_BLOCKS /
     * NVCK_SPARE_REBUILD_INTERVAL / NVCK_RAS_PATROL_ORDER on top of
     * the defaults (strict parse: garbage exits with status 2).
     */
    static RasConfig fromEnv();
};

/**
 * Integer leaky-bucket error accounting, per chip and per row (a
 * "row" is a VLEW span — the repair granule the patrol scrubber and
 * the degraded layout both work in). record*() adds weight after
 * leaking `decayStep` per whole `decayInterval` elapsed since the
 * bucket's last update; levels are exact integer functions of the
 * event history, so threshold crossings are reproducible anywhere.
 */
class HealthLedger
{
  public:
    HealthLedger(unsigned chips, unsigned rows, const RasConfig &cfg);

    /** Add @p weight to a chip bucket at @p now; returns the level. */
    std::uint64_t recordChip(unsigned chip, std::uint64_t weight,
                             Tick now);
    /** Add @p weight to a row bucket at @p now; returns the level. */
    std::uint64_t recordRow(unsigned row, std::uint64_t weight,
                            Tick now);

    /** Decayed level as of @p now (no state change). */
    std::uint64_t chipLevel(unsigned chip, Tick now) const;
    std::uint64_t rowLevel(unsigned row, Tick now) const;

    /** Empty a row bucket (after its targeted scrub fired). */
    void resetRow(unsigned row);

    /** Empty a chip bucket (the device behind it was replaced). */
    void resetChip(unsigned chip);

    unsigned chips() const
    {
        return static_cast<unsigned>(chipBuckets.size());
    }
    unsigned rows() const
    {
        return static_cast<unsigned>(rowBuckets.size());
    }

  private:
    struct Bucket
    {
        std::uint64_t level = 0;
        Tick lastLeak = 0;
    };

    std::uint64_t decayed(const Bucket &b, Tick now) const;
    std::uint64_t record(Bucket &b, std::uint64_t weight, Tick now);

    Tick decayInterval;
    std::uint64_t decayStep;
    std::vector<Bucket> chipBuckets;
    std::vector<Bucket> rowBuckets;
};

/** Failover / hot-sparing state machine. */
enum class RasState
{
    Healthy,       //!< patrol running, ledger armed
    Draining,      //!< kill detected; EUR state draining
    Migrating,     //!< per-span migration interleaved with traffic
    Degraded,      //!< serving from the DegradedRank layout
    Rebuilding,    //!< dead chip's lanes rebuilding onto the spare
    Spared,        //!< spare carries the lane; full code strength
    MigratingBack, //!< spare copying back to the replacement chip
    Unrecoverable, //!< a second chip crossed; reads report UE
};

const char *rasStateName(RasState state);

/** Engine-side counters (bit-level tallies live in the mirror). */
struct RasStats
{
    std::uint64_t patrolBursts = 0;
    std::uint64_t patrolYields = 0;  //!< cycles ceded to demand reads
    std::uint64_t patrolDropped = 0; //!< completions after a kill
    std::uint64_t scrubWords = 0;
    std::uint64_t scrubBitsFound = 0;
    std::uint64_t scrubErasures = 0;
    std::uint64_t rowAlarms = 0;
    std::uint64_t targetedScrubs = 0;
    std::uint64_t ledgerEvents = 0;
    std::uint64_t killsDetected = 0;
    std::uint64_t doubleKills = 0;
    std::uint64_t drainedAtFailover = 0;
    std::uint64_t migratedBlocks = 0;
    std::uint64_t migrationTrafficDropped = 0;
    std::uint64_t rebuildsStarted = 0;  //!< spare engagements
    std::uint64_t rebuiltBlocks = 0;    //!< blocks rebuilt onto spare
    std::uint64_t spareAbandons = 0;    //!< spare failed mid-rebuild
    std::uint64_t repairs = 0;          //!< migrate-backs completed
    std::uint64_t migratedBackBlocks = 0;
    Tick detectedAt = 0; //!< kill threshold crossing
    Tick engagedAt = 0;  //!< migration started (EUR drained)
    Tick completedAt = 0;
    Tick sparedAt = 0;   //!< spare rebuild completed
    Tick repairedAt = 0; //!< migrate-back completed
};

/**
 * The timing-side RAS engine: patrol pacing, ledger bookkeeping, and
 * the failover state machine, scheduled on the System's EventQueue.
 */
class RasEngine
{
  public:
    /** Bit-level work, supplied by the mirror (or test stubs). */
    struct Callbacks
    {
        /** Scrub VLEW span @p span; fill @p per_chip with each chip's
         *  corrections (-1 = uncorrectable, erasure evidence). */
        std::function<void(unsigned span, std::vector<int> &per_chip)>
            patrolCheck;
        /** Migrate up to @p max_blocks blocks; returns how many. */
        std::function<unsigned(unsigned max_blocks)> migrateStep;
        /** EUR drained; migration is about to start for @p chip. */
        std::function<void(unsigned chip)> onFailoverStart;
        /** Every block migrated; state is now Degraded. */
        std::function<void()> onFailoverComplete;
        /** A second chip crossed the kill threshold. */
        std::function<void(unsigned chip)> onUnrecoverable;
        /** EUR drained; spare rebuild is about to start for @p chip. */
        std::function<void(unsigned chip)> onRebuildStart;
        /** Rebuild up to @p max_blocks onto the spare; returns how
         *  many (rounded up to whole VLEW spans). */
        std::function<unsigned(unsigned max_blocks)> rebuildStep;
        /** Rebuild complete; the rank is back at full code strength. */
        std::function<void()> onSpared;
        /** The spare itself crossed its kill threshold mid-rebuild;
         *  degraded failover for @p chip starts next. */
        std::function<void(unsigned chip)> onSpareAbandoned;
        /** Copy up to @p max_blocks back to the replacement chip. */
        std::function<unsigned(unsigned max_blocks)> migrateBackStep;
        /** Migrate-back complete; spare re-armed, state Healthy. */
        std::function<void()> onRepairComplete;
    };

    RasEngine(System &system, const RasConfig &config,
              unsigned rank_blocks, unsigned span_blocks,
              Callbacks callbacks);

    /** Arm the patrol cycle (first burst one interval from now). */
    void start();

    /**
     * Feed a correction event attributed to @p chip. Crossing the kill
     * threshold schedules failover (deferred one event, so feeding
     * from inside a controller callback is safe); crossing on a second
     * chip after failover reports Unrecoverable. Weight conventions:
     * 1 per chip with symbol/bit corrections, RasConfig::erasureWeight
     * per VLEW-uncorrectable (erasure) event.
     */
    void noteChipErrors(unsigned chip, std::uint64_t weight);

    /** Feed row-granularity evidence; may schedule a targeted scrub. */
    void noteRowErrors(unsigned row, std::uint64_t weight);

    /**
     * Feed a correction event attributed to the spare device while it
     * is rebuilding. Crossing RasConfig::spareKillThreshold abandons
     * the spare (deferred one event) and falls back to the degraded
     * failover for the originally killed chip.
     */
    void noteSpareErrors(std::uint64_t weight);

    /** Account one demand write to @p row for wear-aware patrol. */
    void noteRowWrite(unsigned row);

    /**
     * Operator serviced the DIMM: the failed chip was physically
     * replaced. Legal only in the Spared state; starts the paced
     * migrate-back of the spare's contents onto the new device.
     */
    void chipReplaced();

    /** Count a demand PM access (failover-latency bookkeeping). */
    void noteAccess() { ++accessCount; }

    RasState state() const { return st; }
    unsigned killedChip() const { return killed; }
    /** The spare is carrying (or has carried) a lane. */
    bool spareEngaged() const { return spareUsed; }
    /** Blocks below this index are served by the degraded layout. */
    unsigned watermark() const { return migrated; }
    /** Blocks below this index are already rebuilt onto the spare. */
    unsigned rebuildWatermark() const { return rebuilt; }
    std::uint64_t accesses() const { return accessCount; }
    /** Demand accesses between kill detection and migration start. */
    std::uint64_t engageAccesses() const
    {
        return accessesAtEngage - accessesAtDetect;
    }
    /** Patrol bursts whose reads are still in flight. */
    unsigned patrolInFlight() const { return joinsLive; }

    const RasStats &stats() const { return rasStats; }
    const HealthLedger &ledger() const { return healthLedger; }

  private:
    struct PatrolJoin
    {
        unsigned remaining = 0;
        unsigned span = 0;
        std::uint32_t next = 0; //!< free-list link
    };

    static constexpr std::uint32_t noJoin = UINT32_MAX;
    /** Lockstep chips (8 data + parity); ledger bucket indices. */
    static constexpr unsigned lockstepChips = 9;
    /** Ledger bucket tracking the spare device's own health. */
    static constexpr unsigned spareBucket = lockstepChips;

    void patrolTick();
    /** Issue one patrol burst over @p span; false if nothing issued. */
    bool issueBurst(unsigned span, bool targeted);
    void patrolReadDone(std::uint32_t join);
    void patrolComplete(unsigned span);
    /** Next span in the patrol schedule (wear-ordered or sequential). */
    unsigned nextPatrolSpan();
    /** Re-arm the patrol cycle if its event is not already pending. */
    void resumePatrol();
    void beginFailover();
    /** Drop to the degraded layout (no spare, or spare abandoned). */
    void engageDegraded();
    void migrateTick();
    void spareTick();
    void abandonSpare();
    /** Bus cost of a paced copy step: bounded overhead R+W pairs. */
    void issueOverheadPairs(unsigned count, unsigned first_block);

    System &sys;
    RasConfig cfg;
    Callbacks cb;
    unsigned rankBlocks;
    unsigned spanBlocks;
    unsigned spans;
    HealthLedger healthLedger;
    RasState st = RasState::Healthy;
    unsigned killed = 0;
    bool killQueued = false;
    bool targetedQueued = false;
    bool spareUsed = false;
    bool abandonQueued = false;
    unsigned migrated = 0;
    unsigned rebuilt = 0;
    unsigned migratedBack = 0;
    std::uint64_t accessCount = 0;
    std::uint64_t accessesAtDetect = 0;
    std::uint64_t accessesAtEngage = 0;
    unsigned patrolCursor = 0;
    bool patrolArmed = false;
    /** Demand-write wear per span and the derived patrol order. */
    std::vector<std::uint64_t> wearCount;
    std::vector<unsigned> patrolQueue;
    EventQueue::Recurring patrolEv;
    EventQueue::Recurring migrateEv;
    EventQueue::Recurring spareEv;
    std::vector<PatrolJoin> joins;
    std::uint32_t freeJoin = noJoin;
    unsigned joinsLive = 0;
    std::vector<int> scratch;
    RasStats rasStats;
};

/**
 * Incremental bit-level migration of a healthy rank (minus one chip)
 * into a DegradedRank. Starts from the zero-constructed degraded
 * state — zero data with zero code bits is a consistent striped-VLEW
 * image — and applies each source block through writeBlock's linear
 * XOR path, so after the last step the result is bit-identical to an
 * offline DegradedRank::takeOver of the same quiesced contents (the
 * differential test in tests/sim/test_ras.cc pins this). Source
 * blocks are read through the full runtime path (RS, VLEW fallback,
 * erasure around the dead chip); a source block standing at a
 * reported UE poisons its destination span rather than migrating
 * garbage.
 */
class OnlineFailover
{
  public:
    OnlineFailover(PmRank &healthy, unsigned failed_chip,
                   unsigned threshold);

    /** Migrate up to @p max_blocks more blocks; returns how many. */
    unsigned step(unsigned max_blocks);

    bool done() const { return cursor >= source.blocks(); }
    /** Blocks below this index live in the degraded layout. */
    unsigned watermark() const { return cursor; }
    unsigned failedChip() const { return chip; }
    std::uint64_t poisonedBlocks() const { return poisoned; }

    DegradedRank &degraded() { return target; }
    const DegradedRank &degraded() const { return target; }

  private:
    PmRank &source;
    unsigned chip;
    unsigned thresh;
    unsigned cursor = 0;
    std::uint64_t poisoned = 0;
    DegradedRank target;
};

/** Multi-phase fault stream a lifecycle trial injects. */
enum class FaultPlan
{
    Transient,    //!< scattered one-shot flips only; no kill expected
    Intermittent, //!< + recurring flips on one victim chip
    Progressive,  //!< + accumulating stuck-at cells on the victim
    ChipKill,     //!< + full chip kill; failover must complete
};

constexpr unsigned numFaultPlans = 4;

const char *faultPlanName(FaultPlan plan);

/** Aggregated outcome of lifecycle trials. */
struct RasTally
{
    std::uint64_t trials = 0;
    std::uint64_t patrolBursts = 0;
    std::uint64_t patrolYields = 0;
    std::uint64_t scrubBits = 0;
    std::uint64_t demandReads = 0;
    std::uint64_t demandWrites = 0;
    std::uint64_t rsFixes = 0;
    std::uint64_t vlewFallbacks = 0;
    std::uint64_t chipRecovered = 0;
    std::uint64_t rowAlarms = 0;
    std::uint64_t targetedScrubs = 0;
    std::uint64_t kills = 0;
    std::uint64_t failovers = 0;
    std::uint64_t migrated = 0;
    std::uint64_t degradedReads = 0;
    std::uint64_t degradedWrites = 0;
    std::uint64_t drainedAtFailover = 0;
    /** Max over trials of demand accesses from kill injection to
     *  failover engagement. */
    std::uint64_t detectAccessesMax = 0;
    std::uint64_t sdc = 0;         //!< silent wrong data from a read
    std::uint64_t lostDurable = 0; //!< final state lost a durable write
    std::uint64_t ue = 0;          //!< reported UEs (none expected)
    std::uint64_t falseKills = 0;  //!< kill in a Transient-plan trial
    std::uint64_t missedFailovers = 0; //!< ChipKill without completion
    std::uint64_t engageOverruns = 0;  //!< detection latency > bound
    /** Hot-sparing outcomes (spare campaign; zero when unarmed). */
    std::uint64_t rebuilds = 0;      //!< spare rebuilds engaged
    std::uint64_t rebuiltBlocks = 0; //!< blocks rebuilt onto the spare
    std::uint64_t spared = 0;        //!< rebuilds completed
    std::uint64_t spareAbandons = 0; //!< spare died; degraded fallback
    std::uint64_t repairs = 0;       //!< migrate-backs completed
    std::uint64_t survivorBits = 0;  //!< survivor bits fixed pre-fill
    std::uint64_t missedSpares = 0;  //!< Rebuild plan without Spared
    std::uint64_t missedRepairs = 0; //!< Repair plan without Healthy
    /** Oracle violations: must be zero. */
    std::uint64_t violations = 0;

    RasTally &operator+=(const RasTally &other);
};

/**
 * The timing<->bit-level bridge for the lifecycle campaign: installs
 * CrashHooks to replay every demand PM access on the PmRank (feeding
 * the ledger from real read outcomes and the persist oracle from the
 * write path, like SysCrashMirror), implements the engine callbacks
 * (patrol scrub via ScrubEngine::scrubWord, migration via
 * OnlineFailover), and routes accesses across the migration watermark
 * once failover starts.
 */
class SpareChip;

class RasMirror
{
  public:
    RasMirror(System &system, PmRank &pm_rank, PersistOracle &po,
              const RasConfig &ras_cfg, unsigned threshold,
              std::uint64_t value_seed);
    ~RasMirror();

    RasEngine &engine() { return *eng; }
    const RasEngine &engine() const { return *eng; }

    /** Begin counting demand accesses toward the detection bound. */
    void noteKillInjected();

    bool engaged() const { return engaged_; }
    bool completed() const { return completed_; }
    bool unrecoverable() const { return unrecoverable_; }
    /** Spare rebuild completed at least once. */
    bool spared() const { return spared_; }
    /** Migrate-back to a replacement chip completed. */
    bool repaired() const { return repaired_; }
    /** The spare was abandoned mid-rebuild (degraded fallback). */
    bool spareAbandoned() const { return spareAbandoned_; }
    /** The bit-level spare, when one has been engaged. */
    const SpareChip *spareChip() const { return spare.get(); }
    /** Demand PM accesses between kill injection and engagement. */
    std::uint64_t detectAccesses() const;

    /**
     * End of trial: drain the remaining EUR state through the
     * controller, read back every block through the live routing, and
     * classify it against the oracle into @p tally (sdc / lostDurable
     * / ue). Campaign-level plan assertions stay with the caller.
     */
    void finalCheck(RasTally &tally);

    /** Bit-level tallies accumulated during the run. */
    struct Counts
    {
        std::uint64_t demandReads = 0;
        std::uint64_t demandWrites = 0;
        std::uint64_t rsFixes = 0;
        std::uint64_t vlewFallbacks = 0;
        std::uint64_t chipRecovered = 0;
        std::uint64_t degradedReads = 0;
        std::uint64_t degradedWrites = 0;
        std::uint64_t sdc = 0;
        std::uint64_t ue = 0;
        std::uint64_t poisonedWriteSkips = 0;
        std::uint64_t earlyRetires = 0; //!< EUR merges before VLEW ops
    };

    const Counts &counts() const { return n; }

  private:
    void onPmWrite(Addr addr, unsigned bank, unsigned slot);
    void onEurDrain(unsigned bank, unsigned slot);
    void onPmRead(Addr addr, bool patrol, bool overhead);
    void demandRead(unsigned block);
    void demandWrite(unsigned block, unsigned bank, unsigned slot);
    void patrolCheck(unsigned span, std::vector<int> &per_chip);
    unsigned migrateStep(unsigned max_blocks);
    void onFailoverStart(unsigned chip);
    void onRebuildStart(unsigned chip);
    unsigned spareRebuildStep(unsigned max_blocks);
    unsigned spareBackStep(unsigned max_blocks);
    void onSpareAbandonedCb(unsigned chip);

    unsigned blockOf(Addr addr) const;
    unsigned spanOf(unsigned block) const;
    /** Chip-internal EUR merge: retire every mirrored pending code
     *  delta in @p span before a VLEW-touching operation. */
    void retireSpan(unsigned span);
    void retireBlock(unsigned block);
    void makePayload(const std::uint8_t *old_data, std::uint8_t *out);

    System &sys;
    PmRank &rank;
    PersistOracle &oracle;
    ScrubEngine scrub;
    Rng rng;
    RasConfig rasCfg;
    unsigned threshold;
    unsigned spanBlocks;
    /** Healthy-side mirrored pending blocks per flattened
     *  (bank * slotsPerBank + EUR slot) register. */
    std::vector<std::vector<unsigned>> pendingSlots;
    /** Register currently coalescing each span's code deltas (open-row
     *  exclusivity: one span per register at a time). */
    std::vector<std::uint32_t> spanRegister;
    /** Per-span count of healthy-side pending blocks. */
    std::vector<unsigned> spanPending;
    /** Last value whose code fully drained on the healthy rank. */
    std::vector<PersistOracle::Value> healthySettled;
    std::unique_ptr<OnlineFailover> failover;
    std::unique_ptr<SpareChip> spare;
    std::unique_ptr<RasEngine> eng;
    std::vector<int> spareScratch;
    bool killInjected = false;
    bool engaged_ = false;
    bool completed_ = false;
    bool unrecoverable_ = false;
    bool spared_ = false;
    bool repaired_ = false;
    bool spareAbandoned_ = false;
    std::uint64_t accessesAtInjection = 0;
    std::uint64_t accessesAtEngage = 0;
    Counts n;
};

/** Shape knobs for one lifecycle trial. */
struct RasTrialConfig
{
    PmTech tech = PmTech::Reram;
    FaultPlan plan = FaultPlan::ChipKill;
    /** Mirrored rank capacity (multiple of 32). */
    unsigned rankBlocks = 1024;
    unsigned banks = 4;
    unsigned cores = 2;
    /** Live-traffic horizon; fault phases are placed inside it. */
    Tick horizon = nsToTicks(16000);
    /** Extra time allowed for a late failover to finish migrating. */
    Tick failoverSlack = nsToTicks(8000);
    /** RS acceptance threshold. */
    unsigned threshold = 2;
    /** Engine policy (bench applies RasConfig::fromEnv()). */
    RasConfig ras;
    /** Max demand PM accesses from kill injection to engagement. */
    std::uint64_t detectAccessBound = 512;
};

/** Run one seeded lifecycle trial. */
RasTally runRasTrial(const RasTrialConfig &tc, Rng &rng);

/** Campaign shape; the defaults meet the acceptance bar (>= 5k). */
struct RasCampaignConfig
{
    std::uint64_t seed = 2018;
    /** Trials, split across (technology x fault plan) cells. */
    std::uint64_t trials = 6000;
    /** Trials per sweep point (parallel work-item granularity). */
    unsigned chunkTrials = 25;
    RasTrialConfig trial; //!< tech/plan overwritten per cell
};

constexpr unsigned numRasTechs = 2;

/** Aggregated campaign outcome per (technology, fault plan) cell. */
struct RasTotals
{
    std::array<std::array<RasTally, numFaultPlans>, numRasTechs> cells;

    RasTally total() const;
    std::uint64_t
    violations() const
    {
        return total().violations;
    }
};

/**
 * Run the fault-lifecycle campaign as a ParallelSweep, print the
 * per-cell table to @p os, and return the tallies. Output is
 * byte-identical for any worker count at a fixed seed.
 */
RasTotals rasCampaign(std::ostream &os, const SweepOptions &opts,
                      const RasCampaignConfig &cfg);

} // namespace nvck

#endif // NVCK_SIM_RAS_HH
