#include "system.hh"

#include "common/log.hh"

namespace nvck {

namespace {

/** Retry backoff when a controller queue is full. */
constexpr Tick retryDelay = nsToTicks(20);

/** LLC hit latency in core cycles (Table I). */
constexpr Cycle llcHitCycles = 14;

} // namespace

System::System(const SystemConfig &config)
    : System(config, [&config]() -> std::unique_ptr<Workload> {
          QueryProfile prof = findProfile(config.workload);
          if (config.gapOverride != 0)
              prof.gapMean = config.gapOverride;
          return std::make_unique<SyntheticWorkload>(
              prof, config.space, config.cores, config.seed);
      }())
{
}

System::System(const SystemConfig &config,
               std::unique_ptr<Workload> external_workload)
    : cfg(config),
      mem(eq, cfg.mem),
      hierarchy(cfg.cache, *this),
      bench(std::move(external_workload)),
      rng(cfg.seed * 31 + 7),
      persistsInFlight(cfg.cores, 0),
      drainWaiters(cfg.cores)
{
    NVCK_ASSERT(bench != nullptr, "system needs a workload");
    for (unsigned c = 0; c < cfg.cores; ++c)
        cores.push_back(
            std::make_unique<Core>(c, eq, *this, *bench, cfg.core));
}

void
System::start()
{
    for (auto &core : cores)
        core->start();
}

void
System::issueAt(Tick when, MemRequest req,
                std::function<void(Tick)> on_accept)
{
    if (when > eq.now()) {
        eq.schedule(when, [this, req, on_accept] {
            issueAt(eq.now(), req, on_accept);
        });
        return;
    }
    if (!mem.enqueue(req)) {
        eq.scheduleAfter(retryDelay, [this, req, on_accept] {
            issueAt(eq.now(), req, on_accept);
        });
        return;
    }
    if (on_accept)
        on_accept(eq.now());
}

void
System::launchVlewFetch(Addr addr, Tick when,
                        std::function<void(Tick)> on_complete)
{
    const unsigned blocks = cfg.scheme.vlewFetchBlocks;
    // Align to the VLEW's 32-block span so the over-fetch enjoys the
    // row-buffer locality the layout gives it (Fig 6).
    const unsigned blocks_per_vlew =
        cfg.mem.vlewDataBytes / chipBeatBytes;
    const Addr base = addr / (blocks_per_vlew * blockBytes) *
                      (blocks_per_vlew * blockBytes);

    auto remaining = std::make_shared<unsigned>(blocks);
    const Tick decode_lat = cfg.scheme.vlewDecodeLatency;
    for (unsigned b = 0; b < blocks; ++b) {
        MemRequest rd;
        rd.addr = base + static_cast<Addr>(b) * blockBytes;
        rd.op = MemOp::Read;
        rd.isPm = true;
        rd.isOverhead = true;
        rd.onComplete = [this, remaining, decode_lat,
                         on_complete](Tick t) {
            if (--*remaining == 0 && on_complete) {
                eq.schedule(t + decode_lat, [on_complete, t,
                                             decode_lat] {
                    on_complete(t + decode_lat);
                });
            }
        };
        issueAt(when, rd);
    }
}

bool
System::access(unsigned core, Addr addr, bool is_write, bool is_pm,
               Tick when, Cycle *latency_cycles,
               std::function<void(Tick)> on_complete)
{
    const HitLevel level = hierarchy.access(core, addr, is_write, is_pm);
    if (level == HitLevel::L1) {
        *latency_cycles = 1;
        return true;
    }
    if (level == HitLevel::LLC) {
        *latency_cycles = llcHitCycles;
        return true;
    }

    if (is_write) {
        // Write-allocate: the store occupies a miss-window slot until
        // the fill read returns, but the core does not wait for the
        // data itself.
        MemRequest fill;
        fill.addr = addr;
        fill.op = MemOp::Read;
        fill.isPm = is_pm;
        fill.onComplete = std::move(on_complete);
        issueAt(when, fill);
        return false;
    }

    // Demand load miss. Under the proposal a small fraction of PM
    // reads carry more byte errors than the acceptance threshold and
    // must fetch the whole VLEW (Fig 9).
    if (is_pm && cfg.scheme.vlewFetchProb > 0.0 &&
        rng.chance(cfg.scheme.vlewFetchProb)) {
        sysStats.vlewFetches.inc();
        launchVlewFetch(addr, when, std::move(on_complete));
        return false;
    }

    MemRequest rd;
    rd.addr = addr;
    rd.op = MemOp::Read;
    rd.isPm = is_pm;
    rd.onComplete = std::move(on_complete);
    issueAt(when, rd);
    return false;
}

void
System::clean(unsigned core, Addr addr, bool is_pm, Tick when)
{
    NVCK_ASSERT(cleaningCore == -1, "re-entrant clean");
    cleaningCore = static_cast<int>(core);
    cleaningWhen = when;
    hierarchy.clean(core, addr, is_pm);
    cleaningCore = -1;
}

void
System::writeBlock(Addr addr, bool is_pm, bool omv_hit)
{
    const int pcore = cleaningCore;
    const Tick when = pcore >= 0 ? cleaningWhen : eq.now();

    MemRequest wr;
    wr.addr = addr;
    wr.op = MemOp::Write;
    wr.isPm = is_pm;

    // ADR-style persistence domain: a PM write is durable once the
    // memory controller accepts it, so fences wait for acceptance (and
    // for any old-data fetch the XOR-sum write needed), not for the
    // slow NVRAM cell write.
    std::function<void(Tick)> on_accept;
    if (is_pm && pcore >= 0) {
        sysStats.persists.inc();
        persistIssued(static_cast<unsigned>(pcore));
        on_accept = [this, pcore](Tick t) {
            persistDone(static_cast<unsigned>(pcore), t);
        };
    }

    const bool fetch_old =
        is_pm && (cfg.scheme.fetchOldAlways ||
                  (cfg.scheme.fetchOldOnOmvMiss && !omv_hit));
    if (fetch_old) {
        // The processor must read and correct the old data before it
        // can send the XOR-sum write (Section IV-B).
        sysStats.oldDataFetches.inc();
        MemRequest rd;
        rd.addr = addr;
        rd.op = MemOp::Read;
        rd.isPm = true;
        rd.isOverhead = true;
        rd.onComplete = [this, wr, on_accept](Tick t) {
            eq.schedule(t, [this, wr, on_accept] {
                issueAt(eq.now(), wr, on_accept);
            });
        };
        issueAt(when, rd);
        return;
    }
    issueAt(when, wr, on_accept);
}

bool
System::persistsPending(unsigned core) const
{
    return persistsInFlight.at(core) > 0;
}

void
System::onPersistDrain(unsigned core, std::function<void(Tick)> resume)
{
    NVCK_ASSERT(!drainWaiters.at(core), "double fence wait");
    if (persistsInFlight[core] == 0) {
        const Tick now = eq.now();
        eq.schedule(now, [resume, now] { resume(now); });
        return;
    }
    drainWaiters[core] = std::move(resume);
}

void
System::persistIssued(unsigned core)
{
    ++persistsInFlight.at(core);
}

void
System::persistDone(unsigned core, Tick when)
{
    if (persistsInFlight.at(core) == 0) {
        // A write that was in an event-queue retry/fetch chain at a
        // power cut completes against the rebooted machine; its
        // persist bookkeeping died with the cores.
        NVCK_ASSERT(stalePersistAcks > 0, "persist underflow");
        --stalePersistAcks;
        return;
    }
    if (--persistsInFlight[core] == 0 && drainWaiters[core]) {
        auto waiter = std::move(drainWaiters[core]);
        drainWaiters[core] = nullptr;
        waiter(when);
    }
}

void
System::resetStats()
{
    mem.resetStats();
    hierarchy.resetStats();
    sysStats = SystemStats{};
    for (auto &core : cores)
        core->resetStats();
}

PowerFailReport
System::powerFail()
{
    PowerFailReport report;
    report.caches = hierarchy.discardVolatile();
    report.controller = mem.powerCut();
    for (const unsigned pending : persistsInFlight)
        report.persistsInFlight += pending;
    stalePersistAcks += report.persistsInFlight;
    std::fill(persistsInFlight.begin(), persistsInFlight.end(), 0u);
    // The waiters' continuations belong to cores that no longer exist;
    // drop them without resuming.
    drainWaiters.assign(drainWaiters.size(), nullptr);
    cleaningCore = -1;
    return report;
}

} // namespace nvck
