#include "system.hh"

#include "common/log.hh"

namespace nvck {

namespace {

/** Retry backoff when a controller queue is full. */
constexpr Tick retryDelay = nsToTicks(20);

/** LLC hit latency in core cycles (Table I). */
constexpr Cycle llcHitCycles = 14;

} // namespace

System::System(const SystemConfig &config)
    : System(config, [&config]() -> std::unique_ptr<Workload> {
          QueryProfile prof = findProfile(config.workload);
          if (config.gapOverride != 0)
              prof.gapMean = config.gapOverride;
          return std::make_unique<SyntheticWorkload>(
              prof, config.space, config.cores, config.seed);
      }())
{
}

System::System(const SystemConfig &config,
               std::unique_ptr<Workload> external_workload)
    : cfg(config),
      eq(config.kernel),
      mem(eq, cfg.mem),
      hierarchy(cfg.cache, *this),
      bench(std::move(external_workload)),
      rng(cfg.seed * 31 + 7),
      persistsInFlight(cfg.cores, 0),
      drainWaiters(cfg.cores)
{
    NVCK_ASSERT(bench != nullptr, "system needs a workload");
    for (unsigned c = 0; c < cfg.cores; ++c)
        cores.push_back(
            std::make_unique<Core>(c, eq, *this, *bench, cfg.core));
}

void
System::start()
{
    for (auto &core : cores)
        core->start();
}

std::uint32_t
System::parkIssue(MemRequest req, std::function<void(Tick)> on_accept)
{
    std::uint32_t s;
    if (freeIssueSlot != noSlot) {
        s = freeIssueSlot;
        freeIssueSlot = issueSlots[s].next;
    } else {
        s = static_cast<std::uint32_t>(issueSlots.size());
        issueSlots.emplace_back();
    }
    issueSlots[s].req = std::move(req);
    issueSlots[s].onAccept = std::move(on_accept);
    return s;
}

void
System::retryIssue(std::uint32_t s)
{
    if (!mem.enqueue(issueSlots[s].req)) {
        eq.scheduleAfter(retryDelay, [this, s] { retryIssue(s); });
        return;
    }
    // Recycle before invoking: the acceptance callback may issue more
    // traffic (and re-park into this very slot) — everything it needs
    // has been moved out.
    auto on_accept = std::move(issueSlots[s].onAccept);
    issueSlots[s].next = freeIssueSlot;
    freeIssueSlot = s;
    if (on_accept)
        on_accept(eq.now());
}

void
System::issueAt(Tick when, MemRequest req,
                std::function<void(Tick)> on_accept)
{
    if (when > eq.now()) {
        const std::uint32_t s =
            parkIssue(std::move(req), std::move(on_accept));
        eq.schedule(when, [this, s] { retryIssue(s); });
        return;
    }
    if (!mem.enqueue(req)) {
        const std::uint32_t s =
            parkIssue(std::move(req), std::move(on_accept));
        eq.scheduleAfter(retryDelay, [this, s] { retryIssue(s); });
        return;
    }
    if (on_accept)
        on_accept(eq.now());
}

void
System::vlewBlockDone(std::uint32_t v, Tick t)
{
    VlewFetch &f = vlewFetches[v];
    if (--f.remaining != 0)
        return;
    if (f.onComplete) {
        const Tick done = t + f.decodeLat;
        eq.schedule(done, [this, v, done] {
            auto cb = std::move(vlewFetches[v].onComplete);
            vlewFetches[v].next = freeVlewFetch;
            freeVlewFetch = v;
            cb(done);
        });
        return;
    }
    f.next = freeVlewFetch;
    freeVlewFetch = v;
}

void
System::launchVlewFetch(Addr addr, Tick when,
                        std::function<void(Tick)> on_complete)
{
    const unsigned blocks = cfg.scheme.vlewFetchBlocks;
    // Align to the VLEW's 32-block span so the over-fetch enjoys the
    // row-buffer locality the layout gives it (Fig 6).
    const unsigned blocks_per_vlew =
        cfg.mem.vlewDataBytes / chipBeatBytes;
    const Addr base = addr / (blocks_per_vlew * blockBytes) *
                      (blocks_per_vlew * blockBytes);

    // The join counter and the decode callback live in a pooled slot;
    // each block read only captures the slot index.
    std::uint32_t v;
    if (freeVlewFetch != noSlot) {
        v = freeVlewFetch;
        freeVlewFetch = vlewFetches[v].next;
    } else {
        v = static_cast<std::uint32_t>(vlewFetches.size());
        vlewFetches.emplace_back();
    }
    vlewFetches[v].remaining = blocks;
    vlewFetches[v].decodeLat = cfg.scheme.vlewDecodeLatency;
    vlewFetches[v].onComplete = std::move(on_complete);

    for (unsigned b = 0; b < blocks; ++b) {
        MemRequest rd;
        rd.addr = base + static_cast<Addr>(b) * blockBytes;
        rd.op = MemOp::Read;
        rd.isPm = true;
        rd.isOverhead = true;
        rd.onComplete = [this, v](Tick t) { vlewBlockDone(v, t); };
        issueAt(when, rd);
    }
}

bool
System::access(unsigned core, Addr addr, bool is_write, bool is_pm,
               Tick when, Cycle *latency_cycles, Core &requester)
{
    const HitLevel level = hierarchy.access(core, addr, is_write, is_pm);
    if (level == HitLevel::L1) {
        *latency_cycles = 1;
        return true;
    }
    if (level == HitLevel::LLC) {
        *latency_cycles = llcHitCycles;
        return true;
    }

    // Off-chip: the data return resumes the requester directly. A
    // one-pointer callback stays inside std::function's small-buffer
    // storage, so the demand path allocates nothing.
    Core *rp = &requester;
    auto on_complete = [rp](Tick t) { rp->memComplete(t); };

    if (is_write) {
        // Write-allocate: the store occupies a miss-window slot until
        // the fill read returns, but the core does not wait for the
        // data itself.
        MemRequest fill;
        fill.addr = addr;
        fill.op = MemOp::Read;
        fill.isPm = is_pm;
        fill.onComplete = on_complete;
        issueAt(when, fill);
        return false;
    }

    // Demand load miss. Under the proposal a small fraction of PM
    // reads carry more byte errors than the acceptance threshold and
    // must fetch the whole VLEW (Fig 9).
    if (is_pm && cfg.scheme.vlewFetchProb > 0.0 &&
        rng.chance(cfg.scheme.vlewFetchProb)) {
        sysStats.vlewFetches.inc();
        launchVlewFetch(addr, when, on_complete);
        return false;
    }

    MemRequest rd;
    rd.addr = addr;
    rd.op = MemOp::Read;
    rd.isPm = is_pm;
    rd.onComplete = on_complete;
    issueAt(when, rd);
    return false;
}

void
System::clean(unsigned core, Addr addr, bool is_pm, Tick when)
{
    NVCK_ASSERT(cleaningCore == -1, "re-entrant clean");
    cleaningCore = static_cast<int>(core);
    cleaningWhen = when;
    hierarchy.clean(core, addr, is_pm);
    cleaningCore = -1;
}

void
System::writeBlock(Addr addr, bool is_pm, bool omv_hit)
{
    const int pcore = cleaningCore;
    const Tick when = pcore >= 0 ? cleaningWhen : eq.now();

    MemRequest wr;
    wr.addr = addr;
    wr.op = MemOp::Write;
    wr.isPm = is_pm;

    // ADR-style persistence domain: a PM write is durable once the
    // memory controller accepts it, so fences wait for acceptance (and
    // for any old-data fetch the XOR-sum write needed), not for the
    // slow NVRAM cell write.
    std::function<void(Tick)> on_accept;
    if (is_pm && pcore >= 0) {
        sysStats.persists.inc();
        persistIssued(static_cast<unsigned>(pcore));
        on_accept = [this, pcore](Tick t) {
            persistDone(static_cast<unsigned>(pcore), t);
        };
    }

    const bool fetch_old =
        is_pm && (cfg.scheme.fetchOldAlways ||
                  (cfg.scheme.fetchOldOnOmvMiss && !omv_hit));
    if (fetch_old) {
        // The processor must read and correct the old data before it
        // can send the XOR-sum write (Section IV-B). The deferred write
        // parks in a pooled slot; the read's completion chains to it by
        // index instead of dragging the request through two closures.
        sysStats.oldDataFetches.inc();
        const std::uint32_t s =
            parkIssue(std::move(wr), std::move(on_accept));
        MemRequest rd;
        rd.addr = addr;
        rd.op = MemOp::Read;
        rd.isPm = true;
        rd.isOverhead = true;
        rd.onComplete = [this, s](Tick t) {
            eq.schedule(t, [this, s] { retryIssue(s); });
        };
        issueAt(when, rd);
        return;
    }
    issueAt(when, std::move(wr), std::move(on_accept));
}

bool
System::persistsPending(unsigned core) const
{
    return persistsInFlight.at(core) > 0;
}

void
System::onPersistDrain(unsigned core, Core &requester)
{
    NVCK_ASSERT(!drainWaiters.at(core), "double fence wait");
    if (persistsInFlight[core] == 0) {
        const Tick now = eq.now();
        Core *rp = &requester;
        eq.schedule(now, [rp, now] { rp->fenceResume(now); });
        return;
    }
    drainWaiters[core] = &requester;
}

void
System::persistIssued(unsigned core)
{
    ++persistsInFlight.at(core);
}

void
System::persistDone(unsigned core, Tick when)
{
    if (persistsInFlight.at(core) == 0) {
        // A write that was in an event-queue retry/fetch chain at a
        // power cut completes against the rebooted machine; its
        // persist bookkeeping died with the cores.
        NVCK_ASSERT(stalePersistAcks > 0, "persist underflow");
        --stalePersistAcks;
        return;
    }
    if (--persistsInFlight[core] == 0 && drainWaiters[core]) {
        Core *waiter = drainWaiters[core];
        drainWaiters[core] = nullptr;
        waiter->fenceResume(when);
    }
}

void
System::resetStats()
{
    mem.resetStats();
    hierarchy.resetStats();
    sysStats = SystemStats{};
    for (auto &core : cores)
        core->resetStats();
}

PowerFailReport
System::powerFail()
{
    PowerFailReport report;
    report.caches = hierarchy.discardVolatile();
    report.controller = mem.powerCut();
    for (const unsigned pending : persistsInFlight)
        report.persistsInFlight += pending;
    stalePersistAcks += report.persistsInFlight;
    std::fill(persistsInFlight.begin(), persistsInFlight.end(), 0u);
    // The waiters' continuations belong to cores that no longer exist;
    // drop them without resuming.
    drainWaiters.assign(drainWaiters.size(), nullptr);
    cleaningCore = -1;
    return report;
}

} // namespace nvck
