/**
 * @file
 * The full simulated system: cores -> cache hierarchy (SAM/OMV) ->
 * protection scheme hooks -> hybrid DRAM+NVRAM memory controller. Glues
 * the components through the CoreContext and MemSink interfaces and
 * injects the scheme's overhead traffic (VLEW fetches, old-data reads)
 * with the probabilities the analytical models supply — the same
 * methodology the paper uses in gem5 (Section VI).
 */

#ifndef NVCK_SIM_SYSTEM_HH
#define NVCK_SIM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/event.hh"
#include "common/rng.hh"
#include "cpu/core.hh"
#include "mem/controller.hh"
#include "sim/configs.hh"
#include "workload/synthetic.hh"

namespace nvck {

/** System-level statistics beyond the per-component groups. */
struct SystemStats
{
    Counter vlewFetches;      //!< reads that triggered VLEW correction
    Counter oldDataFetches;   //!< writes that fetched old data off-chip
    Counter persists;         //!< PM writes with persist semantics
};

/** Everything a power cut destroyed across the machine. */
struct PowerFailReport
{
    PowerCutReport controller;
    VolatileDiscard caches;
    /** Persist acknowledgements that were pending at the cut. */
    std::size_t persistsInFlight = 0;
};

/** The simulated machine. */
class System : public CoreContext, public MemSink
{
  public:
    explicit System(const SystemConfig &config);

    /**
     * Build the system around an externally supplied workload (e.g. a
     * TraceReplayWorkload carrying real application traces) instead of
     * the named synthetic generator in @p config.
     */
    System(const SystemConfig &config,
           std::unique_ptr<Workload> external_workload);

    /** Start all cores. */
    void start();

    /** Advance simulation to absolute time @p until. */
    void runUntil(Tick until) { eq.runUntil(until); }

    /**
     * Stop the current runUntil() after the executing event returns —
     * the machine dies mid-event. Crash campaigns call this from a
     * CrashHooks callback at the chosen cut site so no simulated time
     * passes between the cut and powerFail().
     */
    void requestHalt() { eq.halt(); }

    Tick now() const { return eq.now(); }

    // CoreContext interface ------------------------------------------
    bool access(unsigned core, Addr addr, bool is_write, bool is_pm,
                Tick when, Cycle *latency_cycles,
                Core &requester) override;
    void clean(unsigned core, Addr addr, bool is_pm, Tick when) override;
    bool persistsPending(unsigned core) const override;
    void onPersistDrain(unsigned core, Core &requester) override;

    // MemSink interface ----------------------------------------------
    void writeBlock(Addr addr, bool is_pm, bool omv_hit) override;

    // Accessors -------------------------------------------------------
    MemController &memory() { return mem; }
    CacheHierarchy &caches() { return hierarchy; }
    Core &core(unsigned i) { return *cores.at(i); }
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores.size());
    }
    Workload &workload() { return *bench; }
    const SystemStats &stats() const { return sysStats; }
    const SystemConfig &config() const { return cfg; }
    /** The system's event queue (kernel identity, per-queue counters). */
    const EventQueue &events() const { return eq; }
    /** Mutable queue access for co-scheduled engines (sim/ras.hh). */
    EventQueue &events() { return eq; }

    /** Persist acks still owed to writes orphaned by a power cut. */
    std::size_t pendingStaleAcks() const { return stalePersistAcks; }

    void resetStats();

    /**
     * Power failure across the whole machine: the cache hierarchy
     * (including OMV lines) and the controller's volatile state are
     * dropped; queued PM writes flush inside the ADR domain; pending
     * persist acknowledgements and drain waiters die with the cores.
     * The event queue itself is untouched — after this the system can
     * be driven again as the "rebooted" machine, with the bit-level
     * rank recovery handled by the chipkill layer's crashRecovery().
     */
    PowerFailReport powerFail();

  private:
    /** Test seam: drives persistDone() directly to pin the
     *  stale-persist-ack underflow guard with a death test. */
    friend class SystemTestPeer;

    /**
     * A parked controller transaction: a request waiting for its issue
     * time or retrying a full queue. The request and its acceptance
     * callback live in this pooled slot so the retry events capture
     * only {this, slot index} — small enough for the event queue's
     * InlineAction, and recycled without heap traffic. Slots survive a
     * power cut exactly like the retry events that reference them, so
     * stranded chains still complete against the rebooted machine.
     */
    struct IssueSlot
    {
        MemRequest req;
        std::function<void(Tick)> onAccept;
        std::uint32_t next = 0; //!< free-list link
    };

    /** One in-flight VLEW over-fetch's join state (pooled like above). */
    struct VlewFetch
    {
        unsigned remaining = 0;
        Tick decodeLat = 0;
        std::function<void(Tick)> onComplete;
        std::uint32_t next = 0; //!< free-list link
    };

    static constexpr std::uint32_t noSlot = UINT32_MAX;

    /**
     * Enqueue a controller transaction at time >= when; @p on_accept
     * fires when the controller admits the request (ADR persistence
     * domain: an accepted PM write is durable).
     */
    void issueAt(Tick when, MemRequest req,
                 std::function<void(Tick)> on_accept = nullptr);
    std::uint32_t parkIssue(MemRequest req,
                            std::function<void(Tick)> on_accept);
    /** Try to enqueue slot @p s now; reschedules itself on a full
     *  queue, frees the slot and fires onAccept on admission. */
    void retryIssue(std::uint32_t s);
    /** Launch the VLEW over-fetch for a rejected RS correction. */
    void launchVlewFetch(Addr addr, Tick when,
                         std::function<void(Tick)> on_complete);
    void vlewBlockDone(std::uint32_t v, Tick t);
    void persistIssued(unsigned core);
    void persistDone(unsigned core, Tick when);

    SystemConfig cfg;
    EventQueue eq;
    MemController mem;
    CacheHierarchy hierarchy;
    std::unique_ptr<Workload> bench;
    std::vector<std::unique_ptr<Core>> cores;
    Rng rng;
    SystemStats sysStats;

    /** Core whose clean() is currently executing (persist routing). */
    int cleaningCore = -1;
    /** Issue time of the clean currently executing. */
    Tick cleaningWhen = 0;
    std::vector<unsigned> persistsInFlight;
    /** Per-core fenced waiter; resumed via Core::fenceResume(). */
    std::vector<Core *> drainWaiters;
    /** Persist acks owed to writes orphaned by a power cut. */
    std::size_t stalePersistAcks = 0;

    std::vector<IssueSlot> issueSlots;
    std::uint32_t freeIssueSlot = noSlot;
    std::vector<VlewFetch> vlewFetches;
    std::uint32_t freeVlewFetch = noSlot;
};

} // namespace nvck

#endif // NVCK_SIM_SYSTEM_HH
