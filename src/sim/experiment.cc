#include "experiment.hh"

#include "common/log.hh"

namespace nvck {

RunMetrics
runOnce(const SystemConfig &config, const RunControl &rc)
{
    System sys(config);
    sys.start();
    sys.runUntil(rc.warmup);
    sys.resetStats();

    // Measure, sampling cache occupancy along the way.
    const Tick end = rc.warmup + rc.measure;
    double dirty_sum = 0.0, omv_sum = 0.0;
    unsigned samples = 0;
    std::vector<std::uint64_t> insts_start(sys.coreCount());
    for (unsigned c = 0; c < sys.coreCount(); ++c)
        insts_start[c] = sys.core(c).instructions();

    for (Tick t = rc.warmup + rc.samplePeriod; t <= end;
         t += rc.samplePeriod) {
        sys.runUntil(t);
        dirty_sum += sys.caches().dirtyPmFraction();
        omv_sum += sys.caches().omvFraction();
        ++samples;
    }
    sys.runUntil(end);

    RunMetrics m;
    m.workload = config.workload;
    m.scheme = config.scheme.name;

    std::uint64_t insts = 0;
    for (unsigned c = 0; c < sys.coreCount(); ++c)
        insts += sys.core(c).instructions() - insts_start[c];
    const double seconds = ticksToNs(rc.measure) * 1e-9;
    const double cycles =
        seconds * config.core.freqGhz * 1e9; // per core
    m.ipc = static_cast<double>(insts) / cycles;

    const double flop_frac = sys.workload().flopFraction();
    m.mflops = static_cast<double>(insts) * flop_frac / seconds / 1e6;
    m.perf = sys.workload().isFlops() ? m.mflops : m.ipc;

    m.cFactor = sys.memory().cFactor();
    m.omvHitRate = sys.caches().omvHitRate();
    m.dirtyPmFraction = samples ? dirty_sum / samples : 0.0;
    m.omvFraction = samples ? omv_sum / samples : 0.0;

    const auto &ms = sys.memory().stats();
    m.pmReads = ms.pmReads.value();
    m.pmWrites = ms.pmWrites.value();
    m.dramReads = ms.dramReads.value();
    m.dramWrites = ms.dramWrites.value();
    m.overheadReads = ms.overheadReads.value();
    m.overheadWrites = ms.overheadWrites.value();
    m.vlewFetches = sys.stats().vlewFetches.value();
    m.oldDataFetches = sys.stats().oldDataFetches.value();
    m.avgReadLatencyNs = ms.readLatency.mean();
    m.avgWriteLatencyNs = ms.writeLatency.mean();
    const double hits = static_cast<double>(ms.rowHits.value());
    const double total = hits +
                         static_cast<double>(ms.rowMisses.value()) +
                         static_cast<double>(ms.rowConflicts.value());
    m.rowHitRate = total > 0 ? hits / total : 0.0;
    return m;
}

RunMetrics
runProposal(PmTech tech, const std::string &workload, std::uint64_t seed,
            const RunControl &rc)
{
    const double rber = runtimeRberFor(tech);

    // Pass 1: characterize C with the proposal's machinery active but
    // no write inflation yet (the paper measured C the same way).
    SchemeTiming scheme = proposalScheme(rber);
    SystemConfig char_cfg =
        SystemConfig::make(tech, scheme, workload, seed);
    const RunMetrics char_m = runOnce(char_cfg, rc);

    // Pass 2: apply the iso-endurance write latency and measure.
    applyCFactor(scheme, char_m.cFactor);
    SystemConfig eval_cfg =
        SystemConfig::make(tech, scheme, workload, seed);
    RunMetrics m = runOnce(eval_cfg, rc);
    m.cFactor = char_m.cFactor; // report the characterization-pass C
    m.tech = pmTechName(tech);
    return m;
}

RunMetrics
runBaseline(PmTech tech, const std::string &workload, std::uint64_t seed,
            const RunControl &rc)
{
    SystemConfig cfg = SystemConfig::make(tech, bitErrorOnlyScheme(),
                                          workload, seed);
    RunMetrics m = runOnce(cfg, rc);
    m.tech = pmTechName(tech);
    return m;
}

} // namespace nvck
