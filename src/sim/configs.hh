/**
 * @file
 * Table I configuration defaults: 4 cores at 3GHz, 4-issue; 64KB 2-way
 * L1s; 4MB 32-way shared LLC (14 cycles); one 2400MT/s channel with one
 * DRAM rank and one persistent-memory rank, 16 banks per rank; 128-entry
 * read/write queues, FR-FCFS, closed-page-after-50ns-idle.
 */

#ifndef NVCK_SIM_CONFIGS_HH
#define NVCK_SIM_CONFIGS_HH

#include <string>

#include "cache/hierarchy.hh"
#include "common/event.hh"
#include "chipkill/schemes.hh"
#include "cpu/core.hh"
#include "mem/controller.hh"
#include "workload/workload.hh"

namespace nvck {

/** Which NVRAM technology's latencies the PM rank models. */
enum class PmTech { Reram, Pcm };

/** Full system configuration. */
struct SystemConfig
{
    unsigned cores = 4;
    CoreConfig core;
    CacheConfig cache;
    MemControllerConfig mem;
    SchemeTiming scheme;
    AddressSpace space;
    std::string workload = "echo";
    std::uint64_t seed = 1;
    /** Calibration hook: override the profile's gapMean (0 = keep). */
    unsigned gapOverride = 0;
    /**
     * Event-queue kernel for the system's queue. Defaults to the
     * NVCK_EVENT_QUEUE-selected process default; differential harnesses
     * override it to run heap and calendar systems side by side in one
     * process.
     */
    EventKernel kernel = defaultEventKernel();

    /** Table I defaults with the given PM technology and scheme. */
    static SystemConfig make(PmTech tech, const SchemeTiming &scheme,
                             const std::string &workload,
                             std::uint64_t seed = 1);
};

/** Runtime RBER used for scheme behaviour under each technology. */
double runtimeRberFor(PmTech tech);

/** Human-readable technology name. */
std::string pmTechName(PmTech tech);

} // namespace nvck

#endif // NVCK_SIM_CONFIGS_HH
