/**
 * @file
 * Whole-system power-failure campaign: drives a synthetic persistent
 * workload through the full timing stack (cores -> cache hierarchy ->
 * memory controller -> EUR), mirrors every PM data burst and EUR drain
 * onto a bit-accurate PmRank, cuts power either at a random tick or at
 * an armed CrashHooks site (System::powerFail() is the real cut path),
 * runs PmRank::crashRecovery(), and checks every block against a
 * persist-order oracle.
 *
 * The oracle encodes the ADR contract the timing layer implements:
 *
 *  - a write whose coalesced code-bit delta fully drained from the EUR
 *    ("settled") is crash-durable and must read back as exactly its
 *    value — never roll back;
 *  - a write whose data burst landed (or was flushed from the write
 *    queue by the ADR domain's stored energy) but whose code delta was
 *    still EUR-held may resolve to the last settled value, any
 *    still-pending bursted value, or an explicitly reported UE;
 *  - nothing may ever read back as silent garbage.
 *
 * PR 5's CrashInjector proves the same invariant for synthetic torn
 * writes on a pristine rank; this campaign produces the torn media
 * state from the timing pipeline itself mid-workload, so every future
 * controller or scheduling change is exercised against the invariant.
 */

#ifndef NVCK_SIM_SYSCRASH_HH
#define NVCK_SIM_SYSCRASH_HH

#include <array>
#include <cstdint>
#include <deque>
#include <ostream>
#include <vector>

#include "chipkill/pm_rank.hh"
#include "common/rng.hh"
#include "sim/configs.hh"
#include "sim/parallel.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

namespace nvck {

/** Where the campaign cuts power. */
enum class CutSite
{
    /** Between events at a uniformly random simulated tick. */
    RandomTick,
    /** At the n-th PM data burst (onPmWrite), torn mid-burst: only a
     *  random subset of chips latched the XOR delta. */
    AtPmWrite,
    /** At the n-th row-close drain start (onRowClose): every register
     *  of the closing row dies before any code delta retires. */
    AtRowClose,
    /** At the n-th EUR register retirement (onEurDrain), torn per
     *  chip: a random subset of chips applied the code delta. */
    AtEurDrain,
};

constexpr unsigned numCutSites = 4;

/** Stable label for tables, --filter selection, and logs. */
const char *cutSiteName(CutSite site);

/**
 * Per-block persist-order bookkeeping. The timing mirror records
 * every data burst (a value whose code delta is now EUR-held) and
 * every completed drain (the value settles); after recovery, classify()
 * says whether a block's readback is one the ADR contract permits.
 */
class PersistOracle
{
  public:
    using Value = std::array<std::uint8_t, blockBytes>;

    /** What a post-recovery readback means for one block. */
    enum class Verdict
    {
        SettledOk,        //!< no pending write; exact settled value
        TornOld,          //!< pending write resolved to the settled value
        TornNew,          //!< pending write rolled forward to the latest
        TornIntermediate, //!< an earlier still-pending bursted value
        ReportedUe,       //!< explicit, reported UE (always legal)
        Violation,        //!< silent garbage or a settled write rolled back
    };

    explicit PersistOracle(unsigned blocks);

    /** Set the pristine (settled) image of @p block. */
    void setBaseline(unsigned block, const std::uint8_t *value);

    /** A data burst landed: @p value is now pending (code EUR-held). */
    void recordBurst(unsigned block, const std::uint8_t *value);

    /** The block's coalesced code delta fully drained: the latest
     *  bursted value settles and the pending chain resets. */
    void recordDrain(unsigned block);

    /** True while the block has bursted-but-undrained values. */
    bool pending(unsigned block) const
    {
        return !chains[block].empty();
    }

    /** Blocks currently pending. */
    unsigned pendingCount() const;

    const Value &settled(unsigned block) const
    {
        return settledVal[block];
    }

    /** Latest bursted value (the settled value when not pending). */
    const Value &latest(unsigned block) const;

    Verdict classify(unsigned block, const std::uint8_t *readback,
                     bool reported_ue) const;

  private:
    std::vector<Value> settledVal;
    /** Values bursted since the last settle, oldest first. */
    std::vector<std::vector<Value>> chains;
};

/**
 * Compact persistent-memory workload for the campaign: each core owns
 * a strip of the (small) PM space and interleaves sequential log
 * appends (store + clwb per block, fence per group), hot-block
 * rewrites, PM/DRAM loads, DRAM stores, and short idle spans that let
 * the row-idle close policy trigger EUR drains. Unlike the stock
 * SyntheticWorkload profiles (which assert multi-MB per-core log
 * regions), this generator runs in a PM space sized exactly to the
 * mirrored rank.
 */
class CampaignWorkload : public Workload
{
  public:
    CampaignWorkload(const AddressSpace &space, unsigned cores,
                     std::uint64_t seed);

    std::string name() const override { return "syscrash"; }
    TraceOp next(unsigned core) override;
    unsigned mlp() const override { return 4; }

  private:
    struct CoreState
    {
        Rng rng{1};
        std::deque<TraceOp> ops;
        Addr stripBase = 0;
        std::uint64_t stripBlocks = 0;
        std::uint64_t logCursor = 0;
        Addr dramBase = 0;
        std::uint64_t dramBlocks = 0;
        std::vector<Addr> hot;
    };

    void refill(CoreState &cs);

    std::vector<CoreState> coreStates;
};

/**
 * The timing<->bit-level bridge. Installs CrashHooks on the system's
 * controller and mirrors the PM write path onto @p rank:
 *
 *  - onPmWrite: generate the write's 64B value deterministically,
 *    apply the data burst (applyTornWrite with no code drain), record
 *    the burst in the oracle, and remember the block under its
 *    (bank, EUR slot) register;
 *  - onEurDrain: retire the register's coalesced code delta for every
 *    pending block of that slot (PmRank::drainCodeBits) and settle
 *    them in the oracle;
 *  - onRowClose / burst / drain occurrence counters arm the cut: at
 *    the chosen occurrence the mirror freezes (the media sees nothing
 *    past the cut), captures the controller's queued PM writes as the
 *    ADR flush set (their data lands, their code deltas die), and
 *    halts the event loop so no simulated time passes before
 *    System::powerFail().
 */
class SysCrashMirror
{
  public:
    /**
     * @param occurrence 1-based count of the armed site's events at
     *        which the cut fires (ignored for RandomTick).
     * @param value_seed substream for the generated write payloads.
     */
    SysCrashMirror(System &sys, PmRank &rank, PersistOracle &oracle,
                   CutSite site, std::uint64_t occurrence,
                   std::uint64_t value_seed);

    /** True once the cut happened (armed site or cutNow()). */
    bool cutDone() const { return cut; }

    /** True when the cut fired at the armed hook site. */
    bool triggered() const { return trig; }

    /**
     * Cut power now: freeze the mirror, apply the ADR flush of the
     * controller's queued PM writes, and halt the event loop. Used
     * directly for RandomTick cuts and as the horizon fallback when
     * the armed site never reached its occurrence.
     */
    void cutNow();

    std::uint64_t bursts() const { return burstCount; }
    std::uint64_t drains() const { return drainCount; }
    std::uint64_t rowCloses() const { return rowCloseCount; }
    std::uint64_t flushedAtCut() const { return flushCount; }

  private:
    void onPmWrite(Addr addr, unsigned bank, unsigned slot);
    void onEurDrain(unsigned bank, unsigned slot);
    void onRowClose(unsigned bank);

    unsigned blockOf(Addr addr) const;
    /** Apply one data burst (masked chips) and record it. */
    void burst(unsigned block, std::uint16_t data_mask);
    /** Non-empty strict subset of the rank's chips. */
    std::uint16_t partialChipMask();

    System &sys;
    PmRank &rank;
    PersistOracle &oracle;
    CutSite site;
    std::uint64_t occurrence;
    Rng rng;

    /** Pending blocks per (bank, EUR slot) register. */
    std::vector<std::vector<std::vector<unsigned>>> pendingSlots;
    /** VLEW chunk each register currently coalesces (-1 = none);
     *  open-row exclusivity means one chunk per register at a time. */
    std::vector<std::vector<std::int64_t>> pendingChunk;

    std::uint64_t burstCount = 0;
    std::uint64_t drainCount = 0;
    std::uint64_t rowCloseCount = 0;
    std::uint64_t flushCount = 0;
    bool cut = false;
    bool trig = false;
};

/** Tallies from a batch of whole-system crash trials. */
struct SysCrashTally
{
    std::uint64_t trials = 0;
    /** Cuts that fired at the armed hook site (vs horizon fallback). */
    std::uint64_t cutsAtSite = 0;
    std::uint64_t bursts = 0;
    std::uint64_t drains = 0;
    /** Queued PM writes the ADR domain flushed at the cut. */
    std::uint64_t flushedAtCut = 0;
    /** Blocks with a pending (unsettled) write at the cut. */
    std::uint64_t pendingAtCut = 0;
    std::uint64_t tornOld = 0;
    std::uint64_t tornNew = 0;
    /** Pending blocks resolved to an earlier still-pending burst. */
    std::uint64_t tornIntermediate = 0;
    std::uint64_t tornUe = 0;
    /** Settled/untouched blocks sacrificed to a reported UE. */
    std::uint64_t collateralUe = 0;
    std::uint64_t chipKills = 0;
    /** Orphaned persist acks absorbed during the reboot drive. */
    std::uint64_t staleAcksAbsorbed = 0;
    /** Oracle violations: must be zero. */
    std::uint64_t violations = 0;

    SysCrashTally &operator+=(const SysCrashTally &other);
};

/** Shape knobs for one whole-system trial. */
struct SysCrashTrialConfig
{
    PmTech tech = PmTech::Reram;
    CutSite site = CutSite::RandomTick;
    /** Mirrored rank capacity; must cover >= 2 rows per bank so row
     *  conflicts actually drain the EUR (multiple of 32). */
    unsigned rankBlocks = 1024;
    /** Banks per rank (both ranks; small keeps the rank mirrorable). */
    unsigned banks = 4;
    unsigned cores = 2;
    /** Simulated horizon; hook cuts that never trigger fall back to a
     *  cut here. */
    Tick horizon = nsToTicks(8000);
    /** Probability that a whole chip dies at the same cut. */
    double chipKillFraction = 0.08;
    /** RS acceptance threshold forwarded to recovery/reads. */
    unsigned threshold = 2;
    /** Drive the rebooted machine briefly after recovery so orphaned
     *  persist acks exercise the stalePersistAcks guard. */
    bool rebootDrive = true;
};

/** Run one seeded whole-system crash trial. */
SysCrashTally runSysCrashTrial(const SysCrashTrialConfig &tc, Rng &rng);

/** Campaign shape; the defaults meet the acceptance bar (>= 5k). */
struct SysCrashCampaignConfig
{
    std::uint64_t seed = 2018;
    /** Trials, split across (technology x cut site) cells. */
    std::uint64_t trials = 6000;
    /** Trials per sweep point (parallel work-item granularity). */
    unsigned chunkTrials = 25;
    SysCrashTrialConfig trial; //!< tech/site overwritten per cell
};

constexpr unsigned numSysCrashTechs = 2;

/** Aggregated campaign outcome per (technology, cut site) cell. */
struct SysCrashTotals
{
    std::array<std::array<SysCrashTally, numCutSites>, numSysCrashTechs>
        cells;

    SysCrashTally total() const;
    std::uint64_t
    violations() const
    {
        return total().violations;
    }
};

/**
 * Run the whole-system campaign as a ParallelSweep, print the per-cell
 * table to @p os, and return the tallies. Output is byte-identical for
 * any worker count at a fixed seed.
 */
SysCrashTotals systemCrashCampaign(std::ostream &os,
                                   const SweepOptions &opts,
                                   const SysCrashCampaignConfig &cfg);

} // namespace nvck

#endif // NVCK_SIM_SYSCRASH_HH
