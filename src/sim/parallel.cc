#include "parallel.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/event.hh"

namespace nvck {

std::vector<RunMetrics>
runAll(const std::vector<ExperimentJob> &jobs, ThreadPool *pool)
{
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    std::vector<RunMetrics> out(jobs.size());
    p.parallelFor(jobs.size(), [&](std::size_t i) {
        out[i] = runOnce(jobs[i].config, jobs[i].rc);
    });
    return out;
}

std::vector<AbResult>
runAbSweep(PmTech tech, const std::vector<std::string> &workloads,
           std::uint64_t seed, const RunControl &rc, ThreadPool *pool)
{
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    std::vector<AbResult> out(workloads.size());
    p.parallelFor(workloads.size(), [&](std::size_t i) {
        out[i].baseline = runBaseline(tech, workloads[i], seed, rc);
        out[i].proposal = runProposal(tech, workloads[i], seed, rc);
    });
    return out;
}

namespace {

[[noreturn]] void
sweepUsage(const char *prog, int status)
{
    std::FILE *os = status == 0 ? stdout : stderr;
    std::fprintf(os,
                 "usage: %s [options]\n"
                 "  --points N   run only the first N (post-filter) sweep"
                 " points\n"
                 "  --filter S   run only points whose label contains S\n"
                 "  --list       print the selected point labels and exit\n"
                 "  --timing     report per-point wall time on stderr\n"
                 "  --jobs N     worker count for the sweep (overrides"
                 " NVCK_JOBS)\n"
                 "  --seed N     override the sweep's base seed (replay"
                 " a logged run)\n"
                 "  --help       this message\n"
                 "\n"
                 "Point selection never changes a point's random stream:\n"
                 "substreams are keyed by declaration index, so a filtered\n"
                 "run reproduces the corresponding rows of the full table\n"
                 "byte for byte.\n",
                 prog);
    std::exit(status);
}

/**
 * Accept "--flag value" and "--flag=value"; returns nullptr when
 * @p arg is not @p flag, otherwise the value (advancing @p i for the
 * two-token form).
 */
const char *
flagValue(const char *flag, int argc, const char *const *argv, int &i)
{
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0)
        return nullptr;
    if (argv[i][len] == '=')
        return argv[i] + len + 1;
    if (argv[i][len] != '\0')
        return nullptr;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
    }
    return argv[++i];
}

unsigned long
parseCount(const char *prog, const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v == 0) {
        std::fprintf(stderr, "%s: %s expects a positive integer, got '%s'\n",
                     prog, flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

SweepOptions
SweepOptions::parse(int argc, const char *const *argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0)
            sweepUsage(argv[0], 0);
        else if (std::strcmp(argv[i], "--list") == 0)
            opts.list = true;
        else if (std::strcmp(argv[i], "--timing") == 0)
            opts.timing = true;
        else if (const char *v = flagValue("--points", argc, argv, i))
            opts.points = parseCount(argv[0], "--points", v);
        else if (const char *f = flagValue("--filter", argc, argv, i))
            opts.filter = f;
        else if (const char *j = flagValue("--jobs", argc, argv, i))
            opts.jobs =
                static_cast<unsigned>(parseCount(argv[0], "--jobs", j));
        else if (const char *s = flagValue("--seed", argc, argv, i)) {
            opts.seed = parseCount(argv[0], "--seed", s);
            opts.seedSet = true;
        }
        else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         argv[i]);
            sweepUsage(argv[0], 2);
        }
    }
    return opts;
}

namespace sweep_detail {

void
announceSelection(std::size_t selected, std::size_t declared,
                  const SweepOptions &opts, unsigned workers)
{
    // Quiet unless the CLI dropped points: stdout stays golden-clean
    // and full runs print nothing extra.
    if (selected == declared)
        return;
    std::cerr << "# sweep: running " << selected << " of " << declared
              << " points";
    if (!opts.filter.empty())
        std::cerr << " (filter '" << opts.filter << "')";
    if (opts.points)
        std::cerr << " (--points " << opts.points << ")";
    std::cerr << " on " << workers << " worker"
              << (workers == 1 ? "" : "s") << "\n";
}

void
printTimings(const std::vector<std::pair<std::string, double>> &times,
             unsigned workers)
{
    double total = 0.0;
    std::cerr << "# per-point wall time (" << workers << " worker"
              << (workers == 1 ? "" : "s") << "):\n";
    for (const auto &[label, ms] : times) {
        std::fprintf(stderr, "#   %-28s %10.2f ms\n", label.c_str(), ms);
        total += ms;
    }
    std::fprintf(stderr, "#   %-28s %10.2f ms\n", "total point time",
                 total);

    // Event-kernel roll-up across every retired queue (one per
    // simulated System): how hard the timing kernel worked for this
    // sweep, and whether the pools stayed flat (no steady-state heap
    // traffic). Queues still alive at this instant are not included.
    const EventKernelTotals ev = eventKernelTotals();
    if (ev.queues > 0) {
        std::fprintf(stderr,
                     "# event kernel (%s): %llu queues, %llu events, "
                     "%llu overflow promotions, peak pending %llu, "
                     "pool high-water %llu\n",
                     eventKernelName(defaultEventKernel()),
                     static_cast<unsigned long long>(ev.queues),
                     static_cast<unsigned long long>(ev.executed),
                     static_cast<unsigned long long>(
                         ev.overflowPromotions),
                     static_cast<unsigned long long>(ev.maxPeakPending),
                     static_cast<unsigned long long>(
                         ev.maxPoolHighWater));
    }
}

void
printLabels(const std::vector<std::string> &labels)
{
    for (const auto &label : labels)
        std::cout << label << "\n";
}

} // namespace sweep_detail

} // namespace nvck
