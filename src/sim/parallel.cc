#include "parallel.hh"

namespace nvck {

std::vector<RunMetrics>
runAll(const std::vector<ExperimentJob> &jobs, ThreadPool *pool)
{
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    std::vector<RunMetrics> out(jobs.size());
    p.parallelFor(jobs.size(), [&](std::size_t i) {
        out[i] = runOnce(jobs[i].config, jobs[i].rc);
    });
    return out;
}

std::vector<AbResult>
runAbSweep(PmTech tech, const std::vector<std::string> &workloads,
           std::uint64_t seed, const RunControl &rc, ThreadPool *pool)
{
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    std::vector<AbResult> out(workloads.size());
    p.parallelFor(workloads.size(), [&](std::size_t i) {
        out[i].baseline = runBaseline(tech, workloads[i], seed, rc);
        out[i].proposal = runProposal(tech, workloads[i], seed, rc);
    });
    return out;
}

} // namespace nvck
