/**
 * @file
 * Parallel experiment engine: fans independent experiment work items —
 * (SystemConfig, RunControl) pairs for the figure benches, per-trial
 * fault-injection campaigns in src/reliability/ — across the global
 * work-stealing thread pool (common/threadpool.hh), collecting results
 * in submission order so every output table is byte-identical to a
 * serial run.
 *
 * Determinism contract: each work item owns its System (or derives a
 * per-trial Rng substream from (baseSeed, trialIndex)); no mutable
 * state is shared across items, and per-item results/StatGroups are
 * merged after the barrier in submission order. NVCK_JOBS=1 opts out
 * of threading entirely and must reproduce the same bytes.
 */

#ifndef NVCK_SIM_PARALLEL_HH
#define NVCK_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "sim/experiment.hh"

namespace nvck {

/** One independent experiment: a configured system plus run control. */
struct ExperimentJob
{
    SystemConfig config;
    RunControl rc;
};

/**
 * Run every job across the pool (global pool when @p pool is null);
 * results land in submission order.
 */
std::vector<RunMetrics> runAll(const std::vector<ExperimentJob> &jobs,
                               ThreadPool *pool = nullptr);

/** Baseline/proposal pair for one workload (Figs 16/17). */
struct AbResult
{
    RunMetrics baseline;
    RunMetrics proposal;
};

/**
 * The Fig 16/17 sweep: for each workload run the bit-error-only
 * baseline and the two-pass proposal protocol under @p tech. Workloads
 * are independent work items; the two runs inside one item stay
 * sequential (the proposal's pass 2 depends on pass 1's C factor).
 */
std::vector<AbResult> runAbSweep(PmTech tech,
                                 const std::vector<std::string> &workloads,
                                 std::uint64_t seed, const RunControl &rc,
                                 ThreadPool *pool = nullptr);

/**
 * Ordered parallel map over [0, count) on the global pool — the entry
 * point the figure benches submit through for non-System work items
 * (e.g. per-RBER fault-sweep points, per-shard rank simulations).
 */
template <typename T>
std::vector<T>
parallelMap(std::size_t count, const std::function<T(std::size_t)> &fn)
{
    return ThreadPool::global().map<T>(count, fn);
}

} // namespace nvck

#endif // NVCK_SIM_PARALLEL_HH
