/**
 * @file
 * Parallel experiment engine: fans independent experiment work items —
 * (SystemConfig, RunControl) pairs for the figure benches, per-trial
 * fault-injection campaigns in src/reliability/ — across the global
 * work-stealing thread pool (common/threadpool.hh), collecting results
 * in submission order so every output table is byte-identical to a
 * serial run.
 *
 * Determinism contract: each work item owns its System (or derives a
 * per-trial Rng substream from (baseSeed, trialIndex)); no mutable
 * state is shared across items, and per-item results/StatGroups are
 * merged after the barrier in submission order. NVCK_JOBS=1 opts out
 * of threading entirely and must reproduce the same bytes.
 *
 * ParallelSweep is the shared sweep driver the figure benches declare
 * their work through: a list of labelled points, each a closure that
 * may draw from its own Rng substream. The driver owns the NVCK_JOBS
 * plumbing, per-point wall-clock timing, and the --points/--filter
 * CLI (SweepOptions::parse) so any individual sweep point can be
 * re-run in isolation with the exact same random stream it would get
 * in a full run.
 */

#ifndef NVCK_SIM_PARALLEL_HH
#define NVCK_SIM_PARALLEL_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/threadpool.hh"
#include "sim/experiment.hh"

namespace nvck {

/** One independent experiment: a configured system plus run control. */
struct ExperimentJob
{
    SystemConfig config;
    RunControl rc;
};

/**
 * Run every job across the pool (global pool when @p pool is null);
 * results land in submission order.
 */
std::vector<RunMetrics> runAll(const std::vector<ExperimentJob> &jobs,
                               ThreadPool *pool = nullptr);

/** Baseline/proposal pair for one workload (Figs 16/17). */
struct AbResult
{
    RunMetrics baseline;
    RunMetrics proposal;
};

/**
 * The Fig 16/17 sweep: for each workload run the bit-error-only
 * baseline and the two-pass proposal protocol under @p tech. Workloads
 * are independent work items; the two runs inside one item stay
 * sequential (the proposal's pass 2 depends on pass 1's C factor).
 */
std::vector<AbResult> runAbSweep(PmTech tech,
                                 const std::vector<std::string> &workloads,
                                 std::uint64_t seed, const RunControl &rc,
                                 ThreadPool *pool = nullptr);

/**
 * Ordered parallel map over [0, count) on the global pool — the entry
 * point the figure benches submit through for non-System work items
 * (e.g. per-RBER fault-sweep points, per-shard rank simulations).
 */
template <typename T>
std::vector<T>
parallelMap(std::size_t count, const std::function<T(std::size_t)> &fn)
{
    return ThreadPool::global().map<T>(count, fn);
}

/**
 * Options shared by every sweep-driven bench. parse() understands:
 *
 *   --points N    run only the first N (post-filter) points
 *   --filter S    run only points whose label contains substring S
 *   --list        print the selected labels to stdout and run nothing
 *   --timing      report per-point wall time on stderr after the run
 *   --jobs N      worker count for this sweep (overrides NVCK_JOBS)
 *   --seed N      override the sweep's base seed (verbatim replay of
 *                 a CI run that logged its seed)
 *
 * Selection never changes a point's random stream: substreams are
 * keyed by declaration index, so `--filter hashmap` reproduces the
 * hashmap row of the full table byte for byte.
 */
struct SweepOptions
{
    std::size_t points = 0;     //!< 0 = every (post-filter) point
    std::string filter;         //!< substring match on point labels
    bool list = false;          //!< print labels instead of running
    bool timing = false;        //!< per-point wall time on stderr
    unsigned jobs = 0;          //!< 0 = NVCK_JOBS / hardware default
    ThreadPool *pool = nullptr; //!< tests inject fixed-size pools
    std::uint64_t seed = 0;     //!< --seed value (valid when seedSet)
    bool seedSet = false;       //!< --seed was given on the CLI

    /**
     * Parse bench argv; prints usage and exits on --help or an
     * unknown flag, so bench main() can call it unconditionally.
     */
    static SweepOptions parse(int argc, const char *const *argv);
};

/** One completed sweep point, in submission order. */
template <typename T>
struct SweepOutcome
{
    std::string label;  //!< the label the point was declared with
    std::size_t index;  //!< declaration index == Rng substream index
    T value;            //!< what the point's closure returned
    double millis = 0;  //!< wall time of this point's closure
};

// Non-template plumbing shared by every ParallelSweep<T> (parallel.cc).
namespace sweep_detail {

/** Stderr note when --points/--filter dropped part of the sweep. */
void announceSelection(std::size_t selected, std::size_t declared,
                       const SweepOptions &opts, unsigned workers);

/** Stderr per-point timing report (submission order). */
void printTimings(const std::vector<std::pair<std::string, double>> &t,
                  unsigned workers);

/** Stdout label listing for --list. */
void printLabels(const std::vector<std::string> &labels);

} // namespace sweep_detail

/**
 * The shared sweep driver. Usage:
 *
 *   ParallelSweep<Row> sweep(seed, opts);
 *   for (const auto &w : workloads)
 *       sweep.add(w, [&, w](Rng &rng) { return measure(w, rng); });
 *   for (const auto &out : sweep.run())
 *       table.row().cell(out.label).cell(out.value...);
 *
 * Each point runs as one work item on the thread pool; results come
 * back in declaration order regardless of worker count. Point i's Rng
 * is substream i of the sweep seed — a pure function of (seed, i) —
 * so the same point sees the same stream whether the sweep runs
 * serially, on 8 workers, or alone under --filter. Closures that take
 * no Rng (analytic models) are accepted too.
 */
template <typename T>
class ParallelSweep
{
  public:
    /** @p seed is the sweep's default; --seed on the CLI wins. */
    explicit ParallelSweep(std::uint64_t seed = 0,
                           SweepOptions opts = SweepOptions{})
        : baseSeed(opts.seedSet ? opts.seed : seed),
          opts_(std::move(opts))
    {
    }

    /** Declare the next point; fn is T(Rng &) or plain T(). */
    template <typename F>
    ParallelSweep &
    add(std::string label, F &&fn)
    {
        if constexpr (std::is_invocable_r_v<T, F &, Rng &>) {
            items.push_back({std::move(label),
                             std::function<T(Rng &)>(std::forward<F>(fn))});
        } else {
            static_assert(std::is_invocable_r_v<T, F &>,
                          "sweep point must be callable as T(Rng&) or T()");
            items.push_back(
                {std::move(label),
                 [f = std::forward<F>(fn)](Rng &) mutable { return f(); }});
        }
        return *this;
    }

    /** Number of declared points. */
    std::size_t size() const { return items.size(); }

    /**
     * Run the selected points across the pool and return their
     * outcomes in declaration order. Under --list, prints the selected
     * labels and returns nothing.
     */
    std::vector<SweepOutcome<T>>
    run()
    {
        std::vector<std::size_t> selected;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (!opts_.filter.empty() &&
                items[i].label.find(opts_.filter) == std::string::npos)
                continue;
            selected.push_back(i);
            if (opts_.points && selected.size() >= opts_.points)
                break;
        }

        if (opts_.list) {
            std::vector<std::string> labels;
            for (std::size_t i : selected)
                labels.push_back(items[i].label);
            sweep_detail::printLabels(labels);
            return {};
        }

        // --jobs builds a sweep-private pool; otherwise an injected
        // pool (tests) or the NVCK_JOBS-sized global one.
        std::unique_ptr<ThreadPool> owned;
        ThreadPool *pool = opts_.pool;
        if (!pool && opts_.jobs)
            pool = (owned = std::make_unique<ThreadPool>(opts_.jobs)).get();
        if (!pool)
            pool = &ThreadPool::global();

        sweep_detail::announceSelection(selected.size(), items.size(),
                                        opts_, pool->workers());

        const Rng base(baseSeed);
        std::vector<SweepOutcome<T>> out(selected.size());
        pool->parallelFor(selected.size(), [&](std::size_t s) {
            const std::size_t i = selected[s];
            Rng rng = base.substream(i);
            const auto t0 = std::chrono::steady_clock::now();
            T value = items[i].fn(rng);
            const auto t1 = std::chrono::steady_clock::now();
            out[s].label = items[i].label;
            out[s].index = i;
            out[s].value = std::move(value);
            out[s].millis =
                std::chrono::duration<double, std::milli>(t1 - t0).count();
        });

        if (opts_.timing) {
            std::vector<std::pair<std::string, double>> times;
            times.reserve(out.size());
            for (const auto &o : out)
                times.emplace_back(o.label, o.millis);
            sweep_detail::printTimings(times, pool->workers());
        }
        return out;
    }

  private:
    struct Item
    {
        std::string label;
        std::function<T(Rng &)> fn;
    };

    std::uint64_t baseSeed;
    SweepOptions opts_;
    std::vector<Item> items;
};

} // namespace nvck

#endif // NVCK_SIM_PARALLEL_HH
