/**
 * @file
 * Crash-point injection harness for the XOR/EUR write path.
 *
 * The paper's write protocol (Section V-D) leaves a window between the
 * XOR-summed data burst (applied inside the chips at burst time) and
 * the code-bit delta drain (held in the volatile EUR until row close).
 * A power cut inside that window leaves the media with new data but
 * stale BCH/RS code bits — or, for a cut mid-burst, with only some
 * chips having latched the data delta at all.
 *
 * CrashInjector drives the bit-accurate rank models through every such
 * window: it snapshots the persistent media image, applies a torn
 * write shaped by an enumerated CrashPoint, optionally kills a chip at
 * the same instant, runs the post-crash recovery pass
 * (PmRank::crashRecovery / DegradedRank::scrub), and checks the
 * ground-truth oracle:
 *
 *   every block must read back as the OLD value, the NEW value, or an
 *   explicitly reported UE — never silent garbage, and a block whose
 *   write completed before the cut (ADR-durable) must never roll back.
 *
 * crashCampaign() fans randomized trials across the ParallelSweep
 * driver; per-point Rng substreams keep the emitted table
 * byte-identical for any worker count.
 */

#ifndef NVCK_SIM_CRASH_HH
#define NVCK_SIM_CRASH_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"
#include "common/rng.hh"
#include "sim/parallel.hh"

namespace nvck {

/** Enumerated power-cut sites along the write path. */
enum class CrashPoint
{
    /** Cut mid-burst: only some chips latched the XOR data delta;
     *  nothing has drained from any EUR yet. */
    MidXorWrite,
    /** Cut after the burst, before row close: every chip applied the
     *  data delta but every code-bit delta still sat in the EUR. */
    MidEurCoalesce,
    /** Cut during the row-close drain: the code delta reached a strict
     *  subset of the chips (drain retires EUR slots one at a time). */
    MidRowCloseDrain,
    /** Cut between blocks of a multi-block persist: earlier blocks are
     *  fully durable, the crash block is torn at one of the three
     *  sites above, later blocks never reached the media. */
    MidMultiBlockPersist,
};

constexpr unsigned numCrashPoints = 4;

/** Stable label for tables, --filter selection, and logs. */
const char *crashPointName(CrashPoint point);

/** Tallies from a batch of crash trials (or one trial). */
struct CrashTally
{
    std::uint64_t trials = 0;
    /** Torn block settled on the pre-crash value (rolled back). */
    std::uint64_t tornOld = 0;
    /** Torn block settled on the intended value (rolled forward). */
    std::uint64_t tornNew = 0;
    /** Torn block reported as an explicit, poisoned UE. */
    std::uint64_t tornUe = 0;
    /** Trials that also lost a whole chip at the cut. */
    std::uint64_t chipKills = 0;
    /** Untouched/durable blocks sacrificed to a reported UE. */
    std::uint64_t collateralUe = 0;
    /** Oracle violations: silent garbage or a durable write rolled
     *  back. Must be zero. */
    std::uint64_t violations = 0;

    CrashTally &operator+=(const CrashTally &other);
};

/** Shape knobs for one randomized trial. */
struct CrashTrialOptions
{
    /** Max blocks in a MidMultiBlockPersist burst (>= 2). */
    unsigned maxBlocks = 4;
    /** Probability that a whole chip dies at the same cut. */
    double chipKillFraction = 0.12;
    /** RS acceptance threshold forwarded to recovery/reads. */
    unsigned threshold = 2;
};

/**
 * Drives one healthy rank through randomized power cuts. The pristine
 * media image is captured once; every trial restores it, applies a
 * torn write shaped by the requested CrashPoint, runs
 * crashRecovery(), and checks the oracle over the whole rank.
 */
class CrashInjector
{
  public:
    /** Snapshot @p rank (already initialized) as the pristine image. */
    explicit CrashInjector(PmRank &rank);

    /** Run one randomized trial at @p point. */
    CrashTally runTrial(CrashPoint point, Rng &rng,
                        const CrashTrialOptions &opts);

  private:
    PmRank &rank;
    RankSnapshot pristine;
    /** Pristine 64B of every block, for the untouched-block oracle. */
    std::vector<std::array<std::uint8_t, blockBytes>> pristineBlocks;
};

/**
 * Degraded-mode counterpart: a rank that already lost a chip takes
 * the same torn writes (data durable, code drain maybe cut) and must
 * recover through the striped-VLEW scrub alone.
 */
class DegradedCrashInjector
{
  public:
    explicit DegradedCrashInjector(DegradedRank &rank);

    CrashTally runTrial(Rng &rng);

  private:
    DegradedRank &rank;
    DegradedSnapshot pristine;
    std::vector<std::array<std::uint8_t, blockBytes>> pristineBlocks;
};

/** Campaign shape; the defaults meet the acceptance bar. */
struct CrashCampaignConfig
{
    std::uint64_t seed = 2018;
    /** Healthy-rank trials, split evenly across the four points. */
    std::uint64_t trials = 10000;
    /** Degraded-mode trials on top of @ref trials. */
    std::uint64_t degradedTrials = 1000;
    /** Rank capacity in 64B blocks (multiple of the VLEW span, 32). */
    unsigned rankBlocks = 64;
    /** Trials per sweep point (parallel work-item granularity). */
    unsigned chunkTrials = 125;
    CrashTrialOptions trial;
};

/** Aggregated campaign outcome, per crash point and in total. */
struct CrashCampaignTotals
{
    std::array<CrashTally, numCrashPoints> points;
    CrashTally degraded;

    CrashTally total() const;
    std::uint64_t
    violations() const
    {
        return total().violations;
    }
};

/**
 * Run the randomized campaign as a ParallelSweep, print the per-point
 * table to @p os, and return the tallies. Output is byte-identical
 * for any worker count at a fixed seed.
 */
CrashCampaignTotals crashCampaign(std::ostream &os,
                                  const SweepOptions &opts,
                                  const CrashCampaignConfig &cfg);

} // namespace nvck

#endif // NVCK_SIM_CRASH_HH
