#include "spare.hh"

#include <algorithm>
#include <string>

#include "chipkill/schemes.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/configs.hh"

namespace nvck {

// SpareChip -----------------------------------------------------------

const char *
spareStateName(SpareState state)
{
    switch (state) {
      case SpareState::Armed:
        return "armed";
      case SpareState::Rebuilding:
        return "rebuilding";
      case SpareState::Active:
        return "active";
      case SpareState::CopyingBack:
        return "copying-back";
      case SpareState::Abandoned:
        return "abandoned";
    }
    return "?";
}

SpareChip::SpareChip(PmRank &pm_rank, unsigned threshold)
    : rank(pm_rank), thresh(threshold)
{
}

void
SpareChip::beginRebuild(unsigned failed_chip)
{
    NVCK_ASSERT(st == SpareState::Armed, "spare already consumed");
    NVCK_ASSERT(failed_chip < rank.chips(), "chip out of range");
    chip = failed_chip;
    cursor = 0;
    st = SpareState::Rebuilding;
    // The failed device is fenced off the bus; its stuck cells leave
    // the array with it (the spare is a fresh device). The lane's
    // stored garbage stays until the rebuild overwrites it.
    rank.clearStuckCells(chip);
}

unsigned
SpareChip::rebuildStep(unsigned max_blocks, std::vector<int> *survivors)
{
    NVCK_ASSERT(st == SpareState::Rebuilding,
                "rebuild step outside a rebuild");
    if (survivors)
        survivors->assign(rank.chips(), 0);
    const unsigned span_blocks = rank.params().blocksPerVlew();
    const unsigned nspans =
        std::max(1u, (max_blocks + span_blocks - 1) / span_blocks);
    const unsigned target =
        std::min(rank.blocks(), cursor + nspans * span_blocks);
    unsigned done = 0;
    while (cursor < target) {
        const unsigned span = cursor / span_blocks;
        std::uint16_t distrust = 0;
        // Latent survivor errors would become silent garbage in the
        // erasure fill (eight erasures spend the whole RS budget), so
        // scrub the survivors' VLEW words first — the same trust rule
        // as bootScrub's rank-wide pass before its wholesale rebuild.
        for (unsigned c = 0; c < rank.chips(); ++c) {
            if (c == chip)
                continue;
            const auto res = scrub.scrubWord(rank, c, span);
            if (res.corrections < 0) {
                distrust |= static_cast<std::uint16_t>(1u << c);
                if (survivors)
                    (*survivors)[c] = -1;
            } else if (res.corrections > 0) {
                survivorBits +=
                    static_cast<std::uint64_t>(res.corrections);
                if (survivors && (*survivors)[c] >= 0)
                    (*survivors)[c] += res.corrections;
            }
        }
        const auto rep =
            rank.rebuildLaneSpan(chip, span, thresh, distrust);
        poisonedCount += rep.blocksPoisoned;
        cursor += span_blocks;
        done += span_blocks;
    }
    if (rebuildDone())
        st = SpareState::Active;
    return done;
}

void
SpareChip::abandon()
{
    st = SpareState::Abandoned;
}

void
SpareChip::beginMigrateBack()
{
    NVCK_ASSERT(st == SpareState::Active,
                "migrate-back needs an active spare");
    // The replacement is a fresh device: the old one's wear damage
    // left the array with it.
    rank.clearStuckCells(chip);
    backCursor = 0;
    st = SpareState::CopyingBack;
}

unsigned
SpareChip::migrateBackStep(unsigned max_blocks)
{
    if (st == SpareState::Active)
        beginMigrateBack();
    NVCK_ASSERT(st == SpareState::CopyingBack,
                "migrate-back outside a copy-back");
    const unsigned span_blocks = rank.params().blocksPerVlew();
    const unsigned nspans =
        std::max(1u, (max_blocks + span_blocks - 1) / span_blocks);
    const unsigned target =
        std::min(rank.blocks(), backCursor + nspans * span_blocks);
    unsigned done = 0;
    while (backCursor < target) {
        const unsigned span = backCursor / span_blocks;
        // Copy-verify: read the spare's lane through its VLEW
        // correction and write the corrected beats to the replacement
        // device — under canonical lane storage, exactly a scrub of
        // the span. Latent spare errors are fixed on the way instead
        // of being copied onto the new chip.
        const auto res = scrub.scrubWord(rank, chip, span);
        if (res.corrections > 0)
            latentBits += static_cast<std::uint64_t>(res.corrections);
        backCursor += span_blocks;
        done += span_blocks;
    }
    if (migrateBackDone())
        st = SpareState::Armed; // re-armed for the next kill
    return done;
}

// Trial ---------------------------------------------------------------

const char *
sparePlanName(SparePlan plan)
{
    switch (plan) {
      case SparePlan::Unarmed:
        return "unarmed";
      case SparePlan::Rebuild:
        return "rebuild";
      case SparePlan::SpareLoss:
        return "spare-loss";
      case SparePlan::Repair:
        return "repair";
    }
    return "?";
}

namespace {

/** The fault stream one hot-sparing trial injects. Events capture
 *  only the driver pointer (plus scalars), so the stack-local
 *  instance fits the event queue's inline capture budget. */
struct SpareDriver
{
    System &sys;
    PmRank &rank;
    RasMirror &mirror;
    Rng rng;
    SparePlan plan;
    unsigned victim = 0;
    bool spareKilled = false;
    bool replaced = false;

    void
    flip(unsigned chip)
    {
        rank.corruptByte(
            chip, static_cast<unsigned>(rng.below(rank.blocks())),
            static_cast<unsigned>(rng.below(chipBeatBytes)),
            static_cast<std::uint8_t>(1u << rng.below(8)));
    }

    void
    transientBurst()
    {
        for (unsigned i = 0; i < 6; ++i)
            flip(static_cast<unsigned>(rng.below(rank.chips())));
    }

    void
    kill()
    {
        rank.failChip(victim, rng);
        mirror.noteKillInjected();
    }

    /**
     * Plan-specific service events, polled on a fixed cadence so the
     * trial replays identically at any worker count: the spare device
     * dies once the rebuild has crossed half the rank (SpareLoss), and
     * the operator swaps the failed chip once the rank is Spared
     * (Repair).
     */
    void
    monitorTick(Tick stop, Tick step)
    {
        RasEngine &eng = mirror.engine();
        if (plan == SparePlan::SpareLoss && !spareKilled &&
            eng.state() == RasState::Rebuilding &&
            eng.rebuildWatermark() >= rank.blocks() / 2) {
            // The spare device dies mid-rebuild: the lane it carries
            // reads back as garbage from here on.
            spareKilled = true;
            rank.failChip(victim, rng);
        }
        if (plan == SparePlan::Repair && !replaced &&
            eng.state() == RasState::Spared) {
            replaced = true;
            eng.chipReplaced();
        }
        if (sys.now() + step < stop) {
            sys.events().scheduleAfter(step, [this, stop, step] {
                monitorTick(stop, step);
            });
        }
    }
};

} // namespace

RasTally
runSpareTrial(const SpareTrialConfig &tc, Rng &rng)
{
    NVCK_ASSERT(tc.rankBlocks >= 64 && tc.rankBlocks % 32 == 0,
                "rank must hold whole VLEW spans");
    RasTally tally;
    tally.trials = 1;

    SystemConfig cfg = SystemConfig::make(
        tc.tech, proposalScheme(runtimeRberFor(tc.tech)), "echo",
        rng.next() | 1);
    cfg.cores = tc.cores;
    cfg.cache.cores = tc.cores;
    cfg.cache.l1Bytes = 8 * 1024;
    cfg.cache.llcBytes = 64 * 1024;
    cfg.cache.llcWays = 8;
    // Same compact shape as the RAS lifecycle campaign: few banks keep
    // the rank mirrorable with real row conflicts, aggressive drain
    // thresholds keep the EUR write path busy.
    cfg.mem.dram.banks = tc.banks;
    cfg.mem.pm.banks = tc.banks;
    cfg.mem.writeMaxAge = nsToTicks(400);
    cfg.mem.writeIdleBurst = 4;
    cfg.mem.writeDrainHigh = 24;
    cfg.mem.writeDrainLow = 8;
    cfg.space.pmBase = 0;
    cfg.space.pmBytes =
        static_cast<std::uint64_t>(tc.rankBlocks) * blockBytes;
    cfg.space.dramBytes = 1u << 20;

    System sys(cfg, std::make_unique<CampaignWorkload>(
                        cfg.space, tc.cores, rng.next()));

    PmRank rank(tc.rankBlocks);
    rank.initialize(rng);
    PersistOracle oracle(tc.rankBlocks);
    {
        std::uint8_t buf[blockBytes];
        for (unsigned b = 0; b < tc.rankBlocks; ++b) {
            rank.goldenBlock(b, buf);
            oracle.setBaseline(b, buf);
        }
    }

    RasConfig ras = tc.ras;
    ras.spareEnabled = (tc.plan != SparePlan::Unarmed);
    // Spare-loss trials model a slow rebuild (a big rank behind a
    // narrow spare bus): pacing is stretched so the spare's death is
    // detected while the rebuild is still running — the abandon path —
    // rather than only after completion via a Spared-state crossing.
    if (tc.plan == SparePlan::SpareLoss &&
        ras.rebuildStepInterval < nsToTicks(300))
        ras.rebuildStepInterval = nsToTicks(300);

    RasMirror mirror(sys, rank, oracle, ras, tc.threshold, rng.next());
    RasEngine &eng = mirror.engine();

    SpareDriver driver{sys,     rank, mirror, Rng(rng.next() | 1),
                       tc.plan};
    driver.victim =
        static_cast<unsigned>(driver.rng.below(rank.chips()));
    auto &eq = sys.events();
    eq.schedule(tc.horizon / 10,
                [d = &driver] { d->transientBurst(); });
    eq.schedule(tc.horizon * 3 / 10, [d = &driver] { d->kill(); });
    eq.schedule(tc.horizon / 5, [d = &driver, stop = tc.horizon] {
        d->monitorTick(stop, nsToTicks(100));
    });

    eng.start();
    sys.start();
    sys.runUntil(tc.horizon);
    const auto transitional = [&eng] {
        switch (eng.state()) {
          case RasState::Draining:
          case RasState::Migrating:
          case RasState::Rebuilding:
          case RasState::MigratingBack:
            return true;
          default:
            return false;
        }
    };
    // A rebuild crossing the horizon (or a fallback/repair detected
    // late) gets bounded extra time; the state machine is otherwise
    // frozen where it stands and judged below.
    if (transitional() ||
        (tc.plan == SparePlan::SpareLoss && !mirror.completed()) ||
        (tc.plan == SparePlan::Repair && !mirror.repaired()))
        sys.runUntil(tc.horizon + tc.slack);

    mirror.finalCheck(tally);

    const RasStats &es = eng.stats();
    const RasMirror::Counts &mc = mirror.counts();
    tally.patrolBursts = es.patrolBursts;
    tally.patrolYields = es.patrolYields;
    tally.scrubBits = es.scrubBitsFound;
    tally.rowAlarms = es.rowAlarms;
    tally.targetedScrubs = es.targetedScrubs;
    tally.kills = es.killsDetected;
    tally.failovers = mirror.completed() ? 1 : 0;
    tally.migrated = es.migratedBlocks;
    tally.drainedAtFailover = es.drainedAtFailover;
    tally.rebuilds = es.rebuildsStarted;
    tally.rebuiltBlocks = es.rebuiltBlocks;
    tally.spared = mirror.spared() ? 1 : 0;
    tally.spareAbandons = es.spareAbandons;
    tally.repairs = es.repairs;
    tally.demandReads = mc.demandReads;
    tally.demandWrites = mc.demandWrites;
    tally.rsFixes = mc.rsFixes;
    tally.vlewFallbacks = mc.vlewFallbacks;
    tally.chipRecovered = mc.chipRecovered;
    tally.degradedReads = mc.degradedReads;
    tally.degradedWrites = mc.degradedWrites;
    tally.sdc = mc.sdc;
    tally.ue += mc.ue;
    if (const SpareChip *sp = mirror.spareChip())
        tally.survivorBits = sp->survivorBitsFixed();

    const std::uint64_t detect = mirror.detectAccesses();
    switch (tc.plan) {
      case SparePlan::Unarmed:
        // The PR-9 baseline: degraded failover must complete.
        if (!mirror.completed())
            ++tally.missedFailovers;
        break;
      case SparePlan::Rebuild:
        // The spare must carry the lane to completion.
        if (!mirror.spared())
            ++tally.missedSpares;
        break;
      case SparePlan::SpareLoss:
        // Whichever route detection took — abandon mid-rebuild, or a
        // crossing right after Spared — the rank must end up fully
        // migrated to the degraded layout.
        if (!mirror.completed())
            ++tally.missedFailovers;
        break;
      case SparePlan::Repair:
        if (!(mirror.repaired() &&
              eng.state() == RasState::Healthy))
            ++tally.missedRepairs;
        break;
    }
    if (mirror.engaged() && detect != UINT64_MAX) {
        tally.detectAccessesMax = detect;
        if (detect > tc.detectAccessBound)
            ++tally.engageOverruns;
    }

    tally.violations = tally.sdc + tally.lostDurable + tally.ue +
                       tally.missedFailovers + tally.missedSpares +
                       tally.missedRepairs + tally.engageOverruns;

    NVCK_ASSERT(sys.pendingStaleAcks() == 0,
                "stale persist acks without a power cut");
    return tally;
}

// Campaign ------------------------------------------------------------

RasTally
SpareTotals::total() const
{
    RasTally sum;
    for (const auto &tech : cells) {
        for (const auto &cell : tech)
            sum += cell;
    }
    return sum;
}

namespace {

/** One sweep point's result: which campaign cell it feeds. */
struct SpareCellResult
{
    unsigned tech = 0;
    unsigned plan = 0;
    RasTally tally;
};

void
spareTallyRow(Table &t, const std::string &label, const RasTally &c)
{
    t.row()
        .cell(label)
        .cell(c.trials)
        .cell(c.kills)
        .cell(c.rebuilds)
        .cell(c.rebuiltBlocks)
        .cell(c.spared)
        .cell(c.spareAbandons)
        .cell(c.repairs)
        .cell(c.survivorBits)
        .cell(c.failovers)
        .cell(c.migrated)
        .cell(c.detectAccessesMax)
        .cell(c.sdc)
        .cell(c.lostDurable)
        .cell(c.ue)
        .cell(c.missedSpares)
        .cell(c.missedRepairs)
        .cell(c.missedFailovers)
        .cell(c.engageOverruns)
        .cell(c.violations);
}

} // namespace

SpareTotals
spareCampaign(std::ostream &os, const SweepOptions &opts,
              const SpareCampaignConfig &cfg)
{
    NVCK_ASSERT(cfg.chunkTrials > 0, "empty campaign chunks");
    static const PmTech techs[numRasTechs] = {PmTech::Reram,
                                              PmTech::Pcm};
    ParallelSweep<SpareCellResult> sweep(cfg.seed, opts);

    const unsigned cells = numRasTechs * numSparePlans;
    unsigned cell = 0;
    for (unsigned ti = 0; ti < numRasTechs; ++ti) {
        for (unsigned pi = 0; pi < numSparePlans; ++pi, ++cell) {
            std::uint64_t remaining =
                cfg.trials / cells +
                (cell < cfg.trials % cells ? 1 : 0);
            for (unsigned chunk = 0; remaining > 0; ++chunk) {
                const auto batch =
                    std::min<std::uint64_t>(remaining, cfg.chunkTrials);
                remaining -= batch;
                sweep.add(
                    pmTechName(techs[ti]) + "/" +
                        sparePlanName(static_cast<SparePlan>(pi)) +
                        " #" + std::to_string(chunk),
                    [&cfg, ti, pi, batch](Rng &rng) {
                        SpareTrialConfig tc = cfg.trial;
                        tc.tech = techs[ti];
                        tc.plan = static_cast<SparePlan>(pi);
                        SpareCellResult r;
                        r.tech = ti;
                        r.plan = pi;
                        for (std::uint64_t t = 0; t < batch; ++t)
                            r.tally += runSpareTrial(tc, rng);
                        return r;
                    });
            }
        }
    }

    SpareTotals totals{};
    for (const auto &out : sweep.run())
        totals.cells[out.value.tech][out.value.plan] += out.value.tally;

    Table t({"spare plan", "trials", "kills", "rebuilds", "rebuilt",
             "spared", "abandons", "repairs", "surv bits", "failover",
             "migrated", "detect", "sdc", "lost", "UE", "no spare",
             "no repair", "no failover", "late", "violations"});
    for (unsigned ti = 0; ti < numRasTechs; ++ti) {
        for (unsigned pi = 0; pi < numSparePlans; ++pi)
            spareTallyRow(t,
                          pmTechName(techs[ti]) + "/" +
                              sparePlanName(
                                  static_cast<SparePlan>(pi)),
                          totals.cells[ti][pi]);
    }
    spareTallyRow(t, "total", totals.total());
    t.print(os);
    return totals;
}

} // namespace nvck
