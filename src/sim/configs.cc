#include "configs.hh"

#include "mem/timing.hh"
#include "reliability/error_model.hh"

namespace nvck {

SystemConfig
SystemConfig::make(PmTech tech, const SchemeTiming &scheme,
                   const std::string &workload, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.seed = seed;
    cfg.scheme = scheme;

    cfg.cache.cores = cfg.cores;
    cfg.cache.omvEnabled = scheme.omvEnabled;

    cfg.mem.dram = ddr4_2400();
    cfg.mem.pm = tech == PmTech::Reram ? reramTiming() : pcmTiming();
    cfg.mem.eurEnabled = scheme.eurEnabled;
    cfg.mem.pmWriteScale = scheme.pmWriteScale;
    cfg.mem.pmWriteExtra = scheme.pmWriteExtra;
    // One internal RMW of the code bits per drained register; charge a
    // write-recovery-sized slot.
    cfg.mem.eurDrainPerReg = cfg.mem.pm.tWR / 4;
    return cfg;
}

double
runtimeRberFor(PmTech tech)
{
    // ReRAM runs at ~7e-5; PCM refreshed hourly runs at 2e-4
    // (Section IV-A). The paper's runtime analysis uses 2e-4 as the
    // stress point; we bind the rate to the technology.
    return tech == PmTech::Reram ? rber::runtimeReram
                                 : rber::runtimePcm3Hourly;
}

std::string
pmTechName(PmTech tech)
{
    return tech == PmTech::Reram ? "ReRAM" : "PCM";
}

} // namespace nvck
