#include "syscrash.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "common/table.hh"

namespace nvck {

const char *
cutSiteName(CutSite site)
{
    switch (site) {
      case CutSite::RandomTick:
        return "random-tick";
      case CutSite::AtPmWrite:
        return "at-pm-write";
      case CutSite::AtRowClose:
        return "at-row-close";
      case CutSite::AtEurDrain:
        return "at-eur-drain";
    }
    return "?";
}

// PersistOracle -------------------------------------------------------

PersistOracle::PersistOracle(unsigned blocks)
    : settledVal(blocks), chains(blocks)
{
}

void
PersistOracle::setBaseline(unsigned block, const std::uint8_t *value)
{
    std::memcpy(settledVal[block].data(), value, blockBytes);
    chains[block].clear();
}

void
PersistOracle::recordBurst(unsigned block, const std::uint8_t *value)
{
    Value v;
    std::memcpy(v.data(), value, blockBytes);
    chains[block].push_back(v);
}

void
PersistOracle::recordDrain(unsigned block)
{
    NVCK_ASSERT(!chains[block].empty(), "drain with no pending burst");
    settledVal[block] = chains[block].back();
    chains[block].clear();
}

unsigned
PersistOracle::pendingCount() const
{
    unsigned n = 0;
    for (const auto &c : chains)
        n += !c.empty();
    return n;
}

const PersistOracle::Value &
PersistOracle::latest(unsigned block) const
{
    if (!chains[block].empty())
        return chains[block].back();
    return settledVal[block];
}

PersistOracle::Verdict
PersistOracle::classify(unsigned block, const std::uint8_t *readback,
                        bool reported_ue) const
{
    if (reported_ue)
        return Verdict::ReportedUe;
    const auto &chain = chains[block];
    if (chain.empty()) {
        // Settled block: an accepted-and-drained write is inside the
        // persistence domain; anything but its exact value is a loss.
        return std::memcmp(readback, settledVal[block].data(),
                           blockBytes) == 0
                   ? Verdict::SettledOk
                   : Verdict::Violation;
    }
    if (std::memcmp(readback, chain.back().data(), blockBytes) == 0)
        return Verdict::TornNew;
    if (std::memcmp(readback, settledVal[block].data(), blockBytes) == 0)
        return Verdict::TornOld;
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        if (std::memcmp(readback, chain[i].data(), blockBytes) == 0)
            return Verdict::TornIntermediate;
    }
    return Verdict::Violation;
}

// CampaignWorkload ----------------------------------------------------

CampaignWorkload::CampaignWorkload(const AddressSpace &space,
                                   unsigned cores, std::uint64_t seed)
{
    NVCK_ASSERT(cores > 0, "workload needs a core");
    const std::uint64_t pm_blocks = space.pmBytes / blockBytes;
    const std::uint64_t dram_blocks = space.dramBytes / blockBytes;
    NVCK_ASSERT(pm_blocks >= cores && dram_blocks >= cores,
                "address space too small to strip per core");
    const Rng base(seed);
    coreStates.resize(cores);
    for (unsigned c = 0; c < cores; ++c) {
        CoreState &cs = coreStates[c];
        cs.rng = base.substream(c);
        cs.stripBlocks = pm_blocks / cores;
        cs.stripBase = space.pmBase +
                       static_cast<Addr>(c) * cs.stripBlocks * blockBytes;
        cs.dramBlocks = dram_blocks / cores;
        cs.dramBase = space.dramBase +
                      static_cast<Addr>(c) * cs.dramBlocks * blockBytes;
        cs.logCursor = cs.rng.below(cs.stripBlocks);
        for (unsigned h = 0; h < 4; ++h)
            cs.hot.push_back(cs.stripBase +
                             cs.rng.below(cs.stripBlocks) * blockBytes);
    }
}

void
CampaignWorkload::refill(CoreState &cs)
{
    auto push = [&cs](TraceOp::Kind kind, Addr addr, bool is_pm,
                      unsigned gap) {
        TraceOp op;
        op.kind = kind;
        op.addr = addr;
        op.isPm = is_pm;
        op.gap = gap;
        cs.ops.push_back(op);
    };
    const auto gap = [&cs] {
        return static_cast<unsigned>(cs.rng.below(24));
    };

    const std::uint64_t pick = cs.rng.below(100);
    if (pick < 55) {
        // Sequential log append: store + clwb per block, one fence
        // per group (the WHISPER-style persist shape).
        const unsigned group = 1 + static_cast<unsigned>(cs.rng.below(4));
        for (unsigned i = 0; i < group; ++i) {
            const Addr a = cs.stripBase +
                           (cs.logCursor % cs.stripBlocks) * blockBytes;
            ++cs.logCursor;
            push(TraceOp::Kind::Store, a, true, gap());
            push(TraceOp::Kind::Clean, a, true, 1);
        }
        TraceOp fence;
        fence.kind = TraceOp::Kind::Fence;
        fence.gap = 1;
        cs.ops.push_back(fence);
    } else if (pick < 70) {
        // Hot-block rewrite: repeated persists to the same block
        // exercise EUR coalescing and write-queue merging.
        const Addr a = cs.hot[cs.rng.below(cs.hot.size())];
        push(TraceOp::Kind::Store, a, true, gap());
        push(TraceOp::Kind::Clean, a, true, 1);
        TraceOp fence;
        fence.kind = TraceOp::Kind::Fence;
        fence.gap = 1;
        cs.ops.push_back(fence);
    } else if (pick < 82) {
        const unsigned n = 2 + static_cast<unsigned>(cs.rng.below(3));
        for (unsigned i = 0; i < n; ++i) {
            const Addr a = cs.stripBase +
                           cs.rng.below(cs.stripBlocks) * blockBytes;
            push(TraceOp::Kind::Load, a, true, gap());
        }
    } else if (pick < 94) {
        const unsigned n = 2 + static_cast<unsigned>(cs.rng.below(3));
        for (unsigned i = 0; i < n; ++i) {
            const Addr a = cs.dramBase +
                           cs.rng.below(cs.dramBlocks) * blockBytes;
            push(cs.rng.chance(0.5) ? TraceOp::Kind::Store
                                    : TraceOp::Kind::Load,
                 a, false, gap());
        }
    } else {
        // Off-CPU span past the 50ns row-idle threshold so the lazy
        // close policy drains open rows.
        TraceOp idle;
        idle.kind = TraceOp::Kind::Idle;
        idle.idleNs = 60.0 + cs.rng.uniform() * 90.0;
        cs.ops.push_back(idle);
    }
}

TraceOp
CampaignWorkload::next(unsigned core)
{
    CoreState &cs = coreStates.at(core);
    while (cs.ops.empty())
        refill(cs);
    const TraceOp op = cs.ops.front();
    cs.ops.pop_front();
    return op;
}

// SysCrashMirror ------------------------------------------------------

namespace {

/** Random chip subset; see CrashInjector for the fix-up rationale. */
std::uint16_t
randomChipMask(Rng &rng, unsigned chips, bool forbid_empty,
               bool forbid_full)
{
    const std::uint16_t full =
        static_cast<std::uint16_t>((1u << chips) - 1);
    std::uint16_t mask = 0;
    for (unsigned c = 0; c < chips; ++c) {
        if (rng.chance(0.5))
            mask |= static_cast<std::uint16_t>(1u << c);
    }
    if (forbid_empty && mask == 0)
        mask = static_cast<std::uint16_t>(1u << rng.below(chips));
    if (forbid_full && mask == full)
        mask &= static_cast<std::uint16_t>(~(1u << rng.below(chips)));
    return mask;
}

/**
 * Intended new 64B payload for a burst: a dense rewrite or a sparse
 * 1-3 bit update (the shape a VLEW rollback can undo); always differs
 * from @p old_data.
 */
void
makePayload(Rng &rng, const std::uint8_t *old_data, std::uint8_t *out)
{
    if (rng.chance(0.5)) {
        for (unsigned i = 0; i < blockBytes; i += 8) {
            const std::uint64_t word = rng.next();
            std::memcpy(out + i, &word, 8);
        }
    } else {
        std::memcpy(out, old_data, blockBytes);
        const unsigned flips = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned f = 0; f < flips; ++f) {
            const unsigned byte =
                static_cast<unsigned>(rng.below(blockBytes));
            out[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        }
    }
    if (std::memcmp(out, old_data, blockBytes) == 0)
        out[0] ^= 1u;
}

} // namespace

SysCrashMirror::SysCrashMirror(System &s, PmRank &r, PersistOracle &o,
                               CutSite st, std::uint64_t occ,
                               std::uint64_t value_seed)
    : sys(s), rank(r), oracle(o), site(st), occurrence(occ),
      rng(value_seed)
{
    const MemControllerConfig &mc = sys.config().mem;
    NVCK_ASSERT(mc.eurEnabled, "campaign needs the EUR write path");
    const unsigned banks = mc.pm.banks;
    const unsigned slots =
        mc.pm.rowBytes / (mc.dataChips * mc.vlewDataBytes);
    NVCK_ASSERT(banks > 0 && slots > 0, "degenerate PM geometry");
    pendingSlots.assign(
        banks, std::vector<std::vector<unsigned>>(slots));
    pendingChunk.assign(banks, std::vector<std::int64_t>(slots, -1));

    CrashHooks hooks;
    hooks.onPmWrite = [this](Addr a, unsigned bank, unsigned slot) {
        onPmWrite(a, bank, slot);
    };
    hooks.onEurDrain = [this](unsigned bank, unsigned slot) {
        onEurDrain(bank, slot);
    };
    hooks.onRowClose = [this](unsigned bank) { onRowClose(bank); };
    sys.memory().setCrashHooks(std::move(hooks));
}

unsigned
SysCrashMirror::blockOf(Addr addr) const
{
    const AddressSpace &space = sys.config().space;
    NVCK_ASSERT(addr >= space.pmBase, "PM write below the PM region");
    const std::uint64_t block = (addr - space.pmBase) / blockBytes;
    NVCK_ASSERT(block < rank.blocks(),
                "PM write beyond the mirrored rank");
    return static_cast<unsigned>(block);
}

std::uint16_t
SysCrashMirror::partialChipMask()
{
    return randomChipMask(rng, rank.chips(), true, true);
}

void
SysCrashMirror::burst(unsigned block, std::uint16_t data_mask)
{
    // The controller XORs against the OMV — the latest write intent —
    // so the new payload chains off the latest pending value.
    std::uint8_t value[blockBytes];
    makePayload(rng, oracle.latest(block).data(), value);
    rank.applyTornWrite(block, value, data_mask, 0);
    oracle.recordBurst(block, value);
}

void
SysCrashMirror::onPmWrite(Addr addr, unsigned bank, unsigned slot)
{
    if (cut)
        return;
    ++burstCount;
    const unsigned block = blockOf(addr);
    const bool tearing =
        site == CutSite::AtPmWrite && burstCount == occurrence;
    const std::uint16_t full =
        static_cast<std::uint16_t>((1u << rank.chips()) - 1);
    burst(block, tearing ? partialChipMask() : full);

    auto &pending = pendingSlots.at(bank).at(slot);
    const MemControllerConfig &mc = sys.config().mem;
    const std::int64_t chunk =
        block / (mc.vlewDataBytes / chipBeatBytes);
    if (pending.empty())
        pendingChunk[bank][slot] = chunk;
    else
        // Open-row exclusivity: one register coalesces one VLEW chunk
        // at a time; a conflicting chunk must have drained at the row
        // switch before this burst.
        NVCK_ASSERT(pendingChunk[bank][slot] == chunk,
                    "EUR register coalescing across chunks");
    if (std::find(pending.begin(), pending.end(), block) ==
        pending.end())
        pending.push_back(block);

    if (tearing) {
        trig = true;
        cutNow();
    }
}

void
SysCrashMirror::onEurDrain(unsigned bank, unsigned slot)
{
    if (cut)
        return;
    ++drainCount;
    auto &pending = pendingSlots.at(bank).at(slot);
    NVCK_ASSERT(!pending.empty(),
                "EUR drain for a register with no mirrored bursts");
    if (site == CutSite::AtEurDrain && drainCount == occurrence) {
        // Torn mid-drain: a strict chip subset retired the register's
        // coalesced code delta before the cut. The blocks stay pending
        // — recovery decides old/new/UE.
        const std::uint16_t mask = partialChipMask();
        for (unsigned b : pending)
            rank.drainCodeBits(b, oracle.settled(b).data(), mask);
        trig = true;
        cutNow();
        return;
    }
    for (unsigned b : pending) {
        rank.drainCodeBits(b, oracle.settled(b).data());
        oracle.recordDrain(b);
    }
    pending.clear();
    pendingChunk[bank][slot] = -1;
}

void
SysCrashMirror::onRowClose(unsigned bank)
{
    if (cut)
        return;
    (void)bank;
    ++rowCloseCount;
    if (site == CutSite::AtRowClose && rowCloseCount == occurrence) {
        // Cut before any register retires: the whole row's EUR state
        // dies; the subsequent onEurDrain calls see the frozen mirror.
        trig = true;
        cutNow();
    }
}

void
SysCrashMirror::cutNow()
{
    if (cut)
        return;
    cut = true;
    // ADR stored energy flushes the queued PM writes' data bursts in
    // full; their code deltas die in the EUR like everyone else's.
    const std::uint16_t full =
        static_cast<std::uint16_t>((1u << rank.chips()) - 1);
    for (Addr a : sys.memory().queuedPmWrites()) {
        ++flushCount;
        burst(blockOf(a), full);
    }
    sys.requestHalt();
}

// Trial ---------------------------------------------------------------

SysCrashTally &
SysCrashTally::operator+=(const SysCrashTally &other)
{
    trials += other.trials;
    cutsAtSite += other.cutsAtSite;
    bursts += other.bursts;
    drains += other.drains;
    flushedAtCut += other.flushedAtCut;
    pendingAtCut += other.pendingAtCut;
    tornOld += other.tornOld;
    tornNew += other.tornNew;
    tornIntermediate += other.tornIntermediate;
    tornUe += other.tornUe;
    collateralUe += other.collateralUe;
    chipKills += other.chipKills;
    staleAcksAbsorbed += other.staleAcksAbsorbed;
    violations += other.violations;
    return *this;
}

namespace {

std::uint64_t
occurrenceFor(CutSite site, Rng &rng)
{
    switch (site) {
      case CutSite::RandomTick:
        return 0;
      case CutSite::AtPmWrite:
        return 1 + rng.below(48);
      case CutSite::AtRowClose:
        return 1 + rng.below(6);
      case CutSite::AtEurDrain:
        return 1 + rng.below(12);
    }
    return 0;
}

} // namespace

SysCrashTally
runSysCrashTrial(const SysCrashTrialConfig &tc, Rng &rng)
{
    NVCK_ASSERT(tc.rankBlocks >= 32 && tc.rankBlocks % 32 == 0,
                "rank must hold whole VLEW spans");
    SysCrashTally tally;
    tally.trials = 1;

    SystemConfig cfg = SystemConfig::make(
        tc.tech, proposalScheme(runtimeRberFor(tc.tech)), "echo",
        rng.next() | 1);
    cfg.cores = tc.cores;
    cfg.cache.cores = tc.cores;
    cfg.cache.l1Bytes = 8 * 1024;
    cfg.cache.llcBytes = 64 * 1024;
    cfg.cache.llcWays = 8;
    // Few banks keep the whole rank mirrorable at 2 rows per bank so
    // row conflicts (and therefore EUR drains) happen within a short
    // horizon; aggressive drain thresholds keep bursts flowing.
    cfg.mem.dram.banks = tc.banks;
    cfg.mem.pm.banks = tc.banks;
    cfg.mem.writeMaxAge = nsToTicks(400);
    cfg.mem.writeIdleBurst = 4;
    cfg.mem.writeDrainHigh = 24;
    cfg.mem.writeDrainLow = 8;
    cfg.space.pmBase = 0;
    cfg.space.pmBytes =
        static_cast<std::uint64_t>(tc.rankBlocks) * blockBytes;
    cfg.space.dramBytes = 1u << 20;

    System sys(cfg, std::make_unique<CampaignWorkload>(
                        cfg.space, tc.cores, rng.next()));

    PmRank rank(tc.rankBlocks);
    rank.initialize(rng);
    PersistOracle oracle(tc.rankBlocks);
    {
        std::uint8_t buf[blockBytes];
        for (unsigned b = 0; b < tc.rankBlocks; ++b) {
            rank.goldenBlock(b, buf);
            oracle.setBaseline(b, buf);
        }
    }

    SysCrashMirror mirror(sys, rank, oracle, tc.site,
                          occurrenceFor(tc.site, rng), rng.next());

    sys.start();
    if (tc.site == CutSite::RandomTick) {
        const Tick cut_at =
            tc.horizon / 4 + rng.below(tc.horizon - tc.horizon / 4);
        sys.runUntil(cut_at);
    } else {
        sys.runUntil(tc.horizon);
    }

    // A hook cut halted the loop mid-event; otherwise we reached the
    // tick (or horizon fallback) with the machine still alive and cut
    // between events.
    const bool between_events = !mirror.cutDone();
    if (between_events)
        mirror.cutNow();
    else
        tally.cutsAtSite = 1;

    const std::uint64_t flushed = mirror.flushedAtCut();
    const PowerFailReport pf = sys.powerFail();
    if (between_events) {
        // No events ran between the mirror's queue capture and the
        // real cut: the controller's ADR flush must match it exactly.
        // (After a mid-event hook cut the in-flight schedule pass may
        // still issue captured writes before the halt lands — same
        // media outcome, smaller queue.)
        NVCK_ASSERT(pf.controller.pmWritesFlushed == flushed,
                    "ADR flush diverged from the mirrored queue");
    }

    if (rng.chance(tc.chipKillFraction)) {
        rank.failChip(static_cast<unsigned>(rng.below(rank.chips())),
                      rng);
        tally.chipKills = 1;
    }

    rank.crashRecovery(tc.threshold);

    tally.bursts = mirror.bursts();
    tally.drains = mirror.drains();
    tally.flushedAtCut = flushed;
    tally.pendingAtCut = oracle.pendingCount();

    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < tc.rankBlocks; ++b) {
        const auto read = rank.readBlock(b, out, tc.threshold);
        switch (oracle.classify(b, out,
                                read.path == ReadPath::Failed)) {
          case PersistOracle::Verdict::SettledOk:
            break;
          case PersistOracle::Verdict::TornOld:
            ++tally.tornOld;
            break;
          case PersistOracle::Verdict::TornNew:
            ++tally.tornNew;
            break;
          case PersistOracle::Verdict::TornIntermediate:
            ++tally.tornIntermediate;
            break;
          case PersistOracle::Verdict::ReportedUe:
            if (oracle.pending(b))
                ++tally.tornUe;
            else
                ++tally.collateralUe;
            break;
          case PersistOracle::Verdict::Violation:
            ++tally.violations;
            break;
        }
    }

    if (tc.rebootDrive) {
        // Drive the rebooted machine: stranded request chains complete
        // against the revived controller and their orphaned persist
        // acks must be absorbed (never underflow) by the stale-ack
        // ledger. The mirror stays frozen — the media image and its
        // classification above are final.
        const std::size_t stale0 = sys.pendingStaleAcks();
        NVCK_ASSERT(stale0 == pf.persistsInFlight,
                    "stale-ack ledger out of step with the cut report");
        sys.runUntil(sys.now() + tc.horizon / 4);
        const std::size_t stale1 = sys.pendingStaleAcks();
        NVCK_ASSERT(stale1 <= stale0, "stale acks grew after reboot");
        tally.staleAcksAbsorbed = stale0 - stale1;
    }
    return tally;
}

// Campaign ------------------------------------------------------------

SysCrashTally
SysCrashTotals::total() const
{
    SysCrashTally sum;
    for (const auto &tech : cells) {
        for (const auto &cell : tech)
            sum += cell;
    }
    return sum;
}

namespace {

/** One sweep point's result: which campaign cell it feeds. */
struct CellResult
{
    unsigned tech = 0;
    unsigned site = 0;
    SysCrashTally tally;
};

void
tallyRow(Table &t, const std::string &label, const SysCrashTally &c)
{
    t.row()
        .cell(label)
        .cell(c.trials)
        .cell(c.cutsAtSite)
        .cell(c.bursts)
        .cell(c.drains)
        .cell(c.flushedAtCut)
        .cell(c.pendingAtCut)
        .cell(c.tornOld)
        .cell(c.tornNew)
        .cell(c.tornIntermediate)
        .cell(c.tornUe)
        .cell(c.collateralUe)
        .cell(c.chipKills)
        .cell(c.staleAcksAbsorbed)
        .cell(c.violations);
}

} // namespace

SysCrashTotals
systemCrashCampaign(std::ostream &os, const SweepOptions &opts,
                    const SysCrashCampaignConfig &cfg)
{
    NVCK_ASSERT(cfg.chunkTrials > 0, "empty campaign chunks");
    static const PmTech techs[numSysCrashTechs] = {PmTech::Reram,
                                                   PmTech::Pcm};
    ParallelSweep<CellResult> sweep(cfg.seed, opts);

    const unsigned cells = numSysCrashTechs * numCutSites;
    unsigned cell = 0;
    for (unsigned ti = 0; ti < numSysCrashTechs; ++ti) {
        for (unsigned si = 0; si < numCutSites; ++si, ++cell) {
            std::uint64_t remaining =
                cfg.trials / cells +
                (cell < cfg.trials % cells ? 1 : 0);
            for (unsigned chunk = 0; remaining > 0; ++chunk) {
                const auto batch =
                    std::min<std::uint64_t>(remaining, cfg.chunkTrials);
                remaining -= batch;
                sweep.add(
                    pmTechName(techs[ti]) + "/" +
                        cutSiteName(static_cast<CutSite>(si)) + " #" +
                        std::to_string(chunk),
                    [&cfg, ti, si, batch](Rng &rng) {
                        SysCrashTrialConfig tc = cfg.trial;
                        tc.tech = techs[ti];
                        tc.site = static_cast<CutSite>(si);
                        CellResult r;
                        r.tech = ti;
                        r.site = si;
                        for (std::uint64_t t = 0; t < batch; ++t)
                            r.tally += runSysCrashTrial(tc, rng);
                        return r;
                    });
            }
        }
    }

    SysCrashTotals totals{};
    for (const auto &out : sweep.run())
        totals.cells[out.value.tech][out.value.site] += out.value.tally;

    Table t({"cut site", "trials", "@site", "bursts", "drains",
             "flushed", "pending", "-> old", "-> new", "-> mid",
             "-> UE", "collateral", "kills", "stale acks",
             "violations"});
    for (unsigned ti = 0; ti < numSysCrashTechs; ++ti) {
        for (unsigned si = 0; si < numCutSites; ++si)
            tallyRow(t,
                     pmTechName(techs[ti]) + "/" +
                         cutSiteName(static_cast<CutSite>(si)),
                     totals.cells[ti][si]);
    }
    tallyRow(t, "total", totals.total());
    t.print(os);
    return totals;
}

} // namespace nvck
