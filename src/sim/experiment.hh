/**
 * @file
 * Experiment runner: warm up a System, measure for a fixed window while
 * periodically sampling cache occupancy, and report the metrics the
 * paper's figures need. For the proposal, runs the two-pass protocol
 * from Section VI: a characterization pass measures the workload's C
 * factor (Fig 15), which then sets the iso-endurance write-latency
 * inflation for the evaluation pass.
 */

#ifndef NVCK_SIM_EXPERIMENT_HH
#define NVCK_SIM_EXPERIMENT_HH

#include <string>

#include "sim/system.hh"

namespace nvck {

/** Run-control parameters. */
struct RunControl
{
    Tick warmup = nsToTicks(150000);   //!< 150us functional warmup
    Tick measure = nsToTicks(400000);  //!< 400us measured window
    Tick samplePeriod = nsToTicks(5000);
};

/** Metrics from one measured run. */
struct RunMetrics
{
    std::string workload;
    std::string scheme;
    std::string tech;

    double ipc = 0.0;     //!< aggregate IPC across cores
    double mflops = 0.0;  //!< for SPLASH-style workloads
    /** The figure metric: IPC for WHISPER, FLOPS for SPLASH. */
    double perf = 0.0;

    double cFactor = 0.0;        //!< Fig 15
    double omvHitRate = 1.0;     //!< Fig 18
    double dirtyPmFraction = 0.0; //!< Fig 10 (time-averaged)
    double omvFraction = 0.0;    //!< OMV capacity overhead

    // Off-chip access breakdown (Fig 14).
    std::uint64_t pmReads = 0, pmWrites = 0;
    std::uint64_t dramReads = 0, dramWrites = 0;
    std::uint64_t overheadReads = 0, overheadWrites = 0;

    std::uint64_t vlewFetches = 0;
    std::uint64_t oldDataFetches = 0;
    double avgReadLatencyNs = 0.0;
    double avgWriteLatencyNs = 0.0;
    double rowHitRate = 0.0;
};

/** Run one configured system to completion of the measure window. */
RunMetrics runOnce(const SystemConfig &config,
                   const RunControl &rc = RunControl{});

/**
 * Full proposal evaluation for one workload/technology: pass 1
 * characterizes C with the proposal's machinery on (but no write
 * inflation); pass 2 applies 1 + 33/8*C (+20ns) and measures.
 */
RunMetrics runProposal(PmTech tech, const std::string &workload,
                       std::uint64_t seed = 1,
                       const RunControl &rc = RunControl{});

/** Baseline (bit-error-only) run for the same workload/technology. */
RunMetrics runBaseline(PmTech tech, const std::string &workload,
                       std::uint64_t seed = 1,
                       const RunControl &rc = RunControl{});

} // namespace nvck

#endif // NVCK_SIM_EXPERIMENT_HH
