#include "crash.hh"

#include <cstring>
#include <string>

#include "common/log.hh"
#include "common/table.hh"

namespace nvck {

const char *
crashPointName(CrashPoint point)
{
    switch (point) {
      case CrashPoint::MidXorWrite:
        return "mid-xor-write";
      case CrashPoint::MidEurCoalesce:
        return "mid-eur-coalesce";
      case CrashPoint::MidRowCloseDrain:
        return "mid-row-close-drain";
      case CrashPoint::MidMultiBlockPersist:
        return "mid-multi-block-persist";
    }
    return "?";
}

CrashTally &
CrashTally::operator+=(const CrashTally &other)
{
    trials += other.trials;
    tornOld += other.tornOld;
    tornNew += other.tornNew;
    tornUe += other.tornUe;
    chipKills += other.chipKills;
    collateralUe += other.collateralUe;
    violations += other.violations;
    return *this;
}

namespace {

/**
 * Random chip subset as a bitmask over @p chips chips. The fix-ups
 * keep the mask meaningful for its crash point: a burst that latched
 * nowhere is no write at all, and a mask covering every chip is a
 * completed phase, not a torn one.
 */
std::uint16_t
randomChipMask(Rng &rng, unsigned chips, bool forbid_empty,
               bool forbid_full)
{
    const std::uint16_t full =
        static_cast<std::uint16_t>((1u << chips) - 1);
    std::uint16_t mask = 0;
    for (unsigned c = 0; c < chips; ++c) {
        if (rng.chance(0.5))
            mask |= static_cast<std::uint16_t>(1u << c);
    }
    if (forbid_empty && mask == 0)
        mask = static_cast<std::uint16_t>(1u << rng.below(chips));
    if (forbid_full && mask == full)
        mask &= static_cast<std::uint16_t>(~(1u << rng.below(chips)));
    return mask;
}

/**
 * Generate the intended new 64B value: either a dense rewrite (fresh
 * random bytes) or a sparse update (1-3 bit flips — the shape that
 * fits a VLEW rollback). Always differs from @p old_data.
 */
void
makeNewData(Rng &rng, const std::uint8_t *old_data, std::uint8_t *out)
{
    if (rng.chance(0.5)) {
        for (unsigned i = 0; i < blockBytes; i += 8) {
            const std::uint64_t word = rng.next();
            std::memcpy(out + i, &word, 8);
        }
    } else {
        std::memcpy(out, old_data, blockBytes);
        const unsigned flips = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned f = 0; f < flips; ++f) {
            const unsigned byte =
                static_cast<unsigned>(rng.below(blockBytes));
            out[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        }
    }
    if (std::memcmp(out, old_data, blockBytes) == 0)
        out[0] ^= 1u; // flips cancelled (or the RNG matched old)
}

/** What the oracle expects of one written block. */
struct WrittenBlock
{
    unsigned block = 0;
    std::array<std::uint8_t, blockBytes> oldData;
    std::array<std::uint8_t, blockBytes> newData;
    /** Completed before the cut (ADR-durable): must never roll back. */
    bool durable = false;
};

} // namespace

CrashInjector::CrashInjector(PmRank &r) : rank(r), pristine(r.snapshot())
{
    pristineBlocks.resize(rank.blocks());
    for (unsigned b = 0; b < rank.blocks(); ++b)
        rank.goldenBlock(b, pristineBlocks[b].data());
}

CrashTally
CrashInjector::runTrial(CrashPoint point, Rng &rng,
                        const CrashTrialOptions &opts)
{
    rank.restore(pristine);
    const unsigned chips = rank.chips();
    const std::uint16_t full_mask =
        static_cast<std::uint16_t>((1u << chips) - 1);

    // Pick the written blocks: one torn block, preceded by durable
    // writes when the cut lands between blocks of a larger persist.
    unsigned count = 1;
    CrashPoint torn_point = point;
    if (point == CrashPoint::MidMultiBlockPersist) {
        NVCK_ASSERT(opts.maxBlocks >= 2, "multi-block needs >= 2");
        count = 2 + static_cast<unsigned>(rng.below(opts.maxBlocks - 1));
        torn_point = static_cast<CrashPoint>(rng.below(3));
    }
    std::vector<WrittenBlock> written;
    std::vector<int> role(rank.blocks(), -1);
    while (written.size() < count) {
        const unsigned b = static_cast<unsigned>(rng.below(rank.blocks()));
        if (role[b] >= 0)
            continue;
        role[b] = static_cast<int>(written.size());
        WrittenBlock w;
        w.block = b;
        w.oldData = pristineBlocks[b];
        makeNewData(rng, w.oldData.data(), w.newData.data());
        w.durable = written.size() + 1 < count;
        written.push_back(w);
    }

    for (const auto &w : written) {
        if (w.durable) {
            rank.writeBlock(w.block, w.newData.data());
            continue;
        }
        std::uint16_t data_mask = full_mask;
        std::uint16_t code_mask = 0;
        switch (torn_point) {
          case CrashPoint::MidXorWrite:
            data_mask = randomChipMask(rng, chips, true, true);
            break;
          case CrashPoint::MidEurCoalesce:
            break; // full data, nothing drained
          case CrashPoint::MidRowCloseDrain:
            code_mask = randomChipMask(rng, chips, true, true);
            break;
          case CrashPoint::MidMultiBlockPersist:
            NVCK_PANIC("torn sub-point cannot recurse");
        }
        rank.applyTornWrite(w.block, w.newData.data(), data_mask,
                            code_mask);
    }

    CrashTally tally;
    tally.trials = 1;
    if (rng.chance(opts.chipKillFraction)) {
        rank.failChip(static_cast<unsigned>(rng.below(chips)), rng);
        tally.chipKills = 1;
    }

    rank.crashRecovery(opts.threshold);

    // Ground-truth oracle over the whole rank.
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto read = rank.readBlock(b, out, opts.threshold);
        const WrittenBlock *w = role[b] >= 0 ? &written[role[b]] : nullptr;
        if (read.path == ReadPath::Failed) {
            // Explicitly reported loss — legal everywhere, tallied
            // against the torn block or as collateral damage.
            if (w && !w->durable)
                ++tally.tornUe;
            else
                ++tally.collateralUe;
            continue;
        }
        if (!w) {
            if (std::memcmp(out, pristineBlocks[b].data(), blockBytes))
                ++tally.violations;
        } else if (w->durable) {
            // An accepted PM write is inside the ADR domain: anything
            // but the new value (or a reported UE) breaks persistence.
            if (std::memcmp(out, w->newData.data(), blockBytes))
                ++tally.violations;
        } else if (std::memcmp(out, w->newData.data(), blockBytes) == 0) {
            ++tally.tornNew;
        } else if (std::memcmp(out, w->oldData.data(), blockBytes) == 0) {
            ++tally.tornOld;
        } else {
            ++tally.violations;
        }
    }
    return tally;
}

DegradedCrashInjector::DegradedCrashInjector(DegradedRank &r)
    : rank(r), pristine(r.snapshot())
{
    pristineBlocks.resize(rank.blocks());
    for (unsigned b = 0; b < rank.blocks(); ++b)
        rank.goldenBlock(b, pristineBlocks[b].data());
}

CrashTally
DegradedCrashInjector::runTrial(Rng &rng)
{
    rank.restore(pristine);
    const unsigned block = static_cast<unsigned>(rng.below(rank.blocks()));
    std::array<std::uint8_t, blockBytes> old_data = pristineBlocks[block];
    std::array<std::uint8_t, blockBytes> new_data;
    makeNewData(rng, old_data.data(), new_data.data());

    // Degraded mode has no RS tier: the only torn shape left is the
    // EUR window (data durable, striped-VLEW code delta lost).
    rank.applyTornWrite(block, new_data.data(), false);
    rank.scrub();

    CrashTally tally;
    tally.trials = 1;
    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        const auto read = rank.readBlock(b, out);
        if (read.failed) {
            if (b == block)
                ++tally.tornUe;
            else
                ++tally.collateralUe;
            continue;
        }
        if (b != block) {
            if (std::memcmp(out, pristineBlocks[b].data(), blockBytes))
                ++tally.violations;
        } else if (std::memcmp(out, new_data.data(), blockBytes) == 0) {
            ++tally.tornNew;
        } else if (std::memcmp(out, old_data.data(), blockBytes) == 0) {
            ++tally.tornOld;
        } else {
            ++tally.violations;
        }
    }
    return tally;
}

CrashTally
CrashCampaignTotals::total() const
{
    CrashTally sum;
    for (const auto &p : points)
        sum += p;
    sum += degraded;
    return sum;
}

namespace {

/** One sweep point's result: which table row it feeds, plus tallies. */
struct ChunkResult
{
    int point = -1; //!< CrashPoint index; -1 = degraded mode
    CrashTally tally;
};

void
tallyRow(Table &t, const std::string &label, const CrashTally &c)
{
    t.row()
        .cell(label)
        .cell(c.trials)
        .cell(c.tornOld)
        .cell(c.tornNew)
        .cell(c.tornUe)
        .cell(c.chipKills)
        .cell(c.collateralUe)
        .cell(c.violations);
}

} // namespace

CrashCampaignTotals
crashCampaign(std::ostream &os, const SweepOptions &opts,
              const CrashCampaignConfig &cfg)
{
    NVCK_ASSERT(cfg.chunkTrials > 0, "empty campaign chunks");
    ParallelSweep<ChunkResult> sweep(cfg.seed, opts);

    for (unsigned p = 0; p < numCrashPoints; ++p) {
        const auto point = static_cast<CrashPoint>(p);
        std::uint64_t remaining =
            cfg.trials / numCrashPoints +
            (p < cfg.trials % numCrashPoints ? 1 : 0);
        for (unsigned chunk = 0; remaining > 0; ++chunk) {
            const auto batch =
                std::min<std::uint64_t>(remaining, cfg.chunkTrials);
            remaining -= batch;
            sweep.add(std::string(crashPointName(point)) + " #" +
                          std::to_string(chunk),
                      [&cfg, point, batch](Rng &rng) {
                          PmRank rank(cfg.rankBlocks);
                          rank.initialize(rng);
                          CrashInjector injector(rank);
                          ChunkResult r;
                          r.point = static_cast<int>(point);
                          for (std::uint64_t t = 0; t < batch; ++t)
                              r.tally += injector.runTrial(point, rng,
                                                           cfg.trial);
                          return r;
                      });
        }
    }
    std::uint64_t remaining = cfg.degradedTrials;
    for (unsigned chunk = 0; remaining > 0; ++chunk) {
        const auto batch =
            std::min<std::uint64_t>(remaining, cfg.chunkTrials);
        remaining -= batch;
        sweep.add("degraded-eur-window #" + std::to_string(chunk),
                  [&cfg, batch](Rng &rng) {
                      DegradedRank rank(cfg.rankBlocks);
                      rank.initialize(rng);
                      DegradedCrashInjector injector(rank);
                      ChunkResult r;
                      for (std::uint64_t t = 0; t < batch; ++t)
                          r.tally += injector.runTrial(rng);
                      return r;
                  });
    }

    CrashCampaignTotals totals;
    for (const auto &out : sweep.run()) {
        if (out.value.point < 0)
            totals.degraded += out.value.tally;
        else
            totals.points[out.value.point] += out.value.tally;
    }

    Table t({"crash point", "trials", "-> old", "-> new",
             "-> reported UE", "chip kills", "collateral UE",
             "violations"});
    for (unsigned p = 0; p < numCrashPoints; ++p)
        tallyRow(t, crashPointName(static_cast<CrashPoint>(p)),
                 totals.points[p]);
    tallyRow(t, "degraded-eur-window", totals.degraded);
    tallyRow(t, "total", totals.total());
    t.print(os);
    // The verdict block is the caller's: the oracle-checked benches
    // share it (with its replay hint) through bench_common.hh.
    return totals;
}

} // namespace nvck
