/**
 * @file
 * Hot-spare chip: the serviceability half of the RAS story.
 *
 * The paper's Section V leaves a rank that lost a chip in the
 * storage-degraded striped-VLEW layout until the DIMM is serviced;
 * real chipkill deployments (the IBM chipkill lineage, Bamboo-ECC
 * style chip retirement) instead provision a spare device per rank and
 * fail over to it, restoring full code strength without downtime:
 *
 *  - **rebuild**: on a kill crossing the RasEngine drains the EUR
 *    state and, when a spare is armed, rebuilds the dead chip's lanes
 *    onto it span by span as paced events under live traffic — each
 *    span's survivors are scrubbed first (their VLEWs vouch for the
 *    beats), then the missing beats are RS-erasure-filled and the
 *    lane's VLEW code is re-encoded, the same trust rule as
 *    PmRank::bootScrub(). A span whose survivors cannot be vouched
 *    for is poisoned (reported UE), never silently version-mixed;
 *  - **repair / migrate-back**: when the operator replaces the failed
 *    device (RasEngine::chipReplaced), the spare's contents are
 *    copied back span by span through the VLEW correction path and
 *    the spare re-arms. On completion the rank is bit-identical to
 *    one that never failed (the differential test pins this);
 *  - **fallback**: a spare that itself decays mid-rebuild is
 *    abandoned and the engine falls back to the PR-9 degraded
 *    failover — no lost durable writes either way.
 *
 * Modelling rule (canonical lane storage): a lane's contents always
 * live in PmRank's chipStore; *which physical device* backs the lane
 * — original, spare, or replacement — is engine/SpareChip state.
 * Writes therefore flow through the normal XOR paths untouched, and
 * device swaps are modelled as what they change on the media: stuck
 * cells leave with the failed device (clearStuckCells), garbage stays
 * until the rebuild fills it, spare decay is injected onto the lane.
 *
 * The spareCampaign drives kill -> rebuild -> second-kill-mid-rebuild
 * -> repair -> migrate-back fault plans through live 2-core workloads
 * against the persist oracle, mirroring rasCampaign.
 */

#ifndef NVCK_SIM_SPARE_HH
#define NVCK_SIM_SPARE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "chipkill/pm_rank.hh"
#include "chipkill/scrub.hh"
#include "sim/ras.hh"

namespace nvck {

/** Where the spare device stands. */
enum class SpareState
{
    Armed,       //!< provisioned, unused
    Rebuilding,  //!< filling with the dead chip's reconstructed lanes
    Active,      //!< carrying the lane at full code strength
    CopyingBack, //!< migrating back to the replacement device
    Abandoned,   //!< failed mid-rebuild; degraded failover took over
};

const char *spareStateName(SpareState state);

/**
 * Bit-level model of the rank's spare device. Owns the rebuild and
 * migrate-back cursors; the RasEngine owns pacing and policy.
 */
class SpareChip
{
  public:
    /**
     * @param pm_rank the rank the spare is provisioned for.
     * @param threshold RS acceptance threshold for erasure fills.
     */
    SpareChip(PmRank &pm_rank, unsigned threshold);

    SpareState state() const { return st; }
    /** Lane (chip index) the spare serves once engaged. */
    unsigned servedChip() const { return chip; }
    /** Blocks below this index are already rebuilt onto the spare. */
    unsigned watermark() const { return cursor; }
    /** Blocks below this index are already copied back. */
    unsigned backWatermark() const { return backCursor; }
    bool rebuildDone() const { return cursor >= rank.blocks(); }
    bool migrateBackDone() const
    {
        return backCursor >= rank.blocks();
    }

    /** Blocks the rebuild had to poison (reported UE). */
    std::uint64_t poisonedBlocks() const { return poisonedCount; }
    /** Survivor bits the pre-fill scrubs corrected. */
    std::uint64_t survivorBitsFixed() const { return survivorBits; }
    /** Latent lane bits the migrate-back copy-verify corrected. */
    std::uint64_t latentBitsFixed() const { return latentBits; }

    /**
     * Engage the spare for @p failed_chip. The failed device is
     * fenced off the bus, taking its stuck cells with it; the lane
     * reads as garbage until the rebuild fills it.
     */
    void beginRebuild(unsigned failed_chip);

    /**
     * Rebuild up to @p max_blocks more blocks, rounded up to whole
     * VLEW spans (at least one span per call). Per span: scrub every
     * survivor's VLEW word (corrections land in @p survivors, -1 for
     * uncorrectable, same convention as the patrol callback), then
     * RS-erasure-fill the dead lane and re-encode its code bits. A
     * span with an unvouched survivor is poisoned instead of filled.
     * Returns the blocks processed.
     */
    unsigned rebuildStep(unsigned max_blocks,
                         std::vector<int> *survivors = nullptr);

    /** The spare died mid-rebuild; the degraded fallback owns the
     *  rank now. */
    void abandon();

    /** Operator replaced the failed device: start the copy-back. */
    void beginMigrateBack();

    /**
     * Copy up to @p max_blocks back to the replacement device,
     * rounded up to whole spans. The copy reads the spare's lane
     * through its VLEW correction (fixing latent spare errors on the
     * way) and writes the corrected beats to the new device — under
     * canonical lane storage that is a scrub of the lane's spans.
     * Re-arms the spare when the last span lands.
     */
    unsigned migrateBackStep(unsigned max_blocks);

  private:
    PmRank &rank;
    ScrubEngine scrub;
    unsigned thresh;
    SpareState st = SpareState::Armed;
    unsigned chip = 0;
    unsigned cursor = 0;
    unsigned backCursor = 0;
    std::uint64_t poisonedCount = 0;
    std::uint64_t survivorBits = 0;
    std::uint64_t latentBits = 0;
};

/** Fault plans the spare campaign drives. */
enum class SparePlan
{
    Unarmed,   //!< no spare: the PR-9 degraded failover (baseline)
    Rebuild,   //!< kill -> spare rebuild completes (Spared)
    SpareLoss, //!< spare dies mid-rebuild -> degraded fallback
    Repair,    //!< rebuild -> chip replaced -> migrate-back (Healthy)
};

constexpr unsigned numSparePlans = 4;

const char *sparePlanName(SparePlan plan);

/** Shape knobs for one hot-sparing trial. */
struct SpareTrialConfig
{
    PmTech tech = PmTech::Reram;
    SparePlan plan = SparePlan::Rebuild;
    /** Mirrored rank capacity (multiple of 32). */
    unsigned rankBlocks = 1024;
    unsigned banks = 4;
    unsigned cores = 2;
    /** Live-traffic horizon; the kill lands at 3/10 of it. */
    Tick horizon = nsToTicks(16000);
    /** Extra time allowed for late rebuilds/migrations to finish. */
    Tick slack = nsToTicks(8000);
    /** RS acceptance threshold. */
    unsigned threshold = 2;
    /** Engine policy; spareEnabled is overwritten per plan. */
    RasConfig ras;
    /** Max demand PM accesses from kill injection to engagement. */
    std::uint64_t detectAccessBound = 512;
};

/** Run one seeded hot-sparing trial. */
RasTally runSpareTrial(const SpareTrialConfig &tc, Rng &rng);

/** Campaign shape; the defaults meet the acceptance bar (>= 5k). */
struct SpareCampaignConfig
{
    std::uint64_t seed = 2018;
    /** Trials, split across (technology x spare plan) cells. */
    std::uint64_t trials = 6000;
    /** Trials per sweep point (parallel work-item granularity). */
    unsigned chunkTrials = 25;
    SpareTrialConfig trial; //!< tech/plan overwritten per cell
};

/** Aggregated campaign outcome per (technology, spare plan) cell. */
struct SpareTotals
{
    std::array<std::array<RasTally, numSparePlans>, numRasTechs> cells;

    RasTally total() const;
    std::uint64_t
    violations() const
    {
        return total().violations;
    }
};

/**
 * Run the hot-sparing campaign as a ParallelSweep, print the per-cell
 * table to @p os, and return the tallies. Output is byte-identical
 * for any worker count at a fixed seed.
 */
SpareTotals spareCampaign(std::ostream &os, const SweepOptions &opts,
                          const SpareCampaignConfig &cfg);

} // namespace nvck

#endif // NVCK_SIM_SPARE_HH
