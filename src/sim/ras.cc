#include "ras.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include "chipkill/wear.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/spare.hh"

namespace nvck {

// RasConfig -----------------------------------------------------------

RasConfig
RasConfig::fromEnv()
{
    RasConfig cfg;
    if (const auto v = envPositive("NVCK_RAS_PATROL"))
        cfg.patrolInterval = nsToTicks(static_cast<double>(*v));
    if (const auto v = envPositive("NVCK_RAS_THRESHOLD"))
        cfg.killThreshold = *v;
    if (const auto v = envPositive("NVCK_RAS_DECAY"))
        cfg.decayInterval = nsToTicks(static_cast<double>(*v));
    if (const auto v = envChoice("NVCK_SPARE_ARMED", {"off", "on"}))
        cfg.spareEnabled = (*v == 1);
    if (const auto v = envPositive("NVCK_SPARE_REBUILD_BLOCKS"))
        cfg.rebuildBlocksPerStep = static_cast<unsigned>(*v);
    if (const auto v = envPositive("NVCK_SPARE_REBUILD_INTERVAL"))
        cfg.rebuildStepInterval = nsToTicks(static_cast<double>(*v));
    if (const auto v = envChoice("NVCK_RAS_PATROL_ORDER",
                                 {"wear", "addr"}))
        cfg.wearAwarePatrol = (*v == 0);
    return cfg;
}

// HealthLedger --------------------------------------------------------

HealthLedger::HealthLedger(unsigned chips, unsigned rows,
                           const RasConfig &cfg)
    : decayInterval(cfg.decayInterval), decayStep(cfg.decayStep),
      chipBuckets(chips), rowBuckets(rows)
{
    NVCK_ASSERT(decayInterval > 0, "ledger needs a decay interval");
}

std::uint64_t
HealthLedger::decayed(const Bucket &b, Tick now) const
{
    if (now <= b.lastLeak || b.level == 0 || decayStep == 0)
        return b.level;
    const std::uint64_t intervals = (now - b.lastLeak) / decayInterval;
    // Integer leak with an overflow-proof full-drain test.
    if (intervals >= (b.level + decayStep - 1) / decayStep)
        return 0;
    return b.level - intervals * decayStep;
}

std::uint64_t
HealthLedger::record(Bucket &b, std::uint64_t weight, Tick now)
{
    NVCK_ASSERT(now >= b.lastLeak, "ledger time ran backwards");
    b.level = decayed(b, now);
    b.lastLeak += ((now - b.lastLeak) / decayInterval) * decayInterval;
    b.level += weight;
    return b.level;
}

std::uint64_t
HealthLedger::recordChip(unsigned chip, std::uint64_t weight, Tick now)
{
    return record(chipBuckets.at(chip), weight, now);
}

std::uint64_t
HealthLedger::recordRow(unsigned row, std::uint64_t weight, Tick now)
{
    return record(rowBuckets.at(row), weight, now);
}

std::uint64_t
HealthLedger::chipLevel(unsigned chip, Tick now) const
{
    return decayed(chipBuckets.at(chip), now);
}

std::uint64_t
HealthLedger::rowLevel(unsigned row, Tick now) const
{
    return decayed(rowBuckets.at(row), now);
}

void
HealthLedger::resetRow(unsigned row)
{
    rowBuckets.at(row).level = 0;
}

void
HealthLedger::resetChip(unsigned chip)
{
    chipBuckets.at(chip).level = 0;
}

// RasEngine -----------------------------------------------------------

const char *
rasStateName(RasState state)
{
    switch (state) {
      case RasState::Healthy:
        return "healthy";
      case RasState::Draining:
        return "draining";
      case RasState::Migrating:
        return "migrating";
      case RasState::Degraded:
        return "degraded";
      case RasState::Rebuilding:
        return "rebuilding";
      case RasState::Spared:
        return "spared";
      case RasState::MigratingBack:
        return "migrating-back";
      case RasState::Unrecoverable:
        return "unrecoverable";
    }
    return "?";
}

RasEngine::RasEngine(System &system, const RasConfig &config,
                     unsigned rank_blocks, unsigned span_blocks,
                     Callbacks callbacks)
    : sys(system), cfg(config), cb(std::move(callbacks)),
      rankBlocks(rank_blocks), spanBlocks(span_blocks),
      spans(rank_blocks / span_blocks),
      // One bucket per lockstep chip (8 data + parity), plus one for
      // the spare device's own health; one row bucket per span.
      healthLedger(lockstepChips + 1, rank_blocks / span_blocks,
                   config)
{
    NVCK_ASSERT(spanBlocks > 0 && rankBlocks % spanBlocks == 0,
                "rank must hold whole patrol spans");
    NVCK_ASSERT(cfg.patrolInterval > 0 && cfg.migrateStepInterval > 0 &&
                    cfg.rebuildStepInterval > 0,
                "RAS intervals must be positive");
    patrolEv = sys.events().makeRecurring([this] { patrolTick(); });
    migrateEv = sys.events().makeRecurring([this] { migrateTick(); });
    spareEv = sys.events().makeRecurring([this] { spareTick(); });
    wearCount.assign(spans, 0);
    scratch.reserve(16);
}

void
RasEngine::start()
{
    patrolArmed = true;
    sys.events().rearm(patrolEv, sys.now() + cfg.patrolInterval);
}

void
RasEngine::patrolTick()
{
    if (st != RasState::Healthy && st != RasState::Spared) {
        patrolArmed = false;
        return; // failover owns the rank now; stop rearming
    }
    sys.events().rearm(patrolEv, sys.now() + cfg.patrolInterval);
    if (sys.memory().readQueueSize() != 0) {
        // Yield the cycle to demand reads (bounded-bandwidth patrol).
        ++rasStats.patrolYields;
        return;
    }
    if (issueBurst(nextPatrolSpan(), false))
        ++patrolCursor;
}

unsigned
RasEngine::nextPatrolSpan()
{
    const unsigned pos = patrolCursor % spans;
    if (!cfg.wearAwarePatrol)
        return pos;
    // Re-rank once per round: spans sorted by demand-write wear,
    // hottest first (exact integer comparison, ties by address), so
    // the bounded patrol budget lands on the rows most likely to hold
    // worn cells. Within a round the schedule is frozen — every span
    // is still visited exactly once before any is revisited.
    if (pos == 0 || patrolQueue.size() != spans)
        patrolQueue = wearPatrolOrder(wearCount);
    return patrolQueue[pos];
}

void
RasEngine::resumePatrol()
{
    if (patrolArmed)
        return;
    patrolArmed = true;
    sys.events().rearm(patrolEv, sys.now() + cfg.patrolInterval);
}

bool
RasEngine::issueBurst(unsigned span, bool targeted)
{
    NVCK_ASSERT(span < spans, "patrol span out of range");
    const unsigned reads = std::min(cfg.patrolReads, spanBlocks);
    NVCK_ASSERT(reads > 0, "patrol burst needs at least one read");
    const unsigned stride = spanBlocks / reads;

    std::uint32_t j;
    if (freeJoin != noJoin) {
        j = freeJoin;
        freeJoin = joins[j].next;
    } else {
        j = static_cast<std::uint32_t>(joins.size());
        joins.emplace_back();
    }
    joins[j].remaining = 0;
    joins[j].span = span;

    const Addr pm_base = sys.config().space.pmBase;
    for (unsigned i = 0; i < reads; ++i) {
        const Addr addr =
            pm_base + (static_cast<Addr>(span) * spanBlocks +
                       static_cast<Addr>(i) * stride) *
                          blockBytes;
        MemRequest req;
        req.addr = addr;
        req.op = MemOp::Read;
        req.isPm = true;
        req.isOverhead = true;
        req.isPatrol = true;
        req.onComplete = [this, j](Tick) { patrolReadDone(j); };
        if (!sys.memory().canAccept(MemOp::Read) ||
            !sys.memory().enqueue(std::move(req)))
            break;
        ++joins[j].remaining;
    }

    if (joins[j].remaining == 0) {
        joins[j].next = freeJoin;
        freeJoin = j;
        return false;
    }
    ++joinsLive;
    if (targeted)
        ++rasStats.targetedScrubs;
    else
        ++rasStats.patrolBursts;
    return true;
}

void
RasEngine::patrolReadDone(std::uint32_t join)
{
    PatrolJoin &pj = joins[join];
    NVCK_ASSERT(pj.remaining > 0, "patrol join underflow");
    if (--pj.remaining > 0)
        return;
    const unsigned span = pj.span;
    pj.next = freeJoin;
    freeJoin = join;
    --joinsLive;
    patrolComplete(span);
}

void
RasEngine::patrolComplete(unsigned span)
{
    if (st != RasState::Healthy && st != RasState::Spared) {
        // The burst was in flight when the kill landed; its spans now
        // belong to the failover path, so the check is dropped.
        ++rasStats.patrolDropped;
        return;
    }
    NVCK_ASSERT(static_cast<bool>(cb.patrolCheck),
                "patrol completion without a check callback");
    cb.patrolCheck(span, scratch);
    rasStats.scrubWords += scratch.size();
    for (unsigned c = 0; c < scratch.size(); ++c) {
        const int corr = scratch[c];
        if (corr < 0) {
            ++rasStats.scrubErasures;
            noteChipErrors(c, cfg.erasureWeight);
        } else if (corr > 0) {
            rasStats.scrubBitsFound += static_cast<unsigned>(corr);
            noteChipErrors(c, static_cast<std::uint64_t>(corr));
        }
    }
}

void
RasEngine::noteChipErrors(unsigned chip, std::uint64_t weight)
{
    ++rasStats.ledgerEvents;
    switch (st) {
      case RasState::Healthy:
      case RasState::Spared: {
        // In Spared the killed chip's lane lives on the spare, so
        // fresh evidence against it is real (spare decay) and the
        // crossing triggers a second failover — degraded this time,
        // since the one spare is already consumed.
        const std::uint64_t level =
            healthLedger.recordChip(chip, weight, sys.now());
        if (level >= cfg.killThreshold && !killQueued) {
            killQueued = true;
            killed = chip;
            accessesAtDetect = accessCount;
            rasStats.detectedAt = sys.now();
            // Crossings are observed inside controller callbacks
            // (onPmRead) and patrol completions; failover re-enters
            // the controller (drainPmEur), so it runs one event later.
            sys.events().schedule(sys.now(), [this] { beginFailover(); });
        }
        return;
      }
      case RasState::Draining:
        return; // transition already committed
      case RasState::Migrating:
      case RasState::Degraded:
      case RasState::Rebuilding:
      case RasState::MigratingBack: {
        if (chip == killed)
            return; // expected erasure evidence from the dead lane
                    // (the spare's own trouble arrives via
                    // noteSpareErrors instead)
        const std::uint64_t level =
            healthLedger.recordChip(chip, weight, sys.now());
        if (level >= cfg.killThreshold) {
            // A second dead chip exceeds the RS budget: report it
            // instead of failing over again (or asserting).
            ++rasStats.doubleKills;
            st = RasState::Unrecoverable;
            if (cb.onUnrecoverable)
                cb.onUnrecoverable(chip);
        }
        return;
      }
      case RasState::Unrecoverable:
        return;
    }
}

void
RasEngine::noteSpareErrors(std::uint64_t weight)
{
    if (st != RasState::Rebuilding)
        return;
    ++rasStats.ledgerEvents;
    const std::uint64_t level =
        healthLedger.recordChip(spareBucket, weight, sys.now());
    if (level >= cfg.spareKillThreshold && !abandonQueued) {
        abandonQueued = true;
        // Observed inside controller callbacks; the fallback re-enters
        // the controller (drainPmEur), so it runs one event later.
        sys.events().schedule(sys.now(), [this] { abandonSpare(); });
    }
}

void
RasEngine::noteRowWrite(unsigned row)
{
    NVCK_ASSERT(row < spans, "wear row out of range");
    ++wearCount[row];
}

void
RasEngine::noteRowErrors(unsigned row, std::uint64_t weight)
{
    if (st != RasState::Healthy && st != RasState::Spared)
        return;
    const std::uint64_t level =
        healthLedger.recordRow(row, weight, sys.now());
    if (level < cfg.rowThreshold)
        return;
    ++rasStats.rowAlarms;
    healthLedger.resetRow(row);
    if (targetedQueued)
        return;
    targetedQueued = true;
    sys.events().schedule(sys.now(), [this, row] {
        targetedQueued = false;
        if (st == RasState::Healthy || st == RasState::Spared)
            issueBurst(row, true);
    });
}

void
RasEngine::beginFailover()
{
    if (st != RasState::Healthy && st != RasState::Spared)
        return;
    st = RasState::Draining;
    ++rasStats.killsDetected;
    // Every in-flight coalesced code delta retires through the normal
    // row-close path before the lane layout changes underneath it.
    rasStats.drainedAtFailover += sys.memory().drainPmEur();
    if (cfg.spareEnabled && !spareUsed) {
        // A spare is armed: rebuild the dead chip's lanes onto it and
        // keep the full-strength per-chip layout instead of dropping
        // to the storage-degraded striping.
        spareUsed = true;
        ++rasStats.rebuildsStarted;
        rebuilt = 0;
        if (cb.onRebuildStart)
            cb.onRebuildStart(killed);
        st = RasState::Rebuilding;
        if (rasStats.engagedAt == 0) {
            accessesAtEngage = accessCount;
            rasStats.engagedAt = sys.now();
        }
        sys.events().rearm(spareEv,
                           sys.now() + cfg.rebuildStepInterval);
        return;
    }
    engageDegraded();
}

void
RasEngine::engageDegraded()
{
    if (cb.onFailoverStart)
        cb.onFailoverStart(killed);
    st = RasState::Migrating;
    // A second engagement (spare abandoned, or a kill after Spared)
    // keeps the first detection's latency bookkeeping.
    if (rasStats.engagedAt == 0) {
        accessesAtEngage = accessCount;
        rasStats.engagedAt = sys.now();
    }
    sys.events().rearm(migrateEv, sys.now() + cfg.migrateStepInterval);
}

void
RasEngine::abandonSpare()
{
    abandonQueued = false;
    if (st != RasState::Rebuilding)
        return; // the rebuild already finished before the event ran
    st = RasState::Draining;
    ++rasStats.spareAbandons;
    // Demand writes kept landing in the per-chip layout while the
    // rebuild ran; retire their coalesced code deltas before the
    // degraded migration starts reading spans.
    rasStats.drainedAtFailover += sys.memory().drainPmEur();
    if (cb.onSpareAbandoned)
        cb.onSpareAbandoned(killed);
    engageDegraded();
}

void
RasEngine::chipReplaced()
{
    NVCK_ASSERT(st == RasState::Spared,
                "chip replacement outside the Spared state");
    st = RasState::MigratingBack;
    migratedBack = 0;
    sys.events().rearm(spareEv, sys.now() + cfg.rebuildStepInterval);
}

void
RasEngine::spareTick()
{
    if (st == RasState::Rebuilding) {
        const unsigned before = rebuilt;
        unsigned n;
        if (cb.rebuildStep)
            n = cb.rebuildStep(cfg.rebuildBlocksPerStep);
        else
            n = std::min(cfg.rebuildBlocksPerStep,
                         rankBlocks - rebuilt);
        rebuilt = std::min(rebuilt + n, rankBlocks);
        rasStats.rebuiltBlocks += rebuilt - before;
        issueOverheadPairs(rebuilt - before, before);
        if (rebuilt >= rankBlocks) {
            st = RasState::Spared;
            rasStats.sparedAt = sys.now();
            killQueued = false; // re-arm detection for a second kill
            if (cb.onSpared)
                cb.onSpared();
            resumePatrol();
            return;
        }
        sys.events().rearm(spareEv,
                           sys.now() + cfg.rebuildStepInterval);
        return;
    }
    if (st == RasState::MigratingBack) {
        const unsigned before = migratedBack;
        unsigned n;
        if (cb.migrateBackStep)
            n = cb.migrateBackStep(cfg.rebuildBlocksPerStep);
        else
            n = std::min(cfg.rebuildBlocksPerStep,
                         rankBlocks - migratedBack);
        migratedBack = std::min(migratedBack + n, rankBlocks);
        rasStats.migratedBackBlocks += migratedBack - before;
        issueOverheadPairs(migratedBack - before, before);
        if (migratedBack >= rankBlocks) {
            st = RasState::Healthy;
            ++rasStats.repairs;
            rasStats.repairedAt = sys.now();
            // The spare is re-armed and the replacement device starts
            // with a clean slate in the ledger.
            spareUsed = false;
            killQueued = false;
            rebuilt = 0;
            healthLedger.resetChip(killed);
            healthLedger.resetChip(spareBucket);
            if (cb.onRepairComplete)
                cb.onRepairComplete();
            resumePatrol();
            return;
        }
        sys.events().rearm(spareEv,
                           sys.now() + cfg.rebuildStepInterval);
        return;
    }
    // State changed mid-flight (spare abandoned): stop rearming.
}

void
RasEngine::migrateTick()
{
    if (st != RasState::Migrating)
        return;
    const unsigned before = migrated;
    unsigned n;
    if (cb.migrateStep) {
        n = cb.migrateStep(cfg.migrateBlocksPerStep);
    } else {
        n = std::min(cfg.migrateBlocksPerStep, rankBlocks - migrated);
    }
    migrated += n;
    rasStats.migratedBlocks += n;
    issueOverheadPairs(n, before);

    if (migrated >= rankBlocks) {
        st = RasState::Degraded;
        rasStats.completedAt = sys.now();
        if (cb.onFailoverComplete)
            cb.onFailoverComplete();
        return;
    }
    sys.events().rearm(migrateEv,
                       sys.now() + cfg.migrateStepInterval);
}

void
RasEngine::issueOverheadPairs(unsigned count, unsigned first_block)
{
    // Model the copy's bus cost: a bounded burst of overhead
    // read+write pairs over the blocks just moved, interleaved with
    // (and backpressured by) demand traffic.
    const Addr pm_base = sys.config().space.pmBase;
    for (unsigned k = 0; k < std::min(count, 4u); ++k) {
        const Addr addr =
            pm_base + static_cast<Addr>(first_block + k) * blockBytes;
        for (const MemOp op : {MemOp::Read, MemOp::Write}) {
            MemRequest req;
            req.addr = addr;
            req.op = op;
            req.isPm = true;
            req.isOverhead = true;
            req.onComplete = [](Tick) {};
            if (!sys.memory().canAccept(op) ||
                !sys.memory().enqueue(std::move(req)))
                ++rasStats.migrationTrafficDropped;
        }
    }
}

// OnlineFailover ------------------------------------------------------

OnlineFailover::OnlineFailover(PmRank &healthy, unsigned failed_chip,
                               unsigned threshold)
    : source(healthy), chip(failed_chip), thresh(threshold),
      target(healthy.blocks())
{
    NVCK_ASSERT(failed_chip < healthy.chips(),
                "failed chip out of range");
}

unsigned
OnlineFailover::step(unsigned max_blocks)
{
    std::uint8_t buf[blockBytes];
    unsigned moved = 0;
    while (moved < max_blocks && cursor < source.blocks()) {
        const auto read = source.readBlock(cursor, buf, thresh);
        if (read.path == ReadPath::Failed) {
            // A standing UE migrates as an explicit reported loss, not
            // as silent garbage.
            target.poisonSpan(cursor / target.blocksPerVlew());
            ++poisoned;
        } else if (!target.isPoisoned(cursor)) {
            target.writeBlock(cursor, buf);
        }
        ++cursor;
        ++moved;
    }
    return moved;
}

// RasMirror -----------------------------------------------------------

namespace {

/** Intended new 64B payload: dense rewrite or sparse 1-3 bit update
 *  (the shape an unmerged VLEW decode could roll back). */
void
rasPayload(Rng &rng, const std::uint8_t *old_data, std::uint8_t *out)
{
    if (rng.chance(0.5)) {
        for (unsigned i = 0; i < blockBytes; i += 8) {
            const std::uint64_t word = rng.next();
            std::memcpy(out + i, &word, 8);
        }
    } else {
        std::memcpy(out, old_data, blockBytes);
        const unsigned flips = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned f = 0; f < flips; ++f) {
            const unsigned byte =
                static_cast<unsigned>(rng.below(blockBytes));
            out[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        }
    }
    if (std::memcmp(out, old_data, blockBytes) == 0)
        out[0] ^= 1u;
}

} // namespace

RasMirror::RasMirror(System &system, PmRank &pm_rank, PersistOracle &po,
                     const RasConfig &ras_cfg, unsigned thresh,
                     std::uint64_t value_seed)
    : sys(system), rank(pm_rank), oracle(po), rng(value_seed),
      rasCfg(ras_cfg), threshold(thresh),
      spanBlocks(pm_rank.params().vlewDataBytes / chipBeatBytes)
{
    const MemControllerConfig &mc = sys.config().mem;
    NVCK_ASSERT(mc.eurEnabled, "RAS campaign needs the EUR write path");
    NVCK_ASSERT(sys.config().space.pmBase == 0,
                "mirrored campaigns place PM at 0");
    NVCK_ASSERT(rank.blocks() % spanBlocks == 0,
                "rank must hold whole VLEW spans");
    const unsigned banks = mc.pm.banks;
    const unsigned slots =
        mc.pm.rowBytes / (mc.dataChips * mc.vlewDataBytes);
    NVCK_ASSERT(banks > 0 && slots > 0, "degenerate PM geometry");
    pendingSlots.assign(static_cast<std::size_t>(banks) * slots, {});
    const unsigned spans = rank.blocks() / spanBlocks;
    spanRegister.assign(spans, UINT32_MAX);
    spanPending.assign(spans, 0);
    healthySettled.resize(rank.blocks());
    for (unsigned b = 0; b < rank.blocks(); ++b)
        rank.goldenBlock(b, healthySettled[b].data());

    RasEngine::Callbacks cbs;
    cbs.patrolCheck = [this](unsigned span, std::vector<int> &out) {
        patrolCheck(span, out);
    };
    cbs.migrateStep = [this](unsigned max) { return migrateStep(max); };
    cbs.onFailoverStart = [this](unsigned chip) {
        onFailoverStart(chip);
    };
    cbs.onFailoverComplete = [this] { completed_ = true; };
    cbs.onUnrecoverable = [this](unsigned) { unrecoverable_ = true; };
    cbs.onRebuildStart = [this](unsigned chip) { onRebuildStart(chip); };
    cbs.rebuildStep = [this](unsigned max) {
        return spareRebuildStep(max);
    };
    cbs.onSpared = [this] { spared_ = true; };
    cbs.onSpareAbandoned = [this](unsigned chip) {
        onSpareAbandonedCb(chip);
    };
    cbs.migrateBackStep = [this](unsigned max) {
        return spareBackStep(max);
    };
    cbs.onRepairComplete = [this] { repaired_ = true; };
    eng = std::make_unique<RasEngine>(sys, rasCfg, rank.blocks(),
                                      spanBlocks, std::move(cbs));

    CrashHooks hooks;
    hooks.onPmWrite = [this](Addr a, unsigned bank, unsigned slot) {
        onPmWrite(a, bank, slot);
    };
    hooks.onEurDrain = [this](unsigned bank, unsigned slot) {
        onEurDrain(bank, slot);
    };
    hooks.onPmRead = [this](Addr a, bool patrol, bool overhead) {
        onPmRead(a, patrol, overhead);
    };
    sys.memory().setCrashHooks(std::move(hooks));
}

// Out of line so the header can hold SpareChip behind a forward
// declaration.
RasMirror::~RasMirror() = default;

unsigned
RasMirror::blockOf(Addr addr) const
{
    const AddressSpace &space = sys.config().space;
    NVCK_ASSERT(addr >= space.pmBase, "PM access below the PM region");
    const std::uint64_t block = (addr - space.pmBase) / blockBytes;
    NVCK_ASSERT(block < rank.blocks(),
                "PM access beyond the mirrored rank");
    return static_cast<unsigned>(block);
}

unsigned
RasMirror::spanOf(unsigned block) const
{
    return block / spanBlocks;
}

void
RasMirror::makePayload(const std::uint8_t *old_data, std::uint8_t *out)
{
    rasPayload(rng, old_data, out);
}

void
RasMirror::retireBlock(unsigned block)
{
    // Second half of the two-phase write: bring the media code bits
    // from the last settled image up to the current intent.
    rank.drainCodeBits(block, healthySettled[block].data());
    rank.goldenBlock(block, healthySettled[block].data());
    // A block migrated while still healthy-pending was settled by its
    // degraded-side copy already; don't settle it twice.
    if (oracle.pending(block))
        oracle.recordDrain(block);
    NVCK_ASSERT(spanPending[spanOf(block)] > 0,
                "span pending count underflow");
    --spanPending[spanOf(block)];
}

void
RasMirror::retireSpan(unsigned span)
{
    if (spanPending[span] == 0)
        return;
    ++n.earlyRetires;
    const std::uint32_t reg = spanRegister[span];
    NVCK_ASSERT(reg != UINT32_MAX, "pending span with no register");
    auto &pending = pendingSlots[reg];
    for (const unsigned b : pending) {
        NVCK_ASSERT(spanOf(b) == span,
                    "EUR register coalescing across spans");
        retireBlock(b);
    }
    pending.clear();
    NVCK_ASSERT(spanPending[span] == 0, "span retire left stragglers");
}

void
RasMirror::onPmWrite(Addr addr, unsigned bank, unsigned slot)
{
    demandWrite(blockOf(addr), bank, slot);
}

void
RasMirror::demandWrite(unsigned block, unsigned bank, unsigned slot)
{
    eng->noteAccess();
    eng->noteRowWrite(spanOf(block));
    ++n.demandWrites;

    std::uint8_t value[blockBytes];
    // The controller XORs against the OMV — the latest write intent —
    // so the new payload chains off the latest pending value.
    makePayload(oracle.latest(block).data(), value);

    if (failover && block < failover->watermark()) {
        // Migrated blocks live in the degraded layout; its writes
        // settle code bits linearly at write time (no RS tier, EUR
        // drains model timing only).
        if (failover->degraded().isPoisoned(block)) {
            // The span is a reported loss; the write is accepted but
            // the readback stays an explicit UE until repair.
            ++n.poisonedWriteSkips;
            oracle.recordBurst(block, value);
            return;
        }
        failover->degraded().writeBlock(block, value);
        oracle.recordBurst(block, value);
        oracle.recordDrain(block);
        ++n.degradedWrites;
        return;
    }

    const std::uint16_t full =
        static_cast<std::uint16_t>((1u << rank.chips()) - 1);
    rank.applyTornWrite(block, value, full, 0);
    oracle.recordBurst(block, value);

    const unsigned spans_per_bank =
        static_cast<unsigned>(pendingSlots.size()) /
        sys.config().mem.pm.banks;
    const std::uint32_t reg = bank * spans_per_bank + slot;
    auto &pending = pendingSlots.at(reg);
    const unsigned span = spanOf(block);
    if (pending.empty())
        spanRegister[span] = reg;
    else
        NVCK_ASSERT(spanRegister[span] == reg,
                    "EUR register moved mid-coalesce");
    if (std::find(pending.begin(), pending.end(), block) ==
        pending.end()) {
        pending.push_back(block);
        ++spanPending[span];
    }
}

void
RasMirror::onEurDrain(unsigned bank, unsigned slot)
{
    const unsigned spans_per_bank =
        static_cast<unsigned>(pendingSlots.size()) /
        sys.config().mem.pm.banks;
    auto &pending = pendingSlots.at(bank * spans_per_bank + slot);
    // The list may be empty: migration overhead writes dirty the EUR
    // without mirrored bursts, and early retires (EUR merges before a
    // VLEW-touching operation) empty it ahead of the row close.
    for (const unsigned b : pending)
        retireBlock(b);
    pending.clear();
}

void
RasMirror::onPmRead(Addr addr, bool patrol, bool overhead)
{
    if (patrol || overhead)
        return; // patrol checks run at burst completion; overhead
                // traffic models bandwidth, not data
    demandRead(blockOf(addr));
}

void
RasMirror::demandRead(unsigned block)
{
    eng->noteAccess();
    ++n.demandReads;
    std::uint8_t out[blockBytes];

    if (failover && block < failover->watermark()) {
        ++n.degradedReads;
        const auto read = failover->degraded().readBlock(block, out);
        if (read.failed)
            ++n.ue;
        else if (!read.dataCorrect)
            ++n.sdc;
        return;
    }

    // Chip-internal EUR merge: a VLEW decoded against stale media code
    // would "correct" a pending durable write away, so the chip folds
    // its EUR-held delta in first whenever a read may touch the VLEWs.
    const unsigned span = spanOf(block);
    retireSpan(span);

    const auto read = rank.readBlock(block, out, threshold);
    if (read.path == ReadPath::Failed) {
        ++n.ue;
        return;
    }
    if (!read.dataCorrect)
        ++n.sdc;
    switch (read.path) {
      case ReadPath::RsAccepted:
        ++n.rsFixes;
        break;
      case ReadPath::VlewFallback:
        ++n.vlewFallbacks;
        break;
      case ReadPath::ChipRecovered:
        ++n.chipRecovered;
        break;
      default:
        break;
    }

    const bool rebuilding =
        spare && eng->state() == RasState::Rebuilding;
    for (unsigned c = 0; c < rank.chips(); ++c) {
        std::uint64_t w = 0;
        if (read.chipErasureMask & (1u << c))
            w = rasCfg.erasureWeight;
        else if (read.chipCorrectionMask & (1u << c))
            w = 1;
        if (w == 0)
            continue;
        if (rebuilding && c == spare->servedChip()) {
            // Below the rebuild watermark the spare device serves the
            // lane, so trouble there is the spare's own health; above
            // it the dead device's erasures are expected and carry no
            // information.
            if (block < spare->watermark())
                eng->noteSpareErrors(w);
            continue;
        }
        eng->noteChipErrors(c, w);
    }
    const unsigned total = read.rsCorrections + read.vlewBitCorrections;
    if (total > 0)
        eng->noteRowErrors(span, total);
}

void
RasMirror::patrolCheck(unsigned span, std::vector<int> &per_chip)
{
    retireSpan(span);
    per_chip.assign(rank.chips(), 0);
    for (unsigned c = 0; c < rank.chips(); ++c)
        per_chip[c] = scrub.scrubWord(rank, c, span).corrections;
}

unsigned
RasMirror::migrateStep(unsigned max_blocks)
{
    if (!failover || failover->done())
        return 0;
    const unsigned start = failover->watermark();
    const unsigned end =
        std::min(start + max_blocks, rank.blocks());
    // Migration reads go through the erasure path (VLEW-touching), so
    // fold any demand writes' pending deltas in first.
    for (unsigned s = start / spanBlocks; s * spanBlocks < end; ++s)
        retireSpan(s);
    return failover->step(max_blocks);
}

void
RasMirror::onFailoverStart(unsigned chip)
{
    if (!engaged_) {
        engaged_ = true;
        accessesAtEngage = eng->accesses();
    }
    failover = std::make_unique<OnlineFailover>(rank, chip, threshold);
}

void
RasMirror::onRebuildStart(unsigned chip)
{
    if (!engaged_) {
        engaged_ = true;
        accessesAtEngage = eng->accesses();
    }
    spare = std::make_unique<SpareChip>(rank, threshold);
    spare->beginRebuild(chip);
}

unsigned
RasMirror::spareRebuildStep(unsigned max_blocks)
{
    if (!spare || spare->rebuildDone())
        return 0;
    const unsigned start = spare->watermark();
    const unsigned span_lo = start / spanBlocks;
    const unsigned nspans =
        std::max(1u, (max_blocks + spanBlocks - 1) / spanBlocks);
    const unsigned span_hi =
        std::min(span_lo + nspans, rank.blocks() / spanBlocks);
    // The survivor scrub and erasure fills are VLEW-touching: fold any
    // demand writes' pending code deltas in first (chip-internal EUR
    // merge), exactly like migrateStep().
    for (unsigned s = span_lo; s < span_hi; ++s)
        retireSpan(s);
    const unsigned done = spare->rebuildStep(max_blocks, &spareScratch);
    // The survivor scrub doubles as patrol evidence for the ledger.
    for (unsigned c = 0; c < spareScratch.size(); ++c) {
        if (c == spare->servedChip())
            continue;
        const int corr = spareScratch[c];
        if (corr < 0)
            eng->noteChipErrors(c, rasCfg.erasureWeight);
        else if (corr > 0)
            eng->noteChipErrors(c, static_cast<std::uint64_t>(corr));
    }
    return done;
}

unsigned
RasMirror::spareBackStep(unsigned max_blocks)
{
    if (!spare || spare->migrateBackDone())
        return 0;
    const unsigned start = spare->backWatermark();
    const unsigned span_lo = start / spanBlocks;
    const unsigned nspans =
        std::max(1u, (max_blocks + spanBlocks - 1) / spanBlocks);
    const unsigned span_hi =
        std::min(span_lo + nspans, rank.blocks() / spanBlocks);
    for (unsigned s = span_lo; s < span_hi; ++s)
        retireSpan(s);
    return spare->migrateBackStep(max_blocks);
}

void
RasMirror::onSpareAbandonedCb(unsigned chip)
{
    (void)chip;
    spareAbandoned_ = true;
    if (spare)
        spare->abandon();
}

void
RasMirror::noteKillInjected()
{
    killInjected = true;
    accessesAtInjection = eng->accesses();
}

std::uint64_t
RasMirror::detectAccesses() const
{
    if (!engaged_)
        return UINT64_MAX;
    if (accessesAtEngage <= accessesAtInjection)
        return 0; // proactive failover before the kill landed
    return accessesAtEngage - accessesAtInjection;
}

void
RasMirror::finalCheck(RasTally &tally)
{
    // Drain the remaining EUR state through the controller's row-close
    // path; the hooks retire every mirrored pending block.
    sys.memory().drainPmEur();

    std::uint8_t out[blockBytes];
    for (unsigned b = 0; b < rank.blocks(); ++b) {
        bool ue;
        if (failover && b < failover->watermark()) {
            ue = failover->degraded().readBlock(b, out).failed;
        } else {
            ue = rank.readBlock(b, out, threshold).path ==
                 ReadPath::Failed;
        }
        switch (oracle.classify(b, out, ue)) {
          case PersistOracle::Verdict::SettledOk:
          case PersistOracle::Verdict::TornNew:
            break;
          case PersistOracle::Verdict::ReportedUe:
            ++tally.ue;
            break;
          case PersistOracle::Verdict::TornOld:
          case PersistOracle::Verdict::TornIntermediate:
          case PersistOracle::Verdict::Violation:
            ++tally.lostDurable;
            break;
        }
    }
}

// Trial ---------------------------------------------------------------

const char *
faultPlanName(FaultPlan plan)
{
    switch (plan) {
      case FaultPlan::Transient:
        return "transient";
      case FaultPlan::Intermittent:
        return "intermittent";
      case FaultPlan::Progressive:
        return "progressive";
      case FaultPlan::ChipKill:
        return "chip-kill";
    }
    return "?";
}

RasTally &
RasTally::operator+=(const RasTally &other)
{
    trials += other.trials;
    patrolBursts += other.patrolBursts;
    patrolYields += other.patrolYields;
    scrubBits += other.scrubBits;
    demandReads += other.demandReads;
    demandWrites += other.demandWrites;
    rsFixes += other.rsFixes;
    vlewFallbacks += other.vlewFallbacks;
    chipRecovered += other.chipRecovered;
    rowAlarms += other.rowAlarms;
    targetedScrubs += other.targetedScrubs;
    kills += other.kills;
    failovers += other.failovers;
    migrated += other.migrated;
    degradedReads += other.degradedReads;
    degradedWrites += other.degradedWrites;
    drainedAtFailover += other.drainedAtFailover;
    detectAccessesMax =
        std::max(detectAccessesMax, other.detectAccessesMax);
    sdc += other.sdc;
    lostDurable += other.lostDurable;
    ue += other.ue;
    falseKills += other.falseKills;
    missedFailovers += other.missedFailovers;
    engageOverruns += other.engageOverruns;
    rebuilds += other.rebuilds;
    rebuiltBlocks += other.rebuiltBlocks;
    spared += other.spared;
    spareAbandons += other.spareAbandons;
    repairs += other.repairs;
    survivorBits += other.survivorBits;
    missedSpares += other.missedSpares;
    missedRepairs += other.missedRepairs;
    violations += other.violations;
    return *this;
}

namespace {

/** The multi-phase fault stream one lifecycle trial injects. Events
 *  capture only the driver pointer (plus scalars), so the stack-local
 *  instance fits the event queue's inline capture budget. */
struct FaultDriver
{
    System &sys;
    PmRank &rank;
    RasMirror &mirror;
    Rng rng;
    Tick horizon;
    unsigned victim = 0;
    unsigned stuckLeft = 12;

    void
    flip(unsigned chip)
    {
        rank.corruptByte(
            chip, static_cast<unsigned>(rng.below(rank.blocks())),
            static_cast<unsigned>(rng.below(chipBeatBytes)),
            static_cast<std::uint8_t>(1u << rng.below(8)));
    }

    void
    transientBurst()
    {
        for (unsigned i = 0; i < 6; ++i)
            flip(static_cast<unsigned>(rng.below(rank.chips())));
    }

    void
    intermittentTick(Tick stop, Tick step)
    {
        flip(victim);
        if (sys.now() + step < stop) {
            sys.events().scheduleAfter(
                step, [this, stop, step] {
                    intermittentTick(stop, step);
                });
        }
    }

    void
    progressiveTick(Tick stop, Tick step)
    {
        if (stuckLeft == 0)
            return;
        --stuckLeft;
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(rank.blocks()) * chipBeatBytes;
        rank.setStuckBit(victim, rng.below(bytes),
                         static_cast<unsigned>(rng.below(8)),
                         rng.chance(0.5));
        if (sys.now() + step < stop) {
            sys.events().scheduleAfter(
                step, [this, stop, step] {
                    progressiveTick(stop, step);
                });
        }
    }

    void
    kill()
    {
        rank.failChip(victim, rng);
        mirror.noteKillInjected();
    }
};

} // namespace

RasTally
runRasTrial(const RasTrialConfig &tc, Rng &rng)
{
    NVCK_ASSERT(tc.rankBlocks >= 64 && tc.rankBlocks % 32 == 0,
                "rank must hold whole VLEW spans");
    RasTally tally;
    tally.trials = 1;

    SystemConfig cfg = SystemConfig::make(
        tc.tech, proposalScheme(runtimeRberFor(tc.tech)), "echo",
        rng.next() | 1);
    cfg.cores = tc.cores;
    cfg.cache.cores = tc.cores;
    cfg.cache.l1Bytes = 8 * 1024;
    cfg.cache.llcBytes = 64 * 1024;
    cfg.cache.llcWays = 8;
    // Same compact shape as the whole-system crash campaign: few banks
    // keep the rank mirrorable with real row conflicts, aggressive
    // drain thresholds keep the EUR write path busy.
    cfg.mem.dram.banks = tc.banks;
    cfg.mem.pm.banks = tc.banks;
    cfg.mem.writeMaxAge = nsToTicks(400);
    cfg.mem.writeIdleBurst = 4;
    cfg.mem.writeDrainHigh = 24;
    cfg.mem.writeDrainLow = 8;
    cfg.space.pmBase = 0;
    cfg.space.pmBytes =
        static_cast<std::uint64_t>(tc.rankBlocks) * blockBytes;
    cfg.space.dramBytes = 1u << 20;

    System sys(cfg, std::make_unique<CampaignWorkload>(
                        cfg.space, tc.cores, rng.next()));

    PmRank rank(tc.rankBlocks);
    rank.initialize(rng);
    PersistOracle oracle(tc.rankBlocks);
    {
        std::uint8_t buf[blockBytes];
        for (unsigned b = 0; b < tc.rankBlocks; ++b) {
            rank.goldenBlock(b, buf);
            oracle.setBaseline(b, buf);
        }
    }

    RasMirror mirror(sys, rank, oracle, tc.ras, tc.threshold,
                     rng.next());
    RasEngine &eng = mirror.engine();

    FaultDriver driver{sys, rank, mirror, Rng(rng.next() | 1),
                       tc.horizon};
    driver.victim =
        static_cast<unsigned>(driver.rng.below(rank.chips()));
    const auto plan_at_least = [&tc](FaultPlan p) {
        return static_cast<int>(tc.plan) >= static_cast<int>(p);
    };
    auto &eq = sys.events();
    eq.schedule(tc.horizon / 10,
                [d = &driver] { d->transientBurst(); });
    if (plan_at_least(FaultPlan::Intermittent)) {
        eq.schedule(tc.horizon / 4, [d = &driver] {
            d->intermittentTick(d->horizon / 2, nsToTicks(150));
        });
    }
    if (plan_at_least(FaultPlan::Progressive)) {
        eq.schedule(tc.horizon / 2, [d = &driver] {
            d->progressiveTick(d->horizon * 7 / 10, nsToTicks(220));
        });
    }
    if (tc.plan == FaultPlan::ChipKill)
        eq.schedule(tc.horizon * 7 / 10, [d = &driver] { d->kill(); });

    eng.start();
    sys.start();
    sys.runUntil(tc.horizon);
    if (eng.state() == RasState::Draining ||
        eng.state() == RasState::Migrating ||
        eng.state() == RasState::Rebuilding ||
        eng.state() == RasState::MigratingBack)
        sys.runUntil(tc.horizon + tc.failoverSlack);

    mirror.finalCheck(tally);

    const RasStats &es = eng.stats();
    const RasMirror::Counts &mc = mirror.counts();
    tally.patrolBursts = es.patrolBursts;
    tally.patrolYields = es.patrolYields;
    tally.scrubBits = es.scrubBitsFound;
    tally.rowAlarms = es.rowAlarms;
    tally.targetedScrubs = es.targetedScrubs;
    tally.kills = es.killsDetected;
    tally.failovers = mirror.completed() ? 1 : 0;
    tally.migrated = es.migratedBlocks;
    tally.drainedAtFailover = es.drainedAtFailover;
    tally.rebuilds = es.rebuildsStarted;
    tally.rebuiltBlocks = es.rebuiltBlocks;
    tally.spared = mirror.spared() ? 1 : 0;
    tally.spareAbandons = es.spareAbandons;
    tally.repairs = es.repairs;
    if (const SpareChip *sp = mirror.spareChip())
        tally.survivorBits = sp->survivorBitsFixed();
    tally.demandReads = mc.demandReads;
    tally.demandWrites = mc.demandWrites;
    tally.rsFixes = mc.rsFixes;
    tally.vlewFallbacks = mc.vlewFallbacks;
    tally.chipRecovered = mc.chipRecovered;
    tally.degradedReads = mc.degradedReads;
    tally.degradedWrites = mc.degradedWrites;
    tally.sdc = mc.sdc;
    tally.ue += mc.ue;

    switch (tc.plan) {
      case FaultPlan::Transient:
        // Scattered one-shot faults must age out of the ledger, never
        // trigger failover.
        if (es.killsDetected > 0)
            ++tally.falseKills;
        break;
      case FaultPlan::Intermittent:
      case FaultPlan::Progressive:
        // Proactive failover is allowed (and tallied) but not required
        // — whether the buckets cross depends on the fault rate.
        break;
      case FaultPlan::ChipKill:
        if (!mirror.completed()) {
            ++tally.missedFailovers;
        } else {
            const std::uint64_t detect = mirror.detectAccesses();
            tally.detectAccessesMax = detect;
            if (detect > tc.detectAccessBound)
                ++tally.engageOverruns;
        }
        break;
    }

    tally.violations = tally.sdc + tally.lostDurable + tally.ue +
                       tally.falseKills + tally.missedFailovers +
                       tally.engageOverruns;

    NVCK_ASSERT(sys.pendingStaleAcks() == 0,
                "stale persist acks without a power cut");
    return tally;
}

// Campaign ------------------------------------------------------------

RasTally
RasTotals::total() const
{
    RasTally sum;
    for (const auto &tech : cells) {
        for (const auto &cell : tech)
            sum += cell;
    }
    return sum;
}

namespace {

/** One sweep point's result: which campaign cell it feeds. */
struct RasCellResult
{
    unsigned tech = 0;
    unsigned plan = 0;
    RasTally tally;
};

void
rasTallyRow(Table &t, const std::string &label, const RasTally &c)
{
    t.row()
        .cell(label)
        .cell(c.trials)
        .cell(c.patrolBursts)
        .cell(c.scrubBits)
        .cell(c.rowAlarms)
        .cell(c.targetedScrubs)
        .cell(c.kills)
        .cell(c.failovers)
        .cell(c.migrated)
        .cell(c.degradedReads)
        .cell(c.degradedWrites)
        .cell(c.detectAccessesMax)
        .cell(c.sdc)
        .cell(c.lostDurable)
        .cell(c.ue)
        .cell(c.falseKills)
        .cell(c.missedFailovers)
        .cell(c.engageOverruns)
        .cell(c.violations);
}

} // namespace

RasTotals
rasCampaign(std::ostream &os, const SweepOptions &opts,
            const RasCampaignConfig &cfg)
{
    NVCK_ASSERT(cfg.chunkTrials > 0, "empty campaign chunks");
    static const PmTech techs[numRasTechs] = {PmTech::Reram,
                                              PmTech::Pcm};
    ParallelSweep<RasCellResult> sweep(cfg.seed, opts);

    const unsigned cells = numRasTechs * numFaultPlans;
    unsigned cell = 0;
    for (unsigned ti = 0; ti < numRasTechs; ++ti) {
        for (unsigned pi = 0; pi < numFaultPlans; ++pi, ++cell) {
            std::uint64_t remaining =
                cfg.trials / cells +
                (cell < cfg.trials % cells ? 1 : 0);
            for (unsigned chunk = 0; remaining > 0; ++chunk) {
                const auto batch =
                    std::min<std::uint64_t>(remaining, cfg.chunkTrials);
                remaining -= batch;
                sweep.add(
                    pmTechName(techs[ti]) + "/" +
                        faultPlanName(static_cast<FaultPlan>(pi)) +
                        " #" + std::to_string(chunk),
                    [&cfg, ti, pi, batch](Rng &rng) {
                        RasTrialConfig tc = cfg.trial;
                        tc.tech = techs[ti];
                        tc.plan = static_cast<FaultPlan>(pi);
                        RasCellResult r;
                        r.tech = ti;
                        r.plan = pi;
                        for (std::uint64_t t = 0; t < batch; ++t)
                            r.tally += runRasTrial(tc, rng);
                        return r;
                    });
            }
        }
    }

    RasTotals totals{};
    for (const auto &out : sweep.run())
        totals.cells[out.value.tech][out.value.plan] += out.value.tally;

    Table t({"fault plan", "trials", "patrol", "bits", "alarms",
             "scrubs", "kills", "failover", "migrated", "degr rd",
             "degr wr", "detect", "sdc", "lost", "UE", "false",
             "missed", "late", "violations"});
    for (unsigned ti = 0; ti < numRasTechs; ++ti) {
        for (unsigned pi = 0; pi < numFaultPlans; ++pi)
            rasTallyRow(t,
                        pmTechName(techs[ti]) + "/" +
                            faultPlanName(static_cast<FaultPlan>(pi)),
                        totals.cells[ti][pi]);
    }
    rasTallyRow(t, "total", totals.total());
    t.print(os);
    return totals;
}

} // namespace nvck
