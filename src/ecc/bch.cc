#include "bch.hh"

#include <algorithm>
#include <bit>
#include <set>

#include "common/log.hh"
#include "gf/gfpoly.hh"

namespace nvck {

namespace {

/**
 * Minimal polynomial (over GF(2)) of alpha^e: the product of
 * (x + alpha^c) over the cyclotomic coset of e modulo 2^m - 1.
 */
BinPoly
minimalPoly(const Gf2m &gf, std::uint32_t e)
{
    const std::uint32_t n = gf.order();
    std::vector<std::uint32_t> coset;
    std::uint32_t c = e % n;
    do {
        coset.push_back(c);
        c = static_cast<std::uint32_t>(
            (2ull * c) % n);
    } while (c != e % n);

    GfPoly prod = GfPoly::constant(1);
    for (std::uint32_t exp : coset) {
        const GfPoly factor({gf.alphaPow(exp), 1});
        prod = GfPoly::mul(gf, prod, factor);
    }

    BinPoly out;
    for (int i = 0; i <= prod.degree(); ++i) {
        const GfElem coeff = prod.coeff(static_cast<std::size_t>(i));
        NVCK_ASSERT(coeff == 0 || coeff == 1,
                    "minimal polynomial has non-binary coefficient");
        if (coeff == 1)
            out.setBit(static_cast<std::size_t>(i));
    }
    return out;
}

/** Smallest coset member, used to deduplicate minimal polynomials. */
std::uint32_t
cosetLeader(std::uint32_t e, std::uint32_t n)
{
    std::uint32_t leader = e % n;
    std::uint32_t c = leader;
    do {
        c = static_cast<std::uint32_t>((2ull * c) % n);
        leader = std::min(leader, c);
    } while (c != e % n);
    return leader;
}

unsigned
pickFieldDegree(unsigned data_bits, unsigned correct_bits)
{
    for (unsigned m = 3; m <= 16; ++m) {
        if (data_bits + correct_bits * m <= (1u << m) - 1)
            return m;
    }
    NVCK_FATAL("no GF(2^m) with m <= 16 fits k=", data_bits,
               " t=", correct_bits);
}

} // namespace

BchCodec::BchCodec(unsigned data_bits, unsigned correct_bits,
                   unsigned field_degree)
    : dataBits(data_bits),
      correctBits(correct_bits),
      checkBits(0),
      gf(field_degree ? field_degree
                      : pickFieldDegree(data_bits, correct_bits))
{
    NVCK_ASSERT(correct_bits >= 1, "BCH needs t >= 1");

    // Generator = product of the distinct minimal polynomials of
    // alpha^1, alpha^3, ..., alpha^(2t-1).
    std::set<std::uint32_t> leaders;
    gen = BinPoly::one();
    for (unsigned i = 1; i <= 2 * correct_bits - 1; i += 2) {
        const std::uint32_t leader = cosetLeader(i, gf.order());
        if (leaders.insert(leader).second)
            gen = BinPoly::mul(gen, minimalPoly(gf, i));
    }
    checkBits = static_cast<unsigned>(gen.degree());
    NVCK_ASSERT(dataBits + checkBits <= gf.order(),
                "shortened BCH does not fit in GF(2^", gf.m(), ")");

    // Keep only the low part of the generator (without the x^r term):
    // that is what the LFSR XORs into the remainder on feedback.
    genWords = gen.raw();
    genWords.resize((checkBits + 64) / 64, 0);
    genWords[checkBits >> 6] &= ~(1ull << (checkBits & 63));

    // Precompute alpha^(j*i) tables for odd syndrome indices j, flattened
    // per j over codeword bit positions i.
    const unsigned n_bits = dataBits + checkBits;
    oddSynTables.resize(correctBits);
    for (unsigned idx = 0; idx < correctBits; ++idx) {
        const std::uint64_t j = 2ull * idx + 1;
        auto &tab = oddSynTables[idx];
        tab.resize(n_bits);
        std::uint64_t e = 0;
        for (unsigned i = 0; i < n_bits; ++i) {
            tab[i] = gf.alphaPow(e);
            e += j;
            if (e >= gf.order())
                e -= gf.order();
        }
    }
}

BitVec
BchCodec::encode(const BitVec &data) const
{
    NVCK_ASSERT(data.size() == dataBits, "BCH encode: bad data length");
    BitVec check = encodeDelta(data);
    BitVec codeword(n());
    for (unsigned i = 0; i < checkBits; ++i)
        if (check.get(i))
            codeword.set(i, true);
    for (unsigned i = 0; i < dataBits; ++i)
        if (data.get(i))
            codeword.set(checkBits + i, true);
    return codeword;
}

BitVec
BchCodec::encodeDelta(const BitVec &data_delta) const
{
    NVCK_ASSERT(data_delta.size() == dataBits,
                "BCH encodeDelta: bad data length");
    // LFSR division: remainder of d(x) * x^r by g(x), processing data
    // bits from the highest coefficient downward.
    const unsigned rem_words = (checkBits + 63) / 64;
    std::vector<std::uint64_t> rem(rem_words + 1, 0);
    const unsigned top_bit = checkBits - 1;

    for (unsigned i = dataBits; i-- > 0;) {
        const bool data_bit = data_delta.get(i);
        const bool feedback =
            data_bit ^ (((rem[top_bit >> 6] >> (top_bit & 63)) & 1) != 0);
        // Shift remainder left one bit, discarding the old top bit.
        for (unsigned w = rem_words; w-- > 1;)
            rem[w] = (rem[w] << 1) | (rem[w - 1] >> 63);
        rem[0] <<= 1;
        rem[checkBits >> 6] &= ~(1ull << (checkBits & 63));
        if (feedback) {
            for (unsigned w = 0; w < rem_words; ++w)
                rem[w] ^= genWords[w];
        }
    }

    BitVec check(checkBits);
    for (unsigned i = 0; i < checkBits; ++i)
        if ((rem[i >> 6] >> (i & 63)) & 1)
            check.set(i, true);
    return check;
}

void
BchCodec::reencode(BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH reencode: bad length");
    BitVec check = encodeDelta(extractData(codeword));
    for (unsigned i = 0; i < checkBits; ++i)
        codeword.set(i, check.get(i));
}

BitVec
BchCodec::extractData(const BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH extractData: bad length");
    BitVec data(dataBits);
    for (unsigned i = 0; i < dataBits; ++i)
        if (codeword.get(checkBits + i))
            data.set(i, true);
    return data;
}

bool
BchCodec::isCodeword(const BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH isCodeword: bad length");
    // Fast residue check: r(x) mod g(x) == 0.
    BinPoly received;
    for (unsigned i = 0; i < n(); ++i)
        if (codeword.get(i))
            received.setBit(i);
    return BinPoly::mod(received, gen).isZero();
}

std::vector<GfElem>
BchCodec::syndromes(const BitVec &codeword) const
{
    std::vector<GfElem> syn(2 * correctBits, 0);
    const unsigned n_bits = n();
    // Odd syndromes from the tables; iterate set bits word-by-word.
    const auto &words = codeword.raw();
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        while (bits) {
            const unsigned i =
                static_cast<unsigned>(w * 64 +
                                      std::countr_zero(bits));
            bits &= bits - 1;
            if (i >= n_bits)
                break;
            for (unsigned idx = 0; idx < correctBits; ++idx)
                syn[2 * idx] ^= oddSynTables[idx][i];
        }
    }
    // Even syndromes via the binary-BCH identity S_{2j} = S_j^2. Work
    // into a properly indexed array: entry j-1 holds S_j.
    std::vector<GfElem> out(2 * correctBits, 0);
    for (unsigned idx = 0; idx < correctBits; ++idx)
        out[2 * idx] = syn[2 * idx]; // S_{2idx+1}
    for (unsigned j = 2; j <= 2 * correctBits; j += 2) {
        const GfElem half = out[j / 2 - 1];
        out[j - 1] = gf.mul(half, half);
    }
    return out;
}

BchDecodeResult
BchCodec::decode(BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH decode: bad length");
    BchDecodeResult result;

    if (isCodeword(codeword)) {
        result.status = DecodeStatus::Clean;
        return result;
    }

    const std::vector<GfElem> syn = syndromes(codeword);

    // Berlekamp-Massey over GF(2^m).
    GfPoly lambda = GfPoly::constant(1);
    GfPoly prev = GfPoly::constant(1);
    unsigned l = 0;
    unsigned shift = 1;
    GfElem prev_disc = 1;
    for (unsigned step = 0; step < 2 * correctBits; ++step) {
        GfElem disc = syn[step];
        for (unsigned i = 1; i <= l; ++i)
            disc ^= gf.mul(lambda.coeff(i), syn[step - i]);
        if (disc == 0) {
            ++shift;
            continue;
        }
        const GfPoly adjust = GfPoly::scale(
            gf, GfPoly::mul(gf, GfPoly::monomial(1, shift), prev),
            gf.div(disc, prev_disc));
        const GfPoly next = GfPoly::add(lambda, adjust);
        if (2 * l <= step) {
            prev = lambda;
            prev_disc = disc;
            l = step + 1 - l;
            shift = 1;
        } else {
            ++shift;
        }
        lambda = next;
    }

    if (l > correctBits || lambda.degree() != static_cast<int>(l)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    // Chien search over the shortened positions [0, n).
    std::vector<std::uint32_t> error_positions;
    const unsigned nu = l;
    // term[j] tracks lambda_j * alpha^(-i*j) as i advances.
    std::vector<GfElem> term(nu + 1);
    for (unsigned j = 0; j <= nu; ++j)
        term[j] = lambda.coeff(j);
    const unsigned n_bits = n();
    for (unsigned i = 0; i < n_bits; ++i) {
        GfElem sum = 0;
        for (unsigned j = 0; j <= nu; ++j)
            sum ^= term[j];
        if (sum == 0)
            error_positions.push_back(i);
        for (unsigned j = 1; j <= nu; ++j)
            term[j] = gf.mul(term[j],
                             gf.alphaPow(gf.order() - j));
    }

    if (error_positions.size() != nu) {
        // Roots outside the shortened range (or repeated roots): the
        // pattern is uncorrectable.
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    for (std::uint32_t pos : error_positions)
        codeword.flip(pos);

    result.status = DecodeStatus::Corrected;
    result.corrections = nu;
    result.positions = std::move(error_positions);
    return result;
}

} // namespace nvck
