#include "bch.hh"

#include <algorithm>
#include <bit>
#include <set>

#include "common/log.hh"
#include "gf/gfpoly.hh"

namespace nvck {

namespace {

/**
 * Minimal polynomial (over GF(2)) of alpha^e: the product of
 * (x + alpha^c) over the cyclotomic coset of e modulo 2^m - 1.
 */
BinPoly
minimalPoly(const Gf2m &gf, std::uint32_t e)
{
    const std::uint32_t n = gf.order();
    std::vector<std::uint32_t> coset;
    std::uint32_t c = e % n;
    do {
        coset.push_back(c);
        c = static_cast<std::uint32_t>(
            (2ull * c) % n);
    } while (c != e % n);

    GfPoly prod = GfPoly::constant(1);
    for (std::uint32_t exp : coset) {
        const GfPoly factor({gf.alphaPow(exp), 1});
        prod = GfPoly::mul(gf, prod, factor);
    }

    BinPoly out;
    for (int i = 0; i <= prod.degree(); ++i) {
        const GfElem coeff = prod.coeff(static_cast<std::size_t>(i));
        NVCK_ASSERT(coeff == 0 || coeff == 1,
                    "minimal polynomial has non-binary coefficient");
        if (coeff == 1)
            out.setBit(static_cast<std::size_t>(i));
    }
    return out;
}

/** Smallest coset member, used to deduplicate minimal polynomials. */
std::uint32_t
cosetLeader(std::uint32_t e, std::uint32_t n)
{
    std::uint32_t leader = e % n;
    std::uint32_t c = leader;
    do {
        c = static_cast<std::uint32_t>((2ull * c) % n);
        leader = std::min(leader, c);
    } while (c != e % n);
    return leader;
}

unsigned
pickFieldDegree(unsigned data_bits, unsigned correct_bits)
{
    for (unsigned m = 3; m <= 16; ++m) {
        if (data_bits + correct_bits * m <= (1u << m) - 1)
            return m;
    }
    NVCK_FATAL("no GF(2^m) with m <= 16 fits k=", data_bits,
               " t=", correct_bits);
}

/**
 * Compile-time-width core of the shifted-domain wide residue run: the
 * whole W-word remainder lives in registers for the entire run of
 * chunks instead of bouncing through memory once per step. In the
 * shifted domain one step is
 *   x = rem[W-1] ^ chunk;  word-shift rem up;  XOR eight lane rows
 * with no cross-word extraction and no top-word masking. @p next(c)
 * must return the c-th chunk in high-to-low absorption order.
 */
template <unsigned W, typename Next>
void
runWideFixed(std::uint64_t *state, const std::uint64_t *wtab,
             std::size_t nchunks, Next &&next)
{
    std::uint64_t rem[W];
    for (unsigned w = 0; w < W; ++w)
        rem[w] = state[w];
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::uint64_t x = rem[W - 1] ^ next(c);
        for (unsigned w = W; w-- > 1;)
            rem[w] = rem[w - 1];
        rem[0] = 0;
        for (unsigned b = 0; b < 8; ++b) {
            const std::uint64_t *row =
                &wtab[(static_cast<std::size_t>(b) * 256 +
                       ((x >> (8 * b)) & 0xFF)) *
                      W];
            for (unsigned w = 0; w < W; ++w)
                rem[w] ^= row[w];
        }
    }
    for (unsigned w = 0; w < W; ++w)
        state[w] = rem[w];
}

/** Width dispatch for runWideFixed, with a runtime-width fallback. */
template <typename Next>
void
runWide(std::uint64_t *state, const std::uint64_t *wtab, unsigned width,
        std::size_t nchunks, Next &&next)
{
    switch (width) {
      case 1:
        return runWideFixed<1>(state, wtab, nchunks, next);
      case 2:
        return runWideFixed<2>(state, wtab, nchunks, next);
      case 3:
        return runWideFixed<3>(state, wtab, nchunks, next);
      case 4:
        return runWideFixed<4>(state, wtab, nchunks, next);
      case 5:
        return runWideFixed<5>(state, wtab, nchunks, next);
      case 6:
        return runWideFixed<6>(state, wtab, nchunks, next);
      default:
        break;
    }
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::uint64_t x = state[width - 1] ^ next(c);
        for (unsigned w = width; w-- > 1;)
            state[w] = state[w - 1];
        state[0] = 0;
        for (unsigned b = 0; b < 8; ++b) {
            const std::uint64_t *row =
                &wtab[(static_cast<std::size_t>(b) * 256 +
                       ((x >> (8 * b)) & 0xFF)) *
                      width];
            for (unsigned w = 0; w < width; ++w)
                state[w] ^= row[w];
        }
    }
}

} // namespace

BchCodec::BchCodec(unsigned data_bits, unsigned correct_bits,
                   unsigned field_degree, CodecKernel kernel)
    : dataBits(data_bits),
      correctBits(correct_bits),
      checkBits(0),
      gf(field_degree ? field_degree
                      : pickFieldDegree(data_bits, correct_bits)),
      kern(kernel)
{
    NVCK_ASSERT(correct_bits >= 1, "BCH needs t >= 1");

    // Generator = product of the distinct minimal polynomials of
    // alpha^1, alpha^3, ..., alpha^(2t-1).
    std::set<std::uint32_t> leaders;
    gen = BinPoly::one();
    for (unsigned i = 1; i <= 2 * correct_bits - 1; i += 2) {
        const std::uint32_t leader = cosetLeader(i, gf.order());
        if (leaders.insert(leader).second)
            gen = BinPoly::mul(gen, minimalPoly(gf, i));
    }
    checkBits = static_cast<unsigned>(gen.degree());
    NVCK_ASSERT(dataBits + checkBits <= gf.order(),
                "shortened BCH does not fit in GF(2^", gf.m(), ")");

    // Keep only the low part of the generator (without the x^r term):
    // that is what the LFSR XORs into the remainder on feedback.
    genWords = gen.raw();
    genWords.resize((checkBits + 64) / 64, 0);
    genWords[checkBits >> 6] &= ~(1ull << (checkBits & 63));

    remWords = (checkBits + 63) / 64;
    remTopMask = (checkBits & 63) != 0
                     ? (1ull << (checkBits & 63)) - 1
                     : ~0ull;

    // Chien-search strides alpha^(-j) = alpha^(order - j), hoisted out
    // of the per-position loop (used by both kernels).
    chienStride.resize(correctBits + 1, 1);
    for (unsigned j = 1; j <= correctBits; ++j)
        chienStride[j] = gf.alphaPow(gf.order() - j);

    // Residue-to-syndrome fixups: rem = (c(x) * x^r) mod g evaluates at
    // a root alpha^j of g to c(alpha^j) * alpha^(rj), so S_j is
    // rem(alpha^j) scaled by alpha^(-rj).
    resFix.resize(correctBits);
    const std::uint64_t ord = gf.order();
    const std::uint64_t rneg = (ord - checkBits % ord) % ord;
    for (unsigned idx = 0; idx < correctBits; ++idx)
        resFix[idx] = gf.alphaPow((rneg * (2 * idx + 1)) % ord);

    setKernel(kernel);
}

void
BchCodec::setKernel(CodecKernel kernel)
{
    kern = kernel;
    if (kern == CodecKernel::Scalar)
        buildScalarTables();
    else
        buildSlicedTables();
}

void
BchCodec::buildScalarTables()
{
    if (!oddSynTables.empty())
        return;
    // Precompute alpha^(j*i) tables for odd syndrome indices j, flattened
    // per j over codeword bit positions i.
    const unsigned n_bits = dataBits + checkBits;
    oddSynTables.resize(correctBits);
    for (unsigned idx = 0; idx < correctBits; ++idx) {
        const std::uint64_t j = 2ull * idx + 1;
        auto &tab = oddSynTables[idx];
        tab.resize(n_bits);
        std::uint64_t e = 0;
        for (unsigned i = 0; i < n_bits; ++i) {
            tab[i] = gf.alphaPow(e);
            e += j;
            if (e >= gf.order())
                e -= gf.order();
        }
    }
}

void
BchCodec::buildSlicedTables()
{
    if (!synByteTab.empty())
        return;

    // Slicing-by-8 remainder updates: encTable[v] = (v(x) * x^r) mod g,
    // built by feeding the byte through the reference LFSR (high bit
    // first), so the table is bit-identical to eight serial steps. The
    // byte path needs r >= 8; tiny codes keep the serial loop.
    if (checkBits >= 8) {
        encTable.assign(256u * remWords, 0);
        std::vector<std::uint64_t> rem(remWords);
        for (unsigned v = 0; v < 256; ++v) {
            std::fill(rem.begin(), rem.end(), 0);
            for (unsigned j = 8; j-- > 0;)
                stepBit(rem, ((v >> j) & 1) != 0);
            std::copy(rem.begin(), rem.end(),
                      encTable.begin() + v * remWords);
        }
    }

    // 64-bit-wide residue lanes for the streaming scrub pass: lane b
    // entry v holds (v(x) * x^(8b) * x^r) mod g, grown from the
    // encTable rows by serial x-multiplications (stepBit with a zero
    // input bit), so the lanes stay bit-identical to the reference
    // LFSR. The rows are stored pre-shifted left by 64*remWords - r
    // (the shifted domain of shiftRemUp), which makes the hot wide
    // step branch-, extraction-, and mask-free. The wide feedback
    // chunk must fit inside the remainder, so only codes with r >= 64
    // get them.
    if (checkBits >= 64) {
        const unsigned up = 64u * remWords - checkBits;
        wideTab.assign(8u * 256u * remWords, 0);
        std::vector<std::uint64_t> row(remWords);
        for (unsigned v = 0; v < 256; ++v) {
            std::copy_n(encTable.begin() + v * remWords, remWords,
                        row.begin());
            for (unsigned b = 0; b < 8; ++b) {
                if (b > 0) {
                    for (unsigned s = 0; s < 8; ++s)
                        stepBit(row, false);
                }
                std::uint64_t *dst =
                    &wideTab[(static_cast<std::size_t>(b) * 256 + v) *
                             remWords];
                if (up == 0) {
                    std::copy(row.begin(), row.end(), dst);
                    continue;
                }
                for (unsigned w = remWords; w-- > 1;)
                    dst[w] = (row[w] << up) | (row[w - 1] >> (64 - up));
                dst[0] = row[0] << up;
            }
        }
    }

    // Per-byte partial syndromes: synByteTab[j][v] = sum over set bits
    // b of v of alpha^((2j+1) * b), combined across bytes by Horner
    // steps of stride alpha^(8 * (2j+1)).
    synByteTab.assign(static_cast<std::size_t>(correctBits) * 256, 0);
    synStride.resize(correctBits);
    for (unsigned idx = 0; idx < correctBits; ++idx) {
        const std::uint64_t j = 2ull * idx + 1;
        GfElem bit_contrib[8];
        for (unsigned b = 0; b < 8; ++b)
            bit_contrib[b] = gf.alphaPow((j * b) % gf.order());
        GfElem *tab = &synByteTab[static_cast<std::size_t>(idx) * 256];
        tab[0] = 0;
        for (unsigned v = 1; v < 256; ++v)
            tab[v] = tab[v & (v - 1)] ^
                     bit_contrib[std::countr_zero(v)];
        synStride[idx] = gf.alphaPow((8 * j) % gf.order());
    }
}

std::size_t
BchCodec::tableBytes() const
{
    std::size_t bytes = genWords.size() * sizeof(std::uint64_t) +
                        chienStride.size() * sizeof(GfElem) +
                        resFix.size() * sizeof(GfElem);
    if (kern == CodecKernel::Scalar) {
        for (const auto &tab : oddSynTables)
            bytes += tab.size() * sizeof(GfElem);
    } else {
        bytes += encTable.size() * sizeof(std::uint64_t) +
                 wideTab.size() * sizeof(std::uint64_t) +
                 synByteTab.size() * sizeof(GfElem) +
                 synStride.size() * sizeof(GfElem);
    }
    return bytes;
}

void
BchCodec::stepBit(std::vector<std::uint64_t> &rem, bool in) const
{
    const unsigned top = checkBits - 1;
    const bool feedback =
        in ^ (((rem[top >> 6] >> (top & 63)) & 1) != 0);
    for (unsigned w = remWords; w-- > 1;)
        rem[w] = (rem[w] << 1) | (rem[w - 1] >> 63);
    rem[0] <<= 1;
    rem[remWords - 1] &= remTopMask;
    if (feedback) {
        for (unsigned w = 0; w < remWords; ++w)
            rem[w] ^= genWords[w];
    }
}

std::vector<std::uint64_t>
BchCodec::scalarResidue(const std::vector<std::uint64_t> &words,
                        std::size_t nbits) const
{
    // LFSR division: remainder of p(x) * x^r by g(x), processing bits
    // from the highest coefficient downward.
    std::vector<std::uint64_t> rem(remWords, 0);
    for (std::size_t i = nbits; i-- > 0;)
        stepBit(rem, ((words[i >> 6] >> (i & 63)) & 1) != 0);
    return rem;
}

void
BchCodec::byteStep(std::vector<std::uint64_t> &rem,
                   unsigned in_byte) const
{
    // Slicing-by-8: with rem = low + top8 * x^(r-8),
    //   (rem * x^8 + v(x) * x^r) mod g
    //     = low * x^8  ^  ((top8 ^ v)(x) * x^r mod g)
    // and the second term is one encTable row.
    const unsigned tb_word = (checkBits - 8) >> 6;
    const unsigned tb_shift = (checkBits - 8) & 63;
    std::uint64_t f = rem[tb_word] >> tb_shift;
    if (tb_shift + 8 > 64)
        f |= rem[tb_word + 1] << (64 - tb_shift);
    const unsigned row_idx =
        static_cast<unsigned>((f ^ in_byte) & 0xFF);
    for (unsigned w = remWords; w-- > 1;)
        rem[w] = (rem[w] << 8) | (rem[w - 1] >> 56);
    rem[0] <<= 8;
    rem[remWords - 1] &= remTopMask;
    const std::uint64_t *row = &encTable[row_idx * remWords];
    for (unsigned w = 0; w < remWords; ++w)
        rem[w] ^= row[w];
}

void
BchCodec::shiftRemUp(std::vector<std::uint64_t> &rem) const
{
    const unsigned up = 64u * remWords - checkBits;
    if (up == 0)
        return;
    for (unsigned w = remWords; w-- > 1;)
        rem[w] = (rem[w] << up) | (rem[w - 1] >> (64 - up));
    rem[0] <<= up;
}

void
BchCodec::shiftRemDown(std::vector<std::uint64_t> &rem) const
{
    const unsigned up = 64u * remWords - checkBits;
    if (up == 0)
        return;
    for (unsigned w = 0; w + 1 < remWords; ++w)
        rem[w] = (rem[w] >> up) | (rem[w + 1] << (64 - up));
    rem[remWords - 1] >>= up;
}

std::vector<std::uint64_t>
BchCodec::slicedResidue(const std::vector<std::uint64_t> &words,
                        std::size_t nbits) const
{
    std::vector<std::uint64_t> rem(remWords, 0);
    if (checkBits < 8) {
        for (std::size_t i = nbits; i-- > 0;)
            stepBit(rem, ((words[i >> 6] >> (i & 63)) & 1) != 0);
        return rem;
    }

    // Leading partial byte bit-serially, so the remaining length is a
    // multiple of 8 and every input byte sits within one storage word.
    std::size_t i = nbits;
    while ((i & 7) != 0) {
        --i;
        stepBit(rem, ((words[i >> 6] >> (i & 63)) & 1) != 0);
    }

    while (i != 0) {
        i -= 8;
        byteStep(rem, static_cast<unsigned>(
                          (words[i >> 6] >> (i & 63)) & 0xFF));
    }
    return rem;
}

std::vector<std::uint64_t>
BchCodec::residue(const std::vector<std::uint64_t> &words,
                  std::size_t nbits) const
{
    return kern == CodecKernel::Sliced ? slicedResidue(words, nbits)
                                       : scalarResidue(words, nbits);
}

BitVec
BchCodec::encode(const BitVec &data) const
{
    NVCK_ASSERT(data.size() == dataBits, "BCH encode: bad data length");
    const BitVec check = encodeDelta(data);
    BitVec codeword(n());
    codeword.copyRange(0, check, 0, checkBits);
    codeword.copyRange(checkBits, data, 0, dataBits);
    return codeword;
}

BitVec
BchCodec::encodeDelta(const BitVec &data_delta) const
{
    NVCK_ASSERT(data_delta.size() == dataBits,
                "BCH encodeDelta: bad data length");
    const std::vector<std::uint64_t> rem =
        residue(data_delta.raw(), dataBits);
    BitVec check(checkBits);
    std::copy(rem.begin(), rem.end(), check.raw().begin());
    return check;
}

void
BchCodec::reencode(BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH reencode: bad length");
    const BitVec check = encodeDelta(extractData(codeword));
    codeword.copyRange(0, check, 0, checkBits);
}

BitVec
BchCodec::extractData(const BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH extractData: bad length");
    BitVec data(dataBits);
    data.copyRange(0, codeword, checkBits, dataBits);
    return data;
}

bool
BchCodec::isCodeword(const BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH isCodeword: bad length");
    if (kern == CodecKernel::Sliced) {
        // Word-level residue check: c(x) * x^r mod g is zero exactly
        // when c(x) mod g is (x is invertible mod g since g(0) = 1).
        const std::vector<std::uint64_t> rem =
            slicedResidue(codeword.raw(), n());
        return std::all_of(rem.begin(), rem.end(),
                           [](std::uint64_t w) { return w == 0; });
    }
    // Scalar reference: r(x) mod g(x) == 0 via BinPoly division.
    BinPoly received;
    for (unsigned i = 0; i < n(); ++i)
        if (codeword.get(i))
            received.setBit(i);
    return BinPoly::mod(received, gen).isZero();
}

std::vector<GfElem>
BchCodec::syndromes(const BitVec &codeword) const
{
    return kern == CodecKernel::Sliced ? syndromesSliced(codeword)
                                       : syndromesScalar(codeword);
}

std::vector<GfElem>
BchCodec::syndromesScalar(const BitVec &codeword) const
{
    std::vector<GfElem> syn(2 * correctBits, 0);
    const unsigned n_bits = n();
    // Odd syndromes from the tables; iterate set bits word-by-word.
    // Words are masked to the codeword length up front, so an
    // over-long BitVec contributes nothing past n().
    const auto &words = codeword.raw();
    const std::size_t n_words = (n_bits + 63) / 64;
    const std::size_t scan = std::min(words.size(), n_words);
    for (std::size_t w = 0; w < scan; ++w) {
        std::uint64_t bits = words[w];
        if (w == n_words - 1 && (n_bits & 63) != 0)
            bits &= (1ull << (n_bits & 63)) - 1;
        while (bits) {
            const unsigned i =
                static_cast<unsigned>(w * 64 +
                                      std::countr_zero(bits));
            bits &= bits - 1;
            for (unsigned idx = 0; idx < correctBits; ++idx)
                syn[2 * idx] ^= oddSynTables[idx][i];
        }
    }
    // Even syndromes via the binary-BCH identity S_{2j} = S_j^2. Work
    // into a properly indexed array: entry j-1 holds S_j.
    std::vector<GfElem> out(2 * correctBits, 0);
    for (unsigned idx = 0; idx < correctBits; ++idx)
        out[2 * idx] = syn[2 * idx]; // S_{2idx+1}
    for (unsigned j = 2; j <= 2 * correctBits; j += 2) {
        const GfElem half = out[j / 2 - 1];
        out[j - 1] = gf.mul(half, half);
    }
    return out;
}

std::vector<GfElem>
BchCodec::syndromesSliced(const BitVec &codeword) const
{
    std::vector<GfElem> out(2 * correctBits, 0);
    const unsigned n_bits = n();
    const auto &words = codeword.raw();
    const std::size_t n_bytes = (n_bits + 7) / 8;
    const unsigned tail_bits = n_bits & 7;
    const std::uint64_t tail_mask =
        tail_bits != 0 ? (1ull << tail_bits) - 1 : 0xFFull;

    // S_{2idx+1} = sum over bytes w of alpha^(8wj) * synByteTab[byte_w],
    // folded high byte to low by Horner steps of stride alpha^(8j).
    for (unsigned idx = 0; idx < correctBits; ++idx) {
        const GfElem *tab =
            &synByteTab[static_cast<std::size_t>(idx) * 256];
        const GfElem stride = synStride[idx];
        GfElem acc = 0;
        for (std::size_t w = n_bytes; w-- > 0;) {
            const std::size_t bit = w * 8;
            std::uint64_t byte = (words[bit >> 6] >> (bit & 63)) & 0xFF;
            if (w == n_bytes - 1)
                byte &= tail_mask;
            acc = gf.mul(acc, stride) ^ tab[byte];
        }
        out[2 * idx] = acc;
    }
    // Even syndromes via squaring, exactly as the scalar kernel.
    for (unsigned j = 2; j <= 2 * correctBits; j += 2) {
        const GfElem half = out[j / 2 - 1];
        out[j - 1] = gf.mul(half, half);
    }
    return out;
}

void
BchCodec::residueStart(BchResidue &state) const
{
    state.rem.assign(remWords, 0);
}

void
BchCodec::residueAbsorbBytes(BchResidue &state, const std::uint8_t *bytes,
                             std::size_t count) const
{
    auto &rem = state.rem;
    std::size_t i = count;
    if (kern == CodecKernel::Sliced && checkBits >= 8) {
        if (!wideTab.empty() && i >= 8) {
            // Whole 8-byte chunks from the top down through the
            // register-resident wide run; the low i % 8 bytes fall
            // through to the byte step below.
            const std::size_t chunks = i / 8;
            const std::size_t low = i - 8 * chunks;
            shiftRemUp(rem);
            runWide(rem.data(), wideTab.data(), remWords, chunks,
                    [&](std::size_t c) {
                        const std::uint8_t *p =
                            bytes + low + 8 * (chunks - 1 - c);
                        std::uint64_t v = 0;
                        for (unsigned b = 0; b < 8; ++b)
                            v |= static_cast<std::uint64_t>(p[b])
                                 << (8 * b);
                        return v;
                    });
            shiftRemDown(rem);
            i = low;
        }
        while (i != 0) {
            --i;
            byteStep(rem, bytes[i]);
        }
        return;
    }
    while (i != 0) {
        --i;
        for (unsigned b = 8; b-- > 0;)
            stepBit(rem, ((bytes[i] >> b) & 1) != 0);
    }
}

void
BchCodec::residueAbsorbBits(BchResidue &state, const std::uint64_t *words,
                            std::size_t nbits) const
{
    auto &rem = state.rem;
    std::size_t i = nbits;
    if (kern == CodecKernel::Sliced && checkBits >= 8) {
        // Leading partial byte bit-serially so the byte and chunk
        // extractions below never straddle a storage word.
        while ((i & 7) != 0) {
            --i;
            stepBit(rem, ((words[i >> 6] >> (i & 63)) & 1) != 0);
        }
        if (!wideTab.empty() && i >= 64) {
            const std::size_t chunks = i / 64;
            const std::size_t low = i - 64 * chunks;
            shiftRemUp(rem);
            runWide(rem.data(), wideTab.data(), remWords, chunks,
                    [&](std::size_t c) {
                        const std::size_t off =
                            low + 64 * (chunks - 1 - c);
                        std::uint64_t chunk =
                            words[off >> 6] >> (off & 63);
                        if ((off & 63) != 0)
                            chunk |= words[(off >> 6) + 1]
                                     << (64 - (off & 63));
                        return chunk;
                    });
            shiftRemDown(rem);
            i = low;
        }
        while (i >= 8) {
            i -= 8;
            byteStep(rem, static_cast<unsigned>(
                              (words[i >> 6] >> (i & 63)) & 0xFF));
        }
    }
    while (i != 0) {
        --i;
        stepBit(rem, ((words[i >> 6] >> (i & 63)) & 1) != 0);
    }
}

bool
BchCodec::residueIsZero(const BchResidue &state) const
{
    return std::all_of(state.rem.begin(), state.rem.end(),
                       [](std::uint64_t w) { return w == 0; });
}

std::vector<GfElem>
BchCodec::syndromesFromResidue(const BchResidue &state) const
{
    std::vector<GfElem> out(2 * correctBits, 0);
    const auto &words = state.rem;
    if (kern == CodecKernel::Sliced && checkBits >= 8) {
        // Same Horner fold as syndromesSliced, but over the r-bit
        // remainder instead of the n-bit codeword.
        const std::size_t n_bytes = (checkBits + 7) / 8;
        const unsigned tail_bits = checkBits & 7;
        const std::uint64_t tail_mask =
            tail_bits != 0 ? (1ull << tail_bits) - 1 : 0xFFull;
        for (unsigned idx = 0; idx < correctBits; ++idx) {
            const GfElem *tab =
                &synByteTab[static_cast<std::size_t>(idx) * 256];
            const GfElem stride = synStride[idx];
            GfElem acc = 0;
            for (std::size_t w = n_bytes; w-- > 0;) {
                const std::size_t bit = w * 8;
                std::uint64_t byte =
                    (words[bit >> 6] >> (bit & 63)) & 0xFF;
                if (w == n_bytes - 1)
                    byte &= tail_mask;
                acc = gf.mul(acc, stride) ^ tab[byte];
            }
            out[2 * idx] = gf.mul(acc, resFix[idx]);
        }
    } else {
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                const unsigned i = static_cast<unsigned>(
                    w * 64 + std::countr_zero(bits));
                bits &= bits - 1;
                for (unsigned idx = 0; idx < correctBits; ++idx)
                    out[2 * idx] ^= oddSynTables[idx][i];
            }
        }
        for (unsigned idx = 0; idx < correctBits; ++idx)
            out[2 * idx] = gf.mul(out[2 * idx], resFix[idx]);
    }
    for (unsigned j = 2; j <= 2 * correctBits; j += 2) {
        const GfElem half = out[j / 2 - 1];
        out[j - 1] = gf.mul(half, half);
    }
    return out;
}

bool
BchCodec::bmLocator(const std::vector<GfElem> &syn, bool fast,
                    GfPoly &lambda, unsigned &len) const
{
    lambda = GfPoly::constant(1);
    GfPoly prev = GfPoly::constant(1);
    unsigned l = 0;
    unsigned shift = 1;
    GfElem prev_disc = 1;
    for (unsigned step = 0; step < 2 * correctBits; ++step) {
        if (fast && (step & 1) != 0) {
            // Berlekamp's binary trick: this step consumes the even
            // syndrome S_{step+1} = S_{(step+1)/2}^2, whose
            // discrepancy is structurally zero for any received word
            // of a binary code, so the full iteration always lands in
            // the disc == 0 branch here.
            ++shift;
            continue;
        }
        GfElem disc = syn[step];
        for (unsigned i = 1; i <= l; ++i)
            disc ^= gf.mul(lambda.coeff(i), syn[step - i]);
        if (disc == 0) {
            ++shift;
            continue;
        }
        const GfPoly adjust = GfPoly::scale(
            gf, GfPoly::mul(gf, GfPoly::monomial(1, shift), prev),
            gf.div(disc, prev_disc));
        const GfPoly next = GfPoly::add(lambda, adjust);
        if (2 * l <= step) {
            prev = lambda;
            prev_disc = disc;
            l = step + 1 - l;
            shift = 1;
        } else {
            ++shift;
        }
        lambda = next;
        // The register length never shrinks, so once it exceeds t the
        // word is uncorrectable no matter what the remaining steps do.
        if (fast && l > correctBits)
            break;
    }
    len = l;
    return l <= correctBits && lambda.degree() == static_cast<int>(l);
}

bool
BchCodec::chienSearch(const GfPoly &lambda, unsigned nu, bool early_stop,
                      std::vector<std::uint32_t> &positions) const
{
    positions.clear();
    // term[j] tracks lambda_j * alpha^(-i*j) as i advances.
    std::vector<GfElem> term(nu + 1);
    for (unsigned j = 0; j <= nu; ++j)
        term[j] = lambda.coeff(j);
    const unsigned n_bits = n();
    for (unsigned i = 0; i < n_bits; ++i) {
        GfElem sum = 0;
        for (unsigned j = 0; j <= nu; ++j)
            sum ^= term[j];
        if (sum == 0) {
            positions.push_back(i);
            // A degree-nu locator has at most nu roots in the whole
            // field: after the nu-th one the rest of the scan can only
            // confirm there are no more.
            if (early_stop && positions.size() == nu)
                return true;
        }
        for (unsigned j = 1; j <= nu; ++j)
            term[j] = gf.mul(term[j], chienStride[j]);
    }
    // Fewer than nu roots in the shortened range (or repeated roots):
    // the pattern is uncorrectable.
    return positions.size() == nu;
}

BchDecodeResult
BchCodec::solveFromResidue(const BchResidue &state,
                           ScrubDecodePath path) const
{
    BchDecodeResult result;
    if (residueIsZero(state))
        return result; // Clean

    const std::vector<GfElem> syn = syndromesFromResidue(state);
    const bool fast = path == ScrubDecodePath::Fast;

    GfPoly lambda;
    unsigned nu = 0;
    if (!bmLocator(syn, fast, lambda, nu)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }
    std::vector<std::uint32_t> positions;
    if (!chienSearch(lambda, nu, fast, positions)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }
    result.status = DecodeStatus::Corrected;
    result.corrections = nu;
    result.positions = std::move(positions);
    return result;
}

BchDecodeResult
BchCodec::decode(BitVec &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "BCH decode: bad length");
    BchDecodeResult result;

    if (isCodeword(codeword)) {
        result.status = DecodeStatus::Clean;
        return result;
    }

    const std::vector<GfElem> syn = syndromes(codeword);

    // Berlekamp-Massey over GF(2^m), then the exhaustive Chien scan:
    // the reference pipeline (ScrubDecodePath::Full semantics).
    GfPoly lambda;
    unsigned nu = 0;
    if (!bmLocator(syn, /*fast=*/false, lambda, nu)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    std::vector<std::uint32_t> error_positions;
    if (!chienSearch(lambda, nu, /*early_stop=*/false,
                     error_positions)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    for (std::uint32_t pos : error_positions)
        codeword.flip(pos);

    result.status = DecodeStatus::Corrected;
    result.corrections = nu;
    result.positions = std::move(error_positions);
    return result;
}

} // namespace nvck
