#include "rs.hh"

#include <algorithm>

#include "common/log.hh"

namespace nvck {

RsCodec::RsCodec(unsigned data_symbols, unsigned check_symbols,
                 unsigned field_degree)
    : dataSymbols(data_symbols),
      checkSymbols(check_symbols),
      gf(field_degree)
{
    NVCK_ASSERT(checkSymbols >= 1, "RS needs at least one check symbol");
    NVCK_ASSERT(n() <= gf.order(),
                "RS codeword longer than field order");
    // Narrow-sense generator: g(x) = prod_{i=1}^{r} (x - alpha^i).
    gen = GfPoly::constant(1);
    for (unsigned i = 1; i <= checkSymbols; ++i)
        gen = GfPoly::mul(gf, gen, GfPoly({gf.alphaPow(i), 1}));
}

std::vector<GfElem>
RsCodec::encode(const std::vector<GfElem> &data) const
{
    NVCK_ASSERT(data.size() == dataSymbols, "RS encode: bad data length");
    // Systematic: codeword(x) = d(x) * x^r + (d(x) * x^r mod g(x)).
    GfPoly message;
    for (unsigned i = 0; i < dataSymbols; ++i)
        message.setCoeff(checkSymbols + i, data[i]);
    const GfPoly parity = GfPoly::mod(gf, message, gen);

    std::vector<GfElem> codeword(n(), 0);
    for (unsigned i = 0; i < checkSymbols; ++i)
        codeword[i] = parity.coeff(i);
    for (unsigned i = 0; i < dataSymbols; ++i)
        codeword[checkSymbols + i] = data[i];
    return codeword;
}

void
RsCodec::reencode(std::vector<GfElem> &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "RS reencode: bad length");
    const auto fresh = encode(extractData(codeword));
    std::copy(fresh.begin(), fresh.begin() + checkSymbols,
              codeword.begin());
}

std::vector<GfElem>
RsCodec::extractData(const std::vector<GfElem> &cw) const
{
    NVCK_ASSERT(cw.size() == n(), "RS extractData: bad length");
    return std::vector<GfElem>(cw.begin() + checkSymbols, cw.end());
}

std::vector<GfElem>
RsCodec::syndromes(const std::vector<GfElem> &cw) const
{
    // S_j = R(alpha^j), j = 1..r, stored at index j-1.
    std::vector<GfElem> syn(checkSymbols, 0);
    for (unsigned j = 1; j <= checkSymbols; ++j) {
        const GfElem point = gf.alphaPow(j);
        GfElem acc = 0;
        for (std::size_t i = cw.size(); i-- > 0;)
            acc = Gf2m::add(gf.mul(acc, point), cw[i]);
        syn[j - 1] = acc;
    }
    return syn;
}

bool
RsCodec::isCodeword(const std::vector<GfElem> &codeword) const
{
    const auto syn = syndromes(codeword);
    return std::all_of(syn.begin(), syn.end(),
                       [](GfElem s) { return s == 0; });
}

RsDecodeResult
RsCodec::decode(std::vector<GfElem> &codeword,
                const std::vector<std::uint32_t> &erasures,
                int max_errors) const
{
    NVCK_ASSERT(codeword.size() == n(), "RS decode: bad length");
    RsDecodeResult result;

    const unsigned num_erasures = static_cast<unsigned>(erasures.size());
    if (num_erasures > checkSymbols) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    const std::vector<GfElem> syn = syndromes(codeword);
    const bool syndrome_zero =
        std::all_of(syn.begin(), syn.end(),
                    [](GfElem s) { return s == 0; });
    if (syndrome_zero) {
        result.status = DecodeStatus::Clean;
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 - X_l x).
    GfPoly lambda = GfPoly::constant(1);
    for (std::uint32_t pos : erasures) {
        NVCK_ASSERT(pos < n(), "erasure position out of range");
        lambda = GfPoly::mul(
            gf, lambda, GfPoly({1, gf.alphaPow(pos)}));
    }
    GfPoly b = lambda;

    // Berlekamp-Massey over the remaining degrees of freedom.
    unsigned el = num_erasures;
    for (unsigned step = num_erasures + 1; step <= checkSymbols; ++step) {
        GfElem disc = 0;
        for (unsigned i = 0; i < step; ++i) {
            const GfElem li = lambda.coeff(i);
            if (li != 0)
                disc ^= gf.mul(li, syn[step - i - 1]);
        }
        if (disc == 0) {
            b = GfPoly::mul(gf, b, GfPoly::monomial(1, 1));
            continue;
        }
        const GfPoly shifted =
            GfPoly::mul(gf, b, GfPoly::monomial(disc, 1));
        const GfPoly next = GfPoly::add(lambda, shifted);
        if (2 * el <= step + num_erasures - 1) {
            el = step + num_erasures - el;
            b = GfPoly::scale(gf, lambda, gf.inv(disc));
        } else {
            b = GfPoly::mul(gf, b, GfPoly::monomial(1, 1));
        }
        lambda = next;
    }

    const int nu = lambda.degree();
    if (nu < 0 || static_cast<unsigned>(nu) != el ||
        2 * (el - num_erasures) + num_erasures > checkSymbols) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    const unsigned num_errors = el - num_erasures;
    if (max_errors >= 0 &&
        num_errors > static_cast<unsigned>(max_errors)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    // Chien search over the shortened positions.
    std::vector<std::uint32_t> positions;
    for (unsigned i = 0; i < n(); ++i) {
        const GfElem x = gf.alphaPow((gf.order() - i) % gf.order());
        if (lambda.eval(gf, x) == 0)
            positions.push_back(i);
    }
    if (positions.size() != static_cast<std::size_t>(nu)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    // Forney: e_i = Omega(X_i^{-1}) / Lambda'(X_i^{-1}) for fcr = 1.
    GfPoly syn_poly;
    for (unsigned j = 0; j < checkSymbols; ++j)
        syn_poly.setCoeff(j, syn[j]);
    const GfPoly omega = GfPoly::truncate(
        GfPoly::mul(gf, syn_poly, lambda), checkSymbols);
    const GfPoly lambda_prime = GfPoly::derivative(lambda);

    std::vector<GfElem> magnitudes(positions.size());
    for (std::size_t idx = 0; idx < positions.size(); ++idx) {
        const GfElem x_inv =
            gf.alphaPow((gf.order() - positions[idx]) % gf.order());
        const GfElem denom = lambda_prime.eval(gf, x_inv);
        if (denom == 0) {
            result.status = DecodeStatus::Uncorrectable;
            return result;
        }
        magnitudes[idx] = gf.div(omega.eval(gf, x_inv), denom);
    }

    // Validate magnitudes before touching the codeword: a zero
    // magnitude at a non-erased position means "error with no value",
    // which signals an inconsistent (uncorrectable) pattern.
    for (std::size_t idx = 0; idx < positions.size(); ++idx) {
        const bool is_erasure =
            std::find(erasures.begin(), erasures.end(), positions[idx]) !=
            erasures.end();
        if (magnitudes[idx] == 0 && !is_erasure) {
            result.status = DecodeStatus::Uncorrectable;
            return result;
        }
    }

    unsigned applied = 0;
    unsigned applied_errors = 0;
    for (std::size_t idx = 0; idx < positions.size(); ++idx) {
        if (magnitudes[idx] == 0)
            continue; // erased position happened to be correct
        const bool is_erasure =
            std::find(erasures.begin(), erasures.end(), positions[idx]) !=
            erasures.end();
        codeword[positions[idx]] ^= magnitudes[idx];
        ++applied;
        if (!is_erasure)
            ++applied_errors;
        result.positions.push_back(positions[idx]);
    }

    result.status = DecodeStatus::Corrected;
    result.corrections = applied;
    result.errorCorrections = applied_errors;
    return result;
}

} // namespace nvck
