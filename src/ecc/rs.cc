#include "rs.hh"

#include <algorithm>

#include "common/log.hh"

namespace nvck {

namespace {

/** Field-size cap under which the per-feedback mul-tables are built:
 *  2^m x r GfElems per table, 32 KiB per table at m = 10, r = 8. */
constexpr std::uint32_t kMulTabMaxFieldSize = 1u << 10;

} // namespace

RsCodec::RsCodec(unsigned data_symbols, unsigned check_symbols,
                 unsigned field_degree, CodecKernel kernel)
    : dataSymbols(data_symbols),
      checkSymbols(check_symbols),
      gf(field_degree),
      kern(kernel)
{
    NVCK_ASSERT(checkSymbols >= 1, "RS needs at least one check symbol");
    NVCK_ASSERT(n() <= gf.order(),
                "RS codeword longer than field order");
    // Narrow-sense generator: g(x) = prod_{i=1}^{r} (x - alpha^i).
    gen = GfPoly::constant(1);
    for (unsigned i = 1; i <= checkSymbols; ++i)
        gen = GfPoly::mul(gf, gen, GfPoly({gf.alphaPow(i), 1}));

    // LFSR taps: the low generator coefficients and their logs.
    genLow.resize(checkSymbols);
    genLog.resize(checkSymbols);
    for (unsigned i = 0; i < checkSymbols; ++i) {
        genLow[i] = gen.coeff(i);
        genLog[i] = genLow[i] != 0
                        ? static_cast<std::int32_t>(gf.log(genLow[i]))
                        : -1;
    }

    // Chien-search strides alpha^(-j), hoisted out of the per-position
    // loop (used by decode regardless of kernel).
    chienStride.resize(checkSymbols + 1, 1);
    for (unsigned j = 1; j <= checkSymbols; ++j)
        chienStride[j] = gf.alphaPow(gf.order() - j);

    setKernel(kernel);
}

void
RsCodec::setKernel(CodecKernel kernel)
{
    kern = kernel;
    if (kern == CodecKernel::Sliced)
        buildSlicedTables();
}

void
RsCodec::buildSlicedTables()
{
    if (!genMulTab.empty() || gf.size() > kMulTabMaxFieldSize)
        return;
    const std::uint32_t size = gf.size();
    genMulTab.assign(static_cast<std::size_t>(size) * checkSymbols, 0);
    for (std::uint32_t f = 1; f < size; ++f) {
        GfElem *row = &genMulTab[static_cast<std::size_t>(f) *
                                 checkSymbols];
        for (unsigned i = 0; i < checkSymbols; ++i)
            row[i] = gf.mul(f, genLow[i]);
    }
    synMulTab.assign(static_cast<std::size_t>(checkSymbols) * size, 0);
    for (unsigned j = 1; j <= checkSymbols; ++j) {
        const GfElem point = gf.alphaPow(j);
        GfElem *tab = &synMulTab[static_cast<std::size_t>(j - 1) * size];
        for (std::uint32_t a = 1; a < size; ++a)
            tab[a] = gf.mul(a, point);
    }
}

std::size_t
RsCodec::tableBytes() const
{
    std::size_t bytes = (genLow.size() + chienStride.size()) *
                            sizeof(GfElem) +
                        genLog.size() * sizeof(std::int32_t);
    if (kern == CodecKernel::Sliced)
        bytes += (genMulTab.size() + synMulTab.size()) * sizeof(GfElem);
    return bytes;
}

std::vector<GfElem>
RsCodec::encode(const std::vector<GfElem> &data) const
{
    NVCK_ASSERT(data.size() == dataSymbols, "RS encode: bad data length");
    return kern == CodecKernel::Sliced ? encodeSliced(data)
                                       : encodeScalar(data);
}

std::vector<GfElem>
RsCodec::encodeScalar(const std::vector<GfElem> &data) const
{
    // Systematic: codeword(x) = d(x) * x^r + (d(x) * x^r mod g(x)).
    GfPoly message;
    for (unsigned i = 0; i < dataSymbols; ++i)
        message.setCoeff(checkSymbols + i, data[i]);
    const GfPoly parity = GfPoly::mod(gf, message, gen);

    std::vector<GfElem> codeword(n(), 0);
    for (unsigned i = 0; i < checkSymbols; ++i)
        codeword[i] = parity.coeff(i);
    for (unsigned i = 0; i < dataSymbols; ++i)
        codeword[checkSymbols + i] = data[i];
    return codeword;
}

std::vector<GfElem>
RsCodec::encodeSliced(const std::vector<GfElem> &data) const
{
    // Synthetic division of d(x) * x^r by the monic generator: one
    // feedback symbol per data symbol, taps applied from a mul-table
    // row (small fields) or via log/exp batching (one log per feedback
    // instead of one per tap product).
    std::vector<GfElem> parity(checkSymbols, 0);
    for (unsigned i = dataSymbols; i-- > 0;) {
        const GfElem feedback = data[i] ^ parity[checkSymbols - 1];
        for (unsigned w = checkSymbols; w-- > 1;)
            parity[w] = parity[w - 1];
        parity[0] = 0;
        if (feedback == 0)
            continue;
        if (!genMulTab.empty()) {
            const GfElem *row =
                &genMulTab[static_cast<std::size_t>(feedback) *
                           checkSymbols];
            for (unsigned w = 0; w < checkSymbols; ++w)
                parity[w] ^= row[w];
        } else {
            const std::uint32_t lf = gf.log(feedback);
            for (unsigned w = 0; w < checkSymbols; ++w)
                if (genLog[w] >= 0)
                    parity[w] ^= gf.expSum(
                        lf, static_cast<std::uint32_t>(genLog[w]));
        }
    }

    std::vector<GfElem> codeword(n(), 0);
    std::copy(parity.begin(), parity.end(), codeword.begin());
    std::copy(data.begin(), data.end(),
              codeword.begin() + checkSymbols);
    return codeword;
}

void
RsCodec::reencode(std::vector<GfElem> &codeword) const
{
    NVCK_ASSERT(codeword.size() == n(), "RS reencode: bad length");
    const auto fresh = encode(extractData(codeword));
    std::copy(fresh.begin(), fresh.begin() + checkSymbols,
              codeword.begin());
}

std::vector<GfElem>
RsCodec::extractData(const std::vector<GfElem> &cw) const
{
    NVCK_ASSERT(cw.size() == n(), "RS extractData: bad length");
    return std::vector<GfElem>(cw.begin() + checkSymbols, cw.end());
}

std::vector<GfElem>
RsCodec::syndromes(const std::vector<GfElem> &cw) const
{
    return kern == CodecKernel::Sliced && !synMulTab.empty()
               ? syndromesSliced(cw)
               : syndromesScalar(cw);
}

std::vector<GfElem>
RsCodec::syndromesScalar(const std::vector<GfElem> &cw) const
{
    // S_j = R(alpha^j), j = 1..r, stored at index j-1.
    std::vector<GfElem> syn(checkSymbols, 0);
    for (unsigned j = 1; j <= checkSymbols; ++j) {
        const GfElem point = gf.alphaPow(j);
        GfElem acc = 0;
        for (std::size_t i = cw.size(); i-- > 0;)
            acc = Gf2m::add(gf.mul(acc, point), cw[i]);
        syn[j - 1] = acc;
    }
    return syn;
}

std::vector<GfElem>
RsCodec::syndromesSliced(const std::vector<GfElem> &cw) const
{
    // Same Horner recurrence, but the multiply-by-alpha^j step is one
    // table lookup (the accumulator indexes the stepper row directly).
    std::vector<GfElem> syn(checkSymbols, 0);
    const std::uint32_t size = gf.size();
    for (unsigned j = 1; j <= checkSymbols; ++j) {
        const GfElem *tab =
            &synMulTab[static_cast<std::size_t>(j - 1) * size];
        GfElem acc = 0;
        for (std::size_t i = cw.size(); i-- > 0;)
            acc = tab[acc] ^ cw[i];
        syn[j - 1] = acc;
    }
    return syn;
}

bool
RsCodec::isCodeword(const std::vector<GfElem> &codeword) const
{
    const auto syn = syndromes(codeword);
    return std::all_of(syn.begin(), syn.end(),
                       [](GfElem s) { return s == 0; });
}

RsDecodeResult
RsCodec::decode(std::vector<GfElem> &codeword,
                const std::vector<std::uint32_t> &erasures,
                int max_errors) const
{
    NVCK_ASSERT(codeword.size() == n(), "RS decode: bad length");
    RsDecodeResult result;

    const unsigned num_erasures = static_cast<unsigned>(erasures.size());
    if (num_erasures > checkSymbols) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    const std::vector<GfElem> syn = syndromes(codeword);
    const bool syndrome_zero =
        std::all_of(syn.begin(), syn.end(),
                    [](GfElem s) { return s == 0; });
    if (syndrome_zero) {
        result.status = DecodeStatus::Clean;
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 - X_l x).
    GfPoly lambda = GfPoly::constant(1);
    for (std::uint32_t pos : erasures) {
        NVCK_ASSERT(pos < n(), "erasure position out of range");
        lambda = GfPoly::mul(
            gf, lambda, GfPoly({1, gf.alphaPow(pos)}));
    }
    GfPoly b = lambda;

    // Berlekamp-Massey over the remaining degrees of freedom.
    unsigned el = num_erasures;
    for (unsigned step = num_erasures + 1; step <= checkSymbols; ++step) {
        GfElem disc = 0;
        for (unsigned i = 0; i < step; ++i) {
            const GfElem li = lambda.coeff(i);
            if (li != 0)
                disc ^= gf.mul(li, syn[step - i - 1]);
        }
        if (disc == 0) {
            b = GfPoly::mul(gf, b, GfPoly::monomial(1, 1));
            continue;
        }
        const GfPoly shifted =
            GfPoly::mul(gf, b, GfPoly::monomial(disc, 1));
        const GfPoly next = GfPoly::add(lambda, shifted);
        if (2 * el <= step + num_erasures - 1) {
            el = step + num_erasures - el;
            b = GfPoly::scale(gf, lambda, gf.inv(disc));
        } else {
            b = GfPoly::mul(gf, b, GfPoly::monomial(1, 1));
        }
        lambda = next;
    }

    const int nu = lambda.degree();
    if (nu < 0 || static_cast<unsigned>(nu) != el ||
        2 * (el - num_erasures) + num_erasures > checkSymbols) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    const unsigned num_errors = el - num_erasures;
    if (max_errors >= 0 &&
        num_errors > static_cast<unsigned>(max_errors)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    // Chien search over the shortened positions: term[j] tracks
    // lambda_j * alpha^(-i*j), stepped by the precomputed strides
    // instead of re-evaluating lambda at alpha^(-i) per position.
    std::vector<std::uint32_t> positions;
    {
        std::vector<GfElem> term(static_cast<unsigned>(nu) + 1);
        for (unsigned j = 0; j <= static_cast<unsigned>(nu); ++j)
            term[j] = lambda.coeff(j);
        for (unsigned i = 0; i < n(); ++i) {
            GfElem sum = 0;
            for (unsigned j = 0; j <= static_cast<unsigned>(nu); ++j)
                sum ^= term[j];
            if (sum == 0)
                positions.push_back(i);
            for (unsigned j = 1; j <= static_cast<unsigned>(nu); ++j)
                term[j] = gf.mul(term[j], chienStride[j]);
        }
    }
    if (positions.size() != static_cast<std::size_t>(nu)) {
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    // Forney: e_i = Omega(X_i^{-1}) / Lambda'(X_i^{-1}) for fcr = 1.
    GfPoly syn_poly;
    for (unsigned j = 0; j < checkSymbols; ++j)
        syn_poly.setCoeff(j, syn[j]);
    const GfPoly omega = GfPoly::truncate(
        GfPoly::mul(gf, syn_poly, lambda), checkSymbols);
    const GfPoly lambda_prime = GfPoly::derivative(lambda);

    std::vector<GfElem> magnitudes(positions.size());
    for (std::size_t idx = 0; idx < positions.size(); ++idx) {
        const GfElem x_inv =
            gf.alphaPow((gf.order() - positions[idx]) % gf.order());
        const GfElem denom = lambda_prime.eval(gf, x_inv);
        if (denom == 0) {
            result.status = DecodeStatus::Uncorrectable;
            return result;
        }
        magnitudes[idx] = gf.div(omega.eval(gf, x_inv), denom);
    }

    // Validate magnitudes before touching the codeword: a zero
    // magnitude at a non-erased position means "error with no value",
    // which signals an inconsistent (uncorrectable) pattern.
    for (std::size_t idx = 0; idx < positions.size(); ++idx) {
        const bool is_erasure =
            std::find(erasures.begin(), erasures.end(), positions[idx]) !=
            erasures.end();
        if (magnitudes[idx] == 0 && !is_erasure) {
            result.status = DecodeStatus::Uncorrectable;
            return result;
        }
    }

    unsigned applied = 0;
    unsigned applied_errors = 0;
    for (std::size_t idx = 0; idx < positions.size(); ++idx) {
        if (magnitudes[idx] == 0)
            continue; // erased position happened to be correct
        const bool is_erasure =
            std::find(erasures.begin(), erasures.end(), positions[idx]) !=
            erasures.end();
        codeword[positions[idx]] ^= magnitudes[idx];
        ++applied;
        if (!is_erasure)
            ++applied_errors;
        result.positions.push_back(positions[idx]);
    }

    result.status = DecodeStatus::Corrected;
    result.corrections = applied;
    result.errorCorrections = applied_errors;
    return result;
}

} // namespace nvck
