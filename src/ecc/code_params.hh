/**
 * @file
 * Shared parameter structs and storage-overhead arithmetic for the ECC
 * codes used throughout the paper: per-block BCH (bit-error correction),
 * per-chip VLEW BCH (boot-time correction), and per-block RS(72,64)
 * (chip-failure protection reused for runtime bit-error correction).
 */

#ifndef NVCK_ECC_CODE_PARAMS_HH
#define NVCK_ECC_CODE_PARAMS_HH

#include <cstdint>

namespace nvck {

/**
 * Number of BCH check bits the paper charges for a t-bit-error-correcting
 * code over k data bits: t * (ceil(log2(k)) + 1). (Section III-A.)
 */
unsigned bchCheckBitsPaper(unsigned t, unsigned k_bits);

/** Smallest field degree m with 2^m - 1 >= n (codeword length). */
unsigned bchFieldDegree(unsigned n_bits);

/** Storage overhead (check bits / data bits) of the paper's BCH formula. */
double bchOverheadPaper(unsigned t, unsigned k_bits);

/** Parameters of the paper's proposed layout (Section V-A). */
struct ProposalParams
{
    /** Data bytes per VLEW within one chip. */
    unsigned vlewDataBytes = 256;
    /** VLEW BCH correction strength. */
    unsigned vlewT = 22;
    /** VLEW BCH code bytes (33 B for 22-EC over 2048 data bits). */
    unsigned vlewCodeBytes = 33;
    /** Data chips per rank. */
    unsigned dataChips = 8;
    /** Parity (RS check) chips per rank. */
    unsigned parityChips = 1;
    /** RS data symbols per block (64 B). */
    unsigned rsDataBytes = 64;
    /** RS check symbols per block (8 B from the parity chip). */
    unsigned rsCheckBytes = 8;
    /** Runtime acceptance threshold on RS corrections (Section V-C). */
    unsigned runtimeThreshold = 2;

    /** Memory blocks spanned by one VLEW (256B / 8B per chip beat). */
    unsigned blocksPerVlew() const { return vlewDataBytes / 8; }

    /** Blocks spanned by one VLEW's code bits (~4). */
    unsigned
    codeBlocksPerVlew() const
    {
        return (vlewCodeBytes + 7) / 8;
    }

    /**
     * Extra blocks fetched when falling back to VLEW correction for one
     * block: the other 31 data blocks plus the ~4 code blocks (the paper
     * quotes 32 + 4 - 1 = 35 for the naive case and 36-37 with the
     * parity-chip copy of the block under the proposal).
     */
    unsigned vlewFetchOverheadBlocks() const
    {
        return blocksPerVlew() + codeBlocksPerVlew() - 1;
    }

    /**
     * Total storage cost: VLEW code bits in every chip plus the parity
     * chip: 33/256 + 1/8 * (1 + 33/256) = 27%. (Section V-A.)
     */
    double
    totalStorageCost() const
    {
        const double vlew =
            static_cast<double>(vlewCodeBytes) / vlewDataBytes;
        const double parity =
            static_cast<double>(parityChips) / dataChips * (1.0 + vlew);
        return vlew + parity;
    }
};

} // namespace nvck

#endif // NVCK_ECC_CODE_PARAMS_HH
