#include "crc.hh"

#include <array>

namespace nvck {

namespace {

constexpr std::array<std::uint8_t, 256>
buildTable()
{
    std::array<std::uint8_t, 256> table{};
    for (unsigned byte = 0; byte < 256; ++byte) {
        std::uint8_t crc = static_cast<std::uint8_t>(byte);
        for (int bit = 0; bit < 8; ++bit)
            crc = static_cast<std::uint8_t>(
                (crc & 0x80) ? (crc << 1) ^ 0x07 : crc << 1);
        table[byte] = crc;
    }
    return table;
}

constexpr auto crcTable = buildTable();

} // namespace

std::uint8_t
crc8(std::span<const std::uint8_t> bytes)
{
    std::uint8_t crc = 0;
    for (std::uint8_t b : bytes)
        crc = crcTable[crc ^ b];
    return crc;
}

bool
crc8Check(std::span<const std::uint8_t> bytes, std::uint8_t stored)
{
    return crc8(bytes) == stored;
}

} // namespace nvck
