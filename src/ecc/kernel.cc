#include "kernel.hh"

#include "common/env.hh"

namespace nvck {

const char *
codecKernelName(CodecKernel kernel)
{
    return kernel == CodecKernel::Scalar ? "scalar" : "sliced";
}

CodecKernel
defaultCodecKernel()
{
    static const CodecKernel kernel = [] {
        // Strict parse: anything other than the two kernel names is
        // rejected outright rather than silently running Sliced.
        const auto idx =
            envChoice("NVCK_CODEC_KERNEL", {"scalar", "sliced"});
        if (idx && *idx == 0)
            return CodecKernel::Scalar;
        return CodecKernel::Sliced;
    }();
    return kernel;
}

const char *
scrubDecodePathName(ScrubDecodePath path)
{
    return path == ScrubDecodePath::Full ? "full" : "fast";
}

ScrubDecodePath
defaultScrubDecodePath()
{
    static const ScrubDecodePath path = [] {
        const auto idx =
            envChoice("NVCK_SCRUB_DECODE", {"full", "fast"});
        if (idx && *idx == 0)
            return ScrubDecodePath::Full;
        return ScrubDecodePath::Fast;
    }();
    return path;
}

} // namespace nvck
