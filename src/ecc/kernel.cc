#include "kernel.hh"

#include <cstdlib>
#include <cstring>

namespace nvck {

const char *
codecKernelName(CodecKernel kernel)
{
    return kernel == CodecKernel::Scalar ? "scalar" : "sliced";
}

CodecKernel
defaultCodecKernel()
{
    static const CodecKernel kernel = [] {
        const char *env = std::getenv("NVCK_CODEC_KERNEL");
        if (env != nullptr && std::strcmp(env, "scalar") == 0)
            return CodecKernel::Scalar;
        return CodecKernel::Sliced;
    }();
    return kernel;
}

} // namespace nvck
