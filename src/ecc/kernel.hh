/**
 * @file
 * Codec kernel selection. Every codec in src/ecc keeps two
 * implementations of its hot inner loops:
 *
 *  - Scalar: the bit-serial / polynomial reference implementation,
 *    structured exactly like the algebra (LFSR division one bit at a
 *    time, per-set-bit syndrome accumulation). Slow but obviously
 *    correct; the differential tests pin the Sliced kernel against it.
 *  - Sliced: table-driven word-at-a-time kernels (CRC-style
 *    slicing-by-8 remainder updates, per-byte partial-syndrome tables,
 *    precomputed Chien strides) that process 8-64 bits per step.
 *
 * Both kernels are bit-identical by construction and by test; Sliced is
 * the default everywhere (pm_rank, injector, the Monte-Carlo sweeps).
 * Set NVCK_CODEC_KERNEL=scalar to force the reference path globally.
 */

#ifndef NVCK_ECC_KERNEL_HH
#define NVCK_ECC_KERNEL_HH

namespace nvck {

/** Which implementation of the codec inner loops to run. */
enum class CodecKernel
{
    Scalar, //!< bit-serial reference implementation
    Sliced, //!< table-driven slicing-by-8 kernels (default)
};

/** Human-readable kernel name ("scalar" / "sliced"). */
const char *codecKernelName(CodecKernel kernel);

/**
 * The process-wide default kernel: Sliced, unless the environment
 * variable NVCK_CODEC_KERNEL is set to "scalar". Any other value is
 * rejected with a one-line error and exit(2) (common/env.hh). Read
 * once and cached.
 */
CodecKernel defaultCodecKernel();

/**
 * Which corrupt-word decode path the batched scrub engine runs once a
 * residue pass has flagged a word as dirty:
 *
 *  - Full: the reference pipeline decode() uses — whole-codeword
 *    syndromes, all 2t Berlekamp-Massey steps, exhaustive Chien scan.
 *  - Fast: syndromes evaluated from the already-computed r-bit
 *    residue, the binary-BCH Berlekamp iteration (even-indexed
 *    syndrome steps have provably zero discrepancy and are skipped,
 *    and the iteration aborts as soon as the register length exceeds
 *    the error bound t), and a Chien search that stops at the nu-th
 *    root (a degree-nu locator has no further roots to find).
 *
 * Both paths produce bit-identical decode results by construction;
 * the ScrubEngine differential tests pin them against each other.
 */
enum class ScrubDecodePath
{
    Full, //!< reference decode pipeline
    Fast, //!< residue-reuse + early-exit decode (default)
};

/** Human-readable path name ("full" / "fast"). */
const char *scrubDecodePathName(ScrubDecodePath path);

/**
 * The process-wide default scrub decode path: Fast, unless the
 * environment variable NVCK_SCRUB_DECODE is set to "full". Any other
 * value is rejected with a one-line error and exit(2). Read once and
 * cached.
 */
ScrubDecodePath defaultScrubDecodePath();

} // namespace nvck

#endif // NVCK_ECC_KERNEL_HH
