#include "code_params.hh"

#include <bit>

namespace nvck {

unsigned
bchCheckBitsPaper(unsigned t, unsigned k_bits)
{
    // ceil(log2(k))
    unsigned log2k = std::bit_width(k_bits) - (std::has_single_bit(k_bits)
                                               ? 1 : 0);
    return t * (log2k + 1);
}

unsigned
bchFieldDegree(unsigned n_bits)
{
    unsigned m = 3;
    while (((1u << m) - 1) < n_bits)
        ++m;
    return m;
}

double
bchOverheadPaper(unsigned t, unsigned k_bits)
{
    return static_cast<double>(bchCheckBitsPaper(t, k_bits)) / k_bits;
}

} // namespace nvck
