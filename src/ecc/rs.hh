/**
 * @file
 * Reed-Solomon codec over GF(2^8) (or any GF(2^m)) with full
 * errors-and-erasures decoding (Berlekamp-Massey on Forney-modified
 * syndromes + Chien search + Forney value computation). This implements
 * the paper's per-block RS(72,64): 64 data bytes from eight data chips
 * plus 8 check bytes stored in the parity chip, able to correct 4 random
 * byte errors, or 8 erasures (a dead chip), or mixes with
 * 2*errors + erasures <= 8.
 */

#ifndef NVCK_ECC_RS_HH
#define NVCK_ECC_RS_HH

#include <cstdint>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/kernel.hh"
#include "gf/gf2m.hh"
#include "gf/gfpoly.hh"

namespace nvck {

/** Result of RsCodec::decode. */
struct RsDecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Number of symbol corrections applied (errors + erasure fills). */
    unsigned corrections = 0;
    /** Of those, corrections at non-erased positions. */
    unsigned errorCorrections = 0;
    /** Corrected symbol positions. */
    std::vector<std::uint32_t> positions;
};

/**
 * Systematic shortened RS(n, k) code, narrow-sense (first consecutive
 * root alpha^1). Symbol i of the codeword vector corresponds to the
 * coefficient of x^i; symbols [0, r) are the check symbols and
 * [r, r + k) are data, mirroring the BCH layout.
 */
class RsCodec
{
  public:
    /**
     * @param data_symbols k, number of data symbols.
     * @param check_symbols r = n - k, number of check symbols.
     * @param field_degree m, symbol width in bits (default one byte).
     * @param kernel inner-loop implementation; defaults to the
     *        process-wide default (Sliced unless NVCK_CODEC_KERNEL
     *        says otherwise).
     */
    RsCodec(unsigned data_symbols, unsigned check_symbols,
            unsigned field_degree = 8,
            CodecKernel kernel = defaultCodecKernel());

    /** The kernel this codec currently dispatches to. */
    CodecKernel kernel() const { return kern; }

    /** Switch kernels, building any missing lookup tables. */
    void setKernel(CodecKernel kernel);

    unsigned k() const { return dataSymbols; }
    unsigned r() const { return checkSymbols; }
    unsigned n() const { return dataSymbols + checkSymbols; }
    const Gf2m &field() const { return gf; }

    /** Design byte-error correction capability floor(r / 2). */
    unsigned t() const { return checkSymbols / 2; }

    /** Minimum Hamming distance r + 1 (MDS property). */
    unsigned dmin() const { return checkSymbols + 1; }

    /** Encode @p data (k symbols) into an n-symbol codeword. */
    std::vector<GfElem> encode(const std::vector<GfElem> &data) const;

    /** Recompute the check symbols of @p codeword in place. */
    void reencode(std::vector<GfElem> &codeword) const;

    /**
     * Decode in place.
     *
     * @param codeword n received symbols, corrected on success.
     * @param erasures positions whose symbols are known-suspect (e.g.
     *        the beats from a failed chip). Correctable when
     *        2 * errors + erasures <= r.
     * @param max_errors cap on the number of non-erasure errors the
     *        decoder will attempt (defaults to floor((r - e) / 2));
     *        lower caps model bounded-distance decoding used by the
     *        paper's threshold scheme.
     */
    RsDecodeResult decode(std::vector<GfElem> &codeword,
                          const std::vector<std::uint32_t> &erasures = {},
                          int max_errors = -1) const;

    /** True if @p codeword has an all-zero syndrome. */
    bool isCodeword(const std::vector<GfElem> &codeword) const;

    /** Extract the data symbols. */
    std::vector<GfElem> extractData(const std::vector<GfElem> &cw) const;

    /** Syndromes S_1 .. S_r of the received word. */
    std::vector<GfElem> syndromes(const std::vector<GfElem> &cw) const;

    /**
     * Lookup-table bytes held by this instance for its current kernel
     * (for footprint reporting; excludes the GF(2^m) log/exp tables).
     */
    std::size_t tableBytes() const;

  private:
    /** Reference syndromes: Horner evaluation with per-step GF muls. */
    std::vector<GfElem>
    syndromesScalar(const std::vector<GfElem> &cw) const;
    /** Table-driven syndromes: one mul-table lookup + XOR per symbol. */
    std::vector<GfElem>
    syndromesSliced(const std::vector<GfElem> &cw) const;

    /** Reference encode via generic polynomial modulo. */
    std::vector<GfElem>
    encodeScalar(const std::vector<GfElem> &data) const;
    /** LFSR synthetic division with mul-table / log-exp batched taps. */
    std::vector<GfElem>
    encodeSliced(const std::vector<GfElem> &data) const;

    /** Build the sliced mul-tables (idempotent). */
    void buildSlicedTables();

    unsigned dataSymbols;
    unsigned checkSymbols;
    Gf2m gf;
    /** Generator polynomial prod_{i=1..r} (x - alpha^i). */
    GfPoly gen;
    CodecKernel kern;

    /** Low generator coefficients g_0 .. g_{r-1} (monic top dropped). */
    std::vector<GfElem> genLow;
    /** Discrete logs of genLow (-1 for zero coefficients). */
    std::vector<std::int32_t> genLog;
    /**
     * Sliced encode taps, flattened 2^m x r: row f holds f * g_i for
     * every tap, one row XOR per nonzero feedback. Built when the
     * field is small (m <= 10); larger fields batch via log/exp.
     */
    std::vector<GfElem> genMulTab;
    /**
     * Sliced syndrome steppers, flattened r x 2^m: entry (j-1, a) is
     * a * alpha^j, turning each Horner step into one table lookup.
     * Built under the same small-field gate as genMulTab.
     */
    std::vector<GfElem> synMulTab;
    /** chienStride[j] = alpha^(order - j), hoisted out of the search. */
    std::vector<GfElem> chienStride;
};

} // namespace nvck

#endif // NVCK_ECC_RS_HH
