/**
 * @file
 * Reed-Solomon codec over GF(2^8) (or any GF(2^m)) with full
 * errors-and-erasures decoding (Berlekamp-Massey on Forney-modified
 * syndromes + Chien search + Forney value computation). This implements
 * the paper's per-block RS(72,64): 64 data bytes from eight data chips
 * plus 8 check bytes stored in the parity chip, able to correct 4 random
 * byte errors, or 8 erasures (a dead chip), or mixes with
 * 2*errors + erasures <= 8.
 */

#ifndef NVCK_ECC_RS_HH
#define NVCK_ECC_RS_HH

#include <cstdint>
#include <vector>

#include "ecc/bch.hh"
#include "gf/gf2m.hh"
#include "gf/gfpoly.hh"

namespace nvck {

/** Result of RsCodec::decode. */
struct RsDecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Number of symbol corrections applied (errors + erasure fills). */
    unsigned corrections = 0;
    /** Of those, corrections at non-erased positions. */
    unsigned errorCorrections = 0;
    /** Corrected symbol positions. */
    std::vector<std::uint32_t> positions;
};

/**
 * Systematic shortened RS(n, k) code, narrow-sense (first consecutive
 * root alpha^1). Symbol i of the codeword vector corresponds to the
 * coefficient of x^i; symbols [0, r) are the check symbols and
 * [r, r + k) are data, mirroring the BCH layout.
 */
class RsCodec
{
  public:
    /**
     * @param data_symbols k, number of data symbols.
     * @param check_symbols r = n - k, number of check symbols.
     * @param field_degree m, symbol width in bits (default one byte).
     */
    RsCodec(unsigned data_symbols, unsigned check_symbols,
            unsigned field_degree = 8);

    unsigned k() const { return dataSymbols; }
    unsigned r() const { return checkSymbols; }
    unsigned n() const { return dataSymbols + checkSymbols; }
    const Gf2m &field() const { return gf; }

    /** Design byte-error correction capability floor(r / 2). */
    unsigned t() const { return checkSymbols / 2; }

    /** Minimum Hamming distance r + 1 (MDS property). */
    unsigned dmin() const { return checkSymbols + 1; }

    /** Encode @p data (k symbols) into an n-symbol codeword. */
    std::vector<GfElem> encode(const std::vector<GfElem> &data) const;

    /** Recompute the check symbols of @p codeword in place. */
    void reencode(std::vector<GfElem> &codeword) const;

    /**
     * Decode in place.
     *
     * @param codeword n received symbols, corrected on success.
     * @param erasures positions whose symbols are known-suspect (e.g.
     *        the beats from a failed chip). Correctable when
     *        2 * errors + erasures <= r.
     * @param max_errors cap on the number of non-erasure errors the
     *        decoder will attempt (defaults to floor((r - e) / 2));
     *        lower caps model bounded-distance decoding used by the
     *        paper's threshold scheme.
     */
    RsDecodeResult decode(std::vector<GfElem> &codeword,
                          const std::vector<std::uint32_t> &erasures = {},
                          int max_errors = -1) const;

    /** True if @p codeword has an all-zero syndrome. */
    bool isCodeword(const std::vector<GfElem> &codeword) const;

    /** Extract the data symbols. */
    std::vector<GfElem> extractData(const std::vector<GfElem> &cw) const;

  private:
    std::vector<GfElem> syndromes(const std::vector<GfElem> &cw) const;

    unsigned dataSymbols;
    unsigned checkSymbols;
    Gf2m gf;
    /** Generator polynomial prod_{i=1..r} (x - alpha^i). */
    GfPoly gen;
};

} // namespace nvck

#endif // NVCK_ECC_RS_HH
