/**
 * @file
 * Binary BCH codec: systematic encoding via LFSR division by the
 * generator polynomial, decoding via syndromes, Berlekamp-Massey, and
 * Chien search. Supports shortened codes (k smaller than the natural
 * 2^m - 1 - r), which is how both the per-block 14-EC code and the
 * per-chip 22-EC VLEW code of the paper are realised.
 *
 * Two interchangeable kernel implementations back the hot loops (see
 * kernel.hh): the Scalar reference (one bit per LFSR step, per-set-bit
 * syndrome accumulation) and the default Sliced kernel (CRC-style
 * slicing-by-8 remainder tables, per-byte partial-syndrome tables with
 * alpha^(8j) Horner strides). Both produce bit-identical codewords,
 * syndromes, and decode results; the differential tests enforce it.
 */

#ifndef NVCK_ECC_BCH_HH
#define NVCK_ECC_BCH_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "ecc/kernel.hh"
#include "gf/binpoly.hh"
#include "gf/gf2m.hh"

namespace nvck {

class GfPoly;

/** Outcome of a BCH decode attempt. */
enum class DecodeStatus
{
    Clean,         //!< no errors detected
    Corrected,     //!< errors found and corrected
    Uncorrectable, //!< error pattern exceeds the code's capability
};

/** Result of BchCodec::decode. */
struct BchDecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Number of bit corrections applied. */
    unsigned corrections = 0;
    /** Corrected bit positions within the codeword. */
    std::vector<std::uint32_t> positions;
};

/**
 * Streaming residue accumulator for the batched scrub pass. The caller
 * feeds the received word from its highest coefficient downward in
 * arbitrary byte/word segments; the state tracks (prefix(x) * x^r)
 * mod g, so after the whole word is absorbed an all-zero state means
 * "codeword" with no syndrome work at all, and a dirty word's
 * syndromes can be evaluated from the r-bit remainder instead of the
 * n-bit codeword (syndromesFromResidue / solveFromResidue).
 */
struct BchResidue
{
    std::vector<std::uint64_t> rem;
};

/**
 * A t-bit-error-correcting binary BCH code over GF(2^m) protecting
 * k data bits. Codeword layout (bit index = coefficient of x^index):
 * bits [0, r) hold the check bits, bits [r, r + k) hold the data, where
 * r = deg(generator).
 */
class BchCodec
{
  public:
    /**
     * Construct the code.
     * @param data_bits  k, number of protected data bits.
     * @param correct_bits  t, the design correction capability.
     * @param field_degree  m; 0 picks the smallest m that fits
     *        k + t*m check bits within 2^m - 1.
     * @param kernel  which inner-loop implementation to run; defaults
     *        to the process-wide default (Sliced unless overridden via
     *        NVCK_CODEC_KERNEL=scalar).
     */
    BchCodec(unsigned data_bits, unsigned correct_bits,
             unsigned field_degree = 0,
             CodecKernel kernel = defaultCodecKernel());

    unsigned k() const { return dataBits; }
    unsigned t() const { return correctBits; }
    /** Actual number of check bits, deg(g) <= t*m. */
    unsigned r() const { return checkBits; }
    /** Codeword length k + r. */
    unsigned n() const { return dataBits + checkBits; }
    const Gf2m &field() const { return gf; }

    /** The kernel this codec currently dispatches to. */
    CodecKernel kernel() const { return kern; }

    /** Switch kernels, building any missing lookup tables. */
    void setKernel(CodecKernel kernel);

    /**
     * Systematically encode @p data (k bits) into a fresh n-bit codeword
     * with layout [check | data].
     */
    BitVec encode(const BitVec &data) const;

    /** Recompute and overwrite the check bits of @p codeword in place. */
    void reencode(BitVec &codeword) const;

    /**
     * Compute the check-bit delta for a data update: because BCH is
     * linear, f(x_new) xor f(x_old) = f(x_new xor x_old). @p data_delta
     * is the k-bit XOR of old and new data; the result is the r-bit XOR
     * to apply to the stored check bits. This is the operation the
     * paper's in-NVRAM encoder performs on the bitwise sum (Fig 11/12).
     */
    BitVec encodeDelta(const BitVec &data_delta) const;

    /**
     * Decode @p codeword in place (n bits). Corrects up to t bit errors;
     * reports Uncorrectable when the syndrome is inconsistent with any
     * pattern of weight <= t.
     */
    BchDecodeResult decode(BitVec &codeword) const;

    /** True if the codeword currently has an all-zero syndrome. */
    bool isCodeword(const BitVec &codeword) const;

    /** Extract the data bits of a codeword. */
    BitVec extractData(const BitVec &codeword) const;

    /** Generator polynomial (over GF(2)). */
    const BinPoly &generator() const { return gen; }

    /**
     * Syndromes S_1 .. S_2t of the received word. Bits at positions
     * >= n() of an over-long vector are ignored (masked word-wise, not
     * relied on to be absent).
     */
    std::vector<GfElem> syndromes(const BitVec &codeword) const;

    /** Reset @p state to the empty-prefix residue (all zero). */
    void residueStart(BchResidue &state) const;

    /**
     * Absorb the next-lower @p count bytes of the received word
     * (byte [count-1] is the segment's highest coefficient). Runs the
     * 64-bit-wide sliced lanes when available (Sliced kernel, r >= 64),
     * the slicing-by-8 byte step for r >= 8, and the bit-serial
     * reference LFSR otherwise — all bit-identical by construction.
     */
    void residueAbsorbBytes(BchResidue &state, const std::uint8_t *bytes,
                            std::size_t count) const;

    /**
     * Absorb the next-lower @p nbits bits of the received word from
     * packed little-endian words (bit nbits-1 of @p words is the
     * segment's highest coefficient). Segments need no alignment; a
     * BitVec's raw() storage can be passed directly.
     */
    void residueAbsorbBits(BchResidue &state, const std::uint64_t *words,
                           std::size_t nbits) const;

    /** True when the absorbed prefix is a codeword (zero remainder). */
    bool residueIsZero(const BchResidue &state) const;

    /**
     * Syndromes S_1 .. S_2t evaluated from a fully absorbed residue:
     * S_j = rem(alpha^j) * alpha^(-rj), an r-bit evaluation instead of
     * an n-bit one. Bit-identical to syndromes() on the same word.
     */
    std::vector<GfElem> syndromesFromResidue(const BchResidue &state) const;

    /**
     * Decode from a fully absorbed residue without materialising the
     * codeword: returns the same status/corrections/positions decode()
     * would, but applies no bit flips (the caller owns the storage).
     * The Fast path skips the provably zero-discrepancy even-syndrome
     * BM steps, aborts as soon as the register length exceeds t, and
     * stops the Chien scan at the nu-th root; Full mirrors decode()
     * step for step. Both are bit-identical (pinned by tests).
     */
    BchDecodeResult
    solveFromResidue(const BchResidue &state,
                     ScrubDecodePath path = defaultScrubDecodePath()) const;

    /**
     * Lookup-table bytes held by this instance for its current kernel
     * (for footprint reporting; excludes the GF(2^m) log/exp tables).
     */
    std::size_t tableBytes() const;

  private:
    /** Scalar (per-set-bit) syndrome accumulation. */
    std::vector<GfElem> syndromesScalar(const BitVec &codeword) const;
    /** Sliced (per-byte table + Horner stride) syndromes. */
    std::vector<GfElem> syndromesSliced(const BitVec &codeword) const;

    /** Bit-serial LFSR remainder of the first @p nbits of @p words
     *  times x^r, modulo g. */
    std::vector<std::uint64_t>
    scalarResidue(const std::vector<std::uint64_t> &words,
                  std::size_t nbits) const;
    /** Slicing-by-8 version of scalarResidue (identical result). */
    std::vector<std::uint64_t>
    slicedResidue(const std::vector<std::uint64_t> &words,
                  std::size_t nbits) const;
    /** Dispatch to the active residue kernel. */
    std::vector<std::uint64_t>
    residue(const std::vector<std::uint64_t> &words,
            std::size_t nbits) const;

    /** One LFSR step: rem <- (rem * x + in * x^r) mod g. */
    void stepBit(std::vector<std::uint64_t> &rem, bool in) const;

    /** One slicing-by-8 step: rem <- (rem * x^8 + byte * x^r) mod g. */
    void byteStep(std::vector<std::uint64_t> &rem, unsigned in_byte) const;

    /**
     * Convert the packed remainder to/from the shifted domain of the
     * wide residue lanes (remainder pre-shifted left by
     * 64*remWords - r so the 64-bit feedback window is exactly the top
     * storage word). Applied once per wide run, not per step.
     */
    void shiftRemUp(std::vector<std::uint64_t> &rem) const;
    void shiftRemDown(std::vector<std::uint64_t> &rem) const;

    /**
     * Berlekamp-Massey: fill @p lambda / @p len from the syndromes and
     * report whether they describe a correctable pattern (len <= t and
     * deg(lambda) == len). @p fast skips the even-syndrome steps whose
     * discrepancy is structurally zero for binary BCH and aborts once
     * len exceeds t (len never shrinks); both modes are bit-identical.
     */
    bool bmLocator(const std::vector<GfElem> &syn, bool fast,
                   GfPoly &lambda, unsigned &len) const;

    /**
     * Chien search over the shortened positions [0, n): fill
     * @p positions with the roots of @p lambda and report whether
     * exactly @p nu distinct in-range roots exist. @p early_stop ends
     * the scan at the nu-th root (a degree-nu locator has no more).
     */
    bool chienSearch(const GfPoly &lambda, unsigned nu, bool early_stop,
                     std::vector<std::uint32_t> &positions) const;

    /** Build the scalar per-bit syndrome tables (idempotent). */
    void buildScalarTables();
    /** Build the sliced remainder/syndrome tables (idempotent). */
    void buildSlicedTables();

    unsigned dataBits;
    unsigned correctBits;
    unsigned checkBits;
    Gf2m gf;
    BinPoly gen;
    CodecKernel kern;
    /** Generator packed low-to-high for the encode inner loop. */
    std::vector<std::uint64_t> genWords;

    // -- geometry of the packed remainder, shared by both kernels --
    /** Words holding the r-bit remainder. */
    unsigned remWords = 0;
    /** Mask for the top remainder word (all-ones when r % 64 == 0). */
    std::uint64_t remTopMask = ~0ull;

    // -- Scalar kernel tables --
    /**
     * Per-bit syndrome contribution tables: oddSynTables[j][i] =
     * alpha^((2j+1) * i) for odd syndrome index 2j+1 and bit position i;
     * built when the Scalar kernel is selected.
     */
    std::vector<std::vector<GfElem>> oddSynTables;

    // -- Sliced kernel tables --
    /**
     * Slicing-by-8 remainder-update table, flattened 256 x remWords:
     * entry v holds (v(x) * x^r) mod g packed low-to-high.
     */
    std::vector<std::uint64_t> encTable;
    /**
     * 64-bit-wide residue lanes for the streaming scrub pass,
     * flattened 8 x 256 x remWords: lane b entry v holds
     * ((v(x) * x^(8b) * x^r) mod g) << (64*remWords - r), i.e. the
     * rows live in a shifted domain where the remainder's 64-bit
     * feedback window is exactly its top storage word — the wide step
     * folds eight input bytes with eight table XORs and no cross-word
     * extraction or masking (see shiftRemUp/shiftRemDown). Built only
     * when r >= 64 (the feedback chunk must fit in the remainder).
     */
    std::vector<std::uint64_t> wideTab;
    /**
     * Per-byte partial syndromes, flattened t x 256: entry (j, v) is
     * sum over set bits b of v of alpha^((2j+1) * b).
     */
    std::vector<GfElem> synByteTab;
    /** Horner stride per odd syndrome: alpha^(8 * (2j+1) mod order). */
    std::vector<GfElem> synStride;

    // -- always built (used by decode regardless of kernel) --
    /** chienStride[j] = alpha^(order - j), hoisted out of the search. */
    std::vector<GfElem> chienStride;
    /**
     * Residue-to-syndrome fixups: resFix[idx] = alpha^(-r * (2idx+1)),
     * turning rem(alpha^j) into S_j for odd j (evens are squares).
     */
    std::vector<GfElem> resFix;
};

} // namespace nvck

#endif // NVCK_ECC_BCH_HH
