/**
 * @file
 * Binary BCH codec: systematic encoding via LFSR division by the
 * generator polynomial, decoding via syndromes, Berlekamp-Massey, and
 * Chien search. Supports shortened codes (k smaller than the natural
 * 2^m - 1 - r), which is how both the per-block 14-EC code and the
 * per-chip 22-EC VLEW code of the paper are realised.
 */

#ifndef NVCK_ECC_BCH_HH
#define NVCK_ECC_BCH_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "gf/binpoly.hh"
#include "gf/gf2m.hh"

namespace nvck {

/** Outcome of a BCH decode attempt. */
enum class DecodeStatus
{
    Clean,         //!< no errors detected
    Corrected,     //!< errors found and corrected
    Uncorrectable, //!< error pattern exceeds the code's capability
};

/** Result of BchCodec::decode. */
struct BchDecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Number of bit corrections applied. */
    unsigned corrections = 0;
    /** Corrected bit positions within the codeword. */
    std::vector<std::uint32_t> positions;
};

/**
 * A t-bit-error-correcting binary BCH code over GF(2^m) protecting
 * k data bits. Codeword layout (bit index = coefficient of x^index):
 * bits [0, r) hold the check bits, bits [r, r + k) hold the data, where
 * r = deg(generator).
 */
class BchCodec
{
  public:
    /**
     * Construct the code.
     * @param data_bits  k, number of protected data bits.
     * @param correct_bits  t, the design correction capability.
     * @param field_degree  m; 0 picks the smallest m that fits
     *        k + t*m check bits within 2^m - 1.
     */
    BchCodec(unsigned data_bits, unsigned correct_bits,
             unsigned field_degree = 0);

    unsigned k() const { return dataBits; }
    unsigned t() const { return correctBits; }
    /** Actual number of check bits, deg(g) <= t*m. */
    unsigned r() const { return checkBits; }
    /** Codeword length k + r. */
    unsigned n() const { return dataBits + checkBits; }
    const Gf2m &field() const { return gf; }

    /**
     * Systematically encode @p data (k bits) into a fresh n-bit codeword
     * with layout [check | data].
     */
    BitVec encode(const BitVec &data) const;

    /** Recompute and overwrite the check bits of @p codeword in place. */
    void reencode(BitVec &codeword) const;

    /**
     * Compute the check-bit delta for a data update: because BCH is
     * linear, f(x_new) xor f(x_old) = f(x_new xor x_old). @p data_delta
     * is the k-bit XOR of old and new data; the result is the r-bit XOR
     * to apply to the stored check bits. This is the operation the
     * paper's in-NVRAM encoder performs on the bitwise sum (Fig 11/12).
     */
    BitVec encodeDelta(const BitVec &data_delta) const;

    /**
     * Decode @p codeword in place (n bits). Corrects up to t bit errors;
     * reports Uncorrectable when the syndrome is inconsistent with any
     * pattern of weight <= t.
     */
    BchDecodeResult decode(BitVec &codeword) const;

    /** True if the codeword currently has an all-zero syndrome. */
    bool isCodeword(const BitVec &codeword) const;

    /** Extract the data bits of a codeword. */
    BitVec extractData(const BitVec &codeword) const;

    /** Generator polynomial (over GF(2)). */
    const BinPoly &generator() const { return gen; }

  private:
    /** Syndromes S_1 .. S_2t of the received word. */
    std::vector<GfElem> syndromes(const BitVec &codeword) const;

    unsigned dataBits;
    unsigned correctBits;
    unsigned checkBits;
    Gf2m gf;
    BinPoly gen;
    /** Generator packed low-to-high for the encode inner loop. */
    std::vector<std::uint64_t> genWords;
    /**
     * Per-bit syndrome contribution tables: alphaPowTable[j][i] =
     * alpha^((2j+1) * i) for odd syndrome index 2j+1 and bit position i,
     * flattened; built lazily at construction for decode speed.
     */
    std::vector<std::vector<GfElem>> oddSynTables;
};

} // namespace nvck

#endif // NVCK_ECC_BCH_HH
