/**
 * @file
 * Write-CRC transmission-error detection (paper footnote 4): DDR4-style
 * CRC-8 (ATM HEC polynomial x^8 + x^2 + x + 1) computed over a write
 * burst so NVRAM chips can detect I/O errors and request retransmit.
 */

#ifndef NVCK_ECC_CRC_HH
#define NVCK_ECC_CRC_HH

#include <cstdint>
#include <span>

namespace nvck {

/** CRC-8 over a byte span (polynomial 0x07, init 0). */
std::uint8_t crc8(std::span<const std::uint8_t> bytes);

/** True when the stored CRC matches the payload. */
bool crc8Check(std::span<const std::uint8_t> bytes, std::uint8_t stored);

} // namespace nvck

#endif // NVCK_ECC_CRC_HH
