/**
 * @file
 * Arithmetic in the finite field GF(2^m), 3 <= m <= 16, implemented with
 * log/antilog tables over a primitive element alpha. This is the shared
 * substrate for the BCH codec (typically m = 12..14 for VLEW-scale words)
 * and the Reed-Solomon codec (m = 8, one symbol per byte).
 */

#ifndef NVCK_GF_GF2M_HH
#define NVCK_GF_GF2M_HH

#include <cstdint>
#include <vector>

namespace nvck {

/** A field element; valid values occupy the low m bits. */
using GfElem = std::uint32_t;

/**
 * The field GF(2^m) constructed from a default (or caller-supplied)
 * primitive polynomial. Elements are represented in the polynomial basis;
 * multiplication/division/inversion go through discrete-log tables.
 */
class Gf2m
{
  public:
    /**
     * Build the field.
     *
     * @param m_bits Field degree m (3..16).
     * @param primitive_poly Primitive polynomial bit mask including the
     *        x^m term; 0 selects a built-in default (e.g. 0x11D for m=8).
     */
    explicit Gf2m(unsigned m_bits, std::uint32_t primitive_poly = 0);

    /** Field degree m. */
    unsigned m() const { return degree; }

    /** Field size 2^m. */
    std::uint32_t size() const { return fieldSize; }

    /** Multiplicative-group order 2^m - 1. */
    std::uint32_t order() const { return fieldSize - 1; }

    /** Addition = subtraction = XOR in characteristic 2. */
    static GfElem add(GfElem a, GfElem b) { return a ^ b; }

    /** Multiply two elements. */
    GfElem
    mul(GfElem a, GfElem b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return expTable[logTable[a] + logTable[b]];
    }

    /**
     * Product from precomputed discrete logs: alpha^(la + lb) for
     * la, lb < order(). Lets batched kernels (RS encode/syndromes) pay
     * the log lookups once per operand instead of per product.
     */
    GfElem
    expSum(std::uint32_t la, std::uint32_t lb) const
    {
        return expTable[la + lb];
    }

    /** Multiplicative inverse of a nonzero element. */
    GfElem inv(GfElem a) const;

    /** Divide @p a by nonzero @p b. */
    GfElem div(GfElem a, GfElem b) const;

    /** alpha^e for any integer exponent e >= 0. */
    GfElem alphaPow(std::uint64_t e) const;

    /** a^e for any integer exponent e >= 0. */
    GfElem pow(GfElem a, std::uint64_t e) const;

    /** Discrete log base alpha of a nonzero element. */
    std::uint32_t log(GfElem a) const;

    /** The default primitive polynomial for degree @p m_bits. */
    static std::uint32_t defaultPoly(unsigned m_bits);

    /** Primitive polynomial in use (including the x^m term). */
    std::uint32_t poly() const { return primPoly; }

  private:
    unsigned degree;
    std::uint32_t fieldSize;
    std::uint32_t primPoly;
    /** expTable[i] = alpha^i for i in [0, 2*(2^m-1)) to skip a mod. */
    std::vector<GfElem> expTable;
    /** logTable[a] = discrete log of a (undefined for 0). */
    std::vector<std::uint32_t> logTable;
};

} // namespace nvck

#endif // NVCK_GF_GF2M_HH
