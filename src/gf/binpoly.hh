/**
 * @file
 * Polynomials over GF(2), packed bitwise into 64-bit words (bit i of the
 * packing = coefficient of x^i). Used to build BCH generator polynomials
 * from minimal polynomials and to run the systematic LFSR encoder.
 */

#ifndef NVCK_GF_BINPOLY_HH
#define NVCK_GF_BINPOLY_HH

#include <cstdint>
#include <vector>

namespace nvck {

/** A binary polynomial of arbitrary degree. */
class BinPoly
{
  public:
    BinPoly() = default;

    /** Construct from a (small) bit mask: bit i = coeff of x^i. */
    explicit BinPoly(std::uint64_t mask);

    /** The constant 1. */
    static BinPoly one() { return BinPoly(1); }

    /** Degree; -1 for the zero polynomial. */
    int degree() const;

    bool isZero() const;

    /** Coefficient of x^i. */
    bool
    bit(std::size_t i) const
    {
        const std::size_t w = i >> 6;
        return w < words.size() && ((words[w] >> (i & 63)) & 1);
    }

    /** Set coefficient of x^i. */
    void setBit(std::size_t i, bool value = true);

    /** XOR (= add) another polynomial into this one. */
    BinPoly &operator^=(const BinPoly &other);

    /** Carry-less product. */
    static BinPoly mul(const BinPoly &a, const BinPoly &b);

    /** Remainder of a / b (b nonzero). */
    static BinPoly mod(const BinPoly &a, const BinPoly &b);

    /** Multiply by x^k (left shift). */
    static BinPoly shift(const BinPoly &a, std::size_t k);

    bool operator==(const BinPoly &other) const;

    /** Packed words, LSB-first. */
    const std::vector<std::uint64_t> &raw() const { return words; }

  private:
    void trim();

    std::vector<std::uint64_t> words;
};

} // namespace nvck

#endif // NVCK_GF_BINPOLY_HH
