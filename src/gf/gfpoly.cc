#include "gfpoly.hh"

#include <algorithm>

#include "common/log.hh"

namespace nvck {

void
GfPoly::trim()
{
    while (!coeffs.empty() && coeffs.back() == 0)
        coeffs.pop_back();
}

GfPoly
GfPoly::constant(GfElem c)
{
    GfPoly p;
    if (c != 0)
        p.coeffs.push_back(c);
    return p;
}

GfPoly
GfPoly::monomial(GfElem c, std::size_t k)
{
    GfPoly p;
    if (c != 0) {
        p.coeffs.assign(k + 1, 0);
        p.coeffs[k] = c;
    }
    return p;
}

void
GfPoly::setCoeff(std::size_t k, GfElem value)
{
    if (k >= coeffs.size()) {
        if (value == 0)
            return;
        coeffs.resize(k + 1, 0);
    }
    coeffs[k] = value;
    trim();
}

GfElem
GfPoly::eval(const Gf2m &field, GfElem x) const
{
    GfElem acc = 0;
    for (std::size_t i = coeffs.size(); i-- > 0;)
        acc = Gf2m::add(field.mul(acc, x), coeffs[i]);
    return acc;
}

GfPoly
GfPoly::add(const GfPoly &a, const GfPoly &b)
{
    GfPoly out;
    out.coeffs.resize(std::max(a.coeffs.size(), b.coeffs.size()), 0);
    for (std::size_t i = 0; i < out.coeffs.size(); ++i)
        out.coeffs[i] = a.coeff(i) ^ b.coeff(i);
    out.trim();
    return out;
}

GfPoly
GfPoly::mul(const Gf2m &field, const GfPoly &a, const GfPoly &b)
{
    if (a.isZero() || b.isZero())
        return zero();
    GfPoly out;
    out.coeffs.assign(a.coeffs.size() + b.coeffs.size() - 1, 0);
    for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
        if (a.coeffs[i] == 0)
            continue;
        for (std::size_t j = 0; j < b.coeffs.size(); ++j)
            out.coeffs[i + j] ^= field.mul(a.coeffs[i], b.coeffs[j]);
    }
    out.trim();
    return out;
}

GfPoly
GfPoly::scale(const Gf2m &field, const GfPoly &a, GfElem c)
{
    if (c == 0)
        return zero();
    GfPoly out = a;
    for (auto &coefficient : out.coeffs)
        coefficient = field.mul(coefficient, c);
    out.trim();
    return out;
}

GfPoly
GfPoly::mod(const Gf2m &field, const GfPoly &a, const GfPoly &b)
{
    NVCK_ASSERT(!b.isZero(), "polynomial modulo zero");
    GfPoly rem = a;
    const GfElem lead_inv = field.inv(b.coeffs.back());
    while (rem.degree() >= b.degree()) {
        const std::size_t shift = rem.degree() - b.degree();
        const GfElem factor = field.mul(rem.coeffs.back(), lead_inv);
        for (std::size_t i = 0; i < b.coeffs.size(); ++i)
            rem.coeffs[shift + i] ^= field.mul(factor, b.coeffs[i]);
        rem.trim();
    }
    return rem;
}

GfPoly
GfPoly::derivative(const GfPoly &a)
{
    GfPoly out;
    if (a.coeffs.size() <= 1)
        return out;
    out.coeffs.assign(a.coeffs.size() - 1, 0);
    // (d/dx) sum c_i x^i = sum i*c_i x^(i-1); in GF(2^m) the integer
    // multiplier i reduces mod 2, so only odd i survive.
    for (std::size_t i = 1; i < a.coeffs.size(); i += 2)
        out.coeffs[i - 1] = a.coeffs[i];
    out.trim();
    return out;
}

GfPoly
GfPoly::truncate(const GfPoly &a, std::size_t k)
{
    GfPoly out = a;
    if (out.coeffs.size() > k)
        out.coeffs.resize(k);
    out.trim();
    return out;
}

} // namespace nvck
