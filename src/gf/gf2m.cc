#include "gf2m.hh"

#include "common/log.hh"

namespace nvck {

std::uint32_t
Gf2m::defaultPoly(unsigned m_bits)
{
    // Primitive polynomials from Lin & Costello, Appendix A.
    switch (m_bits) {
      case 3:  return 0xB;      // x^3 + x + 1
      case 4:  return 0x13;     // x^4 + x + 1
      case 5:  return 0x25;     // x^5 + x^2 + 1
      case 6:  return 0x43;     // x^6 + x + 1
      case 7:  return 0x89;     // x^7 + x^3 + 1
      case 8:  return 0x11D;    // x^8 + x^4 + x^3 + x^2 + 1
      case 9:  return 0x211;    // x^9 + x^4 + 1
      case 10: return 0x409;    // x^10 + x^3 + 1
      case 11: return 0x805;    // x^11 + x^2 + 1
      case 12: return 0x1053;   // x^12 + x^6 + x^4 + x + 1
      case 13: return 0x201B;   // x^13 + x^4 + x^3 + x + 1
      case 14: return 0x4443;   // x^14 + x^10 + x^6 + x + 1
      case 15: return 0x8003;   // x^15 + x + 1
      case 16: return 0x1100B;  // x^16 + x^12 + x^3 + x + 1
      default:
        NVCK_FATAL("unsupported GF(2^m) degree m=", m_bits);
    }
}

Gf2m::Gf2m(unsigned m_bits, std::uint32_t primitive_poly)
    : degree(m_bits),
      fieldSize(1u << m_bits),
      primPoly(primitive_poly ? primitive_poly : defaultPoly(m_bits))
{
    NVCK_ASSERT(m_bits >= 3 && m_bits <= 16, "field degree out of range");
    expTable.resize(2 * order());
    logTable.assign(fieldSize, 0);

    std::uint32_t value = 1;
    for (std::uint32_t i = 0; i < order(); ++i) {
        expTable[i] = value;
        NVCK_ASSERT(value < fieldSize, "element escaped field");
        NVCK_ASSERT(i == 0 || (value != 1 && logTable[value] == 0),
                    "polynomial is not primitive for this degree");
        logTable[value] = i;
        value <<= 1;
        if (value & fieldSize)
            value ^= primPoly;
    }
    NVCK_ASSERT(value == 1, "alpha does not generate the full group; "
                "polynomial is not primitive");
    // Duplicate the exp table so mul() can skip the (i+j) mod (2^m-1).
    for (std::uint32_t i = 0; i < order(); ++i)
        expTable[order() + i] = expTable[i];
}

GfElem
Gf2m::inv(GfElem a) const
{
    NVCK_ASSERT(a != 0, "inverse of zero");
    return expTable[order() - logTable[a]];
}

GfElem
Gf2m::div(GfElem a, GfElem b) const
{
    NVCK_ASSERT(b != 0, "division by zero");
    if (a == 0)
        return 0;
    return expTable[logTable[a] + order() - logTable[b]];
}

GfElem
Gf2m::alphaPow(std::uint64_t e) const
{
    return expTable[e % order()];
}

GfElem
Gf2m::pow(GfElem a, std::uint64_t e) const
{
    if (a == 0)
        return e == 0 ? 1 : 0;
    const std::uint64_t exponent =
        (static_cast<std::uint64_t>(logTable[a]) * (e % order())) % order();
    return expTable[exponent];
}

std::uint32_t
Gf2m::log(GfElem a) const
{
    NVCK_ASSERT(a != 0, "log of zero");
    return logTable[a];
}

} // namespace nvck
