#include "binpoly.hh"

#include <bit>

#include "common/log.hh"

namespace nvck {

BinPoly::BinPoly(std::uint64_t mask)
{
    if (mask != 0)
        words.push_back(mask);
}

void
BinPoly::trim()
{
    while (!words.empty() && words.back() == 0)
        words.pop_back();
}

int
BinPoly::degree() const
{
    if (words.empty())
        return -1;
    const int top = 63 - std::countl_zero(words.back());
    return static_cast<int>((words.size() - 1) * 64) + top;
}

bool
BinPoly::isZero() const
{
    return words.empty();
}

void
BinPoly::setBit(std::size_t i, bool value)
{
    const std::size_t w = i >> 6;
    if (w >= words.size()) {
        if (!value)
            return;
        words.resize(w + 1, 0);
    }
    const std::uint64_t mask = 1ull << (i & 63);
    if (value)
        words[w] |= mask;
    else
        words[w] &= ~mask;
    trim();
}

BinPoly &
BinPoly::operator^=(const BinPoly &other)
{
    if (other.words.size() > words.size())
        words.resize(other.words.size(), 0);
    for (std::size_t i = 0; i < other.words.size(); ++i)
        words[i] ^= other.words[i];
    trim();
    return *this;
}

BinPoly
BinPoly::mul(const BinPoly &a, const BinPoly &b)
{
    BinPoly out;
    if (a.isZero() || b.isZero())
        return out;
    out.words.assign(a.words.size() + b.words.size(), 0);
    for (std::size_t wa = 0; wa < a.words.size(); ++wa) {
        std::uint64_t bits = a.words[wa];
        while (bits) {
            const int bit_idx = std::countr_zero(bits);
            bits &= bits - 1;
            const std::size_t shift = wa * 64 + bit_idx;
            const std::size_t word_shift = shift >> 6;
            const unsigned bit_shift = shift & 63;
            for (std::size_t wb = 0; wb < b.words.size(); ++wb) {
                out.words[wb + word_shift] ^= b.words[wb] << bit_shift;
                if (bit_shift != 0)
                    out.words[wb + word_shift + 1] ^=
                        b.words[wb] >> (64 - bit_shift);
            }
        }
    }
    out.trim();
    return out;
}

BinPoly
BinPoly::shift(const BinPoly &a, std::size_t k)
{
    if (a.isZero())
        return a;
    BinPoly out;
    const std::size_t word_shift = k >> 6;
    const unsigned bit_shift = k & 63;
    out.words.assign(a.words.size() + word_shift + 1, 0);
    for (std::size_t i = 0; i < a.words.size(); ++i) {
        out.words[i + word_shift] ^= a.words[i] << bit_shift;
        if (bit_shift != 0)
            out.words[i + word_shift + 1] ^= a.words[i] >> (64 - bit_shift);
    }
    out.trim();
    return out;
}

BinPoly
BinPoly::mod(const BinPoly &a, const BinPoly &b)
{
    NVCK_ASSERT(!b.isZero(), "binary polynomial modulo zero");
    BinPoly rem = a;
    const int db = b.degree();
    int dr = rem.degree();
    while (dr >= db) {
        rem ^= shift(b, static_cast<std::size_t>(dr - db));
        dr = rem.degree();
    }
    return rem;
}

bool
BinPoly::operator==(const BinPoly &other) const
{
    return words == other.words;
}

} // namespace nvck
