/**
 * @file
 * Dense polynomials with coefficients in GF(2^m). Coefficient 0 is the
 * constant term. Used by the BCH and RS decoders (error locator and
 * evaluator polynomials, Berlekamp-Massey, Chien search, Forney).
 */

#ifndef NVCK_GF_GFPOLY_HH
#define NVCK_GF_GFPOLY_HH

#include <vector>

#include "gf/gf2m.hh"

namespace nvck {

/**
 * Polynomial over GF(2^m). Operations take the field explicitly so a
 * polynomial value itself stays a plain value type.
 */
class GfPoly
{
  public:
    GfPoly() = default;

    /** Construct from low-to-high coefficients. */
    explicit GfPoly(std::vector<GfElem> coefficients)
        : coeffs(std::move(coefficients))
    {
        trim();
    }

    /** The zero polynomial. */
    static GfPoly zero() { return GfPoly(); }

    /** The constant polynomial c. */
    static GfPoly constant(GfElem c);

    /** The monomial c * x^k. */
    static GfPoly monomial(GfElem c, std::size_t k);

    /** Degree; -1 for the zero polynomial. */
    int degree() const { return static_cast<int>(coeffs.size()) - 1; }

    bool isZero() const { return coeffs.empty(); }

    /** Coefficient of x^k (0 beyond the stored degree). */
    GfElem
    coeff(std::size_t k) const
    {
        return k < coeffs.size() ? coeffs[k] : 0;
    }

    /** Set the coefficient of x^k. */
    void setCoeff(std::size_t k, GfElem value);

    /** Evaluate at @p x by Horner's rule. */
    GfElem eval(const Gf2m &field, GfElem x) const;

    /** Sum (XOR) of two polynomials. */
    static GfPoly add(const GfPoly &a, const GfPoly &b);

    /** Product of two polynomials. */
    static GfPoly mul(const Gf2m &field, const GfPoly &a, const GfPoly &b);

    /** Multiply every coefficient by the scalar @p c. */
    static GfPoly scale(const Gf2m &field, const GfPoly &a, GfElem c);

    /** Remainder of @p a divided by nonzero @p b. */
    static GfPoly mod(const Gf2m &field, const GfPoly &a, const GfPoly &b);

    /**
     * Formal derivative. In characteristic 2 this keeps odd-degree terms
     * shifted down one and zeroes even-degree terms.
     */
    static GfPoly derivative(const GfPoly &a);

    /** Truncate to terms of degree < @p k (i.e. mod x^k). */
    static GfPoly truncate(const GfPoly &a, std::size_t k);

    bool operator==(const GfPoly &other) const = default;

    const std::vector<GfElem> &coefficients() const { return coeffs; }

  private:
    void trim();

    std::vector<GfElem> coeffs;
};

} // namespace nvck

#endif // NVCK_GF_GFPOLY_HH
