/**
 * @file
 * Umbrella header for the nvchipkill library: everything a downstream
 * user needs to build, protect, simulate, and analyze persistent-memory
 * systems with the MICRO'18 decoupled chipkill-correct scheme.
 *
 * Layered from the bottom up:
 *  - finite-field and codec substrate (gf/, ecc/)
 *  - analytical reliability models (reliability/)
 *  - the bit-accurate protected rank and its extensions (chipkill/)
 *  - the timing simulator: memory, caches, cores, workloads (mem/,
 *    cache/, cpu/, workload/)
 *  - system glue and the experiment runner (sim/)
 */

#ifndef NVCK_NVCHIPKILL_HH
#define NVCK_NVCHIPKILL_HH

// Substrate.
#include "common/bitvec.hh"
#include "common/event.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "ecc/bch.hh"
#include "ecc/code_params.hh"
#include "ecc/crc.hh"
#include "ecc/rs.hh"
#include "gf/gf2m.hh"

// Reliability analysis.
#include "reliability/binomial.hh"
#include "reliability/error_model.hh"
#include "reliability/injector.hh"
#include "reliability/sdc_model.hh"
#include "reliability/storage_model.hh"
#include "reliability/ue_model.hh"

// The paper's contribution.
#include "chipkill/degraded.hh"
#include "chipkill/hw_model.hh"
#include "chipkill/pm_rank.hh"
#include "chipkill/schemes.hh"
#include "chipkill/wear.hh"

// Full-system timing simulation.
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "mem/controller.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/profiles.hh"
#include "workload/synthetic.hh"
#include "workload/trace_file.hh"

#endif // NVCK_NVCHIPKILL_HH
