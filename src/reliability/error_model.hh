/**
 * @file
 * Raw-bit-error-rate (RBER) models per memory technology as a function
 * of time since last write/refresh, anchored to the measurements the
 * paper's Figure 1 surveys (multi-level PCM resistance drift, ReRAM
 * retention, Flash retention, DRAM cell faults). Between anchors the
 * model interpolates linearly in log(time)-log(RBER) space.
 */

#ifndef NVCK_RELIABILITY_ERROR_MODEL_HH
#define NVCK_RELIABILITY_ERROR_MODEL_HH

#include <string>
#include <vector>

namespace nvck {

/** Memory technologies surveyed in Fig 1. */
enum class MemTech
{
    Reram,    //!< 16Gb 27nm ReRAM retention errors [63]
    Pcm2,     //!< 2-bit/cell PCM resistance drift [60], [61]
    Pcm3,     //!< 3-bit/cell PCM resistance drift [60]
    FlashMlc, //!< commercial MLC NAND [65], [66]
    Dram,     //!< 28nm DRAM cell fault rate [29] (time-independent)
};

/** Human-readable technology name. */
std::string memTechName(MemTech tech);

/** All modelled technologies, in Fig 1's order. */
const std::vector<MemTech> &allMemTechs();

/**
 * RBER after @p seconds_since_refresh of unrefreshed retention.
 * Clamped to the anchored range (no extrapolation beyond one year).
 */
double rberAfter(MemTech tech, double seconds_since_refresh);

/** The paper's design points (Sections II-B, IV-A, V-C). */
namespace rber {

/** Boot-time target: ReRAM @ 1 year / 3-bit PCM @ 1 week (1e-3). */
constexpr double bootTarget = 1e-3;

/** Runtime ReRAM RBER (~7e-5, [63]). */
constexpr double runtimeReram = 7e-5;

/** Runtime 3-bit PCM RBER with refresh once per second (7e-5, [60]). */
constexpr double runtimePcm3Fast = 7e-5;

/** Runtime 3-bit PCM RBER with refresh once per hour (2e-4, [60]). */
constexpr double runtimePcm3Hourly = 2e-4;

/** Reliability targets (Section III). */
constexpr double ueTargetPerBlock = 1e-15;
constexpr double sdcTargetPerBlock = 1e-17;

} // namespace rber

/** Seconds in useful retention units. */
constexpr double secondsPerHour = 3600.0;
constexpr double secondsPerDay = 86400.0;
constexpr double secondsPerWeek = 7.0 * secondsPerDay;
constexpr double secondsPerYear = 365.25 * secondsPerDay;

} // namespace nvck

#endif // NVCK_RELIABILITY_ERROR_MODEL_HH
