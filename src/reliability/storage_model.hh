/**
 * @file
 * Analytical storage-cost models for every protection scheme the paper
 * compares (Figs 2, 3, 4 and Sections III/IV): per-block BCH bit-error
 * correction, extensions of DRAM chipkill-correct (XED, the Samsung
 * HPCA'17 study, DUO), storage-style VLEW + parity chip at several
 * codeword lengths, and the proposal itself.
 *
 * Each model answers: what is the minimum total storage overhead that
 * meets the per-block uncorrectable-error target at a given RBER?
 */

#ifndef NVCK_RELIABILITY_STORAGE_MODEL_HH
#define NVCK_RELIABILITY_STORAGE_MODEL_HH

#include <string>
#include <vector>

namespace nvck {

/** A solved protection configuration. */
struct StorageSolution
{
    std::string scheme;       //!< human-readable scheme name
    unsigned t = 0;           //!< correction strength chosen
    double codeOverhead = 0;  //!< in-chip / in-word code-bit overhead
    double totalOverhead = 0; //!< including any parity chip
    bool feasible = true;     //!< false when no strength meets target
};

/** Common inputs to all models. */
struct StorageTargets
{
    double rber = 1e-3;          //!< raw bit error rate
    double ueTarget = 1e-15;     //!< per-64B-block UE probability target
    unsigned dataChips = 8;      //!< data chips per rank
    unsigned chipBeatBits = 64;  //!< bits per chip per block
};

/**
 * Per-block t-EC BCH with no chip-failure protection (Section III-A,
 * e.g. 14-EC at 28% for 1e-3 RBER).
 */
StorageSolution bitErrorOnlyBch(const StorageTargets &in);

/**
 * Brute-force chipkill via per-block BCH strong enough to absorb a full
 * chip (64 bits) on top of random errors (Section III-A: 78-EC, 152%).
 */
StorageSolution bruteForceChipkillBch(const StorageTargets &in);

/**
 * XED-like extension: per-chip BCH over 8B words + parity chip
 * (Section III-B).
 */
StorageSolution xedExtension(const StorageTargets &in);

/**
 * Samsung-study-like extension: per-chip BCH over 16B words + parity
 * chip (Section III-B).
 */
StorageSolution samsungExtension(const StorageTargets &in);

/**
 * DUO-like extension: rank-level RS over each 64B block; one check byte
 * per chip-failure erasure plus two per random byte error
 * (Section III-B).
 */
StorageSolution duoExtension(const StorageTargets &in);

/**
 * Storage-inspired VLEW scheme: per-chip BCH word holding
 * @p vlew_data_bytes of data plus a parity chip for chip failures
 * (Section IV, Fig 4). @p paper_code_bits uses the paper's
 * t*(ceil(log2 k)+1) accounting for the code-bit count.
 */
StorageSolution vlewScheme(const StorageTargets &in,
                           unsigned vlew_data_bytes);

/** Fig 4 sweep over VLEW data sizes (bytes per in-chip codeword). */
std::vector<StorageSolution>
vlewSweep(const StorageTargets &in,
          const std::vector<unsigned> &data_sizes_bytes);

/**
 * Flash-style ECC catalogue (Fig 3): 512B codewords at the correction
 * strengths commercial flash uses; reports overhead and the maximum
 * RBER each strength tolerates at the UE target.
 */
struct FlashEccRow
{
    unsigned t;
    double overhead;
    double maxRber;
};
std::vector<FlashEccRow>
flashEccCatalogue(const std::vector<unsigned> &strengths,
                  double ue_target);

} // namespace nvck

#endif // NVCK_RELIABILITY_STORAGE_MODEL_HH
