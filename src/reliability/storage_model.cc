#include "storage_model.hh"

#include <cmath>

#include "common/log.hh"
#include "common/threadpool.hh"
#include "ecc/code_params.hh"
#include "reliability/binomial.hh"

namespace nvck {

namespace {

constexpr unsigned maxStrength = 256;

/**
 * Find the smallest t such that a BCH word of @p k_bits data plus the
 * paper-accounted code bits survives @p rber with word-failure
 * probability <= @p word_target. Returns maxStrength+1 if infeasible.
 */
unsigned
solveBchStrength(unsigned k_bits, double rber, double word_target)
{
    for (unsigned t = 0; t <= maxStrength; ++t) {
        const unsigned n = k_bits + bchCheckBitsPaper(t ? t : 1, k_bits) *
                                        (t ? 1 : 0);
        const unsigned word = t ? n : k_bits;
        if (binomialTail(word, t + 1, rber) <= word_target)
            return t;
    }
    return maxStrength + 1;
}

} // namespace

StorageSolution
bitErrorOnlyBch(const StorageTargets &in)
{
    StorageSolution out;
    out.scheme = "per-block BCH (bit errors only)";
    const unsigned k = 512; // one 64B block
    const unsigned t = solveBchStrength(k, in.rber, in.ueTarget);
    if (t > maxStrength) {
        out.feasible = false;
        return out;
    }
    out.t = t;
    out.codeOverhead = bchOverheadPaper(t, k);
    out.totalOverhead = out.codeOverhead;
    return out;
}

StorageSolution
bruteForceChipkillBch(const StorageTargets &in)
{
    StorageSolution out;
    out.scheme = "per-block BCH absorbing a chip (brute force)";
    const unsigned k = 512;
    const unsigned t_rand = solveBchStrength(k, in.rber, in.ueTarget);
    if (t_rand > maxStrength) {
        out.feasible = false;
        return out;
    }
    // A failed chip contributes up to 64 wrong bits per block on top of
    // the random errors (Section III-A).
    out.t = in.chipBeatBits + t_rand;
    out.codeOverhead = bchOverheadPaper(out.t, k);
    out.totalOverhead = out.codeOverhead;
    return out;
}

namespace {

/**
 * Shared body for the on-die-BCH + parity-chip extensions (XED,
 * Samsung): per-chip words of @p word_data_bits, eight data chips per
 * rank, one parity chip.
 */
StorageSolution
onDiePlusParity(const StorageTargets &in, unsigned word_data_bits,
                const std::string &name)
{
    StorageSolution out;
    out.scheme = name;
    // Each 64B block touches one word per chip; any word failing makes
    // the block uncorrectable (the parity chip is budgeted for a whole
    // chip failure, not random-error cleanup).
    const double word_target = in.ueTarget / in.dataChips;
    const unsigned t = solveBchStrength(word_data_bits, in.rber,
                                        word_target);
    if (t > maxStrength) {
        out.feasible = false;
        return out;
    }
    out.t = t;
    out.codeOverhead = bchOverheadPaper(t, word_data_bits);
    out.totalOverhead =
        out.codeOverhead +
        (1.0 / in.dataChips) * (1.0 + out.codeOverhead);
    return out;
}

} // namespace

StorageSolution
xedExtension(const StorageTargets &in)
{
    return onDiePlusParity(in, 64, "XED-like (8B on-die BCH + parity chip)");
}

StorageSolution
samsungExtension(const StorageTargets &in)
{
    return onDiePlusParity(in, 128,
                           "Samsung-like (16B on-die BCH + parity chip)");
}

StorageSolution
duoExtension(const StorageTargets &in)
{
    StorageSolution out;
    out.scheme = "DUO-like (rank-level RS, bytes)";
    const double p_byte = symbolErrorProb(in.rber, 8);
    // r = 8 erasure bytes for a dead chip + 2 per random byte error;
    // the word grows with t, so iterate to a fixed point.
    for (unsigned t = 0; t <= maxStrength; ++t) {
        const unsigned r = in.dataChips + 2 * t;
        const unsigned n_bytes = 64 + r;
        if (binomialTail(n_bytes, t + 1, p_byte) <= in.ueTarget) {
            out.t = t;
            out.codeOverhead = static_cast<double>(r) / 64.0;
            out.totalOverhead = out.codeOverhead;
            return out;
        }
    }
    out.feasible = false;
    return out;
}

StorageSolution
vlewScheme(const StorageTargets &in, unsigned vlew_data_bytes)
{
    StorageSolution out;
    out.scheme = "VLEW(" + std::to_string(vlew_data_bytes) +
                 "B) + parity chip";
    const unsigned k_bits = vlew_data_bytes * 8;
    const double word_target = in.ueTarget / in.dataChips;
    const unsigned t = solveBchStrength(k_bits, in.rber, word_target);
    if (t > maxStrength) {
        out.feasible = false;
        return out;
    }
    out.t = t;
    out.codeOverhead = bchOverheadPaper(t, k_bits);
    out.totalOverhead =
        out.codeOverhead +
        (1.0 / in.dataChips) * (1.0 + out.codeOverhead);
    return out;
}

std::vector<StorageSolution>
vlewSweep(const StorageTargets &in,
          const std::vector<unsigned> &data_sizes_bytes)
{
    // Each size runs its own strength solver: independent work items
    // on the global pool, collected in submission order, so the rows
    // match a serial evaluation exactly for any NVCK_JOBS.
    return ThreadPool::global().map<StorageSolution>(
        data_sizes_bytes.size(), [&](std::size_t i) {
            return vlewScheme(in, data_sizes_bytes[i]);
        });
}

std::vector<FlashEccRow>
flashEccCatalogue(const std::vector<unsigned> &strengths,
                  double ue_target)
{
    const unsigned k_bits = 512 * 8;
    // One binary search per strength; independent points on the pool.
    return ThreadPool::global().map<FlashEccRow>(
        strengths.size(), [&](std::size_t i) {
            const unsigned t = strengths[i];
            FlashEccRow row;
            row.t = t;
            row.overhead = bchOverheadPaper(t, k_bits);
            const unsigned n = k_bits + bchCheckBitsPaper(t, k_bits);
            // Largest RBER this strength tolerates at the UE target.
            double lo = 1e-12, hi = 0.5;
            for (int iter = 0; iter < 80; ++iter) {
                const double mid = std::sqrt(lo * hi);
                if (binomialTail(n, t + 1, mid) <= ue_target)
                    lo = mid;
                else
                    hi = mid;
            }
            row.maxRber = lo;
            return row;
        });
}

} // namespace nvck
