#include "sdc_model.hh"

#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "reliability/binomial.hh"

namespace nvck {

double
sdcTermA(const SdcInputs &in, unsigned t)
{
    const unsigned n = in.dataSymbols + in.checkSymbols;
    const unsigned dmin = in.checkSymbols + 1;
    NVCK_ASSERT(t < dmin, "t beyond code distance");
    const unsigned n_th = dmin - t;
    const double p_sym = symbolErrorProb(in.rber, in.symbolBits);
    return binomialTail(n, n_th, p_sym);
}

double
sdcTermB(const SdcInputs &in, unsigned t)
{
    const unsigned n = in.dataSymbols + in.checkSymbols;
    // C(n, t) * 2^(m t) * 2^(m k) / 2^(m n) = C(n, t) * 2^(-m (r - t)).
    const double log2_term =
        static_cast<double>(in.symbolBits) *
        (static_cast<double>(t) - static_cast<double>(in.checkSymbols));
    return std::exp(logChoose(n, t) + log2_term * std::log(2.0));
}

double
sdcRate(const SdcInputs &in, unsigned t)
{
    return sdcTermA(in, t) * sdcTermB(in, t);
}

double
vlewFallbackFraction(const SdcInputs &in, unsigned threshold)
{
    const unsigned n = in.dataSymbols + in.checkSymbols;
    const double p_sym = symbolErrorProb(in.rber, in.symbolBits);
    return binomialTail(n, threshold + 1, p_sym);
}

double
vlewFallbackFractionMc(const SdcInputs &in, unsigned threshold,
                       std::uint64_t trials, std::uint64_t seed,
                       ThreadPool *pool)
{
    if (trials == 0)
        return 0.0;
    const unsigned n = in.dataSymbols + in.checkSymbols;
    const double p_sym = symbolErrorProb(in.rber, in.symbolBits);

    // Fixed chunking keeps the decomposition — and the substream each
    // trial draws from — independent of the worker count.
    constexpr std::uint64_t kTrialsPerChunk = 4096;
    const std::uint64_t chunks =
        (trials + kTrialsPerChunk - 1) / kTrialsPerChunk;
    std::vector<std::uint64_t> rejected(chunks, 0);

    ThreadPool &p = pool ? *pool : ThreadPool::global();
    const Rng base(seed);
    p.parallelFor(chunks, [&](std::size_t ci) {
        Rng rng = base.substream(ci);
        const std::uint64_t lo = ci * kTrialsPerChunk;
        const std::uint64_t hi =
            lo + kTrialsPerChunk < trials ? lo + kTrialsPerChunk : trials;
        std::uint64_t count = 0;
        for (std::uint64_t t = lo; t < hi; ++t)
            if (rng.binomial(n, p_sym) > threshold)
                ++count;
        rejected[ci] = count;
    });

    std::uint64_t total = 0;
    for (const auto r : rejected)
        total += r;
    return static_cast<double>(total) / static_cast<double>(trials);
}

double
blockErrorFraction(const SdcInputs &in)
{
    const unsigned n_bits =
        (in.dataSymbols + in.checkSymbols) * in.symbolBits;
    return symbolErrorProb(in.rber, n_bits);
}

} // namespace nvck
