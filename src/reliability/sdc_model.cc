#include "sdc_model.hh"

#include <cmath>

#include "common/log.hh"
#include "reliability/binomial.hh"

namespace nvck {

double
sdcTermA(const SdcInputs &in, unsigned t)
{
    const unsigned n = in.dataSymbols + in.checkSymbols;
    const unsigned dmin = in.checkSymbols + 1;
    NVCK_ASSERT(t < dmin, "t beyond code distance");
    const unsigned n_th = dmin - t;
    const double p_sym = symbolErrorProb(in.rber, in.symbolBits);
    return binomialTail(n, n_th, p_sym);
}

double
sdcTermB(const SdcInputs &in, unsigned t)
{
    const unsigned n = in.dataSymbols + in.checkSymbols;
    // C(n, t) * 2^(m t) * 2^(m k) / 2^(m n) = C(n, t) * 2^(-m (r - t)).
    const double log2_term =
        static_cast<double>(in.symbolBits) *
        (static_cast<double>(t) - static_cast<double>(in.checkSymbols));
    return std::exp(logChoose(n, t) + log2_term * std::log(2.0));
}

double
sdcRate(const SdcInputs &in, unsigned t)
{
    return sdcTermA(in, t) * sdcTermB(in, t);
}

double
vlewFallbackFraction(const SdcInputs &in, unsigned threshold)
{
    const unsigned n = in.dataSymbols + in.checkSymbols;
    const double p_sym = symbolErrorProb(in.rber, in.symbolBits);
    return binomialTail(n, threshold + 1, p_sym);
}

double
blockErrorFraction(const SdcInputs &in)
{
    const unsigned n_bits =
        (in.dataSymbols + in.checkSymbols) * in.symbolBits;
    return symbolErrorProb(in.rber, n_bits);
}

} // namespace nvck
