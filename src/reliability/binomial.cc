#include "binomial.hh"

#include <cmath>
#include <limits>

#include "common/log.hh"

namespace nvck {

namespace {

/**
 * std::lgamma is not thread-safe on glibc (it writes the global
 * `signgam`), and the parallel experiment engine evaluates these
 * models concurrently. All arguments here are > 0, so the sign output
 * of the reentrant variant is irrelevant.
 */
double
lgammaSafe(double x)
{
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

} // namespace

double
logChoose(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return -std::numeric_limits<double>::infinity();
    if (k == 0 || k == n)
        return 0.0;
    return lgammaSafe(static_cast<double>(n) + 1.0) -
           lgammaSafe(static_cast<double>(k) + 1.0) -
           lgammaSafe(static_cast<double>(n - k) + 1.0);
}

double
choose(std::uint64_t n, std::uint64_t k)
{
    return std::exp(logChoose(n, k));
}

double
logBinomialPmf(std::uint64_t n, std::uint64_t k, double p)
{
    NVCK_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
    if (k > n)
        return -std::numeric_limits<double>::infinity();
    if (p == 0.0)
        return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
    if (p == 1.0)
        return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
    return logChoose(n, k) + static_cast<double>(k) * std::log(p) +
           static_cast<double>(n - k) * std::log1p(-p);
}

double
binomialPmf(std::uint64_t n, std::uint64_t k, double p)
{
    return std::exp(logBinomialPmf(n, k, p));
}

double
binomialTail(std::uint64_t n, std::uint64_t k, double p)
{
    if (k == 0)
        return 1.0;
    if (k > n || p == 0.0)
        return 0.0;
    // Sum PMF terms from k upward. In the far tail (k >> np) successive
    // terms shrink by roughly (n-k)p/k, so truncate once negligible.
    double total = 0.0;
    double last = 0.0;
    for (std::uint64_t i = k; i <= n; ++i) {
        const double term = binomialPmf(n, i, p);
        total += term;
        if (term < 1e-30 && term < 1e-12 * total && term <= last)
            break;
        last = term;
    }
    return total > 1.0 ? 1.0 : total;
}

double
symbolErrorProb(double rber, unsigned bits_per_symbol)
{
    NVCK_ASSERT(rber >= 0.0 && rber <= 1.0, "RBER out of range");
    // 1 - (1-p)^b = -expm1(b * log1p(-p))
    return -std::expm1(static_cast<double>(bits_per_symbol) *
                       std::log1p(-rber));
}

unsigned
requiredCorrection(std::uint64_t n_symbols, double symbol_err,
                   double target)
{
    for (unsigned t = 0; t <= n_symbols; ++t) {
        if (binomialTail(n_symbols, t + 1, symbol_err) <= target)
            return t;
    }
    NVCK_FATAL("no correction strength meets target ", target,
               " for n=", n_symbols, " p=", symbol_err);
}

} // namespace nvck
