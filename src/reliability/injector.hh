/**
 * @file
 * Monte-Carlo fault injection on the *real* codecs. Validates the
 * analytical models (Fig 7's error distribution, the appendix's
 * miscorrection behaviour, erasure correction under chip failure) at
 * RBERs where event rates are measurable in simulation.
 */

#ifndef NVCK_RELIABILITY_INJECTOR_HH
#define NVCK_RELIABILITY_INJECTOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/threadpool.hh"
#include "ecc/bch.hh"
#include "ecc/rs.hh"

namespace nvck {

/** Aggregated outcomes of an injection campaign. */
struct InjectionReport
{
    std::uint64_t trials = 0;
    std::uint64_t clean = 0;          //!< zero syndrome
    std::uint64_t corrected = 0;      //!< fixed, matches ground truth
    std::uint64_t detected = 0;       //!< reported uncorrectable
    std::uint64_t miscorrected = 0;   //!< silent data corruption
    std::uint64_t rejectedByCap = 0;  //!< exceeded the max_errors cap
    Histogram errorCount{32};         //!< injected symbol/bit errors

    double rate(std::uint64_t n) const
    {
        return trials ? static_cast<double>(n) / trials : 0.0;
    }

    /**
     * Fold another report in (pure counter addition, so per-worker
     * partial reports merge to the serial totals in any order).
     */
    void
    merge(const InjectionReport &other)
    {
        trials += other.trials;
        clean += other.clean;
        corrected += other.corrected;
        detected += other.detected;
        miscorrected += other.miscorrected;
        rejectedByCap += other.rejectedByCap;
        errorCount.merge(other.errorCount);
    }
};

/** Campaign settings for the per-block RS code. */
struct RsCampaign
{
    double rber = 2e-4;      //!< per-bit error probability
    std::uint64_t trials = 10000;
    int maxErrors = -1;      //!< decode cap (-1 = full capability)
    int failedChip = -1;     //!< >= 0: garble that chip's symbols and
                             //!< pass them as erasures
    unsigned chipBeatBytes = 8;
    std::uint64_t seed = 1;
};

/**
 * Run RS injection against a codec. Trial i draws from the substream
 * derived from (c.seed, i), so the report is identical for any worker
 * count (NVCK_JOBS=1 included). @p pool defaults to the global pool.
 */
InjectionReport injectRs(const RsCodec &codec, const RsCampaign &c,
                         ThreadPool *pool = nullptr);

/** Campaign settings for a BCH codec (e.g. the VLEW). */
struct BchCampaign
{
    double rber = 1e-3;
    std::uint64_t trials = 1000;
    std::uint64_t seed = 1;
};

/** Run BCH injection against a codec (same determinism contract as
 *  injectRs: per-trial substreams, worker-count independent). */
InjectionReport injectBch(const BchCodec &codec, const BchCampaign &c,
                          ThreadPool *pool = nullptr);

} // namespace nvck

#endif // NVCK_RELIABILITY_INJECTOR_HH
