/**
 * @file
 * The paper's appendix model for silent-data-corruption (miscorrection)
 * probability of the per-block RS code, plus the derived runtime rates
 * quoted in Section V-C: the SDC rate when correcting the full t = 4
 * capability (3.2e-11 at 2e-4 RBER) versus the thresholded t = 2
 * (3.3e-22), and the fraction of reads that must fall back to VLEW
 * correction.
 */

#ifndef NVCK_RELIABILITY_SDC_MODEL_HH
#define NVCK_RELIABILITY_SDC_MODEL_HH

#include <cstdint>

#include "common/threadpool.hh"

namespace nvck {

/** Inputs describing the per-block RS code and the channel. */
struct SdcInputs
{
    unsigned dataSymbols = 64;  //!< k, data bytes per block
    unsigned checkSymbols = 8;  //!< r, check bytes per block
    unsigned symbolBits = 8;    //!< m, bits per RS symbol
    double rber = 2e-4;         //!< raw bit error rate
};

/**
 * Term A: probability that a received word contains at least
 * n_th = (d_min - t) symbol errors, the minimum needed to land within
 * distance t of a *different* codeword.
 */
double sdcTermA(const SdcInputs &in, unsigned t);

/**
 * Term B: probability that an uncorrectable noncodeword lies within
 * Hamming distance t of some unintended codeword:
 * C(n, t) * 2^(m t) * 2^(m k) / 2^(m n).
 */
double sdcTermB(const SdcInputs &in, unsigned t);

/** SDC rate = Term A * Term B when correcting up to @p t symbols. */
double sdcRate(const SdcInputs &in, unsigned t);

/**
 * Fraction of reads whose opportunistic RS correction is rejected
 * (more than @p threshold symbol errors present), forcing a VLEW
 * fetch. Section V-C quotes ~0.018% on average.
 */
double vlewFallbackFraction(const SdcInputs &in, unsigned threshold);

/**
 * Monte-Carlo cross-check of vlewFallbackFraction(): sample the
 * per-read symbol-error count Binomial(n, p_sym) and count reads whose
 * errors exceed @p threshold. Trials run in fixed-size chunks on the
 * parallel engine, each chunk drawing from its own (seed, chunk)
 * substream, so the estimate is reproducible and independent of the
 * worker count. Only meaningful at RBERs where the tail is observable
 * within @p trials samples.
 */
double vlewFallbackFractionMc(const SdcInputs &in, unsigned threshold,
                              std::uint64_t trials, std::uint64_t seed,
                              ThreadPool *pool = nullptr);

/** Probability a block read contains at least one bit error. */
double blockErrorFraction(const SdcInputs &in);

} // namespace nvck

#endif // NVCK_RELIABILITY_SDC_MODEL_HH
