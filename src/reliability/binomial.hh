/**
 * @file
 * Log-space binomial probability machinery. The paper's reliability
 * targets (1e-15 UE, 1e-17 SDC) are far below what double-precision
 * naive products can resolve, so everything is computed via log-gamma.
 */

#ifndef NVCK_RELIABILITY_BINOMIAL_HH
#define NVCK_RELIABILITY_BINOMIAL_HH

#include <cstdint>

namespace nvck {

/** Natural log of the binomial coefficient C(n, k). */
double logChoose(std::uint64_t n, std::uint64_t k);

/** Binomial coefficient as a double (may overflow to inf for huge n). */
double choose(std::uint64_t n, std::uint64_t k);

/** Natural log of the PMF: P[X = k], X ~ Binomial(n, p). */
double logBinomialPmf(std::uint64_t n, std::uint64_t k, double p);

/** P[X = k] for X ~ Binomial(n, p). */
double binomialPmf(std::uint64_t n, std::uint64_t k, double p);

/**
 * Upper tail P[X >= k]. Exact summation of the PMF terms (they decay
 * geometrically past the mean, so the sum converges in a few dozen
 * terms for the regimes used here).
 */
double binomialTail(std::uint64_t n, std::uint64_t k, double p);

/**
 * Probability that a symbol of @p bits_per_symbol independent bits with
 * raw bit error rate @p rber contains at least one wrong bit:
 * 1 - (1-rber)^bits, evaluated stably for tiny rber.
 */
double symbolErrorProb(double rber, unsigned bits_per_symbol);

/**
 * Smallest t such that P[X >= t+1] <= target for X ~ Binomial(n, p):
 * the correction strength needed for an ECC word of n symbols with
 * per-symbol error probability p to meet an uncorrectable-error target.
 */
unsigned requiredCorrection(std::uint64_t n_symbols, double symbol_err,
                            double target);

} // namespace nvck

#endif // NVCK_RELIABILITY_BINOMIAL_HH
