#include "error_model.hh"

#include <cmath>

#include "common/log.hh"

namespace nvck {

namespace {

/** (seconds since refresh, RBER) anchor point. */
struct Anchor
{
    double seconds;
    double rber;
};

/**
 * Anchors per technology. Sources (paper Fig 1 and the measurements it
 * cites): 3-bit PCM reaches 7e-5 one second after refresh, 2e-4 one hour
 * after, and 1e-3 one week after [60]; ReRAM runs at ~7e-5 during
 * refreshed operation and reaches 1e-3 after one year without refresh
 * [63]; 2-bit PCM drifts roughly two decades lower than 3-bit at equal
 * time [60], [61]; MLC Flash spans ~1e-4 fresh to ~1e-2 at retention
 * limit [65], [66]; the DRAM line is the projected 1e-4 *cell fault*
 * rate for future high-density nodes [29], time-independent.
 */
const std::vector<Anchor> &
anchors(MemTech tech)
{
    static const std::vector<Anchor> reram = {
        {1.0, 7e-5},
        {secondsPerDay, 2.0e-4},
        {secondsPerWeek, 3.2e-4},
        {secondsPerYear, 1e-3},
    };
    static const std::vector<Anchor> pcm3 = {
        {1.0, 7e-5},
        {secondsPerHour, 2e-4},
        {secondsPerWeek, 1e-3},
        {secondsPerYear, 4e-3},
    };
    static const std::vector<Anchor> pcm2 = {
        {1.0, 1e-6},
        {secondsPerHour, 4e-6},
        {secondsPerWeek, 2.5e-5},
        {secondsPerYear, 1.2e-4},
    };
    static const std::vector<Anchor> flash = {
        {1.0, 1e-4},
        {secondsPerWeek, 8e-4},
        {90.0 * secondsPerDay, 5e-3},
        {secondsPerYear, 1e-2},
    };
    static const std::vector<Anchor> dram = {
        {1.0, 1e-4},
        {secondsPerYear, 1e-4},
    };
    switch (tech) {
      case MemTech::Reram:    return reram;
      case MemTech::Pcm3:     return pcm3;
      case MemTech::Pcm2:     return pcm2;
      case MemTech::FlashMlc: return flash;
      case MemTech::Dram:     return dram;
    }
    NVCK_PANIC("unknown MemTech");
}

} // namespace

std::string
memTechName(MemTech tech)
{
    switch (tech) {
      case MemTech::Reram:    return "ReRAM";
      case MemTech::Pcm2:     return "2-bit PCM";
      case MemTech::Pcm3:     return "3-bit PCM";
      case MemTech::FlashMlc: return "MLC Flash";
      case MemTech::Dram:     return "DRAM (cell faults)";
    }
    NVCK_PANIC("unknown MemTech");
}

const std::vector<MemTech> &
allMemTechs()
{
    static const std::vector<MemTech> all = {
        MemTech::Pcm2, MemTech::Pcm3, MemTech::Reram, MemTech::FlashMlc,
        MemTech::Dram,
    };
    return all;
}

double
rberAfter(MemTech tech, double seconds_since_refresh)
{
    NVCK_ASSERT(seconds_since_refresh >= 0.0, "negative retention time");
    const auto &pts = anchors(tech);
    if (seconds_since_refresh <= pts.front().seconds)
        return pts.front().rber;
    if (seconds_since_refresh >= pts.back().seconds)
        return pts.back().rber;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (seconds_since_refresh > pts[i].seconds)
            continue;
        const double x0 = std::log(pts[i - 1].seconds);
        const double x1 = std::log(pts[i].seconds);
        const double y0 = std::log(pts[i - 1].rber);
        const double y1 = std::log(pts[i].rber);
        const double x = std::log(seconds_since_refresh);
        const double y = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        return std::exp(y);
    }
    NVCK_PANIC("anchor search fell through");
}

} // namespace nvck
