#include "ue_model.hh"

#include <cmath>

#include "common/log.hh"
#include "common/threadpool.hh"
#include "reliability/binomial.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"

namespace nvck {

ReliabilityPoint
evaluateProposal(double rber, const ProposalParams &p)
{
    ReliabilityPoint out;
    out.rber = rber;

    // One VLEW: k data bits plus the paper-accounted code bits all
    // sit in NVRAM cells and accumulate errors.
    const unsigned k_bits = p.vlewDataBytes * 8;
    const unsigned n_bits = k_bits + p.vlewCodeBytes * 8;
    out.vlewFailureProb = binomialTail(n_bits, p.vlewT + 1, rber);

    // A block is covered by one VLEW per chip (8 data + 1 parity).
    // A single failed VLEW looks like a chip failure and is absorbed
    // by the RS erasure budget; boot-time UE needs two or more of the
    // nine covering VLEWs to fail.
    const unsigned chips = p.dataChips + p.parityChips;
    out.blockUeBoot =
        binomialTail(chips, 2, out.vlewFailureProb);

    SdcInputs sdc;
    sdc.rber = rber;
    sdc.dataSymbols = p.rsDataBytes;
    sdc.checkSymbols = p.rsCheckBytes;
    out.blockSdcRuntime = sdcRate(sdc, p.runtimeThreshold);
    out.vlewFallbackFraction =
        vlewFallbackFraction(sdc, p.runtimeThreshold);
    return out;
}

double
maxOutageSeconds(int tech, double ue_target)
{
    const MemTech technology = static_cast<MemTech>(tech);
    double lo = 1.0, hi = secondsPerYear;
    // If even a year is fine, report the cap; if one second is not,
    // report zero.
    if (evaluateProposal(rberAfter(technology, hi)).blockUeBoot <=
        ue_target)
        return hi;
    if (evaluateProposal(rberAfter(technology, lo)).blockUeBoot >
        ue_target)
        return 0.0;
    for (int iter = 0; iter < 64; ++iter) {
        const double mid = std::sqrt(lo * hi);
        const double ue =
            evaluateProposal(rberAfter(technology, mid)).blockUeBoot;
        if (ue <= ue_target)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::vector<ReliabilityPoint>
evaluateProposalSweep(const std::vector<double> &rbers,
                      const ProposalParams &p)
{
    return ThreadPool::global().map<ReliabilityPoint>(
        rbers.size(),
        [&](std::size_t i) { return evaluateProposal(rbers[i], p); });
}

std::vector<double>
maxOutageSweep(const std::vector<int> &techs, double ue_target)
{
    return ThreadPool::global().map<double>(
        techs.size(), [&](std::size_t i) {
            return maxOutageSeconds(techs[i], ue_target);
        });
}

double
chipkillGain(double chip_failure_prob, double bit_ue_prob)
{
    NVCK_ASSERT(chip_failure_prob >= 0.0 && chip_failure_prob <= 1.0,
                "probability out of range");
    NVCK_ASSERT(bit_ue_prob >= 0.0 && bit_ue_prob <= 1.0,
                "probability out of range");
    // Without chip protection, either event loses data; with it, only
    // bit-level UEs remain (a single chip failure is corrected).
    const double without = chip_failure_prob + bit_ue_prob -
                           chip_failure_prob * bit_ue_prob;
    const double with_chipkill = bit_ue_prob;
    if (with_chipkill <= 0.0)
        return INFINITY;
    return without / with_chipkill;
}

} // namespace nvck
