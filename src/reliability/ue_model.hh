/**
 * @file
 * End-to-end uncorrectable-error model for the proposal: combines the
 * VLEW (boot-time) and per-block RS (runtime) tiers into the UE and
 * SDC probabilities the paper's reliability targets constrain
 * (Section III: < 1e-15 UE and < 1e-17 SDC per block at any instant),
 * plus the chipkill value proposition — the paper cites Sridharan's
 * field study for a ~40x reliability gain from chip-failure coverage.
 */

#ifndef NVCK_RELIABILITY_UE_MODEL_HH
#define NVCK_RELIABILITY_UE_MODEL_HH

#include <vector>

#include "ecc/code_params.hh"

namespace nvck {

/** Reliability summary of one operating point. */
struct ReliabilityPoint
{
    double rber = 0.0;
    /** P(one VLEW exceeds its 22-bit correction budget). */
    double vlewFailureProb = 0.0;
    /** P(a 64B block is uncorrectable at boot) — any covering VLEW
     *  fails AND the RS erasure budget cannot absorb it. */
    double blockUeBoot = 0.0;
    /** P(a block read is silently miscorrected at runtime). */
    double blockSdcRuntime = 0.0;
    /** Fraction of runtime reads rejecting the RS shortcut. */
    double vlewFallbackFraction = 0.0;
};

/**
 * Evaluate the proposal at a given RBER (boot-time accumulation for
 * the UE numbers; the same rate is used for the runtime SDC terms, so
 * pass the runtime rate when studying runtime behaviour).
 */
ReliabilityPoint evaluateProposal(double rber,
                                  const ProposalParams &p =
                                      ProposalParams{});

/**
 * Evaluate the proposal at every RBER in @p rbers. The points are
 * independent analytic work items fanned across the global thread
 * pool (NVCK_JOBS) and collected in submission order, so the result
 * is element-for-element identical to calling evaluateProposal() in a
 * serial loop — for any worker count and any submission order.
 */
std::vector<ReliabilityPoint>
evaluateProposalSweep(const std::vector<double> &rbers,
                      const ProposalParams &p = ProposalParams{});

/**
 * Largest time-without-refresh (seconds) a technology tolerates while
 * keeping the per-block boot UE under @p ue_target. Binary-searches
 * the technology's RBER-vs-time curve; the paper's design point is a
 * week (3-bit PCM) to a year (ReRAM).
 */
double maxOutageSeconds(int tech /* MemTech as int to avoid include */,
                        double ue_target);

/**
 * maxOutageSeconds() for every technology in @p techs, one pool work
 * item per technology (each is an independent 64-step binary search
 * over the RBER-vs-time curve); results in submission order.
 */
std::vector<double> maxOutageSweep(const std::vector<int> &techs,
                                   double ue_target);

/**
 * Chipkill value: ratio of the block-failure probability without chip
 * protection (a chip failure is an unrecoverable event for the bits it
 * holds) to the proposal's (chip failures absorbed by erasures) given
 * a per-chip failure probability over the deployment horizon. With
 * realistic chip FIT rates this lands near the ~40x the paper cites.
 */
double chipkillGain(double chip_failure_prob, double bit_ue_prob);

} // namespace nvck

#endif // NVCK_RELIABILITY_UE_MODEL_HH
