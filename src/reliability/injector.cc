#include "injector.hh"

#include <vector>

#include "common/log.hh"

namespace nvck {

namespace {

/**
 * Trials per work item. Fixed (never derived from the worker count) so
 * the chunk decomposition — and therefore the merged report — is
 * identical no matter how many threads execute it.
 */
constexpr std::uint64_t kTrialsPerChunk = 512;

/**
 * Run @p perTrial over [0, trials) in fixed-size chunks on @p pool and
 * merge the per-chunk partial reports in submission order.
 */
template <typename PerTrial>
InjectionReport
runCampaign(std::uint64_t trials, ThreadPool *pool, PerTrial perTrial)
{
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    const std::uint64_t chunks =
        (trials + kTrialsPerChunk - 1) / kTrialsPerChunk;
    std::vector<InjectionReport> parts(chunks);
    p.parallelFor(chunks, [&](std::size_t ci) {
        const std::uint64_t lo = ci * kTrialsPerChunk;
        const std::uint64_t hi =
            lo + kTrialsPerChunk < trials ? lo + kTrialsPerChunk : trials;
        for (std::uint64_t trial = lo; trial < hi; ++trial)
            perTrial(trial, parts[ci]);
    });
    InjectionReport report;
    for (const auto &part : parts)
        report.merge(part);
    return report;
}

} // namespace

InjectionReport
injectRs(const RsCodec &codec, const RsCampaign &c, ThreadPool *pool)
{
    const unsigned n = codec.n();
    const unsigned m = codec.field().m();
    NVCK_ASSERT(m == 8, "RS injection assumes byte symbols");

    std::vector<std::uint32_t> erasures;
    if (c.failedChip >= 0) {
        // Data chip f contributes symbols [r + f*beat, r + (f+1)*beat);
        // chip index dataChips means the parity chip (symbols [0, r)).
        const unsigned beat = c.chipBeatBytes;
        const unsigned first =
            codec.r() + static_cast<unsigned>(c.failedChip) * beat;
        if (first >= codec.n()) {
            for (std::uint32_t s = 0; s < codec.r(); ++s)
                erasures.push_back(s);
        } else {
            for (std::uint32_t s = first; s < first + beat; ++s)
                erasures.push_back(s);
        }
    }

    const Rng base(c.seed);
    return runCampaign(
        c.trials, pool,
        [&](std::uint64_t trial, InjectionReport &report) {
            Rng rng = base.substream(trial);
            std::vector<GfElem> data(codec.k());
            for (auto &sym : data)
                sym = static_cast<GfElem>(rng.next() & 0xFF);
            const auto clean = codec.encode(data);
            auto noisy = clean;

            // Random bit errors across the whole codeword.
            std::uint64_t injected_symbols = 0;
            for (unsigned s = 0; s < n; ++s) {
                GfElem flip = 0;
                for (unsigned b = 0; b < 8; ++b)
                    if (rng.chance(c.rber))
                        flip |= 1u << b;
                if (flip) {
                    noisy[s] ^= flip;
                    ++injected_symbols;
                }
            }
            // Chip failure: garble the failed chip's symbols entirely.
            for (auto pos : erasures)
                noisy[pos] = static_cast<GfElem>(rng.next() & 0xFF);

            report.errorCount.sample(
                static_cast<std::size_t>(injected_symbols));

            const auto res = codec.decode(noisy, erasures, c.maxErrors);
            ++report.trials;
            switch (res.status) {
              case DecodeStatus::Clean:
                if (noisy == clean)
                    ++report.clean;
                else
                    ++report.miscorrected; // errors formed another codeword
                break;
              case DecodeStatus::Corrected:
                if (noisy == clean)
                    ++report.corrected;
                else
                    ++report.miscorrected;
                break;
              case DecodeStatus::Uncorrectable:
                ++report.detected;
                break;
            }
        });
}

InjectionReport
injectBch(const BchCodec &codec, const BchCampaign &c, ThreadPool *pool)
{
    const Rng base(c.seed);
    return runCampaign(
        c.trials, pool,
        [&](std::uint64_t trial, InjectionReport &report) {
            Rng rng = base.substream(trial);
            BitVec data(codec.k());
            data.randomize(rng);
            const BitVec clean = codec.encode(data);
            BitVec noisy = clean;
            const std::size_t injected = noisy.injectErrors(rng, c.rber);
            report.errorCount.sample(injected);

            const auto res = codec.decode(noisy);
            ++report.trials;
            switch (res.status) {
              case DecodeStatus::Clean:
                if (noisy == clean)
                    ++report.clean;
                else
                    ++report.miscorrected;
                break;
              case DecodeStatus::Corrected:
                if (noisy == clean)
                    ++report.corrected;
                else
                    ++report.miscorrected;
                break;
              case DecodeStatus::Uncorrectable:
                ++report.detected;
                break;
            }
        });
}

} // namespace nvck
