#include "table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "log.hh"

namespace nvck {

Table::Table(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    NVCK_ASSERT(!rows.empty(), "cell() before row()");
    rows.back().push_back(text);
    return *this;
}

Table &
Table::cell(double value, int digits)
{
    return cell(formatNumber(value, digits));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::pct(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return cell(std::string(buf));
}

std::string
Table::formatNumber(double value, int digits)
{
    char buf[64];
    const double mag = std::fabs(value);
    if (value != 0.0 && (mag < 1e-3 || mag >= 1e7))
        std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, value);
    else
        std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "| ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << text;
            for (std::size_t pad = text.size(); pad < widths[c]; ++pad)
                os << ' ';
            os << " | ";
        }
        os << '\n';
    };

    print_row(headers);
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
        for (std::size_t i = 0; i < widths[c] + 2; ++i)
            os << '-';
        os << "|";
    }
    os << '\n';
    for (const auto &r : rows)
        print_row(r);
}

} // namespace nvck
