#include "bitvec.hh"

#include <algorithm>
#include <bit>

#include "log.hh"
#include "rng.hh"

namespace nvck {

void
BitVec::clear()
{
    std::fill(words.begin(), words.end(), 0);
}

std::size_t
BitVec::popcount() const
{
    std::size_t count = 0;
    for (std::uint64_t w : words)
        count += static_cast<std::size_t>(std::popcount(w));
    return count;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    NVCK_ASSERT(numBits == other.numBits, "BitVec length mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] ^= other.words[i];
    return *this;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return numBits == other.numBits && words == other.words;
}

std::size_t
BitVec::distance(const BitVec &other) const
{
    NVCK_ASSERT(numBits == other.numBits, "BitVec length mismatch");
    std::size_t count = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
        count += static_cast<std::size_t>(
            std::popcount(words[i] ^ other.words[i]));
    return count;
}

void
BitVec::randomize(Rng &rng)
{
    for (auto &w : words)
        w = rng.next();
    // Mask tail bits beyond numBits so equality/popcount stay consistent.
    const unsigned tail = numBits & 63;
    if (tail != 0 && !words.empty())
        words.back() &= (1ull << tail) - 1;
}

std::size_t
BitVec::injectErrors(Rng &rng, double ber)
{
    if (ber <= 0.0 || numBits == 0)
        return 0;
    std::size_t flipped = 0;
    std::uint64_t pos = 0;
    for (;;) {
        pos += rng.geometric(ber);
        if (pos > numBits)
            break;
        flip(pos - 1);
        ++flipped;
    }
    return flipped;
}

void
BitVec::injectExactErrors(Rng &rng, std::size_t count)
{
    NVCK_ASSERT(count <= numBits, "more errors than bits");
    std::size_t injected = 0;
    while (injected < count) {
        const std::size_t idx = rng.below(numBits);
        // Re-draw on collision; counts are tiny relative to length.
        if (!get(idx)) {
            flip(idx);
            ++injected;
        }
    }
}

std::uint64_t
BitVec::getBits(std::size_t idx, unsigned width) const
{
    NVCK_ASSERT(width >= 1 && width <= 64, "bad field width");
    NVCK_ASSERT(idx + width <= numBits, "field out of range");
    const std::size_t word = idx >> 6;
    const unsigned shift = idx & 63;
    std::uint64_t value = words[word] >> shift;
    if (shift + width > 64)
        value |= words[word + 1] << (64 - shift);
    if (width < 64)
        value &= (1ull << width) - 1;
    return value;
}

void
BitVec::setBits(std::size_t idx, unsigned width, std::uint64_t value)
{
    NVCK_ASSERT(width >= 1 && width <= 64, "bad field width");
    NVCK_ASSERT(idx + width <= numBits, "field out of range");
    if (width < 64)
        value &= (1ull << width) - 1;
    const std::size_t word = idx >> 6;
    const unsigned shift = idx & 63;
    const std::uint64_t field_mask =
        (width == 64) ? ~0ull : ((1ull << width) - 1);
    const std::uint64_t low_mask = field_mask << shift;
    words[word] = (words[word] & ~low_mask) | (value << shift);
    if (shift + width > 64) {
        const unsigned high_bits = shift + width - 64;
        const std::uint64_t high_mask = (1ull << high_bits) - 1;
        words[word + 1] =
            (words[word + 1] & ~high_mask) | (value >> (64 - shift));
    }
}

void
BitVec::copyRange(std::size_t dst_idx, const BitVec &src,
                  std::size_t src_idx, std::size_t count)
{
    NVCK_ASSERT(dst_idx + count <= numBits, "copyRange dst out of range");
    NVCK_ASSERT(src_idx + count <= src.numBits,
                "copyRange src out of range");
    // Word-aligned fast path: whole-word copies plus a masked tail.
    if ((dst_idx & 63) == 0 && (src_idx & 63) == 0) {
        const std::size_t dw = dst_idx >> 6;
        const std::size_t sw = src_idx >> 6;
        const std::size_t full = count >> 6;
        for (std::size_t i = 0; i < full; ++i)
            words[dw + i] = src.words[sw + i];
        const unsigned tail = count & 63;
        if (tail != 0) {
            const std::uint64_t mask = (1ull << tail) - 1;
            words[dw + full] = (words[dw + full] & ~mask) |
                               (src.words[sw + full] & mask);
        }
        return;
    }
    // Unaligned: move 64-bit chunks through the field accessors.
    std::size_t done = 0;
    while (done < count) {
        const unsigned width = static_cast<unsigned>(
            count - done < 64 ? count - done : 64);
        setBits(dst_idx + done, width,
                src.getBits(src_idx + done, width));
        done += width;
    }
}

void
BitVec::setBytes(std::size_t idx, const std::uint8_t *bytes,
                 std::size_t nbytes)
{
    NVCK_ASSERT(idx + nbytes * 8 <= numBits, "setBytes out of range");
    std::size_t b = 0;
    for (; b + 8 <= nbytes; b += 8) {
        std::uint64_t v = 0;
        for (unsigned j = 0; j < 8; ++j)
            v |= static_cast<std::uint64_t>(bytes[b + j]) << (8 * j);
        setBits(idx + b * 8, 64, v);
    }
    if (b < nbytes) {
        std::uint64_t v = 0;
        for (std::size_t j = 0; b + j < nbytes; ++j)
            v |= static_cast<std::uint64_t>(bytes[b + j]) << (8 * j);
        setBits(idx + b * 8, static_cast<unsigned>((nbytes - b) * 8), v);
    }
}

void
BitVec::getBytes(std::size_t idx, std::uint8_t *bytes,
                 std::size_t nbytes) const
{
    NVCK_ASSERT(idx + nbytes * 8 <= numBits, "getBytes out of range");
    std::size_t b = 0;
    for (; b + 8 <= nbytes; b += 8) {
        const std::uint64_t v = getBits(idx + b * 8, 64);
        for (unsigned j = 0; j < 8; ++j)
            bytes[b + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
    if (b < nbytes) {
        const std::uint64_t v =
            getBits(idx + b * 8, static_cast<unsigned>((nbytes - b) * 8));
        for (std::size_t j = 0; b + j < nbytes; ++j)
            bytes[b + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
}

} // namespace nvck
