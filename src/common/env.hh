/**
 * @file
 * Strict environment-knob parsing shared by every NVCK_* variable.
 *
 * Each knob either is unset (the caller applies its default), parses
 * cleanly, or is rejected with a one-line error on stderr and exit(2).
 * Silently falling back on garbage input is never acceptable: a typo in
 * NVCK_JOBS or NVCK_CODEC_KERNEL must not quietly change which code
 * runs. The parse functions are pure so tests can cover every malformed
 * shape without death tests; the env* wrappers add the getenv + exit
 * policy.
 */

#ifndef NVCK_COMMON_ENV_HH
#define NVCK_COMMON_ENV_HH

#include <cstdint>
#include <initializer_list>
#include <optional>

namespace nvck {

/**
 * Parse @p text as a positive decimal integer in [1, max]. Returns
 * nullopt on empty input, trailing junk, zero, or overflow.
 */
std::optional<std::uint64_t>
parsePositive(const char *text, std::uint64_t max = UINT64_MAX);

/**
 * Index of @p text in @p choices (exact match); nullopt when absent.
 */
std::optional<std::size_t>
parseChoice(const char *text,
            std::initializer_list<const char *> choices);

/**
 * Read the positive-integer knob @p name: nullopt when unset; the
 * value when well-formed; otherwise prints
 * "nvck: $NAME: expected ... got '...'" and exits with status 2.
 */
std::optional<std::uint64_t>
envPositive(const char *name, std::uint64_t max = UINT64_MAX);

/**
 * Read the enumerated knob @p name against @p choices: nullopt when
 * unset; the matching index when valid; exit(2) with a one-line error
 * listing the accepted values otherwise.
 */
std::optional<std::size_t>
envChoice(const char *name,
          std::initializer_list<const char *> choices);

} // namespace nvck

#endif // NVCK_COMMON_ENV_HH
