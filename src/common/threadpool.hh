/**
 * @file
 * Work-stealing thread pool used by the parallel experiment engine.
 *
 * The pool executes ordered parallel-for batches: `parallelFor(n, body)`
 * runs `body(i)` for every index in [0, n) across the workers and blocks
 * until all indices completed. Indices are pre-partitioned into chunks
 * that are dealt round-robin to per-worker deques; an idle worker first
 * drains its own deque, then steals chunks from the other workers, so
 * load imbalance (e.g. one slow SystemConfig among many fast ones) never
 * idles a core. The *submitting* thread participates as worker 0, so a
 * pool of J jobs spawns J-1 threads.
 *
 * Determinism contract: the pool itself imposes no ordering on side
 * effects, so callers must make each index write only its own slot
 * (results[i]) and derive any randomness from the index, never from
 * shared mutable state. Under that contract results are byte-identical
 * for any worker count, including the serial NVCK_JOBS=1 path.
 */

#ifndef NVCK_COMMON_THREADPOOL_HH
#define NVCK_COMMON_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nvck {

class ThreadPool
{
  public:
    /**
     * @param jobs Worker count including the submitting thread;
     *        0 means defaultJobCount(). A pool of 1 runs every batch
     *        inline on the caller with no threads spawned.
     */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count, including the submitting thread. */
    unsigned workers() const { return static_cast<unsigned>(slots.size()); }

    /**
     * Run @p body for every index in [0, count); blocks until done.
     * Safe to call from multiple threads (batches are serialized) and
     * reentrantly from inside a batch (nested calls run inline).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Ordered parallel map: out[i] = fn(i). Results land in submission
     * order regardless of which worker ran which index.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t count, const std::function<T(std::size_t)> &fn)
    {
        std::vector<T> out(count);
        parallelFor(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Process-wide pool sized by defaultJobCount(). Experiment code
     * funnels through this instance so NVCK_JOBS controls everything.
     */
    static ThreadPool &global();

    /**
     * NVCK_JOBS environment override if set to a positive integer,
     * otherwise std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned defaultJobCount();

  private:
    /** A contiguous index range awaiting execution. */
    struct Chunk
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /** Per-worker chunk deque; owner pops the front, thieves the back. */
    struct Slot
    {
        std::mutex mu;
        std::deque<Chunk> queue;
    };

    void workerLoop(unsigned slot);
    /** Drain own deque then steal until the live batch has no chunks. */
    void runSlot(unsigned slot);
    bool popChunk(unsigned slot, Chunk &out);

    std::vector<std::unique_ptr<Slot>> slots;
    std::vector<std::thread> threads;

    std::mutex mu;                 //!< guards epoch / stopping / wakeups
    std::condition_variable wake;  //!< workers wait for a new epoch
    std::condition_variable done;  //!< submitter waits for pending == 0
    std::uint64_t epoch = 0;
    bool stopping = false;

    std::mutex submitMu;           //!< serializes concurrent batches
    std::atomic<std::size_t> pending{0};
    const std::function<void(std::size_t)> *body = nullptr;
};

} // namespace nvck

#endif // NVCK_COMMON_THREADPOOL_HH
