/**
 * @file
 * Lightweight statistics primitives: named counters, running averages,
 * and fixed-bucket histograms. Components expose their statistics through
 * a StatGroup so experiment harnesses can dump them uniformly.
 */

#ifndef NVCK_COMMON_STATS_HH
#define NVCK_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace nvck {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { total += by; }
    std::uint64_t value() const { return total; }
    void reset() { total = 0; }

  private:
    std::uint64_t total = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Average
{
  public:
    void
    sample(double value)
    {
        sum += value;
        ++count;
        if (count == 1 || value < minimum)
            minimum = value;
        if (count == 1 || value > maximum)
            maximum = value;
    }

    double mean() const { return count ? sum / count : 0.0; }
    double min() const { return count ? minimum : 0.0; }
    double max() const { return count ? maximum : 0.0; }
    std::uint64_t samples() const { return count; }
    void reset() { *this = Average(); }

  private:
    double sum = 0.0;
    double minimum = 0.0;
    double maximum = 0.0;
    std::uint64_t count = 0;
};

/** Histogram over integer values with unit-width buckets [0, size). */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 16)
        : counts(buckets, 0)
    {}

    void
    sample(std::size_t value)
    {
        if (value >= counts.size())
            ++overflow;
        else
            ++counts[value];
        ++total;
    }

    std::uint64_t bucket(std::size_t idx) const { return counts.at(idx); }
    std::uint64_t overflowed() const { return overflow; }
    std::uint64_t samples() const { return total; }
    std::size_t buckets() const { return counts.size(); }

    /** Fraction of samples with value <= idx. */
    double cumulativeAt(std::size_t idx) const;

    void reset();

    /**
     * Fold another histogram's counts into this one (grows to the wider
     * bucket range). Pure addition, so merging per-worker histograms in
     * any order reproduces the serial result exactly.
     */
    void merge(const Histogram &other);

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
};

/**
 * A named bag of statistics owned by a simulation component. The group
 * stores formatted name → value pairs at dump time, so components can
 * register scalars lazily.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name) : name(std::move(group_name)) {}

    /** Record a scalar for dumping. */
    void record(const std::string &stat, double value);

    /**
     * Fold another group's scalars into this one by summation (absent
     * keys are adopted). Lets the experiment engine keep one StatGroup
     * per worker and combine them after the batch barrier.
     */
    void merge(const StatGroup &other);

    /** Print "group.stat value" lines. */
    void dump(std::ostream &os) const;

    const std::string &groupName() const { return name; }
    const std::map<std::string, double> &values() const { return scalars; }

  private:
    std::string name;
    std::map<std::string, double> scalars;
};

} // namespace nvck

#endif // NVCK_COMMON_STATS_HH
