#include "threadpool.hh"

#include <cstdlib>
#include <string>

#include "common/env.hh"

namespace nvck {

namespace {

/** Set while a thread is executing batch chunks; nested parallelFor
 *  calls from such a thread run inline to avoid deadlocking on the
 *  batch-serialization lock. */
thread_local bool inside_batch = false;

} // namespace

unsigned
ThreadPool::defaultJobCount()
{
    // Strict parse: a malformed NVCK_JOBS aborts with a one-line error
    // instead of silently running at the hardware default.
    if (const auto jobs = envPositive("NVCK_JOBS", 1024))
        return static_cast<unsigned>(*jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobCount();
    slots.reserve(jobs);
    for (unsigned s = 0; s < jobs; ++s)
        slots.push_back(std::make_unique<Slot>());
    // Slot 0 belongs to the submitting thread.
    threads.reserve(jobs - 1);
    for (unsigned s = 1; s < jobs; ++s)
        threads.emplace_back([this, s] { workerLoop(s); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    wake.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::workerLoop(unsigned slot)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu);
            wake.wait(lk, [&] { return stopping || epoch != seen; });
            if (stopping)
                return;
            seen = epoch;
        }
        runSlot(slot);
    }
}

bool
ThreadPool::popChunk(unsigned slot, Chunk &out)
{
    // Own deque first (front), then steal from the back of the others.
    {
        Slot &own = *slots[slot];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.queue.empty()) {
            out = own.queue.front();
            own.queue.pop_front();
            return true;
        }
    }
    for (std::size_t i = 1; i < slots.size(); ++i) {
        Slot &victim = *slots[(slot + i) % slots.size()];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.queue.empty()) {
            out = victim.queue.back();
            victim.queue.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::runSlot(unsigned slot)
{
    inside_batch = true;
    Chunk c;
    while (popChunk(slot, c)) {
        // `body` is written before any chunk is enqueued and the batch
        // is drained before the next one starts, so a successful pop
        // happens-after the pointer store (via the deque mutexes).
        const auto *fn = body;
        for (std::size_t i = c.begin; i < c.end; ++i)
            (*fn)(i);
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lk(mu);
            done.notify_all();
        }
    }
    inside_batch = false;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (slots.size() <= 1 || count == 1 || inside_batch) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMu);

    // Chunk for stealable granularity: ~4 chunks per worker keeps the
    // steal rate low while still smoothing imbalance. Chunking never
    // affects results — each index writes only its own slot.
    const std::size_t target = slots.size() * 4;
    const std::size_t chunk_size = count / target ? count / target : 1;
    const std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
    // Publish the batch state before any chunk becomes visible: a
    // straggler worker still scanning deques from the previous epoch
    // may pop (and finish) a chunk the moment it is enqueued.
    body = &fn;
    pending.store(num_chunks, std::memory_order_release);
    for (std::size_t begin = 0, s = 0; begin < count; ++s) {
        const std::size_t end =
            begin + chunk_size < count ? begin + chunk_size : count;
        Slot &slot = *slots[s % slots.size()];
        std::lock_guard<std::mutex> lk(slot.mu);
        slot.queue.push_back(Chunk{begin, end});
        begin = end;
    }

    {
        std::lock_guard<std::mutex> lk(mu);
        ++epoch;
    }
    wake.notify_all();

    // The submitter works the batch too (slot 0), then waits for any
    // chunk still in flight on a worker.
    runSlot(0);
    std::unique_lock<std::mutex> lk(mu);
    done.wait(lk, [&] {
        return pending.load(std::memory_order_acquire) == 0;
    });
}

} // namespace nvck
