/**
 * @file
 * Minimal logging and error-termination helpers in the gem5 spirit:
 * panic() for internal invariant violations (a bug in this library),
 * fatal() for unrecoverable user/configuration errors, and warn()/inform()
 * for status messages.
 */

#ifndef NVCK_COMMON_LOG_HH
#define NVCK_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace nvck {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Emit a formatted message; terminates the process for Fatal/Panic. */
[[noreturn]] void logAndAbort(LogLevel level, const std::string &msg,
                              const char *file, int line);
void logMessage(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string via ostream insertion. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::logAndAbort(LogLevel::Panic,
                        detail::concat(std::forward<Args>(args)...), file,
                        line);
}

/** Report an unrecoverable user error and exit. */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::logAndAbort(LogLevel::Fatal,
                        detail::concat(std::forward<Args>(args)...), file,
                        line);
}

/** Emit a non-fatal warning. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage(LogLevel::Inform,
                       detail::concat(std::forward<Args>(args)...));
}

} // namespace nvck

/** Abort on a library bug; use for conditions that should never happen. */
#define NVCK_PANIC(...) ::nvck::panic(__FILE__, __LINE__, __VA_ARGS__)

/** Exit on an unrecoverable user/configuration error. */
#define NVCK_FATAL(...) ::nvck::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Panic unless @p cond holds. */
#define NVCK_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::nvck::panic(__FILE__, __LINE__, "assertion failed: " #cond " ",\
                          ##__VA_ARGS__);                                    \
        }                                                                    \
    } while (0)

#endif // NVCK_COMMON_LOG_HH
