/**
 * @file
 * Fundamental scalar types shared across the nvchipkill libraries.
 */

#ifndef NVCK_COMMON_TYPES_HH
#define NVCK_COMMON_TYPES_HH

#include <cstdint>

namespace nvck {

/** Physical byte address within the simulated memory system. */
using Addr = std::uint64_t;

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Processor-core clock cycles. */
using Cycle = std::uint64_t;

/** One tick per picosecond. */
constexpr Tick ticksPerNs = 1000;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * ticksPerNs);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / ticksPerNs;
}

/** Size of one memory block (cache line) in bytes. */
constexpr unsigned blockBytes = 64;

/** Bytes contributed by each chip to an accessed memory block. */
constexpr unsigned chipBeatBytes = 8;

} // namespace nvck

#endif // NVCK_COMMON_TYPES_HH
