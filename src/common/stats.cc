#include "stats.hh"

#include <iomanip>

namespace nvck {

double
Histogram::cumulativeAt(std::size_t idx) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t i = 0; i <= idx && i < counts.size(); ++i)
        below += counts[i];
    return static_cast<double>(below) / static_cast<double>(total);
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    overflow = 0;
    total = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts.size() > counts.size())
        counts.resize(other.counts.size(), 0);
    for (std::size_t i = 0; i < other.counts.size(); ++i)
        counts[i] += other.counts[i];
    overflow += other.overflow;
    total += other.total;
}

void
StatGroup::record(const std::string &stat, double value)
{
    scalars[stat] = value;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[stat, value] : other.scalars)
        scalars[stat] += value;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, value] : scalars) {
        os << name << '.' << stat << ' ' << std::setprecision(8) << value
           << '\n';
    }
}

} // namespace nvck
