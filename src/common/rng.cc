#include "rng.hh"

#include <cmath>

#include "log.hh"

namespace nvck {

std::uint64_t
Rng::geometric(double p)
{
    NVCK_ASSERT(p > 0.0 && p <= 1.0, "geometric probability out of range");
    if (p >= 1.0)
        return 1;
    // Inverse-CDF sampling: ceil(ln(U) / ln(1-p)).
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double trials = std::ceil(std::log(u) / std::log1p(-p));
    if (trials < 1.0)
        trials = 1.0;
    return static_cast<std::uint64_t>(trials);
}

std::uint64_t
Rng::binomial(std::uint64_t n, double p)
{
    NVCK_ASSERT(p >= 0.0 && p <= 1.0, "binomial probability out of range");
    if (n == 0 || p == 0.0)
        return 0;
    if (p == 1.0)
        return n;

    const double mean = static_cast<double>(n) * p;
    if (mean < 32.0) {
        // Sample via geometric skips: count successes by jumping between
        // them. Expected work is O(np), independent of n.
        std::uint64_t successes = 0;
        std::uint64_t pos = 0;
        for (;;) {
            pos += geometric(p);
            if (pos > n)
                break;
            ++successes;
        }
        return successes;
    }

    // Gaussian approximation with continuity correction, clamped to [0, n].
    const double sd = std::sqrt(mean * (1.0 - p));
    // Box-Muller transform.
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double sample = std::round(mean + sd * z);
    if (sample < 0.0)
        sample = 0.0;
    if (sample > static_cast<double>(n))
        sample = static_cast<double>(n);
    return static_cast<std::uint64_t>(sample);
}

} // namespace nvck
