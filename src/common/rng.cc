#include "rng.hh"

#include <cmath>

#include "log.hh"

namespace nvck {

void
Rng::jump()
{
    // Official xoshiro256** jump polynomial (Blackman & Vigna):
    // equivalent to 2^128 next() calls.
    static const std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (1ull << b)) {
                s0 ^= state[0];
                s1 ^= state[1];
                s2 ^= state[2];
                s3 ^= state[3];
            }
            next();
        }
    }
    state[0] = s0;
    state[1] = s1;
    state[2] = s2;
    state[3] = s3;
}

std::uint64_t
Rng::geometric(double p)
{
    NVCK_ASSERT(p > 0.0 && p <= 1.0, "geometric probability out of range");
    if (p >= 1.0)
        return 1;
    // Inverse-CDF sampling: ceil(ln(U) / ln(1-p)).
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double trials = std::ceil(std::log(u) / std::log1p(-p));
    if (trials < 1.0)
        trials = 1.0;
    return static_cast<std::uint64_t>(trials);
}

std::uint64_t
Rng::binomial(std::uint64_t n, double p)
{
    NVCK_ASSERT(p >= 0.0 && p <= 1.0, "binomial probability out of range");
    if (n == 0 || p == 0.0)
        return 0;
    if (p == 1.0)
        return n;

    const double mean = static_cast<double>(n) * p;
    if (mean < 32.0) {
        // Sample via geometric skips: count successes by jumping between
        // them. Expected work is O(np), independent of n.
        std::uint64_t successes = 0;
        std::uint64_t pos = 0;
        for (;;) {
            pos += geometric(p);
            if (pos > n)
                break;
            ++successes;
        }
        return successes;
    }

    // Gaussian approximation with continuity correction, clamped to [0, n].
    const double sd = std::sqrt(mean * (1.0 - p));
    // Box-Muller transform.
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double sample = std::round(mean + sd * z);
    if (sample < 0.0)
        sample = 0.0;
    if (sample > static_cast<double>(n))
        sample = static_cast<double>(n);
    return static_cast<std::uint64_t>(sample);
}

} // namespace nvck
