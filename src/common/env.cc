#include "env.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nvck {

std::optional<std::uint64_t>
parsePositive(const char *text, std::uint64_t max)
{
    if (text == nullptr || *text == '\0')
        return std::nullopt;
    // Reject shapes strtoull would accept: signs and leading spaces.
    if (text[0] == '-' || text[0] == '+' || std::isspace(
            static_cast<unsigned char>(text[0])))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    if (v == 0 || v > max)
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<std::size_t>
parseChoice(const char *text,
            std::initializer_list<const char *> choices)
{
    if (text == nullptr)
        return std::nullopt;
    std::size_t idx = 0;
    for (const char *choice : choices) {
        if (std::strcmp(text, choice) == 0)
            return idx;
        ++idx;
    }
    return std::nullopt;
}

std::optional<std::uint64_t>
envPositive(const char *name, std::uint64_t max)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    if (const auto v = parsePositive(text, max))
        return v;
    std::fprintf(stderr,
                 "nvck: %s: expected a positive integer <= %llu, got "
                 "'%s'\n",
                 name, static_cast<unsigned long long>(max), text);
    std::exit(2);
}

std::optional<std::size_t>
envChoice(const char *name,
          std::initializer_list<const char *> choices)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    if (const auto idx = parseChoice(text, choices))
        return idx;
    std::fprintf(stderr, "nvck: %s: expected one of {", name);
    bool first = true;
    for (const char *choice : choices) {
        std::fprintf(stderr, "%s%s", first ? "" : ", ", choice);
        first = false;
    }
    std::fprintf(stderr, "}, got '%s'\n", text);
    std::exit(2);
}

} // namespace nvck
