/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) used by
 * workload generators and Monte-Carlo fault injection. Deterministic,
 * seed-reproducible streams are required so that experiments are exactly
 * repeatable across runs and platforms.
 */

#ifndef NVCK_COMMON_RNG_HH
#define NVCK_COMMON_RNG_HH

#include <cstdint>

namespace nvck {

/**
 * xoshiro256** generator (Blackman & Vigna). Fast, 256-bit state, and
 * statistically strong enough for simulation purposes.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : seed0(seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /**
     * Derive the reproducible, statistically independent substream for
     * @p index. The subseed is a pure function of (construction seed,
     * index) — it ignores how far this generator has advanced — so
     * trial i gets the same stream whether trials run serially or
     * scattered across worker threads. Used by the parallel experiment
     * engine to give every (baseSeed, trialIndex) its own generator.
     */
    Rng
    substream(std::uint64_t index) const
    {
        return Rng(substreamSeed(seed0, index));
    }

    /** The (seed, index) -> subseed derivation behind substream(). */
    static std::uint64_t
    substreamSeed(std::uint64_t seed, std::uint64_t index)
    {
        // Golden-ratio-spaced SplitMix64 positions, finalized twice so
        // nearby indices land in unrelated states. The +1 keeps
        // substream(0) distinct from the parent stream itself.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
        z = mix64(z);
        return mix64(z ^ 0xd1b54a32d192ed03ull);
    }

    /**
     * Advance 2^128 steps (the xoshiro256** jump polynomial): repeated
     * jumps carve one seed into provably non-overlapping blocks of
     * 2^128 draws each.
     */
    void jump();

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric inter-arrival sample: number of independent Bernoulli(p)
     * trials until the first success (>= 1). Used to skip ahead when
     * injecting rare errors into long bit streams.
     */
    std::uint64_t
    geometric(double p);

    /** Binomial(n, p) sample; exact for small n, normal approx for large. */
    std::uint64_t binomial(std::uint64_t n, double p);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** SplitMix64 finalizer (Steele, Lea & Flood). */
    static std::uint64_t
    mix64(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** One SplitMix64 step: advance @p x and return the next output. */
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        return mix64(x);
    }

    std::uint64_t seed0;
    std::uint64_t state[4];
};

} // namespace nvck

#endif // NVCK_COMMON_RNG_HH
