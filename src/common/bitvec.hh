/**
 * @file
 * A fixed-size bit vector packed into 64-bit words, used to hold ECC
 * codewords (data + check bits) for the bit-accurate codec pipeline.
 */

#ifndef NVCK_COMMON_BITVEC_HH
#define NVCK_COMMON_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nvck {

class Rng;

/**
 * Packed vector of bits with the word-level operations the ECC codecs
 * need: XOR, shifts within a word span, popcount, and random error
 * injection.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct an all-zero vector of @p nbits bits. */
    explicit BitVec(std::size_t nbits)
        : numBits(nbits), words((nbits + 63) / 64, 0)
    {}

    /** Number of bits held. */
    std::size_t size() const { return numBits; }

    /** Read bit @p idx. */
    bool
    get(std::size_t idx) const
    {
        return (words[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Write bit @p idx. */
    void
    set(std::size_t idx, bool value)
    {
        const std::uint64_t mask = 1ull << (idx & 63);
        if (value)
            words[idx >> 6] |= mask;
        else
            words[idx >> 6] &= ~mask;
    }

    /** Invert bit @p idx. */
    void flip(std::size_t idx) { words[idx >> 6] ^= 1ull << (idx & 63); }

    /** Set all bits to zero. */
    void clear();

    /** Number of one bits. */
    std::size_t popcount() const;

    /** XOR another vector of identical length into this one. */
    BitVec &operator^=(const BitVec &other);

    bool operator==(const BitVec &other) const;

    /** Hamming distance to @p other (must have identical length). */
    std::size_t distance(const BitVec &other) const;

    /** Fill with uniformly random bits. */
    void randomize(Rng &rng);

    /**
     * Flip each bit independently with probability @p ber; returns the
     * number of bits flipped. Uses geometric skipping so the cost is
     * proportional to the expected number of errors, not the length.
     */
    std::size_t injectErrors(Rng &rng, double ber);

    /** Flip exactly @p count distinct random bit positions. */
    void injectExactErrors(Rng &rng, std::size_t count);

    /** Raw word access for fast copies. */
    const std::vector<std::uint64_t> &raw() const { return words; }
    std::vector<std::uint64_t> &raw() { return words; }

    /** Read @p width (<=64) bits starting at bit @p idx, LSB first. */
    std::uint64_t getBits(std::size_t idx, unsigned width) const;

    /** Write the low @p width bits of @p value at bit @p idx. */
    void setBits(std::size_t idx, unsigned width, std::uint64_t value);

    /**
     * Copy @p count bits from @p src (starting at @p src_idx) into this
     * vector starting at @p dst_idx, moving up to 64 bits per step.
     * Ranges must lie within the respective vectors; the vectors may be
     * the same object only when the ranges do not overlap.
     */
    void copyRange(std::size_t dst_idx, const BitVec &src,
                   std::size_t src_idx, std::size_t count);

    /**
     * Pack @p nbytes bytes (LSB-first, byte b landing at bits
     * [idx + 8b, idx + 8b + 8)) starting at bit @p idx.
     */
    void setBytes(std::size_t idx, const std::uint8_t *bytes,
                  std::size_t nbytes);

    /** Unpack @p nbytes bytes starting at bit @p idx into @p bytes. */
    void getBytes(std::size_t idx, std::uint8_t *bytes,
                  std::size_t nbytes) const;

  private:
    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace nvck

#endif // NVCK_COMMON_BITVEC_HH
