#include "event.hh"

#include "common/log.hh"

namespace nvck {

void
EventQueue::schedule(Tick when, std::function<void()> action)
{
    NVCK_ASSERT(when >= currentTick, "scheduling into the past: ", when,
                " < ", currentTick);
    events.push(Entry{when, nextSeq++, std::move(action)});
}

void
EventQueue::run()
{
    halted = false;
    while (!events.empty() && !halted) {
        // priority_queue::top returns const ref; move the action out via
        // a copy of the entry before popping.
        Entry entry = events.top();
        events.pop();
        currentTick = entry.when;
        entry.action();
    }
}

void
EventQueue::runUntil(Tick limit)
{
    halted = false;
    while (!events.empty() && !halted && events.top().when <= limit) {
        Entry entry = events.top();
        events.pop();
        currentTick = entry.when;
        entry.action();
    }
    // A halted run stops at the cutting event's timestamp; advancing
    // to the limit would skip time the dead machine never lived.
    if (!halted && currentTick < limit)
        currentTick = limit;
}

} // namespace nvck
