#include "event.hh"

#include <algorithm>
#include <atomic>
#include <bit>

#include "common/env.hh"
#include "common/log.hh"

namespace nvck {

namespace {

// Process-wide roll-up, merged by ~EventQueue. Plain relaxed atomics:
// per-worker queues retire at arbitrary times and sums/maxima are
// order-insensitive.
std::atomic<std::uint64_t> g_queues{0};
std::atomic<std::uint64_t> g_executed{0};
std::atomic<std::uint64_t> g_promotions{0};
std::atomic<std::uint64_t> g_maxPeak{0};
std::atomic<std::uint64_t> g_maxPool{0};

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t value)
{
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

const char *
eventKernelName(EventKernel kernel)
{
    return kernel == EventKernel::Calendar ? "calendar" : "heap";
}

EventKernel
defaultEventKernel()
{
    static const EventKernel chosen = [] {
        auto idx = envChoice("NVCK_EVENT_QUEUE", {"calendar", "heap"});
        if (idx && *idx == 1)
            return EventKernel::Heap;
        return EventKernel::Calendar;
    }();
    return chosen;
}

EventKernelTotals
eventKernelTotals()
{
    EventKernelTotals t;
    t.queues = g_queues.load(std::memory_order_relaxed);
    t.executed = g_executed.load(std::memory_order_relaxed);
    t.overflowPromotions = g_promotions.load(std::memory_order_relaxed);
    t.maxPeakPending = g_maxPeak.load(std::memory_order_relaxed);
    t.maxPoolHighWater = g_maxPool.load(std::memory_order_relaxed);
    return t;
}

EventQueue::EventQueue(EventKernel kernel) : impl(kernel)
{
    if (impl == EventKernel::Calendar) {
        buckets.resize(ringSize);
        bitsL0.assign(ringSize / 64, 0);
        bitsL1.assign(bitsL0.size() / 64, 0);
    }
}

EventQueue::~EventQueue()
{
    g_queues.fetch_add(1, std::memory_order_relaxed);
    g_executed.fetch_add(statistics.executed.value(),
                         std::memory_order_relaxed);
    g_promotions.fetch_add(statistics.overflowPromotions.value(),
                           std::memory_order_relaxed);
    atomicMax(g_maxPeak, statistics.peakPending);
    atomicMax(g_maxPool, statistics.poolHighWater);
}

EventQueue::Node &
EventQueue::node(std::uint32_t idx) const
{
    return chunks[idx >> chunkShift][idx & ((1u << chunkShift) - 1)];
}

void
EventQueue::checkNotPast(Tick when) const
{
    NVCK_ASSERT(when >= currentTick,
                "EventQueue::schedule into the past: event at tick ", when,
                " but now() is ", currentTick,
                " -- completion callbacks must schedule at or after the "
                "tick they run at");
}

void
EventQueue::bumpPending()
{
    ++sizeCount;
    if (sizeCount > statistics.peakPending)
        statistics.peakPending = sizeCount;
}

std::uint32_t
EventQueue::poolAlloc()
{
    if (freeHead != nil) {
        const std::uint32_t idx = freeHead;
        freeHead = node(idx).next;
        return idx;
    }
    const std::uint32_t idx = allocated++;
    if ((idx >> chunkShift) == chunks.size())
        chunks.push_back(
            std::make_unique<Node[]>(std::size_t{1} << chunkShift));
    node(idx).self = idx;
    statistics.poolHighWater = allocated;
    return idx;
}

EventQueue::Node &
EventQueue::acquireNode(Tick when)
{
    checkNotPast(when);
    Node &n = node(poolAlloc());
    n.when = when;
    n.seq = nextSeq++;
    n.next = nil;
    n.recurring = false;
    n.queued = true;
    bumpPending();
    return n;
}

EventQueue::Node &
EventQueue::allocRecurring()
{
    Node &n = node(poolAlloc());
    n.next = nil;
    n.recurring = true;
    n.queued = false;
    return n;
}

void
EventQueue::releaseNode(Node &n)
{
    n.action.reset();
    n.next = freeHead;
    freeHead = n.self;
}

void
EventQueue::rearm(Recurring ev, Tick when)
{
    NVCK_ASSERT(ev.valid(), "rearm of an invalid recurring event");
    Node &n = node(ev.idx);
    NVCK_ASSERT(n.recurring && !n.queued,
                "rearm of a non-recurring or already-pending event");
    checkNotPast(when);
    n.when = when;
    n.seq = nextSeq++;
    n.next = nil;
    n.queued = true;
    bumpPending();
    if (impl == EventKernel::Heap) {
        // The legacy kernel has no node-aware pop path; wrap the pooled
        // action in a thin trampoline (fits std::function's SSO).
        Node *np = &n;
        legacy.push(LegacyEntry{n.when, n.seq, [np] {
                                    np->queued = false;
                                    np->action();
                                }});
        return;
    }
    insertCalendar(n);
}

void
EventQueue::markBucket(std::uint32_t idx)
{
    bitsL0[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    bitsL1[idx >> 12] |= std::uint64_t{1} << ((idx >> 6) & 63);
    bitsL2 |= std::uint64_t{1} << (idx >> 12);
}

void
EventQueue::clearBucket(std::uint32_t idx)
{
    bitsL0[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    if (bitsL0[idx >> 6] == 0) {
        bitsL1[idx >> 12] &= ~(std::uint64_t{1} << ((idx >> 6) & 63));
        if (bitsL1[idx >> 12] == 0)
            bitsL2 &= ~(std::uint64_t{1} << (idx >> 12));
    }
}

std::uint32_t
EventQueue::findSetFrom(std::uint32_t pos) const
{
    // Two-segment search over the logical window: [pos, ringSize) is the
    // near half, [0, pos) holds the wrapped-around far half. Each
    // segment resolves through the three bitmap levels in O(1) word ops.
    auto firstInSegment = [this](std::uint32_t from,
                                 std::uint32_t to) -> std::uint32_t {
        if (from >= to)
            return nil;
        const std::uint32_t w0 = from >> 6;
        std::uint64_t word = bitsL0[w0] & (~std::uint64_t{0} << (from & 63));
        std::uint32_t bit;
        if (word) {
            bit = (w0 << 6) +
                  static_cast<std::uint32_t>(std::countr_zero(word));
            return bit < to ? bit : nil;
        }
        // No hit in the first L0 word; climb to L1 for words > w0.
        const std::uint32_t next = w0 + 1;
        std::uint32_t l0w = nil;
        if ((next >> 6) < bitsL1.size()) {
            std::uint64_t l1word =
                bitsL1[next >> 6] & (~std::uint64_t{0} << (next & 63));
            if (l1word) {
                l0w = ((next >> 6) << 6) +
                      static_cast<std::uint32_t>(std::countr_zero(l1word));
            } else {
                const std::uint32_t l1next = (next >> 6) + 1;
                std::uint64_t l2word =
                    l1next >= 64
                        ? 0
                        : bitsL2 & (~std::uint64_t{0} << l1next);
                if (l2word) {
                    const std::uint32_t l1w = static_cast<std::uint32_t>(
                        std::countr_zero(l2word));
                    l0w = (l1w << 6) +
                          static_cast<std::uint32_t>(
                              std::countr_zero(bitsL1[l1w]));
                }
            }
        }
        if (l0w == nil)
            return nil;
        bit = (l0w << 6) +
              static_cast<std::uint32_t>(std::countr_zero(bitsL0[l0w]));
        return bit < to ? bit : nil;
    };

    std::uint32_t hit = firstInSegment(pos, ringSize);
    if (hit != nil)
        return hit;
    return firstInSegment(0, pos);
}

void
EventQueue::bucketPush(Node &n)
{
    const std::uint32_t idx =
        static_cast<std::uint32_t>(n.when) & ringMask;
    Bucket &b = buckets[idx];
    n.next = nil;
    if (b.head == nil) {
        b.head = b.tail = n.self;
        markBucket(idx);
    } else {
        node(b.tail).next = n.self;
        b.tail = n.self;
    }
    ++ringCount;
}

std::uint32_t
EventQueue::bucketPop(std::uint32_t idx)
{
    Bucket &b = buckets[idx];
    const std::uint32_t head = b.head;
    b.head = node(head).next;
    if (b.head == nil) {
        b.tail = nil;
        clearBucket(idx);
    }
    --ringCount;
    return head;
}

void
EventQueue::overflowPush(std::uint32_t idx)
{
    overflow.push_back(idx);
    std::push_heap(overflow.begin(), overflow.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                       const Node &na = node(a);
                       const Node &nb = node(b);
                       if (na.when != nb.when)
                           return na.when > nb.when;
                       return na.seq > nb.seq;
                   });
}

std::uint32_t
EventQueue::overflowPopMin()
{
    std::pop_heap(overflow.begin(), overflow.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      const Node &na = node(a);
                      const Node &nb = node(b);
                      if (na.when != nb.when)
                          return na.when > nb.when;
                      return na.seq > nb.seq;
                  });
    const std::uint32_t idx = overflow.back();
    overflow.pop_back();
    return idx;
}

void
EventQueue::insertCalendar(Node &n)
{
    if (n.when - currentTick < ringSpan)
        bucketPush(n);
    else
        overflowPush(n.self);
}

void
EventQueue::promote()
{
    // Popping the overflow heap yields (when, seq) order, so each
    // bucket receives its promoted events already FIFO-sorted — and any
    // later direct schedule at the same tick necessarily carries a
    // larger seq (the window covers the tick from this point on).
    while (!overflow.empty() &&
           node(overflow.front()).when - currentTick < ringSpan) {
        const std::uint32_t idx = overflowPopMin();
        bucketPush(node(idx));
        statistics.overflowPromotions.inc();
    }
}

Tick
EventQueue::nextWhen() const
{
    if (ringCount > 0) {
        const std::uint32_t pos =
            static_cast<std::uint32_t>(currentTick) & ringMask;
        const std::uint32_t idx = findSetFrom(pos);
        return node(buckets[idx].head).when;
    }
    return node(overflow.front()).when;
}

void
EventQueue::executeNext()
{
    if (ringCount == 0) {
        // Every pending event sits beyond the window: jump time to the
        // overflow minimum, re-cover the window, and fall through to
        // the normal bucket pop.
        currentTick = node(overflow.front()).when;
        promote();
    }
    const std::uint32_t pos =
        static_cast<std::uint32_t>(currentTick) & ringMask;
    const std::uint32_t bucketIdx = findSetFrom(pos);
    const std::uint32_t idx = bucketPop(bucketIdx);
    Node &n = node(idx);
    if (n.when != currentTick) {
        currentTick = n.when;
        // The window advanced with time: promote before running the
        // action, so anything it schedules inside the new window can
        // never leapfrog an earlier-seq overflow event at the same tick.
        promote();
    }
    --sizeCount;
    statistics.executed.inc();
    n.queued = false;
    if (n.recurring) {
        n.action();
    } else {
        n.action();
        releaseNode(n);
    }
}

void
EventQueue::run()
{
    halted = false;
    if (impl == EventKernel::Heap) {
        while (!legacy.empty() && !halted) {
            // priority_queue::top returns const ref; move the action
            // out via a copy of the entry before popping.
            LegacyEntry entry = legacy.top();
            legacy.pop();
            --sizeCount;
            currentTick = entry.when;
            statistics.executed.inc();
            entry.action();
        }
        return;
    }
    while (sizeCount > 0 && !halted)
        executeNext();
}

void
EventQueue::runUntil(Tick limit)
{
    halted = false;
    if (impl == EventKernel::Heap) {
        while (!legacy.empty() && !halted && legacy.top().when <= limit) {
            LegacyEntry entry = legacy.top();
            legacy.pop();
            --sizeCount;
            currentTick = entry.when;
            statistics.executed.inc();
            entry.action();
        }
        if (!halted && currentTick < limit)
            currentTick = limit;
        return;
    }
    while (sizeCount > 0 && !halted && nextWhen() <= limit)
        executeNext();
    // A halted run stops at the cutting event's timestamp; advancing
    // to the limit would skip time the dead machine never lived.
    if (!halted && currentTick < limit) {
        currentTick = limit;
        // The idle advance moves the window too: promote now, or a
        // direct schedule after this runUntil could land in a bucket
        // ahead of an earlier-seq overflow event at the same tick.
        promote();
    }
}

} // namespace nvck
