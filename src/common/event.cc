#include "event.hh"

#include "common/log.hh"

namespace nvck {

void
EventQueue::schedule(Tick when, std::function<void()> action)
{
    NVCK_ASSERT(when >= currentTick, "scheduling into the past: ", when,
                " < ", currentTick);
    events.push(Entry{when, nextSeq++, std::move(action)});
}

void
EventQueue::run()
{
    while (!events.empty()) {
        // priority_queue::top returns const ref; move the action out via
        // a copy of the entry before popping.
        Entry entry = events.top();
        events.pop();
        currentTick = entry.when;
        entry.action();
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.top().when <= limit) {
        Entry entry = events.top();
        events.pop();
        currentTick = entry.when;
        entry.action();
    }
    if (currentTick < limit)
        currentTick = limit;
}

} // namespace nvck
