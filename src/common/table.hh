/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print
 * paper-figure reproductions as aligned rows/series.
 */

#ifndef NVCK_COMMON_TABLE_HH
#define NVCK_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace nvck {

/**
 * Collects rows of string cells and prints them with per-column
 * alignment. Numeric helpers format doubles compactly (fixed or
 * scientific as appropriate).
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> column_headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &text);

    /** Append a formatted numeric cell. @p digits = significant digits. */
    Table &cell(double value, int digits = 4);

    /** Append an integer cell. */
    Table &cell(std::uint64_t value);

    /** Append a percentage cell, e.g. 0.27 -> "27.0%". */
    Table &pct(double fraction, int decimals = 1);

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Format a double compactly (helper also used standalone). */
    static std::string formatNumber(double value, int digits = 4);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace nvck

#endif // NVCK_COMMON_TABLE_HH
