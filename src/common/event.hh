/**
 * @file
 * Discrete-event simulation kernel: a time-ordered queue of callbacks.
 * All timing components (cores, caches, memory controller) schedule
 * work against one shared EventQueue; ties break in FIFO order so runs
 * are fully deterministic.
 */

#ifndef NVCK_COMMON_EVENT_HH
#define NVCK_COMMON_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace nvck {

/** The simulation event queue. */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Schedule @p action to run at absolute time @p when (>= now). */
    void schedule(Tick when, std::function<void()> action);

    /** Schedule @p action @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, std::function<void()> action)
    {
        schedule(currentTick + delay, std::move(action));
    }

    /** True when no events remain. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /** Execute events in order until the queue drains. */
    void run();

    /**
     * Execute events with timestamps <= @p limit; afterwards now() ==
     * limit (or later if an executed event scheduled past it and was
     * itself <= limit, which cannot happen for monotone schedules).
     */
    void runUntil(Tick limit);

    /**
     * Stop the current run()/runUntil() after the executing event
     * returns, leaving the remaining events queued and now() at the
     * halting event's timestamp. Used by crash injectors that cut
     * power from inside an event (a CrashHooks callback): the machine
     * dies mid-event, but the queue survives so the same system can be
     * driven again as the rebooted machine. A later run()/runUntil()
     * clears the flag and resumes normally.
     */
    void halt() { halted = true; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> action;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    bool halted = false;
};

} // namespace nvck

#endif // NVCK_COMMON_EVENT_HH
