/**
 * @file
 * Discrete-event simulation kernel: a time-ordered queue of callbacks.
 * All timing components (cores, caches, memory controller) schedule
 * work against one shared EventQueue; ties break in FIFO order so runs
 * are fully deterministic.
 *
 * Two interchangeable kernels produce the exact same execution order:
 *
 *  - Calendar (default): a two-tier calendar queue. The near-future
 *    tier is a power-of-two ring of per-tick FIFO buckets covering
 *    ringSpan ticks ahead of now() — every short-delay event (tCAS,
 *    tBurst, retry backoffs, the cores' step quantum) schedules and
 *    pops in O(1) with no comparator churn. Events beyond the window
 *    wait in a sorted overflow tier (a small binary heap) and are
 *    promoted into buckets whenever now() advances, before anything at
 *    their tick can run or be scheduled. Actions live in pooled event
 *    nodes as small-buffer InlineActions, so steady-state scheduling
 *    performs zero heap allocations.
 *  - Heap (NVCK_EVENT_QUEUE=heap): the legacy kernel, kept verbatim as
 *    a differential baseline — one std::priority_queue of
 *    {Tick, seq, std::function} entries, an allocation per scheduled
 *    closure and O(log n) per push/pop.
 *
 * Determinism argument for the calendar tier: seq numbers increase
 * monotonically with schedule order. A bucket receives events either
 * by direct schedule (seq ascending over time) or by promotion, and
 * promotions happen in (when, seq) heap order at the instant the
 * window first covers their tick — before any direct schedule at that
 * tick is possible (an event is only eligible for direct placement
 * once its tick is inside the window, and every window advance
 * promotes first). Hence every bucket FIFO is seq-sorted and the drain
 * order equals the heap kernel's (when, seq) order exactly.
 */

#ifndef NVCK_COMMON_EVENT_HH
#define NVCK_COMMON_EVENT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace nvck {

/** Which event-queue implementation to run. */
enum class EventKernel
{
    Calendar, //!< pooled two-tier calendar queue (default)
    Heap,     //!< legacy std::function binary heap
};

/** Human-readable kernel name ("calendar" / "heap"). */
const char *eventKernelName(EventKernel kernel);

/**
 * The process-wide default kernel: Calendar, unless the environment
 * variable NVCK_EVENT_QUEUE is set to "heap". Any other value is
 * rejected with a one-line error and exit(2) (common/env.hh). Read
 * once and cached.
 */
EventKernel defaultEventKernel();

/**
 * A non-allocating, small-buffer-optimized callable slot for event
 * actions. Capacity is a hard compile-time bound: captures that do not
 * fit are a build error, not a silent heap fallback — keep hot-path
 * captures to a couple of pointers, or route bulky state through a
 * pooled object (see System's issue slots) and capture the pointer.
 */
class InlineAction
{
  public:
    /** Capture budget: a std::function-sized callback plus a Tick. */
    static constexpr std::size_t capacity = 48;

    InlineAction() = default;
    ~InlineAction() { reset(); }
    InlineAction(const InlineAction &) = delete;
    InlineAction &operator=(const InlineAction &) = delete;

    /** Construct the callable in place (slot must be empty or reset). */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= capacity,
                      "InlineAction capture exceeds the 48-byte budget; "
                      "shrink it or capture a pooled-object pointer");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned captures unsupported");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event actions must be nothrow-movable");
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(fn));
        invokeFn = [](void *p) { (*static_cast<Fn *>(p))(); };
        dtorFn = std::is_trivially_destructible_v<Fn>
                     ? nullptr
                     : +[](void *p) { static_cast<Fn *>(p)->~Fn(); };
    }

    /** Invoke (slot must be armed). */
    void operator()() { invokeFn(buf); }

    bool armed() const { return invokeFn != nullptr; }

    /** Destroy the held callable (no-op when empty). */
    void
    reset()
    {
        if (dtorFn)
            dtorFn(buf);
        invokeFn = nullptr;
        dtorFn = nullptr;
    }

  private:
    alignas(std::max_align_t) unsigned char buf[capacity];
    void (*invokeFn)(void *) = nullptr;
    void (*dtorFn)(void *) = nullptr;
};

/** Per-queue observability counters (common/stats primitives). */
struct EventQueueStats
{
    Counter executed;            //!< events dispatched
    Counter overflowPromotions;  //!< events that took the overflow tier
    std::size_t peakPending = 0; //!< max simultaneously queued events
    /**
     * Pool nodes ever allocated (live + free-listed). Flat across a
     * steady-state workload == zero heap allocations per scheduled
     * event; the differential tests assert exactly that.
     */
    std::size_t poolHighWater = 0;
};

/**
 * Process-wide roll-up of every retired EventQueue's counters (sums,
 * and maxima for the peak/high-water gauges), dumped by the sweep
 * driver under --timing. Atomically updated in the queue destructor so
 * per-worker queues merge without ordering sensitivity.
 */
struct EventKernelTotals
{
    std::uint64_t queues = 0;
    std::uint64_t executed = 0;
    std::uint64_t overflowPromotions = 0;
    std::uint64_t maxPeakPending = 0;
    std::uint64_t maxPoolHighWater = 0;
};

/** Snapshot of the process-wide roll-up. */
EventKernelTotals eventKernelTotals();

/** The simulation event queue. */
class EventQueue
{
  public:
    /** Ticks the near-future ring covers ahead of now(). */
    static constexpr Tick ringSpan = Tick{1} << 17;

    explicit EventQueue(EventKernel kernel = defaultEventKernel());
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Which kernel this queue runs. */
    EventKernel kernel() const { return impl; }

    /**
     * Schedule @p action to run at absolute time @p when. Scheduling
     * into the past (when < now()) is a fatal error: a past event
     * would execute "before" already-executed ones and silently break
     * runUntil()'s monotonicity contract, so the queue dies with a
     * diagnostic instead.
     */
    template <typename F>
    void
    schedule(Tick when, F &&action)
    {
        if (impl == EventKernel::Heap) {
            checkNotPast(when);
            legacy.push(LegacyEntry{when, nextSeq++,
                                    std::function<void()>(
                                        std::forward<F>(action))});
            bumpPending();
            return;
        }
        Node &n = acquireNode(when);
        n.action.emplace(std::forward<F>(action));
        insertCalendar(n);
    }

    /** Schedule @p action @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&action)
    {
        schedule(currentTick + delay, std::forward<F>(action));
    }

    /**
     * A pre-armed event whose action outlives each execution: the
     * pooled node is kept (not recycled) when it fires, so rearm()
     * requeues the same capture with no per-occurrence allocation or
     * action re-construction. One instance may be pending at a time;
     * the natural shape is a self-rearming tick loop (Core::step).
     * The captured state must outlive the queue's last run, exactly
     * as for any scheduled [this] closure.
     */
    struct Recurring
    {
        std::uint32_t idx = UINT32_MAX;
        bool valid() const { return idx != UINT32_MAX; }
    };

    /** Create the recurring event (does not schedule it). */
    template <typename F>
    Recurring
    makeRecurring(F &&action)
    {
        Node &n = allocRecurring();
        n.action.emplace(std::forward<F>(action));
        return Recurring{n.self};
    }

    /** Queue @p ev at absolute time @p when (must not be pending). */
    void rearm(Recurring ev, Tick when);

    /** True when no events remain. */
    bool empty() const { return sizeCount == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return sizeCount; }

    /** Execute events in order until the queue drains. */
    void run();

    /**
     * Execute events with timestamps <= @p limit; afterwards now() ==
     * limit (or later if an executed event scheduled past it and was
     * itself <= limit, which cannot happen for monotone schedules).
     */
    void runUntil(Tick limit);

    /**
     * Stop the current run()/runUntil() after the executing event
     * returns, leaving the remaining events queued and now() at the
     * halting event's timestamp. Used by crash injectors that cut
     * power from inside an event (a CrashHooks callback): the machine
     * dies mid-event, but the queue survives so the same system can be
     * driven again as the rebooted machine. A later run()/runUntil()
     * clears the flag and resumes normally.
     */
    void halt() { halted = true; }

    const EventQueueStats &stats() const { return statistics; }

  private:
    /** One pooled event. Nodes never move: chunked stable storage. */
    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint32_t next = UINT32_MAX; //!< bucket FIFO / free list
        std::uint32_t self = 0;          //!< own pool index
        bool recurring = false;
        bool queued = false;
        InlineAction action;
    };

    /** Legacy heap-kernel entry (the pre-calendar representation). */
    struct LegacyEntry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> action;
    };
    struct LegacyLater
    {
        bool
        operator()(const LegacyEntry &a, const LegacyEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    struct Bucket
    {
        std::uint32_t head = UINT32_MAX;
        std::uint32_t tail = UINT32_MAX;
    };

    static constexpr std::uint32_t nil = UINT32_MAX;
    static constexpr std::uint32_t ringSize =
        static_cast<std::uint32_t>(ringSpan);
    static constexpr std::uint32_t ringMask = ringSize - 1;
    static constexpr std::uint32_t chunkShift = 8; //!< 256 nodes/chunk

    Node &node(std::uint32_t idx) const;
    std::uint32_t poolAlloc();
    Node &acquireNode(Tick when);
    Node &allocRecurring();
    void releaseNode(Node &n);
    void checkNotPast(Tick when) const;
    void bumpPending();

    void insertCalendar(Node &n);
    void bucketPush(Node &n);
    std::uint32_t bucketPop(std::uint32_t idx);
    void overflowPush(std::uint32_t idx);
    std::uint32_t overflowPopMin();
    /** Move every overflow event now inside the window into buckets. */
    void promote();
    /** Earliest pending tick (requires !empty()). */
    Tick nextWhen() const;
    /** First set bucket bit at logical position >= pos; nil if none. */
    std::uint32_t findSetFrom(std::uint32_t pos) const;
    void markBucket(std::uint32_t idx);
    void clearBucket(std::uint32_t idx);
    /** Pop + dispatch the earliest event (advances now()). */
    void executeNext();

    EventKernel impl;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::size_t sizeCount = 0;
    bool halted = false;
    EventQueueStats statistics;

    // Calendar tier.
    std::vector<Bucket> buckets;
    std::vector<std::uint64_t> bitsL0; //!< one bit per bucket
    std::vector<std::uint64_t> bitsL1; //!< one bit per L0 word
    std::uint64_t bitsL2 = 0;          //!< one bit per L1 word
    std::size_t ringCount = 0;
    std::vector<std::uint32_t> overflow; //!< (when,seq) min-heap
    // Node pool: chunked stable storage + an intrusive free list.
    std::vector<std::unique_ptr<Node[]>> chunks;
    std::uint32_t freeHead = nil;
    std::uint32_t allocated = 0;

    // Legacy heap tier.
    std::priority_queue<LegacyEntry, std::vector<LegacyEntry>,
                        LegacyLater>
        legacy;
};

} // namespace nvck

#endif // NVCK_COMMON_EVENT_HH
