#include "pm_rank.hh"

#include <algorithm>
#include <cstring>

#include "chipkill/scrub.hh"
#include "common/log.hh"
#include "ecc/crc.hh"

namespace nvck {

PmRank::PmRank(unsigned num_blocks, const ProposalParams &params)
    : geom(params),
      numBlocks(num_blocks),
      dataChips(params.dataChips),
      blocksPerVlew(params.blocksPerVlew()),
      vlewCodec(params.vlewDataBytes * 8, params.vlewT),
      rsCodec(params.rsDataBytes, params.rsCheckBytes),
      disabled(num_blocks, false),
      poisoned(num_blocks, false)
{
    NVCK_ASSERT(numBlocks % blocksPerVlew == 0,
                "block count must be a multiple of the VLEW span");
    numVlews = numBlocks / blocksPerVlew;

    const unsigned total_chips = dataChips + 1;
    chipStore.assign(total_chips, std::vector<std::uint8_t>(
                                      numBlocks * chipBeatBytes, 0));
    goldenStore = chipStore;
    stuckMask = chipStore;
    stuckVal = chipStore;
    codeStore.assign(total_chips,
                     std::vector<BitVec>(numVlews, BitVec(vlewCodec.r())));
    goldenCode = codeStore;
}

std::uint8_t *
PmRank::chipBeat(unsigned chip, unsigned block)
{
    return &chipStore[chip][block * chipBeatBytes];
}

const std::uint8_t *
PmRank::chipBeat(unsigned chip, unsigned block) const
{
    return &chipStore[chip][block * chipBeatBytes];
}

std::uint8_t *
PmRank::goldenBeat(unsigned chip, unsigned block)
{
    return &goldenStore[chip][block * chipBeatBytes];
}

const std::uint8_t *
PmRank::goldenBeat(unsigned chip, unsigned block) const
{
    return &goldenStore[chip][block * chipBeatBytes];
}

BitVec
PmRank::assembleVlew(unsigned chip, unsigned vlew) const
{
    const unsigned r = vlewCodec.r();
    BitVec cw(vlewCodec.n());
    cw.copyRange(0, codeStore[chip][vlew], 0, r);
    cw.setBytes(r, &chipStore[chip][vlew * geom.vlewDataBytes],
                geom.vlewDataBytes);
    return cw;
}

void
PmRank::storeVlew(unsigned chip, unsigned vlew, const BitVec &cw)
{
    const unsigned r = vlewCodec.r();
    codeStore[chip][vlew].copyRange(0, cw, 0, r);
    cw.getBytes(r, &chipStore[chip][vlew * geom.vlewDataBytes],
                geom.vlewDataBytes);
    enforceStuck(chip,
                 static_cast<std::uint64_t>(vlew) * geom.vlewDataBytes,
                 static_cast<std::uint64_t>(vlew + 1) *
                     geom.vlewDataBytes);
}

void
PmRank::enforceStuck(unsigned chip, std::uint64_t lo, std::uint64_t hi)
{
    const auto &mask = stuckMask[chip];
    const auto &val = stuckVal[chip];
    auto &stored = chipStore[chip];
    for (std::uint64_t i = lo; i < hi; ++i) {
        if (mask[i] != 0)
            stored[i] = static_cast<std::uint8_t>(
                (stored[i] & ~mask[i]) | (val[i] & mask[i]));
    }
}

void
PmRank::setStuckBit(unsigned chip, std::uint64_t byte_index,
                    unsigned bit, bool value)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    NVCK_ASSERT(byte_index < chipStore[chip].size(),
                "byte index out of range");
    NVCK_ASSERT(bit < 8, "bit out of range");
    stuckMask[chip][byte_index] |= static_cast<std::uint8_t>(1u << bit);
    if (value)
        stuckVal[chip][byte_index] |=
            static_cast<std::uint8_t>(1u << bit);
    else
        stuckVal[chip][byte_index] &=
            static_cast<std::uint8_t>(~(1u << bit));
    enforceStuck(chip, byte_index, byte_index + 1);
}

unsigned
PmRank::writeVerify(unsigned block, const std::uint8_t *new_data)
{
    writeBlock(block, new_data);
    // Re-read the raw stored beats right after the write [86]; any
    // mismatch against the intended value is a worn-out cell.
    unsigned bad_bits = 0;
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        const std::uint8_t *stored = chipBeat(chip, block);
        const std::uint8_t *intended = goldenBeat(chip, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b) {
            std::uint8_t diff =
                static_cast<std::uint8_t>(stored[b] ^ intended[b]);
            while (diff) {
                diff &= static_cast<std::uint8_t>(diff - 1);
                ++bad_bits;
            }
        }
    }
    return bad_bits;
}

std::vector<GfElem>
PmRank::assembleRsWord(unsigned block) const
{
    // Layout: symbols [0, r) = parity-chip beat (check symbols);
    // symbols [r + c*8, r + (c+1)*8) = data chip c's beat.
    std::vector<GfElem> word(rsCodec.n());
    const std::uint8_t *parity = chipBeat(dataChips, block);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        word[b] = parity[b];
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *beat = chipBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            word[geom.rsCheckBytes + c * chipBeatBytes + b] = beat[b];
    }
    return word;
}

void
PmRank::encodeGoldenRs(unsigned block)
{
    std::vector<GfElem> data(rsCodec.k());
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *beat = goldenBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            data[c * chipBeatBytes + b] = beat[b];
    }
    const auto cw = rsCodec.encode(data);
    std::uint8_t *parity = goldenBeat(dataChips, block);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        parity[b] = static_cast<std::uint8_t>(cw[b]);
}

void
PmRank::initialize(Rng &rng)
{
    // Random golden data across the data chips.
    for (unsigned c = 0; c < dataChips; ++c)
        for (auto &byte : goldenStore[c])
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    // Parity chip contents.
    for (unsigned block = 0; block < numBlocks; ++block)
        encodeGoldenRs(block);
    // VLEW code bits for every chip (including the parity chip).
    const unsigned r = vlewCodec.r();
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        for (unsigned v = 0; v < numVlews; ++v) {
            BitVec data(vlewCodec.k());
            data.setBytes(0, &goldenStore[chip][v * geom.vlewDataBytes],
                          geom.vlewDataBytes);
            const BitVec check = vlewCodec.encodeDelta(data);
            goldenCode[chip][v].copyRange(0, check, 0, r);
        }
    }
    chipStore = goldenStore;
    codeStore = goldenCode;
    std::fill(disabled.begin(), disabled.end(), false);
    std::fill(poisoned.begin(), poisoned.end(), false);
}

void
PmRank::transmit(std::uint8_t *beat)
{
    if (busBer <= 0.0)
        return;
    for (;;) {
        std::uint8_t wire[chipBeatBytes];
        std::memcpy(wire, beat, chipBeatBytes);
        bool corrupted = false;
        for (unsigned b = 0; b < chipBeatBytes; ++b) {
            for (unsigned bit = 0; bit < 8; ++bit) {
                if (busRng.chance(busBer)) {
                    wire[b] ^= static_cast<std::uint8_t>(1u << bit);
                    corrupted = true;
                }
            }
        }
        if (!corrupted)
            return;
        if (!busCrc) {
            // No Write-CRC: the corrupted sum is silently committed.
            std::memcpy(beat, wire, chipBeatBytes);
            return;
        }
        // DDR4-style Write-CRC detects the burst error; the chip
        // alerts the controller, which retransmits (footnote 4).
        const std::uint8_t sent_crc = crc8({beat, chipBeatBytes});
        if (!crc8Check({wire, chipBeatBytes}, sent_crc)) {
            ++busRetries;
            continue;
        }
        // A pattern the CRC cannot see (vanishingly rare): committed.
        std::memcpy(beat, wire, chipBeatBytes);
        return;
    }
}

void
PmRank::applyChipDelta(unsigned chip, unsigned block,
                       const std::uint8_t *delta8,
                       const std::uint8_t *intended8)
{
    if (intended8 == nullptr)
        intended8 = delta8;
    bool nonzero = false;
    for (unsigned b = 0; b < chipBeatBytes; ++b)
        nonzero = nonzero || delta8[b] != 0 || intended8[b] != 0;
    if (!nonzero)
        return;

    // The chip internally XORs the received sum into the stored data:
    // pre-existing cell errors propagate one-to-one without spreading.
    std::uint8_t *stored = chipBeat(chip, block);
    std::uint8_t *golden = goldenBeat(chip, block);
    for (unsigned b = 0; b < chipBeatBytes; ++b) {
        stored[b] ^= delta8[b];
        golden[b] ^= intended8[b];
    }
    enforceStuck(chip,
                 static_cast<std::uint64_t>(block) * chipBeatBytes,
                 static_cast<std::uint64_t>(block + 1) * chipBeatBytes);

    // Linear code-bit update: f(x) ^ f(x') = f(x ^ x') (Fig 11). The
    // chip encodes what it actually received; the golden code tracks
    // the intended value.
    const unsigned vlew = block / blocksPerVlew;
    const unsigned offset_bytes =
        (block % blocksPerVlew) * chipBeatBytes;
    BitVec delta_word(vlewCodec.k());
    delta_word.setBytes(offset_bytes * 8, delta8, chipBeatBytes);
    const BitVec code_delta = vlewCodec.encodeDelta(delta_word);
    codeStore[chip][vlew] ^= code_delta;
    if (intended8 == delta8) {
        goldenCode[chip][vlew] ^= code_delta;
    } else {
        BitVec intended_word(vlewCodec.k());
        intended_word.setBytes(offset_bytes * 8, intended8,
                               chipBeatBytes);
        goldenCode[chip][vlew] ^= vlewCodec.encodeDelta(intended_word);
    }
}

void
PmRank::setBusFaultModel(double ber, bool crc_enabled,
                         std::uint64_t seed)
{
    NVCK_ASSERT(ber >= 0.0 && ber < 1.0, "bus BER out of range");
    busBer = ber;
    busCrc = crc_enabled;
    busRng = Rng(seed);
}

void
PmRank::writeBlock(unsigned block, const std::uint8_t *new_data)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(!disabled[block], "write to disabled block");

    // Per-chip data deltas (new XOR old, the OMV supplying "old").
    std::uint8_t delta[8 * chipBeatBytes];
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *old_beat = goldenBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            delta[c * chipBeatBytes + b] =
                new_data[c * chipBeatBytes + b] ^ old_beat[b];
    }

    // RS is linear too: the parity chip receives the check bytes of
    // the delta as its own delta.
    std::vector<GfElem> delta_syms(rsCodec.k());
    for (unsigned i = 0; i < rsCodec.k(); ++i)
        delta_syms[i] = delta[i];
    const auto delta_cw = rsCodec.encode(delta_syms);
    std::uint8_t parity_delta[chipBeatBytes];
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        parity_delta[b] = static_cast<std::uint8_t>(delta_cw[b]);

    for (unsigned c = 0; c < dataChips; ++c) {
        std::uint8_t wire[chipBeatBytes];
        std::memcpy(wire, &delta[c * chipBeatBytes], chipBeatBytes);
        transmit(wire);
        applyChipDelta(c, block, wire, &delta[c * chipBeatBytes]);
    }
    std::uint8_t parity_wire[chipBeatBytes];
    std::memcpy(parity_wire, parity_delta, chipBeatBytes);
    transmit(parity_wire);
    applyChipDelta(dataChips, block, parity_wire, parity_delta);
    // A completed rewrite re-validates a block boot declared UE.
    poisoned[block] = false;
}

void
PmRank::applyTornWrite(unsigned block, const std::uint8_t *new_data,
                       std::uint16_t data_mask,
                       std::uint16_t code_mask)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(!disabled[block], "write to disabled block");
    const unsigned total_chips = dataChips + 1;
    const std::uint16_t all =
        static_cast<std::uint16_t>((1u << total_chips) - 1);
    NVCK_ASSERT((data_mask & ~all) == 0 && (code_mask & ~all) == 0,
                "chip mask out of range");
    NVCK_ASSERT((code_mask & ~data_mask) == 0,
                "code drained on a chip that never latched data");
    NVCK_ASSERT(code_mask == 0 || data_mask == all,
                "EUR drains only after the whole burst latched");

    // Per-chip deltas exactly as writeBlock() forms them: new XOR old
    // for the data chips, the RS check bytes of that delta for the
    // parity chip.
    std::uint8_t delta[9 * chipBeatBytes];
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *old_beat = goldenBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            delta[c * chipBeatBytes + b] =
                new_data[c * chipBeatBytes + b] ^ old_beat[b];
    }
    std::vector<GfElem> delta_syms(rsCodec.k());
    for (unsigned i = 0; i < rsCodec.k(); ++i)
        delta_syms[i] = delta[i];
    const auto delta_cw = rsCodec.encode(delta_syms);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        delta[dataChips * chipBeatBytes + b] =
            static_cast<std::uint8_t>(delta_cw[b]);

    const unsigned vlew = block / blocksPerVlew;
    const unsigned offset_bytes = (block % blocksPerVlew) * chipBeatBytes;
    for (unsigned chip = 0; chip < total_chips; ++chip) {
        const std::uint8_t *d8 = &delta[chip * chipBeatBytes];
        BitVec delta_word(vlewCodec.k());
        delta_word.setBytes(offset_bytes * 8, d8, chipBeatBytes);
        const BitVec code_delta = vlewCodec.encodeDelta(delta_word);

        if (data_mask & (1u << chip)) {
            std::uint8_t *stored = chipBeat(chip, block);
            for (unsigned b = 0; b < chipBeatBytes; ++b)
                stored[b] ^= d8[b];
            enforceStuck(chip,
                         static_cast<std::uint64_t>(block) *
                             chipBeatBytes,
                         static_cast<std::uint64_t>(block + 1) *
                             chipBeatBytes);
        }
        if (code_mask & (1u << chip))
            codeStore[chip][vlew] ^= code_delta;

        // Golden state tracks the full write intent; the oracle for
        // what the media may legally resolve to is the crash
        // campaign's own pre-crash images.
        std::uint8_t *golden = goldenBeat(chip, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            golden[b] ^= d8[b];
        goldenCode[chip][vlew] ^= code_delta;
    }
    poisoned[block] = false;
}

void
PmRank::drainCodeBits(unsigned block, const std::uint8_t *settled_data,
                      std::uint16_t chip_mask)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(!disabled[block], "drain for a disabled block");
    const unsigned total_chips = dataChips + 1;
    const std::uint16_t all =
        static_cast<std::uint16_t>((1u << total_chips) - 1);
    chip_mask &= all;
    NVCK_ASSERT(chip_mask != 0, "drain with no chips");

    // The register holds the coalesced delta between the last fully
    // drained value and the current write intent (the golden data,
    // updated at every burst). Chips never see absolute values — only
    // the linear delta f(settled ^ intent) reaches the code array.
    std::uint8_t delta[9 * chipBeatBytes];
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *intent = goldenBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            delta[c * chipBeatBytes + b] =
                intent[b] ^ settled_data[c * chipBeatBytes + b];
    }
    std::vector<GfElem> delta_syms(rsCodec.k());
    for (unsigned i = 0; i < rsCodec.k(); ++i)
        delta_syms[i] = delta[i];
    const auto delta_cw = rsCodec.encode(delta_syms);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        delta[dataChips * chipBeatBytes + b] =
            static_cast<std::uint8_t>(delta_cw[b]);

    const unsigned vlew = block / blocksPerVlew;
    const unsigned offset_bytes =
        (block % blocksPerVlew) * chipBeatBytes;
    for (unsigned chip = 0; chip < total_chips; ++chip) {
        if (!(chip_mask & (1u << chip)))
            continue;
        const std::uint8_t *d8 = &delta[chip * chipBeatBytes];
        bool nonzero = false;
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            nonzero = nonzero || d8[b] != 0;
        if (!nonzero)
            continue;
        BitVec delta_word(vlewCodec.k());
        delta_word.setBytes(offset_bytes * 8, d8, chipBeatBytes);
        codeStore[chip][vlew] ^= vlewCodec.encodeDelta(delta_word);
    }
}

int
PmRank::correctVlew(unsigned chip, unsigned vlew)
{
    BitVec cw = assembleVlew(chip, vlew);
    const auto res = vlewCodec.decode(cw);
    switch (res.status) {
      case DecodeStatus::Clean:
        return 0;
      case DecodeStatus::Corrected:
        storeVlew(chip, vlew, cw);
        return static_cast<int>(res.corrections);
      case DecodeStatus::Uncorrectable:
        return -1;
    }
    NVCK_PANIC("unreachable");
}

BlockReadResult
PmRank::readBlock(unsigned block, std::uint8_t *out, unsigned threshold)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(!disabled[block], "read of disabled block");
    BlockReadResult result;

    // A poisoned block is a standing, *reported* UE: crash recovery
    // could not resolve it and flagged it rather than guessing.
    if (poisoned[block]) {
        result.path = ReadPath::Failed;
        result.outcome = RecoveryOutcome::DetectedUE;
        recCounters.count(result.outcome);
        return result;
    }

    auto emit = [&](const std::vector<GfElem> &word) {
        for (unsigned i = 0; i < rsCodec.k(); ++i)
            out[i] = static_cast<std::uint8_t>(
                word[geom.rsCheckBytes + i]);
        std::uint8_t golden[blockBytes];
        goldenBlock(block, golden);
        result.dataCorrect = std::memcmp(out, golden, blockBytes) == 0;
    };

    // RS symbol position -> owning chip (check bytes lead the word).
    auto chipOfSymbol = [&](std::uint32_t pos) {
        return pos < geom.rsCheckBytes
                   ? dataChips
                   : (pos - geom.rsCheckBytes) / chipBeatBytes;
    };

    // Step 1: opportunistic per-block RS correction (Fig 9 top).
    std::vector<GfElem> word = assembleRsWord(block);
    const auto rs_res = rsCodec.decode(word, {}, /*max_errors=*/-1);
    if (rs_res.status == DecodeStatus::Clean) {
        result.path = ReadPath::Clean;
        result.outcome = RecoveryOutcome::Corrected;
        emit(word);
        return result;
    }
    if (rs_res.status == DecodeStatus::Corrected &&
        rs_res.corrections <= threshold) {
        result.path = ReadPath::RsAccepted;
        result.outcome = RecoveryOutcome::Corrected;
        result.rsCorrections = rs_res.corrections;
        for (const std::uint32_t pos : rs_res.positions)
            result.chipCorrectionMask |= static_cast<std::uint16_t>(
                1u << chipOfSymbol(pos));
        recCounters.count(result.outcome);
        emit(word);
        return result;
    }
    // The RS tier proposed more corrections than the acceptance
    // threshold allows: exactly the words where accepting would risk a
    // miscorrection (the 1e-17 SDC gate). Remember the rejection for
    // the outcome taxonomy.
    const bool rs_rejected =
        rs_res.status == DecodeStatus::Corrected &&
        rs_res.corrections > threshold;

    // Step 2: rejected or uncorrectable -> fetch and correct the VLEWs
    // of every chip covering this block (Fig 9 bottom).
    const unsigned vlew = block / blocksPerVlew;
    std::vector<std::uint32_t> erasures;
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        const int corrected = correctVlew(chip, vlew);
        if (corrected < 0) {
            // Whole-chip fault: erase its beat for RS.
            result.chipErasureMask |=
                static_cast<std::uint16_t>(1u << chip);
            if (chip == dataChips) {
                for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
                    erasures.push_back(b);
            } else {
                for (unsigned b = 0; b < chipBeatBytes; ++b)
                    erasures.push_back(geom.rsCheckBytes +
                                       chip * chipBeatBytes + b);
            }
        } else if (corrected > 0) {
            result.chipCorrectionMask |=
                static_cast<std::uint16_t>(1u << chip);
            result.vlewBitCorrections +=
                static_cast<unsigned>(corrected);
        }
    }

    // After VLEW correction any residual non-erasure errors are
    // miscorrection artifacts, so the final decode is bounded by the
    // same acceptance threshold: fail detectably instead of accepting
    // a word the SDC gate would reject.
    std::vector<GfElem> word2 = assembleRsWord(block);
    const auto rs2 =
        rsCodec.decode(word2, erasures, static_cast<int>(threshold));
    if (rs2.status == DecodeStatus::Uncorrectable) {
        result.path = ReadPath::Failed;
        result.outcome = RecoveryOutcome::DetectedUE;
        recCounters.count(result.outcome);
        return result;
    }
    result.path = erasures.empty() ? ReadPath::VlewFallback
                                   : ReadPath::ChipRecovered;
    result.outcome = rs_rejected ? RecoveryOutcome::MiscorrectionRisk
                                 : RecoveryOutcome::FellBackToVlew;
    recCounters.count(result.outcome);
    result.rsCorrections = rs2.corrections;
    // Residual (non-erasure) symbol fixes from the bounded decode are
    // corrections too; erasure fills are already attributed above.
    for (const std::uint32_t pos : rs2.positions) {
        const unsigned chip = chipOfSymbol(pos);
        if (!(result.chipErasureMask & (1u << chip)))
            result.chipCorrectionMask |=
                static_cast<std::uint16_t>(1u << chip);
    }
    emit(word2);
    return result;
}

ScrubReport
PmRank::bootScrub()
{
    ScrubReport report;
    std::vector<bool> chip_failed(dataChips + 1, false);

    // One batched residue pass over the whole rank (scrub.hh): clean
    // VLEWs cost only the streaming residue, dirty ones the fast
    // corrupt-word decode. An uncorrectable VLEW marks its chip for
    // the wholesale rebuild below.
    const auto outcomes = ScrubEngine().sweep(*this);
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        for (unsigned v = 0; v < numVlews; ++v) {
            ++report.vlewsScanned;
            const auto &o =
                outcomes[static_cast<std::size_t>(chip) * numVlews +
                         v];
            if (o.corrections < 0) {
                chip_failed[chip] = true;
            } else if (o.corrections > 0) {
                ++report.vlewsWithErrors;
                report.bitsCorrected +=
                    static_cast<std::uint64_t>(o.corrections);
            }
        }
    }

    const unsigned failed_data = static_cast<unsigned>(
        std::count(chip_failed.begin(), chip_failed.end() - 1, true));
    const bool parity_failed = chip_failed[dataChips];

    if (failed_data > 1 || (failed_data == 1 && parity_failed)) {
        report.uncorrectable = true;
        return report;
    }
    if (failed_data == 1) {
        for (unsigned c = 0; c < dataChips; ++c) {
            if (chip_failed[c]) {
                if (rebuildDataChip(c, report) ==
                    RecoveryOutcome::DetectedUE)
                    report.uncorrectable = true;
                ++report.chipsRecovered;
            }
        }
    }
    if (parity_failed) {
        rebuildParityChip();
        report.parityChipRebuilt = true;
        ++report.chipsRecovered;
    }
    return report;
}

RecoveryOutcome
PmRank::rebuildDataChip(unsigned chip, ScrubReport &report)
{
    (void)report;
    std::vector<std::uint32_t> erasures;
    for (unsigned b = 0; b < chipBeatBytes; ++b)
        erasures.push_back(geom.rsCheckBytes + chip * chipBeatBytes + b);

    for (unsigned block = 0; block < numBlocks; ++block) {
        std::vector<GfElem> word = assembleRsWord(block);
        const auto res = rsCodec.decode(word, erasures, -1);
        if (res.status == DecodeStatus::Uncorrectable) {
            recCounters.count(RecoveryOutcome::DetectedUE);
            return RecoveryOutcome::DetectedUE;
        }
        std::uint8_t *beat = chipBeat(chip, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            beat[b] = static_cast<std::uint8_t>(
                word[geom.rsCheckBytes + chip * chipBeatBytes + b]);
    }
    // Re-encode the rebuilt chip's VLEW code bits.
    for (unsigned v = 0; v < numVlews; ++v) {
        BitVec data(vlewCodec.k());
        data.setBytes(0, &chipStore[chip][v * geom.vlewDataBytes],
                      geom.vlewDataBytes);
        const BitVec check = vlewCodec.encodeDelta(data);
        codeStore[chip][v].copyRange(0, check, 0, vlewCodec.r());
    }
    recCounters.count(RecoveryOutcome::FellBackToVlew);
    return RecoveryOutcome::FellBackToVlew;
}

void
PmRank::rebuildParityChip()
{
    for (unsigned block = 0; block < numBlocks; ++block) {
        std::vector<GfElem> data(rsCodec.k());
        for (unsigned c = 0; c < dataChips; ++c) {
            const std::uint8_t *beat = chipBeat(c, block);
            for (unsigned b = 0; b < chipBeatBytes; ++b)
                data[c * chipBeatBytes + b] = beat[b];
        }
        const auto cw = rsCodec.encode(data);
        std::uint8_t *parity = chipBeat(dataChips, block);
        for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
            parity[b] = static_cast<std::uint8_t>(cw[b]);
    }
    for (unsigned v = 0; v < numVlews; ++v) {
        BitVec data(vlewCodec.k());
        data.setBytes(0, &chipStore[dataChips][v * geom.vlewDataBytes],
                      geom.vlewDataBytes);
        const BitVec check = vlewCodec.encodeDelta(data);
        codeStore[dataChips][v].copyRange(0, check, 0, vlewCodec.r());
    }
}

PmRank::LaneRebuildReport
PmRank::rebuildLaneSpan(unsigned chip, unsigned vlew,
                        unsigned threshold, std::uint16_t distrust_mask)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    NVCK_ASSERT(vlew < numVlews, "vlew out of range");
    LaneRebuildReport report;
    const unsigned first = vlew * blocksPerVlew;
    bool poisoned_any = false;

    // A survivor whose VLEW could not vouch for its beats makes every
    // erasure fill in the span untrustworthy (the eight erasures leave
    // no redundancy to detect the survivor's residual errors): poison
    // the whole span rather than emit a silent version mix.
    const bool distrusted =
        (distrust_mask & static_cast<std::uint16_t>(
                             ~(1u << chip))) != 0;

    std::vector<std::uint32_t> erasures;
    erasures.reserve(chipBeatBytes);
    for (unsigned b = 0; b < chipBeatBytes; ++b)
        erasures.push_back(geom.rsCheckBytes + chip * chipBeatBytes + b);

    for (unsigned i = 0; i < blocksPerVlew; ++i) {
        const unsigned block = first + i;
        if (poisoned[block])
            continue;
        if (distrusted) {
            recCounters.count(RecoveryOutcome::DetectedUE);
            poisonBlock(block);
            ++report.blocksPoisoned;
            poisoned_any = true;
            continue;
        }
        if (chip == dataChips) {
            // Parity lane: recompute the RS check bytes from the
            // (just-scrubbed) data beats.
            std::vector<GfElem> data(rsCodec.k());
            for (unsigned c = 0; c < dataChips; ++c) {
                const std::uint8_t *beat = chipBeat(c, block);
                for (unsigned b = 0; b < chipBeatBytes; ++b)
                    data[c * chipBeatBytes + b] = beat[b];
            }
            const auto cw = rsCodec.encode(data);
            std::uint8_t *parity = chipBeat(dataChips, block);
            for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
                parity[b] = static_cast<std::uint8_t>(cw[b]);
            ++report.blocksFilled;
            continue;
        }
        std::vector<GfElem> word = assembleRsWord(block);
        const auto res =
            rsCodec.decode(word, erasures, static_cast<int>(threshold));
        if (res.status == DecodeStatus::Uncorrectable) {
            recCounters.count(RecoveryOutcome::DetectedUE);
            poisonBlock(block);
            ++report.blocksPoisoned;
            poisoned_any = true;
            continue;
        }
        std::uint8_t *beat = chipBeat(chip, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            beat[b] = static_cast<std::uint8_t>(
                word[geom.rsCheckBytes + chip * chipBeatBytes + b]);
        ++report.blocksFilled;
    }

    // The rebuilt lane's code bits are garbage until re-encoded from
    // the filled beats; a poisoned block additionally zeroed every
    // chip's beats (media and golden), so the whole span's code must
    // be resynchronized, exactly like crashRecovery() phase 3. The
    // zero RS parity a poison leaves is already consistent (the code
    // is linear), so only VLEW code bits need work.
    auto reencode = [&](unsigned c) {
        BitVec data(vlewCodec.k());
        data.setBytes(0, &chipStore[c][vlew * geom.vlewDataBytes],
                      geom.vlewDataBytes);
        const BitVec check = vlewCodec.encodeDelta(data);
        codeStore[c][vlew].copyRange(0, check, 0, vlewCodec.r());
    };
    if (poisoned_any) {
        for (unsigned c = 0; c <= dataChips; ++c) {
            reencode(c);
            BitVec g(vlewCodec.k());
            g.setBytes(0, &goldenStore[c][vlew * geom.vlewDataBytes],
                       geom.vlewDataBytes);
            const BitVec gcheck = vlewCodec.encodeDelta(g);
            goldenCode[c][vlew].copyRange(0, gcheck, 0, vlewCodec.r());
        }
    } else {
        reencode(chip);
    }
    return report;
}

void
PmRank::clearStuckCells(unsigned chip)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    std::fill(stuckMask[chip].begin(), stuckMask[chip].end(),
              static_cast<std::uint8_t>(0));
    std::fill(stuckVal[chip].begin(), stuckVal[chip].end(),
              static_cast<std::uint8_t>(0));
}

std::uint64_t
PmRank::injectErrors(Rng &rng, double rber)
{
    if (rber <= 0.0)
        return 0;
    std::uint64_t flipped = 0;
    const unsigned total_chips = dataChips + 1;
    const std::uint64_t data_bits_per_chip =
        static_cast<std::uint64_t>(numBlocks) * chipBeatBytes * 8;
    const std::uint64_t code_bits_per_chip =
        static_cast<std::uint64_t>(numVlews) * vlewCodec.r();
    const std::uint64_t data_bits = total_chips * data_bits_per_chip;
    const std::uint64_t total_bits =
        data_bits + total_chips * code_bits_per_chip;

    std::uint64_t pos = 0;
    for (;;) {
        pos += rng.geometric(rber);
        if (pos > total_bits)
            break;
        const std::uint64_t idx = pos - 1;
        if (idx < data_bits) {
            const unsigned chip =
                static_cast<unsigned>(idx / data_bits_per_chip);
            const std::uint64_t bit = idx % data_bits_per_chip;
            chipStore[chip][bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        } else {
            const std::uint64_t cidx = idx - data_bits;
            const unsigned chip =
                static_cast<unsigned>(cidx / code_bits_per_chip);
            const std::uint64_t bit = cidx % code_bits_per_chip;
            codeStore[chip][bit / vlewCodec.r()].flip(
                static_cast<std::size_t>(bit % vlewCodec.r()));
        }
        ++flipped;
    }
    return flipped;
}

void
PmRank::failChip(unsigned chip, Rng &rng)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    for (auto &byte : chipStore[chip])
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    for (auto &code : codeStore[chip])
        code.randomize(rng);
}

void
PmRank::disableBlock(unsigned block)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    if (disabled[block])
        return;
    // Logically replace the block's bits with zeros in every chip's
    // VLEW and in the RS word (Section V-E).
    std::uint8_t zeros[blockBytes] = {};
    writeBlock(block, zeros);
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        std::memset(chipBeat(chip, block), 0, chipBeatBytes);
        std::memset(goldenBeat(chip, block), 0, chipBeatBytes);
    }
    disabled[block] = true;
}

bool
PmRank::isDisabled(unsigned block) const
{
    return disabled.at(block);
}

void
PmRank::goldenBlock(unsigned block, std::uint8_t *out) const
{
    for (unsigned c = 0; c < dataChips; ++c)
        std::memcpy(out + c * chipBeatBytes, goldenBeat(c, block),
                    chipBeatBytes);
}

bool
PmRank::isPristine() const
{
    return chipStore == goldenStore && codeStore == goldenCode;
}

bool
PmRank::isPoisoned(unsigned block) const
{
    return poisoned.at(block);
}

RankSnapshot
PmRank::snapshot() const
{
    RankSnapshot snap;
    snap.chipStore = chipStore;
    snap.codeStore = codeStore;
    snap.goldenStore = goldenStore;
    snap.goldenCode = goldenCode;
    snap.stuckMask = stuckMask;
    snap.stuckVal = stuckVal;
    snap.disabled = disabled;
    snap.poisoned = poisoned;
    return snap;
}

void
PmRank::restore(const RankSnapshot &snap)
{
    NVCK_ASSERT(snap.chipStore.size() == chipStore.size() &&
                    snap.disabled.size() == disabled.size(),
                "snapshot from a different rank geometry");
    chipStore = snap.chipStore;
    codeStore = snap.codeStore;
    goldenStore = snap.goldenStore;
    goldenCode = snap.goldenCode;
    stuckMask = snap.stuckMask;
    stuckVal = snap.stuckVal;
    disabled = snap.disabled;
    poisoned = snap.poisoned;
}

void
PmRank::corruptByte(unsigned chip, unsigned block, unsigned byte,
                    std::uint8_t mask)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(byte < chipBeatBytes, "byte out of range");
    chipBeat(chip, block)[byte] ^= mask;
}

void
PmRank::storeRsWord(unsigned block, const std::vector<GfElem> &word)
{
    std::uint8_t *parity = chipBeat(dataChips, block);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        parity[b] = static_cast<std::uint8_t>(word[b]);
    for (unsigned c = 0; c < dataChips; ++c) {
        std::uint8_t *beat = chipBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            beat[b] = static_cast<std::uint8_t>(
                word[geom.rsCheckBytes + c * chipBeatBytes + b]);
    }
    for (unsigned chip = 0; chip <= dataChips; ++chip)
        enforceStuck(chip,
                     static_cast<std::uint64_t>(block) * chipBeatBytes,
                     static_cast<std::uint64_t>(block + 1) *
                         chipBeatBytes);
}

void
PmRank::poisonBlock(unsigned block)
{
    // Zero the block everywhere (like disableBlock) so the media stays
    // self-consistent; golden follows because the zeros are now the
    // block's (known-lost) contents. The flag is what readers see.
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        std::memset(chipBeat(chip, block), 0, chipBeatBytes);
        std::memset(goldenBeat(chip, block), 0, chipBeatBytes);
    }
    poisoned[block] = true;
}

CrashRecoveryReport
PmRank::crashRecovery(unsigned threshold)
{
    CrashRecoveryReport report;
    const unsigned total_chips = dataChips + 1;

    // Phase 1: scrub every VLEW. A stale-code chip whose torn delta
    // fits in the BCH budget rolls back to the old data here; larger
    // tears stay uncorrectable and are resolved per block below.
    // Beats the rollback changed are remembered: those chips now hold
    // a *different version* than chips whose EUR drained before the
    // cut, and the erasure paths below must not mix the two.
    std::vector<std::vector<bool>> torn(
        total_chips, std::vector<bool>(numVlews, false));
    std::vector<unsigned> torn_count(total_chips, 0);
    std::vector<std::vector<bool>> rolled_back(
        total_chips, std::vector<bool>(numBlocks, false));
    const auto outcomes = ScrubEngine().sweep(*this);
    for (unsigned chip = 0; chip < total_chips; ++chip) {
        for (unsigned v = 0; v < numVlews; ++v) {
            ++report.vlewsScanned;
            const auto &o =
                outcomes[static_cast<std::size_t>(chip) * numVlews +
                         v];
            if (o.corrections < 0) {
                torn[chip][v] = true;
                ++torn_count[chip];
            } else if (o.corrections > 0) {
                ++report.vlewsCorrected;
                report.bitsCorrected +=
                    static_cast<std::uint64_t>(o.corrections);
                for (unsigned b = 0; b < blocksPerVlew; ++b) {
                    if (o.changedBlocks & (1ull << b))
                        rolled_back[chip][v * blocksPerVlew + b] = true;
                }
            }
        }
    }

    // A chip with *every* VLEW uncorrectable is a failed device, not a
    // torn write; its beats are erased wholesale, as in bootScrub().
    std::vector<bool> dead(total_chips, false);
    for (unsigned chip = 0; chip < total_chips; ++chip) {
        if (torn_count[chip] == numVlews) {
            dead[chip] = true;
            report.deadChips.push_back(chip);
        }
    }

    auto beat_from_word = [&](const std::vector<GfElem> &word,
                              unsigned chip, std::uint8_t *out8) {
        if (chip == dataChips) {
            for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
                out8[b] = static_cast<std::uint8_t>(word[b]);
        } else {
            for (unsigned b = 0; b < chipBeatBytes; ++b)
                out8[b] = static_cast<std::uint8_t>(
                    word[geom.rsCheckBytes + chip * chipBeatBytes + b]);
        }
    };

    // Phase 2, span by span: verify every block's RS word and resolve
    // it to a consistent value — or poison it as a reported UE.
    std::vector<bool> span_touched(numVlews, false);
    for (unsigned v = 0; v < numVlews; ++v) {
        std::vector<unsigned> bad; //!< unreliable chips in this span
        unsigned torn_chip = total_chips;
        for (unsigned chip = 0; chip < total_chips; ++chip) {
            if (dead[chip] || torn[chip][v]) {
                bad.push_back(chip);
                span_touched[v] = true;
                if (!dead[chip])
                    torn_chip = chip;
            }
        }

        struct PendingFill
        {
            unsigned block;
            std::vector<GfElem> word;
        };
        std::vector<PendingFill> pending;
        std::vector<unsigned> to_poison;

        for (unsigned block = v * blocksPerVlew;
             block < (v + 1) * blocksPerVlew; ++block) {
            if (disabled[block] || poisoned[block])
                continue;
            std::vector<GfElem> word = assembleRsWord(block);
            const auto res = rsCodec.decode(word, {}, -1);
            if (res.status == DecodeStatus::Clean)
                continue;
            if (res.status == DecodeStatus::Corrected &&
                res.corrections <= threshold) {
                storeRsWord(block, word);
                span_touched[v] = true;
                ++report.blocksRsResolved;
                recCounters.count(RecoveryOutcome::Corrected);
                continue;
            }
            if (res.status == DecodeStatus::Corrected) {
                // A >threshold proposal is exactly where accepting
                // would risk a miscorrection: reject it.
                ++report.miscorrectionRejects;
                recCounters.count(RecoveryOutcome::MiscorrectionRisk);
            }

            // One unreliable chip: try an RS erasure rebuild of its
            // beat. With all 8 check symbols consumed by the erasure
            // the fill always "succeeds" algebraically, so it is only
            // trusted when the survivors are above suspicion (dead
            // chip: their VLEWs verified clean in phase 1) or when the
            // rebuilt beats verify against the torn chip's own stale
            // code bits (a rollback proof, checked after the loop).
            if (bad.size() == 1) {
                std::vector<std::uint32_t> erasures;
                if (bad[0] == dataChips) {
                    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
                        erasures.push_back(b);
                } else {
                    for (unsigned b = 0; b < chipBeatBytes; ++b)
                        erasures.push_back(geom.rsCheckBytes +
                                           bad[0] * chipBeatBytes + b);
                }
                std::vector<GfElem> word2 = assembleRsWord(block);
                const auto res2 = rsCodec.decode(
                    word2, erasures, static_cast<int>(threshold));
                if (res2.status != DecodeStatus::Uncorrectable) {
                    if (!dead[bad[0]]) {
                        pending.push_back({block, std::move(word2)});
                        continue;
                    }
                    // A dead chip leaves no code bits to cross-check
                    // the fill against, so it is only trusted when no
                    // surviving beat was rolled back in phase 1: a
                    // rollback next to a drained chip leaves the
                    // survivors holding two different versions, and
                    // the fill through them is a valid-looking RS
                    // codeword that is neither the old nor the new
                    // value. Those blocks are reported, not guessed.
                    bool mixed = false;
                    for (unsigned chip = 0;
                         chip < total_chips && !mixed; ++chip)
                        mixed = chip != bad[0] &&
                                rolled_back[chip][block];
                    if (!mixed) {
                        storeRsWord(block, word2);
                        span_touched[v] = true;
                        ++report.blocksErasureResolved;
                        recCounters.count(
                            RecoveryOutcome::FellBackToVlew);
                        continue;
                    }
                }
            }
            to_poison.push_back(block);
        }

        // Cross-check deferred fills: substitute the candidate beats
        // into the torn chip's stored VLEW and decode against its
        // stale code bits. A decodable word whose corrections stay
        // outside the candidate beats proves the fill is the value
        // the chip held before the torn write (rollback to old).
        if (!pending.empty()) {
            const unsigned chip = torn_chip;
            const unsigned r = vlewCodec.r();
            BitVec cw = assembleVlew(chip, v);
            for (const auto &p : pending) {
                std::uint8_t beat[chipBeatBytes];
                beat_from_word(p.word, chip, beat);
                cw.setBytes(r + (p.block % blocksPerVlew) *
                                    chipBeatBytes * 8,
                            beat, chipBeatBytes);
            }
            const auto bch = vlewCodec.decode(cw);
            const bool decodable =
                bch.status != DecodeStatus::Uncorrectable;
            for (const auto &p : pending) {
                bool verified = decodable;
                if (verified) {
                    std::uint8_t cand[chipBeatBytes];
                    std::uint8_t post[chipBeatBytes];
                    beat_from_word(p.word, chip, cand);
                    cw.getBytes(r + (p.block % blocksPerVlew) *
                                        chipBeatBytes * 8,
                                post, chipBeatBytes);
                    verified = std::memcmp(cand, post,
                                           chipBeatBytes) == 0;
                }
                if (verified) {
                    storeRsWord(p.block, p.word);
                    span_touched[v] = true;
                    ++report.blocksErasureResolved;
                    recCounters.count(RecoveryOutcome::FellBackToVlew);
                } else {
                    to_poison.push_back(p.block);
                }
            }
        }

        for (unsigned block : to_poison) {
            poisonBlock(block);
            span_touched[v] = true;
            report.ueBlocks.push_back(block);
            recCounters.count(RecoveryOutcome::DetectedUE);
        }
    }

    // Phase 3: the surviving data is settled; re-encode the code bits
    // of every touched span so stale/garbled BCH regions match it.
    for (unsigned v = 0; v < numVlews; ++v) {
        if (!span_touched[v])
            continue;
        for (unsigned chip = 0; chip < total_chips; ++chip) {
            BitVec data(vlewCodec.k());
            data.setBytes(0, &chipStore[chip][v * geom.vlewDataBytes],
                          geom.vlewDataBytes);
            const BitVec check = vlewCodec.encodeDelta(data);
            codeStore[chip][v].copyRange(0, check, 0, vlewCodec.r());
        }
    }

    // Recovery defines the new ground truth: the write intent died
    // with the machine, so whatever consistent state the pass settled
    // on *is* the memory's contents from here on.
    goldenStore = chipStore;
    goldenCode = codeStore;
    return report;
}

double
PmRank::scrubSeconds(double capacity_bytes, double bus_bytes_per_sec)
{
    const ProposalParams p;
    return capacity_bytes * (1.0 + p.totalStorageCost()) /
           bus_bytes_per_sec;
}

} // namespace nvck
