#include "pm_rank.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"
#include "ecc/crc.hh"

namespace nvck {

PmRank::PmRank(unsigned num_blocks, const ProposalParams &params)
    : geom(params),
      numBlocks(num_blocks),
      dataChips(params.dataChips),
      blocksPerVlew(params.blocksPerVlew()),
      vlewCodec(params.vlewDataBytes * 8, params.vlewT),
      rsCodec(params.rsDataBytes, params.rsCheckBytes),
      disabled(num_blocks, false)
{
    NVCK_ASSERT(numBlocks % blocksPerVlew == 0,
                "block count must be a multiple of the VLEW span");
    numVlews = numBlocks / blocksPerVlew;

    const unsigned total_chips = dataChips + 1;
    chipStore.assign(total_chips, std::vector<std::uint8_t>(
                                      numBlocks * chipBeatBytes, 0));
    goldenStore = chipStore;
    stuckMask = chipStore;
    stuckVal = chipStore;
    codeStore.assign(total_chips,
                     std::vector<BitVec>(numVlews, BitVec(vlewCodec.r())));
    goldenCode = codeStore;
}

std::uint8_t *
PmRank::chipBeat(unsigned chip, unsigned block)
{
    return &chipStore[chip][block * chipBeatBytes];
}

const std::uint8_t *
PmRank::chipBeat(unsigned chip, unsigned block) const
{
    return &chipStore[chip][block * chipBeatBytes];
}

std::uint8_t *
PmRank::goldenBeat(unsigned chip, unsigned block)
{
    return &goldenStore[chip][block * chipBeatBytes];
}

const std::uint8_t *
PmRank::goldenBeat(unsigned chip, unsigned block) const
{
    return &goldenStore[chip][block * chipBeatBytes];
}

BitVec
PmRank::assembleVlew(unsigned chip, unsigned vlew) const
{
    const unsigned r = vlewCodec.r();
    BitVec cw(vlewCodec.n());
    cw.copyRange(0, codeStore[chip][vlew], 0, r);
    cw.setBytes(r, &chipStore[chip][vlew * geom.vlewDataBytes],
                geom.vlewDataBytes);
    return cw;
}

void
PmRank::storeVlew(unsigned chip, unsigned vlew, const BitVec &cw)
{
    const unsigned r = vlewCodec.r();
    codeStore[chip][vlew].copyRange(0, cw, 0, r);
    cw.getBytes(r, &chipStore[chip][vlew * geom.vlewDataBytes],
                geom.vlewDataBytes);
    enforceStuck(chip,
                 static_cast<std::uint64_t>(vlew) * geom.vlewDataBytes,
                 static_cast<std::uint64_t>(vlew + 1) *
                     geom.vlewDataBytes);
}

void
PmRank::enforceStuck(unsigned chip, std::uint64_t lo, std::uint64_t hi)
{
    const auto &mask = stuckMask[chip];
    const auto &val = stuckVal[chip];
    auto &stored = chipStore[chip];
    for (std::uint64_t i = lo; i < hi; ++i) {
        if (mask[i] != 0)
            stored[i] = static_cast<std::uint8_t>(
                (stored[i] & ~mask[i]) | (val[i] & mask[i]));
    }
}

void
PmRank::setStuckBit(unsigned chip, std::uint64_t byte_index,
                    unsigned bit, bool value)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    NVCK_ASSERT(byte_index < chipStore[chip].size(),
                "byte index out of range");
    NVCK_ASSERT(bit < 8, "bit out of range");
    stuckMask[chip][byte_index] |= static_cast<std::uint8_t>(1u << bit);
    if (value)
        stuckVal[chip][byte_index] |=
            static_cast<std::uint8_t>(1u << bit);
    else
        stuckVal[chip][byte_index] &=
            static_cast<std::uint8_t>(~(1u << bit));
    enforceStuck(chip, byte_index, byte_index + 1);
}

unsigned
PmRank::writeVerify(unsigned block, const std::uint8_t *new_data)
{
    writeBlock(block, new_data);
    // Re-read the raw stored beats right after the write [86]; any
    // mismatch against the intended value is a worn-out cell.
    unsigned bad_bits = 0;
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        const std::uint8_t *stored = chipBeat(chip, block);
        const std::uint8_t *intended = goldenBeat(chip, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b) {
            std::uint8_t diff =
                static_cast<std::uint8_t>(stored[b] ^ intended[b]);
            while (diff) {
                diff &= static_cast<std::uint8_t>(diff - 1);
                ++bad_bits;
            }
        }
    }
    return bad_bits;
}

std::vector<GfElem>
PmRank::assembleRsWord(unsigned block) const
{
    // Layout: symbols [0, r) = parity-chip beat (check symbols);
    // symbols [r + c*8, r + (c+1)*8) = data chip c's beat.
    std::vector<GfElem> word(rsCodec.n());
    const std::uint8_t *parity = chipBeat(dataChips, block);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        word[b] = parity[b];
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *beat = chipBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            word[geom.rsCheckBytes + c * chipBeatBytes + b] = beat[b];
    }
    return word;
}

void
PmRank::encodeGoldenRs(unsigned block)
{
    std::vector<GfElem> data(rsCodec.k());
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *beat = goldenBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            data[c * chipBeatBytes + b] = beat[b];
    }
    const auto cw = rsCodec.encode(data);
    std::uint8_t *parity = goldenBeat(dataChips, block);
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        parity[b] = static_cast<std::uint8_t>(cw[b]);
}

void
PmRank::initialize(Rng &rng)
{
    // Random golden data across the data chips.
    for (unsigned c = 0; c < dataChips; ++c)
        for (auto &byte : goldenStore[c])
            byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    // Parity chip contents.
    for (unsigned block = 0; block < numBlocks; ++block)
        encodeGoldenRs(block);
    // VLEW code bits for every chip (including the parity chip).
    const unsigned r = vlewCodec.r();
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        for (unsigned v = 0; v < numVlews; ++v) {
            BitVec data(vlewCodec.k());
            data.setBytes(0, &goldenStore[chip][v * geom.vlewDataBytes],
                          geom.vlewDataBytes);
            const BitVec check = vlewCodec.encodeDelta(data);
            goldenCode[chip][v].copyRange(0, check, 0, r);
        }
    }
    chipStore = goldenStore;
    codeStore = goldenCode;
    std::fill(disabled.begin(), disabled.end(), false);
}

void
PmRank::transmit(std::uint8_t *beat)
{
    if (busBer <= 0.0)
        return;
    for (;;) {
        std::uint8_t wire[chipBeatBytes];
        std::memcpy(wire, beat, chipBeatBytes);
        bool corrupted = false;
        for (unsigned b = 0; b < chipBeatBytes; ++b) {
            for (unsigned bit = 0; bit < 8; ++bit) {
                if (busRng.chance(busBer)) {
                    wire[b] ^= static_cast<std::uint8_t>(1u << bit);
                    corrupted = true;
                }
            }
        }
        if (!corrupted)
            return;
        if (!busCrc) {
            // No Write-CRC: the corrupted sum is silently committed.
            std::memcpy(beat, wire, chipBeatBytes);
            return;
        }
        // DDR4-style Write-CRC detects the burst error; the chip
        // alerts the controller, which retransmits (footnote 4).
        const std::uint8_t sent_crc = crc8({beat, chipBeatBytes});
        if (!crc8Check({wire, chipBeatBytes}, sent_crc)) {
            ++busRetries;
            continue;
        }
        // A pattern the CRC cannot see (vanishingly rare): committed.
        std::memcpy(beat, wire, chipBeatBytes);
        return;
    }
}

void
PmRank::applyChipDelta(unsigned chip, unsigned block,
                       const std::uint8_t *delta8,
                       const std::uint8_t *intended8)
{
    if (intended8 == nullptr)
        intended8 = delta8;
    bool nonzero = false;
    for (unsigned b = 0; b < chipBeatBytes; ++b)
        nonzero = nonzero || delta8[b] != 0 || intended8[b] != 0;
    if (!nonzero)
        return;

    // The chip internally XORs the received sum into the stored data:
    // pre-existing cell errors propagate one-to-one without spreading.
    std::uint8_t *stored = chipBeat(chip, block);
    std::uint8_t *golden = goldenBeat(chip, block);
    for (unsigned b = 0; b < chipBeatBytes; ++b) {
        stored[b] ^= delta8[b];
        golden[b] ^= intended8[b];
    }
    enforceStuck(chip,
                 static_cast<std::uint64_t>(block) * chipBeatBytes,
                 static_cast<std::uint64_t>(block + 1) * chipBeatBytes);

    // Linear code-bit update: f(x) ^ f(x') = f(x ^ x') (Fig 11). The
    // chip encodes what it actually received; the golden code tracks
    // the intended value.
    const unsigned vlew = block / blocksPerVlew;
    const unsigned offset_bytes =
        (block % blocksPerVlew) * chipBeatBytes;
    BitVec delta_word(vlewCodec.k());
    delta_word.setBytes(offset_bytes * 8, delta8, chipBeatBytes);
    const BitVec code_delta = vlewCodec.encodeDelta(delta_word);
    codeStore[chip][vlew] ^= code_delta;
    if (intended8 == delta8) {
        goldenCode[chip][vlew] ^= code_delta;
    } else {
        BitVec intended_word(vlewCodec.k());
        intended_word.setBytes(offset_bytes * 8, intended8,
                               chipBeatBytes);
        goldenCode[chip][vlew] ^= vlewCodec.encodeDelta(intended_word);
    }
}

void
PmRank::setBusFaultModel(double ber, bool crc_enabled,
                         std::uint64_t seed)
{
    NVCK_ASSERT(ber >= 0.0 && ber < 1.0, "bus BER out of range");
    busBer = ber;
    busCrc = crc_enabled;
    busRng = Rng(seed);
}

void
PmRank::writeBlock(unsigned block, const std::uint8_t *new_data)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(!disabled[block], "write to disabled block");

    // Per-chip data deltas (new XOR old, the OMV supplying "old").
    std::uint8_t delta[8 * chipBeatBytes];
    for (unsigned c = 0; c < dataChips; ++c) {
        const std::uint8_t *old_beat = goldenBeat(c, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            delta[c * chipBeatBytes + b] =
                new_data[c * chipBeatBytes + b] ^ old_beat[b];
    }

    // RS is linear too: the parity chip receives the check bytes of
    // the delta as its own delta.
    std::vector<GfElem> delta_syms(rsCodec.k());
    for (unsigned i = 0; i < rsCodec.k(); ++i)
        delta_syms[i] = delta[i];
    const auto delta_cw = rsCodec.encode(delta_syms);
    std::uint8_t parity_delta[chipBeatBytes];
    for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
        parity_delta[b] = static_cast<std::uint8_t>(delta_cw[b]);

    for (unsigned c = 0; c < dataChips; ++c) {
        std::uint8_t wire[chipBeatBytes];
        std::memcpy(wire, &delta[c * chipBeatBytes], chipBeatBytes);
        transmit(wire);
        applyChipDelta(c, block, wire, &delta[c * chipBeatBytes]);
    }
    std::uint8_t parity_wire[chipBeatBytes];
    std::memcpy(parity_wire, parity_delta, chipBeatBytes);
    transmit(parity_wire);
    applyChipDelta(dataChips, block, parity_wire, parity_delta);
}

int
PmRank::correctVlew(unsigned chip, unsigned vlew)
{
    BitVec cw = assembleVlew(chip, vlew);
    const auto res = vlewCodec.decode(cw);
    switch (res.status) {
      case DecodeStatus::Clean:
        return 0;
      case DecodeStatus::Corrected:
        storeVlew(chip, vlew, cw);
        return static_cast<int>(res.corrections);
      case DecodeStatus::Uncorrectable:
        return -1;
    }
    NVCK_PANIC("unreachable");
}

BlockReadResult
PmRank::readBlock(unsigned block, std::uint8_t *out, unsigned threshold)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    NVCK_ASSERT(!disabled[block], "read of disabled block");
    BlockReadResult result;

    auto emit = [&](const std::vector<GfElem> &word) {
        for (unsigned i = 0; i < rsCodec.k(); ++i)
            out[i] = static_cast<std::uint8_t>(
                word[geom.rsCheckBytes + i]);
        std::uint8_t golden[blockBytes];
        goldenBlock(block, golden);
        result.dataCorrect = std::memcmp(out, golden, blockBytes) == 0;
    };

    // Step 1: opportunistic per-block RS correction (Fig 9 top).
    std::vector<GfElem> word = assembleRsWord(block);
    const auto rs_res = rsCodec.decode(word, {}, /*max_errors=*/-1);
    if (rs_res.status == DecodeStatus::Clean) {
        result.path = ReadPath::Clean;
        emit(word);
        return result;
    }
    if (rs_res.status == DecodeStatus::Corrected &&
        rs_res.corrections <= threshold) {
        result.path = ReadPath::RsAccepted;
        result.rsCorrections = rs_res.corrections;
        emit(word);
        return result;
    }

    // Step 2: rejected or uncorrectable -> fetch and correct the VLEWs
    // of every chip covering this block (Fig 9 bottom).
    const unsigned vlew = block / blocksPerVlew;
    std::vector<std::uint32_t> erasures;
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        const int corrected = correctVlew(chip, vlew);
        if (corrected < 0) {
            // Whole-chip fault: erase its beat for RS.
            if (chip == dataChips) {
                for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
                    erasures.push_back(b);
            } else {
                for (unsigned b = 0; b < chipBeatBytes; ++b)
                    erasures.push_back(geom.rsCheckBytes +
                                       chip * chipBeatBytes + b);
            }
        } else {
            result.vlewBitCorrections +=
                static_cast<unsigned>(corrected);
        }
    }

    std::vector<GfElem> word2 = assembleRsWord(block);
    const auto rs2 = rsCodec.decode(word2, erasures, -1);
    if (rs2.status == DecodeStatus::Uncorrectable) {
        result.path = ReadPath::Failed;
        return result;
    }
    result.path = erasures.empty() ? ReadPath::VlewFallback
                                   : ReadPath::ChipRecovered;
    result.rsCorrections = rs2.corrections;
    emit(word2);
    return result;
}

ScrubReport
PmRank::bootScrub()
{
    ScrubReport report;
    std::vector<bool> chip_failed(dataChips + 1, false);

    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        for (unsigned v = 0; v < numVlews; ++v) {
            ++report.vlewsScanned;
            const int corrected = correctVlew(chip, v);
            if (corrected < 0) {
                chip_failed[chip] = true;
                break; // whole chip is rebuilt below
            }
            if (corrected > 0) {
                ++report.vlewsWithErrors;
                report.bitsCorrected +=
                    static_cast<std::uint64_t>(corrected);
            }
        }
    }

    const unsigned failed_data = static_cast<unsigned>(
        std::count(chip_failed.begin(), chip_failed.end() - 1, true));
    const bool parity_failed = chip_failed[dataChips];

    if (failed_data > 1 || (failed_data == 1 && parity_failed)) {
        report.uncorrectable = true;
        return report;
    }
    if (failed_data == 1) {
        for (unsigned c = 0; c < dataChips; ++c) {
            if (chip_failed[c]) {
                if (!rebuildDataChip(c, report))
                    report.uncorrectable = true;
                ++report.chipsRecovered;
            }
        }
    }
    if (parity_failed) {
        rebuildParityChip();
        report.parityChipRebuilt = true;
        ++report.chipsRecovered;
    }
    return report;
}

bool
PmRank::rebuildDataChip(unsigned chip, ScrubReport &report)
{
    (void)report;
    std::vector<std::uint32_t> erasures;
    for (unsigned b = 0; b < chipBeatBytes; ++b)
        erasures.push_back(geom.rsCheckBytes + chip * chipBeatBytes + b);

    for (unsigned block = 0; block < numBlocks; ++block) {
        std::vector<GfElem> word = assembleRsWord(block);
        const auto res = rsCodec.decode(word, erasures, -1);
        if (res.status == DecodeStatus::Uncorrectable)
            return false;
        std::uint8_t *beat = chipBeat(chip, block);
        for (unsigned b = 0; b < chipBeatBytes; ++b)
            beat[b] = static_cast<std::uint8_t>(
                word[geom.rsCheckBytes + chip * chipBeatBytes + b]);
    }
    // Re-encode the rebuilt chip's VLEW code bits.
    for (unsigned v = 0; v < numVlews; ++v) {
        BitVec data(vlewCodec.k());
        data.setBytes(0, &chipStore[chip][v * geom.vlewDataBytes],
                      geom.vlewDataBytes);
        const BitVec check = vlewCodec.encodeDelta(data);
        codeStore[chip][v].copyRange(0, check, 0, vlewCodec.r());
    }
    return true;
}

void
PmRank::rebuildParityChip()
{
    for (unsigned block = 0; block < numBlocks; ++block) {
        std::vector<GfElem> data(rsCodec.k());
        for (unsigned c = 0; c < dataChips; ++c) {
            const std::uint8_t *beat = chipBeat(c, block);
            for (unsigned b = 0; b < chipBeatBytes; ++b)
                data[c * chipBeatBytes + b] = beat[b];
        }
        const auto cw = rsCodec.encode(data);
        std::uint8_t *parity = chipBeat(dataChips, block);
        for (unsigned b = 0; b < geom.rsCheckBytes; ++b)
            parity[b] = static_cast<std::uint8_t>(cw[b]);
    }
    for (unsigned v = 0; v < numVlews; ++v) {
        BitVec data(vlewCodec.k());
        data.setBytes(0, &chipStore[dataChips][v * geom.vlewDataBytes],
                      geom.vlewDataBytes);
        const BitVec check = vlewCodec.encodeDelta(data);
        codeStore[dataChips][v].copyRange(0, check, 0, vlewCodec.r());
    }
}

std::uint64_t
PmRank::injectErrors(Rng &rng, double rber)
{
    if (rber <= 0.0)
        return 0;
    std::uint64_t flipped = 0;
    const unsigned total_chips = dataChips + 1;
    const std::uint64_t data_bits_per_chip =
        static_cast<std::uint64_t>(numBlocks) * chipBeatBytes * 8;
    const std::uint64_t code_bits_per_chip =
        static_cast<std::uint64_t>(numVlews) * vlewCodec.r();
    const std::uint64_t data_bits = total_chips * data_bits_per_chip;
    const std::uint64_t total_bits =
        data_bits + total_chips * code_bits_per_chip;

    std::uint64_t pos = 0;
    for (;;) {
        pos += rng.geometric(rber);
        if (pos > total_bits)
            break;
        const std::uint64_t idx = pos - 1;
        if (idx < data_bits) {
            const unsigned chip =
                static_cast<unsigned>(idx / data_bits_per_chip);
            const std::uint64_t bit = idx % data_bits_per_chip;
            chipStore[chip][bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        } else {
            const std::uint64_t cidx = idx - data_bits;
            const unsigned chip =
                static_cast<unsigned>(cidx / code_bits_per_chip);
            const std::uint64_t bit = cidx % code_bits_per_chip;
            codeStore[chip][bit / vlewCodec.r()].flip(
                static_cast<std::size_t>(bit % vlewCodec.r()));
        }
        ++flipped;
    }
    return flipped;
}

void
PmRank::failChip(unsigned chip, Rng &rng)
{
    NVCK_ASSERT(chip <= dataChips, "chip out of range");
    for (auto &byte : chipStore[chip])
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    for (auto &code : codeStore[chip])
        code.randomize(rng);
}

void
PmRank::disableBlock(unsigned block)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    if (disabled[block])
        return;
    // Logically replace the block's bits with zeros in every chip's
    // VLEW and in the RS word (Section V-E).
    std::uint8_t zeros[blockBytes] = {};
    writeBlock(block, zeros);
    for (unsigned chip = 0; chip <= dataChips; ++chip) {
        std::memset(chipBeat(chip, block), 0, chipBeatBytes);
        std::memset(goldenBeat(chip, block), 0, chipBeatBytes);
    }
    disabled[block] = true;
}

bool
PmRank::isDisabled(unsigned block) const
{
    return disabled.at(block);
}

void
PmRank::goldenBlock(unsigned block, std::uint8_t *out) const
{
    for (unsigned c = 0; c < dataChips; ++c)
        std::memcpy(out + c * chipBeatBytes, goldenBeat(c, block),
                    chipBeatBytes);
}

bool
PmRank::isPristine() const
{
    return chipStore == goldenStore && codeStore == goldenCode;
}

double
PmRank::scrubSeconds(double capacity_bytes, double bus_bytes_per_sec)
{
    const ProposalParams p;
    return capacity_bytes * (1.0 + p.totalStorageCost()) /
           bus_bytes_per_sec;
}

} // namespace nvck
