#include "scrub.hh"

#include <algorithm>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"
#include "common/threadpool.hh"
#include "common/types.hh"

namespace nvck {

void
ScrubEngine::forEachWord(
    std::size_t words, const std::function<void(std::size_t)> &fn) const
{
    ThreadPool &pool = opts.pool ? *opts.pool : ThreadPool::global();
    const std::size_t batch = std::max(1u, opts.batchWords);
    const std::size_t batches = (words + batch - 1) / batch;
    pool.parallelFor(batches, [&](std::size_t b) {
        const std::size_t lo = b * batch;
        const std::size_t hi = std::min(words, lo + batch);
        for (std::size_t w = lo; w < hi; ++w)
            fn(w);
    });
}

ScrubSweepStats
ScrubEngine::tally(const std::vector<ScrubWordResult> &outcomes)
{
    ScrubSweepStats stats;
    stats.wordsScanned = outcomes.size();
    for (const auto &o : outcomes) {
        if (o.corrections < 0) {
            ++stats.wordsDirty;
            ++stats.wordsUncorrectable;
        } else if (o.corrections > 0) {
            ++stats.wordsDirty;
            stats.bitsCorrected +=
                static_cast<std::uint64_t>(o.corrections);
        }
    }
    return stats;
}

ScrubWordResult
ScrubEngine::scrubPmWord(PmRank &rank, unsigned chip,
                         unsigned vlew) const
{
    const BchCodec &codec = rank.vlewCodec;
    const unsigned r = codec.r();
    const unsigned span_bytes = rank.geom.vlewDataBytes;
    std::uint8_t *data =
        &rank.chipStore[chip][static_cast<std::size_t>(vlew) *
                              span_bytes];
    BitVec &code = rank.codeStore[chip][vlew];

    // One streaming pass over the stored bytes classifies the word:
    // [code | data] absorbed from the highest coefficient down.
    BchResidue res;
    codec.residueStart(res);
    codec.residueAbsorbBytes(res, data, span_bytes);
    codec.residueAbsorbBits(res, code.raw().data(), r);

    ScrubWordResult out;
    if (codec.residueIsZero(res))
        return out; // clean: no syndrome work at all

    const auto dec = codec.solveFromResidue(res, opts.decodePath);
    if (dec.status == DecodeStatus::Uncorrectable) {
        out.corrections = -1;
        return out;
    }
    // Corrected: flip the bits in place instead of re-materialising
    // the codeword, then re-assert stuck cells exactly like storeVlew.
    for (const std::uint32_t pos : dec.positions) {
        if (pos < r) {
            code.flip(pos);
        } else {
            const std::uint32_t off = pos - r;
            data[off >> 3] ^=
                static_cast<std::uint8_t>(1u << (off & 7));
            out.changedBlocks |= 1ull
                                 << (off / (8 * chipBeatBytes));
        }
    }
    out.corrections = static_cast<int>(dec.corrections);
    rank.enforceStuck(chip,
                      static_cast<std::uint64_t>(vlew) * span_bytes,
                      static_cast<std::uint64_t>(vlew + 1) *
                          span_bytes);
    return out;
}

std::vector<ScrubWordResult>
ScrubEngine::sweep(PmRank &rank) const
{
    const std::size_t words =
        static_cast<std::size_t>(rank.chips()) * rank.numVlews;
    std::vector<ScrubWordResult> out(words);
    // Each word touches only its own span/code storage and its own
    // outcome slot, so batches commute and any worker count produces
    // bit-identical results.
    forEachWord(words, [&](std::size_t w) {
        out[w] = scrubPmWord(
            rank, static_cast<unsigned>(w / rank.numVlews),
            static_cast<unsigned>(w % rank.numVlews));
    });
    return out;
}

std::vector<ScrubWordResult>
ScrubEngine::sweepReference(PmRank &rank) const
{
    const unsigned r = rank.vlewCodec.r();
    const std::size_t words =
        static_cast<std::size_t>(rank.chips()) * rank.numVlews;
    std::vector<ScrubWordResult> out(words);
    for (std::size_t w = 0; w < words; ++w) {
        const unsigned chip = static_cast<unsigned>(w / rank.numVlews);
        const unsigned vlew = static_cast<unsigned>(w % rank.numVlews);
        BitVec cw = rank.assembleVlew(chip, vlew);
        const auto dec = rank.vlewCodec.decode(cw);
        if (dec.status == DecodeStatus::Uncorrectable) {
            out[w].corrections = -1;
            continue;
        }
        if (dec.status == DecodeStatus::Clean)
            continue;
        rank.storeVlew(chip, vlew, cw);
        out[w].corrections = static_cast<int>(dec.corrections);
        for (const std::uint32_t pos : dec.positions) {
            if (pos >= r)
                out[w].changedBlocks |=
                    1ull << ((pos - r) / (8 * chipBeatBytes));
        }
    }
    return out;
}

ScrubWordResult
ScrubEngine::scrubDegradedWord(DegradedRank &rank, unsigned vlew) const
{
    ScrubWordResult out;
    if (rank.poisonedVlew[vlew])
        return out; // the caller owns poisoning policy

    const BchCodec &codec = rank.vlewCodec;
    const unsigned r = codec.r();
    const unsigned span_bytes = rank.geom.vlewDataBytes;
    std::uint8_t *data =
        &rank.store[static_cast<std::size_t>(vlew) * span_bytes];
    BitVec &code = rank.codeStore[vlew];

    BchResidue res;
    codec.residueStart(res);
    codec.residueAbsorbBytes(res, data, span_bytes);
    codec.residueAbsorbBits(res, code.raw().data(), r);
    if (codec.residueIsZero(res))
        return out;

    const auto dec = codec.solveFromResidue(res, opts.decodePath);
    if (dec.status == DecodeStatus::Uncorrectable) {
        out.corrections = -1;
        return out;
    }
    for (const std::uint32_t pos : dec.positions) {
        if (pos < r) {
            code.flip(pos);
        } else {
            const std::uint32_t off = pos - r;
            data[off >> 3] ^=
                static_cast<std::uint8_t>(1u << (off & 7));
            out.changedBlocks |= 1ull << (off / (8 * blockBytes));
        }
    }
    out.corrections = static_cast<int>(dec.corrections);
    return out;
}

std::vector<ScrubWordResult>
ScrubEngine::sweep(DegradedRank &rank) const
{
    std::vector<ScrubWordResult> out(rank.numVlews);
    forEachWord(rank.numVlews, [&](std::size_t w) {
        out[w] =
            scrubDegradedWord(rank, static_cast<unsigned>(w));
    });
    return out;
}

std::vector<ScrubWordResult>
ScrubEngine::sweepReference(DegradedRank &rank) const
{
    const unsigned r = rank.vlewCodec.r();
    std::vector<ScrubWordResult> out(rank.numVlews);
    for (unsigned v = 0; v < rank.numVlews; ++v) {
        if (rank.poisonedVlew[v])
            continue;
        BitVec cw = rank.assembleVlew(v);
        const auto dec = rank.vlewCodec.decode(cw);
        if (dec.status == DecodeStatus::Uncorrectable) {
            out[v].corrections = -1;
            continue;
        }
        if (dec.status == DecodeStatus::Clean)
            continue;
        rank.storeVlew(v, cw);
        out[v].corrections = static_cast<int>(dec.corrections);
        for (const std::uint32_t pos : dec.positions) {
            if (pos >= r)
                out[v].changedBlocks |=
                    1ull << ((pos - r) / (8 * blockBytes));
        }
    }
    return out;
}

} // namespace nvck
