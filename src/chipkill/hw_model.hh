/**
 * @file
 * Hardware cost estimates from Section V-E: area and latency of the
 * in-NVRAM BCH encoder (Fig 13), the processor-side multi-byte RS
 * decoder, and the 22-EC VLEW BCH decoder, plus the per-access rates at
 * which each engages. These are the paper's published model numbers
 * (CACTI/ITRS-derived), reproduced for the bench harness.
 */

#ifndef NVCK_CHIPKILL_HW_MODEL_HH
#define NVCK_CHIPKILL_HW_MODEL_HH

namespace nvck {

/** Section V-E hardware estimates. */
struct HwEstimates
{
    /** In-chip 22-EC BCH encoder over 256B (XOR-tree, two metal layers). */
    double bchEncoderAreaMm2 = 0.1;
    double bchEncoderLatencyNs = 1.6;

    /** Processor-side RS(72,64) multi-byte-error decoder. */
    double rsDecoderAreaMm2 = 0.002;
    double rsDecoderLatencyNs = 45.0;

    /** Processor-side 22-EC VLEW BCH decoder. */
    double bchDecoderAreaMm2 = 0.05;
    double bchDecoderLatencyNs = 200.0;
};

/**
 * Engagement rates at 2e-4 runtime RBER (Section V-E): 1/200 of reads
 * need multi-error RS correction; 1.8/10000 need BCH correction.
 */
struct EngagementRates
{
    double rsMultiErrorPerRead = 1.0 / 200.0;
    double bchCorrectionPerRead = 1.8 / 10000.0;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_HW_MODEL_HH
