/**
 * @file
 * UE taxonomy shared by every recovery path in the chipkill layer.
 *
 * The recovery entry points (runtime reads, boot scrub, crash
 * recovery, degraded-mode scrub) used to collapse their verdicts into
 * booleans, which loses the distinction the paper's SDC analysis rests
 * on: *how* a word was resolved decides whether the 1e-17 silent-data-
 * corruption gate held. RecoveryOutcome names the four verdicts and
 * RecoveryCounters accumulates them for surfacing through
 * common/stats.
 */

#ifndef NVCK_CHIPKILL_RECOVERY_HH
#define NVCK_CHIPKILL_RECOVERY_HH

#include "common/stats.hh"

namespace nvck {

/** How a recovery attempt (read, scrub, rebuild) resolved. */
enum class RecoveryOutcome
{
    /** In-tier ECC correction: RS accepted within threshold, or a
     *  clean/VLEW-corrected scrub pass. */
    Corrected,
    /** The RS tier could not (or was not allowed to) resolve the word;
     *  the VLEW tier — bit correction or erasure rebuild — did. */
    FellBackToVlew,
    /** Uncorrectable, and *reported* as such: the block is flagged UE
     *  (poisoned) rather than returning silent garbage. */
    DetectedUE,
    /** The RS tier proposed more corrections than the acceptance
     *  threshold allows — exactly the words where accepting would risk
     *  a miscorrection (SDC) — and was rejected; the VLEW tier then
     *  resolved the word. */
    MiscorrectionRisk,
};

/** Human-readable outcome name. */
const char *recoveryOutcomeName(RecoveryOutcome outcome);

/** Per-component tallies of recovery verdicts. */
struct RecoveryCounters
{
    Counter corrected;
    Counter fellBackToVlew;
    Counter detectedUe;
    Counter miscorrectionRisk;

    /** Bump the counter matching @p outcome. */
    void count(RecoveryOutcome outcome);

    /** Record "recovery.*" scalars into @p group for dumping. */
    void record(StatGroup &group) const;

    void reset();
};

} // namespace nvck

#endif // NVCK_CHIPKILL_RECOVERY_HH
