/**
 * @file
 * Section V-E: operating a rank after a permanent chip failure.
 *
 * A permanently dead chip would force frequent VLEW corrections (and
 * with it high overheads), so the paper offers two remedies:
 *
 *  1. retire the affected memory after migrating its data elsewhere
 *     (what most servers do today), or
 *  2. remap the failed chip's contents onto the ECC (parity) chip,
 *     giving up the per-block RS bits, and dynamically *re-encode each
 *     VLEW from 256B of data striped across all surviving chips*: the
 *     reconfigured VLEW spans 256B/64B = 4 blocks, so correcting one
 *     block costs only four regular reads instead of 36. Length and
 *     strength stay the same, so no extra storage is needed.
 *
 * DegradedRank implements remedy 2 as a standalone bit-accurate model:
 * eight surviving chips hold data (the old parity chip now stores the
 * dead chip's remapped contents), and each VLEW covers four whole
 * blocks across the rank.
 */

#ifndef NVCK_CHIPKILL_DEGRADED_HH
#define NVCK_CHIPKILL_DEGRADED_HH

#include <cstdint>
#include <vector>

#include "chipkill/recovery.hh"
#include "common/bitvec.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "ecc/bch.hh"
#include "ecc/code_params.hh"

namespace nvck {

class PmRank;

/** Read outcome in degraded mode. */
struct DegradedReadResult
{
    bool usedVlew = false;    //!< needed VLEW correction
    unsigned corrections = 0; //!< bit corrections applied
    bool dataCorrect = false;
    bool failed = false;
    /** Corrected for clean reads, FellBackToVlew when the striped VLEW
     *  had to fix bits, DetectedUE when the read failed. */
    RecoveryOutcome outcome = RecoveryOutcome::Corrected;
};

/** Persistent image of a degraded rank (see RankSnapshot). */
struct DegradedSnapshot
{
    std::vector<std::uint8_t> store;
    std::vector<std::uint8_t> golden;
    std::vector<BitVec> codeStore;
    std::vector<BitVec> goldenCode;
    std::vector<bool> poisonedVlew;
};

/** A rank running without per-block RS protection after chip loss. */
class DegradedRank
{
  public:
    /**
     * @param num_blocks capacity in 64B blocks (multiple of 4).
     * @param params geometry; the VLEW length/strength are unchanged.
     */
    explicit DegradedRank(unsigned num_blocks,
                          const ProposalParams &params = ProposalParams{});

    /** Random golden content + encode the striped VLEWs. */
    void initialize(Rng &rng);

    /**
     * Build a degraded rank from a healthy one that just lost
     * @p failed_chip: the survivors' (already scrubbed) contents are
     * carried over and the parity chip's storage is reused for the
     * dead chip's rebuilt data.
     */
    static DegradedRank takeOver(const PmRank &healthy,
                                 unsigned failed_chip);

    unsigned blocks() const { return numBlocks; }

    /** Blocks spanned by one reconfigured VLEW (4). */
    unsigned
    blocksPerVlew() const
    {
        return geom.vlewDataBytes / blockBytes;
    }

    /** Write through the XOR-sum path (code bits updated linearly). */
    void writeBlock(unsigned block, const std::uint8_t *new_data);

    /**
     * Apply a power-cut-torn write: the data delta reached the media
     * but the linear code-bit delta did so only when @p code_applied
     * (the EUR drained before the cut). Golden copies record the full
     * intent; recovery (scrub) decides what the media settles on.
     */
    void applyTornWrite(unsigned block, const std::uint8_t *new_data,
                        bool code_applied);

    /** Read with VLEW correction (no RS tier anymore). */
    DegradedReadResult readBlock(unsigned block, std::uint8_t *out);

    /**
     * Scrub every striped VLEW. Corrected when every span decoded
     * (rolling torn writes back to the old data where the delta fits
     * the BCH budget); DetectedUE when any span was uncorrectable —
     * those spans are zeroed and poisoned rather than left as silent
     * garbage. Ends by re-syncing the golden copies to the surviving
     * contents, which are the ground truth from here on.
     */
    RecoveryOutcome scrub();

    /** Whether @p block sits in a span scrub() declared lost. */
    bool isPoisoned(unsigned block) const;

    /**
     * Declare striped VLEW @p vlew lost: zero its data and code and
     * mark it a reported UE, exactly as scrub() does for spans it
     * cannot decode. Used by the online failover when a source block
     * was already a standing UE on the healthy rank — the loss is
     * carried over explicitly rather than migrated as garbage.
     */
    void poisonSpan(unsigned vlew);

    /** Number of striped VLEW spans standing as reported UEs. */
    unsigned poisonedSpans() const;

    /** Capture / reinstate the persistent image. */
    DegradedSnapshot snapshot() const;
    void restore(const DegradedSnapshot &snap);

    const RecoveryCounters &
    recoveryCounters() const
    {
        return recCounters;
    }

    void
    recordRecoveryStats(StatGroup &group) const
    {
        recCounters.record(group);
    }

    void resetRecoveryStats() { recCounters.reset(); }

    /** Inject random bit errors into data + code storage. */
    std::uint64_t injectErrors(Rng &rng, double rber);

    /** Extra blocks fetched per VLEW correction (3 + code blocks). */
    unsigned correctionFetchBlocks() const;

    bool isPristine() const;
    void goldenBlock(unsigned block, std::uint8_t *out) const;

  private:
    /** The batched scrub engine streams the stores directly. */
    friend class ScrubEngine;

    BitVec assembleVlew(unsigned vlew) const;
    void storeVlew(unsigned vlew, const BitVec &cw);

    ProposalParams geom;
    unsigned numBlocks;
    unsigned numVlews;
    BchCodec vlewCodec;
    /** Block-major data: numBlocks x 64B. */
    std::vector<std::uint8_t> store;
    std::vector<std::uint8_t> golden;
    /** Striped VLEW code bits. */
    std::vector<BitVec> codeStore;
    std::vector<BitVec> goldenCode;
    /** Spans scrub() declared lost (zeroed + reported UE). */
    std::vector<bool> poisonedVlew;
    RecoveryCounters recCounters;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_DEGRADED_HH
