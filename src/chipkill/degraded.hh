/**
 * @file
 * Section V-E: operating a rank after a permanent chip failure.
 *
 * A permanently dead chip would force frequent VLEW corrections (and
 * with it high overheads), so the paper offers two remedies:
 *
 *  1. retire the affected memory after migrating its data elsewhere
 *     (what most servers do today), or
 *  2. remap the failed chip's contents onto the ECC (parity) chip,
 *     giving up the per-block RS bits, and dynamically *re-encode each
 *     VLEW from 256B of data striped across all surviving chips*: the
 *     reconfigured VLEW spans 256B/64B = 4 blocks, so correcting one
 *     block costs only four regular reads instead of 36. Length and
 *     strength stay the same, so no extra storage is needed.
 *
 * DegradedRank implements remedy 2 as a standalone bit-accurate model:
 * eight surviving chips hold data (the old parity chip now stores the
 * dead chip's remapped contents), and each VLEW covers four whole
 * blocks across the rank.
 */

#ifndef NVCK_CHIPKILL_DEGRADED_HH
#define NVCK_CHIPKILL_DEGRADED_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "ecc/bch.hh"
#include "ecc/code_params.hh"

namespace nvck {

class PmRank;

/** Read outcome in degraded mode. */
struct DegradedReadResult
{
    bool usedVlew = false;    //!< needed VLEW correction
    unsigned corrections = 0; //!< bit corrections applied
    bool dataCorrect = false;
    bool failed = false;
};

/** A rank running without per-block RS protection after chip loss. */
class DegradedRank
{
  public:
    /**
     * @param num_blocks capacity in 64B blocks (multiple of 4).
     * @param params geometry; the VLEW length/strength are unchanged.
     */
    explicit DegradedRank(unsigned num_blocks,
                          const ProposalParams &params = ProposalParams{});

    /** Random golden content + encode the striped VLEWs. */
    void initialize(Rng &rng);

    /**
     * Build a degraded rank from a healthy one that just lost
     * @p failed_chip: the survivors' (already scrubbed) contents are
     * carried over and the parity chip's storage is reused for the
     * dead chip's rebuilt data.
     */
    static DegradedRank takeOver(const PmRank &healthy,
                                 unsigned failed_chip);

    unsigned blocks() const { return numBlocks; }

    /** Blocks spanned by one reconfigured VLEW (4). */
    unsigned
    blocksPerVlew() const
    {
        return geom.vlewDataBytes / blockBytes;
    }

    /** Write through the XOR-sum path (code bits updated linearly). */
    void writeBlock(unsigned block, const std::uint8_t *new_data);

    /** Read with VLEW correction (no RS tier anymore). */
    DegradedReadResult readBlock(unsigned block, std::uint8_t *out);

    /** Scrub every striped VLEW. */
    bool scrub();

    /** Inject random bit errors into data + code storage. */
    std::uint64_t injectErrors(Rng &rng, double rber);

    /** Extra blocks fetched per VLEW correction (3 + code blocks). */
    unsigned correctionFetchBlocks() const;

    bool isPristine() const;
    void goldenBlock(unsigned block, std::uint8_t *out) const;

  private:
    BitVec assembleVlew(unsigned vlew) const;
    void storeVlew(unsigned vlew, const BitVec &cw);

    ProposalParams geom;
    unsigned numBlocks;
    unsigned numVlews;
    BchCodec vlewCodec;
    /** Block-major data: numBlocks x 64B. */
    std::vector<std::uint8_t> store;
    std::vector<std::uint8_t> golden;
    /** Striped VLEW code bits. */
    std::vector<BitVec> codeStore;
    std::vector<BitVec> goldenCode;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_DEGRADED_HH
