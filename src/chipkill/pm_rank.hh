/**
 * @file
 * Bit-accurate functional model of one persistent-memory rank under the
 * paper's proposed protection layout (Fig 6):
 *
 *  - nine chips operate in lockstep: eight data chips plus one parity
 *    chip; each chip contributes 8B to every 64B block;
 *  - within each chip, every 256B of data in a row shares one 22-EC
 *    BCH VLEW whose 33B of code bits live in the same row;
 *  - the parity chip stores eight RS(72,64) check bytes per block (its
 *    contents are themselves VLEW-protected like any chip).
 *
 * The model stores real bits, injects real errors, and runs the real
 * codecs, implementing the paper's three operational paths:
 *
 *  - writes (Section V-D): the controller sends the bitwise XOR of old
 *    and new data; each chip recovers the new data by XORing with its
 *    stored old data and applies the linear BCH/RS code-bit delta.
 *    Pre-existing cell errors propagate one-to-one and never spread.
 *  - boot scrub (Section V-B): every VLEW is fetched and corrected; an
 *    uncorrectable VLEW marks a failed chip, which is rebuilt through
 *    RS erasure correction (or parity recomputation for the parity
 *    chip).
 *  - runtime reads (Section V-C, Fig 9): the per-block RS code
 *    opportunistically corrects bit errors; more than `threshold`
 *    corrections rejects the result and falls back to VLEW correction,
 *    preserving the RS budget for chip failures.
 */

#ifndef NVCK_CHIPKILL_PM_RANK_HH
#define NVCK_CHIPKILL_PM_RANK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/code_params.hh"
#include "common/types.hh"
#include "ecc/rs.hh"

namespace nvck {

/** How a runtime read was resolved (Fig 9). */
enum class ReadPath
{
    Clean,         //!< zero RS syndrome
    RsAccepted,    //!< RS correction within the acceptance threshold
    VlewFallback,  //!< RS rejected; VLEWs corrected the bit errors
    ChipRecovered, //!< VLEW flagged a dead chip; RS erasure-corrected
    Failed,        //!< uncorrectable
};

/** Result of a runtime block read. */
struct BlockReadResult
{
    ReadPath path = ReadPath::Clean;
    unsigned rsCorrections = 0;
    unsigned vlewBitCorrections = 0;
    bool dataCorrect = false; //!< matches the golden copy
};

/** Outcome of a boot-time scrub. */
struct ScrubReport
{
    std::uint64_t vlewsScanned = 0;
    std::uint64_t vlewsWithErrors = 0;
    std::uint64_t bitsCorrected = 0;
    unsigned chipsRecovered = 0;
    bool parityChipRebuilt = false;
    bool uncorrectable = false;
};

/** The rank. */
class PmRank
{
  public:
    /**
     * @param num_blocks Capacity in 64B blocks; must be a multiple of
     *        the VLEW span (32).
     * @param params Geometry (defaults to the paper's).
     */
    explicit PmRank(unsigned num_blocks,
                    const ProposalParams &params = ProposalParams{});

    /** Fill with random golden content and encode all ECC. */
    void initialize(Rng &rng);

    unsigned blocks() const { return numBlocks; }
    unsigned chips() const { return dataChips + 1; }
    unsigned vlewsPerChip() const { return numVlews; }

    /**
     * Write a block through the paper's XOR-sum path: the argument is
     * the new 64B value; the model forms the XOR against the golden old
     * value (the LLC-held OMV) and lets each chip update data and code
     * bits internally.
     */
    void writeBlock(unsigned block, const std::uint8_t *new_data);

    /**
     * Runtime read with opportunistic RS correction and VLEW fallback.
     * @param out receives the corrected 64B.
     * @param threshold max accepted RS corrections (2 in the paper).
     */
    BlockReadResult readBlock(unsigned block, std::uint8_t *out,
                              unsigned threshold = 2);

    /** Boot-time scrub of every VLEW, with chip-failure recovery. */
    ScrubReport bootScrub();

    /** Flip each stored bit (data and code) with probability @p rber. */
    std::uint64_t injectErrors(Rng &rng, double rber);

    /** Garble an entire chip (0..7 data, 8 = parity). */
    void failChip(unsigned chip, Rng &rng);

    /**
     * Disable a worn-out block (Section V-E): logically zero its
     * contribution to each chip's VLEW and update code bits.
     */
    void disableBlock(unsigned block);
    bool isDisabled(unsigned block) const;

    /**
     * Mark a data cell permanently stuck (wear-out model, Section V-E):
     * the stored bit reads back as @p value no matter what is written.
     */
    void setStuckBit(unsigned chip, std::uint64_t byte_index,
                     unsigned bit, bool value);

    /**
     * Write-and-verify [86]: perform the write, re-read the raw stored
     * beats, and return the number of cells that failed to take the
     * intended value — the paper's mechanism for identifying worn-out
     * blocks to disable.
     */
    unsigned writeVerify(unsigned block, const std::uint8_t *new_data);

    /**
     * Model I/O transmission errors on the memory bus (paper footnote
     * 4): each transmitted beat bit flips with probability @p ber.
     * With Write-CRC enabled (DDR4-style, crc.hh) the chip detects the
     * corruption and requests a retransmit; without it the corrupted
     * sum is silently committed.
     */
    void setBusFaultModel(double ber, bool crc_enabled,
                          std::uint64_t seed = 1);

    /** Retransmits triggered by Write-CRC so far. */
    std::uint64_t crcRetries() const { return busRetries; }

    /** Golden (error-free) copy of a block, for verification. */
    void goldenBlock(unsigned block, std::uint8_t *out) const;

    /** True when all stored bits and code bits are error-free. */
    bool isPristine() const;

    /**
     * Estimated boot-scrub wall time for @p capacity_bytes of memory
     * on a channel moving @p bus_bytes_per_sec (Section V-B: <1.5min
     * per terabyte).
     */
    static double scrubSeconds(double capacity_bytes,
                               double bus_bytes_per_sec);

    const ProposalParams &params() const { return geom; }

  private:
    /** Stored (possibly erroneous) 8B beat of @p chip at @p block. */
    std::uint8_t *chipBeat(unsigned chip, unsigned block);
    const std::uint8_t *chipBeat(unsigned chip, unsigned block) const;

    /** Golden 8B beat. */
    std::uint8_t *goldenBeat(unsigned chip, unsigned block);
    const std::uint8_t *goldenBeat(unsigned chip, unsigned block) const;

    /** Build the VLEW codeword [code|data] for (chip, vlew) from store. */
    BitVec assembleVlew(unsigned chip, unsigned vlew) const;
    /** Write a (corrected) VLEW codeword back to the store. */
    void storeVlew(unsigned chip, unsigned vlew, const BitVec &cw);

    /** Assemble the stored RS codeword for a block. */
    std::vector<GfElem> assembleRsWord(unsigned block) const;

    /** Recompute golden RS check bytes for a block into the golden
     *  parity store. */
    void encodeGoldenRs(unsigned block);

    /**
     * Apply an 8-byte delta to a chip beat and its VLEW code bits.
     * @param delta8 what the chip actually received and applied.
     * @param intended8 what the controller meant to send (golden
     *        tracking); null means identical to delta8.
     */
    void applyChipDelta(unsigned chip, unsigned block,
                        const std::uint8_t *delta8,
                        const std::uint8_t *intended8 = nullptr);

    /** Transmit a beat across the faulty bus (with CRC retries). */
    void transmit(std::uint8_t *beat);

    /** Correct (chip, vlew) in place; returns corrections or -1. */
    int correctVlew(unsigned chip, unsigned vlew);

    /** Re-apply stuck cells to a chip's stored bytes in [lo, hi). */
    void enforceStuck(unsigned chip, std::uint64_t lo,
                      std::uint64_t hi);

    /** Rebuild a dead data chip via RS erasure correction. */
    bool rebuildDataChip(unsigned chip, ScrubReport &report);
    /** Recompute the parity chip from (corrected) data chips. */
    void rebuildParityChip();

    ProposalParams geom;
    unsigned numBlocks;
    unsigned dataChips;
    unsigned numVlews;
    unsigned blocksPerVlew;

    BchCodec vlewCodec;
    RsCodec rsCodec;

    /** chipStore[c]: numBlocks * 8 bytes (parity chip = RS bytes). */
    std::vector<std::vector<std::uint8_t>> chipStore;
    /** VLEW code bits: [chip][vlew] -> r-bit vector. */
    std::vector<std::vector<BitVec>> codeStore;
    /** Golden copies (no errors) for verification and OMV emulation. */
    std::vector<std::vector<std::uint8_t>> goldenStore;
    std::vector<std::vector<BitVec>> goldenCode;
    std::vector<bool> disabled;
    /** Per-chip stuck-cell masks and stuck values (data bytes). */
    std::vector<std::vector<std::uint8_t>> stuckMask;
    std::vector<std::vector<std::uint8_t>> stuckVal;
    /** Bus fault model. */
    double busBer = 0.0;
    bool busCrc = true;
    Rng busRng{1};
    std::uint64_t busRetries = 0;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_PM_RANK_HH
