/**
 * @file
 * Bit-accurate functional model of one persistent-memory rank under the
 * paper's proposed protection layout (Fig 6):
 *
 *  - nine chips operate in lockstep: eight data chips plus one parity
 *    chip; each chip contributes 8B to every 64B block;
 *  - within each chip, every 256B of data in a row shares one 22-EC
 *    BCH VLEW whose 33B of code bits live in the same row;
 *  - the parity chip stores eight RS(72,64) check bytes per block (its
 *    contents are themselves VLEW-protected like any chip).
 *
 * The model stores real bits, injects real errors, and runs the real
 * codecs, implementing the paper's three operational paths:
 *
 *  - writes (Section V-D): the controller sends the bitwise XOR of old
 *    and new data; each chip recovers the new data by XORing with its
 *    stored old data and applies the linear BCH/RS code-bit delta.
 *    Pre-existing cell errors propagate one-to-one and never spread.
 *  - boot scrub (Section V-B): every VLEW is fetched and corrected; an
 *    uncorrectable VLEW marks a failed chip, which is rebuilt through
 *    RS erasure correction (or parity recomputation for the parity
 *    chip).
 *  - runtime reads (Section V-C, Fig 9): the per-block RS code
 *    opportunistically corrects bit errors; more than `threshold`
 *    corrections rejects the result and falls back to VLEW correction,
 *    preserving the RS budget for chip failures.
 */

#ifndef NVCK_CHIPKILL_PM_RANK_HH
#define NVCK_CHIPKILL_PM_RANK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "chipkill/recovery.hh"
#include "common/bitvec.hh"
#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/code_params.hh"
#include "common/types.hh"
#include "ecc/rs.hh"

namespace nvck {

/** How a runtime read was resolved (Fig 9). */
enum class ReadPath
{
    Clean,         //!< zero RS syndrome
    RsAccepted,    //!< RS correction within the acceptance threshold
    VlewFallback,  //!< RS rejected; VLEWs corrected the bit errors
    ChipRecovered, //!< VLEW flagged a dead chip; RS erasure-corrected
    Failed,        //!< uncorrectable
};

/** Result of a runtime block read. */
struct BlockReadResult
{
    ReadPath path = ReadPath::Clean;
    /** Recovery verdict: Corrected for Clean/RsAccepted reads,
     *  MiscorrectionRisk when the RS tier proposed more than
     *  `threshold` corrections and the VLEW tier saved the word,
     *  FellBackToVlew for the other fallback reads, DetectedUE when
     *  the read failed (or hit a poisoned block). */
    RecoveryOutcome outcome = RecoveryOutcome::Corrected;
    unsigned rsCorrections = 0;
    unsigned vlewBitCorrections = 0;
    bool dataCorrect = false; //!< matches the golden copy
    /**
     * Per-chip attribution of the corrections (bit c = chip c, bit
     * chips()-1 = the parity chip): which chips had symbols or bits
     * corrected, and which chips' VLEWs were uncorrectable and had to
     * be erasure-rebuilt. The runtime RAS engine's health ledger is
     * fed from exactly these masks — a real decoder knows the
     * corrected symbol positions, so per-chip accounting costs
     * nothing extra.
     */
    std::uint16_t chipCorrectionMask = 0;
    std::uint16_t chipErasureMask = 0;
};

/** Outcome of a boot-time scrub. */
struct ScrubReport
{
    std::uint64_t vlewsScanned = 0;
    std::uint64_t vlewsWithErrors = 0;
    std::uint64_t bitsCorrected = 0;
    unsigned chipsRecovered = 0;
    bool parityChipRebuilt = false;
    bool uncorrectable = false;
};

/**
 * Persistent-media image of a rank: everything that survives a power
 * cut (chip data arrays, per-chip BCH code regions, golden references,
 * block health flags). Deliberately excludes all volatile state — the
 * LLC-held OMVs and the chips' EUR registerfiles live in the timing
 * model and are dropped by a crash, never snapshotted.
 */
struct RankSnapshot
{
    std::vector<std::vector<std::uint8_t>> chipStore;
    std::vector<std::vector<BitVec>> codeStore;
    std::vector<std::vector<std::uint8_t>> goldenStore;
    std::vector<std::vector<BitVec>> goldenCode;
    std::vector<std::vector<std::uint8_t>> stuckMask;
    std::vector<std::vector<std::uint8_t>> stuckVal;
    std::vector<bool> disabled;
    std::vector<bool> poisoned;
};

/** What crashRecovery() did to bring the rank back to consistency. */
struct CrashRecoveryReport
{
    std::uint64_t vlewsScanned = 0;
    std::uint64_t vlewsCorrected = 0; //!< VLEWs needing bit fixes
    std::uint64_t bitsCorrected = 0;
    std::uint64_t blocksRsResolved = 0;      //!< bounded RS decode
    std::uint64_t blocksErasureResolved = 0; //!< one-bad-chip rebuild
    std::uint64_t miscorrectionRejects = 0;  //!< >threshold proposals
    /** Chips with every VLEW uncorrectable, treated as failed. */
    std::vector<unsigned> deadChips;
    /** Blocks declared (and reported) uncorrectable: poisoned. */
    std::vector<unsigned> ueBlocks;
};

/** The rank. */
class PmRank
{
  public:
    /**
     * @param num_blocks Capacity in 64B blocks; must be a multiple of
     *        the VLEW span (32).
     * @param params Geometry (defaults to the paper's).
     */
    explicit PmRank(unsigned num_blocks,
                    const ProposalParams &params = ProposalParams{});

    /** Fill with random golden content and encode all ECC. */
    void initialize(Rng &rng);

    unsigned blocks() const { return numBlocks; }
    unsigned chips() const { return dataChips + 1; }
    unsigned vlewsPerChip() const { return numVlews; }

    /**
     * Write a block through the paper's XOR-sum path: the argument is
     * the new 64B value; the model forms the XOR against the golden old
     * value (the LLC-held OMV) and lets each chip update data and code
     * bits internally.
     */
    void writeBlock(unsigned block, const std::uint8_t *new_data);

    /**
     * Crash-torn variant of writeBlock() for the CrashInjector: the
     * power fails mid-write, so only the chips selected by
     * @p data_mask (bit c = chip c; bit chips()-1 = the parity chip)
     * latched and applied the XOR-summed data delta, and of those only
     * the chips in @p code_mask drained the code-bit delta out of
     * their EUR before the cut. The golden copy tracks the full
     * intended value, exactly like writeBlock() — recovery decides
     * what the media actually holds.
     *
     * Physical invariant (Section V-D): data deltas land in the chips
     * at burst time, code deltas only at row close, so a partial burst
     * implies nothing has drained yet. @p code_mask must therefore be
     * zero unless @p data_mask covers every chip, and must always be a
     * subset of @p data_mask.
     */
    void applyTornWrite(unsigned block, const std::uint8_t *new_data,
                        std::uint16_t data_mask,
                        std::uint16_t code_mask);

    /**
     * Retire the coalesced EUR code-bit delta for @p block: bring the
     * media code bits of the chips in @p chip_mask from the state
     * described by @p settled_data (the last value whose code fully
     * drained — the pre-write image for a first write) up to the
     * current write intent. This is the second half of the two-phase
     * write the timing layer performs: data bursts land at burst time
     * (applyTornWrite with an empty code mask), code deltas drain at
     * row close — possibly much later, possibly covering several
     * coalesced bursts in one register, and possibly torn per chip by
     * a power cut mid-drain (@p chip_mask a strict subset).
     *
     * The golden code is not touched: it has tracked the full write
     * intent since burst time. Draining every chip makes the block's
     * media code consistent with its (new) data again.
     */
    void drainCodeBits(unsigned block, const std::uint8_t *settled_data,
                       std::uint16_t chip_mask = 0xffff);

    /**
     * Runtime read with opportunistic RS correction and VLEW fallback.
     * @param out receives the corrected 64B.
     * @param threshold max accepted RS corrections (2 in the paper).
     */
    BlockReadResult readBlock(unsigned block, std::uint8_t *out,
                              unsigned threshold = 2);

    /** Boot-time scrub of every VLEW, with chip-failure recovery. */
    ScrubReport bootScrub();

    /**
     * Post-crash recovery (Section V-B applied to torn writes): scrub
     * every VLEW, then verify every block's RS word, resolving torn
     * blocks to a *consistent* value — the old data (stale-code chips
     * rolled back by their VLEWs), the new data (all chips applied),
     * or an explicit poisoned UE. The pass never emits a mixed
     * old/new word as good data: RS proposals above @p threshold are
     * rejected (miscorrection gate) and one-bad-chip erasure rebuilds
     * are only trusted when the survivors' VLEWs vouch for them (dead
     * chip) or the rebuilt beats verify against the torn chip's own
     * stale code bits (rollback). On return the recovered contents
     * become the new ground truth (golden state is resynchronized);
     * poisoned blocks read as DetectedUE until rewritten.
     */
    CrashRecoveryReport crashRecovery(unsigned threshold = 2);

    /** True when crashRecovery() declared @p block an explicit UE. */
    bool isPoisoned(unsigned block) const;

    /** Capture the persistent-media image (cheap to restore). */
    RankSnapshot snapshot() const;
    /** Restore a previously captured image. */
    void restore(const RankSnapshot &snap);

    /**
     * Deterministically corrupt one stored byte (@p chip = chips()-1
     * addresses the parity chip) by XORing @p mask into it. Fault
     * primitive for targeted recovery tests; does not touch golden
     * state.
     */
    void corruptByte(unsigned chip, unsigned block, unsigned byte,
                     std::uint8_t mask);

    /** Flip each stored bit (data and code) with probability @p rber. */
    std::uint64_t injectErrors(Rng &rng, double rber);

    /** Garble an entire chip (0..7 data, 8 = parity). */
    void failChip(unsigned chip, Rng &rng);

    /** What one rebuildLaneSpan() call did. */
    struct LaneRebuildReport
    {
        unsigned blocksFilled = 0;   //!< beats reconstructed
        unsigned blocksPoisoned = 0; //!< declared UE (reported)
    };

    /**
     * Hot-spare lane rebuild: reconstruct @p chip's beats for one VLEW
     * span (blocks [vlew*32, (vlew+1)*32)) by RS erasure correction
     * (parity recomputation when @p chip is the parity chip) and
     * re-encode the lane's VLEW code bits for that span. The eight
     * erasures consume the whole RS budget, so the survivors are
     * expected to have been scrubbed immediately beforehand — a
     * survivor whose VLEW was uncorrectable must be flagged in
     * @p distrust_mask, and the span is then poisoned (reported UE)
     * instead of risking a silent version-mixed fill, mirroring the
     * crashRecovery() guard.
     */
    LaneRebuildReport rebuildLaneSpan(unsigned chip, unsigned vlew,
                                      unsigned threshold = 2,
                                      std::uint16_t distrust_mask = 0);

    /**
     * Drop a chip's stuck-cell map: the physical device behind the
     * lane was replaced (spare engaged, or repaired chip swapped in),
     * and wear-out damage belongs to the device, not the lane.
     */
    void clearStuckCells(unsigned chip);

    /**
     * Disable a worn-out block (Section V-E): logically zero its
     * contribution to each chip's VLEW and update code bits.
     */
    void disableBlock(unsigned block);
    bool isDisabled(unsigned block) const;

    /**
     * Mark a data cell permanently stuck (wear-out model, Section V-E):
     * the stored bit reads back as @p value no matter what is written.
     */
    void setStuckBit(unsigned chip, std::uint64_t byte_index,
                     unsigned bit, bool value);

    /**
     * Write-and-verify [86]: perform the write, re-read the raw stored
     * beats, and return the number of cells that failed to take the
     * intended value — the paper's mechanism for identifying worn-out
     * blocks to disable.
     */
    unsigned writeVerify(unsigned block, const std::uint8_t *new_data);

    /**
     * Model I/O transmission errors on the memory bus (paper footnote
     * 4): each transmitted beat bit flips with probability @p ber.
     * With Write-CRC enabled (DDR4-style, crc.hh) the chip detects the
     * corruption and requests a retransmit; without it the corrupted
     * sum is silently committed.
     */
    void setBusFaultModel(double ber, bool crc_enabled,
                          std::uint64_t seed = 1);

    /** Retransmits triggered by Write-CRC so far. */
    std::uint64_t crcRetries() const { return busRetries; }

    /** Golden (error-free) copy of a block, for verification. */
    void goldenBlock(unsigned block, std::uint8_t *out) const;

    /** True when all stored bits and code bits are error-free. */
    bool isPristine() const;

    /**
     * Estimated boot-scrub wall time for @p capacity_bytes of memory
     * on a channel moving @p bus_bytes_per_sec (Section V-B: <1.5min
     * per terabyte).
     */
    static double scrubSeconds(double capacity_bytes,
                               double bus_bytes_per_sec);

    const ProposalParams &params() const { return geom; }

    /** Recovery verdict tallies (reads + crash recovery). */
    const RecoveryCounters &recoveryCounters() const
    {
        return recCounters;
    }
    /** Surface the recovery tallies through common/stats. */
    void recordRecoveryStats(StatGroup &group) const
    {
        recCounters.record(group);
    }
    void resetRecoveryStats() { recCounters.reset(); }

  private:
    /** The batched scrub engine streams the stores directly. */
    friend class ScrubEngine;

    /** Stored (possibly erroneous) 8B beat of @p chip at @p block. */
    std::uint8_t *chipBeat(unsigned chip, unsigned block);
    const std::uint8_t *chipBeat(unsigned chip, unsigned block) const;

    /** Golden 8B beat. */
    std::uint8_t *goldenBeat(unsigned chip, unsigned block);
    const std::uint8_t *goldenBeat(unsigned chip, unsigned block) const;

    /** Build the VLEW codeword [code|data] for (chip, vlew) from store. */
    BitVec assembleVlew(unsigned chip, unsigned vlew) const;
    /** Write a (corrected) VLEW codeword back to the store. */
    void storeVlew(unsigned chip, unsigned vlew, const BitVec &cw);

    /** Assemble the stored RS codeword for a block. */
    std::vector<GfElem> assembleRsWord(unsigned block) const;

    /** Recompute golden RS check bytes for a block into the golden
     *  parity store. */
    void encodeGoldenRs(unsigned block);

    /**
     * Apply an 8-byte delta to a chip beat and its VLEW code bits.
     * @param delta8 what the chip actually received and applied.
     * @param intended8 what the controller meant to send (golden
     *        tracking); null means identical to delta8.
     */
    void applyChipDelta(unsigned chip, unsigned block,
                        const std::uint8_t *delta8,
                        const std::uint8_t *intended8 = nullptr);

    /** Transmit a beat across the faulty bus (with CRC retries). */
    void transmit(std::uint8_t *beat);

    /** Correct (chip, vlew) in place; returns corrections or -1. */
    int correctVlew(unsigned chip, unsigned vlew);

    /** Re-apply stuck cells to a chip's stored bytes in [lo, hi). */
    void enforceStuck(unsigned chip, std::uint64_t lo,
                      std::uint64_t hi);

    /** Rebuild a dead data chip via RS erasure correction. */
    RecoveryOutcome rebuildDataChip(unsigned chip,
                                    ScrubReport &report);
    /** Recompute the parity chip from (corrected) data chips. */
    void rebuildParityChip();

    /** Write an RS word's beats (data + parity) back to the store. */
    void storeRsWord(unsigned block, const std::vector<GfElem> &word);

    /** Zero a block everywhere and flag it as a reported UE. */
    void poisonBlock(unsigned block);

    ProposalParams geom;
    unsigned numBlocks;
    unsigned dataChips;
    unsigned numVlews;
    unsigned blocksPerVlew;

    BchCodec vlewCodec;
    RsCodec rsCodec;

    /** chipStore[c]: numBlocks * 8 bytes (parity chip = RS bytes). */
    std::vector<std::vector<std::uint8_t>> chipStore;
    /** VLEW code bits: [chip][vlew] -> r-bit vector. */
    std::vector<std::vector<BitVec>> codeStore;
    /** Golden copies (no errors) for verification and OMV emulation. */
    std::vector<std::vector<std::uint8_t>> goldenStore;
    std::vector<std::vector<BitVec>> goldenCode;
    std::vector<bool> disabled;
    /** Blocks crashRecovery() declared uncorrectable (reported UE). */
    std::vector<bool> poisoned;
    RecoveryCounters recCounters;
    /** Per-chip stuck-cell masks and stuck values (data bytes). */
    std::vector<std::vector<std::uint8_t>> stuckMask;
    std::vector<std::vector<std::uint8_t>> stuckVal;
    /** Bus fault model. */
    double busBer = 0.0;
    bool busCrc = true;
    Rng busRng{1};
    std::uint64_t busRetries = 0;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_PM_RANK_HH
