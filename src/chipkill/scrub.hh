/**
 * @file
 * Batched whole-rank scrub engine (Section V-B made cheap).
 *
 * The word-at-a-time scrub paths assemble every VLEW into a fresh
 * BitVec, run the full decode pipeline (residue check, n-bit syndromes,
 * 2t Berlekamp-Massey steps, exhaustive Chien scan) and copy the word
 * back — even though at realistic RBERs almost every word is clean.
 * The ScrubEngine restructures the sweep around that asymmetry:
 *
 *  - one streaming residue pass (BchCodec::residueAbsorb*) classifies
 *    each word clean/dirty straight out of the rank's storage, with no
 *    codeword assembly, no allocation, and no syndrome work at all for
 *    clean words — the dominant cost becomes O(bytes streamed) through
 *    the 64-bit-wide sliced lanes;
 *  - dirty words are decoded from the already-computed r-bit residue
 *    (BchCodec::solveFromResidue) through the fast corrupt-word path
 *    (even-step-skipping Berlekamp-Massey, early-abort on length > t,
 *    root-count-bounded Chien scan) and corrected by flipping bits in
 *    place;
 *  - words are fanned out to ThreadPool workers in fixed-size batches
 *    with disjoint result slots, so outcomes are bit-identical for any
 *    worker count (the determinism contract of common/threadpool.hh).
 *
 * Every sweep has a word-at-a-time reference twin (sweepReference) that
 * mirrors the historical per-word loops; the differential tests pin the
 * two paths to byte-identical media and identical outcome vectors.
 */

#ifndef NVCK_CHIPKILL_SCRUB_HH
#define NVCK_CHIPKILL_SCRUB_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "ecc/kernel.hh"

namespace nvck {

class DegradedRank;
class PmRank;
class ThreadPool;

/** Outcome of one scrub word (a per-chip VLEW or striped VLEW). */
struct ScrubWordResult
{
    /** -1 uncorrectable, 0 clean (or skipped), else bits corrected. */
    int corrections = 0;
    /**
     * Bitmask of blocks within the word's span whose *data* bits had
     * corrections applied (bit b = b-th block of the span). Code-bit
     * corrections do not set mask bits.
     */
    std::uint64_t changedBlocks = 0;
};

inline bool
operator==(const ScrubWordResult &a, const ScrubWordResult &b)
{
    return a.corrections == b.corrections &&
           a.changedBlocks == b.changedBlocks;
}

/** Aggregate totals of one whole-rank sweep. */
struct ScrubSweepStats
{
    std::uint64_t wordsScanned = 0;
    std::uint64_t wordsDirty = 0; //!< corrected or uncorrectable
    std::uint64_t wordsUncorrectable = 0;
    std::uint64_t bitsCorrected = 0;
};

/** The batched whole-rank scrub engine. */
class ScrubEngine
{
  public:
    struct Options
    {
        /** Scrub words per parallel batch. */
        unsigned batchWords = 64;
        /** Worker pool; null means ThreadPool::global(). */
        ThreadPool *pool = nullptr;
        /** Corrupt-word decode path (NVCK_SCRUB_DECODE overrides). */
        ScrubDecodePath decodePath = defaultScrubDecodePath();
    };

    ScrubEngine() = default;
    explicit ScrubEngine(const Options &options) : opts(options) {}

    /**
     * Batched sweep of every (chip, VLEW) word of @p rank, correcting
     * in place (stuck cells re-asserted, exactly like the per-word
     * path). Outcome index = chip * vlewsPerChip() + vlew.
     */
    std::vector<ScrubWordResult> sweep(PmRank &rank) const;

    /** The word-at-a-time reference twin of sweep(PmRank&). */
    std::vector<ScrubWordResult> sweepReference(PmRank &rank) const;

    /**
     * Batched sweep of every striped VLEW of @p rank. Poisoned spans
     * are skipped (reported clean); the caller owns poisoning policy.
     */
    std::vector<ScrubWordResult> sweep(DegradedRank &rank) const;

    /** The word-at-a-time reference twin of sweep(DegradedRank&). */
    std::vector<ScrubWordResult>
    sweepReference(DegradedRank &rank) const;

    /** Reduce an outcome vector to sweep totals. */
    static ScrubSweepStats
    tally(const std::vector<ScrubWordResult> &outcomes);

    /**
     * Scrub a single (chip, VLEW) word of @p rank in place — the
     * patrol-scrub granule of the runtime RAS engine (sim/ras.hh).
     * Same residue-classify + fast-decode pipeline as the batched
     * sweep, minus the fan-out.
     */
    ScrubWordResult
    scrubWord(PmRank &rank, unsigned chip, unsigned vlew) const
    {
        return scrubPmWord(rank, chip, vlew);
    }

  private:
    /** Residue-classify + fast-decode one (chip, vlew) word. */
    ScrubWordResult scrubPmWord(PmRank &rank, unsigned chip,
                                unsigned vlew) const;
    /** Residue-classify + fast-decode one striped VLEW. */
    ScrubWordResult scrubDegradedWord(DegradedRank &rank,
                                      unsigned vlew) const;
    /** Fan [0, words) out to the pool in batchWords-sized batches. */
    void forEachWord(std::size_t words,
                     const std::function<void(std::size_t)> &fn) const;

    Options opts;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_SCRUB_HH
