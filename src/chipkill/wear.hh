/**
 * @file
 * Section V-E: endurance management on top of the protected rank.
 *
 *  - StartGapMapper: start-gap-style wear leveling [87] — one spare
 *    frame rotates through the physical space, migrating one block
 *    every `interval` writes so hot logical blocks spread their wear.
 *    The VLEW code bits stay consistent because a vacated frame is
 *    simply written to zeros (the paper's remap rule).
 *  - WearLevelledRank: PmRank + StartGapMapper glue with per-frame
 *    write counters, so leveling effectiveness is measurable.
 *  - EccRotation: periodic re-positioning of the code bits within a
 *    row [88] so ECC cells wear no faster than data cells.
 */

#ifndef NVCK_CHIPKILL_WEAR_HH
#define NVCK_CHIPKILL_WEAR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "chipkill/pm_rank.hh"

namespace nvck {

/** One pending migration: copy frame `from` into frame `to`. */
struct GapMove
{
    unsigned from;
    unsigned to;
};

/**
 * Start-gap-style remapper over N logical blocks and N+1 physical
 * frames. Explicit mapping arrays keep the model obviously correct;
 * real hardware achieves the same with two registers.
 */
class StartGapMapper
{
  public:
    /**
     * @param logical_blocks N.
     * @param interval writes between gap movements (psi).
     */
    StartGapMapper(unsigned logical_blocks, unsigned interval);

    /** Physical frame currently holding @p logical. */
    unsigned physical(unsigned logical) const;

    /** Frame currently serving as the gap. */
    unsigned gapFrame() const { return gap; }

    /**
     * Account one write; every `interval` writes returns the migration
     * the caller must perform (data moves from -> to; `from` becomes
     * the new gap).
     */
    std::optional<GapMove> onWrite();

    unsigned logicalBlocks() const { return numLogical; }
    unsigned frames() const { return numLogical + 1; }

  private:
    unsigned numLogical;
    unsigned interval;
    unsigned writesSinceMove = 0;
    unsigned gap;
    /** logicalOf[frame] = logical block stored there (or ~0u = gap). */
    std::vector<unsigned> logicalOf;
    std::vector<unsigned> frameOf;
};

/** PmRank behind start-gap wear leveling. */
class WearLevelledRank
{
  public:
    /**
     * @param logical_blocks usable capacity; one extra frame plus
     *        VLEW-alignment padding is provisioned internally.
     * @param interval gap-movement period in writes.
     */
    WearLevelledRank(unsigned logical_blocks, unsigned interval,
                     std::uint64_t seed = 1);

    unsigned blocks() const { return mapper.logicalBlocks(); }

    void writeBlock(unsigned logical, const std::uint8_t *data);
    BlockReadResult readBlock(unsigned logical, std::uint8_t *out,
                              unsigned threshold = 2);

    /** Per-physical-frame write counts (wear profile). */
    const std::vector<std::uint64_t> &frameWrites() const
    {
        return writes;
    }

    /** max/mean frame-write ratio; 1.0 = perfectly level. */
    double wearImbalance() const;

    /**
     * Frame-write counts aggregated per VLEW span of @p span_blocks
     * frames — the granularity the patrol scrubber schedules at.
     */
    std::vector<std::uint64_t> spanWrites(unsigned span_blocks) const;

    PmRank &rank() { return memory; }
    /** The start-gap mapping, for patrol addressing. */
    const StartGapMapper &gapMapper() const { return mapper; }
    unsigned migrations() const { return moveCount; }

  private:
    PmRank memory;
    StartGapMapper mapper;
    std::vector<std::uint64_t> writes;
    unsigned moveCount = 0;
};

/**
 * Deterministic hottest-first patrol order: span indices sorted by
 * descending wear count, ties broken by ascending index. Exact integer
 * comparison only (no libm, no floating point), so the order — and
 * every scrub schedule derived from it — replays identically on any
 * host. Used by the RAS patrol scrubber to spend its bounded read
 * budget on the rows most likely to have worn cells (Section V-E).
 */
std::vector<unsigned>
wearPatrolOrder(const std::vector<std::uint64_t> &wear);

/**
 * ECC-cell rotation [88]: per refresh epoch the code bits occupy a
 * different offset within the row's spare region. The rotation is a
 * cyclic shift; rotating and un-rotating must round-trip for any epoch.
 */
class EccRotation
{
  public:
    explicit EccRotation(unsigned code_bits) : width(code_bits) {}

    /** Advance to the next refresh epoch. */
    void nextEpoch() { ++epoch; }

    unsigned currentEpoch() const { return epoch; }

    /** Physical position of logical code bit @p i this epoch. */
    unsigned
    position(unsigned i) const
    {
        return (i + epoch * stride) % width;
    }

    /** Store a logical code vector into its rotated physical layout. */
    BitVec rotate(const BitVec &logical) const;

    /** Recover the logical code vector from the physical layout. */
    BitVec unrotate(const BitVec &physical) const;

  private:
    unsigned width;
    unsigned epoch = 0;
    /** Co-prime-ish stride so all cells are visited across epochs. */
    static constexpr unsigned stride = 13;
};

} // namespace nvck

#endif // NVCK_CHIPKILL_WEAR_HH
