#include "recovery.hh"

#include "common/log.hh"

namespace nvck {

const char *
recoveryOutcomeName(RecoveryOutcome outcome)
{
    switch (outcome) {
      case RecoveryOutcome::Corrected:
        return "corrected";
      case RecoveryOutcome::FellBackToVlew:
        return "fell-back-to-vlew";
      case RecoveryOutcome::DetectedUE:
        return "detected-ue";
      case RecoveryOutcome::MiscorrectionRisk:
        return "miscorrection-risk";
    }
    NVCK_PANIC("unreachable");
}

void
RecoveryCounters::count(RecoveryOutcome outcome)
{
    switch (outcome) {
      case RecoveryOutcome::Corrected:
        corrected.inc();
        return;
      case RecoveryOutcome::FellBackToVlew:
        fellBackToVlew.inc();
        return;
      case RecoveryOutcome::DetectedUE:
        detectedUe.inc();
        return;
      case RecoveryOutcome::MiscorrectionRisk:
        miscorrectionRisk.inc();
        return;
    }
    NVCK_PANIC("unreachable");
}

void
RecoveryCounters::record(StatGroup &group) const
{
    group.record("recovery.corrected",
                 static_cast<double>(corrected.value()));
    group.record("recovery.fell_back_to_vlew",
                 static_cast<double>(fellBackToVlew.value()));
    group.record("recovery.detected_ue",
                 static_cast<double>(detectedUe.value()));
    group.record("recovery.miscorrection_risk",
                 static_cast<double>(miscorrectionRisk.value()));
}

void
RecoveryCounters::reset()
{
    corrected.reset();
    fellBackToVlew.reset();
    detectedUe.reset();
    miscorrectionRisk.reset();
}

} // namespace nvck
