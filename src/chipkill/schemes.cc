#include "schemes.hh"

#include "reliability/sdc_model.hh"

namespace nvck {

SchemeTiming
bitErrorOnlyScheme()
{
    SchemeTiming s;
    s.name = "bit-error-only (14-EC BCH/block)";
    s.storageOverhead = 0.28;
    return s;
}

SchemeTiming
proposalScheme(double runtime_rber)
{
    SchemeTiming s;
    s.name = "proposal (VLEW boot + RS runtime)";
    s.omvEnabled = true;
    s.eurEnabled = true;
    s.fetchOldOnOmvMiss = true;

    SdcInputs in;
    in.rber = runtime_rber;
    // Reads with more than two byte errors reject the opportunistic RS
    // correction and fetch the VLEW (Section V-C).
    s.vlewFetchProb = vlewFallbackFraction(in, 2);

    const ProposalParams p;
    s.vlewFetchBlocks = p.vlewFetchOverheadBlocks() + 1;
    s.storageOverhead = p.totalStorageCost();
    return s;
}

SchemeTiming
naiveVlewScheme(double runtime_rber)
{
    SchemeTiming s;
    s.name = "naive VLEW (no runtime ECC, no OMV)";
    s.fetchOldAlways = true;

    SdcInputs in;
    in.rber = runtime_rber;
    // Any block containing a bit error needs the full VLEW (Fig 5).
    s.vlewFetchProb = blockErrorFraction(in);

    const ProposalParams p;
    s.vlewFetchBlocks = p.vlewFetchOverheadBlocks();
    s.storageOverhead = p.totalStorageCost();
    return s;
}

void
applyCFactor(SchemeTiming &scheme, double c_factor)
{
    const double bits_ratio = 33.0 / 8.0;
    scheme.pmWriteScale = 1.0 + bits_ratio * c_factor;
    scheme.pmWriteExtra = nsToTicks(20.0);
}

} // namespace nvck
