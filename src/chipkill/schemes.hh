/**
 * @file
 * Catalogue of protection schemes as *timing behaviours* for the
 * performance simulation. The bit-accurate encode/decode pipeline lives
 * in layout.hh / runtime_corrector.hh / boot_scrub.hh; here each scheme
 * is reduced to the knobs that perturb timing, exactly as the paper's
 * own gem5 methodology does (Section VI):
 *
 *  - probability a PM demand read triggers a VLEW fetch (36-37 blocks),
 *  - whether PM writes must fetch the old value (always, only on an
 *    OMV miss, or never),
 *  - PM write-latency inflation for iso-endurance (1 + 33/8 * C plus
 *    20ns for on-die encode and internal old-data read),
 *  - whether the LLC's OMV machinery and the NVRAM EUR are active.
 */

#ifndef NVCK_CHIPKILL_SCHEMES_HH
#define NVCK_CHIPKILL_SCHEMES_HH

#include <string>

#include "common/types.hh"
#include "ecc/code_params.hh"

namespace nvck {

/** Timing behaviour of one protection scheme. */
struct SchemeTiming
{
    std::string name;
    /** LLC preserves OMVs of dirty PM blocks (Section V-D). */
    bool omvEnabled = false;
    /** NVRAM chips coalesce VLEW code updates in an EUR. */
    bool eurEnabled = false;
    /** P(a PM demand read falls back to VLEW correction). */
    double vlewFetchProb = 0.0;
    /** Blocks over-fetched per VLEW correction (32 data + ~4 code). */
    unsigned vlewFetchBlocks = 36;
    /** Added decode latency for the VLEW path (22-EC BCH, ~200ns). */
    Tick vlewDecodeLatency = nsToTicks(200);
    /** PM write old-value fetch policy. */
    bool fetchOldAlways = false;     //!< naive VLEW (no OMV caching)
    bool fetchOldOnOmvMiss = false;  //!< proposal: only when LLC missed
    /** Multiplier on PM tWR (iso-endurance inflation, set per run). */
    double pmWriteScale = 1.0;
    /** Additive PM write latency (encode + internal old-data read). */
    Tick pmWriteExtra = 0;

    /** Total storage overhead of the scheme (reporting only). */
    double storageOverhead = 0.0;
};

/**
 * Baseline from Section III-A / VII: per-block 14-EC BCH bit-error
 * correction only. No chip failure protection, no VLEW traffic, plain
 * writes. ~28% storage.
 */
SchemeTiming bitErrorOnlyScheme();

/**
 * The proposal (Section V) at a given runtime RBER: per-block RS used
 * opportunistically with a 2-correction threshold (fallback probability
 * from the analytical model), OMV caching, EUR coalescing, and
 * iso-endurance write-latency inflation applied per-workload via
 * applyCFactor(). 27% storage.
 */
SchemeTiming proposalScheme(double runtime_rber);

/**
 * Naive VLEW protection without the proposal's optimizations
 * (Section IV / Fig 5): every bit-error correction fetches the VLEW,
 * and every PM write read-modify-writes the old data from memory.
 */
SchemeTiming naiveVlewScheme(double runtime_rber);

/**
 * Set the iso-endurance write inflation from a measured C factor:
 * tWR *= 1 + (33B / 8B) * C, plus 20ns (Section VI).
 */
void applyCFactor(SchemeTiming &scheme, double c_factor);

} // namespace nvck

#endif // NVCK_CHIPKILL_SCHEMES_HH
