#include "wear.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace nvck {

namespace {

constexpr unsigned noBlock = ~0u;

} // namespace

StartGapMapper::StartGapMapper(unsigned logical_blocks,
                               unsigned move_interval)
    : numLogical(logical_blocks),
      interval(move_interval),
      gap(logical_blocks),
      logicalOf(logical_blocks + 1),
      frameOf(logical_blocks)
{
    NVCK_ASSERT(numLogical >= 1, "need at least one block");
    NVCK_ASSERT(interval >= 1, "gap interval must be positive");
    for (unsigned l = 0; l < numLogical; ++l) {
        logicalOf[l] = l;
        frameOf[l] = l;
    }
    logicalOf[gap] = noBlock;
}

unsigned
StartGapMapper::physical(unsigned logical) const
{
    NVCK_ASSERT(logical < numLogical, "logical block out of range");
    return frameOf[logical];
}

std::optional<GapMove>
StartGapMapper::onWrite()
{
    if (++writesSinceMove < interval)
        return std::nullopt;
    writesSinceMove = 0;

    // The frame cyclically before the gap migrates into the gap.
    const unsigned donor = (gap + frames() - 1) % frames();
    const unsigned moving = logicalOf[donor];
    NVCK_ASSERT(moving != noBlock, "two adjacent gaps");

    GapMove move{donor, gap};
    logicalOf[gap] = moving;
    frameOf[moving] = gap;
    logicalOf[donor] = noBlock;
    gap = donor;
    return move;
}

WearLevelledRank::WearLevelledRank(unsigned logical_blocks,
                                   unsigned interval,
                                   std::uint64_t seed)
    : memory(((logical_blocks + 1 + 31) / 32) * 32),
      mapper(logical_blocks, interval),
      writes(memory.blocks(), 0)
{
    Rng rng(seed);
    memory.initialize(rng);
}

void
WearLevelledRank::writeBlock(unsigned logical, const std::uint8_t *data)
{
    const unsigned frame = mapper.physical(logical);
    memory.writeBlock(frame, data);
    ++writes[frame];

    if (const auto move = mapper.onWrite()) {
        // Migrate through the correction path, then zero the vacated
        // frame so its VLEW contribution is well-defined (Section V-E's
        // remap rule).
        std::uint8_t buffer[blockBytes];
        const auto res = memory.readBlock(move->from, buffer);
        NVCK_ASSERT(res.path != ReadPath::Failed,
                    "migration read failed");
        memory.writeBlock(move->to, buffer);
        ++writes[move->to];
        std::uint8_t zeros[blockBytes] = {};
        memory.writeBlock(move->from, zeros);
        ++writes[move->from];
        ++moveCount;
    }
}

BlockReadResult
WearLevelledRank::readBlock(unsigned logical, std::uint8_t *out,
                            unsigned threshold)
{
    return memory.readBlock(mapper.physical(logical), out, threshold);
}

double
WearLevelledRank::wearImbalance() const
{
    std::uint64_t total = 0, peak = 0;
    unsigned used = 0;
    for (unsigned f = 0; f < mapper.frames(); ++f) {
        total += writes[f];
        peak = std::max(peak, writes[f]);
        ++used;
    }
    if (total == 0 || used == 0)
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(used);
    return static_cast<double>(peak) / mean;
}

std::vector<std::uint64_t>
WearLevelledRank::spanWrites(unsigned span_blocks) const
{
    NVCK_ASSERT(span_blocks >= 1, "span must cover at least one block");
    const unsigned spans =
        (memory.blocks() + span_blocks - 1) / span_blocks;
    std::vector<std::uint64_t> out(spans, 0);
    for (unsigned f = 0; f < mapper.frames(); ++f)
        out[f / span_blocks] += writes[f];
    return out;
}

std::vector<unsigned>
wearPatrolOrder(const std::vector<std::uint64_t> &wear)
{
    std::vector<unsigned> order(wear.size());
    for (unsigned i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&wear](unsigned a, unsigned b) {
                         if (wear[a] != wear[b])
                             return wear[a] > wear[b];
                         return a < b;
                     });
    return order;
}

BitVec
EccRotation::rotate(const BitVec &logical) const
{
    NVCK_ASSERT(logical.size() == width, "code width mismatch");
    BitVec out(width);
    for (unsigned i = 0; i < width; ++i)
        if (logical.get(i))
            out.set(position(i), true);
    return out;
}

BitVec
EccRotation::unrotate(const BitVec &physical) const
{
    NVCK_ASSERT(physical.size() == width, "code width mismatch");
    BitVec out(width);
    for (unsigned i = 0; i < width; ++i)
        if (physical.get(position(i)))
            out.set(i, true);
    return out;
}

} // namespace nvck
