#include "degraded.hh"

#include <cstring>

#include "chipkill/pm_rank.hh"
#include "chipkill/scrub.hh"
#include "common/log.hh"

namespace nvck {

DegradedRank::DegradedRank(unsigned num_blocks,
                           const ProposalParams &params)
    : geom(params),
      numBlocks(num_blocks),
      vlewCodec(params.vlewDataBytes * 8, params.vlewT)
{
    NVCK_ASSERT(numBlocks % blocksPerVlew() == 0,
                "block count must be a multiple of the striped span");
    numVlews = numBlocks / blocksPerVlew();
    store.assign(static_cast<std::size_t>(numBlocks) * blockBytes, 0);
    golden = store;
    codeStore.assign(numVlews, BitVec(vlewCodec.r()));
    goldenCode = codeStore;
    poisonedVlew.assign(numVlews, false);
}

void
DegradedRank::initialize(Rng &rng)
{
    for (auto &byte : golden)
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    for (unsigned v = 0; v < numVlews; ++v) {
        BitVec data(vlewCodec.k());
        data.setBytes(
            0, &golden[static_cast<std::size_t>(v) * geom.vlewDataBytes],
            geom.vlewDataBytes);
        const BitVec check = vlewCodec.encodeDelta(data);
        goldenCode[v].copyRange(0, check, 0, vlewCodec.r());
    }
    store = golden;
    codeStore = goldenCode;
}

DegradedRank
DegradedRank::takeOver(const PmRank &healthy, unsigned failed_chip)
{
    NVCK_ASSERT(failed_chip < healthy.chips(),
                "failed chip out of range");
    DegradedRank out(healthy.blocks());
    // The scrub has already rebuilt the failed chip's contents; carry
    // the logical block data over and re-encode the striped VLEWs.
    for (unsigned b = 0; b < healthy.blocks(); ++b)
        healthy.goldenBlock(
            b, &out.golden[static_cast<std::size_t>(b) * blockBytes]);
    for (unsigned v = 0; v < out.numVlews; ++v) {
        BitVec data(out.vlewCodec.k());
        data.setBytes(0,
                      &out.golden[static_cast<std::size_t>(v) *
                                  out.geom.vlewDataBytes],
                      out.geom.vlewDataBytes);
        const BitVec check = out.vlewCodec.encodeDelta(data);
        out.goldenCode[v].copyRange(0, check, 0, out.vlewCodec.r());
    }
    out.store = out.golden;
    out.codeStore = out.goldenCode;
    return out;
}

BitVec
DegradedRank::assembleVlew(unsigned vlew) const
{
    const unsigned r = vlewCodec.r();
    BitVec cw(vlewCodec.n());
    cw.copyRange(0, codeStore[vlew], 0, r);
    cw.setBytes(
        r, &store[static_cast<std::size_t>(vlew) * geom.vlewDataBytes],
        geom.vlewDataBytes);
    return cw;
}

void
DegradedRank::storeVlew(unsigned vlew, const BitVec &cw)
{
    const unsigned r = vlewCodec.r();
    codeStore[vlew].copyRange(0, cw, 0, r);
    cw.getBytes(
        r, &store[static_cast<std::size_t>(vlew) * geom.vlewDataBytes],
        geom.vlewDataBytes);
}

void
DegradedRank::writeBlock(unsigned block, const std::uint8_t *new_data)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    const unsigned vlew = block / blocksPerVlew();
    const unsigned offset =
        (block % blocksPerVlew()) * blockBytes;

    std::uint8_t delta[blockBytes];
    std::uint8_t *gold =
        &golden[static_cast<std::size_t>(block) * blockBytes];
    std::uint8_t *stored =
        &store[static_cast<std::size_t>(block) * blockBytes];
    for (unsigned b = 0; b < blockBytes; ++b) {
        delta[b] = new_data[b] ^ gold[b];
        gold[b] ^= delta[b];
        stored[b] ^= delta[b];
    }

    BitVec delta_word(vlewCodec.k());
    delta_word.setBytes(static_cast<std::size_t>(offset) * 8, delta,
                        blockBytes);
    const BitVec code_delta = vlewCodec.encodeDelta(delta_word);
    codeStore[vlew] ^= code_delta;
    goldenCode[vlew] ^= code_delta;
}

void
DegradedRank::applyTornWrite(unsigned block,
                             const std::uint8_t *new_data,
                             bool code_applied)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    const unsigned vlew = block / blocksPerVlew();
    const unsigned offset = (block % blocksPerVlew()) * blockBytes;

    std::uint8_t delta[blockBytes];
    std::uint8_t *gold =
        &golden[static_cast<std::size_t>(block) * blockBytes];
    std::uint8_t *stored =
        &store[static_cast<std::size_t>(block) * blockBytes];
    for (unsigned b = 0; b < blockBytes; ++b) {
        delta[b] = new_data[b] ^ gold[b];
        gold[b] ^= delta[b];
        stored[b] ^= delta[b];
    }

    BitVec delta_word(vlewCodec.k());
    delta_word.setBytes(static_cast<std::size_t>(offset) * 8, delta,
                        blockBytes);
    const BitVec code_delta = vlewCodec.encodeDelta(delta_word);
    goldenCode[vlew] ^= code_delta;
    if (code_applied)
        codeStore[vlew] ^= code_delta;
}

DegradedReadResult
DegradedRank::readBlock(unsigned block, std::uint8_t *out)
{
    NVCK_ASSERT(block < numBlocks, "block out of range");
    DegradedReadResult result;
    const unsigned vlew = block / blocksPerVlew();

    if (poisonedVlew[vlew]) {
        result.failed = true;
        result.outcome = RecoveryOutcome::DetectedUE;
        recCounters.count(result.outcome);
        return result;
    }

    // Without the RS tier every errored read needs the VLEW; check the
    // stored block against a zero-cost syndrome first by decoding only
    // when the word is dirty.
    BitVec cw = assembleVlew(vlew);
    if (!vlewCodec.isCodeword(cw)) {
        result.usedVlew = true;
        const auto res = vlewCodec.decode(cw);
        if (res.status == DecodeStatus::Uncorrectable) {
            result.failed = true;
            result.outcome = RecoveryOutcome::DetectedUE;
            recCounters.count(result.outcome);
            return result;
        }
        result.corrections = res.corrections;
        storeVlew(vlew, cw);
        result.outcome = RecoveryOutcome::FellBackToVlew;
        recCounters.count(result.outcome);
    }
    std::memcpy(out,
                &store[static_cast<std::size_t>(block) * blockBytes],
                blockBytes);
    result.dataCorrect =
        std::memcmp(out,
                    &golden[static_cast<std::size_t>(block) *
                            blockBytes],
                    blockBytes) == 0;
    return result;
}

RecoveryOutcome
DegradedRank::scrub()
{
    bool any_lost = false;
    // Batched sweep (scrub.hh): bit errors and in-budget torn writes
    // are corrected in place; only the uncorrectable spans come back
    // for policy. Poisoning happens here, after the parallel barrier,
    // because the bit-packed flag vector must not see racing writers.
    const auto outcomes = ScrubEngine().sweep(*this);
    for (unsigned v = 0; v < numVlews; ++v) {
        if (poisonedVlew[v])
            continue;
        if (outcomes[v].corrections < 0) {
            // Without an RS tier there is nothing left to resolve the
            // span with; zero it and report the loss instead of
            // leaving silent garbage behind.
            std::memset(&store[static_cast<std::size_t>(v) *
                               geom.vlewDataBytes],
                        0, geom.vlewDataBytes);
            codeStore[v] = BitVec(vlewCodec.r());
            poisonedVlew[v] = true;
            any_lost = true;
            recCounters.count(RecoveryOutcome::DetectedUE);
        }
    }
    // The survivors are the ground truth now (a torn write may have
    // legitimately rolled back to the old data).
    golden = store;
    goldenCode = codeStore;
    return any_lost ? RecoveryOutcome::DetectedUE
                    : RecoveryOutcome::Corrected;
}

bool
DegradedRank::isPoisoned(unsigned block) const
{
    return poisonedVlew.at(block / blocksPerVlew());
}

void
DegradedRank::poisonSpan(unsigned vlew)
{
    NVCK_ASSERT(vlew < numVlews, "span out of range");
    if (poisonedVlew[vlew])
        return;
    std::memset(
        &store[static_cast<std::size_t>(vlew) * geom.vlewDataBytes], 0,
        geom.vlewDataBytes);
    std::memset(
        &golden[static_cast<std::size_t>(vlew) * geom.vlewDataBytes],
        0, geom.vlewDataBytes);
    codeStore[vlew] = BitVec(vlewCodec.r());
    goldenCode[vlew] = codeStore[vlew];
    poisonedVlew[vlew] = true;
    recCounters.count(RecoveryOutcome::DetectedUE);
}

unsigned
DegradedRank::poisonedSpans() const
{
    unsigned n = 0;
    for (const bool p : poisonedVlew)
        if (p)
            ++n;
    return n;
}

DegradedSnapshot
DegradedRank::snapshot() const
{
    DegradedSnapshot snap;
    snap.store = store;
    snap.golden = golden;
    snap.codeStore = codeStore;
    snap.goldenCode = goldenCode;
    snap.poisonedVlew = poisonedVlew;
    return snap;
}

void
DegradedRank::restore(const DegradedSnapshot &snap)
{
    NVCK_ASSERT(snap.store.size() == store.size(),
                "snapshot from a different rank geometry");
    store = snap.store;
    golden = snap.golden;
    codeStore = snap.codeStore;
    goldenCode = snap.goldenCode;
    poisonedVlew = snap.poisonedVlew;
}

std::uint64_t
DegradedRank::injectErrors(Rng &rng, double rber)
{
    if (rber <= 0.0)
        return 0;
    std::uint64_t flipped = 0;
    const std::uint64_t data_bits =
        static_cast<std::uint64_t>(store.size()) * 8;
    const std::uint64_t total_bits =
        data_bits +
        static_cast<std::uint64_t>(numVlews) * vlewCodec.r();
    std::uint64_t pos = 0;
    for (;;) {
        pos += rng.geometric(rber);
        if (pos > total_bits)
            break;
        const std::uint64_t idx = pos - 1;
        if (idx < data_bits)
            store[idx / 8] ^= static_cast<std::uint8_t>(1u
                                                        << (idx % 8));
        else {
            const std::uint64_t cidx = idx - data_bits;
            codeStore[cidx / vlewCodec.r()].flip(
                static_cast<std::size_t>(cidx % vlewCodec.r()));
        }
        ++flipped;
    }
    return flipped;
}

unsigned
DegradedRank::correctionFetchBlocks() const
{
    // Three sibling blocks plus the code bits (Section V-E: "using it
    // to correct bit errors only requires fetching four data blocks").
    return blocksPerVlew() - 1 + geom.codeBlocksPerVlew();
}

bool
DegradedRank::isPristine() const
{
    return store == golden && codeStore == goldenCode;
}

void
DegradedRank::goldenBlock(unsigned block, std::uint8_t *out) const
{
    std::memcpy(out,
                &golden[static_cast<std::size_t>(block) * blockBytes],
                blockBytes);
}

} // namespace nvck
