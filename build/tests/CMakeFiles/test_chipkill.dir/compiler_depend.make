# Empty compiler generated dependencies file for test_chipkill.
# This may be replaced when dependencies are built.
