file(REMOVE_RECURSE
  "CMakeFiles/test_chipkill.dir/chipkill/test_bus_crc.cc.o"
  "CMakeFiles/test_chipkill.dir/chipkill/test_bus_crc.cc.o.d"
  "CMakeFiles/test_chipkill.dir/chipkill/test_degraded.cc.o"
  "CMakeFiles/test_chipkill.dir/chipkill/test_degraded.cc.o.d"
  "CMakeFiles/test_chipkill.dir/chipkill/test_pm_rank.cc.o"
  "CMakeFiles/test_chipkill.dir/chipkill/test_pm_rank.cc.o.d"
  "CMakeFiles/test_chipkill.dir/chipkill/test_pm_rank_properties.cc.o"
  "CMakeFiles/test_chipkill.dir/chipkill/test_pm_rank_properties.cc.o.d"
  "CMakeFiles/test_chipkill.dir/chipkill/test_schemes.cc.o"
  "CMakeFiles/test_chipkill.dir/chipkill/test_schemes.cc.o.d"
  "CMakeFiles/test_chipkill.dir/chipkill/test_wear.cc.o"
  "CMakeFiles/test_chipkill.dir/chipkill/test_wear.cc.o.d"
  "test_chipkill"
  "test_chipkill.pdb"
  "test_chipkill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chipkill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
