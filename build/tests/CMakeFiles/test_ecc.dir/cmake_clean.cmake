file(REMOVE_RECURSE
  "CMakeFiles/test_ecc.dir/ecc/test_bch.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_bch.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_bch_properties.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_bch_properties.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_code_params.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_code_params.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_crc.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_crc.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_rs.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_rs.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_rs_statistics.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_rs_statistics.cc.o.d"
  "test_ecc"
  "test_ecc.pdb"
  "test_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
