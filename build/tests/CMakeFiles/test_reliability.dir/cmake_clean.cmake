file(REMOVE_RECURSE
  "CMakeFiles/test_reliability.dir/reliability/test_binomial.cc.o"
  "CMakeFiles/test_reliability.dir/reliability/test_binomial.cc.o.d"
  "CMakeFiles/test_reliability.dir/reliability/test_error_model.cc.o"
  "CMakeFiles/test_reliability.dir/reliability/test_error_model.cc.o.d"
  "CMakeFiles/test_reliability.dir/reliability/test_injector.cc.o"
  "CMakeFiles/test_reliability.dir/reliability/test_injector.cc.o.d"
  "CMakeFiles/test_reliability.dir/reliability/test_sdc_model.cc.o"
  "CMakeFiles/test_reliability.dir/reliability/test_sdc_model.cc.o.d"
  "CMakeFiles/test_reliability.dir/reliability/test_storage_model.cc.o"
  "CMakeFiles/test_reliability.dir/reliability/test_storage_model.cc.o.d"
  "CMakeFiles/test_reliability.dir/reliability/test_ue_model.cc.o"
  "CMakeFiles/test_reliability.dir/reliability/test_ue_model.cc.o.d"
  "test_reliability"
  "test_reliability.pdb"
  "test_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
