file(REMOVE_RECURSE
  "CMakeFiles/test_gf.dir/gf/test_binpoly.cc.o"
  "CMakeFiles/test_gf.dir/gf/test_binpoly.cc.o.d"
  "CMakeFiles/test_gf.dir/gf/test_gf2m.cc.o"
  "CMakeFiles/test_gf.dir/gf/test_gf2m.cc.o.d"
  "CMakeFiles/test_gf.dir/gf/test_gfpoly.cc.o"
  "CMakeFiles/test_gf.dir/gf/test_gfpoly.cc.o.d"
  "test_gf"
  "test_gf.pdb"
  "test_gf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
