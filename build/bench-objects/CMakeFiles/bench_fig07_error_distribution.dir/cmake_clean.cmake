file(REMOVE_RECURSE
  "../bench/bench_fig07_error_distribution"
  "../bench/bench_fig07_error_distribution.pdb"
  "CMakeFiles/bench_fig07_error_distribution.dir/bench_fig07_error_distribution.cc.o"
  "CMakeFiles/bench_fig07_error_distribution.dir/bench_fig07_error_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_error_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
