# Empty compiler generated dependencies file for bench_runtime_correction.
# This may be replaced when dependencies are built.
