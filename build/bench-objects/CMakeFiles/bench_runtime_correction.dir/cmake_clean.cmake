file(REMOVE_RECURSE
  "../bench/bench_runtime_correction"
  "../bench/bench_runtime_correction.pdb"
  "CMakeFiles/bench_runtime_correction.dir/bench_runtime_correction.cc.o"
  "CMakeFiles/bench_runtime_correction.dir/bench_runtime_correction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
