file(REMOVE_RECURSE
  "../bench/bench_hw_estimates"
  "../bench/bench_hw_estimates.pdb"
  "CMakeFiles/bench_hw_estimates.dir/bench_hw_estimates.cc.o"
  "CMakeFiles/bench_hw_estimates.dir/bench_hw_estimates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
