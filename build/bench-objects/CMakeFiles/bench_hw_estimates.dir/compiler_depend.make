# Empty compiler generated dependencies file for bench_hw_estimates.
# This may be replaced when dependencies are built.
