file(REMOVE_RECURSE
  "../bench/bench_fig04_storage_vs_codeword"
  "../bench/bench_fig04_storage_vs_codeword.pdb"
  "CMakeFiles/bench_fig04_storage_vs_codeword.dir/bench_fig04_storage_vs_codeword.cc.o"
  "CMakeFiles/bench_fig04_storage_vs_codeword.dir/bench_fig04_storage_vs_codeword.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_storage_vs_codeword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
