# Empty dependencies file for bench_fig04_storage_vs_codeword.
# This may be replaced when dependencies are built.
