file(REMOVE_RECURSE
  "../bench/bench_wear_leveling"
  "../bench/bench_wear_leveling.pdb"
  "CMakeFiles/bench_wear_leveling.dir/bench_wear_leveling.cc.o"
  "CMakeFiles/bench_wear_leveling.dir/bench_wear_leveling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wear_leveling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
