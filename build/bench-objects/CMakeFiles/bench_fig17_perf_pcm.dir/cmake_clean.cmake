file(REMOVE_RECURSE
  "../bench/bench_fig17_perf_pcm"
  "../bench/bench_fig17_perf_pcm.pdb"
  "CMakeFiles/bench_fig17_perf_pcm.dir/bench_fig17_perf_pcm.cc.o"
  "CMakeFiles/bench_fig17_perf_pcm.dir/bench_fig17_perf_pcm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_perf_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
