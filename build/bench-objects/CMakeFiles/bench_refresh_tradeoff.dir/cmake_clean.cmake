file(REMOVE_RECURSE
  "../bench/bench_refresh_tradeoff"
  "../bench/bench_refresh_tradeoff.pdb"
  "CMakeFiles/bench_refresh_tradeoff.dir/bench_refresh_tradeoff.cc.o"
  "CMakeFiles/bench_refresh_tradeoff.dir/bench_refresh_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
