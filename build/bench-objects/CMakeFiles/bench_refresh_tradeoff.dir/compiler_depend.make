# Empty compiler generated dependencies file for bench_refresh_tradeoff.
# This may be replaced when dependencies are built.
