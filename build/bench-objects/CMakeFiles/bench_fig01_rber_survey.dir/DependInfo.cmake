
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig01_rber_survey.cc" "bench-objects/CMakeFiles/bench_fig01_rber_survey.dir/bench_fig01_rber_survey.cc.o" "gcc" "bench-objects/CMakeFiles/bench_fig01_rber_survey.dir/bench_fig01_rber_survey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nvck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chipkill/CMakeFiles/nvck_chipkill.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/nvck_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/nvck_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvck_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nvck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/nvck_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/nvck_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/nvck_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
