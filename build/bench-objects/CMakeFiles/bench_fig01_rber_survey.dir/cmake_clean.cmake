file(REMOVE_RECURSE
  "../bench/bench_fig01_rber_survey"
  "../bench/bench_fig01_rber_survey.pdb"
  "CMakeFiles/bench_fig01_rber_survey.dir/bench_fig01_rber_survey.cc.o"
  "CMakeFiles/bench_fig01_rber_survey.dir/bench_fig01_rber_survey.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_rber_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
