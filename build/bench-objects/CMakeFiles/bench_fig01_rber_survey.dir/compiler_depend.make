# Empty compiler generated dependencies file for bench_fig01_rber_survey.
# This may be replaced when dependencies are built.
