file(REMOVE_RECURSE
  "../bench/bench_boot_scrub"
  "../bench/bench_boot_scrub.pdb"
  "CMakeFiles/bench_boot_scrub.dir/bench_boot_scrub.cc.o"
  "CMakeFiles/bench_boot_scrub.dir/bench_boot_scrub.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boot_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
