# Empty dependencies file for bench_boot_scrub.
# This may be replaced when dependencies are built.
