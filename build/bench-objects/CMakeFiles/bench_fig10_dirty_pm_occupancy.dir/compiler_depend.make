# Empty compiler generated dependencies file for bench_fig10_dirty_pm_occupancy.
# This may be replaced when dependencies are built.
