file(REMOVE_RECURSE
  "../bench/bench_fig10_dirty_pm_occupancy"
  "../bench/bench_fig10_dirty_pm_occupancy.pdb"
  "CMakeFiles/bench_fig10_dirty_pm_occupancy.dir/bench_fig10_dirty_pm_occupancy.cc.o"
  "CMakeFiles/bench_fig10_dirty_pm_occupancy.dir/bench_fig10_dirty_pm_occupancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dirty_pm_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
