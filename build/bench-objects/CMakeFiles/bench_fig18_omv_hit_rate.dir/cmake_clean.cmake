file(REMOVE_RECURSE
  "../bench/bench_fig18_omv_hit_rate"
  "../bench/bench_fig18_omv_hit_rate.pdb"
  "CMakeFiles/bench_fig18_omv_hit_rate.dir/bench_fig18_omv_hit_rate.cc.o"
  "CMakeFiles/bench_fig18_omv_hit_rate.dir/bench_fig18_omv_hit_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_omv_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
