# Empty compiler generated dependencies file for bench_fig18_omv_hit_rate.
# This may be replaced when dependencies are built.
