# Empty dependencies file for bench_fig02_prior_art_storage.
# This may be replaced when dependencies are built.
