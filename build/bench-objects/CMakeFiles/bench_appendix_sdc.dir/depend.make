# Empty dependencies file for bench_appendix_sdc.
# This may be replaced when dependencies are built.
