file(REMOVE_RECURSE
  "../bench/bench_appendix_sdc"
  "../bench/bench_appendix_sdc.pdb"
  "CMakeFiles/bench_appendix_sdc.dir/bench_appendix_sdc.cc.o"
  "CMakeFiles/bench_appendix_sdc.dir/bench_appendix_sdc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
