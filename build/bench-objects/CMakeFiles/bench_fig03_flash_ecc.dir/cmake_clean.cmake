file(REMOVE_RECURSE
  "../bench/bench_fig03_flash_ecc"
  "../bench/bench_fig03_flash_ecc.pdb"
  "CMakeFiles/bench_fig03_flash_ecc.dir/bench_fig03_flash_ecc.cc.o"
  "CMakeFiles/bench_fig03_flash_ecc.dir/bench_fig03_flash_ecc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_flash_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
