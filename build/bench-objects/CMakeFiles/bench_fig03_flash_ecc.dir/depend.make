# Empty dependencies file for bench_fig03_flash_ecc.
# This may be replaced when dependencies are built.
