file(REMOVE_RECURSE
  "../bench/bench_fig15_cfactor"
  "../bench/bench_fig15_cfactor.pdb"
  "CMakeFiles/bench_fig15_cfactor.dir/bench_fig15_cfactor.cc.o"
  "CMakeFiles/bench_fig15_cfactor.dir/bench_fig15_cfactor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cfactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
