# Empty dependencies file for bench_fig15_cfactor.
# This may be replaced when dependencies are built.
