file(REMOVE_RECURSE
  "../bench/bench_codec_throughput"
  "../bench/bench_codec_throughput.pdb"
  "CMakeFiles/bench_codec_throughput.dir/bench_codec_throughput.cc.o"
  "CMakeFiles/bench_codec_throughput.dir/bench_codec_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
