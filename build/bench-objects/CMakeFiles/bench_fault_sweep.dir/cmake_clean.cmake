file(REMOVE_RECURSE
  "../bench/bench_fault_sweep"
  "../bench/bench_fault_sweep.pdb"
  "CMakeFiles/bench_fault_sweep.dir/bench_fault_sweep.cc.o"
  "CMakeFiles/bench_fault_sweep.dir/bench_fault_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
