# Empty compiler generated dependencies file for bench_fig16_perf_reram.
# This may be replaced when dependencies are built.
