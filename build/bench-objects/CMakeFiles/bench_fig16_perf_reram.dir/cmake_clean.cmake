file(REMOVE_RECURSE
  "../bench/bench_fig16_perf_reram"
  "../bench/bench_fig16_perf_reram.pdb"
  "CMakeFiles/bench_fig16_perf_reram.dir/bench_fig16_perf_reram.cc.o"
  "CMakeFiles/bench_fig16_perf_reram.dir/bench_fig16_perf_reram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_perf_reram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
