# Empty dependencies file for bench_fig05_vlew_bandwidth.
# This may be replaced when dependencies are built.
