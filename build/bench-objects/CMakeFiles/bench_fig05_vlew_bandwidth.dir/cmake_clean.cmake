file(REMOVE_RECURSE
  "../bench/bench_fig05_vlew_bandwidth"
  "../bench/bench_fig05_vlew_bandwidth.pdb"
  "CMakeFiles/bench_fig05_vlew_bandwidth.dir/bench_fig05_vlew_bandwidth.cc.o"
  "CMakeFiles/bench_fig05_vlew_bandwidth.dir/bench_fig05_vlew_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_vlew_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
