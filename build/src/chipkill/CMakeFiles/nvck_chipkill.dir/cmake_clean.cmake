file(REMOVE_RECURSE
  "CMakeFiles/nvck_chipkill.dir/degraded.cc.o"
  "CMakeFiles/nvck_chipkill.dir/degraded.cc.o.d"
  "CMakeFiles/nvck_chipkill.dir/pm_rank.cc.o"
  "CMakeFiles/nvck_chipkill.dir/pm_rank.cc.o.d"
  "CMakeFiles/nvck_chipkill.dir/schemes.cc.o"
  "CMakeFiles/nvck_chipkill.dir/schemes.cc.o.d"
  "CMakeFiles/nvck_chipkill.dir/wear.cc.o"
  "CMakeFiles/nvck_chipkill.dir/wear.cc.o.d"
  "libnvck_chipkill.a"
  "libnvck_chipkill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_chipkill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
