file(REMOVE_RECURSE
  "libnvck_chipkill.a"
)
