
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chipkill/degraded.cc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/degraded.cc.o" "gcc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/degraded.cc.o.d"
  "/root/repo/src/chipkill/pm_rank.cc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/pm_rank.cc.o" "gcc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/pm_rank.cc.o.d"
  "/root/repo/src/chipkill/schemes.cc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/schemes.cc.o" "gcc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/schemes.cc.o.d"
  "/root/repo/src/chipkill/wear.cc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/wear.cc.o" "gcc" "src/chipkill/CMakeFiles/nvck_chipkill.dir/wear.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecc/CMakeFiles/nvck_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/nvck_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/nvck_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
