# Empty compiler generated dependencies file for nvck_chipkill.
# This may be replaced when dependencies are built.
