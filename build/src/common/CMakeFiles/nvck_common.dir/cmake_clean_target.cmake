file(REMOVE_RECURSE
  "libnvck_common.a"
)
