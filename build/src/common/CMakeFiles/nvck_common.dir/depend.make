# Empty dependencies file for nvck_common.
# This may be replaced when dependencies are built.
