file(REMOVE_RECURSE
  "CMakeFiles/nvck_common.dir/bitvec.cc.o"
  "CMakeFiles/nvck_common.dir/bitvec.cc.o.d"
  "CMakeFiles/nvck_common.dir/event.cc.o"
  "CMakeFiles/nvck_common.dir/event.cc.o.d"
  "CMakeFiles/nvck_common.dir/log.cc.o"
  "CMakeFiles/nvck_common.dir/log.cc.o.d"
  "CMakeFiles/nvck_common.dir/rng.cc.o"
  "CMakeFiles/nvck_common.dir/rng.cc.o.d"
  "CMakeFiles/nvck_common.dir/stats.cc.o"
  "CMakeFiles/nvck_common.dir/stats.cc.o.d"
  "CMakeFiles/nvck_common.dir/table.cc.o"
  "CMakeFiles/nvck_common.dir/table.cc.o.d"
  "libnvck_common.a"
  "libnvck_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
