file(REMOVE_RECURSE
  "CMakeFiles/nvck_workload.dir/profiles.cc.o"
  "CMakeFiles/nvck_workload.dir/profiles.cc.o.d"
  "CMakeFiles/nvck_workload.dir/synthetic.cc.o"
  "CMakeFiles/nvck_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/nvck_workload.dir/trace_file.cc.o"
  "CMakeFiles/nvck_workload.dir/trace_file.cc.o.d"
  "libnvck_workload.a"
  "libnvck_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
