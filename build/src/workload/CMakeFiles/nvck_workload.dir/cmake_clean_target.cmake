file(REMOVE_RECURSE
  "libnvck_workload.a"
)
