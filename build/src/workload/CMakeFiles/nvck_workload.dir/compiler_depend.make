# Empty compiler generated dependencies file for nvck_workload.
# This may be replaced when dependencies are built.
