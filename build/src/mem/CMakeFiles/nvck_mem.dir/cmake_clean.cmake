file(REMOVE_RECURSE
  "CMakeFiles/nvck_mem.dir/controller.cc.o"
  "CMakeFiles/nvck_mem.dir/controller.cc.o.d"
  "CMakeFiles/nvck_mem.dir/eur.cc.o"
  "CMakeFiles/nvck_mem.dir/eur.cc.o.d"
  "CMakeFiles/nvck_mem.dir/timing.cc.o"
  "CMakeFiles/nvck_mem.dir/timing.cc.o.d"
  "libnvck_mem.a"
  "libnvck_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
