
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/controller.cc" "src/mem/CMakeFiles/nvck_mem.dir/controller.cc.o" "gcc" "src/mem/CMakeFiles/nvck_mem.dir/controller.cc.o.d"
  "/root/repo/src/mem/eur.cc" "src/mem/CMakeFiles/nvck_mem.dir/eur.cc.o" "gcc" "src/mem/CMakeFiles/nvck_mem.dir/eur.cc.o.d"
  "/root/repo/src/mem/timing.cc" "src/mem/CMakeFiles/nvck_mem.dir/timing.cc.o" "gcc" "src/mem/CMakeFiles/nvck_mem.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
