file(REMOVE_RECURSE
  "libnvck_mem.a"
)
