# Empty compiler generated dependencies file for nvck_mem.
# This may be replaced when dependencies are built.
