# Empty dependencies file for nvck_sim.
# This may be replaced when dependencies are built.
