file(REMOVE_RECURSE
  "libnvck_sim.a"
)
