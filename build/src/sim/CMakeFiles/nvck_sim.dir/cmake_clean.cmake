file(REMOVE_RECURSE
  "CMakeFiles/nvck_sim.dir/configs.cc.o"
  "CMakeFiles/nvck_sim.dir/configs.cc.o.d"
  "CMakeFiles/nvck_sim.dir/experiment.cc.o"
  "CMakeFiles/nvck_sim.dir/experiment.cc.o.d"
  "CMakeFiles/nvck_sim.dir/system.cc.o"
  "CMakeFiles/nvck_sim.dir/system.cc.o.d"
  "libnvck_sim.a"
  "libnvck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
