file(REMOVE_RECURSE
  "CMakeFiles/nvck_reliability.dir/binomial.cc.o"
  "CMakeFiles/nvck_reliability.dir/binomial.cc.o.d"
  "CMakeFiles/nvck_reliability.dir/error_model.cc.o"
  "CMakeFiles/nvck_reliability.dir/error_model.cc.o.d"
  "CMakeFiles/nvck_reliability.dir/injector.cc.o"
  "CMakeFiles/nvck_reliability.dir/injector.cc.o.d"
  "CMakeFiles/nvck_reliability.dir/sdc_model.cc.o"
  "CMakeFiles/nvck_reliability.dir/sdc_model.cc.o.d"
  "CMakeFiles/nvck_reliability.dir/storage_model.cc.o"
  "CMakeFiles/nvck_reliability.dir/storage_model.cc.o.d"
  "CMakeFiles/nvck_reliability.dir/ue_model.cc.o"
  "CMakeFiles/nvck_reliability.dir/ue_model.cc.o.d"
  "libnvck_reliability.a"
  "libnvck_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
