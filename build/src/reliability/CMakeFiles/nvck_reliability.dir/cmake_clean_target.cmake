file(REMOVE_RECURSE
  "libnvck_reliability.a"
)
