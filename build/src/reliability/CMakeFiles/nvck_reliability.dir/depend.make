# Empty dependencies file for nvck_reliability.
# This may be replaced when dependencies are built.
