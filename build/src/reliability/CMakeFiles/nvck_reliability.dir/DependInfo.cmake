
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/binomial.cc" "src/reliability/CMakeFiles/nvck_reliability.dir/binomial.cc.o" "gcc" "src/reliability/CMakeFiles/nvck_reliability.dir/binomial.cc.o.d"
  "/root/repo/src/reliability/error_model.cc" "src/reliability/CMakeFiles/nvck_reliability.dir/error_model.cc.o" "gcc" "src/reliability/CMakeFiles/nvck_reliability.dir/error_model.cc.o.d"
  "/root/repo/src/reliability/injector.cc" "src/reliability/CMakeFiles/nvck_reliability.dir/injector.cc.o" "gcc" "src/reliability/CMakeFiles/nvck_reliability.dir/injector.cc.o.d"
  "/root/repo/src/reliability/sdc_model.cc" "src/reliability/CMakeFiles/nvck_reliability.dir/sdc_model.cc.o" "gcc" "src/reliability/CMakeFiles/nvck_reliability.dir/sdc_model.cc.o.d"
  "/root/repo/src/reliability/storage_model.cc" "src/reliability/CMakeFiles/nvck_reliability.dir/storage_model.cc.o" "gcc" "src/reliability/CMakeFiles/nvck_reliability.dir/storage_model.cc.o.d"
  "/root/repo/src/reliability/ue_model.cc" "src/reliability/CMakeFiles/nvck_reliability.dir/ue_model.cc.o" "gcc" "src/reliability/CMakeFiles/nvck_reliability.dir/ue_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecc/CMakeFiles/nvck_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/nvck_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
