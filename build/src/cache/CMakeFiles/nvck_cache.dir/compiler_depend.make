# Empty compiler generated dependencies file for nvck_cache.
# This may be replaced when dependencies are built.
