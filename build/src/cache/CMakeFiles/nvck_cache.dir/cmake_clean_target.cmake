file(REMOVE_RECURSE
  "libnvck_cache.a"
)
