file(REMOVE_RECURSE
  "CMakeFiles/nvck_cache.dir/cache.cc.o"
  "CMakeFiles/nvck_cache.dir/cache.cc.o.d"
  "CMakeFiles/nvck_cache.dir/hierarchy.cc.o"
  "CMakeFiles/nvck_cache.dir/hierarchy.cc.o.d"
  "libnvck_cache.a"
  "libnvck_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
