file(REMOVE_RECURSE
  "libnvck_cpu.a"
)
