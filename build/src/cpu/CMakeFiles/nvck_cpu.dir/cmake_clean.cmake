file(REMOVE_RECURSE
  "CMakeFiles/nvck_cpu.dir/core.cc.o"
  "CMakeFiles/nvck_cpu.dir/core.cc.o.d"
  "libnvck_cpu.a"
  "libnvck_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
