# Empty compiler generated dependencies file for nvck_cpu.
# This may be replaced when dependencies are built.
