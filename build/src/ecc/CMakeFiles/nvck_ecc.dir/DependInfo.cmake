
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cc" "src/ecc/CMakeFiles/nvck_ecc.dir/bch.cc.o" "gcc" "src/ecc/CMakeFiles/nvck_ecc.dir/bch.cc.o.d"
  "/root/repo/src/ecc/code_params.cc" "src/ecc/CMakeFiles/nvck_ecc.dir/code_params.cc.o" "gcc" "src/ecc/CMakeFiles/nvck_ecc.dir/code_params.cc.o.d"
  "/root/repo/src/ecc/crc.cc" "src/ecc/CMakeFiles/nvck_ecc.dir/crc.cc.o" "gcc" "src/ecc/CMakeFiles/nvck_ecc.dir/crc.cc.o.d"
  "/root/repo/src/ecc/rs.cc" "src/ecc/CMakeFiles/nvck_ecc.dir/rs.cc.o" "gcc" "src/ecc/CMakeFiles/nvck_ecc.dir/rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/nvck_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
