file(REMOVE_RECURSE
  "libnvck_ecc.a"
)
