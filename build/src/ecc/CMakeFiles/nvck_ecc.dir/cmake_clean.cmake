file(REMOVE_RECURSE
  "CMakeFiles/nvck_ecc.dir/bch.cc.o"
  "CMakeFiles/nvck_ecc.dir/bch.cc.o.d"
  "CMakeFiles/nvck_ecc.dir/code_params.cc.o"
  "CMakeFiles/nvck_ecc.dir/code_params.cc.o.d"
  "CMakeFiles/nvck_ecc.dir/crc.cc.o"
  "CMakeFiles/nvck_ecc.dir/crc.cc.o.d"
  "CMakeFiles/nvck_ecc.dir/rs.cc.o"
  "CMakeFiles/nvck_ecc.dir/rs.cc.o.d"
  "libnvck_ecc.a"
  "libnvck_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
