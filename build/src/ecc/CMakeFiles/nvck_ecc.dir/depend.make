# Empty dependencies file for nvck_ecc.
# This may be replaced when dependencies are built.
