file(REMOVE_RECURSE
  "libnvck_gf.a"
)
