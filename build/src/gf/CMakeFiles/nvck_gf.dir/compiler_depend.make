# Empty compiler generated dependencies file for nvck_gf.
# This may be replaced when dependencies are built.
