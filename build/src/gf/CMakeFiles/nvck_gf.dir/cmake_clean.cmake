file(REMOVE_RECURSE
  "CMakeFiles/nvck_gf.dir/binpoly.cc.o"
  "CMakeFiles/nvck_gf.dir/binpoly.cc.o.d"
  "CMakeFiles/nvck_gf.dir/gf2m.cc.o"
  "CMakeFiles/nvck_gf.dir/gf2m.cc.o.d"
  "CMakeFiles/nvck_gf.dir/gfpoly.cc.o"
  "CMakeFiles/nvck_gf.dir/gfpoly.cc.o.d"
  "libnvck_gf.a"
  "libnvck_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvck_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
