# Empty dependencies file for chip_retirement.
# This may be replaced when dependencies are built.
