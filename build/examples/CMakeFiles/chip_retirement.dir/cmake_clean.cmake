file(REMOVE_RECURSE
  "CMakeFiles/chip_retirement.dir/chip_retirement.cpp.o"
  "CMakeFiles/chip_retirement.dir/chip_retirement.cpp.o.d"
  "chip_retirement"
  "chip_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
