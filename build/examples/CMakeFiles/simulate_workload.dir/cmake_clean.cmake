file(REMOVE_RECURSE
  "CMakeFiles/simulate_workload.dir/simulate_workload.cpp.o"
  "CMakeFiles/simulate_workload.dir/simulate_workload.cpp.o.d"
  "simulate_workload"
  "simulate_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
