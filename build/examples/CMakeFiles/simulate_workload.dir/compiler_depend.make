# Empty compiler generated dependencies file for simulate_workload.
# This may be replaced when dependencies are built.
