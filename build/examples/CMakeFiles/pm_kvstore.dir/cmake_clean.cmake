file(REMOVE_RECURSE
  "CMakeFiles/pm_kvstore.dir/pm_kvstore.cpp.o"
  "CMakeFiles/pm_kvstore.dir/pm_kvstore.cpp.o.d"
  "pm_kvstore"
  "pm_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
