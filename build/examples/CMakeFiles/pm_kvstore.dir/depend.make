# Empty dependencies file for pm_kvstore.
# This may be replaced when dependencies are built.
