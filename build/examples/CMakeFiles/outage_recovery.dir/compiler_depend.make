# Empty compiler generated dependencies file for outage_recovery.
# This may be replaced when dependencies are built.
