file(REMOVE_RECURSE
  "CMakeFiles/outage_recovery.dir/outage_recovery.cpp.o"
  "CMakeFiles/outage_recovery.dir/outage_recovery.cpp.o.d"
  "outage_recovery"
  "outage_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
