/**
 * @file
 * Quickstart: a five-minute tour of the nvchipkill public API.
 *
 * Builds a bit-accurate persistent-memory rank with the paper's
 * protection layout (22-EC BCH VLEWs per chip + RS(72,64) parity chip),
 * writes data through the XOR-sum path, injects raw bit errors, reads
 * with the opportunistic-RS/VLEW-fallback procedure, survives a chip
 * failure, and scrubs at "boot".
 */

#include <cstdio>
#include <cstring>

#include "chipkill/pm_rank.hh"
#include "reliability/error_model.hh"

using namespace nvck;

int
main()
{
    // A small rank: 1024 blocks = 64KB of protected persistent memory.
    PmRank rank(1024);
    Rng rng(12345);
    rank.initialize(rng);

    std::printf("nvchipkill quickstart\n");
    std::printf("  rank: %u blocks, %u chips, %u VLEWs/chip, %.1f%% "
                "storage overhead\n\n",
                rank.blocks(), rank.chips(), rank.vlewsPerChip(),
                100.0 * rank.params().totalStorageCost());

    // 1. Write a block. The library models the paper's write path: the
    // controller sends old XOR new; chips update data and ECC locally.
    std::uint8_t message[blockBytes];
    std::memcpy(message, "chipkill-correct for persistent memory: "
                         "decouple boot & runtime!", 64);
    rank.writeBlock(42, message);

    // 2. A year passes without refresh: inject the boot-time RBER.
    const double year_rber =
        rberAfter(MemTech::Reram, secondsPerYear);
    const auto flipped = rank.injectErrors(rng, year_rber);
    std::printf("after one year without refresh (RBER %.0e): %llu raw "
                "bit errors\n",
                year_rber,
                static_cast<unsigned long long>(flipped));

    // 3. Read the block back: the runtime path corrects it.
    std::uint8_t readback[blockBytes];
    const auto read = rank.readBlock(42, readback);
    const char *path_name[] = {"clean", "RS-accepted", "VLEW-fallback",
                               "chip-recovered", "FAILED"};
    std::printf("read block 42 -> path=%s, correct=%s\n",
                path_name[static_cast<int>(read.path)],
                read.dataCorrect ? "yes" : "no");

    // 4. Boot scrub: every VLEW fetched and corrected.
    const auto scrub = rank.bootScrub();
    std::printf("boot scrub: %llu VLEWs scanned, %llu bits corrected, "
                "pristine=%s\n",
                static_cast<unsigned long long>(scrub.vlewsScanned),
                static_cast<unsigned long long>(scrub.bitsCorrected),
                rank.isPristine() ? "yes" : "no");

    // 5. Kill a chip; chipkill-correct earns its name.
    rank.failChip(3, rng);
    const auto recovered = rank.readBlock(42, readback);
    std::printf("chip 3 died -> read path=%s, correct=%s\n",
                path_name[static_cast<int>(recovered.path)],
                recovered.dataCorrect ? "yes" : "no");
    const auto rebuild = rank.bootScrub();
    std::printf("scrub rebuilt %u chip(s); rank pristine=%s\n",
                rebuild.chipsRecovered,
                rank.isPristine() ? "yes" : "no");

    return rank.isPristine() ? 0 : 1;
}
