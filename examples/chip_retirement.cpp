/**
 * @file
 * Chip-retirement walkthrough (Section V-E): a rank loses a chip
 * permanently. Staying in healthy mode would make every access to the
 * dead chip's VLEWs take the expensive correction path, so the system
 * (1) recovers the chip's contents at the next scrub, then (2)
 * reconfigures into degraded mode — per-block RS bits given up, VLEWs
 * re-encoded as 4-block stripes across the surviving chips — and keeps
 * serving reads and writes with a 5x cheaper correction fetch.
 */

#include <cstdio>
#include <cstring>

#include "chipkill/degraded.hh"
#include "chipkill/pm_rank.hh"
#include "reliability/error_model.hh"

using namespace nvck;

int
main()
{
    Rng rng(4242);
    PmRank healthy(512);
    healthy.initialize(rng);

    std::printf("chip-retirement walkthrough (Section V-E)\n\n");
    std::printf("phase 1: healthy operation, %u blocks, correction "
                "fetch = %u blocks\n",
                healthy.blocks(),
                healthy.params().vlewFetchOverheadBlocks() + 1);

    // Write a recognizable payload.
    std::uint8_t payload[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7 + 3);
    healthy.writeBlock(123, payload);

    // Phase 2: chip 2 dies; runtime reads survive through erasures but
    // every access pays the chip-recovery path.
    healthy.failChip(2, rng);
    std::uint8_t out[blockBytes];
    const auto degraded_read = healthy.readBlock(123, out);
    std::printf("\nphase 2: chip 2 died -> reads recover via RS "
                "erasures (path=%d, correct=%s) but every access "
                "pays the slow path\n",
                static_cast<int>(degraded_read.path),
                degraded_read.dataCorrect ? "yes" : "no");

    // Phase 3: scrub rebuilds the chip's data, then reconfigure.
    const auto scrub = healthy.bootScrub();
    std::printf("\nphase 3: scrub rebuilt %u chip(s); reconfiguring "
                "VLEWs across the 8 survivors + repurposed parity "
                "chip\n",
                scrub.chipsRecovered);
    DegradedRank degraded = DegradedRank::takeOver(healthy, 2);
    std::printf("         degraded VLEW spans %u blocks; correction "
                "fetch = %u blocks (was %u)\n",
                degraded.blocksPerVlew(),
                degraded.correctionFetchBlocks() + 1,
                healthy.params().vlewFetchOverheadBlocks() + 1);

    // Phase 4: continued operation under runtime errors.
    degraded.readBlock(123, out);
    const bool payload_ok = std::memcmp(out, payload, blockBytes) == 0;
    std::printf("\nphase 4: payload intact after takeover: %s\n",
                payload_ok ? "yes" : "NO");

    unsigned corrected_reads = 0;
    for (int round = 0; round < 3; ++round) {
        degraded.injectErrors(rng, rber::runtimePcm3Hourly);
        for (unsigned b = 0; b < degraded.blocks(); b += 5) {
            const auto res = degraded.readBlock(b, out);
            if (res.failed || !res.dataCorrect) {
                std::printf("  UNEXPECTED failure at block %u\n", b);
                return 1;
            }
            if (res.usedVlew)
                ++corrected_reads;
        }
        // Writes keep working through the striped code path.
        payload[0] = static_cast<std::uint8_t>(round);
        degraded.writeBlock(123, payload);
    }
    std::printf("         3 rounds of runtime errors: all reads "
                "correct, %u used striped-VLEW correction\n",
                corrected_reads);

    const bool clean =
        degraded.scrub() == nvck::RecoveryOutcome::Corrected &&
        degraded.isPristine();
    std::printf("\nfinal scrub: rank pristine = %s\n",
                clean ? "yes" : "NO");
    return payload_ok && clean ? 0 : 1;
}
