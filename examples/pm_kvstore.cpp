/**
 * @file
 * A miniature persistent key-value store on top of the protected rank —
 * the workload class the paper's introduction motivates (echo,
 * memcached). Values live in protected persistent memory; every update
 * is undo-logged WHISPER-style (log block + value block). The demo
 * interleaves updates with error injection at runtime rates, crashes,
 * "reboots" with a scrub (plus a chip failure on the second crash), and
 * verifies that every committed value survives bit-exactly.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "chipkill/pm_rank.hh"
#include "reliability/error_model.hh"

using namespace nvck;

namespace {

/** Fixed-size keys/values so one pair fits a 64B block. */
struct Record
{
    char key[24];
    char value[40];
};
static_assert(sizeof(Record) == blockBytes, "record must fill a block");

/** The store: block 2i = undo log slot, block 2i+1 = record i. */
class MiniKvStore
{
  public:
    explicit MiniKvStore(unsigned capacity)
        : rank(2 * ((capacity + 31) / 32) * 32), cap(capacity)
    {
        Rng init_rng(7);
        rank.initialize(init_rng);
    }

    void
    put(const std::string &key, const std::string &value)
    {
        unsigned slot;
        auto it = directory.find(key);
        if (it != directory.end()) {
            slot = it->second;
        } else {
            slot = static_cast<unsigned>(directory.size());
            if (slot >= cap) {
                std::printf("store full\n");
                return;
            }
            directory[key] = slot;
        }
        Record rec{};
        std::snprintf(rec.key, sizeof(rec.key), "%s", key.c_str());
        std::snprintf(rec.value, sizeof(rec.value), "%s",
                      value.c_str());
        // Undo log first (old value), then the data block: the order
        // the clwb+fence discipline enforces in the real system.
        std::uint8_t old_rec[blockBytes];
        rank.goldenBlock(dataBlock(slot), old_rec);
        rank.writeBlock(logBlock(slot), old_rec);
        rank.writeBlock(dataBlock(slot),
                        reinterpret_cast<const std::uint8_t *>(&rec));
    }

    /** Get through the full runtime correction path. */
    bool
    get(const std::string &key, std::string &value_out,
        ReadPath *path_out = nullptr)
    {
        auto it = directory.find(key);
        if (it == directory.end())
            return false;
        Record rec;
        const auto res = rank.readBlock(
            dataBlock(it->second),
            reinterpret_cast<std::uint8_t *>(&rec));
        if (path_out != nullptr)
            *path_out = res.path;
        if (res.path == ReadPath::Failed)
            return false;
        value_out.assign(rec.value);
        return true;
    }

    PmRank &memory() { return rank; }

  private:
    unsigned logBlock(unsigned slot) const { return 2 * slot; }
    unsigned dataBlock(unsigned slot) const { return 2 * slot + 1; }

    PmRank rank;
    unsigned cap;
    std::map<std::string, unsigned> directory;
};

} // namespace

int
main()
{
    MiniKvStore store(256);
    Rng rng(99);

    std::printf("mini persistent KV store on the protected rank\n\n");

    // Phase 1: populate and continuously age the memory at the PCM
    // hourly-refresh RBER.
    std::vector<std::pair<std::string, std::string>> truth;
    for (int i = 0; i < 200; ++i) {
        const std::string key = "user:" + std::to_string(i);
        const std::string value =
            "balance=" + std::to_string(i * 37 % 1000);
        store.put(key, value);
        truth.emplace_back(key, value);
        if (i % 10 == 9)
            store.memory().injectErrors(rng,
                                        rber::runtimePcm3Hourly);
    }

    // Verify through the runtime read path.
    unsigned ok = 0, rs_fixed = 0, vlew_fixed = 0;
    for (const auto &[key, expect] : truth) {
        std::string got;
        ReadPath path;
        if (store.get(key, got, &path) && got == expect) {
            ++ok;
            if (path == ReadPath::RsAccepted)
                ++rs_fixed;
            if (path == ReadPath::VlewFallback)
                ++vlew_fixed;
        }
    }
    std::printf("runtime phase: %u/200 gets correct (%u via RS "
                "correction, %u via VLEW fallback)\n",
                ok, rs_fixed, vlew_fixed);

    // Phase 2: crash; a week passes unrefreshed; reboot scrubs.
    store.memory().injectErrors(
        rng, rberAfter(MemTech::Pcm3, secondsPerWeek));
    const auto scrub = store.memory().bootScrub();
    std::printf("reboot after a week offline: %llu bits scrubbed, "
                "uncorrectable=%s\n",
                static_cast<unsigned long long>(scrub.bitsCorrected),
                scrub.uncorrectable ? "YES" : "no");

    // Phase 3: a chip dies during the next outage.
    store.memory().failChip(6, rng);
    store.memory().injectErrors(rng, 1e-4);
    const auto scrub2 = store.memory().bootScrub();
    std::printf("reboot after chip 6 failure: %u chip(s) rebuilt, "
                "uncorrectable=%s\n",
                scrub2.chipsRecovered,
                scrub2.uncorrectable ? "YES" : "no");

    unsigned final_ok = 0;
    for (const auto &[key, expect] : truth) {
        std::string got;
        if (store.get(key, got) && got == expect)
            ++final_ok;
    }
    std::printf("after both outages: %u/200 committed values intact\n",
                final_ok);
    return final_ok == 200 ? 0 : 1;
}
