/**
 * @file
 * Full-system simulation driver: runs any of the sixteen calibrated
 * benchmarks on the timing simulator under a chosen NVRAM technology
 * and prints a performance report comparing the bit-error-only baseline
 * with the paper's proposal (two-pass protocol: characterize C, then
 * evaluate with the iso-endurance write inflation).
 *
 *   usage: simulate_workload [workload] [reram|pcm]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/experiment.hh"
#include "workload/profiles.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "btree";
    PmTech tech = PmTech::Pcm;
    if (argc > 2 && std::strcmp(argv[2], "reram") == 0)
        tech = PmTech::Reram;

    bool known = false;
    for (const auto &name : allBenchmarkNames())
        known = known || name == workload;
    if (!known) {
        std::fprintf(stderr, "unknown workload '%s'; available:",
                     workload.c_str());
        for (const auto &name : allBenchmarkNames())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    RunControl rc;
    rc.warmup = nsToTicks(50000);
    rc.measure = nsToTicks(150000);

    std::printf("simulating %s on %s latencies "
                "(warmup %.0fus, measure %.0fus)...\n\n",
                workload.c_str(), pmTechName(tech).c_str(),
                ticksToNs(rc.warmup) / 1000.0,
                ticksToNs(rc.measure) / 1000.0);

    const auto base = runBaseline(tech, workload, 1, rc);
    const auto prop = runProposal(tech, workload, 1, rc);
    const char *metric =
        findProfile(workload).flops ? "MFLOPS" : "IPC";

    std::printf("%-28s %12s %12s\n", "", "baseline", "proposal");
    std::printf("%-28s %12.4f %12.4f\n", metric, base.perf, prop.perf);
    std::printf("%-28s %12s %12.4f\n", "normalized", "1.0000",
                prop.perf / base.perf);
    std::printf("%-28s %12.1f %12.1f\n", "avg read latency (ns)",
                base.avgReadLatencyNs, prop.avgReadLatencyNs);
    std::printf("%-28s %12.2f %12.2f\n", "row-buffer hit rate (%)",
                100.0 * base.rowHitRate, 100.0 * prop.rowHitRate);
    std::printf("%-28s %12llu %12llu\n", "PM reads",
                static_cast<unsigned long long>(base.pmReads),
                static_cast<unsigned long long>(prop.pmReads));
    std::printf("%-28s %12llu %12llu\n", "PM writes",
                static_cast<unsigned long long>(base.pmWrites),
                static_cast<unsigned long long>(prop.pmWrites));
    std::printf("%-28s %12s %12.3f\n", "C factor (Fig 15)", "-",
                prop.cFactor);
    std::printf("%-28s %12s %12.1f\n", "OMV hit rate (%) (Fig 18)",
                "-", 100.0 * prop.omvHitRate);
    std::printf("%-28s %12s %12llu\n", "VLEW fetches", "-",
                static_cast<unsigned long long>(prop.vlewFetches));
    std::printf("%-28s %12s %12llu\n", "old-data fetches", "-",
                static_cast<unsigned long long>(prop.oldDataFetches));
    std::printf("%-28s %12.2f %12.2f\n", "dirty-PM occupancy (%)",
                100.0 * base.dirtyPmFraction,
                100.0 * prop.dirtyPmFraction);
    return 0;
}
