/**
 * @file
 * Trace capture and replay: the workflow for driving the simulator with
 * *real* application traces instead of the built-in generators. This
 * demo (1) captures a trace from a synthetic workload (stand-in for a
 * PIN/gem5-derived trace), (2) replays it through the full timing
 * system under both the baseline and the proposal, and (3) verifies
 * that replaying the same trace is exactly reproducible.
 */

#include <cstdio>
#include <string>

#include "sim/system.hh"
#include "workload/trace_file.hh"

using namespace nvck;

namespace {

/** Run one scheme over the trace and report IPC. */
double
replayRun(const std::string &path, const SchemeTiming &scheme)
{
    SystemConfig cfg =
        SystemConfig::make(PmTech::Pcm, scheme, "echo" /*unused*/);
    auto replay = std::make_unique<TraceReplayWorkload>(path, 8);
    System sys(cfg, std::move(replay));
    sys.start();
    sys.runUntil(nsToTicks(30000));
    for (unsigned c = 0; c < sys.coreCount(); ++c)
        sys.core(c).resetStats();
    sys.resetStats();
    const Tick measure = nsToTicks(100000);
    sys.runUntil(nsToTicks(30000) + measure);

    std::uint64_t insts = 0;
    for (unsigned c = 0; c < sys.coreCount(); ++c)
        insts += sys.core(c).instructions();
    const double cycles = ticksToNs(measure) * cfg.core.freqGhz;
    return static_cast<double>(insts) / cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/nvchipkill_demo.trace";

    // 1. Capture (in a real flow this file comes from your tracer).
    {
        AddressSpace space;
        auto source = makeWorkload("tpcc", space, 4, 7);
        TraceWriter::capture(*source, path, 4, 20000);
        std::printf("captured 4 x 20000 ops of 'tpcc' to %s\n",
                    path.c_str());
    }

    // 2. Replay through the timing system under both schemes.
    const double base =
        replayRun(path, bitErrorOnlyScheme());
    SchemeTiming prop = proposalScheme(runtimeRberFor(PmTech::Pcm));
    applyCFactor(prop, 0.33); // or run a characterization pass
    const double with_prop = replayRun(path, prop);
    std::printf("replay IPC: baseline %.4f, proposal %.4f "
                "(normalized %.4f)\n",
                base, with_prop, with_prop / base);

    // 3. Determinism: the same trace replays to the same cycle count.
    const double again = replayRun(path, bitErrorOnlyScheme());
    std::printf("replay reproducibility: %.6f vs %.6f -> %s\n", base,
                again, base == again ? "bit-identical" : "DIVERGED");
    std::remove(path.c_str());
    return base == again ? 0 : 1;
}
