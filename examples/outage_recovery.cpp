/**
 * @file
 * Outage-duration study: how long can the machine stay dark before the
 * VLEWs can no longer guarantee data survival? Sweeps outage duration
 * (minutes to years) for ReRAM and 3-bit PCM, injects the corresponding
 * RBER into the bit-accurate rank, scrubs, and reports survival — the
 * paper's "reliable data survival for a week to a year without refresh".
 */

#include <cstdio>
#include <string>
#include <vector>

#include "chipkill/pm_rank.hh"
#include "common/table.hh"
#include "reliability/binomial.hh"
#include "reliability/error_model.hh"

#include <iostream>

using namespace nvck;

int
main()
{
    std::printf("outage-recovery study: VLEW survival vs time without "
                "refresh\n\n");

    const std::vector<std::pair<std::string, double>> outages = {
        {"1 hour", secondsPerHour},   {"1 day", secondsPerDay},
        {"1 week", secondsPerWeek},   {"1 month", 30 * secondsPerDay},
        {"1 year", secondsPerYear},
    };

    Table t({"outage", "tech", "RBER", "errors injected",
             "scrub result", "P(VLEW fails) analytical"});
    for (MemTech tech : {MemTech::Reram, MemTech::Pcm3}) {
        for (const auto &[label, seconds] : outages) {
            const double rber = rberAfter(tech, seconds);
            PmRank rank(512);
            Rng rng(static_cast<std::uint64_t>(seconds) + 17);
            rank.initialize(rng);
            const auto injected = rank.injectErrors(rng, rber);
            const auto report = rank.bootScrub();
            const bool survived =
                !report.uncorrectable && rank.isPristine();
            // Analytical per-VLEW failure probability at this RBER:
            // >22 errors in a 2312-bit word.
            const double p_fail = binomialTail(2312, 23, rber);
            t.row()
                .cell(label)
                .cell(memTechName(tech))
                .cell(rber, 2)
                .cell(injected)
                .cell(survived ? "all data recovered"
                               : "UNCORRECTABLE")
                .cell(p_fail, 2);
        }
    }
    t.print(std::cout);

    std::printf("\nTakeaway: at the design RBER of 1e-3 (ReRAM @ 1 "
                "year, 3-bit PCM @ 1 week),\nthe per-VLEW failure "
                "probability stays below the 1e-15-per-block budget;\n"
                "3-bit PCM left dark for a full year (4e-3) exceeds "
                "the design point and is\nexpected to fail in larger "
                "memories — refresh-interval policy matters.\n");
    return 0;
}
