/**
 * @file
 * Design-space explorer: an architect's calculator over the analytical
 * models. For a chosen raw bit error rate (default: the 1e-3 boot
 * target; pass another on the command line), prints what every
 * protection strategy costs and where the proposal's decoupled design
 * lands, including the runtime threshold/SDC trade-off.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "ecc/code_params.hh"
#include "reliability/error_model.hh"
#include "reliability/sdc_model.hh"
#include "reliability/storage_model.hh"

using namespace nvck;

int
main(int argc, char **argv)
{
    double rber = rber::bootTarget;
    if (argc > 1)
        rber = std::atof(argv[1]);
    if (rber <= 0.0 || rber >= 0.5) {
        std::fprintf(stderr, "usage: %s [rber in (0, 0.5)]\n", argv[0]);
        return 1;
    }

    std::printf("design-space explorer @ boot RBER %.2e "
                "(UE target 1e-15/block)\n\n",
                rber);

    StorageTargets in;
    in.rber = rber;

    std::printf("1. chipkill-correct strategies:\n");
    Table t({"strategy", "correction", "total storage",
             "chip failure?"});
    const auto bit_only = bitErrorOnlyBch(in);
    const auto brute = bruteForceChipkillBch(in);
    const auto xed = xedExtension(in);
    const auto samsung = samsungExtension(in);
    const auto duo = duoExtension(in);
    const auto vlew = vlewScheme(in, 256);
    auto add_row = [&t](const StorageSolution &s, const char *fail) {
        t.row().cell(s.scheme);
        if (s.feasible) {
            t.cell(std::to_string(s.t) + "-EC").pct(s.totalOverhead);
        } else {
            t.cell("-").cell("infeasible");
        }
        t.cell(fail);
    };
    add_row(bit_only, "no");
    add_row(brute, "yes");
    add_row(xed, "yes");
    add_row(samsung, "yes");
    add_row(duo, "yes");
    add_row(vlew, "yes  <- the proposal");
    t.print(std::cout);

    std::printf("\n2. VLEW length sweep (why 256B):\n");
    Table t2({"data/word", "t", "total storage"});
    for (const auto &row : vlewSweep(in, {16, 64, 256, 1024})) {
        t2.row()
            .cell(row.scheme)
            .cell(std::uint64_t{row.t})
            .pct(row.totalOverhead);
    }
    t2.print(std::cout);

    std::printf("\n3. runtime threshold trade-off (RS(72,64), "
                "runtime RBER 2e-4):\n");
    SdcInputs sdc;
    sdc.rber = rber::runtimePcm3Hourly;
    Table t3({"accept <= t corrections", "SDC rate", "meets 1e-17?",
              "VLEW fallback rate"});
    for (unsigned thr : {1u, 2u, 3u, 4u}) {
        const double rate = sdcRate(sdc, thr);
        t3.row()
            .cell(std::uint64_t{thr})
            .cell(rate, 2)
            .cell(rate <= rber::sdcTargetPerBlock ? "yes" : "NO")
            .pct(vlewFallbackFraction(sdc, thr), 3);
    }
    t3.print(std::cout);
    std::printf("\nThe paper picks threshold 2: the largest value that "
                "meets the SDC target,\nminimizing VLEW fallback "
                "bandwidth.\n");
    return 0;
}
