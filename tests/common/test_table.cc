#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace nvck {
namespace {

TEST(Table, PrintsHeadersAndRows)
{
    Table t({"scheme", "storage"});
    t.row().cell("proposal").pct(0.27);
    t.row().cell("duo-ext").pct(0.69);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("scheme"), std::string::npos);
    EXPECT_NE(text.find("27.0%"), std::string::npos);
    EXPECT_NE(text.find("69.0%"), std::string::npos);
}

TEST(Table, FormatsSmallNumbersScientifically)
{
    EXPECT_EQ(Table::formatNumber(3.3e-22, 2), "3.3e-22");
    EXPECT_EQ(Table::formatNumber(0.0, 3), "0");
}

TEST(Table, FormatsModerateNumbersPlainly)
{
    EXPECT_EQ(Table::formatNumber(27.0, 4), "27");
    EXPECT_EQ(Table::formatNumber(1.5, 2), "1.5");
}

TEST(Table, IntegerCells)
{
    Table t({"n"});
    t.row().cell(std::uint64_t{4095});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("4095"), std::string::npos);
}

} // namespace
} // namespace nvck
