#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace nvck {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    h.sample(9); // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflowed(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, Cumulative)
{
    Histogram h(8);
    for (std::size_t v : {0u, 0u, 1u, 2u, 7u})
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 2.0 / 5.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2), 4.0 / 5.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(7), 1.0);
}

TEST(StatGroup, DumpsNamedScalars)
{
    StatGroup g("llc");
    g.record("hits", 10);
    g.record("misses", 2);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("llc.hits 10"), std::string::npos);
    EXPECT_NE(os.str().find("llc.misses 2"), std::string::npos);
}

} // namespace
} // namespace nvck
