#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace nvck {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    h.sample(9); // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflowed(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, Cumulative)
{
    Histogram h(8);
    for (std::size_t v : {0u, 0u, 1u, 2u, 7u})
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 2.0 / 5.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2), 4.0 / 5.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(7), 1.0);
}

TEST(Histogram, MergeAddsCountsAndGrows)
{
    Histogram a(4), b(8);
    a.sample(0);
    a.sample(3);
    a.sample(9); // overflow for a
    b.sample(3);
    b.sample(6);
    a.merge(b);
    EXPECT_EQ(a.buckets(), 8u);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(3), 2u);
    EXPECT_EQ(a.bucket(6), 1u);
    EXPECT_EQ(a.overflowed(), 1u);
    EXPECT_EQ(a.samples(), 5u);
}

TEST(Histogram, MergeOrderInvariant)
{
    // Per-worker partials must fold to the serial result whatever the
    // merge order — the property the engine's barrier merge relies on.
    Histogram serial(8), m1(8), m2(8), m3(8);
    int v = 0;
    for (Histogram *part : {&m1, &m2, &m3}) {
        for (int i = 0; i < 5; ++i, ++v) {
            part->sample(static_cast<std::size_t>(v % 8));
            serial.sample(static_cast<std::size_t>(v % 8));
        }
    }
    Histogram fwd(8);
    fwd.merge(m1);
    fwd.merge(m2);
    fwd.merge(m3);
    Histogram rev(8);
    rev.merge(m3);
    rev.merge(m2);
    rev.merge(m1);
    for (std::size_t k = 0; k < 8; ++k) {
        EXPECT_EQ(fwd.bucket(k), serial.bucket(k));
        EXPECT_EQ(rev.bucket(k), serial.bucket(k));
    }
}

TEST(StatGroup, MergeSumsScalars)
{
    StatGroup a("mem"), b("mem");
    a.record("reads", 10);
    a.record("writes", 4);
    b.record("reads", 5);
    b.record("rowHits", 7);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.values().at("reads"), 15.0);
    EXPECT_DOUBLE_EQ(a.values().at("writes"), 4.0);
    EXPECT_DOUBLE_EQ(a.values().at("rowHits"), 7.0);
}

TEST(StatGroup, DumpsNamedScalars)
{
    StatGroup g("llc");
    g.record("hits", 10);
    g.record("misses", 2);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("llc.hits 10"), std::string::npos);
    EXPECT_NE(os.str().find("llc.misses 2"), std::string::npos);
}

} // namespace
} // namespace nvck
