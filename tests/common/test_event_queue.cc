/**
 * @file
 * Property suite for the two event-queue kernels. The calendar queue
 * must be indistinguishable from the legacy heap in execution order —
 * every test that pins ordering runs against both kernels, and a
 * randomized differential drain compares them event for event. The
 * pool tests assert the tentpole's zero-steady-state-allocation claim
 * through the pool high-water counter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/event.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace nvck {
namespace {

class EventQueueKernels
    : public ::testing::TestWithParam<EventKernel>
{};

INSTANTIATE_TEST_SUITE_P(Kernels, EventQueueKernels,
                         ::testing::Values(EventKernel::Calendar,
                                           EventKernel::Heap),
                         [](const auto &info) {
                             return std::string(
                                 eventKernelName(info.param));
                         });

TEST_P(EventQueueKernels, FifoTieOrderAtOneTick)
{
    EventQueue eq(GetParam());
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(EventQueueKernels, FifoTiesInterleavedWithOtherTicks)
{
    // Ties at tick 50 are declared between events at other ticks; the
    // tie-break must follow declaration order, not bucket/heap layout.
    EventQueue eq(GetParam());
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(0); });
    eq.schedule(10, [&] { order.push_back(100); });
    eq.schedule(50, [&] { order.push_back(1); });
    eq.schedule(90, [&] { order.push_back(200); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{100, 0, 1, 2, 200}));
}

TEST_P(EventQueueKernels, ScheduleDuringExecuteRunsInOrder)
{
    EventQueue eq(GetParam());
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        // Same-tick insert during execution: runs after already-queued
        // same-tick events (larger seq), before later ticks.
        eq.schedule(10, [&] { order.push_back(3); });
        eq.schedule(20, [&] { order.push_back(4); });
    });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.stats().executed.value(), 4u);
}

TEST_P(EventQueueKernels, HaltStopsAfterCurrentEventAndResumes)
{
    // The crash-injector contract: halt() inside an event freezes the
    // queue at that event's tick with everything else still pending; a
    // later run picks up exactly where the machine died.
    EventQueue eq(GetParam());
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] {
        order.push_back(2);
        eq.halt();
    });
    eq.schedule(30, [&] { order.push_back(3); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 20u); // not advanced to the limit
    EXPECT_EQ(eq.pending(), 1u);

    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_TRUE(eq.empty());
}

TEST_P(EventQueueKernels, RunUntilIdleAdvanceThenScheduleKeepsOrder)
{
    // Regression for the calendar tier's window advance: an idle
    // runUntil() moves now() forward without executing anything. An
    // event E far in the future (overflow tier) followed by a direct
    // schedule F at the same tick after the advance must still run
    // E-before-F (E has the smaller seq).
    EventQueue eq(GetParam());
    std::vector<int> order;
    const Tick far = EventQueue::ringSpan + 500;
    eq.schedule(far, [&] { order.push_back(1); }); // E: overflow
    eq.runUntil(far - 100); // idle advance; window now covers far
    eq.schedule(far, [&] { order.push_back(2); }); // F: direct bucket
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EventQueueKernels, OverflowPromotionPreservesSeqOrder)
{
    // Events straddling the ring window at the same far tick, declared
    // alternately before (overflow) and after (bucket) the window
    // advance, must drain in declaration order.
    EventQueue eq(GetParam());
    std::vector<int> order;
    const Tick far = 2 * EventQueue::ringSpan + 7;
    eq.schedule(far, [&] { order.push_back(0); });
    eq.schedule(far + 1, [&] { order.push_back(10); });
    // Advance time by executing an early event so the window slides.
    eq.schedule(EventQueue::ringSpan + 100, [&, far] {
        eq.schedule(far, [&] { order.push_back(1); });
        eq.schedule(far + 1, [&] { order.push_back(11); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
    if (GetParam() == EventKernel::Calendar)
        EXPECT_GE(eq.stats().overflowPromotions.value(), 2u);
}

TEST_P(EventQueueKernels, RecurringRearmRunsAndReuses)
{
    EventQueue eq(GetParam());
    int fired = 0;
    EventQueue::Recurring ev;
    ev = eq.makeRecurring([&] {
        ++fired;
        if (fired < 5)
            eq.rearm(ev, eq.now() + 10);
    });
    eq.rearm(ev, 10);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.stats().executed.value(), 5u);
}

TEST_P(EventQueueKernels, RecurringInterleavesWithPlainEventsBySeq)
{
    EventQueue eq(GetParam());
    std::vector<int> order;
    EventQueue::Recurring ev =
        eq.makeRecurring([&] { order.push_back(0); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.rearm(ev, 10); // same tick, later seq: runs after
    eq.schedule(10, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST_P(EventQueueKernels, SchedulingIntoThePastDies)
{
    EventQueue eq(GetParam());
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);
    EXPECT_DEATH(eq.schedule(99, [] {}), "schedule into the past");
}

TEST_P(EventQueueKernels, RearmIntoThePastDies)
{
    EventQueue eq(GetParam());
    EventQueue::Recurring ev = eq.makeRecurring([] {});
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.rearm(ev, 99), "schedule into the past");
}

TEST(EventQueuePool, ChurnReusesNodesWithoutGrowth)
{
    // Steady-state churn: after warm-up, scheduling must never grow
    // the pool — the high-water mark is the zero-allocation assertion.
    EventQueue eq(EventKernel::Calendar);
    const int depth = 64;
    std::uint64_t executed = 0;
    for (int i = 0; i < depth; ++i) {
        eq.schedule(static_cast<Tick>(i + 1),
                    [&executed] { ++executed; });
    }
    const std::size_t highWater = eq.stats().poolHighWater;
    EXPECT_GE(highWater, static_cast<std::size_t>(depth));

    // 100k reschedules at the same steady depth.
    EventQueue::Recurring churn;
    std::uint64_t rounds = 0;
    churn = eq.makeRecurring([&] {
        for (int i = 0; i < depth; ++i)
            eq.schedule(eq.now() + static_cast<Tick>(i + 1),
                        [&executed] { ++executed; });
        if (++rounds < 1000)
            eq.rearm(churn, eq.now() + depth + 1);
    });
    eq.rearm(churn, depth + 1);
    eq.run();

    EXPECT_EQ(executed, static_cast<std::uint64_t>(depth) * 1001);
    // +1 allows the recurring node itself, allocated after warm-up.
    EXPECT_LE(eq.stats().poolHighWater, highWater + 1);
    EXPECT_EQ(eq.stats().peakPending,
              static_cast<std::size_t>(depth) + 1);
}

TEST(EventQueuePool, OverflowChurnStaysFlatToo)
{
    // Far-future scheduling exercises the overflow heap + promotion
    // path; nodes must still recycle once the window catches up.
    EventQueue eq(EventKernel::Calendar);
    std::uint64_t executed = 0;
    EventQueue::Recurring churn;
    std::uint64_t rounds = 0;
    churn = eq.makeRecurring([&] {
        for (int i = 0; i < 8; ++i) {
            eq.schedule(eq.now() + EventQueue::ringSpan +
                            static_cast<Tick>(i),
                        [&executed] { ++executed; });
        }
        if (++rounds < 200)
            eq.rearm(churn, eq.now() + EventQueue::ringSpan / 2);
    });
    eq.rearm(churn, 1);
    eq.run();
    EXPECT_EQ(executed, 8u * 200u);
    EXPECT_GT(eq.stats().overflowPromotions.value(), 0u);
    // 8 in-flight plain events + recurring node + slack for the rounds
    // where two batches overlap; far below one node per schedule.
    EXPECT_LE(eq.stats().poolHighWater, 32u);
}

/**
 * Randomized differential drain: the same schedule script must execute
 * in the same order, at the same ticks, on both kernels. The script
 * mixes same-tick ties, short and beyond-window delays, reentrant
 * scheduling from inside events, and occasional halts.
 */
TEST(EventQueueDifferential, RandomScriptsDrainIdentically)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto runScript = [seed](EventKernel kernel) {
            EventQueue eq(kernel);
            Rng rng(seed * 977 + 13);
            std::vector<std::pair<Tick, int>> trace;
            int nextId = 0;

            // Each firing schedules 0-2 follow-ons up to depth 3,
            // covering schedule-during-execute on both tiers. The
            // std::function outlives the drain, so the scheduled
            // closures' references stay valid.
            std::function<void(int, int)> fire;
            fire = [&](int id, int depth) {
                trace.emplace_back(eq.now(), id);
                if (depth >= 3)
                    return;
                const std::uint64_t kids = rng.below(3);
                for (std::uint64_t k = 0; k < kids; ++k) {
                    const Tick delay =
                        rng.chance(0.2)
                            ? EventQueue::ringSpan + rng.below(5000)
                            : rng.below(300);
                    const int kid = nextId++;
                    eq.schedule(eq.now() + delay,
                                [&fire, kid, depth] {
                                    fire(kid, depth + 1);
                                });
                }
            };

            for (int i = 0; i < 200; ++i) {
                const Tick when =
                    rng.chance(0.15)
                        ? EventQueue::ringSpan + rng.below(50000)
                        : rng.below(2000);
                const int id = nextId++;
                eq.schedule(when, [&fire, id] { fire(id, 0); });
            }
            // Drain through a couple of runUntil windows (idle advance
            // + resume) before finishing.
            eq.runUntil(1000);
            eq.runUntil(EventQueue::ringSpan + 1000);
            eq.run();
            return std::make_pair(trace, eq.stats().executed.value());
        };

        const auto calendar = runScript(EventKernel::Calendar);
        const auto heap = runScript(EventKernel::Heap);
        ASSERT_EQ(calendar.second, heap.second) << "seed " << seed;
        ASSERT_EQ(calendar.first.size(), heap.first.size())
            << "seed " << seed;
        for (std::size_t i = 0; i < calendar.first.size(); ++i) {
            ASSERT_EQ(calendar.first[i], heap.first[i])
                << "seed " << seed << " event " << i;
        }
    }
}

TEST(EventQueueDifferential, LambdaCapturesUpTo48BytesFitInline)
{
    // Compile-time contract: a 48-byte capture is accepted. (A larger
    // one is a static_assert failure — cannot be a runtime test.)
    EventQueue eq(EventKernel::Calendar);
    struct Fat
    {
        std::uint64_t a[5];
        std::uint32_t b;
        void operator()() const {}
    };
    static_assert(sizeof(Fat) <= InlineAction::capacity);
    eq.schedule(10, Fat{});
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
}

} // namespace
} // namespace nvck
