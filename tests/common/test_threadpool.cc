#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "common/threadpool.hh"

namespace nvck {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(8);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(64);
    pool.parallelFor(64, [&](std::size_t i) { ran[i] = caller; });
    for (const auto &id : ran)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, MapPreservesSubmissionOrder)
{
    ThreadPool pool(4);
    const auto out = pool.map<std::size_t>(
        1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    // A body that itself calls parallelFor must not deadlock; the
    // nested call degrades to serial execution on the same thread.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(16, [&](std::size_t) {
        pool.parallelFor(16, [&](std::size_t j) {
            sum.fetch_add(j, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(sum.load(), 16u * (15u * 16u / 2));
}

TEST(ThreadPool, ManyConsecutiveBatches)
{
    // Back-to-back batches stress the epoch/straggler handoff the TSan
    // CI job watches.
    ThreadPool pool(8);
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(64, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        ASSERT_EQ(sum.load(), 64u * 65u / 2);
    }
}

TEST(ThreadPool, UnbalancedWorkStealing)
{
    // One index carries most of the work; stealing should still finish
    // and cover everything.
    ThreadPool pool(8);
    std::vector<std::uint64_t> out(256, 0);
    pool.parallelFor(256, [&](std::size_t i) {
        std::uint64_t iters = i == 0 ? 2000000 : 100;
        std::uint64_t acc = 1;
        for (std::uint64_t k = 0; k < iters; ++k)
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        out[i] = acc | 1;
    });
    for (const auto v : out)
        EXPECT_NE(v, 0u);
}

TEST(ThreadPool, ZeroAndOneCounts)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, DefaultJobCountHonorsEnv)
{
    ::setenv("NVCK_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobCount(), 3u);
    ::unsetenv("NVCK_JOBS");
    EXPECT_GE(ThreadPool::defaultJobCount(), 1u);
    // Malformed values no longer fall back silently: common/env.hh
    // rejects them with a one-line error and exit(2), covered by the
    // EnvParse death tests.
}

} // namespace
} // namespace nvck
