/**
 * @file
 * Strict environment-knob parsing (common/env.hh): the pure parsers
 * cover every malformed shape, and death tests pin the exit(2) policy
 * for garbage NVCK_JOBS / NVCK_CODEC_KERNEL values. The death tests
 * deliberately avoid the Crash and parallel-engine suite names so they
 * stay out of the TSan CI regex (fork-based death tests are unreliable
 * under TSan).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.hh"
#include "sim/ras.hh"

using namespace nvck;

TEST(EnvParse, AcceptsPlainPositiveIntegers)
{
    EXPECT_EQ(parsePositive("1"), 1u);
    EXPECT_EQ(parsePositive("8"), 8u);
    EXPECT_EQ(parsePositive("4096"), 4096u);
    EXPECT_EQ(parsePositive("18446744073709551615"),
              UINT64_MAX);
}

TEST(EnvParse, RejectsMalformedIntegers)
{
    EXPECT_FALSE(parsePositive(nullptr));
    EXPECT_FALSE(parsePositive(""));
    EXPECT_FALSE(parsePositive("0"));
    EXPECT_FALSE(parsePositive("-4"));
    EXPECT_FALSE(parsePositive("+4"));
    EXPECT_FALSE(parsePositive(" 4"));
    EXPECT_FALSE(parsePositive("4 "));
    EXPECT_FALSE(parsePositive("4x"));
    EXPECT_FALSE(parsePositive("x4"));
    EXPECT_FALSE(parsePositive("4.5"));
    EXPECT_FALSE(parsePositive("0x10"));
    // One past UINT64_MAX: overflow must not wrap.
    EXPECT_FALSE(parsePositive("18446744073709551616"));
}

TEST(EnvParse, EnforcesUpperBound)
{
    EXPECT_EQ(parsePositive("1024", 1024), 1024u);
    EXPECT_FALSE(parsePositive("1025", 1024));
}

TEST(EnvParse, MatchesChoicesExactly)
{
    const auto choices = {"scalar", "sliced"};
    EXPECT_EQ(parseChoice("scalar", choices), 0u);
    EXPECT_EQ(parseChoice("sliced", choices), 1u);
    EXPECT_FALSE(parseChoice("Sliced", choices));
    EXPECT_FALSE(parseChoice("scalar ", choices));
    EXPECT_FALSE(parseChoice("", choices));
    EXPECT_FALSE(parseChoice(nullptr, choices));
}

TEST(EnvParse, UnsetKnobIsAbsent)
{
    ::unsetenv("NVCK_TEST_KNOB");
    EXPECT_FALSE(envPositive("NVCK_TEST_KNOB"));
    EXPECT_FALSE(envChoice("NVCK_TEST_KNOB", {"a", "b"}));
}

TEST(EnvParse, WellFormedKnobReadsBack)
{
    ::setenv("NVCK_TEST_KNOB", "12", 1);
    EXPECT_EQ(envPositive("NVCK_TEST_KNOB"), 12u);
    ::setenv("NVCK_TEST_KNOB", "b", 1);
    EXPECT_EQ(envChoice("NVCK_TEST_KNOB", {"a", "b"}), 1u);
    ::unsetenv("NVCK_TEST_KNOB");
}

using EnvParseDeathTest = ::testing::Test;

TEST(EnvParseDeathTest, GarbageIntegerKnobExitsWithError)
{
    ::setenv("NVCK_TEST_KNOB", "fast", 1);
    EXPECT_EXIT(envPositive("NVCK_TEST_KNOB"),
                ::testing::ExitedWithCode(2), "NVCK_TEST_KNOB.*'fast'");
    ::unsetenv("NVCK_TEST_KNOB");
}

TEST(EnvParseDeathTest, GarbageChoiceKnobExitsWithError)
{
    ::setenv("NVCK_TEST_KNOB", "vectorized", 1);
    EXPECT_EXIT(envChoice("NVCK_TEST_KNOB", {"scalar", "sliced"}),
                ::testing::ExitedWithCode(2),
                "NVCK_TEST_KNOB.*scalar, sliced.*'vectorized'");
    ::unsetenv("NVCK_TEST_KNOB");
}

// The hot-sparing knobs ride the same strict parser end to end
// through RasConfig::fromEnv(). (Test names deliberately avoid the
// TSan CI regex tokens; see the file comment.)

TEST(EnvParseDeathTest, GarbageArmedKnobExitsWithError)
{
    ::setenv("NVCK_SPARE_ARMED", "maybe", 1);
    EXPECT_EXIT(RasConfig::fromEnv(), ::testing::ExitedWithCode(2),
                "NVCK_SPARE_ARMED.*off, on.*'maybe'");
    ::unsetenv("NVCK_SPARE_ARMED");
}

TEST(EnvParseDeathTest, GarbageRebuildBlocksKnobExitsWithError)
{
    ::setenv("NVCK_SPARE_REBUILD_BLOCKS", "-32", 1);
    EXPECT_EXIT(RasConfig::fromEnv(), ::testing::ExitedWithCode(2),
                "NVCK_SPARE_REBUILD_BLOCKS.*'-32'");
    ::unsetenv("NVCK_SPARE_REBUILD_BLOCKS");
}

TEST(EnvParseDeathTest, GarbageRebuildIntervalKnobExitsWithError)
{
    ::setenv("NVCK_SPARE_REBUILD_INTERVAL", "60ns", 1);
    EXPECT_EXIT(RasConfig::fromEnv(), ::testing::ExitedWithCode(2),
                "NVCK_SPARE_REBUILD_INTERVAL.*'60ns'");
    ::unsetenv("NVCK_SPARE_REBUILD_INTERVAL");
}

TEST(EnvParseDeathTest, GarbagePatrolOrderKnobExitsWithError)
{
    ::setenv("NVCK_RAS_PATROL_ORDER", "hottest", 1);
    EXPECT_EXIT(RasConfig::fromEnv(), ::testing::ExitedWithCode(2),
                "NVCK_RAS_PATROL_ORDER.*wear, addr.*'hottest'");
    ::unsetenv("NVCK_RAS_PATROL_ORDER");
}
