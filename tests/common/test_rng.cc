#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace nvck {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(37), 37u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(5);
    const std::uint64_t buckets = 8;
    std::uint64_t counts[8] = {};
    const int samples = 80000;
    for (int i = 0; i < samples; ++i)
        ++counts[rng.below(buckets)];
    for (auto c : counts) {
        EXPECT_GT(c, samples / 8 * 0.9);
        EXPECT_LT(c, samples / 8 * 1.1);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(17);
    const double p = 0.02;
    double sum = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i)
        sum += static_cast<double>(rng.geometric(p));
    EXPECT_NEAR(sum / samples, 1.0 / p, 0.05 / p);
}

TEST(Rng, GeometricOfOneIsOne)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, BinomialSmallMean)
{
    Rng rng(23);
    const std::uint64_t n = 1000000;
    const double p = 1e-5; // mean 10, exercises the geometric-skip path
    double sum = 0;
    const int samples = 4000;
    for (int i = 0; i < samples; ++i)
        sum += static_cast<double>(rng.binomial(n, p));
    EXPECT_NEAR(sum / samples, n * p, 0.05 * n * p);
}

TEST(Rng, BinomialLargeMean)
{
    Rng rng(29);
    const std::uint64_t n = 100000;
    const double p = 0.5; // exercises the Gaussian path
    double sum = 0;
    const int samples = 2000;
    for (int i = 0; i < samples; ++i) {
        const auto s = rng.binomial(n, p);
        ASSERT_LE(s, n);
        sum += static_cast<double>(s);
    }
    EXPECT_NEAR(sum / samples, n * p, 0.01 * n * p);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(31);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(RngSubstream, FixedVectorRegression)
{
    // Frozen outputs: any change to the (seed, index) -> stream mapping
    // silently breaks reproducibility of archived experiment results,
    // so the exact values are pinned here.
    EXPECT_EQ(Rng::substreamSeed(42, 0), 0x032bd39e1a01ca35ull);

    const std::uint64_t expect0[] = {
        0x49ca749989ee4fbeull, 0xa15782a7ccea9c6bull,
        0x5dc233b454e73181ull, 0x6233ee3dab9bc8b6ull};
    const std::uint64_t expect1[] = {
        0xb7deae71d8ba16e3ull, 0xde33d6e96f2705e7ull,
        0xdbc598b2129a9b25ull, 0x11d5605352bb4e17ull};
    const std::uint64_t expect12345[] = {
        0xdf6b71c5df4a9eb6ull, 0x70778c6d15f02e04ull,
        0x75058f5264967917ull, 0xce2f3aa2c3b24460ull};

    Rng s0 = Rng(42).substream(0);
    Rng s1 = Rng(42).substream(1);
    Rng s12345 = Rng(42).substream(12345);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(s0.next(), expect0[i]);
        EXPECT_EQ(s1.next(), expect1[i]);
        EXPECT_EQ(s12345.next(), expect12345[i]);
    }
}

TEST(RngSubstream, ReproducibleAndIndexDistinct)
{
    Rng a = Rng(7).substream(3);
    Rng b = Rng(7).substream(3);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(a.next(), b.next());

    // Distinct trial indices must yield distinct streams.
    Rng c = Rng(7).substream(4);
    Rng d = Rng(7).substream(3);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (c.next() == d.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngSubstream, IndependentOfParentState)
{
    // The substream derives from the construction seed, not the current
    // position, so trial i sees the same stream no matter how much of
    // the parent stream was consumed first (serial vs worker threads).
    Rng fresh(99);
    Rng advanced(99);
    for (int i = 0; i < 1000; ++i)
        advanced.next();
    Rng s1 = fresh.substream(5);
    Rng s2 = advanced.substream(5);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(s1.next(), s2.next());
}

TEST(RngSubstream, NoSharedValuesAcrossStreams)
{
    // Adjacent substreams land in unrelated xoshiro states; their
    // prefixes should share no 64-bit outputs at all.
    std::set<std::uint64_t> seen;
    Rng s0 = Rng(1).substream(0);
    for (int i = 0; i < 4096; ++i)
        seen.insert(s0.next());
    Rng s1 = Rng(1).substream(1);
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(seen.count(s1.next()), 0u);
}

TEST(RngJump, FixedVectorAndDisjoint)
{
    Rng j(42);
    j.jump();
    EXPECT_EQ(j.next(), 0x50086ef83cbf4f4aull);
    EXPECT_EQ(j.next(), 0xba285ec21347d703ull);

    // The jumped stream (2^128 steps ahead) must not revisit the
    // parent's prefix.
    std::set<std::uint64_t> prefix;
    Rng base(42);
    for (int i = 0; i < 4096; ++i)
        prefix.insert(base.next());
    Rng jumped(42);
    jumped.jump();
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(prefix.count(jumped.next()), 0u);
}

} // namespace
} // namespace nvck
