#include <gtest/gtest.h>

#include "common/rng.hh"

namespace nvck {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(37), 37u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(5);
    const std::uint64_t buckets = 8;
    std::uint64_t counts[8] = {};
    const int samples = 80000;
    for (int i = 0; i < samples; ++i)
        ++counts[rng.below(buckets)];
    for (auto c : counts) {
        EXPECT_GT(c, samples / 8 * 0.9);
        EXPECT_LT(c, samples / 8 * 1.1);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(17);
    const double p = 0.02;
    double sum = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i)
        sum += static_cast<double>(rng.geometric(p));
    EXPECT_NEAR(sum / samples, 1.0 / p, 0.05 / p);
}

TEST(Rng, GeometricOfOneIsOne)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, BinomialSmallMean)
{
    Rng rng(23);
    const std::uint64_t n = 1000000;
    const double p = 1e-5; // mean 10, exercises the geometric-skip path
    double sum = 0;
    const int samples = 4000;
    for (int i = 0; i < samples; ++i)
        sum += static_cast<double>(rng.binomial(n, p));
    EXPECT_NEAR(sum / samples, n * p, 0.05 * n * p);
}

TEST(Rng, BinomialLargeMean)
{
    Rng rng(29);
    const std::uint64_t n = 100000;
    const double p = 0.5; // exercises the Gaussian path
    double sum = 0;
    const int samples = 2000;
    for (int i = 0; i < samples; ++i) {
        const auto s = rng.binomial(n, p);
        ASSERT_LE(s, n);
        sum += static_cast<double>(s);
    }
    EXPECT_NEAR(sum / samples, n * p, 0.01 * n * p);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(31);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

} // namespace
} // namespace nvck
