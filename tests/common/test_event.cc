#include <gtest/gtest.h>

#include <vector>

#include "common/event.hh"

namespace nvck {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(9, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(25);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, HaltStopsAfterCurrentEvent)
{
    // The crash campaigns cut power from inside an event: the current
    // event finishes, no later event runs, time stays at the cut (the
    // dead machine lived no further), and the queue survives so the
    // "rebooted" machine can be driven again.
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.halt();
    });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);

    // A later run clears the halt flag and resumes normally.
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, HaltOutsideRunIsANoOp)
{
    EventQueue eq;
    int fired = 0;
    eq.halt(); // nothing in flight; next run starts fresh
    eq.schedule(5, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 5u);
}

} // namespace
} // namespace nvck
