#include <gtest/gtest.h>

#include <cstring>

#include "common/bitvec.hh"
#include "common/rng.hh"

namespace nvck {
namespace {

TEST(BitVec, StartsZeroed)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip)
{
    BitVec v(200);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(199, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(199));
    EXPECT_EQ(v.popcount(), 4u);

    v.flip(63);
    EXPECT_FALSE(v.get(63));
    v.flip(63);
    EXPECT_TRUE(v.get(63));

    v.set(0, false);
    EXPECT_FALSE(v.get(0));
    EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, XorAndDistance)
{
    BitVec a(100), b(100);
    a.set(3, true);
    a.set(70, true);
    b.set(70, true);
    b.set(99, true);
    EXPECT_EQ(a.distance(b), 2u);

    a ^= b;
    EXPECT_TRUE(a.get(3));
    EXPECT_FALSE(a.get(70));
    EXPECT_TRUE(a.get(99));
}

TEST(BitVec, EqualityRespectsLength)
{
    BitVec a(10), b(10), c(11);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    b.set(5, true);
    EXPECT_FALSE(a == b);
}

TEST(BitVec, RandomizeMasksTail)
{
    Rng rng(7);
    BitVec v(70); // 6 tail bits in second word
    v.randomize(rng);
    // Popcount must count only in-range bits: flipping every in-range bit
    // must bring popcount to size - popcount.
    const std::size_t ones = v.popcount();
    for (std::size_t i = 0; i < v.size(); ++i)
        v.flip(i);
    EXPECT_EQ(v.popcount(), v.size() - ones);
}

TEST(BitVec, InjectExactErrors)
{
    Rng rng(11);
    BitVec v(512);
    v.injectExactErrors(rng, 14);
    EXPECT_EQ(v.popcount(), 14u);
}

TEST(BitVec, InjectErrorsMatchesRate)
{
    Rng rng(13);
    const double ber = 1e-3;
    const std::size_t bits = 1 << 16;
    std::size_t total = 0;
    const int trials = 40;
    for (int i = 0; i < trials; ++i) {
        BitVec v(bits);
        total += v.injectErrors(rng, ber);
    }
    const double expected = ber * bits * trials;
    EXPECT_NEAR(static_cast<double>(total), expected, 0.25 * expected);
}

TEST(BitVec, GetSetBitsRoundTrip)
{
    BitVec v(256);
    v.setBits(60, 16, 0xBEEF); // straddles a word boundary
    EXPECT_EQ(v.getBits(60, 16), 0xBEEFu);
    v.setBits(128, 64, 0x0123456789ABCDEFull);
    EXPECT_EQ(v.getBits(128, 64), 0x0123456789ABCDEFull);
    EXPECT_EQ(v.getBits(60, 16), 0xBEEFu); // earlier field undisturbed
}

TEST(BitVec, SetBitsDoesNotClobberNeighbours)
{
    BitVec v(128);
    v.setBits(0, 8, 0xFF);
    v.setBits(16, 8, 0xFF);
    v.setBits(8, 8, 0x00);
    EXPECT_EQ(v.getBits(0, 8), 0xFFu);
    EXPECT_EQ(v.getBits(8, 8), 0x00u);
    EXPECT_EQ(v.getBits(16, 8), 0xFFu);
}

TEST(BitVec, CopyRangeMatchesBitwise)
{
    Rng rng(17);
    // Mix of aligned/unaligned offsets and lengths, including the
    // whole-word fast path and masked tails.
    const struct
    {
        std::size_t dst, src, count;
    } cases[] = {
        {0, 0, 264},   {0, 0, 64},    {0, 0, 1},    {64, 128, 100},
        {5, 0, 264},   {0, 7, 200},   {13, 29, 191}, {64, 64, 63},
        {128, 0, 257}, {1, 1, 511},
    };
    for (const auto &c : cases) {
        BitVec src(1024), expect(1024), got(1024);
        src.randomize(rng);
        expect.randomize(rng);
        got = expect;
        for (std::size_t i = 0; i < c.count; ++i)
            expect.set(c.dst + i, src.get(c.src + i));
        got.copyRange(c.dst, src, c.src, c.count);
        EXPECT_EQ(got, expect)
            << "dst=" << c.dst << " src=" << c.src
            << " count=" << c.count;
    }
}

TEST(BitVec, SetGetBytesRoundTrip)
{
    Rng rng(23);
    const std::size_t offsets[] = {0, 64, 8, 264, 61};
    for (const std::size_t off : offsets) {
        std::uint8_t in[37], out[37];
        for (auto &b : in)
            b = static_cast<std::uint8_t>(rng.next() & 0xFF);
        BitVec v(1024);
        v.randomize(rng);
        BitVec expect = v;
        for (std::size_t b = 0; b < sizeof(in); ++b)
            expect.setBits(off + b * 8, 8, in[b]);
        v.setBytes(off, in, sizeof(in));
        EXPECT_EQ(v, expect) << "offset " << off;
        v.getBytes(off, out, sizeof(out));
        EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0)
            << "offset " << off;
    }
}

} // namespace
} // namespace nvck
