#include <gtest/gtest.h>

#include "reliability/error_model.hh"

namespace nvck {
namespace {

TEST(ErrorModel, PaperAnchorPoints)
{
    // Section II-B: RBER target 1e-3 corresponds to ReRAM one year
    // after refresh and 3-bit PCM one week after refresh.
    EXPECT_NEAR(rberAfter(MemTech::Reram, secondsPerYear), 1e-3, 1e-5);
    EXPECT_NEAR(rberAfter(MemTech::Pcm3, secondsPerWeek), 1e-3, 1e-5);
    // Section IV-A: runtime rates.
    EXPECT_NEAR(rberAfter(MemTech::Reram, 1.0), 7e-5, 1e-6);
    EXPECT_NEAR(rberAfter(MemTech::Pcm3, 1.0), 7e-5, 1e-6);
    EXPECT_NEAR(rberAfter(MemTech::Pcm3, secondsPerHour), 2e-4, 1e-6);
}

TEST(ErrorModel, MonotoneNondecreasingInTime)
{
    for (MemTech tech : allMemTechs()) {
        double prev = 0.0;
        for (double t = 1.0; t <= secondsPerYear; t *= 3.7) {
            const double r = rberAfter(tech, t);
            EXPECT_GE(r, prev) << memTechName(tech) << " at t=" << t;
            prev = r;
        }
    }
}

TEST(ErrorModel, ClampsOutsideAnchors)
{
    EXPECT_DOUBLE_EQ(rberAfter(MemTech::Reram, 0.0),
                     rberAfter(MemTech::Reram, 1.0));
    EXPECT_DOUBLE_EQ(rberAfter(MemTech::Reram, 10.0 * secondsPerYear),
                     rberAfter(MemTech::Reram, secondsPerYear));
}

TEST(ErrorModel, NvramResemblesFlashMoreThanDram)
{
    // Fig 1's qualitative claim: at retention limits, NVRAM RBER is in
    // the Flash ballpark, orders of magnitude above DRAM's random rate
    // but comparable in magnitude to Flash.
    const double reram = rberAfter(MemTech::Reram, secondsPerYear);
    const double flash = rberAfter(MemTech::FlashMlc, secondsPerYear);
    EXPECT_LT(reram / flash, 100.0);
    EXPECT_GT(reram / flash, 0.01);
}

TEST(ErrorModel, MultiLevelCellsAreWorse)
{
    // 3-bit PCM drifts faster than 2-bit PCM everywhere.
    for (double t = 1.0; t <= secondsPerYear; t *= 10)
        EXPECT_GT(rberAfter(MemTech::Pcm3, t),
                  rberAfter(MemTech::Pcm2, t));
}

TEST(ErrorModel, NamesAreDistinct)
{
    const auto &techs = allMemTechs();
    for (std::size_t i = 0; i < techs.size(); ++i)
        for (std::size_t j = i + 1; j < techs.size(); ++j)
            EXPECT_NE(memTechName(techs[i]), memTechName(techs[j]));
}

} // namespace
} // namespace nvck
