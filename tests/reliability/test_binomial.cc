#include <gtest/gtest.h>

#include <cmath>

#include "reliability/binomial.hh"

namespace nvck {
namespace {

TEST(Binomial, ChooseSmallValues)
{
    EXPECT_DOUBLE_EQ(choose(5, 0), 1.0);
    EXPECT_DOUBLE_EQ(choose(5, 5), 1.0);
    EXPECT_NEAR(choose(5, 2), 10.0, 1e-9);
    EXPECT_NEAR(choose(72, 2), 2556.0, 1e-6);
    EXPECT_NEAR(choose(72, 4), 1028790.0, 1e-3);
    EXPECT_DOUBLE_EQ(choose(3, 7), 0.0);
}

TEST(Binomial, PmfSumsToOne)
{
    const double p = 0.3;
    double sum = 0;
    for (unsigned k = 0; k <= 20; ++k)
        sum += binomialPmf(20, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Binomial, PmfMatchesDirectComputation)
{
    // C(10,3) * 0.2^3 * 0.8^7.
    const double expected = 120.0 * std::pow(0.2, 3) * std::pow(0.8, 7);
    EXPECT_NEAR(binomialPmf(10, 3, 0.2), expected, 1e-12);
}

TEST(Binomial, TailEdgeCases)
{
    EXPECT_DOUBLE_EQ(binomialTail(10, 0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(binomialTail(10, 11, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(binomialTail(10, 1, 0.0), 0.0);
    EXPECT_NEAR(binomialTail(10, 1, 1.0), 1.0, 1e-12);
}

TEST(Binomial, TailComplementsPmf)
{
    const double p = 0.01;
    const unsigned n = 100;
    double below = 0;
    for (unsigned k = 0; k < 3; ++k)
        below += binomialPmf(n, k, p);
    EXPECT_NEAR(binomialTail(n, 3, p), 1.0 - below, 1e-12);
}

TEST(Binomial, DeepTailIsAccurate)
{
    // P[X >= 5] for n=72 bytes, byte error 1.6e-3: the appendix's
    // Term A scale (~1.3e-7); cross-check against direct log-space sum.
    const double p = symbolErrorProb(2e-4, 8);
    const double tail = binomialTail(72, 5, p);
    EXPECT_GT(tail, 1e-7);
    EXPECT_LT(tail, 2e-7);
}

TEST(Binomial, SymbolErrorProb)
{
    EXPECT_NEAR(symbolErrorProb(2e-4, 8), 1.0 - std::pow(1.0 - 2e-4, 8),
                1e-15);
    EXPECT_DOUBLE_EQ(symbolErrorProb(0.0, 8), 0.0);
    // Tiny rates remain representable (naive 1-(1-p)^b would round off).
    EXPECT_NEAR(symbolErrorProb(1e-18, 8), 8e-18, 1e-20);
}

TEST(Binomial, RequiredCorrectionMonotone)
{
    const double target = 1e-15;
    const unsigned t_low = requiredCorrection(512, 1e-4, target);
    const unsigned t_high = requiredCorrection(512, 1e-3, target);
    EXPECT_LT(t_low, t_high);
    // Paper checkpoint: 14-EC suffices for a 512-bit block at 1e-3.
    EXPECT_LE(t_high, 15u);
    EXPECT_GE(t_high, 12u);
}

TEST(Binomial, RequiredCorrectionMeetsTarget)
{
    const double p = 1e-3;
    const double target = 1e-15;
    const unsigned t = requiredCorrection(2048, p, target);
    EXPECT_LE(binomialTail(2048, t + 1, p), target);
    if (t > 0) {
        EXPECT_GT(binomialTail(2048, t, p), target);
    }
}

} // namespace
} // namespace nvck
