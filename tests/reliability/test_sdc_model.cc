#include <gtest/gtest.h>

#include "reliability/sdc_model.hh"

namespace nvck {
namespace {

TEST(SdcModel, TermBMatchesAppendix)
{
    const SdcInputs in; // RS(72, 64), m=8, rber 2e-4
    // C(72,4) * 2^32 / 2^64 ~= 2.4e-4.
    EXPECT_NEAR(sdcTermB(in, 4), 2.4e-4, 0.1e-4);
    // C(72,2) * 2^16 / 2^64 ~= 9.1e-12.
    EXPECT_NEAR(sdcTermB(in, 2), 9.1e-12, 0.2e-12);
}

TEST(SdcModel, TermAMatchesAppendix)
{
    const SdcInputs in;
    // n_th = 5 at t = 4: ~1.3e-7 (the paper quotes 1.3e-7; our model
    // includes the 8 check bytes in the word, giving ~1.5e-7).
    const double a4 = sdcTermA(in, 4);
    EXPECT_GT(a4, 1.0e-7);
    EXPECT_LT(a4, 2.0e-7);
    // n_th = 7 at t = 2: ~3.6e-11 in the paper's accounting.
    const double a2 = sdcTermA(in, 2);
    EXPECT_GT(a2, 2.0e-11);
    EXPECT_LT(a2, 6.0e-11);
}

TEST(SdcModel, SdcRatesMatchAppendixOrders)
{
    const SdcInputs in;
    // t=4: 3.2e-11; t=2: 3.3e-22 (order-of-magnitude checks).
    const double sdc4 = sdcRate(in, 4);
    EXPECT_GT(sdc4, 1e-11);
    EXPECT_LT(sdc4, 1e-10);
    const double sdc2 = sdcRate(in, 2);
    EXPECT_GT(sdc2, 1e-23);
    EXPECT_LT(sdc2, 1e-21);
}

TEST(SdcModel, ThresholdTwoMeetsTarget)
{
    // Section V-C: t = 2 beats the 1e-17 SDC target by orders of
    // magnitude; t = 4 misses it by ~3,000,000x.
    const SdcInputs in;
    EXPECT_LT(sdcRate(in, 2), 1e-17);
    EXPECT_GT(sdcRate(in, 4), 1e-17 * 1e5);
}

TEST(SdcModel, LowerRberStillMissesTargetAtFullT)
{
    // Section V-C: even at 7e-5 the full-capability SDC rate is
    // ~18,000x above target.
    SdcInputs in;
    in.rber = 7e-5;
    EXPECT_GT(sdcRate(in, 4), 1e-17 * 1e3);
    EXPECT_LT(sdcRate(in, 2), 1e-17);
}

TEST(SdcModel, FallbackFractionNearPaperValue)
{
    // Section V-C: ~0.018% of reads fall back to VLEW correction
    // (reads with >= 3 byte errors at runtime RBER).
    const SdcInputs in; // 2e-4
    const double frac = vlewFallbackFraction(in, 2);
    EXPECT_GT(frac, 1.0e-4);
    EXPECT_LT(frac, 3.5e-4);
}

TEST(SdcModel, BlockErrorFractionMatchesSection4)
{
    // Section IV-A: at 2e-4 RBER, ~10.3% of accesses contain bit
    // errors; at 7e-5, ~4%.
    SdcInputs hourly;
    hourly.rber = 2e-4;
    EXPECT_NEAR(blockErrorFraction(hourly), 0.109, 0.012);
    SdcInputs fast;
    fast.rber = 7e-5;
    EXPECT_NEAR(blockErrorFraction(fast), 0.040, 0.005);
}

TEST(SdcModel, TermAMonotoneInT)
{
    // Larger t lowers the error count needed to miscorrect, so Term A
    // grows with t.
    const SdcInputs in;
    EXPECT_LT(sdcTermA(in, 1), sdcTermA(in, 2));
    EXPECT_LT(sdcTermA(in, 2), sdcTermA(in, 3));
    EXPECT_LT(sdcTermA(in, 3), sdcTermA(in, 4));
}

} // namespace
} // namespace nvck
