#include <gtest/gtest.h>

#include "reliability/storage_model.hh"

namespace nvck {
namespace {

StorageTargets
paperTargets(double rber = 1e-3)
{
    StorageTargets in;
    in.rber = rber;
    in.ueTarget = 1e-15;
    return in;
}

TEST(StorageModel, BitErrorOnlyNeeds14EcAt1e3)
{
    const auto sol = bitErrorOnlyBch(paperTargets());
    ASSERT_TRUE(sol.feasible);
    // Section III-A: 14-bit-EC BCH, ~28% overhead.
    EXPECT_GE(sol.t, 13u);
    EXPECT_LE(sol.t, 15u);
    EXPECT_NEAR(sol.totalOverhead, 0.28, 0.03);
}

TEST(StorageModel, BruteForceChipkillIsProhibitive)
{
    const auto sol = bruteForceChipkillBch(paperTargets());
    ASSERT_TRUE(sol.feasible);
    // Section III-A: 64 + 14 = 78-EC, ~152%.
    EXPECT_GE(sol.t, 77u);
    EXPECT_LE(sol.t, 79u);
    EXPECT_NEAR(sol.totalOverhead, 1.52, 0.05);
}

TEST(StorageModel, PriorArtExtensionsCostAtLeast59Percent)
{
    // Fig 2: the cheapest DRAM-chipkill extension at 1e-3 RBER costs
    // >= 69% in the paper's accounting; our model must agree that all
    // of them are far above the proposal's 27%.
    const auto in = paperTargets();
    for (const auto &sol :
         {xedExtension(in), samsungExtension(in), duoExtension(in)}) {
        ASSERT_TRUE(sol.feasible) << sol.scheme;
        EXPECT_GT(sol.totalOverhead, 0.50) << sol.scheme;
    }
}

TEST(StorageModel, StorageCostDropsWithRber)
{
    const auto hi = duoExtension(paperTargets(1e-3));
    const auto lo = duoExtension(paperTargets(1e-5));
    ASSERT_TRUE(hi.feasible);
    ASSERT_TRUE(lo.feasible);
    EXPECT_GT(hi.totalOverhead, lo.totalOverhead);
}

TEST(StorageModel, VlewAt256BCostsAbout27Percent)
{
    // Fig 4: VLEWs with 256B of data + parity chip = 27% total.
    const auto sol = vlewScheme(paperTargets(), 256);
    ASSERT_TRUE(sol.feasible);
    EXPECT_GE(sol.t, 21u);
    EXPECT_LE(sol.t, 25u);
    EXPECT_NEAR(sol.totalOverhead, 0.27, 0.03);
}

TEST(StorageModel, LongerWordsCostLess)
{
    // The coding-theory fact the design rests on [39]: at fixed RBER
    // and reliability, longer words need proportionally less storage.
    const auto rows =
        vlewSweep(paperTargets(), {8, 16, 32, 64, 128, 256, 512});
    ASSERT_EQ(rows.size(), 7u);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        ASSERT_TRUE(rows[i].feasible);
        EXPECT_LE(rows[i].totalOverhead, rows[i - 1].totalOverhead + 1e-9)
            << "word " << i;
    }
    // And the gain saturates: doubling 256B -> 512B buys only a few
    // points (the paper stops at 256B / 27%).
    EXPECT_NEAR(rows[5].totalOverhead, rows[6].totalOverhead, 0.05);
}

TEST(StorageModel, VlewBeatsEveryPriorExtension)
{
    const auto in = paperTargets();
    const double vlew = vlewScheme(in, 256).totalOverhead;
    EXPECT_LT(vlew, xedExtension(in).totalOverhead);
    EXPECT_LT(vlew, samsungExtension(in).totalOverhead);
    EXPECT_LT(vlew, duoExtension(in).totalOverhead);
    EXPECT_LT(vlew, bruteForceChipkillBch(in).totalOverhead);
}

TEST(StorageModel, FlashCatalogueMatchesFig3)
{
    // Fig 3: 512B words; 41-EC costs ~13% and tolerates RBER in the
    // 1e-3 decade; weaker codes tolerate less.
    const auto rows = flashEccCatalogue({12, 24, 41}, 1e-15);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_NEAR(rows[2].overhead, 0.13, 0.01);
    EXPECT_GT(rows[2].maxRber, 1e-3);
    EXPECT_LT(rows[0].maxRber, rows[1].maxRber);
    EXPECT_LT(rows[1].maxRber, rows[2].maxRber);
}

TEST(StorageModel, InfeasibleAtAbsurdRber)
{
    auto in = paperTargets(0.2);
    const auto sol = xedExtension(in);
    EXPECT_FALSE(sol.feasible);
}

} // namespace
} // namespace nvck
