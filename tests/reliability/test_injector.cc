#include <gtest/gtest.h>

#include "ecc/code_params.hh"
#include "reliability/binomial.hh"
#include "reliability/injector.hh"

namespace nvck {
namespace {

TEST(Injector, RsCleanChannel)
{
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 0.0;
    c.trials = 50;
    const auto rep = injectRs(rs, c);
    EXPECT_EQ(rep.clean, rep.trials);
    EXPECT_EQ(rep.miscorrected, 0u);
}

TEST(Injector, RsModerateChannelAllCorrected)
{
    // At 2e-4 nearly all accesses have <= 4 byte errors; everything
    // seen in 20k trials should be corrected or clean.
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 2e-4;
    c.trials = 20000;
    const auto rep = injectRs(rs, c);
    EXPECT_EQ(rep.miscorrected, 0u);
    EXPECT_EQ(rep.clean + rep.corrected + rep.detected, rep.trials);
    // ~10.9% of blocks contain at least one error (Section IV-A).
    const double err_frac =
        1.0 - rep.rate(rep.clean);
    EXPECT_NEAR(err_frac, 0.109, 0.02);
}

TEST(Injector, RsErrorDistributionMatchesFig7)
{
    // Fig 7: >99.98% of accesses have <= 2 errors at 2e-4 RBER.
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 2e-4;
    c.trials = 50000;
    const auto rep = injectRs(rs, c);
    EXPECT_GT(rep.errorCount.cumulativeAt(2), 0.9995);
}

TEST(Injector, RsThresholdRejectsLargePatterns)
{
    // With the cap at 2 corrections, elevated RBER must produce
    // rejections (the VLEW-fallback path) but still zero SDC.
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 5e-3; // elevated to make >2-error words common
    c.trials = 20000;
    c.maxErrors = 2;
    const auto rep = injectRs(rs, c);
    EXPECT_GT(rep.detected, 100u);
    EXPECT_EQ(rep.miscorrected, 0u);
}

TEST(Injector, RsFullCapabilityMiscorrectsEventually)
{
    // The appendix's point: at t = 4 the miscorrection probability per
    // uncorrectable word is ~2.4e-4, so a heavy channel with many
    // 5+-error words yields SDC in a large campaign. Use a brutal
    // channel to make uncorrectable words the common case.
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 2e-2;
    c.trials = 60000;
    c.maxErrors = 4;
    const auto rep = injectRs(rs, c);
    // Sanity: mostly detected.
    EXPECT_GT(rep.detected, rep.trials / 2);
    // Thresholding at 2 must strictly reduce (here: eliminate) SDC.
    RsCampaign c2 = c;
    c2.maxErrors = 2;
    const auto rep2 = injectRs(rs, c2);
    EXPECT_LE(rep2.miscorrected, rep.miscorrected);
}

TEST(Injector, RsChipFailurePlusBitErrors)
{
    // Boot-time scenario from Section V-B: a whole chip erased plus
    // residual random errors is still recoverable as long as the
    // erasure budget covers the chip.
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 0.0;
    c.trials = 2000;
    c.failedChip = 3;
    const auto rep = injectRs(rs, c);
    EXPECT_EQ(rep.miscorrected, 0u);
    EXPECT_EQ(rep.detected, 0u);
}

TEST(Injector, RsParityChipFailure)
{
    const RsCodec rs(64, 8);
    RsCampaign c;
    c.rber = 0.0;
    c.trials = 500;
    c.failedChip = 8; // beyond data chips = the parity chip itself
    const auto rep = injectRs(rs, c);
    EXPECT_EQ(rep.miscorrected, 0u);
    EXPECT_EQ(rep.detected, 0u);
}

TEST(Injector, BchVlewSurvivesBootRber)
{
    // The 22-EC VLEW must essentially always correct a 1e-3 channel:
    // expected errors per 2312-bit word ~= 2.3, P(>22) ~ 1e-15.
    const BchCodec vlew(2048, 22);
    BchCampaign c;
    c.rber = 1e-3;
    c.trials = 400;
    const auto rep = injectBch(vlew, c);
    EXPECT_EQ(rep.miscorrected, 0u);
    EXPECT_EQ(rep.detected, 0u);
    EXPECT_EQ(rep.clean + rep.corrected, rep.trials);
    EXPECT_GT(rep.corrected, rep.trials / 2);
}

TEST(Injector, BchErrorCountsMatchBinomial)
{
    const BchCodec vlew(2048, 22);
    BchCampaign c;
    c.rber = 1e-3;
    c.trials = 3000;
    const auto rep = injectBch(vlew, c);
    // Mean injected errors ~= n * p.
    double mean = 0;
    for (std::size_t k = 0; k < rep.errorCount.buckets(); ++k)
        mean += static_cast<double>(k * rep.errorCount.bucket(k));
    mean /= static_cast<double>(rep.trials);
    const double expected = vlew.n() * c.rber;
    EXPECT_NEAR(mean, expected, 0.1 * expected);
}

TEST(Injector, BchDetectsOverloadChannel)
{
    // Far beyond design strength the decoder should mostly detect.
    const BchCodec small(256, 4);
    BchCampaign c;
    c.rber = 0.05;
    c.trials = 300;
    const auto rep = injectBch(small, c);
    EXPECT_GT(rep.detected, rep.trials / 2);
}

} // namespace
} // namespace nvck
