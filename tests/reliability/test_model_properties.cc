/**
 * @file
 * Property-based tests for the analytic UE/storage model sweeps that
 * now fan out across the thread pool: physical monotonicity in RBER,
 * the closed-form storage cost at the paper's VLEW design point, and
 * — the determinism contract — independence of the results from the
 * order and grouping in which sweep points are submitted.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "reliability/error_model.hh"
#include "reliability/storage_model.hh"
#include "reliability/ue_model.hh"

namespace nvck {
namespace {

const std::vector<double> kRberLadder = {1e-6, 1e-5, 5e-5, 1e-4, 2e-4,
                                         5e-4, 1e-3, 2e-3, 4e-3};

TEST(ModelProperties, UeRateMonotoneInRber)
{
    const auto pts = evaluateProposalSweep(kRberLadder);
    ASSERT_EQ(pts.size(), kRberLadder.size());
    for (std::size_t i = 1; i < pts.size(); ++i) {
        SCOPED_TRACE("rber=" + std::to_string(kRberLadder[i]));
        // More raw errors can never make any failure mode less likely.
        EXPECT_GE(pts[i].vlewFailureProb, pts[i - 1].vlewFailureProb);
        EXPECT_GE(pts[i].blockUeBoot, pts[i - 1].blockUeBoot);
        EXPECT_GE(pts[i].blockSdcRuntime, pts[i - 1].blockSdcRuntime);
        EXPECT_GE(pts[i].vlewFallbackFraction,
                  pts[i - 1].vlewFallbackFraction);
    }
    // The ladder spans the paper's regimes, so the extremes separate:
    // runtime rates are harmless, past-boot rates are not.
    EXPECT_LT(pts.front().blockUeBoot, 1e-15);
    EXPECT_GT(pts.back().vlewFailureProb,
              1e6 * pts.front().vlewFailureProb);
}

TEST(ModelProperties, StorageCostClosedFormAtPaperVlewPoint)
{
    StorageTargets in;
    in.rber = rber::bootTarget;
    in.ueTarget = rber::ueTargetPerBlock;
    const auto sol = vlewScheme(in, 256);
    ASSERT_TRUE(sol.feasible);

    // Total cost decomposes exactly as code bits plus a parity chip
    // carrying its own share of code bits:
    //   total = code + (1/dataChips) * (1 + code)
    EXPECT_DOUBLE_EQ(sol.totalOverhead,
                     sol.codeOverhead +
                         (1.0 / in.dataChips) *
                             (1.0 + sol.codeOverhead));
    // ... and lands on the paper's 27% sweet spot at 256B words.
    EXPECT_NEAR(sol.totalOverhead, 0.27, 0.03);
    EXPECT_GE(sol.t, 21u);
    EXPECT_LE(sol.t, 25u);
}

TEST(ModelProperties, VlewSweepIndependentOfSubmissionOrder)
{
    StorageTargets in;
    in.rber = rber::bootTarget;
    in.ueTarget = rber::ueTargetPerBlock;

    // A deliberately scrambled submission order; every permutation
    // must yield the bitwise-same solution per size.
    const std::vector<unsigned> shuffled = {256, 8,   1024, 64,
                                            16,  512, 32,   128};
    const auto rows = vlewSweep(in, shuffled);
    ASSERT_EQ(rows.size(), shuffled.size());
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
        SCOPED_TRACE("size=" + std::to_string(shuffled[i]));
        const auto solo = vlewScheme(in, shuffled[i]);
        EXPECT_EQ(rows[i].feasible, solo.feasible);
        EXPECT_EQ(rows[i].t, solo.t);
        EXPECT_EQ(rows[i].codeOverhead, solo.codeOverhead);
        EXPECT_EQ(rows[i].totalOverhead, solo.totalOverhead);
        EXPECT_EQ(rows[i].scheme, solo.scheme);
    }
}

TEST(ModelProperties, UeSweepIndependentOfSubmissionOrder)
{
    std::vector<double> shuffled = kRberLadder;
    // Fixed scramble (reverse + swap) — no runtime randomness so the
    // test itself is reproducible.
    std::reverse(shuffled.begin(), shuffled.end());
    std::swap(shuffled[1], shuffled[4]);

    const auto swept = evaluateProposalSweep(shuffled);
    ASSERT_EQ(swept.size(), shuffled.size());
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
        SCOPED_TRACE("rber=" + std::to_string(shuffled[i]));
        const auto solo = evaluateProposal(shuffled[i]);
        EXPECT_EQ(swept[i].rber, solo.rber);
        EXPECT_EQ(swept[i].vlewFailureProb, solo.vlewFailureProb);
        EXPECT_EQ(swept[i].blockUeBoot, solo.blockUeBoot);
        EXPECT_EQ(swept[i].blockSdcRuntime, solo.blockSdcRuntime);
        EXPECT_EQ(swept[i].vlewFallbackFraction,
                  solo.vlewFallbackFraction);
    }
}

TEST(ModelProperties, OutageSweepMatchesSerialCalls)
{
    const std::vector<int> techs = {static_cast<int>(MemTech::Reram),
                                    static_cast<int>(MemTech::Pcm3),
                                    static_cast<int>(MemTech::Pcm2)};
    const auto swept = maxOutageSweep(techs, 1e-15);
    ASSERT_EQ(swept.size(), techs.size());
    for (std::size_t i = 0; i < techs.size(); ++i)
        EXPECT_EQ(swept[i], maxOutageSeconds(techs[i], 1e-15));
}

} // namespace
} // namespace nvck
