#include <gtest/gtest.h>

#include <cmath>

#include "reliability/error_model.hh"
#include "reliability/ue_model.hh"

namespace nvck {
namespace {

TEST(UeModel, DesignPointMeetsTargets)
{
    // At the boot-target RBER the proposal must satisfy both
    // Section III targets.
    const auto point = evaluateProposal(rber::bootTarget);
    EXPECT_LT(point.blockUeBoot, rber::ueTargetPerBlock);
    // SDC at runtime uses the runtime rate.
    const auto runtime = evaluateProposal(rber::runtimePcm3Hourly);
    EXPECT_LT(runtime.blockSdcRuntime, rber::sdcTargetPerBlock);
}

TEST(UeModel, VlewFailureProbMatchesPaperScale)
{
    // ~22-EC over 2312 bits at 1e-3: failures around 1e-15 per word.
    const auto point = evaluateProposal(1e-3);
    EXPECT_LT(point.vlewFailureProb, 1e-12);
    EXPECT_GT(point.vlewFailureProb, 1e-18);
}

TEST(UeModel, UeGrowsRapidlyBeyondDesignPoint)
{
    const auto at_design = evaluateProposal(1e-3);
    const auto beyond = evaluateProposal(4e-3); // PCM-3 @ 1 year
    EXPECT_GT(beyond.blockUeBoot, at_design.blockUeBoot * 1e6);
}

TEST(UeModel, SingleVlewFailureIsAbsorbed)
{
    // Boot UE needs >= 2 covering VLEWs down; the model must therefore
    // be roughly the square of the single-VLEW failure probability
    // scaled by the pair count.
    const auto point = evaluateProposal(1e-3);
    const double single = point.vlewFailureProb;
    EXPECT_NEAR(point.blockUeBoot, 36.0 * single * single,
                0.5 * 36.0 * single * single);
}

TEST(UeModel, MaxOutageMatchesPaperHeadline)
{
    // "a week to a year without refresh": ReRAM reaches the year cap;
    // 3-bit PCM lands near a week (its design anchor).
    const double reram =
        maxOutageSeconds(static_cast<int>(MemTech::Reram), 1e-15);
    EXPECT_GE(reram, secondsPerYear * 0.99);

    // 3-bit PCM: the paper anchors its *single-VLEW* design at one
    // week; block UE additionally needs two covering VLEWs down, so
    // the block-level bound lands a bit beyond the week (about two
    // months in this model) but far short of ReRAM's year.
    const double pcm3 =
        maxOutageSeconds(static_cast<int>(MemTech::Pcm3), 1e-15);
    EXPECT_GT(pcm3, secondsPerWeek);
    EXPECT_LT(pcm3, 120 * secondsPerDay);
}

TEST(UeModel, ChipkillGainIsLarge)
{
    // With a chip-failure probability orders above the bit-UE floor —
    // the regime field studies report — chipkill dominates.
    const double gain = chipkillGain(4e-14, 1e-15);
    EXPECT_GT(gain, 30.0);
    EXPECT_LT(gain, 100.0);
    // Degenerate cases.
    EXPECT_DOUBLE_EQ(chipkillGain(0.0, 1e-15), 1.0);
    EXPECT_TRUE(std::isinf(chipkillGain(1e-10, 0.0)));
}

TEST(UeModel, FallbackFractionConsistentWithSdcModel)
{
    const auto point = evaluateProposal(2e-4);
    EXPECT_GT(point.vlewFallbackFraction, 1e-4);
    EXPECT_LT(point.vlewFallbackFraction, 3.5e-4);
}

} // namespace
} // namespace nvck
