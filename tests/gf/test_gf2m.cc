#include <gtest/gtest.h>

#include "gf/gf2m.hh"

namespace nvck {
namespace {

class Gf2mParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(Gf2mParam, AlphaGeneratesFullGroup)
{
    const Gf2m gf(GetParam());
    // Every nonzero element must appear exactly once as a power of alpha;
    // the constructor asserts this, so just spot-check log/exp inverses.
    for (GfElem a = 1; a < gf.size(); ++a)
        EXPECT_EQ(gf.alphaPow(gf.log(a)), a);
}

TEST_P(Gf2mParam, MultiplicationAgreesWithSchoolbook)
{
    const unsigned m = GetParam();
    const Gf2m gf(m);
    // Carry-less multiply then reduce by the primitive polynomial.
    auto slow_mul = [&](GfElem a, GfElem b) {
        std::uint64_t acc = 0;
        for (unsigned i = 0; i < m; ++i)
            if ((b >> i) & 1)
                acc ^= static_cast<std::uint64_t>(a) << i;
        for (int bit = 2 * m - 2; bit >= static_cast<int>(m); --bit)
            if ((acc >> bit) & 1)
                acc ^= static_cast<std::uint64_t>(gf.poly())
                       << (bit - m);
        return static_cast<GfElem>(acc);
    };
    // Exhaustive for small fields, sampled for big ones.
    const GfElem limit = gf.size() > 64 ? 64 : gf.size();
    for (GfElem a = 0; a < limit; ++a)
        for (GfElem b = 0; b < limit; ++b)
            EXPECT_EQ(gf.mul(a, b), slow_mul(a, b))
                << "m=" << m << " a=" << a << " b=" << b;
}

TEST_P(Gf2mParam, InverseIsInverse)
{
    const Gf2m gf(GetParam());
    const GfElem step =
        gf.size() > 4096 ? gf.size() / 1024 : 1;
    for (GfElem a = 1; a < gf.size(); a += step)
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
}

TEST_P(Gf2mParam, DivisionInvertsMultiplication)
{
    const Gf2m gf(GetParam());
    const GfElem probe = gf.size() - 3;
    for (GfElem b = 1; b < 50 && b < gf.size(); ++b)
        EXPECT_EQ(gf.div(gf.mul(probe, b), b), probe);
}

TEST_P(Gf2mParam, PowMatchesRepeatedMul)
{
    const Gf2m gf(GetParam());
    const GfElem a = 3 % gf.size();
    GfElem acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
        EXPECT_EQ(gf.pow(a, e), acc);
        acc = gf.mul(acc, a);
    }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, Gf2mParam,
                         ::testing::Values(3u, 4u, 8u, 10u, 12u, 13u, 14u));

TEST(Gf2m, KnownGf256Products)
{
    // AES-adjacent field with poly 0x11D: well-known products.
    const Gf2m gf(8);
    EXPECT_EQ(gf.mul(0x02, 0x80), 0x1Du); // x * x^7 = x^8 = poly tail
    EXPECT_EQ(gf.mul(0, 123), 0u);
    EXPECT_EQ(gf.mul(1, 123), 123u);
}

TEST(Gf2m, AlphaPowWrapsAroundOrder)
{
    const Gf2m gf(8);
    EXPECT_EQ(gf.alphaPow(0), 1u);
    EXPECT_EQ(gf.alphaPow(gf.order()), 1u);
    EXPECT_EQ(gf.alphaPow(2 * gf.order() + 5), gf.alphaPow(5));
}

} // namespace
} // namespace nvck
