#include <gtest/gtest.h>

#include "gf/gfpoly.hh"

namespace nvck {
namespace {

TEST(GfPoly, DegreeAndTrim)
{
    EXPECT_EQ(GfPoly::zero().degree(), -1);
    EXPECT_EQ(GfPoly::constant(5).degree(), 0);
    EXPECT_EQ(GfPoly({1, 0, 3}).degree(), 2);
    EXPECT_EQ(GfPoly({1, 0, 0}).degree(), 0); // trailing zeros trimmed
}

TEST(GfPoly, EvalHorner)
{
    const Gf2m gf(8);
    // p(x) = 7 + 2x + x^2 at x = 3: 7 ^ mul(2,3) ^ mul(3, 3)
    const GfPoly p({7, 2, 1});
    const GfElem expected =
        static_cast<GfElem>(7u ^ gf.mul(2, 3) ^ gf.mul(3, 3));
    EXPECT_EQ(p.eval(gf, 3), expected);
}

TEST(GfPoly, AddIsXor)
{
    const GfPoly a({1, 2, 3});
    const GfPoly b({1, 2});
    const GfPoly sum = GfPoly::add(a, b);
    EXPECT_EQ(sum.coeff(0), 0u);
    EXPECT_EQ(sum.coeff(1), 0u);
    EXPECT_EQ(sum.coeff(2), 3u);
}

TEST(GfPoly, AddCancellationTrims)
{
    const GfPoly a({1, 2, 3});
    EXPECT_TRUE(GfPoly::add(a, a).isZero());
}

TEST(GfPoly, MulDistributesOverEval)
{
    const Gf2m gf(8);
    const GfPoly a({3, 1, 7});
    const GfPoly b({5, 2});
    const GfPoly prod = GfPoly::mul(gf, a, b);
    for (GfElem x : {0u, 1u, 2u, 77u, 255u})
        EXPECT_EQ(prod.eval(gf, x),
                  gf.mul(a.eval(gf, x), b.eval(gf, x)));
}

TEST(GfPoly, ModLeavesSmallerDegree)
{
    const Gf2m gf(8);
    const GfPoly a({1, 2, 3, 4, 5});
    const GfPoly b({7, 1, 1});
    const GfPoly rem = GfPoly::mod(gf, a, b);
    EXPECT_LT(rem.degree(), b.degree());
    // a = q*b + rem  =>  a(x) ^ rem(x) must be divisible by b: check via
    // evaluation at roots is hard; instead verify mod(a ^ rem, b) == 0.
    EXPECT_TRUE(GfPoly::mod(gf, GfPoly::add(a, rem), b).isZero());
}

TEST(GfPoly, ModByHigherDegreeIsIdentity)
{
    const Gf2m gf(8);
    const GfPoly a({9, 4});
    const GfPoly b({1, 1, 1, 1});
    EXPECT_EQ(GfPoly::mod(gf, a, b), a);
}

TEST(GfPoly, DerivativeChar2)
{
    // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2.
    const GfPoly p({11, 22, 33, 44});
    const GfPoly d = GfPoly::derivative(p);
    EXPECT_EQ(d.coeff(0), 22u);
    EXPECT_EQ(d.coeff(1), 0u);
    EXPECT_EQ(d.coeff(2), 44u);
    EXPECT_EQ(d.degree(), 2);
}

TEST(GfPoly, TruncateDropsHighTerms)
{
    const GfPoly p({1, 2, 3, 4});
    const GfPoly t = GfPoly::truncate(p, 2);
    EXPECT_EQ(t.degree(), 1);
    EXPECT_EQ(t.coeff(0), 1u);
    EXPECT_EQ(t.coeff(1), 2u);
}

TEST(GfPoly, MonomialAndSetCoeff)
{
    GfPoly p = GfPoly::monomial(9, 4);
    EXPECT_EQ(p.degree(), 4);
    p.setCoeff(4, 0);
    EXPECT_TRUE(p.isZero());
}

} // namespace
} // namespace nvck
