#include <gtest/gtest.h>

#include "gf/binpoly.hh"

namespace nvck {
namespace {

TEST(BinPoly, DegreeOfMask)
{
    EXPECT_EQ(BinPoly().degree(), -1);
    EXPECT_EQ(BinPoly(0x1).degree(), 0);
    EXPECT_EQ(BinPoly(0x13).degree(), 4);
}

TEST(BinPoly, SetBitAcrossWords)
{
    BinPoly p;
    p.setBit(100);
    EXPECT_EQ(p.degree(), 100);
    EXPECT_TRUE(p.bit(100));
    EXPECT_FALSE(p.bit(99));
    p.setBit(100, false);
    EXPECT_TRUE(p.isZero());
}

TEST(BinPoly, MulSmallKnown)
{
    // (x + 1)(x + 1) = x^2 + 1 over GF(2).
    const BinPoly p(0x3);
    const BinPoly sq = BinPoly::mul(p, p);
    EXPECT_EQ(sq, BinPoly(0x5));
    // (x^2 + x + 1)(x + 1) = x^3 + 1.
    EXPECT_EQ(BinPoly::mul(BinPoly(0x7), BinPoly(0x3)), BinPoly(0x9));
}

TEST(BinPoly, MulAcrossWordBoundary)
{
    BinPoly a;
    a.setBit(63);
    BinPoly b;
    b.setBit(1);
    const BinPoly prod = BinPoly::mul(a, b);
    EXPECT_EQ(prod.degree(), 64);
    EXPECT_TRUE(prod.bit(64));
}

TEST(BinPoly, ModKnown)
{
    // x^4 mod (x^4 + x + 1) = x + 1.
    BinPoly x4;
    x4.setBit(4);
    EXPECT_EQ(BinPoly::mod(x4, BinPoly(0x13)), BinPoly(0x3));
}

TEST(BinPoly, ModOfProductIsZero)
{
    BinPoly g(0x11D);
    BinPoly q;
    q.setBit(0);
    q.setBit(77);
    q.setBit(130);
    const BinPoly prod = BinPoly::mul(g, q);
    EXPECT_TRUE(BinPoly::mod(prod, g).isZero());
    // And adding 1 makes it nonzero.
    BinPoly prod1 = prod;
    prod1 ^= BinPoly::one();
    EXPECT_FALSE(BinPoly::mod(prod1, g).isZero());
}

TEST(BinPoly, ShiftMultipliesByPowerOfX)
{
    const BinPoly p(0x5);
    const BinPoly shifted = BinPoly::shift(p, 70);
    EXPECT_TRUE(shifted.bit(70));
    EXPECT_TRUE(shifted.bit(72));
    EXPECT_EQ(shifted.degree(), 72);
    EXPECT_EQ(BinPoly::mod(shifted, p).degree(), -1);
}

TEST(BinPoly, XorAssign)
{
    BinPoly a(0xF0);
    a ^= BinPoly(0x0F);
    EXPECT_EQ(a, BinPoly(0xFF));
    a ^= BinPoly(0xFF);
    EXPECT_TRUE(a.isZero());
}

} // namespace
} // namespace nvck
