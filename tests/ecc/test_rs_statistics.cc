#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "ecc/rs.hh"
#include "reliability/binomial.hh"
#include "reliability/sdc_model.hh"

namespace nvck {
namespace {

/**
 * Empirical validation of the appendix's Term B: the probability that
 * a *random word* decodes successfully (lands within distance t of
 * some codeword) should match C(n,t)... summed over 0..t. For
 * RS(72,64) with t = 4 that sum is dominated by the t = 4 term the
 * paper computes (2.4e-4). Random 72-byte words are almost never
 * codewords, so the measured accept rate estimates Term B directly.
 */
TEST(RsStatistics, TermBMatchesRandomWordAcceptRate)
{
    const RsCodec rs(64, 8);
    Rng rng(777);
    const std::uint64_t trials = 300000;
    std::uint64_t accepted = 0;
    std::vector<GfElem> word(rs.n());
    for (std::uint64_t i = 0; i < trials; ++i) {
        for (auto &s : word)
            s = static_cast<GfElem>(rng.next() & 0xFF);
        auto copy = word;
        const auto res = rs.decode(copy, {}, 4);
        if (res.status != DecodeStatus::Uncorrectable)
            ++accepted;
    }
    const double measured =
        static_cast<double>(accepted) / static_cast<double>(trials);
    SdcInputs in;
    double expected = 0.0;
    for (unsigned t = 0; t <= 4; ++t)
        expected += sdcTermB(in, t);
    // ~2.4e-4 expected; 300k trials give ~72 hits, sigma ~8.5.
    EXPECT_NEAR(measured, expected, 0.5 * expected);
}

TEST(RsStatistics, ThresholdTwoShrinksAcceptanceBall)
{
    // With the acceptance threshold at 2, random words are accepted at
    // ~Term B(t<=2) ~ 1e-11: effectively never in a finite campaign.
    const RsCodec rs(64, 8);
    Rng rng(778);
    std::vector<GfElem> word(rs.n());
    std::uint64_t accepted = 0;
    for (int i = 0; i < 100000; ++i) {
        for (auto &s : word)
            s = static_cast<GfElem>(rng.next() & 0xFF);
        auto copy = word;
        const auto res = rs.decode(copy, {}, 2);
        if (res.status != DecodeStatus::Uncorrectable)
            ++accepted;
    }
    EXPECT_EQ(accepted, 0u);
}

/** Geometry sweep: the codec must be correct for any even r. */
class RsGeometry : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RsGeometry, CorrectsUpToHalfR)
{
    const unsigned r = GetParam();
    const RsCodec rs(64, r);
    Rng rng(1000 + r);
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<GfElem> data(64);
        for (auto &s : data)
            s = static_cast<GfElem>(rng.next() & 0xFF);
        const auto clean = rs.encode(data);
        auto noisy = clean;
        const unsigned errors = r / 2;
        // Corrupt `errors` distinct symbols.
        std::vector<std::uint32_t> positions;
        while (positions.size() < errors) {
            const auto pos =
                static_cast<std::uint32_t>(rng.below(noisy.size()));
            if (std::find(positions.begin(), positions.end(), pos) !=
                positions.end())
                continue;
            noisy[pos] ^= static_cast<GfElem>(1 + rng.below(255));
            positions.push_back(pos);
        }
        const auto res = rs.decode(noisy);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable)
            << "r=" << r;
        ASSERT_EQ(noisy, clean) << "r=" << r;
    }
}

TEST_P(RsGeometry, FullErasureBudget)
{
    const unsigned r = GetParam();
    const RsCodec rs(64, r);
    Rng rng(2000 + r);
    std::vector<GfElem> data(64);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.next() & 0xFF);
    const auto clean = rs.encode(data);
    auto noisy = clean;
    std::vector<std::uint32_t> erasures;
    for (std::uint32_t p = 0; p < r; ++p) {
        noisy[p] = static_cast<GfElem>(rng.below(256));
        erasures.push_back(p);
    }
    const auto res = rs.decode(noisy, erasures);
    ASSERT_NE(res.status, DecodeStatus::Uncorrectable) << "r=" << r;
    EXPECT_EQ(noisy, clean);
}

INSTANTIATE_TEST_SUITE_P(CheckSymbolCounts, RsGeometry,
                         ::testing::Values(2u, 4u, 8u, 12u, 16u, 32u));

/** BCH with a forced (non-minimal) field degree must still work. */
TEST(BchGeometry, ForcedFieldDegree)
{
    const BchCodec codec(512, 8, /*field_degree=*/13);
    EXPECT_EQ(codec.field().m(), 13u);
    Rng rng(5);
    BitVec data(512);
    data.randomize(rng);
    BitVec cw = codec.encode(data);
    cw.injectExactErrors(rng, 8);
    const auto res = codec.decode(cw);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(codec.extractData(cw), data);
}

TEST(BchGeometry, SingleErrorCorrectionDegenerateCase)
{
    const BchCodec codec(64, 1);
    Rng rng(6);
    BitVec data(64);
    data.randomize(rng);
    BitVec cw = codec.encode(data);
    cw.flip(30);
    const auto res = codec.decode(cw);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(res.corrections, 1u);
    EXPECT_EQ(codec.extractData(cw), data);
}

} // namespace
} // namespace nvck
