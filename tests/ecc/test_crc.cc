#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hh"
#include "ecc/crc.hh"

namespace nvck {
namespace {

TEST(Crc8, KnownVector)
{
    // CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
    const std::array<std::uint8_t, 9> msg{'1', '2', '3', '4', '5',
                                          '6', '7', '8', '9'};
    EXPECT_EQ(crc8(msg), 0xF4);
}

TEST(Crc8, EmptyIsZero)
{
    EXPECT_EQ(crc8({}), 0x00);
}

TEST(Crc8, DetectsSingleBitFlips)
{
    Rng rng(8);
    std::vector<std::uint8_t> block(64);
    for (auto &b : block)
        b = static_cast<std::uint8_t>(rng.below(256));
    const std::uint8_t good = crc8(block);
    for (std::size_t byte = 0; byte < block.size(); byte += 7) {
        for (int bit = 0; bit < 8; ++bit) {
            block[byte] ^= static_cast<std::uint8_t>(1 << bit);
            EXPECT_FALSE(crc8Check(block, good))
                << "missed flip at byte " << byte << " bit " << bit;
            block[byte] ^= static_cast<std::uint8_t>(1 << bit);
        }
    }
    EXPECT_TRUE(crc8Check(block, good));
}

TEST(Crc8, DetectsBurstWithinAByte)
{
    std::vector<std::uint8_t> block(64, 0xA5);
    const std::uint8_t good = crc8(block);
    block[10] ^= 0xFF;
    EXPECT_FALSE(crc8Check(block, good));
}

} // namespace
} // namespace nvck
