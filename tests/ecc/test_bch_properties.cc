#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/bch.hh"

namespace nvck {
namespace {

struct CodePoint
{
    unsigned k;
    unsigned t;
};

class BchAlgebra : public ::testing::TestWithParam<CodePoint>
{};

TEST_P(BchAlgebra, CodeIsLinear)
{
    // The XOR of two codewords is a codeword — the property the whole
    // XOR-sum write path rests on.
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(k * 31 + t);
    BitVec a(k), b(k);
    a.randomize(rng);
    b.randomize(rng);
    BitVec ca = codec.encode(a);
    const BitVec cb = codec.encode(b);
    ca ^= cb;
    EXPECT_TRUE(codec.isCodeword(ca));
}

TEST_P(BchAlgebra, ZeroEncodesToZero)
{
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    const BitVec zero(k);
    const BitVec cw = codec.encode(zero);
    EXPECT_EQ(cw.popcount(), 0u);
    EXPECT_TRUE(codec.isCodeword(cw));
}

TEST_P(BchAlgebra, SystematicDataUntouched)
{
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(k * 7 + t);
    BitVec data(k);
    data.randomize(rng);
    const BitVec cw = codec.encode(data);
    for (unsigned i = 0; i < k; ++i)
        ASSERT_EQ(cw.get(codec.r() + i), data.get(i)) << "bit " << i;
}

TEST_P(BchAlgebra, GeneratorDividesEveryCodeword)
{
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    // deg(g) <= t * m, and the constructed code must fit the paper's
    // t * (ceil(log2 k) + 1) budget for its design points.
    EXPECT_LE(codec.r(), t * codec.field().m());
    EXPECT_EQ(codec.n(), codec.k() + codec.r());
}

TEST_P(BchAlgebra, CorrectsBurstOfTConsecutiveBits)
{
    // BCH corrects any t errors, including the adjacent bursts an
    // NVRAM multi-level cell upset produces.
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(k + t * 3);
    BitVec data(k);
    data.randomize(rng);
    const BitVec clean = codec.encode(data);
    for (unsigned start : {0u, codec.r() - 1, codec.n() - t}) {
        BitVec noisy = clean;
        for (unsigned i = 0; i < t; ++i)
            noisy.flip(start + i);
        const auto res = codec.decode(noisy);
        ASSERT_EQ(res.status, DecodeStatus::Corrected)
            << "burst at " << start;
        ASSERT_EQ(noisy, clean);
        ASSERT_EQ(res.corrections, t);
    }
}

TEST_P(BchAlgebra, DeltaEncodeCommutesWithUpdates)
{
    // f(a) ^ f(b) ^ f(a^b) == 0 for arbitrary a, b.
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(k * 3 + t * 11);
    BitVec a(k), b(k);
    a.randomize(rng);
    b.randomize(rng);
    BitVec ab = a;
    ab ^= b;
    BitVec sum = codec.encodeDelta(a);
    sum ^= codec.encodeDelta(b);
    sum ^= codec.encodeDelta(ab);
    EXPECT_EQ(sum.popcount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CodePoints, BchAlgebra,
    ::testing::Values(CodePoint{64, 2}, CodePoint{512, 5},
                      CodePoint{512, 14}, CodePoint{2048, 22},
                      CodePoint{256, 8}));

TEST(BchDistance, MinimumDistanceAtLeastDesign)
{
    // Spot-check d_min >= 2t+1 on a small code by confirming low-weight
    // random codewords never appear: generate many random codewords and
    // track the minimum nonzero weight.
    const BchCodec codec(64, 3);
    Rng rng(77);
    std::size_t min_weight = codec.n();
    for (int trial = 0; trial < 2000; ++trial) {
        BitVec data(64);
        data.randomize(rng);
        const BitVec cw = codec.encode(data);
        const std::size_t w = cw.popcount();
        if (w != 0)
            min_weight = std::min(min_weight, w);
    }
    EXPECT_GE(min_weight, 2u * codec.t() + 1u);
}

} // namespace
} // namespace nvck
