/**
 * @file
 * Differential fuzzing between the Scalar and Sliced codec kernels:
 * for every BCH/RS parameter point the repo uses, random data with
 * 0..t+2 injected errors must produce byte-identical codewords,
 * syndromes, and decode results from both kernels. This is the
 * contract that lets the fast kernels replace the reference paths in
 * the Monte-Carlo sweeps without perturbing any sampled statistic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/rs.hh"

namespace nvck {
namespace {

struct BchPoint
{
    unsigned k;
    unsigned t;
};

class KernelDiffBch : public ::testing::TestWithParam<BchPoint> {};

TEST_P(KernelDiffBch, EncodeSyndromesDecodeIdentical)
{
    const auto [k, t] = GetParam();
    const BchCodec scalar(k, t, 0, CodecKernel::Scalar);
    const BchCodec sliced(k, t, 0, CodecKernel::Sliced);
    ASSERT_EQ(scalar.kernel(), CodecKernel::Scalar);
    ASSERT_EQ(sliced.kernel(), CodecKernel::Sliced);
    ASSERT_EQ(scalar.n(), sliced.n());

    Rng rng(0xD1FF + k * 31 + t);
    for (unsigned errors = 0; errors <= t + 2; ++errors) {
        BitVec data(k);
        data.randomize(rng);

        const BitVec cw_scalar = scalar.encode(data);
        const BitVec cw_sliced = sliced.encode(data);
        ASSERT_EQ(cw_scalar, cw_sliced)
            << "k=" << k << " t=" << t;
        EXPECT_EQ(scalar.encodeDelta(data), sliced.encodeDelta(data));
        EXPECT_EQ(sliced.extractData(cw_sliced), data);

        BitVec noisy = cw_scalar;
        noisy.injectExactErrors(rng, errors);
        EXPECT_EQ(scalar.isCodeword(noisy), sliced.isCodeword(noisy))
            << "errors=" << errors;
        EXPECT_EQ(scalar.syndromes(noisy), sliced.syndromes(noisy))
            << "errors=" << errors;

        BitVec dec_scalar = noisy;
        BitVec dec_sliced = noisy;
        const auto res_scalar = scalar.decode(dec_scalar);
        const auto res_sliced = sliced.decode(dec_sliced);
        EXPECT_EQ(res_scalar.status, res_sliced.status)
            << "errors=" << errors;
        EXPECT_EQ(res_scalar.corrections, res_sliced.corrections);
        EXPECT_EQ(res_scalar.positions, res_sliced.positions);
        EXPECT_EQ(dec_scalar, dec_sliced) << "errors=" << errors;

        // reencode must agree too (it reuses the residue kernel).
        BitVec re_scalar = noisy;
        BitVec re_sliced = noisy;
        scalar.reencode(re_scalar);
        sliced.reencode(re_sliced);
        EXPECT_EQ(re_scalar, re_sliced);
    }
}

TEST_P(KernelDiffBch, SyndromesMaskOversizedTail)
{
    // Regression for the tail-handling fix: bits at positions >= n()
    // of an over-long received vector must be ignored, not folded into
    // the syndromes (and not truncated a whole word early).
    const auto [k, t] = GetParam();
    const BchCodec scalar(k, t, 0, CodecKernel::Scalar);
    const BchCodec sliced(k, t, 0, CodecKernel::Sliced);
    Rng rng(0x7A11 + k + t);

    BitVec data(k);
    data.randomize(rng);
    const BitVec cw = scalar.encode(data);
    const auto clean = scalar.syndromes(cw);

    BitVec oversized(cw.size() + 67);
    oversized.copyRange(0, cw, 0, cw.size());
    for (std::size_t i = cw.size(); i < oversized.size(); ++i)
        oversized.set(i, true); // garbage beyond n()
    EXPECT_EQ(scalar.syndromes(oversized), clean);
    EXPECT_EQ(sliced.syndromes(oversized), clean);
    EXPECT_TRUE(scalar.isCodeword(cw));
    EXPECT_TRUE(sliced.isCodeword(cw));
}

TEST_P(KernelDiffBch, SetKernelSwitchesInPlace)
{
    const auto [k, t] = GetParam();
    BchCodec codec(k, t, 0, CodecKernel::Scalar);
    Rng rng(0x5E7 + k + t);
    BitVec data(k);
    data.randomize(rng);
    const BitVec before = codec.encode(data);
    codec.setKernel(CodecKernel::Sliced);
    EXPECT_EQ(codec.kernel(), CodecKernel::Sliced);
    EXPECT_GT(codec.tableBytes(), 0u);
    EXPECT_EQ(codec.encode(data), before);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodePoints, KernelDiffBch,
    ::testing::Values(BchPoint{64, 2}, BchPoint{128, 3},
                      BchPoint{512, 5}, BchPoint{512, 8},
                      BchPoint{512, 14}, BchPoint{2048, 22}),
    [](const auto &info) {
        return "k" + std::to_string(info.param.k) + "t" +
               std::to_string(info.param.t);
    });

struct RsPoint
{
    unsigned k;
    unsigned r;
    unsigned m;
};

class KernelDiffRs : public ::testing::TestWithParam<RsPoint> {};

TEST_P(KernelDiffRs, EncodeSyndromesDecodeIdentical)
{
    const auto [k, r, m] = GetParam();
    const RsCodec scalar(k, r, m, CodecKernel::Scalar);
    const RsCodec sliced(k, r, m, CodecKernel::Sliced);
    const unsigned t = scalar.t();
    Rng rng(0xA5A5 + k * 17 + r + m);

    for (unsigned errors = 0; errors <= t + 2; ++errors) {
        std::vector<GfElem> data(k);
        for (auto &s : data)
            s = static_cast<GfElem>(rng.next() & (scalar.field().size() - 1));

        const auto cw_scalar = scalar.encode(data);
        const auto cw_sliced = sliced.encode(data);
        ASSERT_EQ(cw_scalar, cw_sliced) << "m=" << m;
        EXPECT_EQ(sliced.extractData(cw_sliced), data);

        auto noisy = cw_scalar;
        for (unsigned e = 0; e < errors; ++e) {
            const auto pos = static_cast<std::size_t>(rng.next() %
                                                      noisy.size());
            noisy[pos] ^= static_cast<GfElem>(
                (rng.next() % (scalar.field().size() - 1)) + 1);
        }
        EXPECT_EQ(scalar.isCodeword(noisy), sliced.isCodeword(noisy));
        EXPECT_EQ(scalar.syndromes(noisy), sliced.syndromes(noisy));

        auto dec_scalar = noisy;
        auto dec_sliced = noisy;
        const auto res_scalar = scalar.decode(dec_scalar);
        const auto res_sliced = sliced.decode(dec_sliced);
        EXPECT_EQ(res_scalar.status, res_sliced.status)
            << "errors=" << errors;
        EXPECT_EQ(res_scalar.corrections, res_sliced.corrections);
        EXPECT_EQ(res_scalar.errorCorrections,
                  res_sliced.errorCorrections);
        EXPECT_EQ(res_scalar.positions, res_sliced.positions);
        EXPECT_EQ(dec_scalar, dec_sliced) << "errors=" << errors;

        auto re_scalar = noisy;
        auto re_sliced = noisy;
        scalar.reencode(re_scalar);
        sliced.reencode(re_sliced);
        EXPECT_EQ(re_scalar, re_sliced);
    }
}

TEST_P(KernelDiffRs, ErasureDecodesIdentical)
{
    const auto [k, r, m] = GetParam();
    const RsCodec scalar(k, r, m, CodecKernel::Scalar);
    const RsCodec sliced(k, r, m, CodecKernel::Sliced);
    Rng rng(0xE8A5 + k + r + m);

    // Mixes with 2*errors + erasures up to r + 2 (including an
    // uncorrectable overload case).
    for (unsigned erasures = 1; erasures <= r; erasures += 3) {
        for (unsigned errors = 0;
             2 * errors + erasures <= r + 2; ++errors) {
            std::vector<GfElem> data(k);
            for (auto &s : data)
                s = static_cast<GfElem>(rng.next() &
                                        (scalar.field().size() - 1));
            auto noisy = scalar.encode(data);

            std::vector<std::uint32_t> positions(noisy.size());
            for (std::size_t i = 0; i < positions.size(); ++i)
                positions[i] = static_cast<std::uint32_t>(i);
            for (std::size_t i = positions.size(); i > 1; --i)
                std::swap(positions[i - 1],
                          positions[rng.next() % i]);

            std::vector<std::uint32_t> erased(
                positions.begin(), positions.begin() + erasures);
            for (unsigned e = 0; e < erasures + errors; ++e)
                noisy[positions[e]] ^= static_cast<GfElem>(
                    (rng.next() % (scalar.field().size() - 1)) + 1);

            auto dec_scalar = noisy;
            auto dec_sliced = noisy;
            const auto res_scalar = scalar.decode(dec_scalar, erased);
            const auto res_sliced = sliced.decode(dec_sliced, erased);
            EXPECT_EQ(res_scalar.status, res_sliced.status)
                << "erasures=" << erasures << " errors=" << errors;
            EXPECT_EQ(res_scalar.corrections, res_sliced.corrections);
            EXPECT_EQ(res_scalar.positions, res_sliced.positions);
            EXPECT_EQ(dec_scalar, dec_sliced);
        }
    }
}

TEST_P(KernelDiffRs, SetKernelSwitchesInPlace)
{
    const auto [k, r, m] = GetParam();
    RsCodec codec(k, r, m, CodecKernel::Scalar);
    const std::size_t scalar_bytes = codec.tableBytes();
    Rng rng(0x5EC + k + r + m);
    std::vector<GfElem> data(k);
    for (auto &s : data)
        s = static_cast<GfElem>(rng.next() & (codec.field().size() - 1));
    const auto before = codec.encode(data);
    codec.setKernel(CodecKernel::Sliced);
    // Mul-tables only exist below the small-field gate (m <= 10);
    // larger fields batch through log/exp with no extra tables.
    if (codec.field().m() <= 10)
        EXPECT_GT(codec.tableBytes(), scalar_bytes);
    else
        EXPECT_EQ(codec.tableBytes(), scalar_bytes);
    EXPECT_EQ(codec.encode(data), before);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodePoints, KernelDiffRs,
    ::testing::Values(
        RsPoint{64, 8, 8},  // the paper's RS(72,64) over GF(2^8)
        RsPoint{64, 8, 12}, // wide field: exercises the log/exp path
        RsPoint{16, 6, 8}), // odd r: erasure/error mixes with r odd
    [](const auto &info) {
        return "k" + std::to_string(info.param.k) + "r" +
               std::to_string(info.param.r) + "m" +
               std::to_string(info.param.m);
    });

} // namespace
} // namespace nvck
