#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/code_params.hh"

namespace nvck {
namespace {

/** (data bits, t) parameter pairs covering the paper's code points. */
struct BchPoint
{
    unsigned k;
    unsigned t;
};

class BchParam : public ::testing::TestWithParam<BchPoint> {};

TEST_P(BchParam, EncodeProducesValidCodeword)
{
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(1234 + k + t);
    BitVec data(k);
    data.randomize(rng);
    const BitVec cw = codec.encode(data);
    EXPECT_TRUE(codec.isCodeword(cw));
    EXPECT_EQ(codec.extractData(cw), data);
}

TEST_P(BchParam, CorrectsUpToTErrors)
{
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(99 + k * 7 + t);
    for (unsigned errors = 0; errors <= t; ++errors) {
        BitVec data(k);
        data.randomize(rng);
        const BitVec clean = codec.encode(data);
        BitVec noisy = clean;
        noisy.injectExactErrors(rng, errors);
        const auto res = codec.decode(noisy);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable)
            << "k=" << k << " t=" << t << " errors=" << errors;
        EXPECT_EQ(noisy, clean);
        EXPECT_EQ(res.corrections, errors);
        if (errors == 0) {
            EXPECT_EQ(res.status, DecodeStatus::Clean);
        }
    }
}

TEST_P(BchParam, DetectsTPlusOneErrorsMostly)
{
    // t+1 errors must never be "corrected" back to the true codeword
    // silently claiming success with t+1 flips; either the decoder
    // reports Uncorrectable or it miscorrects to a *different* codeword.
    const auto [k, t] = GetParam();
    const BchCodec codec(k, t);
    Rng rng(555 + k + t);
    BitVec data(k);
    data.randomize(rng);
    const BitVec clean = codec.encode(data);
    int outcomes = 0;
    for (int trial = 0; trial < 5; ++trial) {
        BitVec noisy = clean;
        noisy.injectExactErrors(rng, t + 1);
        const auto res = codec.decode(noisy);
        if (res.status == DecodeStatus::Uncorrectable) {
            ++outcomes;
        } else {
            // If it claims success, the result must be a codeword but
            // cannot equal the original (it corrected <= t positions of
            // a word at distance t+1).
            EXPECT_TRUE(codec.isCodeword(noisy));
            EXPECT_FALSE(noisy == clean);
        }
    }
    EXPECT_GT(outcomes, 0); // overwhelmingly detected in practice
}

INSTANTIATE_TEST_SUITE_P(
    PaperCodePoints, BchParam,
    ::testing::Values(BchPoint{512, 5},    // Naeimi et al. STT-RAM
                      BchPoint{512, 8},    // Awasthi et al. PCM
                      BchPoint{512, 14},   // bit-error-only baseline
                      BchPoint{2048, 22},  // the proposal's VLEW
                      BchPoint{128, 3},    // small sanity point
                      BchPoint{64, 2}));

TEST(Bch, VlewGeometryMatchesPaper)
{
    // 22-EC over 256B data: the paper charges 33B of code bits
    // (t * (ceil(log2 k) + 1) = 22 * 12 = 264 bits).
    EXPECT_EQ(bchCheckBitsPaper(22, 2048), 264u);
    const BchCodec vlew(2048, 22);
    // The constructed code must fit the paper's budget.
    EXPECT_LE(vlew.r(), 264u);
    EXPECT_EQ(vlew.field().m(), 12u);
}

TEST(Bch, BaselineGeometryMatchesPaper)
{
    // 14-EC over 64B block: 14 * 10 = 140 bits => 28% lower bound.
    EXPECT_EQ(bchCheckBitsPaper(14, 512), 140u);
    const BchCodec base(512, 14);
    EXPECT_LE(base.r(), 140u);
}

TEST(Bch, EncodeDeltaIsLinear)
{
    const BchCodec codec(512, 8);
    Rng rng(777);
    BitVec old_data(512), new_data(512);
    old_data.randomize(rng);
    new_data.randomize(rng);

    BitVec delta = old_data;
    delta ^= new_data;

    BitVec check_old = codec.encodeDelta(old_data);
    const BitVec check_new = codec.encodeDelta(new_data);
    const BitVec check_delta = codec.encodeDelta(delta);

    check_old ^= check_new;
    EXPECT_EQ(check_old, check_delta)
        << "f(x) xor f(x') must equal f(x xor x')";
}

TEST(Bch, DeltaUpdateMatchesReencode)
{
    // The NVRAM-chip EUR applies f(x xor x') to the stored check bits;
    // the result must equal a from-scratch encode of the new data.
    const BchCodec codec(2048, 22);
    Rng rng(4242);
    BitVec old_data(2048), new_data(2048);
    old_data.randomize(rng);
    new_data.randomize(rng);

    BitVec cw = codec.encode(old_data);
    BitVec delta = old_data;
    delta ^= new_data;
    const BitVec check_update = codec.encodeDelta(delta);
    for (unsigned i = 0; i < codec.r(); ++i)
        if (check_update.get(i))
            cw.flip(i);
    for (unsigned i = 0; i < codec.k(); ++i)
        cw.set(codec.r() + i, new_data.get(i));

    EXPECT_TRUE(codec.isCodeword(cw));
    EXPECT_EQ(codec.extractData(cw), new_data);
}

TEST(Bch, ReencodeRepairsCheckBits)
{
    const BchCodec codec(512, 5);
    Rng rng(31);
    BitVec data(512);
    data.randomize(rng);
    BitVec cw = codec.encode(data);
    cw.flip(0);
    cw.flip(3); // corrupt check bits only
    EXPECT_FALSE(codec.isCodeword(cw));
    codec.reencode(cw);
    EXPECT_TRUE(codec.isCodeword(cw));
    EXPECT_EQ(codec.extractData(cw), data);
}

TEST(Bch, CorrectsErrorsInCheckBitsToo)
{
    const BchCodec codec(512, 8);
    Rng rng(67);
    BitVec data(512);
    data.randomize(rng);
    const BitVec clean = codec.encode(data);
    BitVec noisy = clean;
    // Flip bits specifically inside the check region.
    noisy.flip(1);
    noisy.flip(codec.r() - 1);
    noisy.flip(codec.r() + 5); // and one data bit
    const auto res = codec.decode(noisy);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(res.corrections, 3u);
    EXPECT_EQ(noisy, clean);
}

TEST(Bch, AllZeroAndAllOneDataRoundTrip)
{
    const BchCodec codec(512, 14);
    BitVec zeros(512);
    BitVec ones(512);
    for (unsigned i = 0; i < 512; ++i)
        ones.set(i, true);
    for (const BitVec &data : {zeros, ones}) {
        BitVec cw = codec.encode(data);
        Rng rng(3);
        cw.injectExactErrors(rng, 14);
        const auto res = codec.decode(cw);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(codec.extractData(cw), data);
    }
}

TEST(Bch, RandomizedStress)
{
    const BchCodec codec(256, 6);
    Rng rng(2025);
    for (int trial = 0; trial < 200; ++trial) {
        BitVec data(256);
        data.randomize(rng);
        const BitVec clean = codec.encode(data);
        BitVec noisy = clean;
        const unsigned errors =
            static_cast<unsigned>(rng.below(codec.t() + 1));
        noisy.injectExactErrors(rng, errors);
        const auto res = codec.decode(noisy);
        ASSERT_NE(res.status, DecodeStatus::Uncorrectable);
        ASSERT_EQ(noisy, clean) << "trial " << trial;
        ASSERT_EQ(res.corrections, errors);
    }
}

} // namespace
} // namespace nvck
