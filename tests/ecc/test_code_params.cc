#include <gtest/gtest.h>

#include "ecc/code_params.hh"

namespace nvck {
namespace {

TEST(CodeParams, PaperCheckBitFormula)
{
    // t * (ceil(log2 k) + 1), Section III-A.
    EXPECT_EQ(bchCheckBitsPaper(14, 512), 140u);
    EXPECT_EQ(bchCheckBitsPaper(8, 512), 80u);
    EXPECT_EQ(bchCheckBitsPaper(22, 2048), 264u);
    EXPECT_EQ(bchCheckBitsPaper(41, 4096), 41u * 13u);
    EXPECT_EQ(bchCheckBitsPaper(78, 512), 780u);
    // Non-power-of-two k rounds the log up.
    EXPECT_EQ(bchCheckBitsPaper(1, 513), 11u);
}

TEST(CodeParams, PaperOverheads)
{
    // 14-EC over 64B block: 140/512 = 27.3% ("28%" in the paper).
    EXPECT_NEAR(bchOverheadPaper(14, 512), 0.273, 0.01);
    // 78-EC (64 chip-failure bits + 14): ~152%.
    EXPECT_NEAR(bchOverheadPaper(78, 512), 1.523, 0.01);
    // VLEW: 33B per 256B.
    EXPECT_NEAR(bchOverheadPaper(22, 2048), 33.0 / 256.0, 1e-9);
}

TEST(CodeParams, FieldDegreeCovers)
{
    EXPECT_EQ(bchFieldDegree(2312), 12u);
    EXPECT_EQ(bchFieldDegree(652), 10u);
    EXPECT_EQ(bchFieldDegree(7), 3u);
    EXPECT_EQ(bchFieldDegree(8), 4u);
}

TEST(ProposalParams, StorageCostIs27Percent)
{
    const ProposalParams p;
    // 33/256 + 1/8 * (1 + 33/256) = 0.2695...
    EXPECT_NEAR(p.totalStorageCost(), 0.27, 0.005);
}

TEST(ProposalParams, VlewSpans32Blocks)
{
    const ProposalParams p;
    EXPECT_EQ(p.blocksPerVlew(), 32u);
    EXPECT_EQ(p.codeBlocksPerVlew(), 5u); // ceil(33/8)
    // Paper rounds 33B/8B ~ 4 blocks; fetch overhead 35-36 blocks.
    EXPECT_GE(p.vlewFetchOverheadBlocks(), 35u);
    EXPECT_LE(p.vlewFetchOverheadBlocks(), 37u);
}

} // namespace
} // namespace nvck
